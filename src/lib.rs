//! # CRoCCo-rs
//!
//! A Rust reproduction of *"Porting a Computational Fluid Dynamics Code with
//! AMR to Large-scale GPU Platforms"* (IPDPS 2023): the CRoCCo v2.0 system — a
//! curvilinear, shock-capturing compressible flow solver hosted on
//! block-structured adaptive mesh refinement with GPU offload, evaluated at
//! Summit scale.
//!
//! This facade crate re-exports the full stack:
//!
//! * [`geometry`] — index-space boxes, Morton ordering, curvilinear mappings,
//! * [`fab`] — `FArrayBox`/`MultiFab` field containers and distribution maps,
//! * [`runtime`] — the (simulated) message-passing runtime and thread pool,
//! * [`perfmodel`] — Summit hardware models (POWER9, V100 roofline, fat-tree)
//!   and the TinyProfiler-style region profiler,
//! * [`amr`] — the AMR framework: tagging, Berger–Rigoutsos clustering,
//!   FillPatch, interpolators, regridding, load balancing,
//! * [`solver`] — the CRoCCo numerics: WENO-SYMBO, viscous fluxes, RK3,
//!   curvilinear metrics, boundary conditions, the DMR problem, and the
//!   version ladder (1.0 → 2.1) used in the paper's evaluation.
//!
//! See `DESIGN.md` for the full system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.
//!
//! ## Quickstart
//!
//! ```
//! use crocco::solver::config::{SolverConfig, CodeVersion};
//! use crocco::solver::problems::ProblemKind;
//!
//! let cfg = SolverConfig::builder()
//!     .problem(ProblemKind::SodX)
//!     .extents(32, 4, 4)
//!     .max_levels(1)
//!     .version(CodeVersion::V1_2)
//!     .build();
//! let mut run = crocco::solver::driver::Simulation::new(cfg);
//! let report = run.advance_steps(5);
//! assert!(report.steps == 5 && report.final_time > 0.0);
//! ```

// Enforced by `cargo xtask lint`: unsafe code is confined to the allowlisted
// fab modules (multifab, view, overlap) — none of it lives here.
#![forbid(unsafe_code)]

pub use crocco_amr as amr;
pub use crocco_fab as fab;
pub use crocco_geometry as geometry;
pub use crocco_perfmodel as perfmodel;
pub use crocco_runtime as runtime;
pub use crocco_solver as solver;
