//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Implements the `proptest!` macro plus the strategy combinators the test
//! suites call: ranges, tuples, `any::<T>()`, `Just`, `prop::sample::select`,
//! `prop::array::uniformN`, `prop::collection::vec`, and `.prop_map` /
//! `.prop_filter` / `.prop_flat_map`. Inputs are drawn from a deterministic
//! per-test RNG (seeded from the test name), each case runs the body, and
//! `prop_assert*` maps to `assert*` — so a failing property panics with the
//! offending values printed by the assertion itself. No shrinking.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::ops::{Range, RangeInclusive};

pub use rand::Rng as __Rng;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Runner configuration (mirror of `proptest::test_runner::Config`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Builds the deterministic RNG for one property (used by `proptest!`).
pub fn deterministic_rng(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// A value generator (mirror of `proptest::strategy::Strategy`, minus
/// shrinking: `Value` is the output type directly).
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Discards values failing `pred` (re-draws, up to a retry cap).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, pred }
    }

    /// Chains into a dependent strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Boxes the strategy (mirror of `.boxed()`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(self),
        }
    }
}

/// Boxed strategy handle (mirror of `proptest::strategy::BoxedStrategy`).
#[derive(Clone)]
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_filter` combinator.
pub struct Filter<S, F> {
    inner: S,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive draws");
    }
}

/// `prop_flat_map` combinator.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Constant strategy (mirror of `proptest::strategy::Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rand::Rng::gen_range(rng, self.clone())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        rand::Rng::gen_range(rng, self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);

/// Full-domain strategies for `any::<T>()`.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rand::Rng::gen_range(rng, 0u64..2) == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rand::Rng::gen_range(rng, -1e6f64..1e6)
    }
}

/// Strategy produced by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Mirror of `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

pub mod sample {
    use super::{Strategy, TestRng};

    /// Uniform choice from a fixed list (mirror of
    /// `proptest::sample::select`).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    /// Strategy returned by [`select`].
    #[derive(Clone, Debug)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rand::Rng::gen_range(rng, 0usize..self.options.len());
            self.options[i].clone()
        }
    }
}

pub mod array {
    use super::{Strategy, TestRng};

    /// Fixed-size array strategy (mirror of `proptest::array::uniformN`).
    pub struct Uniform<S, const N: usize> {
        inner: S,
    }

    impl<S: Strategy, const N: usize> Strategy for Uniform<S, N> {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.inner.generate(rng))
        }
    }

    macro_rules! uniform_fn {
        ($($name:ident => $n:literal),*) => {$(
            /// N independent draws of one strategy.
            pub fn $name<S: Strategy>(s: S) -> Uniform<S, $n> {
                Uniform { inner: s }
            }
        )*};
    }

    uniform_fn!(
        uniform2 => 2, uniform3 => 3, uniform4 => 4, uniform5 => 5,
        uniform6 => 6, uniform7 => 7, uniform8 => 8
    );
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec`] (mirror of
    /// `proptest::collection::SizeRange` conversions).
    pub trait IntoLenRange {
        /// Draws a concrete length.
        fn draw_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoLenRange for usize {
        fn draw_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoLenRange for Range<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            rand::Rng::gen_range(rng, self.clone())
        }
    }

    impl IntoLenRange for RangeInclusive<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            rand::Rng::gen_range(rng, self.clone())
        }
    }

    /// Vec-of-strategy (mirror of `proptest::collection::vec`).
    pub fn vec<S: Strategy, L: IntoLenRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: IntoLenRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.draw_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Namespace alias matching `proptest::prelude::prop`.
pub mod prop {
    pub use crate::array;
    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Mirror of `prop_assert!` — plain `assert!` (panic instead of Err).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Mirror of `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Mirror of `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Mirror of `proptest!`: each `fn name(arg in strategy, ...) { body }`
/// becomes a test that runs `body` over `cases` random draws. `#[test]` is
/// expected among the passed-through attributes (as written in this
/// workspace's suites).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:pat_param in $strat:expr ),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::deterministic_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..cfg.cases {
                $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )*
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = i64> {
        (0i64..100).prop_map(|v| v * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(a in 3i64..17, f in -1.0f64..1.0) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn map_and_select(v in arb_even(), pick in prop::sample::select(vec![1u32, 2, 3])) {
            prop_assert_eq!(v % 2, 0);
            prop_assert!((1..=3).contains(&pick));
        }

        #[test]
        fn arrays_and_vecs(
            a in prop::array::uniform3(0i64..5),
            v in prop::collection::vec(0u64..10, 2..6usize),
        ) {
            prop_assert!(a.iter().all(|x| (0..5).contains(x)));
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|x| *x < 10));
        }

        #[test]
        fn any_works(b in any::<bool>(), u in any::<u64>()) {
            let _ = (b, u);
        }
    }
}
