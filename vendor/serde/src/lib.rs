//! Offline stand-in for `serde`.
//!
//! This container has no network access and no registry cache, so the real
//! serde cannot be resolved. The workspace only uses serde as derive
//! annotations (`#[derive(Serialize, Deserialize)]`, one `#[serde(skip)]`) —
//! no code path actually serializes through the serde data model. The traits
//! here are therefore markers with blanket impls, and the re-exported derives
//! (from the sibling `serde_derive` stub) expand to nothing.
//!
//! If real serialization is ever needed, replace this vendored pair with the
//! genuine crates (the `[patch.crates-io]` entries in the workspace manifest
//! are the only wiring).

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`; blanket-implemented.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait mirroring `serde::Deserialize`; blanket-implemented.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

pub mod ser {
    pub use crate::Serialize;
}

pub mod de {
    pub use crate::Deserialize;

    /// Marker trait mirroring `serde::de::DeserializeOwned`.
    pub trait DeserializeOwned {}
    impl<T: ?Sized> DeserializeOwned for T {}
}
