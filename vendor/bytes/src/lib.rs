//! Offline stand-in for the subset of `bytes` this workspace uses: the
//! immutable, cheaply-clonable [`Bytes`] buffer (no `BytesMut`, no slicing
//! views — the cluster payloads here are built once and read once).

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable immutable byte buffer (mirror of `bytes::Bytes`).
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Wraps a static slice (copies here; the real crate borrows).
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(s),
        }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(s: &[u8]) -> Self {
        Bytes {
            data: Arc::from(s),
        }
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.data.len())
    }
}
