//! Offline stand-in for the subset of `rand` 0.8 this workspace uses:
//! `rand::rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::gen_range(lo..hi)` over integer and float ranges. The generator is
//! xoshiro256++ seeded through splitmix64 — statistically fine for tests and
//! benchmarks, not cryptographic.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface (mirror of `rand::RngCore`, u64-granular).
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (mirror of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range-sampling support for `Rng::gen_range` (mirror of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                // 53 uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                self.start + (self.end - self.start) * unit as $t
            }
        }
    )*};
}

impl_float_range!(f64);

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + (self.end - self.start) * unit as f32
    }
}

/// User-facing RNG methods (mirror of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws one value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Draws a bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Mirror of `rand::rngs::StdRng`: xoshiro256++ here.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(x: &mut u64) -> u64 {
        *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut x = seed;
            StdRng {
                s: [
                    splitmix64(&mut x),
                    splitmix64(&mut x),
                    splitmix64(&mut x),
                    splitmix64(&mut x),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A freshly time-seeded generator (mirror of `rand::thread_rng`, but a
/// plain value — the real one is a thread-local handle).
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    SeedableRng::seed_from_u64(nanos)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1000), b.gen_range(0i64..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3i64..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(-2.0f64..3.5);
            assert!((-2.0..3.5).contains(&f));
            let u = r.gen_range(0usize..=4);
            assert!(u <= 4);
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut r = StdRng::seed_from_u64(99);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[r.gen_range(0usize..8)] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "{counts:?}");
        }
    }
}
