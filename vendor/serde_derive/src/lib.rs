//! No-op derive macros standing in for `serde_derive` in offline builds.
//!
//! The workspace's `serde` is a marker-trait stub with blanket impls (see
//! `vendor/serde`), so the derives have nothing to generate: they only need
//! to exist so `#[derive(Serialize, Deserialize)]` and `#[serde(...)]`
//! attributes parse.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
