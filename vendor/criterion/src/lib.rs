//! Offline stand-in for the subset of `criterion` 0.5 this workspace uses.
//!
//! Runs each benchmark with a short warm-up, auto-scales the iteration count
//! to a target measuring window, and prints mean time per iteration (plus
//! element throughput when declared). No statistics beyond mean/min, no
//! HTML reports — enough to compare kernels and detect order-of-magnitude
//! regressions in this container.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(150);
const MEASURE: Duration = Duration::from_millis(400);

/// Throughput declaration (mirror of `criterion::Throughput`).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Two-part benchmark id (mirror of `criterion::BenchmarkId`).
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds `function_name/parameter` ids.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Anything accepted as a benchmark name.
pub trait IntoBenchmarkId {
    /// The printable id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.name
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The per-benchmark timing harness (mirror of `criterion::Bencher`).
pub struct Bencher {
    mean_ns: f64,
}

impl Bencher {
    /// Times `f`: warm-up, then auto-scaled measurement.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up while estimating the per-iteration cost.
        let warm_start = Instant::now();
        let mut iters: u64 = 0;
        while warm_start.elapsed() < WARMUP {
            black_box(f());
            iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / iters as f64;
        let n = ((MEASURE.as_secs_f64() / per_iter).ceil() as u64).clamp(1, 1_000_000_000);
        let t0 = Instant::now();
        for _ in 0..n {
            black_box(f());
        }
        self.mean_ns = t0.elapsed().as_secs_f64() * 1e9 / n as f64;
    }

    /// `iter` variant taking a setup closure per batch (simplified: setup
    /// runs inside the timed region only once per iteration).
    pub fn iter_batched<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: F,
        _size: BatchSize,
    ) {
        self.iter_custom_batched(&mut setup, &mut routine);
    }

    fn iter_custom_batched<I, O>(
        &mut self,
        setup: &mut dyn FnMut() -> I,
        routine: &mut dyn FnMut(I) -> O,
    ) {
        let warm_start = Instant::now();
        let mut iters: u64 = 0;
        let mut timed = Duration::ZERO;
        while warm_start.elapsed() < WARMUP {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            timed += t.elapsed();
            iters += 1;
        }
        let per_iter = (timed.as_secs_f64() / iters as f64).max(1e-9);
        let n = ((MEASURE.as_secs_f64() / per_iter).ceil() as u64).clamp(1, 1_000_000_000);
        let mut total = Duration::ZERO;
        for _ in 0..n {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            total += t.elapsed();
        }
        self.mean_ns = total.as_secs_f64() * 1e9 / n as f64;
    }
}

/// Batch sizing hint (mirror of `criterion::BatchSize`; ignored here).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
}

fn print_result(id: &str, mean_ns: f64, throughput: Option<Throughput>) {
    let time = if mean_ns >= 1e9 {
        format!("{:.3} s", mean_ns / 1e9)
    } else if mean_ns >= 1e6 {
        format!("{:.3} ms", mean_ns / 1e6)
    } else if mean_ns >= 1e3 {
        format!("{:.3} µs", mean_ns / 1e3)
    } else {
        format!("{mean_ns:.1} ns")
    };
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / (mean_ns / 1e9);
            println!("{id:<50} {time:>12}  [{:.2} Melem/s]", rate / 1e6);
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / (mean_ns / 1e9);
            println!("{id:<50} {time:>12}  [{:.2} MiB/s]", rate / (1024.0 * 1024.0));
        }
        None => println!("{id:<50} {time:>12}"),
    }
}

/// A named group of benchmarks (mirror of `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets the sample count (accepted, ignored: this harness auto-scales).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time (accepted, ignored).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        let mut b = Bencher { mean_ns: 0.0 };
        f(&mut b);
        print_result(&full, b.mean_ns, self.throughput);
        self
    }

    /// Runs one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        let mut b = Bencher { mean_ns: 0.0 };
        f(&mut b, input);
        print_result(&full, b.mean_ns, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// The benchmark driver (mirror of `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = id.into_id();
        let mut b = Bencher { mean_ns: 0.0 };
        f(&mut b);
        print_result(&full, b.mean_ns, None);
        self
    }
}

/// Mirror of `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let _ = $cfg;
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Mirror of `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
