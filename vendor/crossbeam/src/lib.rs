//! Offline stand-in for the subset of `crossbeam` this workspace uses:
//! `crossbeam::thread::scope` (built on `std::thread::scope`, available since
//! Rust 1.63) and `crossbeam::channel::{unbounded, Sender, Receiver}` (built
//! on `std::sync::mpsc`). API shapes match crossbeam 0.8 closely enough for
//! the call sites in `crocco-runtime`.

pub mod thread {
    use std::any::Any;

    /// Mirror of `crossbeam::thread::Scope`: spawn closures receive a scope
    /// reference so they can spawn further threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Mirror of `crossbeam::thread::ScopedJoinHandle`.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result (`Err` on panic).
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure's argument is a scope
        /// reference, as in crossbeam (all call sites here ignore it).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || {
                    let scope = Scope { inner };
                    f(&scope)
                }),
            }
        }
    }

    /// Mirror of `crossbeam::thread::scope`. `std::thread::scope` already
    /// joins all threads and propagates panics, so the `Err` arm is never
    /// produced; callers' `.expect(..)` stays a no-op.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| {
            let scope = Scope { inner: s };
            f(&scope)
        }))
    }
}

pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    /// Mirror of `crossbeam::channel::Sender` (clonable).
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    /// Mirror of `crossbeam::channel::Receiver`. crossbeam receivers are
    /// clonable and shareable; std's are not, so wrap in a mutex (the
    /// workspace uses one receiver per rank thread, so the lock is
    /// uncontended).
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                inner: self.inner.clone(),
            }
        }
    }

    /// Error mirroring `crossbeam::channel::SendError`.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    /// Error mirroring `crossbeam::channel::RecvError`.
    #[derive(Debug)]
    pub struct RecvError;

    /// Error mirroring `crossbeam::channel::TryRecvError`.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty (senders may still exist).
        Empty,
        /// Every sender has disconnected and the buffer is drained.
        Disconnected,
    }

    impl<T> Sender<T> {
        /// Sends a value (fails only when every receiver is gone).
        pub fn send(&self, v: T) -> Result<(), SendError<T>> {
            self.inner.send(v).map_err(|e| SendError(e.0))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks for the next value (fails when every sender is gone).
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner
                .lock()
                .expect("receiver mutex poisoned")
                .recv()
                .map_err(|_| RecvError)
        }

        /// Non-blocking receive: returns immediately with the next value or
        /// an [`TryRecvError`] describing why none is available.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner
                .lock()
                .expect("receiver mutex poisoned")
                .try_recv()
                .map_err(|e| match e {
                    mpsc::TryRecvError::Empty => TryRecvError::Empty,
                    mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
                })
        }
    }

    /// Mirror of `crossbeam::channel::unbounded`.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender { inner: tx },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
            },
        )
    }
}
