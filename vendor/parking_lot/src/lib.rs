//! Offline stand-in for the subset of `parking_lot` this workspace uses.
//!
//! `Mutex::lock` / `RwLock::read` / `RwLock::write` return guards directly
//! (no `Result`), matching parking_lot's API; poisoning from a panicked
//! holder is swallowed by taking the inner value, which matches parking_lot's
//! no-poisoning semantics.

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mirror of `parking_lot::Mutex`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Locks, returning the guard directly (parking_lot has no poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Mirror of `parking_lot::RwLock`.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}
