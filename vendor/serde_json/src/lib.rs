//! Offline placeholder for `serde_json`.
//!
//! The workspace declares serde_json but no code path uses it (reports are
//! printed as ASCII tables; checkpoints use a hand-rolled binary format).
//! This empty crate satisfies dependency resolution without network access.
