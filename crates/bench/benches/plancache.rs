//! Criterion benchmarks for the communication-plan cache: cold plan builds
//! vs cached lookups on the 3-level DMR-shaped hierarchy, and repeat-call
//! `FillBoundary` execution (uncached / cached serial / cached parallel) on a
//! ≥256-patch level. The cached paths are verified bitwise against the
//! uncached serial fill before anything is timed.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use crocco_bench::dmrscale::amr_case;
use crocco_fab::plan::fill_boundary_plan;
use crocco_fab::plan_cache::PlanCache;
use crocco_fab::{BoxArray, DistributionMapping, DistributionStrategy, MultiFab};
use crocco_geometry::{decompose::ChopParams, IndexBox, IntVect, ProblemDomain};
use crocco_runtime::default_threads;
use std::sync::Arc;

/// One refined level with ≥256 patches of `max_grid`³ cells each.
fn level(extents: [i64; 3], max_grid: i64, ncomp: usize, nghost: i64) -> (MultiFab, ProblemDomain) {
    let domain_box = IndexBox::from_extents(extents[0], extents[1], extents[2]);
    let domain = ProblemDomain::new(domain_box, [false, false, true]);
    let ba = Arc::new(BoxArray::decompose(
        domain_box,
        ChopParams::new(max_grid / 2, max_grid),
    ));
    assert!(ba.len() >= 256, "need a ≥256-patch level, got {}", ba.len());
    let dm = Arc::new(DistributionMapping::new(
        &ba,
        64,
        DistributionStrategy::MortonSfc,
    ));
    let mut mf = MultiFab::new(ba, dm, ncomp, nghost);
    for i in 0..mf.nfabs() {
        let valid = mf.valid_box(i);
        for p in valid.cells() {
            for c in 0..ncomp {
                let v = (p[0] + 3 * p[1] + 7 * p[2]) as f64 + c as f64;
                mf.fab_mut(i).set(p, c, v);
            }
        }
    }
    (mf, domain)
}

/// Bulk-data regime: 512 patches of 16³ cells, 5 components, 4 ghosts — the
/// solver's own state MultiFab shape. Ghost-copy volume dominates here.
fn big_level() -> (MultiFab, ProblemDomain) {
    level([256, 128, 64], 16, 5, 4)
}

/// Metadata-dominated regime: 512 patches of 4³ cells, 1 component, 1 ghost —
/// the many-small-patches shape where AMR plan construction outweighs the
/// ghost copies themselves (the regime the paper's Fig. 7 scaling hits).
fn fine_level() -> (MultiFab, ProblemDomain) {
    level([64, 32, 16], 4, 1, 1)
}

/// Asserts that cached serial and cached parallel fills reproduce the
/// uncached serial fill bit for bit (the acceptance condition for swapping
/// the execution path).
fn verify_bitwise(template: &MultiFab, domain: &ProblemDomain) {
    let mut base = template.clone();
    base.fill_boundary(domain);
    let cache = PlanCache::new();
    for threads in [1, default_threads()] {
        let mut mf = template.clone();
        mf.fill_boundary_cached(domain, &cache, threads);
        for i in 0..base.nfabs() {
            assert_eq!(
                mf.fab(i).data(),
                base.fab(i).data(),
                "cached fill (threads={threads}) diverged on patch {i}"
            );
        }
    }
}

/// Plan acquisition on the 3-level DMR metadata: every iteration asks for
/// all three levels' FillBoundary plans, either rebuilding them (cold) or
/// hitting the cache.
fn bench_plan_acquisition(c: &mut Criterion) {
    let case = amr_case(IntVect::new(1024, 256, 64), 64);
    let nboxes = case.total_boxes();
    assert!(nboxes >= 256, "DMR case too small: {nboxes} patches");
    let mut group = c.benchmark_group("plan_acquisition_dmr3");
    group.throughput(Throughput::Elements(nboxes as u64));
    group.bench_function("cold", |b| {
        b.iter(|| {
            for lev in &case.levels {
                black_box(fill_boundary_plan(&lev.ba, &lev.dm, &lev.domain, 4, 5));
            }
        });
    });
    let cache = PlanCache::new();
    for lev in &case.levels {
        cache.fill_boundary(&lev.ba, &lev.dm, &lev.domain, 4, 5);
    }
    group.bench_function("cached", |b| {
        b.iter(|| {
            for lev in &case.levels {
                black_box(cache.fill_boundary(&lev.ba, &lev.dm, &lev.domain, 4, 5));
            }
        });
    });
    group.finish();
}

/// Repeat-call FillBoundary on the 512-patch level: the steady-state cost
/// per RK stage. `uncached` rebuilds the plan every call (the
/// pre-optimization behavior); the cached variants reuse it, serially and
/// across the worker pool.
fn bench_fill_execution(c: &mut Criterion) {
    let (mut mf, domain) = big_level();
    verify_bitwise(&mf, &domain);
    let nboxes = mf.nfabs() as u64;
    let mut group = c.benchmark_group("fill_boundary_512_patches");
    group.throughput(Throughput::Elements(nboxes));
    group.sample_size(10);
    group.bench_function("uncached", |b| {
        b.iter(|| {
            black_box(mf.fill_boundary(&domain));
        });
    });
    let cache = PlanCache::new();
    group.bench_function("cached_serial", |b| {
        b.iter(|| {
            black_box(mf.fill_boundary_cached(&domain, &cache, 1));
        });
    });
    let threads = default_threads();
    group.bench_function("cached_parallel", |b| {
        b.iter(|| {
            black_box(mf.fill_boundary_cached(&domain, &cache, threads));
        });
    });
    group.finish();
}

/// Repeat-call FillBoundary in the metadata-dominated regime (512 tiny
/// patches): here the cached path must be ≥5× faster than rebuilding the
/// plan each call — the headline acceptance number for plan reuse.
fn bench_fill_fine_patches(c: &mut Criterion) {
    let (mut mf, domain) = fine_level();
    verify_bitwise(&mf, &domain);
    let nboxes = mf.nfabs() as u64;
    let mut group = c.benchmark_group("fill_boundary_fine_patches");
    group.throughput(Throughput::Elements(nboxes));
    group.bench_function("uncached", |b| {
        b.iter(|| {
            black_box(mf.fill_boundary(&domain));
        });
    });
    let cache = PlanCache::new();
    group.bench_function("cached_serial", |b| {
        b.iter(|| {
            black_box(mf.fill_boundary_cached(&domain, &cache, 1));
        });
    });
    let threads = default_threads();
    group.bench_function("cached_parallel", |b| {
        b.iter(|| {
            black_box(mf.fill_boundary_cached(&domain, &cache, threads));
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_plan_acquisition,
    bench_fill_execution,
    bench_fill_fine_patches
);
criterion_main!(benches);
