//! Criterion microbenchmarks of the actual Rust numerics kernels (the
//! host-measured counterpart of the modeled Fig. 3 curves): WENO sweeps per
//! direction, the viscous kernel, ComputeDt, the RK update, and the
//! reference-vs-optimized implementation pair.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use crocco_fab::{BoxArray, DistributionMapping, FArrayBox, MultiFab};
use crocco_geometry::{IndexBox, IntVect, RealVect, StretchedMapping};
use crocco_solver::kernels::{compute_dt_patch, viscous_flux, weno_flux, NGHOST};
use crocco_solver::metrics::{compute_metrics, generate_coords, NCOORDS, NMETRICS};
use crocco_solver::reference::weno_flux_reference;
use crocco_solver::state::{Conserved, Primitive, NCONS};
use crocco_solver::{PerfectGas, WenoVariant};
use std::sync::Arc;

struct Patch {
    state: MultiFab,
    metrics: MultiFab,
    gas: PerfectGas,
}

fn make_patch(edge: i64) -> Patch {
    let gas = PerfectGas::nondimensional();
    let extents = IntVect::new(edge, edge, edge);
    let bx = IndexBox::from_extents(edge, edge, edge);
    let ba = Arc::new(BoxArray::new(vec![bx]));
    let dm = Arc::new(DistributionMapping::all_on_root(&ba));
    let map = StretchedMapping::new(RealVect::ZERO, RealVect::splat(1.0), 1.2, 1);
    let mut coords = MultiFab::new(ba.clone(), dm.clone(), NCOORDS, NGHOST + 2);
    generate_coords(&map, extents, &mut coords);
    let mut metrics = MultiFab::new(ba.clone(), dm.clone(), NMETRICS, NGHOST);
    compute_metrics(&coords, &mut metrics);
    let mut state = MultiFab::new(ba, dm, NCONS, NGHOST);
    let all = state.fab(0).bx();
    for p in all.cells() {
        let x = p[0] as f64 / edge as f64;
        let w = Primitive {
            rho: 1.0 + 0.2 * (6.0 * x).sin(),
            vel: [0.7, -0.2, 0.1],
            p: 1.0 + 0.1 * (4.0 * x).cos(),
            t: 0.0,
        };
        let u = Conserved::from_primitive(&w, &gas);
        for c in 0..NCONS {
            state.fab_mut(0).set(p, c, u.0[c]);
        }
    }
    Patch {
        state,
        metrics,
        gas,
    }
}

fn bench_weno(c: &mut Criterion) {
    let mut group = c.benchmark_group("weno_flux");
    for edge in [16i64, 32] {
        let patch = make_patch(edge);
        let valid = patch.state.valid_box(0);
        group.throughput(Throughput::Elements(valid.num_points()));
        for dir in 0..3 {
            group.bench_with_input(
                BenchmarkId::new(format!("dir{dir}"), edge),
                &dir,
                |b, &dir| {
                    let mut rhs = FArrayBox::new(valid, NCONS);
                    b.iter(|| {
                        weno_flux(
                            patch.state.fab(0),
                            patch.metrics.fab(0),
                            &mut rhs,
                            valid,
                            dir,
                            &patch.gas,
                            WenoVariant::Symbo,
                        );
                        black_box(&rhs);
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_reference_vs_optimized(c: &mut Criterion) {
    // The host-measured analog of the paper's Fortran/C++ comparison: the
    // reference implementation recomputes per face and is expected to be
    // measurably slower at identical results.
    let patch = make_patch(24);
    let valid = patch.state.valid_box(0);
    let mut group = c.benchmark_group("weno_impl");
    group.throughput(Throughput::Elements(valid.num_points()));
    group.bench_function("optimized", |b| {
        let mut rhs = FArrayBox::new(valid, NCONS);
        b.iter(|| {
            weno_flux(
                patch.state.fab(0),
                patch.metrics.fab(0),
                &mut rhs,
                valid,
                0,
                &patch.gas,
                WenoVariant::Js5,
            );
            black_box(&rhs);
        });
    });
    group.bench_function("reference", |b| {
        let mut rhs = FArrayBox::new(valid, NCONS);
        b.iter(|| {
            weno_flux_reference(
                patch.state.fab(0),
                patch.metrics.fab(0),
                &mut rhs,
                valid,
                0,
                &patch.gas,
                WenoVariant::Js5,
            );
            black_box(&rhs);
        });
    });
    group.finish();
}

fn bench_viscous(c: &mut Criterion) {
    let gas_air = PerfectGas::air();
    let patch = make_patch(24);
    let valid = patch.state.valid_box(0);
    let mut group = c.benchmark_group("viscous_flux");
    group.throughput(Throughput::Elements(valid.num_points()));
    group.bench_function("air", |b| {
        let mut rhs = FArrayBox::new(valid, NCONS);
        b.iter(|| {
            viscous_flux(
                patch.state.fab(0),
                patch.metrics.fab(0),
                &mut rhs,
                valid,
                &gas_air,
            );
            black_box(&rhs);
        });
    });
    group.finish();
}

fn bench_compute_dt(c: &mut Criterion) {
    let patch = make_patch(32);
    let valid = patch.state.valid_box(0);
    let mut group = c.benchmark_group("compute_dt");
    group.throughput(Throughput::Elements(valid.num_points()));
    group.bench_function("patch32", |b| {
        b.iter(|| {
            black_box(compute_dt_patch(
                patch.state.fab(0),
                patch.metrics.fab(0),
                valid,
                &patch.gas,
                0.6,
            ))
        });
    });
    group.finish();
}

fn bench_update(c: &mut Criterion) {
    let bx = IndexBox::from_extents(32, 32, 32);
    let mut du = FArrayBox::filled(bx, NCONS, 1.0);
    let rhs = FArrayBox::filled(bx, NCONS, 0.5);
    let mut group = c.benchmark_group("rk_update");
    group.throughput(Throughput::Elements(bx.num_points()));
    group.bench_function("lincomb32", |b| {
        b.iter(|| {
            du.lincomb(black_box(-5.0 / 9.0), black_box(1e-3), &rhs);
            black_box(&du);
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_weno,
    bench_reference_vs_optimized,
    bench_viscous,
    bench_compute_dt,
    bench_update
);
criterion_main!(benches);
