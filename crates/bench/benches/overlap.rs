//! Criterion benchmark for the task-graph RK-stage executor
//! (`SolverConfig::overlap`, DESIGN.md §4e) against the barrier executor on
//! the 512-patch level the plan-cache benchmarks established: a single-level
//! [256, 128, 64] domain chopped into 16-cube patches — the solver's own
//! state shape, big enough that per-stage barriers and halo latency are
//! visible against the WENO kernel cost.
//!
//! Before anything is timed, both executors advance the same initial state
//! and the results are compared bit for bit — the acceptance condition for
//! swapping the execution path.

use criterion::{criterion_group, criterion_main, Criterion};
use crocco_runtime::default_threads;
use crocco_solver::config::{CodeVersion, SolverConfig, SolverConfigBuilder};
use crocco_solver::driver::Simulation;
use crocco_solver::problems::ProblemKind;

/// The 512-patch single-level configuration: [256, 128, 64] cells in
/// 16-cube patches (`BoxArray::decompose` yields exactly 16^3 / patch), on
/// the curvilinear ramp so the metrics are nontrivial.
fn big_cfg() -> SolverConfigBuilder {
    SolverConfig::builder()
        .problem(ProblemKind::Ramp)
        .extents(256, 128, 64)
        .version(CodeVersion::V1_1)
        .max_grid_size(16)
}

/// Flattens every level's valid state to bit patterns for exact comparison.
fn state_bits(sim: &Simulation) -> Vec<u64> {
    let mut bits = Vec::new();
    for l in 0..sim.nlevels() {
        let state = &sim.level(l).state;
        for i in 0..state.nfabs() {
            for c in 0..state.ncomp() {
                for p in state.valid_box(i).cells() {
                    bits.push(state.fab(i).get(p, c).to_bits());
                }
            }
        }
    }
    bits
}

/// Asserts the task-graph executor reproduces the barrier executor bit for
/// bit on a smaller cut of the same configuration (full-size verification
/// would double the bench's setup cost for no extra coverage).
fn verify_bitwise(threads: usize) {
    let small = || {
        SolverConfig::builder()
            .problem(ProblemKind::Ramp)
            .extents(64, 32, 16)
            .version(CodeVersion::V1_1)
            .max_grid_size(16)
            .threads(threads)
    };
    let mut barrier = Simulation::new(small().build());
    let mut graph = Simulation::new(small().overlap(true).build());
    barrier.advance_steps(2);
    graph.advance_steps(2);
    assert_eq!(
        state_bits(&barrier),
        state_bits(&graph),
        "task-graph executor (threads={threads}) diverged from the barrier path"
    );
}

fn bench_step(c: &mut Criterion) {
    let nthreads = default_threads().max(2);
    for t in [1, nthreads] {
        verify_bitwise(t);
    }

    let mut group = c.benchmark_group("overlap_step");
    group.sample_size(10);
    for (label, overlap, threads) in [
        ("barrier_serial", false, 1usize),
        ("graph_serial", true, 1),
        ("barrier_threaded", false, nthreads),
        ("graph_threaded", true, nthreads),
    ] {
        let mut sim = Simulation::new(big_cfg().overlap(overlap).threads(threads).build());
        // Warm the plan cache and let dt settle before sampling.
        sim.advance_steps(1);
        group.bench_function(label, |b| b.iter(|| sim.step()));
    }
    group.finish();
}

criterion_group!(benches, bench_step);
criterion_main!(benches);
