//! Criterion benchmark for the distributed stage executors
//! (`SolverConfig::dist_overlap`, DESIGN.md §4f): fenced vs rank-crossing
//! task graph on a 2-rank `LocalCluster` running the curvilinear ramp. Each
//! sample advances a fixed number of steps inside a fresh cluster (thread
//! ranks cannot persist across `iter` calls), so the measurement includes
//! the skeleton-cache warm-up exactly once per sample — the steady-state
//! stages after it re-bind only RK coefficients.
//!
//! Before anything is timed, the fenced and overlapped runs are compared bit
//! for bit against the single-rank driver — the acceptance condition for the
//! distributed data path.

use criterion::{criterion_group, criterion_main, Criterion};
use crocco_runtime::LocalCluster;
use crocco_solver::config::{CodeVersion, SolverConfig, SolverConfigBuilder};
use crocco_solver::driver::Simulation;
use crocco_solver::problems::ProblemKind;

const NRANKS: usize = 2;
const STEPS: u32 = 4;

fn ramp_builder() -> SolverConfigBuilder {
    SolverConfig::builder()
        .problem(ProblemKind::Ramp)
        .extents(48, 24, 8)
        .version(CodeVersion::V2_0)
        .max_levels(2)
        .blocking_factor(4)
        .max_grid_size(16)
        .regrid_freq(3)
        .cfl(0.5)
}

/// Flattens every level's valid state to bit patterns for exact comparison.
fn state_bits(sim: &Simulation) -> Vec<u64> {
    let mut bits = Vec::new();
    for l in 0..sim.nlevels() {
        let state = &sim.level(l).state;
        for i in 0..state.nfabs() {
            for c in 0..state.ncomp() {
                for p in state.valid_box(i).cells() {
                    bits.push(state.fab(i).get(p, c).to_bits());
                }
            }
        }
    }
    bits
}

fn cluster_run(overlap: bool, threads: usize) -> Vec<Vec<u64>> {
    let cfg = ramp_builder()
        .nranks(NRANKS)
        .threads(threads)
        .dist_overlap(overlap)
        .build();
    LocalCluster::run(NRANKS, move |ep| {
        let mut sim = Simulation::new(cfg.clone());
        sim.advance_steps_cluster(STEPS, &ep);
        state_bits(&sim)
    })
}

fn bench_dist_step(c: &mut Criterion) {
    let mut reference = Simulation::new(ramp_builder().build());
    reference.advance_steps(STEPS);
    let ref_bits = state_bits(&reference);
    for overlap in [false, true] {
        for bits in cluster_run(overlap, 2) {
            assert_eq!(
                ref_bits, bits,
                "distributed run (overlap={overlap}) diverged from the single-rank driver"
            );
        }
    }

    let mut group = c.benchmark_group("dist_overlap_advance");
    group.sample_size(10);
    for (label, overlap, threads) in [
        ("fenced_serial", false, 1usize),
        ("graph_serial", true, 1),
        ("fenced_threaded", false, 2),
        ("graph_threaded", true, 2),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| cluster_run(overlap, threads));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dist_step);
criterion_main!(benches);
