//! Criterion microbenchmarks of the AMR framework operations: FillBoundary,
//! two-level FillPatch (both interpolators — the 2.0/2.1 axis), AverageDown,
//! Berger–Rigoutsos clustering, Morton encoding, and plan construction.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use crocco_amr::fillpatch::{fill_patch_two_levels, NoOpBoundary};
use crocco_amr::interp::{CurvilinearInterp, TrilinearInterp};
use crocco_amr::{average_down, cluster_tags, ClusterParams, TagSet};
use crocco_fab::plan::fill_boundary_plan;
use crocco_fab::{BoxArray, DistributionMapping, DistributionStrategy, MultiFab};
use crocco_geometry::{decompose::ChopParams, morton, IndexBox, IntVect, ProblemDomain};
use std::sync::Arc;

fn level(domain_box: IndexBox, max_grid: i64, ncomp: usize, nghost: i64) -> MultiFab {
    let ba = Arc::new(BoxArray::decompose(domain_box, ChopParams::new(4, max_grid)));
    let dm = Arc::new(DistributionMapping::new(
        &ba,
        8,
        DistributionStrategy::MortonSfc,
    ));
    let mut mf = MultiFab::new(ba, dm, ncomp, nghost);
    for i in 0..mf.nfabs() {
        let bx = mf.fab(i).bx();
        for p in bx.cells() {
            for c in 0..ncomp {
                let v = (p[0] + 3 * p[1] + 7 * p[2]) as f64 + c as f64;
                mf.fab_mut(i).set(p, c, v);
            }
        }
    }
    mf
}

fn bench_fill_boundary(c: &mut Criterion) {
    let domain_box = IndexBox::from_extents(64, 32, 16);
    let domain = ProblemDomain::new(domain_box, [false, false, true]);
    let mut mf = level(domain_box, 16, 5, 4);
    let mut group = c.benchmark_group("fill_boundary");
    group.throughput(Throughput::Elements(domain_box.num_points()));
    group.bench_function("64x32x16_g4", |b| {
        b.iter(|| {
            black_box(mf.fill_boundary(&domain));
        });
    });
    group.finish();
}

fn bench_fill_boundary_plan_only(c: &mut Criterion) {
    // Metadata-path cost: what the Summit-scale studies pay per level.
    let domain_box = IndexBox::from_extents(128, 64, 32);
    let domain = ProblemDomain::new(domain_box, [false, false, true]);
    let ba = BoxArray::decompose(domain_box, ChopParams::new(8, 16));
    let dm = DistributionMapping::new(&ba, 64, DistributionStrategy::MortonSfc);
    let mut group = c.benchmark_group("fill_boundary_plan");
    group.throughput(Throughput::Elements(ba.len() as u64));
    group.bench_function("1024_boxes", |b| {
        b.iter(|| black_box(fill_boundary_plan(&ba, &dm, &domain, 4, 5).stats()));
    });
    group.finish();
}

fn bench_fill_patch_two_levels(c: &mut Criterion) {
    let cdom_box = IndexBox::from_extents(32, 32, 16);
    let cdomain = ProblemDomain::new(cdom_box, [false, false, true]);
    let fdomain = cdomain.refine(IntVect::splat(2));
    let coarse = level(cdom_box, 16, 5, 4);
    let fine_box = IndexBox::new(IntVect::new(16, 16, 8), IntVect::new(47, 47, 23));
    let mut fine = {
        let ba = Arc::new(BoxArray::decompose(fine_box, ChopParams::new(4, 16)));
        let dm = Arc::new(DistributionMapping::all_on_root(&ba));
        MultiFab::new(ba, dm, 5, 4)
    };
    // Coordinates for the curvilinear interpolator.
    let mk_coords = |mf: &MultiFab, scale: f64| {
        let mut coords = MultiFab::new(mf.boxarray().clone(), mf.distribution().clone(), 3, 4);
        for i in 0..coords.nfabs() {
            let bx = coords.fab(i).bx();
            for p in bx.cells() {
                for d in 0..3 {
                    coords.fab_mut(i).set(p, d, (p[d] as f64 + 0.5) * scale);
                }
            }
        }
        coords
    };
    let ccoords = mk_coords(&coarse, 1.0);
    let fcoords = mk_coords(&fine, 0.5);

    let mut group = c.benchmark_group("fill_patch_two_levels");
    group.throughput(Throughput::Elements(fine.boxarray().num_points()));
    group.bench_function("trilinear_v2_1", |b| {
        b.iter(|| {
            black_box(fill_patch_two_levels(
                &mut fine,
                &coarse,
                &fdomain,
                &cdomain,
                IntVect::splat(2),
                &TrilinearInterp,
                &NoOpBoundary,
                &NoOpBoundary,
                None,
                None,
                0.0,
            ));
        });
    });
    group.bench_function("curvilinear_v2_0", |b| {
        b.iter(|| {
            black_box(fill_patch_two_levels(
                &mut fine,
                &coarse,
                &fdomain,
                &cdomain,
                IntVect::splat(2),
                &CurvilinearInterp,
                &NoOpBoundary,
                &NoOpBoundary,
                Some(&ccoords),
                Some(&fcoords),
                0.0,
            ));
        });
    });
    group.finish();
}

fn bench_average_down(c: &mut Criterion) {
    let fine = level(IndexBox::from_extents(64, 32, 16), 16, 5, 0);
    let mut coarse = level(IndexBox::from_extents(32, 16, 8), 16, 5, 0);
    let mut group = c.benchmark_group("average_down");
    group.throughput(Throughput::Elements(fine.boxarray().num_points()));
    group.bench_function("64x32x16", |b| {
        b.iter(|| {
            average_down::average_down(&fine, &mut coarse, IntVect::splat(2));
            black_box(&coarse);
        });
    });
    group.finish();
}

fn bench_cluster(c: &mut Criterion) {
    // A diagonal shock-front tag pattern, the hard case for clustering.
    let domain = IndexBox::from_extents(128, 128, 16);
    let mut tags = TagSet::new();
    for i in 0..128 {
        for k in 0..16 {
            for w in -2i64..3 {
                let j = (i + w).clamp(0, 127);
                tags.tag(IntVect::new(i, j, k));
            }
        }
    }
    let params = ClusterParams {
        efficiency: 0.7,
        blocking_factor: 8,
        max_grid_size: 32,
        domain,
    };
    let mut group = c.benchmark_group("berger_rigoutsos");
    group.throughput(Throughput::Elements(tags.len() as u64));
    group.bench_function("diagonal_front", |b| {
        b.iter(|| black_box(cluster_tags(&tags, params)));
    });
    group.finish();
}

fn bench_morton(c: &mut Criterion) {
    let points: Vec<IntVect> = (0..4096)
        .map(|i| IntVect::new(i % 64, (i / 64) % 64, i / 4096))
        .collect();
    let mut group = c.benchmark_group("morton");
    group.throughput(Throughput::Elements(points.len() as u64));
    group.bench_function("encode_4096", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &p in &points {
                acc ^= morton::encode(p);
            }
            black_box(acc)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fill_boundary,
    bench_fill_boundary_plan_only,
    bench_fill_patch_two_levels,
    bench_average_down,
    bench_cluster,
    bench_morton
);
criterion_main!(benches);
