//! Criterion microbenchmarks of the kernel backends (DESIGN.md §4h):
//! Scalar vs Lanes vs Fused on a 512-patch level (64³ cells chopped to 8³
//! patches — the AMR-realistic shape where per-patch overheads matter),
//! swept across tile shapes. The acceptance bar for the lane backend —
//! ≥ 1.5× single-thread over Scalar on the WENO flux — is measured by the
//! `weno_x` group; `docs/results/backend.md` records the numbers.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use crocco_fab::{tiled_work_list, BoxArray, DistributionMapping, FArrayBox, MultiFab};
use crocco_geometry::decompose::ChopParams;
use crocco_geometry::{IndexBox, IntVect, RealVect, StretchedMapping};
use crocco_solver::backend::{fused, BackendKind};
use crocco_solver::kernels::NGHOST;
use crocco_solver::metrics::{compute_metrics, generate_coords, NCOORDS, NMETRICS};
use crocco_solver::state::{Conserved, Primitive, NCONS};
use crocco_solver::weno::Reconstruction;
use crocco_solver::{PerfectGas, WenoVariant};
use std::sync::Arc;

struct Level {
    state: MultiFab,
    metrics: MultiFab,
    gas: PerfectGas,
    cells: u64,
}

/// 64³ cells chopped into 512 patches of 8³, on a stretched (curvilinear)
/// grid with a nonlinear flow field.
fn make_level() -> Level {
    let gas = PerfectGas::nondimensional();
    let edge = 64i64;
    let extents = IntVect::new(edge, edge, edge);
    let ba = Arc::new(BoxArray::decompose(
        IndexBox::from_extents(edge, edge, edge),
        ChopParams::new(8, 8),
    ));
    assert_eq!(ba.len(), 512, "bench wants the 512-patch level");
    let dm = Arc::new(DistributionMapping::all_on_root(&ba));
    let map = StretchedMapping::new(RealVect::ZERO, RealVect::splat(1.0), 1.2, 1);
    let mut coords = MultiFab::new(ba.clone(), dm.clone(), NCOORDS, NGHOST + 2);
    generate_coords(&map, extents, &mut coords);
    let mut metrics = MultiFab::new(ba.clone(), dm.clone(), NMETRICS, NGHOST);
    compute_metrics(&coords, &mut metrics);
    let mut state = MultiFab::new(ba.clone(), dm, NCONS, NGHOST);
    for i in 0..state.nfabs() {
        let all = state.fab(i).bx();
        for p in all.cells() {
            let x = p[0] as f64 / edge as f64;
            let y = p[1] as f64 / edge as f64;
            let w = Primitive {
                rho: 1.0 + 0.2 * (5.0 * x).sin() * (3.0 * y).cos(),
                vel: [0.6 - 0.3 * y, 0.2 * (4.0 * x).cos(), 0.1],
                p: 1.0 + 0.1 * (3.0 * x + 2.0 * y).sin(),
                t: 0.0,
            };
            let u = Conserved::from_primitive(&w, &gas);
            for c in 0..NCONS {
                state.fab_mut(i).set(p, c, u.0[c]);
            }
        }
    }
    let cells = ba.num_points();
    Level {
        state,
        metrics,
        gas,
        cells,
    }
}

fn rhs_fabs(lvl: &Level) -> Vec<FArrayBox> {
    (0..lvl.state.nfabs())
        .map(|i| FArrayBox::new(lvl.state.valid_box(i), NCONS))
        .collect()
}

/// The acceptance-bar measurement: one WENO x-sweep over all 512 patches,
/// per backend, single-threaded.
fn bench_weno_x(c: &mut Criterion) {
    let lvl = make_level();
    let mut rhs = rhs_fabs(&lvl);
    let mut group = c.benchmark_group("backend_weno_x");
    group.sample_size(20);
    group.throughput(Throughput::Elements(lvl.cells));
    for k in BackendKind::ALL {
        group.bench_function(k.label(), |b| {
            b.iter(|| {
                for (i, r) in rhs.iter_mut().enumerate() {
                    k.weno_flux_recon(
                        lvl.state.fab(i),
                        lvl.metrics.fab(i),
                        r,
                        lvl.state.valid_box(i),
                        0,
                        &lvl.gas,
                        WenoVariant::Symbo,
                        Reconstruction::ComponentWise,
                    );
                }
                black_box(&rhs);
            });
        });
    }
    group.finish();
}

/// Full stage RHS + dU update per backend × tile shape. All backends do the
/// same logical work (zero, three WENO sweeps, dU ← dt·rhs with a = 0 so
/// state is never mutated across iterations); the fused backend runs it as
/// its per-tile program, the others as tiled sweeps plus a whole-fab axpy.
fn bench_stage_tiles(c: &mut Criterion) {
    let lvl = make_level();
    let mut rhs = rhs_fabs(&lvl);
    let mut du = rhs_fabs(&lvl);
    let (a, dt) = (0.0, 1e-3);
    let tiles: [(&str, IntVect); 3] = [
        ("pencil8", IntVect::new(1_000_000, 8, 8)),
        ("pencil4", IntVect::new(1_000_000, 4, 4)),
        ("cube8", IntVect::new(8, 8, 8)),
    ];
    let mut group = c.benchmark_group("backend_stage");
    group.sample_size(10);
    group.throughput(Throughput::Elements(lvl.cells));
    for k in BackendKind::ALL {
        for (tname, tile) in tiles {
            group.bench_with_input(BenchmarkId::new(k.label(), tname), &tile, |b, &tile| {
                if k == BackendKind::Fused {
                    let prog = fused::KernelIr::rk_stage(false).fuse();
                    b.iter(|| {
                        for i in 0..lvl.state.nfabs() {
                            fused::run_stage_patch(
                                &prog,
                                lvl.state.fab(i),
                                lvl.metrics.fab(i),
                                &mut rhs[i],
                                &mut du[i],
                                lvl.state.valid_box(i),
                                tile,
                                &lvl.gas,
                                WenoVariant::Symbo,
                                Reconstruction::ComponentWise,
                                None,
                                a,
                                dt,
                            );
                        }
                        black_box(&du);
                    });
                } else {
                    let work = tiled_work_list(&lvl.state, tile);
                    b.iter(|| {
                        for r in rhs.iter_mut() {
                            r.fill(0.0);
                        }
                        for &(i, t) in &work {
                            k.accumulate_rhs(
                                lvl.state.fab(i),
                                lvl.metrics.fab(i),
                                &mut rhs[i],
                                t,
                                &lvl.gas,
                                WenoVariant::Symbo,
                                Reconstruction::ComponentWise,
                                None,
                            );
                        }
                        for (d, r) in du.iter_mut().zip(&rhs) {
                            d.lincomb(a, dt, r);
                        }
                        black_box(&du);
                    });
                }
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_weno_x, bench_stage_tiles);
criterion_main!(benches);
