//! Fig. 3: kernel time per iteration vs problem size — Fortran CPU, C++ CPU,
//! and GPU, on one 22-core POWER9 socket and one V100.

use crocco_perfmodel::kernelspec::{viscous_spec, weno_spec, KernelSpec};
use crocco_perfmodel::{CpuBackend, SummitPlatform};
use serde::{Deserialize, Serialize};

/// The problem sizes of the Fig. 3 sweep (total coarse grid points).
pub const SIZES: [u64; 8] = [
    10_000, 25_000, 100_000, 500_000, 1_000_000, 5_000_000, 10_000_000, 20_000_000,
];

/// One point on a Fig. 3 curve.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct KernelPoint {
    /// Total grid points in the domain.
    pub points: u64,
    /// Time per iteration in the kernel: Fortran on 22 POWER9 cores (s).
    pub fortran_cpu: f64,
    /// C++ on 22 POWER9 cores (s).
    pub cpp_cpu: f64,
    /// GPU (one V100), including per-patch launch overhead (s).
    pub gpu: f64,
}

impl KernelPoint {
    /// GPU speedup over the C++ CPU implementation.
    pub fn gpu_speedup(&self) -> f64 {
        self.cpp_cpu / self.gpu
    }

    /// C++ slowdown relative to Fortran (§IV-A reports ≈1.2×).
    pub fn cpp_slowdown(&self) -> f64 {
        self.cpp_cpu / self.fortran_cpu
    }
}

/// Time per iteration in one kernel at one size. "Per iteration" means the
/// three RK stages of Algorithm 2, with the domain chopped into the paper's
/// max-grid-128 patches for the per-patch GPU launches.
pub fn kernel_point(spec: &KernelSpec, points: u64, platform: &SummitPlatform) -> KernelPoint {
    let stages = 3.0;
    let fortran_cpu =
        stages * platform.cpu.socket_time(spec, points, CpuBackend::Fortran);
    let cpp_cpu = stages * platform.cpu.socket_time(spec, points, CpuBackend::Cpp);
    // GPU: one launch per patch per stage.
    let patch_cells: u64 = 128 * 128 * 128;
    let full = points / patch_cells;
    let rem = points % patch_cells;
    let mut gpu = 0.0;
    for _ in 0..full {
        gpu += platform.gpu.kernel_time(spec, patch_cells);
    }
    if rem > 0 {
        gpu += platform.gpu.kernel_time(spec, rem);
    }
    gpu *= stages;
    KernelPoint {
        points,
        fortran_cpu,
        cpp_cpu,
        gpu,
    }
}

/// The full WENOx curve.
pub fn wenox_curve(platform: &SummitPlatform) -> Vec<KernelPoint> {
    SIZES
        .iter()
        .map(|&n| kernel_point(&weno_spec(0), n, platform))
        .collect()
}

/// The full Viscous curve.
pub fn viscous_curve(platform: &SummitPlatform) -> Vec<KernelPoint> {
    SIZES
        .iter()
        .map(|&n| kernel_point(&viscous_spec(), n, platform))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpp_slowdown_is_consistently_1_2x() {
        let p = SummitPlatform::new();
        for pt in wenox_curve(&p).iter().chain(viscous_curve(&p).iter()) {
            assert!((pt.cpp_slowdown() - 1.2).abs() < 1e-9);
        }
    }

    #[test]
    fn wenox_gpu_speedup_peaks_near_16x_at_large_sizes() {
        // Fig. 3: "a 15.8× speedup on the largest size for WENOx".
        let p = SummitPlatform::new();
        let curve = wenox_curve(&p);
        let last = curve.last().unwrap();
        assert!(
            (12.0..20.0).contains(&last.gpu_speedup()),
            "large-size WENOx speedup {:.1}",
            last.gpu_speedup()
        );
    }

    #[test]
    fn speedup_grows_with_problem_size() {
        // "GPUs are most efficient" at large sizes: the speedup must be
        // monotone-ish increasing across the sweep.
        let p = SummitPlatform::new();
        for curve in [wenox_curve(&p), viscous_curve(&p)] {
            let first = curve.first().unwrap().gpu_speedup();
            let last = curve.last().unwrap().gpu_speedup();
            assert!(
                last > first * 1.5,
                "speedup should grow: {first:.2} -> {last:.2}"
            );
        }
    }

    #[test]
    fn viscous_small_size_speedup_is_modest() {
        // Fig. 3: "a 2.5× speedup on the smallest problem size for Viscous".
        let p = SummitPlatform::new();
        let first = viscous_curve(&p)[0].gpu_speedup();
        assert!(
            (1.5..6.0).contains(&first),
            "small-size Viscous speedup {first:.2} out of band"
        );
    }
}
