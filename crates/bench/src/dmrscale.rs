//! Synthetic DMR-shaped AMR hierarchies at Summit scale.
//!
//! The scaling figures need the *metadata* of the paper's runs — tens of
//! thousands of patches over thousands of ranks — which cannot be produced by
//! actually solving a 4.19e10-point flow on this machine. Instead we build
//! the hierarchy the DMR flow induces: the coarse level covers the domain,
//! level 1 tracks the shock system over a band of the domain, and level 2
//! tracks the Mach stems and slip lines over a narrower band, with coverage
//! fractions chosen so the active-point reduction lands in the paper's
//! 89–94 % window (§V-C). FillBoundary/ParallelCopy plans computed from this
//! metadata are exact for these grids.

use crocco_fab::{BoxArray, DistributionMapping, DistributionStrategy};
use crocco_geometry::decompose::ChopParams;
use crocco_geometry::{IndexBox, IntVect, ProblemDomain};

/// Fraction of the domain covered by level 1 (the shock-system band).
pub const LEVEL1_FRACTION: f64 = 0.15;
/// Fraction covered by level 2 (Mach stems / slip lines).
pub const LEVEL2_FRACTION: f64 = 0.05;
/// Where the band centers sit along x (the reflected-shock region).
pub const BAND_CENTER: f64 = 0.55;

/// One level's metadata.
#[derive(Clone, Debug)]
pub struct LevelMeta {
    /// Patches.
    pub ba: BoxArray,
    /// Owners.
    pub dm: DistributionMapping,
    /// Level domain.
    pub domain: ProblemDomain,
    /// Max patch edge chosen for this level.
    pub max_grid: i64,
}

/// A scaled case: per-level metadata plus rank count.
#[derive(Clone, Debug)]
pub struct ScaledCase {
    /// Levels, coarsest first (length 1 when AMR is off).
    pub levels: Vec<LevelMeta>,
    /// MPI ranks.
    pub nranks: usize,
    /// Equivalent (uniform-fine) points.
    pub equivalent_points: u64,
}

impl ScaledCase {
    /// Total active points.
    pub fn active_points(&self) -> u64 {
        self.levels.iter().map(|l| l.ba.num_points()).sum()
    }

    /// AMR point reduction vs the equivalent uniform grid.
    pub fn reduction_fraction(&self) -> f64 {
        1.0 - self.active_points() as f64 / self.equivalent_points as f64
    }

    /// Total patch count across levels.
    pub fn total_boxes(&self) -> usize {
        self.levels.iter().map(|l| l.ba.len()).sum()
    }
}

/// Picks a max-grid edge for `cells` distributed over `nranks`: the largest
/// blocking-aligned edge that still yields ≳1.2 boxes per rank, clamped to
/// [16, 128]. This mirrors how AMReX users hand-tune `max_grid_size` per
/// backend and scale (the paper "lightly hand-tuned" theirs); an adaptive
/// rule keeps every configuration in this study sane without per-case
/// constants.
pub fn pick_max_grid(cells: u64, nranks: usize) -> i64 {
    let target = (cells as f64 / (1.2 * nranks as f64)).cbrt();
    let snapped = ((target / 8.0).floor() as i64) * 8;
    snapped.clamp(16, 128)
}

/// z-periodic domain (the DMR span).
fn dmr_domain(extents: IntVect) -> ProblemDomain {
    ProblemDomain::new(
        IndexBox::from_extents(extents[0], extents[1], extents[2]),
        [false, false, true],
    )
}

/// Builds a band box over fraction `f` of the x extent, centered at
/// `BAND_CENTER`, spanning full y/z, snapped to blocking factor 8.
fn band(domain: IndexBox, f: f64) -> IndexBox {
    let nx = domain.size()[0];
    let width = (((nx as f64 * f) / 8.0).round() as i64 * 8).max(8);
    let center = (nx as f64 * BAND_CENTER) as i64;
    let lo = ((center - width / 2) / 8 * 8).clamp(0, nx - width);
    IndexBox::new(
        IntVect::new(lo, 0, 0),
        IntVect::new(lo + width - 1, domain.hi()[1], domain.hi()[2]),
    )
}

/// Builds the three-level AMR metadata for equivalent extents `equiv`
/// (finest-level index space) over `nranks` ranks.
pub fn amr_case(equiv: IntVect, nranks: usize) -> ScaledCase {
    let r2 = IntVect::splat(2);
    let dom2 = dmr_domain(equiv);
    let dom1 = dom2.coarsen(r2);
    let dom0 = dom1.coarsen(r2);

    let mut levels = Vec::new();
    // Level 0: full domain.
    {
        let cells = dom0.bx.num_points();
        let mg = pick_max_grid(cells, nranks);
        let ba = BoxArray::decompose(dom0.bx, ChopParams::new(8, mg));
        let dm = DistributionMapping::new(&ba, nranks, DistributionStrategy::MortonSfc);
        levels.push(LevelMeta {
            ba,
            dm,
            domain: dom0,
            max_grid: mg,
        });
    }
    // Level 1: shock band.
    {
        let b = band(dom1.bx, LEVEL1_FRACTION);
        let mg = pick_max_grid(b.num_points(), nranks);
        let ba = BoxArray::decompose(b, ChopParams::new(8, mg));
        let dm = DistributionMapping::new(&ba, nranks, DistributionStrategy::MortonSfc);
        levels.push(LevelMeta {
            ba,
            dm,
            domain: dom1,
            max_grid: mg,
        });
    }
    // Level 2: stem band.
    {
        let b = band(dom2.bx, LEVEL2_FRACTION);
        let mg = pick_max_grid(b.num_points(), nranks);
        let ba = BoxArray::decompose(b, ChopParams::new(8, mg));
        let dm = DistributionMapping::new(&ba, nranks, DistributionStrategy::MortonSfc);
        levels.push(LevelMeta {
            ba,
            dm,
            domain: dom2,
            max_grid: mg,
        });
    }
    ScaledCase {
        levels,
        nranks,
        equivalent_points: dom2.bx.num_points(),
    }
}

/// Builds the single-level (AMR-disabled) metadata at the equivalent
/// resolution — CRoCCo 1.0/1.1.
pub fn uniform_case(equiv: IntVect, nranks: usize) -> ScaledCase {
    let dom = dmr_domain(equiv);
    let cells = dom.bx.num_points();
    let mg = pick_max_grid(cells, nranks);
    let ba = BoxArray::decompose(dom.bx, ChopParams::new(8, mg));
    let dm = DistributionMapping::new(&ba, nranks, DistributionStrategy::MortonSfc);
    ScaledCase {
        levels: vec![LevelMeta {
            ba,
            dm,
            domain: dom,
            max_grid: mg,
        }],
        nranks,
        equivalent_points: cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_lands_in_the_papers_window() {
        // §V-C: "AMR demonstrates a 89-94% reduction in actual grid points".
        let case = amr_case(IntVect::new(1280, 320, 640), 96);
        let r = case.reduction_fraction();
        assert!(
            (0.88..0.95).contains(&r),
            "reduction {r:.3} outside the paper's window"
        );
    }

    #[test]
    fn uniform_case_has_no_reduction() {
        let case = uniform_case(IntVect::new(640, 160, 320), 168);
        assert_eq!(case.reduction_fraction(), 0.0);
        assert_eq!(case.levels.len(), 1);
    }

    #[test]
    fn boxes_scale_with_ranks() {
        let small = amr_case(IntVect::new(640, 160, 320), 24);
        let large = amr_case(IntVect::new(1280, 320, 640), 192);
        assert!(large.total_boxes() > small.total_boxes());
        // Enough parallelism: at least one box per rank in aggregate.
        assert!(small.total_boxes() >= 24);
        assert!(large.total_boxes() >= 192);
    }

    #[test]
    fn pick_max_grid_is_blocked_and_bounded() {
        for &(cells, ranks) in &[(1u64 << 20, 8usize), (1 << 34, 6144), (1 << 12, 40_000)] {
            let mg = pick_max_grid(cells, ranks);
            assert_eq!(mg % 8, 0);
            assert!((16..=128).contains(&mg));
        }
    }

    #[test]
    fn levels_are_nested() {
        let case = amr_case(IntVect::new(1280, 320, 640), 96);
        let r2 = IntVect::splat(2);
        for l in 1..case.levels.len() {
            let fine_hull = case.levels[l].ba.hull().coarsen(r2);
            assert!(
                case.levels[l - 1].ba.covers(fine_hull),
                "level {l} not nested"
            );
        }
    }
}
