//! Table-printing helpers shared by the experiment binaries.

/// Prints an aligned ASCII table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (c, cell) in row.iter().enumerate().take(ncols) {
            widths[c] = widths[c].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (c, cell) in cells.iter().enumerate().take(ncols) {
            s.push_str(&format!("{:>w$}  ", cell, w = widths[c]));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(
        &widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>(),
    );
    for row in rows {
        line(row);
    }
}

/// Formats seconds with an adaptive unit.
pub fn fmt_time(t: f64) -> String {
    if t >= 1.0 {
        format!("{t:.2} s")
    } else if t >= 1e-3 {
        format!("{:.2} ms", t * 1e3)
    } else {
        format!("{:.1} us", t * 1e6)
    }
}

/// Formats a ratio like `44.3x`.
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.1}x")
}

/// Formats a large count in scientific notation (Table I style).
pub fn fmt_points(p: u64) -> String {
    format!("{:.2E}", p as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(fmt_time(2.5), "2.50 s");
        assert_eq!(fmt_time(0.0025), "2.50 ms");
        assert_eq!(fmt_time(2.5e-5), "25.0 us");
        assert_eq!(fmt_ratio(44.31), "44.3x");
        assert_eq!(fmt_points(164_000_000), "1.64E8");
    }

    #[test]
    fn table_prints_without_panicking() {
        print_table(
            "demo",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }
}
