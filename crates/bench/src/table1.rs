//! Table I: the weak-scaling configurations.
//!
//! Node counts follow the paper's ladder (breaking from perfect doubling at
//! 4, 36, 100 and 400 "to allow for linear problem size scaling while also
//! adhering to the blocking factor and physical 2:1 point distribution
//! requirements"). The generator reproduces those constraints: equivalent
//! extents keep `nx = 2·nz` (the 2:1 x:z aspect), every extent is a multiple
//! of 32 (so the twice-coarsened base level still honours blocking factor 8),
//! and y is chosen freely to hit the per-GPU point target, exactly as §V-C
//! describes ("accuracy is independent of y resolution, thus we arbitrarily
//! choose y grid spacing to target grid size scaling").

use crocco_geometry::IntVect;
use serde::{Deserialize, Serialize};

/// The paper's target of equivalent grid points per GPU
/// (1.64e8 / 24 GPUs ≈ 6.83e6; constant across Table I).
pub const POINTS_PER_GPU: f64 = 1.64e8 / 24.0;

/// GPUs per Summit node.
pub const GPUS_PER_NODE: u32 = 6;

/// One weak-scaling configuration row.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct WeakConfig {
    /// Summit nodes.
    pub nodes: u32,
    /// GPUs (6 per node).
    pub gpus: u32,
    /// Equivalent (uniform-fine) grid extents, 2:1 in x:z.
    pub extents: IntVect,
    /// Equivalent grid points achieved.
    pub points: u64,
    /// The paper's Table I target for this row.
    pub target_points: f64,
}

/// The paper's node ladder and equivalent-point targets (Table I).
pub const TABLE1_ROWS: [(u32, f64); 8] = [
    (4, 1.64e8),
    (16, 6.55e8),
    (36, 1.47e9),
    (64, 2.62e9),
    (100, 4.10e9),
    (256, 1.05e10),
    (400, 1.64e10),
    (1024, 4.19e10),
];

/// Builds the weak-scaling configuration for one node count: searches the
/// blocking-aligned `(nx = 2·nz, ny)` shapes for the one closest to the
/// target point count.
pub fn weak_config(nodes: u32) -> WeakConfig {
    let target = nodes as f64 * GPUS_PER_NODE as f64 * POINTS_PER_GPU;
    let mut best: Option<WeakConfig> = None;
    let mut nz = 32i64;
    while nz <= 8192 {
        let nx = 2 * nz;
        let ny_raw = target / (nx * nz) as f64;
        for ny in [
            (ny_raw / 32.0).floor() as i64 * 32,
            (ny_raw / 32.0).ceil() as i64 * 32,
        ] {
            // Keep a DMR-like box: y (the wall-normal height, physical 1)
            // between a quarter of and equal to z (the span, physical 2).
            if ny < 32 || ny * 4 < nz || ny > nz {
                continue;
            }
            let points = (nx * ny * nz) as u64;
            let cand = WeakConfig {
                nodes,
                gpus: nodes * GPUS_PER_NODE,
                extents: IntVect::new(nx, ny, nz),
                points,
                target_points: target,
            };
            let err = (points as f64 - target).abs();
            if best
                .map(|b| err < (b.points as f64 - target).abs())
                .unwrap_or(true)
            {
                best = Some(cand);
            }
        }
        nz += 32;
    }
    best.expect("weak config search failed")
}

/// All eight Table I rows.
pub fn weak_configs() -> Vec<WeakConfig> {
    TABLE1_ROWS.iter().map(|&(n, _)| weak_config(n)).collect()
}

/// The strong-scaling problem: 1.27e9 equivalent grid points (§V-C), on the
/// same 2:1 shape family.
pub fn strong_config() -> WeakConfig {
    // Search the same shape family for 1.27e9 points.
    let mut cfg = weak_config(4);
    let target = 1.27e9;
    let mut best_err = f64::INFINITY;
    let mut nz = 32i64;
    while nz <= 4096 {
        let nx = 2 * nz;
        let ny_raw = target / (nx * nz) as f64;
        for ny in [
            (ny_raw / 32.0).floor() as i64 * 32,
            (ny_raw / 32.0).ceil() as i64 * 32,
        ] {
            if ny < 32 || ny * 4 < nz || ny > nz {
                continue;
            }
            let points = (nx * ny * nz) as u64;
            let err = (points as f64 - target).abs();
            if err < best_err {
                best_err = err;
                cfg = WeakConfig {
                    nodes: 0,
                    gpus: 0,
                    extents: IntVect::new(nx, ny, nz),
                    points,
                    target_points: target,
                };
            }
        }
        nz += 32;
    }
    cfg
}

/// The paper's strong-scaling node ladder (16 → 1024, doubling).
pub const STRONG_NODES: [u32; 7] = [16, 32, 64, 128, 256, 512, 1024];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_rows_hit_table1_targets_within_3_percent() {
        for (row, &(nodes, target)) in TABLE1_ROWS.iter().enumerate() {
            let cfg = weak_config(nodes);
            let rel = (cfg.points as f64 - target).abs() / target;
            assert!(
                rel < 0.03,
                "row {row}: {} points vs target {target:.3e} ({:.1}% off)",
                cfg.points,
                rel * 100.0
            );
            assert_eq!(cfg.gpus, nodes * 6);
        }
    }

    #[test]
    fn shapes_satisfy_aspect_and_blocking() {
        for cfg in weak_configs() {
            assert_eq!(cfg.extents[0], 2 * cfg.extents[2], "2:1 x:z aspect");
            for d in 0..3 {
                assert_eq!(cfg.extents[d] % 32, 0, "extent {d} blocking");
            }
        }
    }

    #[test]
    fn points_per_gpu_is_constant() {
        for cfg in weak_configs() {
            let per_gpu = cfg.points as f64 / cfg.gpus as f64;
            let rel = (per_gpu - POINTS_PER_GPU).abs() / POINTS_PER_GPU;
            assert!(rel < 0.03, "{} nodes: {per_gpu:.3e}/GPU", cfg.nodes);
        }
    }

    #[test]
    fn strong_config_is_1_27e9() {
        let cfg = strong_config();
        let rel = (cfg.points as f64 - 1.27e9).abs() / 1.27e9;
        assert!(rel < 0.03, "{} points", cfg.points);
    }
}
