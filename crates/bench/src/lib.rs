//! Evaluation harness for the CRoCCo IPDPS 2023 reproduction.
//!
//! One module per evaluation artifact; one binary per table/figure (see
//! `src/bin/`). The scaling studies follow the substitution documented in
//! `DESIGN.md` §3: they build the *real* AMR metadata (BoxArrays, Morton
//! distribution maps, exact FillBoundary/ParallelCopy message plans) for the
//! paper's problem sizes, then price computation and communication with the
//! calibrated Summit models in `crocco-perfmodel`.
//!
//! * [`table1`] — the weak-scaling configuration generator (Table I),
//! * [`dmrscale`] — synthetic DMR-shaped AMR hierarchies at Summit scale,
//! * [`simbench`] — per-iteration time simulation for every code version
//!   (Figs. 5–7),
//! * [`fig3`] — kernel-level CPU/GPU curves (Fig. 3),
//! * [`report`] — small table-printing helpers shared by the binaries.

// Enforced by `cargo xtask lint`: unsafe code is confined to the allowlisted
// fab modules (multifab, view, overlap) — none of it lives here.
#![forbid(unsafe_code)]

pub mod dmrscale;
pub mod fig3;
pub mod report;
pub mod simbench;
pub mod table1;
