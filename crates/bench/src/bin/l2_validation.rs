//! §IV-A / §IV-C: cross-implementation L2-norm validation.
//!
//! Runs the same Sod problem with the reference ("Fortran", CRoCCo 1.0) and
//! optimized ("C++", CRoCCo 1.1) kernels and reports the relative L2 norm of
//! the difference per flow variable over time. The paper observes the norm
//! "plateaued at 1E-7 ... within machine precision differences given the
//! quantity of operations required".

use crocco_bench::report::print_table;
use crocco_solver::config::{CodeVersion, SolverConfig};
use crocco_solver::driver::Simulation;
use crocco_solver::problems::ProblemKind;
use crocco_solver::validation::{relative_l2_difference, VARIABLE_NAMES};

fn main() {
    let mk = |v: CodeVersion| {
        SolverConfig::builder()
            .problem(ProblemKind::SodX)
            .extents(64, 8, 8)
            .version(v)
            .build()
    };
    let mut fortran = Simulation::new(mk(CodeVersion::V1_0));
    let mut cpp = Simulation::new(mk(CodeVersion::V1_1));
    let mut rows = Vec::new();
    let checkpoints = [5u32, 10, 20, 40];
    let mut done = 0;
    for &target in &checkpoints {
        fortran.advance_steps(target - done);
        cpp.advance_steps(target - done);
        done = target;
        let rel = relative_l2_difference(&fortran, &cpp);
        let mut row = vec![target.to_string(), format!("{:.4}", fortran.time())];
        for d in rel {
            row.push(format!("{d:.2e}"));
        }
        rows.push(row);
    }
    let mut headers = vec!["steps", "time"];
    headers.extend(VARIABLE_NAMES);
    print_table(
        "Reference (Fortran) vs optimized (C++) kernels: relative L2 difference",
        &headers,
        &rows,
    );
    println!("\npaper: plateaus at ~1e-7 (machine precision for this operation count).");
    let final_rel = relative_l2_difference(&fortran, &cpp);
    let worst = final_rel.iter().cloned().fold(0.0, f64::max);
    println!("measured worst-variable relative L2 after 40 steps: {worst:.2e}");
    assert!(worst < 1e-7, "validation failed: {worst}");
    println!("PASS: below the 1e-7 plateau.");
}
