//! Fig. 1: example of a block-structured AMR grid — three levels, the
//! coarsest active across the entire domain, finer patches overset as
//! contiguous block structures (no parent–child quadtree relationship).
//!
//! Builds a real 3-level hierarchy with the production tagging → buffering →
//! Berger–Rigoutsos → proper-nesting pipeline and renders the patch layout.

use crocco_amr::{AmrHierarchy, AmrParams, TagSet};
use crocco_fab::DistributionStrategy;
use crocco_geometry::{IndexBox, IntVect, ProblemDomain};

fn main() {
    let domain = ProblemDomain::non_periodic(IndexBox::from_extents(64, 48, 8));
    let params = AmrParams {
        max_levels: 3,
        ref_ratio: IntVect::splat(2),
        blocking_factor: 4,
        max_grid_size: 32,
        grid_eff: 0.7,
        n_error_buf: 1,
        regrid_freq: 10,
        nesting_buffer: 4,
    };
    let mut h = AmrHierarchy::new(domain, params, 4, DistributionStrategy::MortonSfc);

    // A curved "flow feature" to refine around (an arc through the domain),
    // tagged at level 0 and, more tightly, at level 1.
    let mut t0 = TagSet::new();
    let mut t1 = TagSet::new();
    for i in 0..64i64 {
        let y = 10.0 + 28.0 * (std::f64::consts::PI * i as f64 / 64.0).sin();
        for w in -3i64..=3 {
            let j = (y as i64 + w).clamp(0, 47);
            for k in 0..8 {
                t0.tag(IntVect::new(i, j, k));
            }
        }
        for w in -2i64..=2 {
            let j = (2.0 * y) as i64 + w;
            for k in 0..16 {
                t1.tag(IntVect::new(2 * i, j.clamp(0, 95), k));
                t1.tag(IntVect::new(2 * i + 1, j.clamp(0, 95), k));
            }
        }
    }
    h.regrid(&[t0, t1]);

    println!("Fig. 1 analog: a 3-level block-structured AMR grid (executed pipeline)\n");
    for l in 0..h.nlevels() {
        let lev = h.level(l);
        println!(
            "level {l}: {:3} patches, {:8} cells, domain {:?}",
            lev.ba.len(),
            lev.ba.num_points(),
            h.domain(l).bx.size()
        );
    }

    // ASCII overlay: deepest level owning each coarse cell (z = 0 plane).
    println!("\nfinest level covering each coarse cell (z = 0):");
    let d0 = h.domain(0).bx;
    for j in (0..d0.size()[1]).rev() {
        let mut line = String::new();
        for i in 0..d0.size()[0] {
            let mut deepest = 0;
            for l in 1..h.nlevels() {
                let scale = 1 << l;
                let p = IntVect::new(i * scale, j * scale, 0);
                if h.level(l).ba.intersects_any(IndexBox::new(p, p)) {
                    deepest = l;
                }
            }
            line.push(match deepest {
                0 => '.',
                1 => '+',
                _ => '#',
            });
        }
        println!("{line}");
    }
    println!("\n. = level 0 only   + = level 1   # = level 2");
    println!("The coarsest grid remains active across the entire domain; finer");
    println!("patches are overset, contiguous, and properly nested (paper Fig. 1).");
    let r = h.reduction_fraction();
    println!("active-point reduction vs uniform-fine: {:.1}%", 100.0 * r);
}
