//! Ablation: task-graph overlap of halo exchange and interior kernels
//! (DESIGN.md §4e). Runs the real DMR solver with the barrier executor and
//! the dependency-graph executor, verifies the two produce bitwise-identical
//! state, and reports wall time plus where each run spends it — the
//! per-stage barrier cost and the serialized FillPatch share the task graph
//! removes from the steady-state loop.

use crocco_bench::report::print_table;
use crocco_solver::config::{CodeVersion, SolverConfig, SolverConfigBuilder};
use crocco_solver::driver::Simulation;
use crocco_solver::problems::ProblemKind;
use std::time::Instant;

const STEPS: u32 = 20;

fn dmr_builder() -> SolverConfigBuilder {
    SolverConfig::builder()
        .problem(ProblemKind::DoubleMach)
        .extents(64, 16, 8)
        .version(CodeVersion::V2_0) // curvilinear: exercises the coord gather
        .max_levels(2)
        .regrid_freq(5)
}

/// Flattens every level's valid state to bit patterns for exact comparison.
fn state_bits(sim: &Simulation) -> Vec<u64> {
    let mut bits = Vec::new();
    for l in 0..sim.nlevels() {
        let state = &sim.level(l).state;
        for i in 0..state.nfabs() {
            for c in 0..state.ncomp() {
                for p in state.valid_box(i).cells() {
                    bits.push(state.fab(i).get(p, c).to_bits());
                }
            }
        }
    }
    bits
}

struct Run {
    label: String,
    wall_s: f64,
    fillpatch_s: f64,
    advance_s: f64,
    bits: Vec<u64>,
}

fn run(overlap: bool, threads: usize) -> Run {
    let cfg = dmr_builder().overlap(overlap).threads(threads).build();
    let mut sim = Simulation::new(cfg);
    let t0 = Instant::now();
    sim.advance_steps(STEPS);
    let wall_s = t0.elapsed().as_secs_f64();
    Run {
        label: format!(
            "{} ({} thread{})",
            if overlap { "task graph" } else { "barrier" },
            threads,
            if threads == 1 { "" } else { "s" }
        ),
        wall_s,
        fillpatch_s: sim.profiler.total("FillPatch"),
        advance_s: sim.profiler.total("Advance"),
        bits: state_bits(&sim),
    }
}

fn main() {
    let nthreads = crocco_runtime::default_threads().max(2);
    let runs = [
        run(false, 1),
        run(true, 1),
        run(false, nthreads),
        run(true, nthreads),
    ];
    // The acceptance condition for swapping the executor: bit-for-bit
    // identical state, regardless of thread count.
    for r in &runs[1..] {
        assert_eq!(
            runs[0].bits, r.bits,
            "{} diverged bitwise from the barrier baseline",
            r.label
        );
    }
    let base = runs[0].wall_s;
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                format!("{:.3} s", r.wall_s),
                format!("{:.2}x", base / r.wall_s.max(1e-12)),
                format!("{:.1}%", 100.0 * r.fillpatch_s / r.wall_s.max(1e-12)),
                format!("{:.1}%", 100.0 * r.advance_s / r.wall_s.max(1e-12)),
                "identical".to_string(),
            ]
        })
        .collect();
    print_table(
        &format!("Ablation: task-graph overlap on the DMR ({STEPS} steps, 2 levels)"),
        &[
            "configuration",
            "wall",
            "speedup",
            "FillPatch share",
            "Advance share",
            "state vs barrier",
        ],
        &rows,
    );
    println!("\nThe task graph replaces the per-stage fill -> sweep -> update barriers");
    println!("with per-patch dependencies: interior sweeps start immediately, halo");
    println!("copies run alongside them, and only boundary-band sweeps fence on their");
    println!("own patch's ghosts. The FillPatch region shrinks to plan resolution");
    println!("(the halo data motion moves into Advance, hidden behind the interior");
    println!("sweeps); results are bitwise-identical by construction (DESIGN.md §4e).");
}
