//! Ablation: distributed stage overlap (DESIGN.md §4f). Runs the real ramp
//! solver on a `LocalCluster` with the fenced executor and the rank-crossing
//! task-graph executor, verifies every rank's state is bitwise-identical to
//! the single-rank reference, and reports wall time plus the skeleton-cache
//! hit rate — the fraction of stage/graph skeleton lookups served from the
//! plan cache between regrids.
//!
//! `CROCCO_DIST_RANKS` overrides the rank count (default 2).

use crocco_bench::report::print_table;
use crocco_runtime::LocalCluster;
use crocco_solver::config::{CodeVersion, SolverConfig, SolverConfigBuilder};
use crocco_solver::driver::Simulation;
use crocco_solver::problems::ProblemKind;
use std::time::Instant;

const STEPS: u32 = 10;

fn ramp_builder() -> SolverConfigBuilder {
    SolverConfig::builder()
        .problem(ProblemKind::Ramp)
        .extents(48, 24, 8)
        .version(CodeVersion::V2_0)
        .max_levels(2)
        .blocking_factor(4)
        .max_grid_size(16)
        .regrid_freq(3)
        .cfl(0.5)
}

/// Flattens every level's valid state to bit patterns for exact comparison.
fn state_bits(sim: &Simulation) -> Vec<u64> {
    let mut bits = Vec::new();
    for l in 0..sim.nlevels() {
        let state = &sim.level(l).state;
        for i in 0..state.nfabs() {
            for c in 0..state.ncomp() {
                for p in state.valid_box(i).cells() {
                    bits.push(state.fab(i).get(p, c).to_bits());
                }
            }
        }
    }
    bits
}

struct RankRun {
    bits: Vec<u64>,
    wall_s: f64,
    hits: u64,
    misses: u64,
}

struct Run {
    label: String,
    wall_s: f64,
    hit_rate: f64,
    bits: Vec<u64>,
}

fn run_cluster(nranks: usize, overlap: bool, threads: usize) -> Run {
    let cfg = ramp_builder()
        .nranks(nranks)
        .threads(threads)
        .dist_overlap(overlap)
        .build();
    let per_rank = LocalCluster::run(nranks, move |ep| {
        let mut sim = Simulation::new(cfg.clone());
        let t0 = Instant::now();
        sim.advance_steps_cluster(STEPS, &ep);
        let wall_s = t0.elapsed().as_secs_f64();
        let cache = sim.hierarchy().plan_cache();
        RankRun {
            bits: state_bits(&sim),
            wall_s,
            hits: cache.hits(),
            misses: cache.misses(),
        }
    });
    for r in &per_rank[1..] {
        assert_eq!(per_rank[0].bits, r.bits, "ranks disagree bitwise");
    }
    let wall_s = per_rank.iter().map(|r| r.wall_s).fold(0.0, f64::max);
    let (hits, misses) = per_rank
        .iter()
        .fold((0, 0), |(h, m), r| (h + r.hits, m + r.misses));
    Run {
        label: format!(
            "{} ({nranks} ranks, {threads} thread{})",
            if overlap { "overlapped" } else { "fenced" },
            if threads == 1 { "" } else { "s" }
        ),
        wall_s,
        hit_rate: hits as f64 / ((hits + misses) as f64).max(1.0),
        bits: per_rank.into_iter().next().unwrap().bits,
    }
}

fn main() {
    let nranks: usize = std::env::var("CROCCO_DIST_RANKS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(2);
    let threads = crocco_runtime::default_threads().clamp(2, 4);

    // Single-rank reference through the ordinary driver.
    let mut reference = Simulation::new(ramp_builder().build());
    let t0 = Instant::now();
    reference.advance_steps(STEPS);
    let ref_wall = t0.elapsed().as_secs_f64();
    let ref_bits = state_bits(&reference);

    let runs = [
        run_cluster(nranks, false, 1),
        run_cluster(nranks, true, 1),
        run_cluster(nranks, false, threads),
        run_cluster(nranks, true, threads),
    ];
    // Acceptance condition for the distributed data path: bit-for-bit
    // identical state on every rank, fenced or overlapped.
    for r in &runs {
        assert_eq!(
            ref_bits, r.bits,
            "{} diverged bitwise from the single-rank reference",
            r.label
        );
    }
    let base = runs[0].wall_s;
    let mut rows = vec![vec![
        "single-rank driver".to_string(),
        format!("{ref_wall:.3} s"),
        "-".to_string(),
        "-".to_string(),
        "reference".to_string(),
    ]];
    rows.extend(runs.iter().map(|r| {
        vec![
            r.label.clone(),
            format!("{:.3} s", r.wall_s),
            format!("{:.2}x", base / r.wall_s.max(1e-12)),
            format!("{:.1}%", 100.0 * r.hit_rate),
            "identical".to_string(),
        ]
    }));
    print_table(
        &format!("Ablation: distributed stage overlap on the ramp ({STEPS} steps, 2 levels)"),
        &[
            "configuration",
            "wall",
            "vs fenced serial",
            "plan/skeleton cache hits",
            "state vs reference",
        ],
        &rows,
    );
    println!("\nThe overlapped executor replaces the per-stage fence (post recvs, pack,");
    println!("send, wait, unpack, then sweep) with a rank-crossing task graph: interior");
    println!("sweeps start immediately, halo messages complete via tag-matched recv");
    println!("events, and only boundary-band sweeps fence on their own patch's ghosts.");
    println!("Graph skeletons are cached per (BoxArray, DistributionMapping, rank) and");
    println!("invalidated at regrid, so steady-state stages re-bind only the RK");
    println!("coefficients; results are bitwise-identical by construction (DESIGN.md §4f).");
}
