//! Table I: weak scaling configurations used for evaluating performance.

use crocco_bench::report::{fmt_points, print_table};
use crocco_bench::table1::weak_configs;
use crocco_perfmodel::summit::CURVILINEAR_BYTES_PER_POINT;
use crocco_perfmodel::SummitPlatform;

fn main() {
    let platform = SummitPlatform::new();
    let mut rows = Vec::new();
    for cfg in weak_configs() {
        let per_gpu = cfg.points / cfg.gpus as u64;
        rows.push(vec![
            "1.1, 1.2, 2.0".to_string(),
            cfg.nodes.to_string(),
            cfg.gpus.to_string(),
            fmt_points(cfg.points),
            fmt_points(cfg.target_points as u64),
            format!(
                "{}x{}x{}",
                cfg.extents[0], cfg.extents[1], cfg.extents[2]
            ),
            format!(
                "{}",
                platform.gpu_points_fit(per_gpu, CURVILINEAR_BYTES_PER_POINT)
            ),
        ]);
    }
    print_table(
        "Table I: weak scaling configurations",
        &[
            "code versions",
            "# nodes",
            "# GPUs",
            "# equiv points",
            "paper target",
            "equiv extents",
            "fits V100",
        ],
        &rows,
    );
    println!("\nConstraints honoured: 2:1 x:z aspect, extents multiples of 32");
    println!("(blocking factor 8 after two coarsenings), ~constant points/GPU.");
}
