//! Ablation: reconstruction basis — component-wise vs Roe-characteristic
//! WENO (executed on the Sod tube), crossed with the WENO weight family.
//! Characteristic projection decouples the waves and sharpens the solution;
//! how much of that sharpness survives as ringing depends on the weights'
//! dissipation.

use crocco_bench::report::print_table;
use crocco_solver::config::{CodeVersion, SolverConfig};
use crocco_solver::driver::Simulation;
use crocco_solver::problems::ProblemKind;
use crocco_solver::state::cons;
use crocco_solver::validation::sod_density_error;
use crocco_solver::weno::{Reconstruction, WenoVariant};
use crocco_solver::PerfectGas;
use std::time::Instant;

/// Total variation of the centerline density — oscillation monitor: the
/// exact Sod solution's TV is the sum of its jumps; ringing adds TV.
fn density_tv(sim: &Simulation) -> f64 {
    let state = &sim.level(0).state;
    let mut line: Vec<(i64, f64)> = Vec::new();
    for i in 0..state.nfabs() {
        let valid = state.valid_box(i);
        for p in valid.cells() {
            if p[1] == valid.lo()[1] && p[2] == valid.lo()[2] {
                line.push((p[0], state.fab(i).get(p, cons::RHO)));
            }
        }
    }
    line.sort_by_key(|(x, _)| *x);
    line.windows(2).map(|w| (w[1].1 - w[0].1).abs()).sum()
}

fn main() {
    let gas = PerfectGas::nondimensional();
    let mut rows = Vec::new();
    for (name, recon, weno) in [
        ("component + SYMBO", Reconstruction::ComponentWise, WenoVariant::Symbo),
        ("characteristic + SYMBO", Reconstruction::Characteristic, WenoVariant::Symbo),
        ("component + JS5", Reconstruction::ComponentWise, WenoVariant::Js5),
        ("characteristic + JS5", Reconstruction::Characteristic, WenoVariant::Js5),
    ] {
        let cfg = SolverConfig::builder()
            .problem(ProblemKind::SodX)
            .extents(128, 4, 4)
            .version(CodeVersion::V1_1)
            .reconstruction(recon)
            .weno(weno)
            .cfl(0.5)
            .build();
        let mut sim = Simulation::new(cfg);
        let t0 = Instant::now();
        while sim.time() < 0.15 {
            sim.step();
        }
        let wall = t0.elapsed().as_secs_f64();
        rows.push(vec![
            name.to_string(),
            format!("{:.3e}", sod_density_error(&sim, &gas)),
            format!("{:.4}", density_tv(&sim)),
            format!("{:.2} s", wall),
            (!sim.has_nonfinite()).to_string(),
        ]);
    }
    print_table(
        "Ablation (executed): reconstruction basis, Sod tube at t = 0.15",
        &["basis", "L2 density error", "density TV", "walltime", "finite"],
        &rows,
    );
    println!("\nexact solution TV = 0.875; excess TV is smearing-free ringing.");
    println!("Characteristic projection sharpens the waves (lower L2 error) at");
    println!("~1.4x cost; with the less-dissipative SYMBO weights the sharpened");
    println!("contact rings more (higher TV) - the classic dissipation/resolution");
    println!("trade the paper navigates by pairing SYMBO with shock-aware AMR.");
}
