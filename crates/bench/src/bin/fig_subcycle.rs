//! Ablation: subcycling in time (docs/ARCHITECTURE.md §Subcycling). Runs
//! the 3-level isentropic-vortex hierarchy lockstep and with per-level dt,
//! compares cell updates and wall time *per unit simulated time* (the two
//! modes take different-sized coarse steps), and scores the measured work
//! reduction against the analytic `perfmodel::SubcycleModel` ideal. Emits
//! the machine-readable `BENCH_subcycle.json`; the narrative table is
//! `docs/results/subcycle.md`.

use crocco_bench::report::print_table;
use crocco_perfmodel::SubcycleModel;
use crocco_solver::config::{CodeVersion, InterpKind, SolverConfig, SolverConfigBuilder};
use crocco_solver::driver::Simulation;
use crocco_solver::problems::ProblemKind;
use std::time::Instant;

/// Subcycled coarse steps; lockstep takes `2^(levels-1)` times as many fine
/// steps to span roughly the same simulated time.
const SUB_STEPS: u32 = 3;
const LEVELS: usize = 3;

/// The deep-hierarchy vortex of `tests/subcycle_invariance.rs`: fully
/// periodic, inviscid, interior refined region — the workload where
/// per-level dt pays and conservation is measurable.
fn vortex() -> SolverConfigBuilder {
    SolverConfig::builder()
        .problem(ProblemKind::IsentropicVortex)
        .extents(32, 32, 8)
        .version(CodeVersion::V2_0)
        .max_levels(LEVELS)
        .blocking_factor(4)
        .max_grid_size(16)
        .regrid_freq(3)
        .interpolator(InterpKind::PiecewiseConstant)
        .cfl(0.4)
}

struct Run {
    label: &'static str,
    wall_s: f64,
    sim_time: f64,
    cell_updates: u64,
    cells_per_level: Vec<u64>,
}

fn run(subcycling: bool, steps: u32) -> Run {
    let mut sim = Simulation::new(vortex().subcycling(subcycling).build());
    assert_eq!(sim.nlevels(), LEVELS, "vortex must refine to {LEVELS} levels");
    let cells_per_level = (0..sim.nlevels())
        .map(|l| {
            let state = &sim.level(l).state;
            (0..state.nfabs())
                .map(|i| state.valid_box(i).num_points())
                .sum()
        })
        .collect();
    let t0 = Instant::now();
    let report = sim.advance_steps(steps);
    Run {
        label: if subcycling { "subcycled" } else { "lockstep" },
        wall_s: t0.elapsed().as_secs_f64(),
        sim_time: sim.report().final_time,
        cell_updates: report.cell_updates,
        cells_per_level,
    }
}

fn main() {
    let lock_steps = SUB_STEPS * (1u32 << (LEVELS - 1));
    let lock = run(false, lock_steps);
    let sub = run(true, SUB_STEPS);

    // Rates per unit simulated time — the honest comparison, since one
    // subcycled coarse step spans ~2^(levels-1) lockstep steps.
    let lock_rate = lock.cell_updates as f64 / lock.sim_time;
    let sub_rate = sub.cell_updates as f64 / sub.sim_time;
    let work_speedup = lock_rate / sub_rate;
    let wall_speedup = (lock.wall_s / lock.sim_time) / (sub.wall_s / sub.sim_time);
    assert!(
        sub_rate < lock_rate,
        "subcycling must advance strictly fewer cell-updates per unit time"
    );

    // The analytic ideal from the *initial* hierarchy (regrids drift the
    // coverage slightly; the model is a static volume argument).
    let model = SubcycleModel::new(sub.cells_per_level.clone());
    let ideal = model.ideal_speedup();

    let rows: Vec<Vec<String>> = [&lock, &sub]
        .iter()
        .map(|r| {
            vec![
                r.label.to_string(),
                format!("{}", r.cell_updates),
                format!("{:.4}", r.sim_time),
                format!("{:.3e}", r.cell_updates as f64 / r.sim_time),
                format!("{:.3} s", r.wall_s),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Subcycling on the {LEVELS}-level vortex ({SUB_STEPS} coarse steps vs \
             {lock_steps} lockstep steps)"
        ),
        &[
            "mode",
            "cell updates",
            "simulated t",
            "updates / t",
            "wall",
        ],
        &rows,
    );
    println!("\nwork reduction (updates/t):   {work_speedup:.2}x");
    println!("wall-clock speedup (wall/t):  {wall_speedup:.2}x");
    println!("perfmodel ideal (volume-only): {ideal:.2}x");
    println!(
        "cells/level at start: {:?} (finest covers {:.1}% of its index space)",
        sub.cells_per_level,
        // Volume fraction: ref_ratio 2 in all three dims is 8x cells per level.
        100.0 * sub.cells_per_level[LEVELS - 1] as f64
            / (sub.cells_per_level[0] as f64 * (1u64 << (3 * (LEVELS - 1))) as f64)
    );

    // The vendored serde_json is an offline placeholder (empty crate), so
    // the JSON is assembled by hand, like the other BENCH emitters.
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"subcycle\",\n");
    json.push_str(&format!("  \"levels\": {LEVELS},\n"));
    json.push_str(&format!("  \"sub_steps\": {SUB_STEPS},\n"));
    json.push_str(&format!("  \"lock_steps\": {lock_steps},\n"));
    json.push_str(&format!(
        "  \"cells_per_level\": [{}],\n",
        sub.cells_per_level
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    for r in [&lock, &sub] {
        json.push_str(&format!(
            "  \"{}\": {{ \"cell_updates\": {}, \"sim_time\": {:e}, \"wall_s\": {:e} }},\n",
            r.label, r.cell_updates, r.sim_time, r.wall_s
        ));
    }
    json.push_str(&format!("  \"work_speedup\": {work_speedup:.4},\n"));
    json.push_str(&format!("  \"wall_speedup\": {wall_speedup:.4},\n"));
    json.push_str(&format!("  \"model_ideal_speedup\": {ideal:.4}\n"));
    json.push_str("}\n");
    std::fs::write("BENCH_subcycle.json", json).expect("write BENCH_subcycle.json");
    println!("\nwrote BENCH_subcycle.json");
}
