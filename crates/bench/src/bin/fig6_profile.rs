//! Fig. 6: decomposition of CRoCCo runtime (v2.1, default trilinear
//! interpolator) across the weak-scaling cases.

use crocco_bench::dmrscale::amr_case;
use crocco_bench::report::print_table;
use crocco_bench::simbench::{ranks_for, simulate_iteration};
use crocco_bench::table1::weak_configs;
use crocco_perfmodel::SummitPlatform;
use crocco_solver::CodeVersion;

fn main() {
    let platform = SummitPlatform::new();
    let version = CodeVersion::V2_1;
    let regions = ["Advance", "FillPatch", "Regrid", "ComputeDt", "AverageDown"];
    let mut rows = Vec::new();
    let mut fp_series = Vec::new();
    for cfg in weak_configs() {
        let ranks = ranks_for(version, cfg.nodes, &platform);
        let case = amr_case(cfg.extents, ranks);
        let b = simulate_iteration(version, &case, &platform);
        fp_series.push((cfg.nodes, b.get("FillPatch")));
        let mut row = vec![cfg.nodes.to_string()];
        for r in regions {
            row.push(format!("{:.1}", b.get(r) * 1e3));
        }
        row.push(format!("{:.1}", b.total() * 1e3));
        rows.push(row);
    }
    print_table(
        "Fig. 6: CRoCCo 2.1 runtime decomposition (ms per iteration)",
        &["nodes", "Advance", "FillPatch", "Regrid", "ComputeDt", "AverageDown", "total"],
        &rows,
    );
    // The paper's two FillPatch growth observations.
    let at = |n: u32| fp_series.iter().find(|(m, _)| *m == n).map(|(_, t)| *t);
    if let (Some(a), Some(b), Some(c)) = (at(4), at(100), at(1024)) {
        println!(
            "\nFillPatch growth: 4->100 nodes {:+.0}% (paper ~+40%), 100->1024 {:+.0}% (paper ~+65%)",
            (b / a - 1.0) * 100.0,
            (c / b - 1.0) * 100.0
        );
    }
    println!("paper: Advance stays steady while FillPatch grows with node count.");
}
