//! Ablation: load-balancing strategy (the paper uses AMReX's default
//! Z-Morton SFC, §III-B). Compares SFC, round-robin, and greedy knapsack on
//! the scaled DMR hierarchy: balance quality vs locality (off-node
//! FillBoundary traffic).

use crocco_bench::dmrscale::amr_case;
use crocco_bench::report::print_table;
use crocco_bench::table1::weak_config;
use crocco_fab::plan::fill_boundary_plan;
use crocco_fab::{DistributionMapping, DistributionStrategy};
use crocco_perfmodel::SummitPlatform;
use crocco_solver::CodeVersion;

fn main() {
    let platform = SummitPlatform::new();
    let nodes = 64u32;
    let cfg = weak_config(nodes);
    let ranks = crocco_bench::simbench::ranks_for(CodeVersion::V2_0, nodes, &platform);
    let case = amr_case(cfg.extents, ranks);

    let mut rows = Vec::new();
    for (name, strategy) in [
        ("Morton SFC", DistributionStrategy::MortonSfc),
        ("round-robin", DistributionStrategy::RoundRobin),
        ("knapsack", DistributionStrategy::Knapsack),
    ] {
        let mut imb_worst: f64 = 1.0;
        let mut remote = 0u64;
        let mut local = 0u64;
        for level in &case.levels {
            let dm = DistributionMapping::new(&level.ba, ranks, strategy);
            imb_worst = imb_worst.max(dm.imbalance(&level.ba));
            let stats = fill_boundary_plan(&level.ba, &dm, &level.domain, 4, 5).stats();
            remote += stats.remote_bytes;
            local += stats.local_bytes;
        }
        rows.push(vec![
            name.to_string(),
            format!("{imb_worst:.3}"),
            format!("{:.1} MB", remote as f64 / 1e6),
            format!(
                "{:.0}%",
                100.0 * local as f64 / (local + remote).max(1) as f64
            ),
        ]);
    }
    print_table(
        &format!(
            "Ablation: load balancing ({} ranks, {} boxes, FillBoundary per stage)",
            ranks,
            case.total_boxes()
        ),
        &["strategy", "worst imbalance", "off-rank ghost bytes", "on-rank share"],
        &rows,
    );
    println!("\nSFC trades a little balance for much better locality (fewer off-rank");
    println!("ghost bytes); knapsack balances best but scatters neighbors. The paper");
    println!("relies on AMReX's default SFC: \"we are confident in relying on their");
    println!("provided parallelization and load balancing methods\".");
}
