//! Ablation: interpolator choice (curvilinear + coordinate ParallelCopy vs
//! trilinear vs conservative) — the CRoCCo 2.0 ↔ 2.1 design axis, measured
//! both on the modeled platform and on a real small DMR run.

use crocco_bench::dmrscale::amr_case;
use crocco_bench::report::{fmt_time, print_table};
use crocco_bench::simbench::{ranks_for, simulate_iteration};
use crocco_bench::table1::weak_config;
use crocco_perfmodel::SummitPlatform;
use crocco_solver::config::{CodeVersion, SolverConfig};
use crocco_solver::driver::Simulation;
use crocco_solver::problems::ProblemKind;

fn main() {
    // Modeled: 2.0 vs 2.1 across three node counts.
    let platform = SummitPlatform::new();
    let mut rows = Vec::new();
    for nodes in [4u32, 100, 1024] {
        let cfg = weak_config(nodes);
        let ranks = ranks_for(CodeVersion::V2_0, nodes, &platform);
        let case = amr_case(cfg.extents, ranks);
        let t20 = simulate_iteration(CodeVersion::V2_0, &case, &platform);
        let t21 = simulate_iteration(CodeVersion::V2_1, &case, &platform);
        rows.push(vec![
            nodes.to_string(),
            fmt_time(t20.total()),
            fmt_time(t21.total()),
            format!("{:.2}x", t20.total() / t21.total()),
            fmt_time(t20.get("FillPatch/ParallelCopy_finish")),
            fmt_time(t21.get("FillPatch/ParallelCopy_finish")),
        ]);
    }
    print_table(
        "Ablation (modeled): curvilinear (2.0) vs trilinear (2.1) interpolator",
        &[
            "nodes",
            "2.0 iter",
            "2.1 iter",
            "2.0/2.1",
            "PC_finish 2.0",
            "PC_finish 2.1",
        ],
        &rows,
    );

    // Real execution: coordinate-copy bytes actually moved by each version on
    // a laptop-scale DMR.
    let mut rows = Vec::new();
    for v in [CodeVersion::V2_0, CodeVersion::V2_1] {
        let cfg = SolverConfig::builder()
            .problem(ProblemKind::DoubleMach)
            .extents(64, 16, 8)
            .version(v)
            .max_levels(2)
            .nranks(8)
            .build();
        let mut sim = Simulation::new(cfg);
        sim.advance_steps(3);
        rows.push(vec![
            format!("{v:?}"),
            sim.comm.pc_bytes.to_string(),
            sim.comm.coord_pc_bytes.to_string(),
            sim.comm.interpolated_cells.to_string(),
        ]);
    }
    print_table(
        "Ablation (executed): communication actually performed, 3 DMR steps",
        &["version", "state PC bytes", "coord PC bytes", "interp cells"],
        &rows,
    );
    println!("\npaper: removing the coordinate ParallelCopy (2.1) improves weak-scaling");
    println!("efficiency at 400 nodes from 54% to ~70%.");
}
