//! Fig. 7: decomposition of FillPatch runtime (v2.1) into the asynchronous
//! (`_nowait`) and synchronous (`_finish`) halves of `ParallelCopy` and
//! `FillBoundary` across the weak-scaling cases, plus the *exposed*
//! FillBoundary time once the distributed stage graphs overlap the exchange
//! with the interior sweeps.

use crocco_bench::dmrscale::amr_case;
use crocco_bench::report::print_table;
use crocco_bench::simbench::{ranks_for, simulate_iteration_with, CommPricing};
use crocco_bench::table1::weak_configs;
use crocco_perfmodel::SummitPlatform;
use crocco_solver::CodeVersion;

fn main() {
    let platform = SummitPlatform::new();
    let version = CodeVersion::V2_1;
    let parts = [
        "FillPatch/ParallelCopy_finish",
        "FillPatch/ParallelCopy_nowait",
        "FillPatch/FillBoundary_finish",
        "FillPatch/FillBoundary_nowait",
    ];
    let mut rows = Vec::new();
    let mut pc_finish = Vec::new();
    let mut exposed_share = Vec::new();
    for cfg in weak_configs() {
        let ranks = ranks_for(version, cfg.nodes, &platform);
        let case = amr_case(cfg.extents, ranks);
        let b = simulate_iteration_with(version, &case, &platform, CommPricing::Additive);
        let o = simulate_iteration_with(version, &case, &platform, CommPricing::Overlapped);
        pc_finish.push((cfg.nodes, b.get(parts[0])));
        exposed_share.push((
            cfg.nodes,
            b.get("FillPatch/FillBoundary_finish"),
            o.get("FillPatch/FillBoundary_finish"),
        ));
        let mut row = vec![cfg.nodes.to_string()];
        for p in parts {
            row.push(format!("{:.2}", b.get(p) * 1e3));
        }
        row.push(format!("{:.2}", o.get("FillPatch/FillBoundary_finish") * 1e3));
        row.push(format!("{:.2}", b.get("FillPatch") * 1e3));
        rows.push(row);
    }
    print_table(
        "Fig. 7: FillPatch decomposition (ms per iteration, CRoCCo 2.1)",
        &[
            "nodes",
            "ParallelCopy_finish",
            "ParallelCopy_nowait",
            "FillBoundary_finish",
            "FillBoundary_nowait",
            "FB_finish exposed",
            "FillPatch total",
        ],
        &rows,
    );
    let (fenced, exposed): (f64, f64) = exposed_share
        .iter()
        .fold((0.0, 0.0), |(f, e), &(_, bf, of)| (f + bf, e + of));
    println!(
        "\nstage overlap: FillBoundary_finish {:.2} ms fenced -> {:.2} ms exposed across the sweep ({:.0}% hidden)",
        fenced * 1e3,
        exposed * 1e3,
        100.0 * (1.0 - exposed / fenced.max(f64::MIN_POSITIVE))
    );
    let first = pc_finish.first().unwrap().1;
    let last = pc_finish.last().unwrap().1;
    println!(
        "\nParallelCopy_finish grows {:.1}x from {} to {} nodes",
        last / first,
        pc_finish.first().unwrap().0,
        pc_finish.last().unwrap().0
    );
    println!("paper: ParallelCopy_finish increases in execution time as node count goes up.");
}
