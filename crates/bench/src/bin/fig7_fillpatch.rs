//! Fig. 7: decomposition of FillPatch runtime (v2.1) into the asynchronous
//! (`_nowait`) and synchronous (`_finish`) halves of `ParallelCopy` and
//! `FillBoundary` across the weak-scaling cases.

use crocco_bench::dmrscale::amr_case;
use crocco_bench::report::print_table;
use crocco_bench::simbench::{ranks_for, simulate_iteration};
use crocco_bench::table1::weak_configs;
use crocco_perfmodel::SummitPlatform;
use crocco_solver::CodeVersion;

fn main() {
    let platform = SummitPlatform::new();
    let version = CodeVersion::V2_1;
    let parts = [
        "FillPatch/ParallelCopy_finish",
        "FillPatch/ParallelCopy_nowait",
        "FillPatch/FillBoundary_finish",
        "FillPatch/FillBoundary_nowait",
    ];
    let mut rows = Vec::new();
    let mut pc_finish = Vec::new();
    for cfg in weak_configs() {
        let ranks = ranks_for(version, cfg.nodes, &platform);
        let case = amr_case(cfg.extents, ranks);
        let b = simulate_iteration(version, &case, &platform);
        pc_finish.push((cfg.nodes, b.get(parts[0])));
        let mut row = vec![cfg.nodes.to_string()];
        for p in parts {
            row.push(format!("{:.2}", b.get(p) * 1e3));
        }
        row.push(format!("{:.2}", b.get("FillPatch") * 1e3));
        rows.push(row);
    }
    print_table(
        "Fig. 7: FillPatch decomposition (ms per iteration, CRoCCo 2.1)",
        &[
            "nodes",
            "ParallelCopy_finish",
            "ParallelCopy_nowait",
            "FillBoundary_finish",
            "FillBoundary_nowait",
            "FillPatch total",
        ],
        &rows,
    );
    let first = pc_finish.first().unwrap().1;
    let last = pc_finish.last().unwrap().1;
    println!(
        "\nParallelCopy_finish grows {:.1}x from {} to {} nodes",
        last / first,
        pc_finish.first().unwrap().0,
        pc_finish.last().unwrap().0
    );
    println!("paper: ParallelCopy_finish increases in execution time as node count goes up.");
}
