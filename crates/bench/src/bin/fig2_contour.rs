//! Fig. 2: density contour of the canonical DMR problem with three-level
//! curvilinear AMR — rendered as an ASCII density map with the AMR level
//! overlay, from a real (executed) run.

use crocco_solver::config::{CodeVersion, SolverConfig};
use crocco_solver::driver::Simulation;
use crocco_solver::problems::ProblemKind;
use crocco_solver::state::cons;

fn main() {
    let cfg = SolverConfig::builder()
        .problem(ProblemKind::DoubleMach)
        .extents(96, 24, 8)
        .version(CodeVersion::V2_0)
        .max_levels(3)
        .blocking_factor(4)
        .max_grid_size(32)
        .regrid_freq(5)
        .threads(4)
        .build();
    let mut sim = Simulation::new(cfg);
    let steps = 60;
    println!("running the Mach-10 double Mach reflection, {steps} steps ...");
    sim.advance_steps(steps);
    assert!(!sim.has_nonfinite());

    // Sample density on a uniform raster from the finest level available at
    // each point (the overset-patch picture of the paper's Fig. 1/Fig. 2).
    let (w, h) = (96usize, 24usize);
    let mut rho = vec![vec![0.0f64; w]; h];
    let mut lev_of = vec![vec![0usize; w]; h];
    for l in 0..sim.nlevels() {
        let state = &sim.level(l).state;
        let dom = sim.hierarchy().domain(l).bx;
        let (nx, ny, nz) = (dom.size()[0], dom.size()[1], dom.size()[2]);
        for i in 0..state.nfabs() {
            let valid = state.valid_box(i);
            for p in valid.cells() {
                if p[2] != nz / 2 {
                    continue;
                }
                let px = (p[0] * w as i64 / nx) as usize;
                let py = (p[1] * h as i64 / ny) as usize;
                if l >= lev_of[py][px] {
                    lev_of[py][px] = l;
                    rho[py][px] = state.fab(i).get(p, cons::RHO);
                }
            }
        }
    }

    let (lo, hi) = rho
        .iter()
        .flatten()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(a, b), &v| {
            (a.min(v), b.max(v))
        });
    println!(
        "\ndensity contour at t = {:.4} (z mid-plane), rho in [{lo:.2}, {hi:.2}]:",
        sim.time()
    );
    let shades: &[u8] = b" .:-=+*#%@";
    for row in rho.iter().rev() {
        let mut line = String::with_capacity(w);
        for &v in row {
            let t = ((v - lo) / (hi - lo) * (shades.len() - 1) as f64) as usize;
            line.push(shades[t.min(shades.len() - 1)] as char);
        }
        println!("{line}");
    }
    println!("\nAMR level ownership (0 = coarse, 2 = finest):");
    for row in lev_of.iter().rev() {
        let mut line = String::with_capacity(w);
        for &l in row {
            line.push(char::from_digit(l as u32, 10).unwrap());
        }
        println!("{line}");
    }
    println!(
        "\nactive points: {} of {} equivalent ({:.1}% reduction) across {} levels",
        sim.report().active_points,
        sim.report().equivalent_points,
        100.0 * sim.report().reduction_fraction,
        sim.nlevels()
    );
    println!("paper Fig. 2: the incident shock, Mach stem, and slip line carry the");
    println!("fine patches; the quiescent pre-shock region stays coarse.");
}
