//! Fig. 4: hierarchical roofline (double-precision) for the CRoCCo kernels
//! on a Summit V100.

use crocco_bench::report::print_table;
use crocco_perfmodel::kernelspec::stage_kernels;
use crocco_perfmodel::roofline::evaluate;
use crocco_perfmodel::SummitPlatform;

fn main() {
    let platform = SummitPlatform::new();
    let ncells = 20_000_000; // the largest Fig. 3 size
    println!("V100 ceilings: peak {:.1} DP Tflop/s;", platform.gpu.peak_flops / 1e12);
    println!(
        "bandwidths: L1 {:.1} TB/s, L2 {:.1} TB/s, HBM {:.0} GB/s (x{:.2} eff.)",
        platform.gpu.l1_bw / 1e12,
        platform.gpu.l2_bw / 1e12,
        platform.gpu.dram_bw / 1e9,
        platform.gpu.dram_efficiency,
    );
    for spec in stage_kernels() {
        let occupancy = platform.gpu.occupancy(spec.registers_per_thread);
        let rows: Vec<Vec<String>> = evaluate(&platform.gpu, &spec, ncells)
            .iter()
            .map(|p| {
                vec![
                    p.level.name().to_string(),
                    format!("{:.3}", p.ai),
                    format!("{:.1}", p.achieved / 1e9),
                    format!("{:.1}", p.bandwidth_ceiling / 1e9),
                    format!("{:.1}", p.compute_ceiling / 1e9),
                    if p.bandwidth_bound { "yes" } else { "no" }.to_string(),
                ]
            })
            .collect();
        print_table(
            &format!(
                "Fig. 4: {} roofline (occupancy {:.1}%, {} regs/thread)",
                spec.name,
                occupancy * 100.0,
                spec.registers_per_thread
            ),
            &[
                "level",
                "AI (flop/B)",
                "achieved Gflop/s",
                "BW ceiling Gflop/s",
                "compute ceiling Gflop/s",
                "BW-bound",
            ],
            &rows,
        );
    }
    println!("\npaper: all numerics kernels ~300 DP Gflop/s (~4% of 7.8 Tflop/s peak),");
    println!("bandwidth-bound at L1/L2/DRAM, 12.5% occupancy from register pressure.");
}
