//! Ablation: blocking factor and maximum grid size (the §III-B / §V-C
//! input-deck knobs). Measures the modeled iteration time and patch
//! statistics as the gridding parameters sweep.

use crocco_bench::dmrscale::{pick_max_grid, LevelMeta, ScaledCase};
use crocco_bench::report::{fmt_time, print_table};
use crocco_bench::simbench::{ranks_for, simulate_iteration};
use crocco_bench::table1::weak_config;
use crocco_fab::{BoxArray, DistributionMapping, DistributionStrategy};
use crocco_geometry::decompose::ChopParams;
use crocco_geometry::{IndexBox, IntVect, ProblemDomain};
use crocco_perfmodel::SummitPlatform;
use crocco_solver::CodeVersion;

/// Rebuilds a uniform single-level case with an explicit max grid size.
fn uniform_with(extents: IntVect, nranks: usize, max_grid: i64) -> ScaledCase {
    let dom = ProblemDomain::new(
        IndexBox::from_extents(extents[0], extents[1], extents[2]),
        [false, false, true],
    );
    let ba = BoxArray::decompose(dom.bx, ChopParams::new(8, max_grid));
    let dm = DistributionMapping::new(&ba, nranks, DistributionStrategy::MortonSfc);
    ScaledCase {
        equivalent_points: dom.bx.num_points(),
        levels: vec![LevelMeta {
            ba,
            dm,
            domain: dom,
            max_grid,
        }],
        nranks,
    }
}

fn main() {
    let platform = SummitPlatform::new();
    let nodes = 64u32;
    let cfg = weak_config(nodes);
    let version = CodeVersion::V2_1;
    let ranks = ranks_for(version, nodes, &platform);
    // Sweep max grid size on the GPU uniform problem (coarsened 4x to keep
    // the box counts tractable at small max_grid).
    let extents = IntVect::new(cfg.extents[0] / 4, cfg.extents[1] / 4, cfg.extents[2] / 4);
    let mut rows = Vec::new();
    for mg in [16i64, 32, 64, 96, 128] {
        let case = uniform_with(extents, ranks, mg);
        let b = simulate_iteration(version, &case, &platform);
        let loads = case.levels[0].dm.rank_loads(&case.levels[0].ba);
        let imb = case.levels[0].dm.imbalance(&case.levels[0].ba);
        rows.push(vec![
            mg.to_string(),
            case.levels[0].ba.len().to_string(),
            format!("{:.2}", imb),
            (loads.iter().filter(|&&l| l == 0).count()).to_string(),
            fmt_time(b.get("Advance")),
            fmt_time(b.get("FillPatch")),
            fmt_time(b.total()),
        ]);
    }
    print_table(
        &format!(
            "Ablation: max_grid_size sweep ({} ranks, {} points, GPU v2.1)",
            ranks,
            extents.prod()
        ),
        &[
            "max_grid",
            "boxes",
            "imbalance",
            "idle ranks",
            "Advance",
            "FillPatch",
            "total",
        ],
        &rows,
    );
    println!("\nSmall patches: more launches + ghost overhead; large patches: idle ranks");
    println!("and imbalance. The paper hand-tuned blocking=8, max_grid=128 for its runs;");
    println!(
        "the adaptive rule used in the scaling studies picks {} here.",
        pick_max_grid(extents.prod() as u64, ranks)
    );
}
