//! Ablation: low-storage time integrator (executed). The paper marches with
//! Williamson RK3 (§II-A); AMReX's pluggable time integrators (§III-B) make
//! the scheme a free axis. Compares Euler / RK3 / RK4(5) on the smooth
//! vortex at a fixed horizon: error vs RHS-evaluation cost.

use crocco_bench::report::print_table;
use crocco_solver::config::{CodeVersion, SolverConfig};
use crocco_solver::driver::Simulation;
use crocco_solver::integrators::TimeScheme;
use crocco_solver::problems::ProblemKind;
use crocco_solver::validation::vortex_density_error;
use crocco_solver::PerfectGas;

fn main() {
    let gas = PerfectGas::nondimensional();
    let mut rows = Vec::new();
    for (name, scheme, cfl) in [
        // Euler is only conditionally stable with WENO; run it gently.
        ("Euler (1 stage)", TimeScheme::Euler, 0.2),
        ("Williamson RK3", TimeScheme::Rk3Williamson, 0.4),
        ("Carpenter-Kennedy RK4(5)", TimeScheme::Rk45CarpenterKennedy, 0.4),
    ] {
        let cfg = SolverConfig::builder()
            .problem(ProblemKind::IsentropicVortex)
            .extents(24, 24, 4)
            .version(CodeVersion::V1_1)
            .time_scheme(scheme)
            .cfl(cfl)
            .threads(4)
            .build();
        let mut sim = Simulation::new(cfg);
        while sim.time() < 0.25 {
            sim.step();
        }
        let rhs_evals = sim.step_count() as usize * scheme.stages();
        rows.push(vec![
            name.to_string(),
            scheme.stages().to_string(),
            format!("{cfl}"),
            sim.step_count().to_string(),
            rhs_evals.to_string(),
            format!("{:.3e}", vortex_density_error(&sim, &gas)),
            (!sim.has_nonfinite()).to_string(),
        ]);
    }
    print_table(
        "Ablation (executed): time integrator on the vortex to t = 0.25",
        &["scheme", "stages", "CFL", "steps", "RHS evals", "L2 density err", "stable"],
        &rows,
    );
    println!("\nAt smooth-flow resolutions the spatial WENO error dominates, so the");
    println!("higher-order schemes buy stability margin (larger usable CFL) more than");
    println!("accuracy — why the paper's production choice is the cheap 2N RK3.");
}
