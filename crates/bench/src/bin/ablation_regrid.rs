//! Ablation: regrid frequency (§II-B ties the optimal cadence to the CFL
//! number — features must not convect across level interfaces between
//! regrids). Runs the real DMR solver at several cadences and reports
//! accuracy/robustness indicators and regrid cost share.

use crocco_bench::report::print_table;
use crocco_solver::config::{CodeVersion, SolverConfig};
use crocco_solver::driver::Simulation;
use crocco_solver::problems::ProblemKind;
use crocco_solver::state::cons;

fn main() {
    let mut rows = Vec::new();
    for freq in [2u32, 5, 10, 20] {
        let cfg = SolverConfig::builder()
            .problem(ProblemKind::DoubleMach)
            .extents(64, 16, 8)
            .version(CodeVersion::V2_1)
            .max_levels(2)
            .regrid_freq(freq)
            .build();
        let mut sim = Simulation::new(cfg);
        let report = sim.advance_steps(20);
        let regrid_s = sim.profiler.total("Regrid");
        let total_s: f64 = ["Regrid", "ComputeDt", "FillPatch", "Advance", "AverageDown"]
            .iter()
            .map(|r| sim.profiler.total(r))
            .sum();
        rows.push(vec![
            freq.to_string(),
            format!("{:.4}", report.final_time),
            format!("{:.1}%", 100.0 * report.reduction_fraction),
            format!("{:.3e}", sim.conserved_integral(cons::RHO)),
            format!("{:.1}%", 100.0 * regrid_s / total_s.max(1e-12)),
            (!sim.has_nonfinite()).to_string(),
        ]);
    }
    print_table(
        "Ablation: regrid frequency on the DMR (20 steps, 2 levels, executed)",
        &[
            "regrid every",
            "final time",
            "point reduction",
            "total mass",
            "regrid share",
            "finite",
        ],
        &rows,
    );
    println!("\nFrequent regridding tracks the shock tightly (higher reduction is");
    println!("possible with tight tagging) but costs walltime; §II-B sizes the cadence");
    println!("so features cannot cross a patch between regrids at CFL<=1.");
}
