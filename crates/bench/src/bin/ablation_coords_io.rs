//! Ablation: regrid-time coordinate source (§III-C "Regridding").
//!
//! The paper's first curvilinear-AMR implementation had every newly created
//! patch serially read its coordinates from a binary file, which "added
//! noticeable overhead" on CPU and would be worse on GPU; the production
//! implementation keeps the grid in memory and calls `getCoords()`. This
//! ablation *executes* both paths on a real DMR run and compares the
//! initialization + regrid cost.

use crocco_bench::report::{fmt_time, print_table};
use crocco_solver::config::{CodeVersion, CoordSource, SolverConfig};
use crocco_solver::driver::Simulation;
use crocco_solver::problems::ProblemKind;
use crocco_solver::validation::l2_difference;
use std::time::Instant;

fn run(source: CoordSource) -> (f64, f64, Simulation) {
    let cfg = SolverConfig::builder()
        .problem(ProblemKind::DoubleMach)
        .extents(64, 16, 8)
        .version(CodeVersion::V2_0)
        .max_levels(2)
        .regrid_freq(3)
        .coord_source(source)
        .build();
    let t0 = Instant::now();
    let mut sim = Simulation::new(cfg);
    let init = t0.elapsed().as_secs_f64();
    sim.advance_steps(12); // crosses regrids at 3, 6, 9
    let regrid = sim.profiler.total("Regrid");
    (init, regrid, sim)
}

fn main() {
    let (init_mem, regrid_mem, sim_mem) = run(CoordSource::Memory);
    let (init_file, regrid_file, sim_file) = run(CoordSource::BinaryFile);
    print_table(
        "Ablation (executed): coordinate source at init + 4 regrids, DMR 2-level",
        &["source", "init", "Regrid total", "regrid slowdown"],
        &[
            vec![
                "memory getCoords()".into(),
                fmt_time(init_mem),
                fmt_time(regrid_mem),
                "1.0x".into(),
            ],
            vec![
                "binary-file reads".into(),
                fmt_time(init_file),
                fmt_time(regrid_file),
                format!("{:.1}x", regrid_file / regrid_mem.max(1e-9)),
            ],
        ],
    );
    // Both must produce the same physics.
    let diff = l2_difference(&sim_mem, &sim_file);
    let worst = diff.iter().cloned().fold(0.0f64, f64::max);
    println!("\nworst-variable L2 difference between the two paths: {worst:.2e}");
    assert!(worst < 1e-12, "coordinate sources disagree");
    println!("paper: the file-I/O path 'added noticeable overhead' on CPU and was");
    println!("replaced by reading the whole grid into memory; on GPU it would also");
    println!("pay a host-staging copy (§III-C).");
}
