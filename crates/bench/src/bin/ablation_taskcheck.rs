//! Ablation: the cost of concurrency soundness (DESIGN.md §4i).
//!
//! Three questions, three tables:
//!
//! 1. What does one static verification pass cost, and how does it scale
//!    with patch count? (`verify_stage` / `verify_dist` over real
//!    `FillBoundary` plans — the work the drivers memoize per regrid.)
//! 2. What does leaving the verifier on (`SolverConfig::taskcheck`, the
//!    default) cost per step on a real AMR run? The answer justifies the
//!    on-by-default choice.
//! 3. What does the adversarial scheduler cost relative to the thread
//!    pool? (It serializes the graph, so it is a debugging tool, not a
//!    production schedule — the table quantifies that.)
//!
//! All solver runs are checked bitwise-identical before timings are
//! reported: a knob that changed a single bit would invalidate the table.

use crocco_bench::report::{fmt_time, print_table};
use crocco_fab::{verify_dist, verify_stage, BoxArray, DistributionMapping, DistributionStrategy,
    PlanCache, StageSkeleton};
use crocco_geometry::decompose::ChopParams;
use crocco_geometry::{IndexBox, ProblemDomain};
use crocco_solver::config::{CodeVersion, SolverConfig, SolverConfigBuilder};
use crocco_solver::driver::Simulation;
use crocco_solver::problems::ProblemKind;
use std::sync::Arc;
use std::time::Instant;

/// Steps per timed run (`CROCCO_ABLATION_STEPS` overrides; longer runs
/// shrink the relative scheduling noise of a timeshared container).
fn steps() -> u32 {
    std::env::var("CROCCO_ABLATION_STEPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(12)
}

/// Timed-run repetitions; the tables report each config's *minimum* wall,
/// the standard robust estimator under one-sided scheduling noise.
const REPS: u32 = 3;

fn ramp_builder() -> SolverConfigBuilder {
    SolverConfig::builder()
        .problem(ProblemKind::Ramp)
        .extents(64, 32, 8)
        .version(CodeVersion::V2_0)
        .max_levels(2)
        .blocking_factor(4)
        .max_grid_size(16)
        .regrid_freq(5)
        .cfl(0.5)
}

/// Flattens every level's valid state to bit patterns for exact comparison.
fn state_bits(sim: &Simulation) -> Vec<u64> {
    let mut bits = Vec::new();
    for l in 0..sim.nlevels() {
        let state = &sim.level(l).state;
        for i in 0..state.nfabs() {
            for c in 0..state.ncomp() {
                for p in state.valid_box(i).cells() {
                    bits.push(state.fab(i).get(p, c).to_bits());
                }
            }
        }
    }
    bits
}

/// Table 1: one verification pass over a real plan at growing patch counts.
fn static_cost_table() {
    let mut rows = Vec::new();
    for (ex, ey, ez) in [(16i64, 8, 8), (32, 16, 8), (64, 32, 16), (128, 64, 16)] {
        let domain = ProblemDomain::non_periodic(IndexBox::from_extents(ex, ey, ez));
        let ba = Arc::new(BoxArray::decompose(domain.bx, ChopParams::new(4, 8)));
        let nghost = 2;
        let valid: Vec<IndexBox> = (0..ba.len()).map(|i| ba.get(i)).collect();
        // On-node stage graph.
        let dm1 = Arc::new(DistributionMapping::new(&ba, 1, DistributionStrategy::RoundRobin));
        let cache = PlanCache::new();
        let fb = cache.fill_boundary(&ba, &dm1, &domain, nghost, 5);
        let skel = StageSkeleton::build(&fb, ba.len());
        let stage = verify_stage(&fb, &skel, &valid, nghost);
        stage.assert_clean("stage");
        // Whole-cluster schedule at 4 ranks (rebuilds every rank's graph and
        // proves tag-completeness + cross-rank acyclicity on top).
        let dm4 = Arc::new(DistributionMapping::new(&ba, 4, DistributionStrategy::RoundRobin));
        let cache4 = PlanCache::new();
        let fb4 = cache4.fill_boundary(&ba, &dm4, &domain, nghost, 5);
        let dist = verify_dist(&fb4, dm4.owners(), 4, &valid, nghost);
        dist.assert_clean("dist");
        rows.push(vec![
            format!("{}x{}x{}", ex, ey, ez),
            ba.len().to_string(),
            stage.tasks.to_string(),
            stage.pairs_checked.to_string(),
            format!("{} us", stage.micros),
            dist.tasks.to_string(),
            dist.pairs_checked.to_string(),
            format!("{} us", dist.micros),
        ]);
    }
    print_table(
        "static verification cost (one pass, memoized per regrid)",
        &[
            "domain", "patches", "stage tasks", "stage pairs", "stage cost", "dist tasks (4 ranks)",
            "dist pairs", "dist cost",
        ],
        &rows,
    );
}

/// One timed run of `cfg`: wall seconds plus the final state bits.
fn one_run(cfg: &SolverConfig) -> (f64, Vec<u64>) {
    let mut sim = Simulation::new(cfg.clone());
    let t0 = Instant::now();
    sim.advance_steps(steps());
    (t0.elapsed().as_secs_f64(), state_bits(&sim))
}

/// Minimum wall per config over [`REPS`] *interleaved* repetitions (A, B,
/// A, B, …), plus each config's (rep-invariant) state bits. Interleaving
/// cancels the slow drift of a timeshared container that back-to-back
/// blocks would attribute to whichever config ran later; the minimum is
/// the standard robust estimator under one-sided scheduling noise.
fn timed_pair(a: &SolverConfig, b: &SolverConfig) -> ((f64, Vec<u64>), (f64, Vec<u64>)) {
    let (mut ta, mut tb) = (f64::INFINITY, f64::INFINITY);
    let (mut bits_a, mut bits_b) = (Vec::new(), Vec::new());
    for _ in 0..REPS {
        let (t, bits) = one_run(a);
        ta = ta.min(t);
        bits_a = bits;
        let (t, bits) = one_run(b);
        tb = tb.min(t);
        bits_b = bits;
    }
    ((ta, bits_a), (tb, bits_b))
}

/// Tables 2 + 3: verifier on/off step time, pool vs adversarial schedule.
fn solver_overhead_tables() {
    let base = |on: bool| ramp_builder().threads(4).overlap(true).taskcheck(on);
    let ((t_off, bits_off), (t_on, bits_on)) =
        timed_pair(&base(false).build(), &base(true).build());
    assert!(bits_off == bits_on, "taskcheck knob changed the answer");
    let overhead = (t_on / t_off - 1.0) * 100.0;
    print_table(
        &format!(
            "static verifier on/off, task-graph ramp, {} steps, best of {REPS} (bitwise-identical)",
            steps()
        ),
        &["config", "wall", "overhead"],
        &[
            vec!["taskcheck off".into(), fmt_time(t_off), "-".into()],
            vec!["taskcheck on (default)".into(), fmt_time(t_on), format!("{overhead:+.2}%")],
        ],
    );

    let ((t_pool, _), (t_adv, bits_adv)) =
        timed_pair(&base(true).build(), &base(true).sched_seed(0).build());
    assert!(bits_adv == bits_on, "adversarial schedule changed the answer");
    print_table(
        "pool vs adversarial schedule (bitwise-identical)",
        &["schedule", "wall", "vs pool"],
        &[
            vec!["pool(4)".into(), fmt_time(t_pool), "-".into()],
            vec![
                "adversarial(seed 0)".into(),
                fmt_time(t_adv),
                format!("{:.2}x", t_adv / t_pool),
            ],
        ],
    );
}

fn main() {
    static_cost_table();
    solver_overhead_tables();
}
