//! Fig. 5: strong (left) and weak (right) scaling of CRoCCo on the modeled
//! Summit platform.
//!
//! Usage: `fig5_scaling [strong|weak]` (default: both).

use crocco_bench::dmrscale::{amr_case, uniform_case};
use crocco_bench::report::{fmt_ratio, fmt_time, print_table};
use crocco_bench::simbench::{ranks_for, simulate_iteration_with, CommPricing};
use crocco_bench::table1::{strong_config, weak_configs, STRONG_NODES};
use crocco_perfmodel::SummitPlatform;
use crocco_solver::CodeVersion;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "both".into());
    let platform = SummitPlatform::new();
    if arg == "strong" || arg == "both" {
        strong(&platform);
    }
    if arg == "weak" || arg == "both" {
        weak(&platform);
    }
}

fn time_for(
    version: CodeVersion,
    nodes: u32,
    equiv: crocco_geometry::IntVect,
    platform: &SummitPlatform,
) -> f64 {
    time_priced(version, nodes, equiv, platform, CommPricing::Additive)
}

fn time_priced(
    version: CodeVersion,
    nodes: u32,
    equiv: crocco_geometry::IntVect,
    platform: &SummitPlatform,
    pricing: CommPricing,
) -> f64 {
    let ranks = ranks_for(version, nodes, platform);
    let case = if version.amr_enabled() {
        amr_case(equiv, ranks)
    } else {
        uniform_case(equiv, ranks)
    };
    simulate_iteration_with(version, &case, platform, pricing).total()
}

fn strong(platform: &SummitPlatform) {
    let cfg = strong_config();
    println!(
        "Strong scaling, {} equivalent grid points {:?}",
        cfg.points, cfg.extents
    );
    let mut rows = Vec::new();
    let mut first: Option<(f64, f64, f64)> = None;
    for &nodes in &STRONG_NODES {
        let t11 = time_for(CodeVersion::V1_1, nodes, cfg.extents, platform);
        let t12 = time_for(CodeVersion::V1_2, nodes, cfg.extents, platform);
        let t20 = time_for(CodeVersion::V2_0, nodes, cfg.extents, platform);
        first.get_or_insert((t11, t12, t20));
        rows.push(vec![
            nodes.to_string(),
            fmt_time(t11),
            fmt_time(t12),
            fmt_time(t20),
            fmt_ratio(t11 / t12),
            fmt_ratio(t12 / t20),
            fmt_ratio(t11 / t20),
        ]);
    }
    print_table(
        "Fig. 5 (left): strong scaling, time per iteration",
        &[
            "nodes",
            "v1.1 CPU",
            "v1.2 CPU+AMR",
            "v2.0 GPU+AMR",
            "AMR speedup",
            "GPU speedup",
            "cumulative",
        ],
        &rows,
    );
    println!(
        "paper: AMR speedup 4.6x -> 0.91x; GPU speedup 44x -> 6x; cumulative 201x -> 5.5x (16 -> 1024 nodes)"
    );
}

fn weak(platform: &SummitPlatform) {
    let mut rows = Vec::new();
    let mut base: Option<(f64, f64, f64, f64, f64)> = None;
    let mut eff_400 = (0.0, 0.0, 0.0);
    let mut eff_1024 = 0.0;
    for cfg in weak_configs() {
        let t11 = time_for(CodeVersion::V1_1, cfg.nodes, cfg.extents, platform);
        let t12 = time_for(CodeVersion::V1_2, cfg.nodes, cfg.extents, platform);
        let t20 = time_for(CodeVersion::V2_0, cfg.nodes, cfg.extents, platform);
        let t21 = time_for(CodeVersion::V2_1, cfg.nodes, cfg.extents, platform);
        // CRoCCo 2.1 re-priced with the distributed stage-overlap data path:
        // only exposed FillBoundary time lands on the critical path.
        let t21o = time_priced(
            CodeVersion::V2_1,
            cfg.nodes,
            cfg.extents,
            platform,
            CommPricing::Overlapped,
        );
        let b = *base.get_or_insert((t11, t12, t20, t21, t21o));
        if cfg.nodes == 400 {
            eff_400 = (b.2 / t20, b.3 / t21, b.4 / t21o);
        }
        if cfg.nodes == 1024 {
            eff_1024 = b.2 / t20;
        }
        rows.push(vec![
            cfg.nodes.to_string(),
            format!("{:.2E}", cfg.points as f64),
            fmt_time(t11),
            fmt_time(t12),
            fmt_time(t20),
            fmt_time(t21),
            fmt_time(t21o),
            format!("{:.0}%", 100.0 * b.2 / t20),
            format!("{:.0}%", 100.0 * b.3 / t21),
            format!("{:.0}%", 100.0 * b.4 / t21o),
        ]);
    }
    print_table(
        "Fig. 5 (right): weak scaling, time per iteration",
        &[
            "nodes",
            "points",
            "v1.1 CPU",
            "v1.2 CPU+AMR",
            "v2.0 GPU",
            "v2.1 GPU+tri",
            "v2.1 overlap",
            "eff 2.0",
            "eff 2.1",
            "eff ovl",
        ],
        &rows,
    );
    println!(
        "measured: 2.0 efficiency @400 = {:.0}%, @1024 = {:.0}%; 2.1 @400 = {:.0}%; 2.1 overlapped @400 = {:.0}%",
        eff_400.0 * 100.0,
        eff_1024 * 100.0,
        eff_400.1 * 100.0,
        eff_400.2 * 100.0
    );
    println!("paper:    2.0 efficiency @400 = 54%, @1024 = 40%; 2.1 @400 = ~70%");
}
