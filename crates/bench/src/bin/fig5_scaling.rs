//! Fig. 5: strong (left) and weak (right) scaling of CRoCCo on the modeled
//! Summit platform.
//!
//! Usage: `fig5_scaling [strong|weak]` (default: both).

use crocco_bench::dmrscale::{amr_case, uniform_case};
use crocco_bench::report::{fmt_ratio, fmt_time, print_table};
use crocco_bench::simbench::{
    memory_per_rank, ranks_for, simulate_iteration_model, simulate_iteration_with, CommPricing,
    DataModel,
};
use crocco_bench::table1::{strong_config, weak_configs, STRONG_NODES};
use crocco_perfmodel::SummitPlatform;
use crocco_solver::CodeVersion;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "both".into());
    let platform = SummitPlatform::new();
    if arg == "strong" || arg == "both" {
        strong(&platform);
    }
    if arg == "weak" || arg == "both" {
        weak(&platform);
    }
    if arg == "weak" || arg == "both" || arg == "owned" {
        owned_vs_replicated(&platform);
    }
}

fn time_for(
    version: CodeVersion,
    nodes: u32,
    equiv: crocco_geometry::IntVect,
    platform: &SummitPlatform,
) -> f64 {
    time_priced(version, nodes, equiv, platform, CommPricing::Additive)
}

fn time_priced(
    version: CodeVersion,
    nodes: u32,
    equiv: crocco_geometry::IntVect,
    platform: &SummitPlatform,
    pricing: CommPricing,
) -> f64 {
    let ranks = ranks_for(version, nodes, platform);
    let case = if version.amr_enabled() {
        amr_case(equiv, ranks)
    } else {
        uniform_case(equiv, ranks)
    };
    simulate_iteration_with(version, &case, platform, pricing).total()
}

fn strong(platform: &SummitPlatform) {
    let cfg = strong_config();
    println!(
        "Strong scaling, {} equivalent grid points {:?}",
        cfg.points, cfg.extents
    );
    let mut rows = Vec::new();
    let mut first: Option<(f64, f64, f64)> = None;
    for &nodes in &STRONG_NODES {
        let t11 = time_for(CodeVersion::V1_1, nodes, cfg.extents, platform);
        let t12 = time_for(CodeVersion::V1_2, nodes, cfg.extents, platform);
        let t20 = time_for(CodeVersion::V2_0, nodes, cfg.extents, platform);
        first.get_or_insert((t11, t12, t20));
        rows.push(vec![
            nodes.to_string(),
            fmt_time(t11),
            fmt_time(t12),
            fmt_time(t20),
            fmt_ratio(t11 / t12),
            fmt_ratio(t12 / t20),
            fmt_ratio(t11 / t20),
        ]);
    }
    print_table(
        "Fig. 5 (left): strong scaling, time per iteration",
        &[
            "nodes",
            "v1.1 CPU",
            "v1.2 CPU+AMR",
            "v2.0 GPU+AMR",
            "AMR speedup",
            "GPU speedup",
            "cumulative",
        ],
        &rows,
    );
    println!(
        "paper: AMR speedup 4.6x -> 0.91x; GPU speedup 44x -> 6x; cumulative 201x -> 5.5x (16 -> 1024 nodes)"
    );
}

fn weak(platform: &SummitPlatform) {
    let mut rows = Vec::new();
    let mut base: Option<(f64, f64, f64, f64, f64)> = None;
    let mut eff_400 = (0.0, 0.0, 0.0);
    let mut eff_1024 = 0.0;
    for cfg in weak_configs() {
        let t11 = time_for(CodeVersion::V1_1, cfg.nodes, cfg.extents, platform);
        let t12 = time_for(CodeVersion::V1_2, cfg.nodes, cfg.extents, platform);
        let t20 = time_for(CodeVersion::V2_0, cfg.nodes, cfg.extents, platform);
        let t21 = time_for(CodeVersion::V2_1, cfg.nodes, cfg.extents, platform);
        // CRoCCo 2.1 re-priced with the distributed stage-overlap data path:
        // only exposed FillBoundary time lands on the critical path.
        let t21o = time_priced(
            CodeVersion::V2_1,
            cfg.nodes,
            cfg.extents,
            platform,
            CommPricing::Overlapped,
        );
        let b = *base.get_or_insert((t11, t12, t20, t21, t21o));
        if cfg.nodes == 400 {
            eff_400 = (b.2 / t20, b.3 / t21, b.4 / t21o);
        }
        if cfg.nodes == 1024 {
            eff_1024 = b.2 / t20;
        }
        rows.push(vec![
            cfg.nodes.to_string(),
            format!("{:.2E}", cfg.points as f64),
            fmt_time(t11),
            fmt_time(t12),
            fmt_time(t20),
            fmt_time(t21),
            fmt_time(t21o),
            format!("{:.0}%", 100.0 * b.2 / t20),
            format!("{:.0}%", 100.0 * b.3 / t21),
            format!("{:.0}%", 100.0 * b.4 / t21o),
        ]);
    }
    print_table(
        "Fig. 5 (right): weak scaling, time per iteration",
        &[
            "nodes",
            "points",
            "v1.1 CPU",
            "v1.2 CPU+AMR",
            "v2.0 GPU",
            "v2.1 GPU+tri",
            "v2.1 overlap",
            "eff 2.0",
            "eff 2.1",
            "eff ovl",
        ],
        &rows,
    );
    println!(
        "measured: 2.0 efficiency @400 = {:.0}%, @1024 = {:.0}%; 2.1 @400 = {:.0}%; 2.1 overlapped @400 = {:.0}%",
        eff_400.0 * 100.0,
        eff_1024 * 100.0,
        eff_400.1 * 100.0,
        eff_400.2 * 100.0
    );
    println!("paper:    2.0 efficiency @400 = 54%, @1024 = 40%; 2.1 @400 = ~70%");
}

fn fmt_gib(bytes: u64) -> String {
    format!("{:.2} GiB", bytes as f64 / f64::from(1u32 << 30))
}

/// The owned-data ablation (docs/DISTRIBUTED.md, docs/results/owned_dist.md):
/// CRoCCo 2.0's weak scaling priced with the production owner-only storage
/// against the retired replicated model, whose per-stage `allgather_fabs`
/// and O(global) memory per rank this PR deleted from the step loop.
fn owned_vs_replicated(platform: &SummitPlatform) {
    let mut rows = Vec::new();
    let mut base: Option<(f64, f64)> = None;
    for cfg in weak_configs() {
        let ranks = ranks_for(CodeVersion::V2_0, cfg.nodes, platform);
        let case = amr_case(cfg.extents, ranks);
        let t_own = simulate_iteration_model(
            CodeVersion::V2_0,
            &case,
            platform,
            CommPricing::Additive,
            DataModel::Owned,
        )
        .total();
        let repl = simulate_iteration_model(
            CodeVersion::V2_0,
            &case,
            platform,
            CommPricing::Additive,
            DataModel::Replicated,
        );
        let t_repl = repl.total();
        let b = *base.get_or_insert((t_own, t_repl));
        rows.push(vec![
            cfg.nodes.to_string(),
            fmt_time(t_own),
            fmt_time(t_repl),
            fmt_time(repl.get("Allgather")),
            format!("{:.0}%", 100.0 * b.0 / t_own),
            format!("{:.0}%", 100.0 * b.1 / t_repl),
            fmt_gib(memory_per_rank(&case, DataModel::Owned)),
            fmt_gib(memory_per_rank(&case, DataModel::Replicated)),
        ]);
    }
    print_table(
        "Fig. 5 (owned-data ablation): weak scaling, owned vs replicated state (v2.0)",
        &[
            "nodes",
            "owned",
            "replicated",
            "allgather",
            "eff owned",
            "eff repl",
            "mem/rank owned",
            "mem/rank repl",
        ],
        &rows,
    );
    println!(
        "owned memory/rank stays O(owned cells) as nodes grow; the replicated model's \
         per-stage allgather and O(global) footprint are what the owned-data port removed \
         (docs/results/owned_dist.md)"
    );
}
