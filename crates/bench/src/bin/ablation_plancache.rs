//! Ablation: communication-plan caching (the FabArrayBase-style metadata
//! memoization AMReX relies on). Runs the real DMR solver with the plan
//! cache off and on, and reports wall time, the FillPatch share, and how
//! much of each step the cached run spends (re)building plans — the cost the
//! cache removes from the steady-state loop.

use crocco_bench::report::print_table;
use crocco_solver::config::{CodeVersion, SolverConfig};
use crocco_solver::driver::Simulation;
use crocco_solver::problems::ProblemKind;
use std::time::Instant;

const STEPS: u32 = 20;

struct Run {
    label: String,
    wall_s: f64,
    fillpatch_s: f64,
    plan_build_s: f64,
    avoided_s: f64,
    hits: u64,
    misses: u64,
}

fn run(plan_cache: bool, threads: usize) -> Run {
    let cfg = SolverConfig::builder()
        .problem(ProblemKind::DoubleMach)
        .extents(64, 16, 8)
        .version(CodeVersion::V2_0) // curvilinear: exercises the coord gather
        .max_levels(2)
        .regrid_freq(5)
        .plan_cache(plan_cache)
        .threads(threads)
        .build();
    let mut sim = Simulation::new(cfg);
    // Drop construction-time cache traffic: only the step loop matters here.
    sim.hierarchy().plan_cache().invalidate();
    let t0 = Instant::now();
    sim.advance_steps(STEPS);
    let wall_s = t0.elapsed().as_secs_f64();
    let cache = sim.hierarchy().plan_cache();
    let (hits, misses, plan_build_s) = if plan_cache {
        (cache.hits(), cache.misses(), cache.build_seconds())
    } else {
        (0, 0, 0.0)
    };
    // Every hit would have been a rebuild without the cache: estimate the
    // removed cost from the measured mean build time.
    let avoided_s = if misses > 0 {
        hits as f64 * plan_build_s / misses as f64
    } else {
        0.0
    };
    Run {
        label: format!(
            "{} ({} thread{})",
            if plan_cache { "cached" } else { "uncached" },
            threads,
            if threads == 1 { "" } else { "s" }
        ),
        wall_s,
        fillpatch_s: sim.profiler.total("FillPatch"),
        plan_build_s,
        avoided_s,
        hits,
        misses,
    }
}

fn main() {
    let nthreads = crocco_runtime::default_threads();
    let runs = [run(false, 1), run(true, 1), run(true, nthreads)];
    let base = runs[0].wall_s;
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                format!("{:.3} s", r.wall_s),
                format!("{:.2}x", base / r.wall_s.max(1e-12)),
                format!("{:.1}%", 100.0 * r.fillpatch_s / r.wall_s.max(1e-12)),
                format!("{:.2} ms", 1e3 * r.plan_build_s / STEPS as f64),
                format!("{:.1}%", 100.0 * r.avoided_s / r.wall_s.max(1e-12)),
                format!("{}/{}", r.hits, r.misses),
            ]
        })
        .collect();
    print_table(
        &format!("Ablation: plan cache on the DMR ({STEPS} steps, 2 levels, executed)"),
        &[
            "configuration",
            "wall",
            "speedup",
            "FillPatch share",
            "plan build / step",
            "rebuild cost avoided",
            "hits/misses",
        ],
        &rows,
    );
    println!("\nPlans change only at regrid, so the cached run builds each level's");
    println!("FillBoundary/gather metadata once per regrid interval instead of every");
    println!("RK stage; the avoided-rebuild column prices the removed work from the");
    println!("measured mean build time (hits x mean build).");
}
