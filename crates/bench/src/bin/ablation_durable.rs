//! Ablation: durable checkpoint spill (DESIGN.md §4j). Three experiments:
//!
//! 1. **Spill tax vs interval** — the ramp solver under the chaos runtime
//!    with the double-buffered disk spill enabled, sweeping the checkpoint
//!    interval. Reports wall time against the in-memory-only baseline and
//!    the number of sealed spills per run.
//! 2. **Single-spill and cold-restart latency** — microbenchmarks the
//!    atomic slot + manifest write (temp + fsync + rename, both buffers
//!    exercised) and the full cold-restart path (recovery ladder + owned
//!    re-partitioning) from the spill directory.
//! 3. **Young/Daly pricing** — feeds the *measured* spill cost into
//!    `perfmodel::resilience::optimal_interval_measured` to report the
//!    optimal checkpoint interval and expected overhead at Summit-like
//!    node counts (results table: `docs/results/durable_ckpt.md`).
//!
//! `CROCCO_DIST_RANKS` overrides the cluster size (default 2).

use crocco_bench::report::{fmt_time, print_table};
use crocco_perfmodel::resilience::ResilienceModel;
use crocco_runtime::chaos::ChaosConfig;
use crocco_runtime::{GroupEndpoint, LocalCluster};
use crocco_solver::config::{CodeVersion, SolverConfig, SolverConfigBuilder};
use crocco_solver::driver::Simulation;
use crocco_solver::durable::DurableCheckpointer;
use crocco_solver::io::write_checkpoint_bytes;
use std::path::{Path, PathBuf};
use std::time::Instant;

const STEPS: u32 = 8;

fn ramp_builder() -> SolverConfigBuilder {
    SolverConfig::builder()
        .problem(crocco_solver::problems::ProblemKind::Ramp)
        .extents(48, 24, 8)
        .version(CodeVersion::V2_0)
        .max_levels(2)
        .blocking_factor(4)
        .max_grid_size(16)
        .regrid_freq(3)
        .cfl(0.5)
}

/// One chaos-runtime run; `spill_dir` enables the durable spill. Returns
/// (wall seconds, spills sealed, checkpoint bytes).
fn run(nranks: usize, interval: u32, spill_dir: Option<&Path>) -> (f64, u32, usize) {
    let chaos = ChaosConfig {
        checkpoint_interval: interval,
        ..ChaosConfig::default()
    };
    let mut builder = ramp_builder().nranks(nranks).chaos(chaos.clone());
    if let Some(dir) = spill_dir {
        builder = builder.spill_dir(dir);
    }
    let cfg = builder.build();
    let t0 = Instant::now();
    let (reports, _) = LocalCluster::run_with_chaos(nranks, chaos, move |ep| {
        let gep = GroupEndpoint::full(&ep);
        let mut sim = Simulation::new_owned(cfg.clone(), &gep).expect("construction");
        drop(gep);
        sim.advance_steps_chaos(STEPS, &ep)
    });
    let wall = t0.elapsed().as_secs_f64();
    let r0 = &reports[0];
    assert_eq!(r0.spill_failures, 0, "fault-free spills must all land");
    (wall, r0.spills, r0.checkpoint_bytes)
}

fn temp_dir(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("crocco_abl_durable_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn main() {
    let nranks: usize = std::env::var("CROCCO_DIST_RANKS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(2);

    // --- 1. Spill tax vs interval --------------------------------------
    let (base_wall, _, ckpt_bytes) = run(nranks, 2, None);
    let mut rows = vec![vec![
        "in-memory only (interval 2)".into(),
        fmt_time(base_wall),
        "-".into(),
        "1.00x".into(),
    ]];
    for interval in [1u32, 2, 4, 8] {
        let dir = temp_dir(&format!("i{interval}"));
        let (wall, spills, _) = run(nranks, interval, Some(&dir));
        rows.push(vec![
            format!("disk spill, interval {interval}"),
            fmt_time(wall),
            spills.to_string(),
            format!("{:.2}x", wall / base_wall),
        ]);
        let _ = std::fs::remove_dir_all(&dir);
    }
    print_table(
        &format!(
            "Durable spill tax, ramp {STEPS} steps, {nranks} ranks, {:.1} MiB checkpoints",
            ckpt_bytes as f64 / (1024.0 * 1024.0)
        ),
        &["configuration", "wall", "spills", "vs in-memory"],
        &rows,
    );

    // --- 2. Single-spill + cold-restart latency ------------------------
    let mut sim = Simulation::new(ramp_builder().build());
    sim.advance_steps(4);
    let bytes = write_checkpoint_bytes(&sim);
    let dir = temp_dir("micro");
    let mut sp = DurableCheckpointer::open(&dir, None).expect("open spill dir");
    let reps = 10u32;
    let t0 = Instant::now();
    for _ in 0..reps {
        sp.spill(sim.step_count(), &bytes).expect("spill");
    }
    let spill_s = t0.elapsed().as_secs_f64() / f64::from(reps);
    let t0 = Instant::now();
    let (_, info) = Simulation::from_checkpoint_file_owned(
        ramp_builder().nranks(nranks).build(),
        &dir,
        0,
    )
    .expect("cold restart");
    let restart_s = t0.elapsed().as_secs_f64();
    print_table(
        "Durable spill microbenchmark (slot + manifest, fsync'd atomic rename)",
        &["metric", "value"],
        &[
            vec![
                "checkpoint size".into(),
                format!("{:.1} MiB", bytes.len() as f64 / (1024.0 * 1024.0)),
            ],
            vec![format!("spill latency (avg of {reps})"), fmt_time(spill_s)],
            vec![
                "spill bandwidth".into(),
                format!("{:.0} MiB/s", bytes.len() as f64 / spill_s / (1024.0 * 1024.0)),
            ],
            vec![
                format!("cold restart (slot {}, rank 0/{nranks})", info.slot),
                fmt_time(restart_s),
            ],
        ],
    );
    let _ = std::fs::remove_dir_all(&dir);

    // --- 3. Young/Daly pricing of the measured spill cost --------------
    let model = ResilienceModel::summit();
    let work = 24.0 * 3600.0;
    let mut rows = Vec::new();
    for nnodes in [92usize, 460, 4600] {
        let i_opt = model.optimal_interval_measured(spill_s, nnodes);
        let overhead =
            model.expected_runtime_measured(work, i_opt, spill_s, restart_s, nnodes) / work;
        rows.push(vec![
            nnodes.to_string(),
            format!("{:.0} s", i_opt),
            format!("{:.4}x", overhead),
        ]);
    }
    print_table(
        &format!(
            "Young/Daly optimum for the measured spill cost ({}) on Summit MTBF",
            fmt_time(spill_s)
        ),
        &["nodes", "optimal interval", "24h-run overhead"],
        &rows,
    );
}
