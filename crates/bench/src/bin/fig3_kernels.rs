//! Fig. 3: WENOx and Viscous kernel time per iteration vs problem size —
//! Fortran/CPU, C++/CPU, and GPU, on one POWER9 socket + one V100.

use crocco_bench::fig3::{viscous_curve, wenox_curve};
use crocco_bench::report::{fmt_ratio, fmt_time, print_table};
use crocco_perfmodel::SummitPlatform;

fn main() {
    let platform = SummitPlatform::new();
    for (name, curve) in [
        ("WENOx", wenox_curve(&platform)),
        ("Viscous", viscous_curve(&platform)),
    ] {
        let rows: Vec<Vec<String>> = curve
            .iter()
            .map(|p| {
                vec![
                    format!("{:.1E}", p.points as f64),
                    fmt_time(p.fortran_cpu),
                    fmt_time(p.cpp_cpu),
                    fmt_time(p.gpu),
                    fmt_ratio(p.cpp_slowdown()),
                    fmt_ratio(p.gpu_speedup()),
                ]
            })
            .collect();
        print_table(
            &format!("Fig. 3: {name} kernel time per iteration"),
            &[
                "points",
                "Fortran CPU",
                "C++ CPU",
                "GPU",
                "C++/Fortran",
                "GPU speedup",
            ],
            &rows,
        );
    }
    println!("\npaper: C++ ~1.2x slower than Fortran at all sizes;");
    println!("GPU speedup from 2.5x (smallest, Viscous) to 15.8x (largest, WENOx).");
}
