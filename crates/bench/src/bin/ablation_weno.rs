//! Ablation: WENO linear-weight family (upwind JS5 vs max-order symmetric vs
//! bandwidth-optimized SYMBO, §II-A). Measures dissipation on the smooth
//! isentropic vortex and robustness on the Sod shock, executed for real.

use crocco_bench::report::print_table;
use crocco_solver::config::{CodeVersion, SolverConfig};
use crocco_solver::driver::Simulation;
use crocco_solver::problems::ProblemKind;
use crocco_solver::validation::{sod_density_error, vortex_density_error};
use crocco_solver::{PerfectGas, WenoVariant};

fn main() {
    let gas = PerfectGas::nondimensional();
    let variants = [
        ("WENO5-JS (upwind)", WenoVariant::Js5),
        ("central-6 (max order)", WenoVariant::CentralSym6),
        ("WENO-SYMBO", WenoVariant::Symbo),
    ];
    let mut rows = Vec::new();
    for (name, w) in variants {
        // Smooth-flow dissipation: vortex L2 density error at t=0.5.
        let cfg = SolverConfig::builder()
            .problem(ProblemKind::IsentropicVortex)
            .extents(32, 32, 4)
            .version(CodeVersion::V1_1)
            .weno(w)
            .cfl(0.5)
            .build();
        let mut vortex = Simulation::new(cfg);
        while vortex.time() < 0.5 {
            vortex.step();
        }
        let e_smooth = vortex_density_error(&vortex, &gas);

        // Shock robustness: Sod at t=0.1.
        let cfg = SolverConfig::builder()
            .problem(ProblemKind::SodX)
            .extents(64, 4, 4)
            .version(CodeVersion::V1_1)
            .weno(w)
            .cfl(0.5)
            .build();
        let mut sod = Simulation::new(cfg);
        while sod.time() < 0.1 {
            sod.step();
        }
        let e_shock = sod_density_error(&sod, &gas);
        rows.push(vec![
            name.to_string(),
            format!("{e_smooth:.3e}"),
            format!("{e_shock:.3e}"),
            (!vortex.has_nonfinite() && !sod.has_nonfinite()).to_string(),
        ]);
    }
    print_table(
        "Ablation: WENO variant (executed: vortex t=0.5, Sod t=0.1)",
        &["scheme", "smooth L2 err", "shock L2 err", "stable"],
        &rows,
    );
    println!("\npaper: WENO-SYMBO resolves small scales on fewer points than shock-");
    println!("tuned upwind WENO (lower smooth-flow dissipation) while remaining");
    println!("shock-capturing; that is why CRoCCo can use AMR purely as a");
    println!("turbulence-resolving tool (§III-C).");
}
