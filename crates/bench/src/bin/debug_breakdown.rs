//! Developer utility: print the simulated per-region breakdown for one
//! version/node-count (used to calibrate the Summit model).

use crocco_bench::dmrscale::{amr_case, uniform_case};
use crocco_bench::simbench::{ranks_for, simulate_iteration};
use crocco_bench::table1::strong_config;
use crocco_perfmodel::SummitPlatform;
use crocco_solver::CodeVersion;

fn main() {
    let platform = SummitPlatform::new();
    let cfg = strong_config();
    for (ver, nodes) in [
        (CodeVersion::V1_1, 16u32),
        (CodeVersion::V1_2, 16),
        (CodeVersion::V2_0, 16),
        (CodeVersion::V1_1, 1024),
        (CodeVersion::V1_2, 1024),
        (CodeVersion::V2_0, 1024),
    ] {
        let ranks = ranks_for(ver, nodes, &platform);
        let case = if ver.amr_enabled() {
            amr_case(cfg.extents, ranks)
        } else {
            uniform_case(cfg.extents, ranks)
        };
        let b = simulate_iteration(ver, &case, &platform);
        println!("\n{ver:?} @ {nodes} nodes ({ranks} ranks, {} boxes):", case.total_boxes());
        for (k, v) in &b.regions {
            println!("  {k:<36} {:>12.3} ms", v * 1e3);
        }
        println!("  {:<36} {:>12.3} ms", "TOTAL", b.total() * 1e3);
    }
}
