//! Ablation: kernel backends (Scalar / Lanes / Fused, DESIGN.md §4h) on the
//! 512-patch level, scored against the roofline model.
//!
//! For every backend this measures each stage kernel's single-thread
//! throughput in cells/s and grades it with
//! [`crocco_perfmodel::score_measured`] against nominal host ceilings — the
//! falsifiable half of the perf model: the analytic `KernelSpec` counts
//! predict a ceiling, the backends either approach it or don't. The fused
//! backend's kernels are timed *inside* its per-tile programs (a one-op
//! program per kernel, the full fused group for the stage row), so the
//! reduced-DRAM specs from [`fused::fused_specs`] price what actually runs.
//!
//! Emits the machine-readable `BENCH_backend.json` (cells/s, achieved
//! flop/s, and fraction-of-roofline per kernel per backend) alongside the
//! human table; `docs/results/backend.md` records a reference run.

use crocco_bench::report::print_table;
use crocco_fab::{tiled_work_list, BoxArray, DistributionMapping, FArrayBox, MultiFab, DEFAULT_TILE};
use crocco_geometry::decompose::ChopParams;
use crocco_geometry::{IndexBox, IntVect, RealVect, StretchedMapping};
use crocco_perfmodel::kernelspec::{compute_dt_spec, stage_kernels, update_spec, weno_spec};
use crocco_perfmodel::{score_measured, KernelSpec, MeasuredPoint};
use crocco_solver::backend::fused::{self, FusedProgram, KernelIr, TileOp};
use crocco_solver::backend::BackendKind;
use crocco_solver::kernels::NGHOST;
use crocco_solver::metrics::{compute_metrics, generate_coords, NCOORDS, NMETRICS};
use crocco_solver::state::{Conserved, Primitive, NCONS};
use crocco_solver::weno::Reconstruction;
use crocco_solver::{PerfectGas, WenoVariant};
use std::sync::Arc;
use std::time::Instant;

/// Nominal single-core host ceilings for the roofline grading: ~3 GHz × 16
/// DP flops/cycle (AVX-512 FMA) and the single-thread DRAM stream rate.
/// They set the *scale* of the fractions, not the backend ranking.
const HOST_PEAK_FLOPS: f64 = 50e9;
const HOST_DRAM_BW: f64 = 25e9;

/// Timing repetitions; the minimum is reported.
const REPS: usize = 5;

struct Level {
    state: MultiFab,
    metrics: MultiFab,
    gas: PerfectGas,
    cells: u64,
}

/// The 512-patch level: 64³ cells chopped into 8³ patches — the
/// AMR-realistic shape where per-patch and per-tile overheads show — on a
/// stretched grid, carrying a sheared supersonic-ish air state so the
/// viscous kernel has real work.
fn make_level() -> Level {
    let gas = PerfectGas::air();
    let edge = 64i64;
    let extents = IntVect::new(edge, edge, edge);
    let ba = Arc::new(BoxArray::decompose(
        IndexBox::from_extents(edge, edge, edge),
        ChopParams::new(8, 8),
    ));
    assert_eq!(ba.len(), 512);
    let dm = Arc::new(DistributionMapping::all_on_root(&ba));
    let map = StretchedMapping::new(RealVect::ZERO, RealVect::splat(1.0), 1.2, 1);
    let mut coords = MultiFab::new(ba.clone(), dm.clone(), NCOORDS, NGHOST + 2);
    generate_coords(&map, extents, &mut coords);
    let mut metrics = MultiFab::new(ba.clone(), dm.clone(), NMETRICS, NGHOST);
    compute_metrics(&coords, &mut metrics);
    let mut state = MultiFab::new(ba.clone(), dm, NCONS, NGHOST);
    for i in 0..state.nfabs() {
        let all = state.fab(i).bx();
        for p in all.cells() {
            let x = p[0] as f64 / edge as f64;
            let y = p[1] as f64 / edge as f64;
            let w = Primitive {
                rho: 1.2 + 0.2 * (5.0 * x).sin() * (3.0 * y).cos(),
                vel: [80.0 - 40.0 * y, 15.0 * (4.0 * x).cos(), 5.0],
                p: 1.0e5 * (1.0 + 0.1 * (3.0 * x + 2.0 * y).sin()),
                t: 0.0,
            };
            let u = Conserved::from_primitive(&w, &gas);
            for c in 0..NCONS {
                state.fab_mut(i).set(p, c, u.0[c]);
            }
        }
    }
    let cells = ba.num_points();
    Level {
        state,
        metrics,
        gas,
        cells,
    }
}

fn rhs_fabs(lvl: &Level) -> Vec<FArrayBox> {
    (0..lvl.state.nfabs())
        .map(|i| FArrayBox::new(lvl.state.valid_box(i), NCONS))
        .collect()
}

/// Best-of-`REPS` wall time of `f` (one untimed warmup).
fn time_best<F: FnMut()>(mut f: F) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Sums the per-cell work of `specs` into one aggregate kernel.
fn sum_spec(name: &'static str, specs: &[KernelSpec]) -> KernelSpec {
    let mut out = KernelSpec {
        name,
        flops_per_cell: 0.0,
        dram_bytes_per_cell: 0.0,
        l2_bytes_per_cell: 0.0,
        l1_bytes_per_cell: 0.0,
        registers_per_thread: 255,
        sub_launches: 0,
    };
    for s in specs {
        out.flops_per_cell += s.flops_per_cell;
        out.dram_bytes_per_cell += s.dram_bytes_per_cell;
        out.l2_bytes_per_cell += s.l2_bytes_per_cell;
        out.l1_bytes_per_cell += s.l1_bytes_per_cell;
        out.sub_launches += s.sub_launches;
    }
    out
}

/// Runs a one-op (or full-stage) fused tile program over every patch.
fn run_fused(lvl: &Level, prog: &FusedProgram, rhs: &mut [FArrayBox], du: &mut [FArrayBox]) {
    for i in 0..lvl.state.nfabs() {
        fused::run_stage_patch(
            prog,
            lvl.state.fab(i),
            lvl.metrics.fab(i),
            &mut rhs[i],
            &mut du[i],
            lvl.state.valid_box(i),
            DEFAULT_TILE,
            &lvl.gas,
            WenoVariant::Symbo,
            Reconstruction::ComponentWise,
            None,
            0.9,
            1e-3,
        );
    }
}

/// Measures every kernel of `backend` and returns `(kernel spec, seconds)`.
fn measure_backend(lvl: &Level, backend: BackendKind) -> Vec<(KernelSpec, f64)> {
    let mut rhs = rhs_fabs(lvl);
    let mut du = rhs_fabs(lvl);
    let mut out = Vec::new();
    let one_op = |op: TileOp| FusedProgram {
        tile_ops: vec![op],
        epilogue: vec![],
    };

    if backend == BackendKind::Fused {
        // Kernels timed as fused one-op tile programs; specs carry the
        // fusion accounting (RHS round-trip stays tile-resident).
        let specs = fused::fused_specs(true);
        for (dir, spec) in specs.iter().enumerate().take(3) {
            let t = time_best(|| run_fused(lvl, &one_op(TileOp::WenoFlux { dir }), &mut rhs, &mut du));
            out.push((*spec, t));
        }
        let t = time_best(|| run_fused(lvl, &one_op(TileOp::ViscousFlux), &mut rhs, &mut du));
        out.push((specs[3], t));
        let t = time_best(|| run_fused(lvl, &one_op(TileOp::DuAxpy), &mut rhs, &mut du));
        out.push((specs[4], t));
    } else {
        for dir in 0..3 {
            let t = time_best(|| {
                for (i, r) in rhs.iter_mut().enumerate() {
                    backend.weno_flux_recon(
                        lvl.state.fab(i),
                        lvl.metrics.fab(i),
                        r,
                        lvl.state.valid_box(i),
                        dir,
                        &lvl.gas,
                        WenoVariant::Symbo,
                        Reconstruction::ComponentWise,
                    );
                }
            });
            out.push((weno_spec(dir), t));
        }
        let t = time_best(|| {
            for (i, r) in rhs.iter_mut().enumerate() {
                backend.viscous_flux_les(
                    lvl.state.fab(i),
                    lvl.metrics.fab(i),
                    r,
                    lvl.state.valid_box(i),
                    &lvl.gas,
                    None,
                );
            }
        });
        out.push((crocco_perfmodel::kernelspec::viscous_spec(), t));
        let t = time_best(|| {
            for (d, r) in du.iter_mut().zip(&rhs) {
                d.lincomb(0.9, 1e-3, r);
            }
        });
        out.push((update_spec(), t));
    }

    // ComputeDt dispatches identically everywhere (a pure reduction — no
    // fusion opportunity), so every backend row prices the same spec.
    let t = time_best(|| {
        let mut dt = f64::INFINITY;
        for i in 0..lvl.state.nfabs() {
            dt = dt.min(backend.compute_dt_patch(
                lvl.state.fab(i),
                lvl.metrics.fab(i),
                lvl.state.valid_box(i),
                &lvl.gas,
                0.6,
            ));
        }
        assert!(dt.is_finite());
    });
    out.push((compute_dt_spec(), t));

    // The full RK-stage pipeline: RHS accumulation plus the dU axpy. The
    // fused backend runs its fused tile group; the others sweep tiles into
    // the materialized RHS fab then stream the axpy.
    if backend == BackendKind::Fused {
        let prog = KernelIr::rk_stage(true).fuse();
        let stage = FusedProgram {
            tile_ops: prog.tile_ops,
            epilogue: vec![], // state axpy excluded so iterations are identical
        };
        let t = time_best(|| run_fused(lvl, &stage, &mut rhs, &mut du));
        out.push((sum_spec("Stage(fused)", &fused::fused_specs(true)), t));
    } else {
        let work = tiled_work_list(&lvl.state, DEFAULT_TILE);
        let t = time_best(|| {
            for r in rhs.iter_mut() {
                r.fill(0.0);
            }
            for &(i, tile) in &work {
                backend.accumulate_rhs(
                    lvl.state.fab(i),
                    lvl.metrics.fab(i),
                    &mut rhs[i],
                    tile,
                    &lvl.gas,
                    WenoVariant::Symbo,
                    Reconstruction::ComponentWise,
                    None,
                );
            }
            for (d, r) in du.iter_mut().zip(&rhs) {
                d.lincomb(0.9, 1e-3, r);
            }
        });
        out.push((sum_spec("Stage", &stage_kernels()), t));
    }
    out
}

fn main() {
    let lvl = make_level();
    println!(
        "kernel backends on the 512-patch level ({} cells), single thread",
        lvl.cells
    );
    println!("roofline ceilings: peak {:.0} Gflop/s, DRAM {:.0} GB/s\n", HOST_PEAK_FLOPS / 1e9, HOST_DRAM_BW / 1e9);

    let mut rows = Vec::new();
    let mut measured: Vec<(&'static str, Vec<MeasuredPoint>)> = Vec::new();
    let mut weno_x = [0.0f64; 3]; // scalar, lanes, fused cells/s on WENOx
    for (bi, backend) in BackendKind::ALL.into_iter().enumerate() {
        let mut points = Vec::new();
        for (spec, secs) in measure_backend(&lvl, backend) {
            let cells_per_s = lvl.cells as f64 / secs;
            let p: MeasuredPoint = score_measured(&spec, cells_per_s, HOST_PEAK_FLOPS, HOST_DRAM_BW);
            if spec.name.starts_with("WENOx") {
                weno_x[bi] = cells_per_s;
            }
            rows.push(vec![
                backend.label().to_string(),
                spec.name.to_string(),
                format!("{:.2e}", p.cells_per_s),
                format!("{:.2}", p.achieved_flops / 1e9),
                format!("{:.2}", p.ai_dram),
                format!("{:.2}", p.ceiling / 1e9),
                format!("{:.1}%", p.fraction * 100.0),
            ]);
            points.push(p);
        }
        measured.push((backend.label(), points));
    }
    print_table(
        "Ablation: kernel backend × kernel, roofline-scored",
        &["backend", "kernel", "cells/s", "Gflop/s", "AI", "ceiling", "of roof"],
        &rows,
    );

    let speedup = weno_x[1] / weno_x[0];
    println!("\nWENOx lanes/scalar speedup: {speedup:.2}x (acceptance bar: >= 1.5x)");
    println!("WENOx fused/scalar speedup: {:.2}x", weno_x[2] / weno_x[0]);

    // The vendored serde_json is an offline placeholder (empty crate), so
    // the machine-readable record is emitted by hand: plain nested objects,
    // ASCII keys, `{:e}` floats — trivially parseable.
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"backend\",\n");
    json.push_str(&format!("  \"cells\": {},\n", lvl.cells));
    json.push_str("  \"threads\": 1,\n");
    json.push_str(&format!("  \"host_peak_flops\": {HOST_PEAK_FLOPS:e},\n"));
    json.push_str(&format!("  \"host_dram_bw\": {HOST_DRAM_BW:e},\n"));
    json.push_str(&format!(
        "  \"weno_x_lanes_over_scalar\": {speedup:.4},\n"
    ));
    json.push_str("  \"backends\": {\n");
    for (bi, (label, points)) in measured.iter().enumerate() {
        json.push_str(&format!("    \"{label}\": {{\n"));
        for (ki, p) in points.iter().enumerate() {
            json.push_str(&format!(
                "      \"{}\": {{ \"cells_per_s\": {:e}, \"achieved_flops\": {:e}, \"ai_dram\": {:.4}, \"ceiling_flops\": {:e}, \"fraction_of_roofline\": {:.4} }}{}\n",
                p.kernel,
                p.cells_per_s,
                p.achieved_flops,
                p.ai_dram,
                p.ceiling,
                p.fraction,
                if ki + 1 < points.len() { "," } else { "" }
            ));
        }
        json.push_str(&format!(
            "    }}{}\n",
            if bi + 1 < measured.len() { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");
    std::fs::write("BENCH_backend.json", json).expect("write BENCH_backend.json");
    println!("\nwrote BENCH_backend.json");
}
