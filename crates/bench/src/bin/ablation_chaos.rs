//! Ablation: the chaos runtime (DESIGN.md §4g). Three experiments:
//!
//! 1. **Detection tax + repair** — the ramp solver on a 4-rank
//!    `LocalCluster`, chaos transport off vs on (fault-free) vs injured
//!    (seeded drop + corruption + duplication + delay). Reports wall time,
//!    the injection/repair counters, and verifies the injured run is
//!    bitwise-identical to the fault-free one.
//! 2. **Crash recovery** — a scheduled whole-rank crash mid-run; survivors
//!    roll back to the last in-memory checkpoint and finish on 3 ranks.
//!    Reports recoveries, rollback steps, and the measured checkpoint size.
//! 3. **Summit-scale pricing** — `perfmodel::resilience` prices that
//!    checkpoint/rollback cost under a Summit-like per-node MTBF across the
//!    fig5 node counts, comparing a naive fixed interval against the
//!    Young/Daly optimum (results table: `docs/results/chaos.md`).
//!
//! `CROCCO_DIST_RANKS` overrides the cluster size (default 4).

use crocco_bench::report::{fmt_time, print_table};
use crocco_perfmodel::resilience::ResilienceModel;
use crocco_runtime::chaos::{ChaosConfig, CrashPhase, CrashSpec};
use crocco_runtime::LocalCluster;
use crocco_solver::cluster_step::ChaosRunReport;
use crocco_solver::config::{CodeVersion, SolverConfig, SolverConfigBuilder};
use crocco_solver::driver::Simulation;
use crocco_solver::problems::ProblemKind;
use std::time::Instant;

const STEPS: u32 = 8;

fn ramp_builder() -> SolverConfigBuilder {
    SolverConfig::builder()
        .problem(ProblemKind::Ramp)
        .extents(48, 24, 8)
        .version(CodeVersion::V2_0)
        .max_levels(2)
        .blocking_factor(4)
        .max_grid_size(16)
        .regrid_freq(3)
        .cfl(0.5)
}

fn state_bits(sim: &Simulation) -> Vec<u64> {
    let mut bits = Vec::new();
    for l in 0..sim.nlevels() {
        let state = &sim.level(l).state;
        for i in 0..state.nfabs() {
            for c in 0..state.ncomp() {
                for p in state.valid_box(i).cells() {
                    bits.push(state.fab(i).get(p, c).to_bits());
                }
            }
        }
    }
    bits
}

struct ChaosRun {
    wall_s: f64,
    bits: Vec<u64>,
    stats: [u64; 8],
    reports: Vec<ChaosRunReport>,
}

fn run_chaos(nranks: usize, chaos: ChaosConfig) -> ChaosRun {
    let cfg = ramp_builder().nranks(nranks).chaos(chaos.clone()).build();
    let t0 = Instant::now();
    let (outs, runtime) = LocalCluster::run_with_chaos(nranks, chaos, move |ep| {
        let mut sim = Simulation::new(cfg.clone());
        let report = sim.advance_steps_chaos(STEPS, &ep);
        let bits = if report.crashed { None } else { Some(state_bits(&sim)) };
        (report, bits)
    });
    let wall_s = t0.elapsed().as_secs_f64();
    let bits = outs
        .iter()
        .find_map(|(_, b)| b.clone())
        .expect("at least one survivor");
    for (r, (report, b)) in outs.iter().enumerate() {
        if let Some(b) = b {
            assert_eq!(&bits, b, "survivor {r} disagrees bitwise");
        } else {
            assert!(report.crashed);
        }
    }
    ChaosRun {
        wall_s,
        bits,
        stats: runtime.stats.snapshot(),
        reports: outs.into_iter().map(|(r, _)| r).collect(),
    }
}

fn plain_cluster(nranks: usize) -> (f64, Vec<u64>) {
    let cfg = ramp_builder().nranks(nranks).build();
    let t0 = Instant::now();
    let per_rank = LocalCluster::run(nranks, move |ep| {
        let mut sim = Simulation::new(cfg.clone());
        sim.advance_steps_cluster(STEPS, &ep);
        state_bits(&sim)
    });
    (t0.elapsed().as_secs_f64(), per_rank.into_iter().next().unwrap())
}

fn main() {
    let nranks: usize = std::env::var("CROCCO_DIST_RANKS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(4);

    // --- 1. Detection tax + repair -------------------------------------
    let (plain_wall, plain_bits) = plain_cluster(nranks);
    let clean = run_chaos(nranks, ChaosConfig::default());
    let injured = run_chaos(
        nranks,
        ChaosConfig {
            seed: 0xC0FF_EE42,
            drop_p: 0.03,
            duplicate_p: 0.02,
            corrupt_p: 0.02,
            delay_p: 0.03,
            ..ChaosConfig::default()
        },
    );
    assert_eq!(plain_bits, clean.bits, "detection must be bitwise-invisible");
    assert_eq!(plain_bits, injured.bits, "repair must be bitwise-exact");
    let [drops, dups, corrupts, delays, retx, rejects, suppressed, stale] = injured.stats;
    print_table(
        &format!("Chaos transport, ramp {STEPS} steps, {nranks} ranks (bitwise-verified)"),
        &["configuration", "wall", "vs plain"],
        &[
            vec!["plain transport".into(), fmt_time(plain_wall), "1.00x".into()],
            vec![
                "chaos, no faults".into(),
                fmt_time(clean.wall_s),
                format!("{:.2}x", clean.wall_s / plain_wall),
            ],
            vec![
                "chaos, injured".into(),
                fmt_time(injured.wall_s),
                format!("{:.2}x", injured.wall_s / plain_wall),
            ],
        ],
    );
    print_table(
        "Injected vs repaired",
        &["counter", "count"],
        &[
            vec!["dropped".into(), drops.to_string()],
            vec!["duplicated".into(), dups.to_string()],
            vec!["corrupted".into(), corrupts.to_string()],
            vec!["delayed".into(), delays.to_string()],
            vec!["retransmits".into(), retx.to_string()],
            vec!["CRC rejects".into(), rejects.to_string()],
            vec!["dup-suppressed".into(), suppressed.to_string()],
            vec!["stale discarded".into(), stale.to_string()],
        ],
    );

    // --- 2. Crash recovery ---------------------------------------------
    let crash = run_chaos(
        nranks,
        ChaosConfig {
            crashes: vec![CrashSpec {
                rank: nranks - 1,
                step: 5,
                phase: CrashPhase::AfterDt,
            }],
            checkpoint_interval: 4,
            ..ChaosConfig::default()
        },
    );
    let survivor = crash
        .reports
        .iter()
        .find(|r| !r.crashed)
        .expect("survivors exist");
    let ckpt_bytes = survivor.checkpoint_bytes;
    print_table(
        &format!(
            "Crash recovery (rank {} dies at step 5, checkpoint every 4)",
            nranks - 1
        ),
        &["metric", "value"],
        &[
            vec!["wall".into(), fmt_time(crash.wall_s)],
            vec!["vs plain".into(), format!("{:.2}x", crash.wall_s / plain_wall)],
            vec!["recoveries".into(), survivor.recoveries.to_string()],
            vec![
                "rollback steps".into(),
                format!("{:?}", survivor.rollback_steps),
            ],
            vec!["checkpoints".into(), survivor.checkpoints.to_string()],
            vec![
                "checkpoint size".into(),
                format!("{:.1} MiB", ckpt_bytes as f64 / (1024.0 * 1024.0)),
            ],
        ],
    );

    // --- 3. Summit-scale pricing ---------------------------------------
    // Scale the measured per-rank checkpoint to a production patch count
    // (fig5's weak-scaling grind: ~256 MB of state per rank) and price a
    // 24-hour campaign.
    let model = ResilienceModel::summit();
    let bytes_per_rank = 256 << 20;
    let nboxes = 10_000;
    let work = 24.0 * 3600.0;
    let naive_interval = 600.0; // checkpoint every 10 minutes, regardless
    let mut rows = Vec::new();
    for nodes in [40, 100, 200, 400] {
        let i_opt = model.optimal_interval(bytes_per_rank, nodes);
        let t_naive = model.expected_runtime(work, naive_interval, bytes_per_rank, nboxes, nodes);
        let t_opt = model.expected_runtime(work, i_opt, bytes_per_rank, nboxes, nodes);
        rows.push(vec![
            nodes.to_string(),
            fmt_time(model.system_mtbf(nodes)),
            fmt_time(i_opt),
            format!("{:.3}%", (t_naive / work - 1.0) * 100.0),
            format!("{:.3}%", (t_opt / work - 1.0) * 100.0),
        ]);
    }
    print_table(
        &format!(
            "Resilience overhead, 24 h campaign, {} MiB/rank checkpoints (Summit MTBF)",
            bytes_per_rank >> 20
        ),
        &[
            "nodes",
            "system MTBF",
            "Daly interval",
            "overhead @600 s",
            "overhead @Daly",
        ],
        &rows,
    );
}
