//! Per-iteration time simulation for every CRoCCo version at Summit scale.
//!
//! For each level the simulator computes the *exact* communication plans the
//! AMR metadata induces (same plan builders the real solver executes), takes
//! the critical rank's message counts, payload bytes, patch list, and cell
//! load, and prices computation with the POWER9/V100 models and
//! communication with the fat-tree model. Regions mirror the paper's
//! TinyProfiler decomposition (Figs. 6–7): `Advance`, `FillPatch` (with
//! `FillBoundary`/`ParallelCopy` × `_nowait`/`_finish` children),
//! `ComputeDt`, `AverageDown`, `Regrid`.

use crate::dmrscale::ScaledCase;
use crocco_fab::plan::{fill_boundary_plan, parallel_copy_plan, PlanStats};
use crocco_perfmodel::kernelspec::{
    compute_dt_spec, interp_spec, stage_kernels, update_spec,
};
use crocco_perfmodel::{CpuBackend, SummitPlatform};
use crocco_solver::CodeVersion;
use std::collections::BTreeMap;

/// Ghost width of the state MultiFab (the solver's `NGHOST`).
const NGHOST: i64 = 4;
/// Conserved components.
const NCONS: usize = 5;
/// RK stages per iteration.
const STAGES: f64 = 3.0;
/// Steps between regrids (the paper regrids on a fixed cadence; cost is
/// amortized into each iteration).
const REGRID_FREQ: f64 = 10.0;

/// A per-region time breakdown for one iteration (seconds).
#[derive(Clone, Debug, Default)]
pub struct IterationBreakdown {
    /// Region name → seconds. Slash-separated children are *included* in
    /// their parent's total (as TinyProfiler inclusive timers are).
    pub regions: BTreeMap<String, f64>,
}

impl IterationBreakdown {
    fn add(&mut self, region: &str, t: f64) {
        *self.regions.entry(region.to_string()).or_default() += t;
    }

    /// Seconds in `region` (0 when absent).
    pub fn get(&self, region: &str) -> f64 {
        self.regions.get(region).copied().unwrap_or(0.0)
    }

    /// Total walltime per iteration: the sum of top-level regions.
    pub fn total(&self) -> f64 {
        self.regions
            .iter()
            .filter(|(k, _)| !k.contains('/'))
            .map(|(_, v)| v)
            .sum()
    }
}

/// Whether a version runs its kernels on GPUs or CPU cores, and which CPU
/// flavor (§IV-A's Fortran/C++ distinction).
fn backend(version: CodeVersion) -> Option<CpuBackend> {
    if version.gpu() {
        None
    } else if version.reference_kernels() {
        Some(CpuBackend::Fortran)
    } else {
        Some(CpuBackend::Cpp)
    }
}

/// MPI ranks a version uses on `nodes` nodes.
pub fn ranks_for(version: CodeVersion, nodes: u32, platform: &SummitPlatform) -> usize {
    if version.gpu() {
        platform.gpu_ranks(nodes)
    } else {
        platform.cpu_ranks(nodes)
    }
}

/// How communication phases are charged against the per-iteration walltime.
///
/// `Additive` is the fenced data path: every `FillBoundary` fence serializes
/// behind the stage's kernels, so comm and compute add. `Overlapped` prices
/// the distributed stage graphs of `crocco_fab::dist_overlap`: halo traffic
/// is driven concurrently with the *interior* sweeps of the owned patches,
/// so only the exposed remainder — `max(0, comm − interior compute)` — lands
/// on the critical path ([`NetworkModel::exposed_time`]).
///
/// [`NetworkModel::exposed_time`]: crocco_perfmodel::NetworkModel::exposed_time
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommPricing {
    /// Fenced: communication serializes after compute (the paper's measured
    /// AMReX `_finish` semantics).
    Additive,
    /// Task-graph overlap: only exposed communication is charged.
    Overlapped,
}

/// Where fab *data* lives across ranks (docs/DISTRIBUTED.md).
///
/// `Owned` is the production model (and what the paper's AMReX runs do):
/// each rank allocates only the patches its `DistributionMapping` assigns
/// it, so memory per rank is O(owned cells) and no stage re-replicates
/// state. `Replicated` prices the test-oracle model the solver used before
/// the owned-data port: every rank holds every patch and each RK stage ends
/// with an `allgather_fabs` broadcast — O(global) memory per rank and an
/// extra all-to-all of the level's valid cells, three times per iteration.
/// `docs/results/owned_dist.md` tabulates the gap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DataModel {
    /// Every rank holds every patch; stages end in an allgather.
    Replicated,
    /// Owner-only storage; state never re-replicates (`allgather_fabs`
    /// deleted from the step loop).
    Owned,
}

/// Fab bytes resident per rank under `data`: the four solver MultiFabs
/// (state with `NGHOST` ghosts, `dU` ghost-free, 3-component coordinates
/// with `NGHOST + 2`, 27-component metrics with `NGHOST`), summed over the
/// critical rank's owned patches (`Owned`) or every patch (`Replicated`).
pub fn memory_per_rank(case: &ScaledCase, data: DataModel) -> u64 {
    let mut per_rank = vec![0u64; case.nranks];
    for level in &case.levels {
        for (i, &owner) in level.dm.owners().iter().enumerate() {
            let bx = level.ba.get(i);
            let bytes_of = |ncomp: u64, nghost: i64| -> u64 {
                bx.grow(nghost).num_points() * ncomp * std::mem::size_of::<f64>() as u64
            };
            let patch = bytes_of(NCONS as u64, NGHOST)   // state
                + bytes_of(NCONS as u64, 0)              // dU
                + bytes_of(3, NGHOST + 2)                // coordinates
                + bytes_of(27, NGHOST);                  // metrics
            match data {
                DataModel::Owned => per_rank[owner] += patch,
                DataModel::Replicated => {
                    for r in per_rank.iter_mut() {
                        *r += patch;
                    }
                }
            }
        }
    }
    per_rank.into_iter().max().unwrap_or(0)
}

/// Critical-rank load metrics of one level.
struct LevelLoad {
    /// Valid cells on the most loaded rank (reductions, AverageDown).
    crit_cells: u64,
    /// Kernel working-set cell counts (valid + ghost) of the critical rank's
    /// patches: §IV-B computes the stencil scratch "including the exterior
    /// ghost points needed to provide a complex stencil for each interior
    /// cell", so small AMR patches pay a large ghost surcharge.
    crit_patches: Vec<u64>,
    /// Interior cells (more than `NGHOST` from every patch face) on the
    /// critical rank: the sweep work that needs no halo data and can overlap
    /// the FillBoundary exchange under [`CommPricing::Overlapped`].
    crit_interior_cells: u64,
}

fn level_load(level: &crate::dmrscale::LevelMeta, nranks: usize) -> LevelLoad {
    let mut cells = vec![0u64; nranks];
    let mut work = vec![0u64; nranks];
    let mut interior = vec![0u64; nranks];
    let mut patches: Vec<Vec<u64>> = vec![Vec::new(); nranks];
    for (i, &owner) in level.dm.owners().iter().enumerate() {
        let bx = level.ba.get(i);
        let n = bx.num_points();
        let grown = bx.grow(NGHOST).num_points();
        cells[owner] += n;
        work[owner] += grown;
        interior[owner] += bx.grow(-NGHOST).num_points();
        patches[owner].push(grown);
    }
    let crit = (0..nranks).max_by_key(|&r| work[r]).unwrap_or(0);
    LevelLoad {
        crit_cells: cells[crit],
        crit_patches: std::mem::take(&mut patches[crit]),
        crit_interior_cells: interior[crit],
    }
}

/// Kernel (Advance) time for one level, one RK stage, on the critical rank.
fn stage_kernel_time(
    load: &LevelLoad,
    version: CodeVersion,
    platform: &SummitPlatform,
) -> f64 {
    match backend(version) {
        None => {
            // GPU: per-patch kernel launches (one ParallelFor per kernel per
            // patch, §IV-B).
            let mut t = 0.0;
            for &cells in &load.crit_patches {
                for spec in stage_kernels() {
                    t += platform.gpu.kernel_time(&spec, cells);
                }
            }
            t
        }
        Some(be) => {
            let work: u64 = load.crit_patches.iter().sum();
            let mut t = 0.0;
            for spec in stage_kernels() {
                t += platform.cpu.kernel_time(&spec, work, 1, be);
            }
            t
        }
    }
}

/// Simulates one iteration of `version` on `case` over `nodes` nodes under
/// the fenced ([`CommPricing::Additive`]) data path.
pub fn simulate_iteration(
    version: CodeVersion,
    case: &ScaledCase,
    platform: &SummitPlatform,
) -> IterationBreakdown {
    simulate_iteration_with(version, case, platform, CommPricing::Additive)
}

/// Simulates one iteration of `version` on `case` under an explicit
/// communication-pricing model and the production owned-data model
/// ([`DataModel::Owned`] — no per-stage allgather).
pub fn simulate_iteration_with(
    version: CodeVersion,
    case: &ScaledCase,
    platform: &SummitPlatform,
    pricing: CommPricing,
) -> IterationBreakdown {
    simulate_iteration_model(version, case, platform, pricing, DataModel::Owned)
}

/// Simulates one iteration under explicit communication-pricing *and* data
/// models. [`DataModel::Replicated`] adds the `Allgather` region: per RK
/// stage, per level, every rank broadcasts its owned valid cells to all
/// peers — the cost the owned-data port deleted from the step loop.
pub fn simulate_iteration_model(
    version: CodeVersion,
    case: &ScaledCase,
    platform: &SummitPlatform,
    pricing: CommPricing,
    data: DataModel,
) -> IterationBreakdown {
    let net = &platform.network;
    let nranks = case.nranks;
    let mut out = IterationBreakdown::default();
    let needs_coords = version.interpolator().needs_coords();

    // Per-level, reused across the three stages.
    struct LevelComm {
        fb: PlanStats,
        pc: Option<PlanStats>,
        load: LevelLoad,
        ghost_shell_cells: u64,
    }
    let mut lcs: Vec<LevelComm> = Vec::new();
    for (l, level) in case.levels.iter().enumerate() {
        let fb = fill_boundary_plan(&level.ba, &level.dm, &level.domain, NGHOST, NCONS).stats();
        let pc = if l > 0 {
            let coarse = &case.levels[l - 1];
            let dst_coarsened = level.ba.coarsen(crocco_geometry::IntVect::splat(2));
            Some(
                parallel_copy_plan(
                    &coarse.ba,
                    &coarse.dm,
                    &dst_coarsened,
                    &level.dm,
                    &coarse.domain,
                    NGHOST / 2 + 1,
                    NCONS,
                )
                .stats(),
            )
        } else {
            None
        };
        let load = level_load(level, nranks);
        // Ghost shell cells on the critical rank (interpolation volume).
        let shell: u64 = load
            .crit_patches
            .iter()
            .map(|&c| {
                // Approximate shell of a cube with the same volume.
                let edge = (c as f64).cbrt();
                (( (edge + 2.0 * NGHOST as f64).powi(3) - edge.powi(3)) as u64).max(1)
            })
            .sum();
        lcs.push(LevelComm {
            fb,
            pc,
            load,
            ghost_shell_cells: shell,
        });
    }

    for (l, lc) in lcs.iter().enumerate() {
        // --- Advance: kernels, 3 stages.
        let t_stage = stage_kernel_time(&lc.load, version, platform);
        let t_adv = STAGES * t_stage;
        out.add("Advance", t_adv);

        // --- FillPatch: FillBoundary every stage. The posting half
        // (`_nowait`) is always on the critical path; under overlapped
        // pricing the payload half (`_finish`) hides behind the interior
        // sweeps — the fraction of stage kernel work on cells that need no
        // halo data.
        let fb_nowait = STAGES * net.alpha * lc.fb.max_rank_msgs as f64;
        let fb_stage = lc.fb.max_rank_recv_bytes as f64 / net.bandwidth;
        let fb_finish = match pricing {
            CommPricing::Additive => STAGES * fb_stage,
            CommPricing::Overlapped => {
                let work: u64 = lc.load.crit_patches.iter().sum();
                let frac = if work > 0 {
                    lc.load.crit_interior_cells as f64 / work as f64
                } else {
                    0.0
                };
                STAGES * net.exposed_time(fb_stage, t_stage * frac)
            }
        };
        out.add("FillPatch/FillBoundary_nowait", fb_nowait);
        out.add("FillPatch/FillBoundary_finish", fb_finish);
        out.add("FillPatch", fb_nowait + fb_finish);

        // --- Allgather (replicated data model only): after every stage the
        // level's state re-replicates — each rank pushes its owned valid
        // cells to all peers and receives everyone else's. Send volume grows
        // linearly with rank count, which is what sinks weak scaling.
        if data == DataModel::Replicated && nranks > 1 {
            let total_cells: u64 = (0..case.levels[l].ba.len())
                .map(|i| case.levels[l].ba.get(i).num_points())
                .sum();
            let cell_bytes = (NCONS * std::mem::size_of::<f64>()) as f64;
            let send = lc.load.crit_cells as f64 * (nranks - 1) as f64 * cell_bytes;
            let recv = (total_cells - lc.load.crit_cells) as f64 * cell_bytes;
            let t_ag = STAGES
                * (net.alpha * (nranks - 1) as f64 + send.max(recv) / net.bandwidth);
            out.add("Allgather", t_ag);
        }

        // --- FillPatch: two-level gathers.
        if let Some(pc) = &lc.pc {
            // State gather: point-to-point payload (the AMReX
            // FillPatchTwoLevels path — no global communication, per §VI-B's
            // contrast with the custom interpolator) plus the schedule
            // construction against the coarse BoxArray.
            let src_boxes = case.levels[l - 1].ba.len() as u64;
            let pc_nowait = STAGES * net.alpha * pc.max_rank_msgs as f64;
            let pc_finish = STAGES
                * (pc.max_rank_recv_bytes as f64 / net.bandwidth
                    + net.parallel_copy_schedule_time(src_boxes, nranks));
            let mut t_pc_nowait = pc_nowait;
            let mut t_pc_finish = pc_finish;
            if needs_coords {
                // Coordinate gather (3 of 5 components' worth of bytes) is a
                // *global* ParallelCopy: congested bandwidth plus the
                // per-box metadata handshake against the source BoxArray.
                let coord_bytes = pc.max_rank_recv_bytes as f64 * 3.0 / 5.0;
                let t_coord = net.parallel_copy_time(
                    pc.max_rank_msgs as f64,
                    coord_bytes,
                    src_boxes,
                    nranks,
                );
                t_pc_nowait += STAGES * net.alpha * pc.max_rank_msgs as f64;
                t_pc_finish += STAGES * (t_coord - net.alpha * pc.max_rank_msgs as f64);
            }
            out.add("FillPatch/ParallelCopy_nowait", t_pc_nowait);
            out.add("FillPatch/ParallelCopy_finish", t_pc_finish);
            out.add("FillPatch", t_pc_nowait + t_pc_finish);

            // Interpolation compute on the ghost shells.
            let t_interp = STAGES
                * match backend(version) {
                    None => platform.gpu.kernel_time(&interp_spec(), lc.ghost_shell_cells),
                    Some(be) => {
                        platform
                            .cpu
                            .kernel_time(&interp_spec(), lc.ghost_shell_cells, 1, be)
                    }
                };
            out.add("FillPatch", t_interp);
        }

        // --- AverageDown: once per iteration, fine→coarse restriction.
        if l > 0 {
            let t_avg = match backend(version) {
                None => platform.gpu.kernel_time(&update_spec(), lc.load.crit_cells / 8),
                Some(be) => platform
                    .cpu
                    .kernel_time(&update_spec(), lc.load.crit_cells / 8, 1, be),
            } + lc
                .pc
                .map(|p| p.max_rank_recv_bytes as f64 / 8.0 / net.bandwidth)
                .unwrap_or(0.0);
            out.add("AverageDown", t_avg);
        }
    }

    // --- ComputeDt: one pass over all levels plus the ReduceRealMin.
    let mut t_dt = 0.0;
    for lc in &lcs {
        t_dt += match backend(version) {
            None => platform.gpu.kernel_time(&compute_dt_spec(), lc.load.crit_cells),
            Some(be) => platform
                .cpu
                .kernel_time(&compute_dt_spec(), lc.load.crit_cells, 1, be),
        };
    }
    t_dt += net.allreduce_time(nranks);
    out.add("ComputeDt", t_dt);

    // --- Regrid: amortized over the regrid cadence. Tagging + clustering
    // metadata is O(total boxes) on every rank; data remap re-runs the
    // two-level gathers once.
    if case.levels.len() > 1 {
        let total_boxes = case.total_boxes() as f64;
        let mut t_regrid = net.meta_per_box * total_boxes * 4.0;
        for lc in &lcs {
            if let Some(pc) = &lc.pc {
                t_regrid += net.parallel_copy_time(
                    pc.max_rank_msgs as f64,
                    pc.max_rank_recv_bytes as f64,
                    total_boxes as u64,
                    nranks,
                );
            }
        }
        out.add("Regrid", t_regrid / REGRID_FREQ);
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dmrscale::{amr_case, uniform_case};
    use crocco_geometry::IntVect;

    fn platform() -> SummitPlatform {
        SummitPlatform::new()
    }

    #[test]
    fn gpu_is_much_faster_than_cpu_on_the_same_amr_case() {
        let p = platform();
        let nodes = 16;
        let equiv = IntVect::new(1280, 320, 640);
        let cpu_case = amr_case(equiv, ranks_for(CodeVersion::V1_2, nodes, &p));
        let gpu_case = amr_case(equiv, ranks_for(CodeVersion::V2_0, nodes, &p));
        let t_cpu = simulate_iteration(CodeVersion::V1_2, &cpu_case, &p).total();
        let t_gpu = simulate_iteration(CodeVersion::V2_0, &gpu_case, &p).total();
        let speedup = t_cpu / t_gpu;
        assert!(
            speedup > 5.0,
            "GPU speedup {speedup:.1} implausibly small"
        );
    }

    #[test]
    fn amr_beats_uniform_on_cpu_at_low_node_counts() {
        let p = platform();
        let nodes = 16;
        let ranks = ranks_for(CodeVersion::V1_1, nodes, &p);
        let equiv = IntVect::new(1280, 320, 640);
        let t_uniform =
            simulate_iteration(CodeVersion::V1_1, &uniform_case(equiv, ranks), &p).total();
        let t_amr = simulate_iteration(CodeVersion::V1_2, &amr_case(equiv, ranks), &p).total();
        assert!(
            t_uniform / t_amr > 2.0,
            "AMR speedup {} too small",
            t_uniform / t_amr
        );
    }

    #[test]
    fn trilinear_interp_version_is_faster_at_scale() {
        // CRoCCo 2.1 vs 2.0 (Fig. 5 right): dropping the global coordinate
        // ParallelCopy must help, and help more at larger node counts.
        let p = platform();
        let speedup_at = |nodes: u32| {
            let ranks = ranks_for(CodeVersion::V2_0, nodes, &p);
            let equiv = IntVect::new(640 * (nodes as i64).max(1), 320, 320);
            let case = amr_case(equiv, ranks);
            let t20 = simulate_iteration(CodeVersion::V2_0, &case, &p).total();
            let t21 = simulate_iteration(CodeVersion::V2_1, &case, &p).total();
            t20 / t21
        };
        let s_small = speedup_at(4);
        let s_large = speedup_at(64);
        assert!(s_small >= 1.0);
        assert!(
            s_large > s_small,
            "2.1's advantage must grow with scale: {s_small:.3} -> {s_large:.3}"
        );
    }

    #[test]
    fn overlapped_pricing_only_shrinks_exposed_fill_boundary() {
        let p = platform();
        let nodes = 64;
        let ranks = ranks_for(CodeVersion::V2_0, nodes, &p);
        let case = amr_case(IntVect::new(640 * nodes as i64, 320, 320), ranks);
        let add = simulate_iteration_with(CodeVersion::V2_0, &case, &p, CommPricing::Additive);
        let ovl = simulate_iteration_with(CodeVersion::V2_0, &case, &p, CommPricing::Overlapped);
        // Only FillBoundary_finish may change, and only downward.
        assert!(ovl.get("FillPatch/FillBoundary_finish") < add.get("FillPatch/FillBoundary_finish"));
        assert!(ovl.get("FillPatch/FillBoundary_finish") >= 0.0);
        for region in ["Advance", "ComputeDt", "AverageDown", "Regrid",
            "FillPatch/FillBoundary_nowait", "FillPatch/ParallelCopy_finish"] {
            assert_eq!(add.get(region), ovl.get(region), "{region} must be unchanged");
        }
        assert!(ovl.total() < add.total());
    }

    #[test]
    fn owned_data_model_is_the_default_and_beats_replicated() {
        let p = platform();
        let ranks = ranks_for(CodeVersion::V2_0, 64, &p);
        let case = amr_case(IntVect::new(640 * 64, 320, 320), ranks);
        let owned = simulate_iteration_model(
            CodeVersion::V2_0, &case, &p, CommPricing::Additive, DataModel::Owned,
        );
        let repl = simulate_iteration_model(
            CodeVersion::V2_0, &case, &p, CommPricing::Additive, DataModel::Replicated,
        );
        let dflt = simulate_iteration_with(CodeVersion::V2_0, &case, &p, CommPricing::Additive);
        // Owned is the default model, adds no Allgather region, and every
        // other region is identical between the two models.
        assert_eq!(owned.regions, dflt.regions);
        assert_eq!(owned.get("Allgather"), 0.0);
        assert!(repl.get("Allgather") > 0.0);
        assert!(repl.total() > owned.total());
        for region in ["Advance", "FillPatch", "ComputeDt", "AverageDown", "Regrid"] {
            assert_eq!(owned.get(region), repl.get(region), "{region} must be unchanged");
        }
        // The tentpole memory claim at simulated scale: O(owned), not
        // O(global).
        let m_owned = memory_per_rank(&case, DataModel::Owned);
        let m_repl = memory_per_rank(&case, DataModel::Replicated);
        assert!(m_owned * 8 < m_repl, "owned {m_owned} vs replicated {m_repl}");
    }

    #[test]
    fn additive_pricing_matches_legacy_entry_point() {
        let p = platform();
        let case = amr_case(IntVect::new(640, 160, 320), 24);
        let a = simulate_iteration(CodeVersion::V2_1, &case, &p);
        let b = simulate_iteration_with(CodeVersion::V2_1, &case, &p, CommPricing::Additive);
        assert_eq!(a.regions, b.regions);
    }

    #[test]
    fn breakdown_has_the_papers_regions() {
        let p = platform();
        let case = amr_case(IntVect::new(640, 160, 320), 24);
        let b = simulate_iteration(CodeVersion::V2_1, &case, &p);
        for region in [
            "Advance",
            "FillPatch",
            "ComputeDt",
            "AverageDown",
            "Regrid",
            "FillPatch/FillBoundary_nowait",
            "FillPatch/ParallelCopy_finish",
        ] {
            assert!(b.get(region) > 0.0, "missing region {region}");
        }
        assert!(b.total() > 0.0);
        // Children must not exceed their parent.
        let fp_children: f64 = b
            .regions
            .iter()
            .filter(|(k, _)| k.starts_with("FillPatch/"))
            .map(|(_, v)| v)
            .sum();
        assert!(fp_children <= b.get("FillPatch") * 1.0 + 1e-12);
    }
}

/// Replays a level's FillBoundary through the event-driven per-rank-clock
/// simulator ([`crocco_runtime::SimComm`]) instead of the closed-form α–β
/// expression — a cross-check between the two runtime substrates.
pub fn replay_fill_boundary(
    level: &crate::dmrscale::LevelMeta,
    nranks: usize,
    nodes: u32,
    platform: &SummitPlatform,
) -> f64 {
    use crocco_runtime::{CommOp, SimComm, Topology};
    let plan = fill_boundary_plan(&level.ba, &level.dm, &level.domain, NGHOST, NCONS);
    let ranks_per_node = (nranks as u32).div_ceil(nodes) as usize;
    let mut comm = SimComm::new(
        Topology::new(nodes as usize, ranks_per_node),
        platform.network,
    );
    let ops: Vec<CommOp> = plan
        .chunks
        .iter()
        .filter(|c| !c.is_local())
        .map(|c| CommOp {
            src: c.src_rank,
            dst: c.dst_rank,
            bytes: c.bytes(NCONS),
        })
        .collect();
    comm.exchange(&ops)
}

#[cfg(test)]
mod replay_tests {
    use super::*;
    use crate::dmrscale::amr_case;
    use crocco_geometry::IntVect;

    #[test]
    fn event_driven_replay_brackets_the_closed_form() {
        // The SimComm replay resolves per-node NVLink locality and message
        // batching that the α–β formula lumps together; both must land
        // within a small factor of each other and above the bandwidth
        // lower bound.
        let platform = SummitPlatform::new();
        let nodes = 16u32;
        let nranks = platform.gpu_ranks(nodes);
        let case = amr_case(IntVect::new(1280, 320, 640), nranks);
        for level in &case.levels {
            let stats =
                fill_boundary_plan(&level.ba, &level.dm, &level.domain, NGHOST, NCONS).stats();
            if stats.remote_bytes == 0 {
                continue;
            }
            let formula = platform.network.fill_boundary_time(
                stats.max_rank_msgs as f64,
                stats.max_rank_recv_bytes as f64,
            );
            let replay = replay_fill_boundary(level, nranks, nodes, &platform);
            let lower_bound =
                stats.max_rank_recv_bytes as f64 / platform.network.bandwidth / 4.0;
            assert!(replay > lower_bound, "replay {replay} below bound");
            let ratio = replay / formula;
            assert!(
                (0.2..5.0).contains(&ratio),
                "substrates disagree: replay {replay}, formula {formula}"
            );
        }
    }
}
