//! IBM POWER9 CPU kernel-time model.

use crate::kernelspec::KernelSpec;
use serde::{Deserialize, Serialize};

/// Which CPU implementation of the numerics is running.
///
/// §IV-A of the paper measures a consistent ~1.2× slowdown of the translated
/// C++ kernels relative to the original Fortran on the POWER9; both are
/// modeled so Fig. 3 can show the pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CpuBackend {
    /// The original, heavily compiler-optimized Fortran kernels.
    Fortran,
    /// The C++ translations used by CRoCCo ≥ 1.1.
    Cpp,
}

/// Analytic model of CRoCCo kernel execution on POWER9 cores.
///
/// The paper observes that "computation is what binds the CPU performance"
/// (§VI-B), so the model is compute-rate based: the CPU-resident kernels keep
/// their stencil scratch in cache (unlike the GPU port, which stages scratch
/// in DRAM), and per-cell time is `flops_per_cell / rate`.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CpuModel {
    /// Sustained double-precision flop rate of one core running the C++
    /// kernels (flop/s). Calibrated so one 22-core socket is ~15.8× slower
    /// than the V100 on the largest WENOx size of Fig. 3.
    pub flops_per_core_cpp: f64,
    /// Fortran-over-C++ speed ratio (§IV-A reports ≈1.2).
    pub fortran_speedup: f64,
    /// Cores per socket (Summit POWER9: 22).
    pub cores_per_socket: u32,
}

impl Default for CpuModel {
    fn default() -> Self {
        CpuModel::power9()
    }
}

impl CpuModel {
    /// Summit POWER9 calibration.
    pub fn power9() -> Self {
        CpuModel {
            flops_per_core_cpp: 0.82e9,
            fortran_speedup: 1.2,
            cores_per_socket: 22,
        }
    }

    /// Per-core sustained rate for a backend (flop/s).
    pub fn core_rate(&self, backend: CpuBackend) -> f64 {
        match backend {
            CpuBackend::Fortran => self.flops_per_core_cpp * self.fortran_speedup,
            CpuBackend::Cpp => self.flops_per_core_cpp,
        }
    }

    /// Time (s) for `ncores` cores to run `spec` over `ncells` cells,
    /// assuming the embarrassingly parallel per-patch decomposition CRoCCo
    /// uses (one MPI rank per core, patches load balanced).
    pub fn kernel_time(&self, spec: &KernelSpec, ncells: u64, ncores: u32, backend: CpuBackend) -> f64 {
        ncells as f64 * spec.flops_per_cell / (self.core_rate(backend) * ncores as f64)
    }

    /// Time on one socket (the Fig. 3 configuration).
    pub fn socket_time(&self, spec: &KernelSpec, ncells: u64, backend: CpuBackend) -> f64 {
        self.kernel_time(spec, ncells, self.cores_per_socket, backend)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::GpuModel;
    use crate::kernelspec::{viscous_spec, weno_spec};

    #[test]
    fn cpp_is_1_2x_slower_than_fortran() {
        let c = CpuModel::power9();
        let spec = weno_spec(0);
        let tf = c.socket_time(&spec, 1_000_000, CpuBackend::Fortran);
        let tc = c.socket_time(&spec, 1_000_000, CpuBackend::Cpp);
        assert!(((tc / tf) - 1.2).abs() < 1e-12);
    }

    #[test]
    fn gpu_speedup_matches_fig3_envelope() {
        // Fig. 3: GPU over C++ CPU speedup grows to ≈15.8× for WENOx at the
        // largest size.
        let c = CpuModel::power9();
        let g = GpuModel::v100();
        let spec = weno_spec(0);
        let n = 20_000_000;
        let speedup = c.socket_time(&spec, n, CpuBackend::Cpp) / g.kernel_time(&spec, n);
        assert!(
            (12.0..20.0).contains(&speedup),
            "WENOx large-size GPU speedup {speedup:.1}, expected ≈15.8"
        );
    }

    #[test]
    fn time_scales_linearly_with_cells_and_inverse_cores() {
        let c = CpuModel::power9();
        let spec = viscous_spec();
        let t1 = c.kernel_time(&spec, 1_000_000, 22, CpuBackend::Cpp);
        let t2 = c.kernel_time(&spec, 2_000_000, 22, CpuBackend::Cpp);
        let t3 = c.kernel_time(&spec, 1_000_000, 44, CpuBackend::Cpp);
        assert!((t2 / t1 - 2.0).abs() < 1e-12);
        assert!((t3 / t1 - 0.5).abs() < 1e-12);
    }
}
