//! Checkpoint/restart overhead model for the chaos runtime (DESIGN.md §4g).
//!
//! The recovery loop in `Simulation::advance_steps_chaos` takes periodic
//! in-memory checkpoints and rolls survivors back to the last one when a
//! rank dies. At test scale those costs are microseconds; this module prices
//! them at Summit scale — burst-buffer checkpoint bandwidth, rollback and
//! re-partitioning latency, and a node MTBF — so the fig5-style sweeps can
//! report the resilience overhead the paper's platform would actually pay.
//!
//! The interval optimisation is Young's/Daly's first-order result: with
//! checkpoint cost `C` and system MTBF `M`, the optimal interval is
//! `sqrt(2·C·M)` and the expected wall-clock inflation of a run of useful
//! work `T_w` is `T_w · (1 + C/I) / (1 − (R + I/2)/M)` — checkpointing tax
//! plus expected rework after each failure.

/// Calibrated resilience cost model.
#[derive(Clone, Copy, Debug)]
pub struct ResilienceModel {
    /// Per-rank checkpoint drain bandwidth, bytes/s (burst buffer).
    pub checkpoint_bw: f64,
    /// Fixed per-checkpoint latency, seconds (serialization + quiesce
    /// barrier).
    pub checkpoint_alpha: f64,
    /// Fixed rollback latency, seconds (group re-formation barrier, stale
    /// traffic purge, state restore).
    pub rollback_alpha: f64,
    /// Re-partitioning cost per box when the load balancer re-maps the
    /// hierarchy over the survivors, seconds.
    pub rebalance_per_box: f64,
    /// Mean time between failures of one node, hours.
    pub node_mtbf_hours: f64,
}

impl ResilienceModel {
    /// Summit-like calibration: ~2 GB/s per-rank burst-buffer drain, ~1 ms
    /// quiesce, ~10 ms rollback, ~2 µs per re-mapped box, and the commonly
    /// cited ~25-year per-node MTBF for large Power9/V100 systems.
    pub fn summit() -> Self {
        ResilienceModel {
            checkpoint_bw: 2.0e9,
            checkpoint_alpha: 1.0e-3,
            rollback_alpha: 10.0e-3,
            rebalance_per_box: 2.0e-6,
            node_mtbf_hours: 25.0 * 365.0 * 24.0,
        }
    }

    /// Time to take one checkpoint of `bytes_per_rank` bytes (ranks drain
    /// concurrently, so the per-rank cost is the wall cost).
    pub fn checkpoint_time(&self, bytes_per_rank: usize) -> f64 {
        self.checkpoint_alpha + bytes_per_rank as f64 / self.checkpoint_bw
    }

    /// Time for one rollback: restore `bytes_per_rank` from the in-memory
    /// snapshot and re-partition `nboxes` over the survivors.
    pub fn rollback_time(&self, bytes_per_rank: usize, nboxes: u64) -> f64 {
        self.rollback_alpha
            + bytes_per_rank as f64 / self.checkpoint_bw
            + nboxes as f64 * self.rebalance_per_box
    }

    /// System MTBF in seconds for `nnodes` nodes (exponential failures
    /// compose harmonically: `M_sys = M_node / n`).
    pub fn system_mtbf(&self, nnodes: usize) -> f64 {
        assert!(nnodes >= 1);
        self.node_mtbf_hours * 3600.0 / nnodes as f64
    }

    /// Young's optimal checkpoint interval `sqrt(2·C·M)` in seconds, for
    /// checkpoints of `bytes_per_rank` on `nnodes` nodes.
    pub fn optimal_interval(&self, bytes_per_rank: usize, nnodes: usize) -> f64 {
        (2.0 * self.checkpoint_time(bytes_per_rank) * self.system_mtbf(nnodes)).sqrt()
    }

    /// Daly's first-order expected wall-clock for `work` seconds of useful
    /// computation, checkpointing every `interval` seconds on `nnodes`
    /// nodes: checkpoint tax `1 + C/I`, divided by the availability factor
    /// `1 − (R + I/2)/M` (each failure costs one rollback plus half an
    /// interval of rework on average).
    pub fn expected_runtime(
        &self,
        work: f64,
        interval: f64,
        bytes_per_rank: usize,
        nboxes: u64,
        nnodes: usize,
    ) -> f64 {
        assert!(interval > 0.0 && work >= 0.0);
        let c = self.checkpoint_time(bytes_per_rank);
        let r = self.rollback_time(bytes_per_rank, nboxes);
        let m = self.system_mtbf(nnodes);
        let loss = (r + interval / 2.0) / m;
        assert!(
            loss < 1.0,
            "failure rate exceeds forward progress (interval {interval}s, MTBF {m}s)"
        );
        work * (1.0 + c / interval) / (1.0 - loss)
    }

    /// Young's optimal interval from a *measured* per-checkpoint cost
    /// (seconds) rather than the modeled drain time — the durable-spill
    /// ablation (`docs/results/durable_ckpt.md`) measures the actual
    /// gather + seal + fsync'd double-buffer write and feeds it in here.
    pub fn optimal_interval_measured(&self, checkpoint_cost: f64, nnodes: usize) -> f64 {
        assert!(checkpoint_cost >= 0.0);
        (2.0 * checkpoint_cost * self.system_mtbf(nnodes)).sqrt()
    }

    /// Daly's expected wall-clock with measured checkpoint and rollback
    /// costs (seconds) — the counterpart of [`Self::expected_runtime`] for
    /// calibrating against real spill timings instead of the bandwidth
    /// model.
    pub fn expected_runtime_measured(
        &self,
        work: f64,
        interval: f64,
        checkpoint_cost: f64,
        rollback_cost: f64,
        nnodes: usize,
    ) -> f64 {
        assert!(interval > 0.0 && work >= 0.0);
        let m = self.system_mtbf(nnodes);
        let loss = (rollback_cost + interval / 2.0) / m;
        assert!(
            loss < 1.0,
            "failure rate exceeds forward progress (interval {interval}s, MTBF {m}s)"
        );
        work * (1.0 + checkpoint_cost / interval) / (1.0 - loss)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_and_rollback_scale_with_bytes() {
        let m = ResilienceModel::summit();
        let small = m.checkpoint_time(1 << 20);
        let large = m.checkpoint_time(1 << 30);
        assert!(large > small);
        assert!((large - small - (f64::from((1 << 30) - (1 << 20))) / m.checkpoint_bw).abs() < 1e-12);
        assert!(m.rollback_time(1 << 20, 1000) > m.checkpoint_time(1 << 20));
    }

    #[test]
    fn system_mtbf_shrinks_harmonically() {
        let m = ResilienceModel::summit();
        let one = m.system_mtbf(1);
        assert!((m.system_mtbf(100) - one / 100.0).abs() < 1e-9);
        assert!((m.system_mtbf(4600) - one / 4600.0).abs() < 1e-9);
    }

    #[test]
    fn optimal_interval_matches_young_formula_and_beats_neighbors() {
        let m = ResilienceModel::summit();
        let bytes = 256 << 20;
        let nodes = 400;
        let i_opt = m.optimal_interval(bytes, nodes);
        let c = m.checkpoint_time(bytes);
        assert!((i_opt - (2.0 * c * m.system_mtbf(nodes)).sqrt()).abs() < 1e-9);
        // The Daly expected runtime is (locally) minimal at the Young point.
        let work = 24.0 * 3600.0;
        let at = |i: f64| m.expected_runtime(work, i, bytes, 10_000, nodes);
        assert!(at(i_opt) <= at(i_opt * 0.5));
        assert!(at(i_opt) <= at(i_opt * 2.0));
        // And the overhead is a tax: always ≥ the raw work.
        assert!(at(i_opt) > work);
    }

    #[test]
    fn measured_variants_agree_with_modeled_at_equal_costs() {
        let m = ResilienceModel::summit();
        let bytes = 64 << 20;
        let nodes = 128;
        let c = m.checkpoint_time(bytes);
        let r = m.rollback_time(bytes, 5_000);
        assert!(
            (m.optimal_interval_measured(c, nodes) - m.optimal_interval(bytes, nodes)).abs()
                < 1e-9
        );
        let work = 3600.0;
        let i = m.optimal_interval(bytes, nodes);
        assert!(
            (m.expected_runtime_measured(work, i, c, r, nodes)
                - m.expected_runtime(work, i, bytes, 5_000, nodes))
            .abs()
                < 1e-9
        );
        // A costlier measured checkpoint stretches the optimal interval.
        assert!(m.optimal_interval_measured(4.0 * c, nodes) > m.optimal_interval_measured(c, nodes));
    }

    #[test]
    #[should_panic]
    fn saturated_failure_rate_is_rejected() {
        let mut m = ResilienceModel::summit();
        m.node_mtbf_hours = 1e-6;
        m.expected_runtime(3600.0, 60.0, 1 << 20, 100, 4600);
    }
}
