//! TinyProfiler-style region profiler.
//!
//! The paper collects Figs. 6–7 with the AMReX TinyProfiler, "which provides
//! timer macros to track time spent in code regions". This profiler plays the
//! same role for the reproduction. It accumulates *simulated* seconds (from
//! the platform models) or measured seconds (from wall-clock scopes) into
//! named, slash-separated regions, e.g. `FillPatch/ParallelCopy_finish`.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::time::Instant;

/// A thread-safe accumulating region profiler.
#[derive(Debug, Default)]
pub struct Profiler {
    totals: Mutex<HashMap<String, f64>>,
}

impl Profiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Profiler::default()
    }

    /// Adds `seconds` of (simulated or measured) time to `region`.
    pub fn add(&self, region: &str, seconds: f64) {
        let mut t = self.totals.lock();
        *t.entry(region.to_string()).or_default() += seconds;
    }

    /// Total accumulated seconds in `region` (0 if never recorded).
    pub fn total(&self, region: &str) -> f64 {
        self.totals.lock().get(region).copied().unwrap_or(0.0)
    }

    /// Sum over all regions whose name starts with `prefix` (inclusive of the
    /// exact region). Lets callers roll `FillPatch/...` children into
    /// `FillPatch`.
    pub fn total_with_prefix(&self, prefix: &str) -> f64 {
        self.totals
            .lock()
            .iter()
            .filter(|(k, _)| k.as_str() == prefix || k.starts_with(&format!("{prefix}/")))
            .map(|(_, v)| v)
            .sum()
    }

    /// All regions and totals, sorted by descending time — the TinyProfiler
    /// report order.
    pub fn report(&self) -> Vec<(String, f64)> {
        let mut v: Vec<(String, f64)> = self
            .totals
            .lock()
            .iter()
            .map(|(k, t)| (k.clone(), *t))
            .collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        v
    }

    /// Clears all accumulated time.
    pub fn reset(&self) {
        self.totals.lock().clear();
    }

    /// Runs `f`, measuring wall-clock time into `region`, and returns its
    /// result. (Simulated-time callers use [`Profiler::add`] directly.)
    pub fn scope<R>(&self, region: &str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.add(region, start.elapsed().as_secs_f64());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulation_and_lookup() {
        let p = Profiler::new();
        p.add("FillPatch", 1.0);
        p.add("FillPatch", 0.5);
        p.add("Advance", 2.0);
        assert_eq!(p.total("FillPatch"), 1.5);
        assert_eq!(p.total("Advance"), 2.0);
        assert_eq!(p.total("Regrid"), 0.0);
    }

    #[test]
    fn prefix_rollup() {
        let p = Profiler::new();
        p.add("FillPatch/ParallelCopy_finish", 1.0);
        p.add("FillPatch/FillBoundary_nowait", 0.25);
        p.add("FillPatch", 0.25);
        p.add("FillPatchOther", 9.0); // must NOT be rolled up
        assert_eq!(p.total_with_prefix("FillPatch"), 1.5);
    }

    #[test]
    fn report_sorted_descending() {
        let p = Profiler::new();
        p.add("a", 1.0);
        p.add("b", 3.0);
        p.add("c", 2.0);
        let r = p.report();
        assert_eq!(r[0].0, "b");
        assert_eq!(r[1].0, "c");
        assert_eq!(r[2].0, "a");
    }

    #[test]
    fn scope_measures_wall_time() {
        let p = Profiler::new();
        let out = p.scope("work", || {
            std::thread::sleep(std::time::Duration::from_millis(5));
            42
        });
        assert_eq!(out, 42);
        assert!(p.total("work") >= 0.004);
    }

    #[test]
    fn reset_clears() {
        let p = Profiler::new();
        p.add("x", 1.0);
        p.reset();
        assert_eq!(p.total("x"), 0.0);
        assert!(p.report().is_empty());
    }
}

impl Profiler {
    /// Renders a TinyProfiler-style report: regions sorted by time with
    /// percentages of the top-level total; slash-separated children are
    /// indented under their parents.
    pub fn render_report(&self) -> String {
        let report = self.report();
        let total: f64 = report
            .iter()
            .filter(|(k, _)| !k.contains('/'))
            .map(|(_, t)| t)
            .sum();
        let mut out = String::new();
        out.push_str(&format!(
            "{:<32} {:>12} {:>7}\n",
            "region", "seconds", "%"
        ));
        for (name, t) in &report {
            let indent = if name.contains('/') { "  " } else { "" };
            out.push_str(&format!(
                "{indent}{:<30} {:>12.6} {:>6.1}%\n",
                name,
                t,
                100.0 * t / total.max(1e-300)
            ));
        }
        out
    }
}

#[cfg(test)]
mod render_tests {
    use super::*;

    #[test]
    fn report_renders_percentages_of_top_level_total() {
        let p = Profiler::new();
        p.add("Advance", 3.0);
        p.add("FillPatch", 1.0);
        p.add("FillPatch/ParallelCopy_finish", 0.5);
        let s = p.render_report();
        assert!(s.contains("Advance"));
        assert!(s.contains("75.0%"), "{s}");
        assert!(s.contains("25.0%"));
        // Child shown indented, measured against the 4.0 s total.
        assert!(s.contains("12.5%"));
    }
}
