//! Calibrated performance models of the Summit platform, plus the
//! TinyProfiler-style region profiler.
//!
//! The paper evaluates CRoCCo on Summit: nodes with two 22-core IBM POWER9
//! CPUs and six NVIDIA V100 GPUs on a fat-tree interconnect. This repository
//! cannot run on Summit, so — per the substitution rule documented in
//! `DESIGN.md` §3 — the scaling and kernel studies run the *real* distributed
//! metadata path (exact per-rank message lists and byte counts) and price it
//! with the analytic models in this crate:
//!
//! * [`cpu`] — per-point kernel rates for the POWER9, with distinct Fortran
//!   and C++ rates reproducing the 1.2× translation gap of §IV-A,
//! * [`gpu`] — a V100 roofline/occupancy model (7.8 DP Tflop/s peak, HBM/L2/L1
//!   bandwidth ceilings, register-pressure-limited occupancy) reproducing
//!   Fig. 3's GPU curves and Fig. 4's roofline,
//! * [`kernelspec`] — analytic per-cell flop/byte counts for every CRoCCo
//!   kernel (validated against hand counts in unit tests),
//! * [`network`] — an α–β fat-tree model with collective and metadata terms,
//! * [`roofline`] — the hierarchical roofline evaluation of Yang et al. used
//!   in §VI-A,
//! * [`profiler`] — region timers in *simulated* seconds, mirroring the
//!   AMReX TinyProfiler output of Figs. 6–7.
//!
//! Every calibration constant lives in [`summit`] with a comment tying it to
//! the paper number it reproduces.

// Enforced by `cargo xtask lint`: unsafe code is confined to the allowlisted
// fab modules (multifab, view, overlap) — none of it lives here.
#![forbid(unsafe_code)]

pub mod cpu;
pub mod gpu;
pub mod kernelspec;
pub mod network;
pub mod profiler;
pub mod resilience;
pub mod roofline;
pub mod subcycle;
pub mod summit;

pub use cpu::{CpuBackend, CpuModel};
pub use gpu::GpuModel;
pub use kernelspec::KernelSpec;
pub use network::NetworkModel;
pub use profiler::Profiler;
pub use resilience::ResilienceModel;
pub use roofline::{score_measured, MeasuredPoint, RooflineLevel, RooflinePoint};
pub use subcycle::SubcycleModel;
pub use summit::SummitPlatform;
