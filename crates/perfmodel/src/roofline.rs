//! Hierarchical roofline evaluation (Yang, Kurth & Williams), as used for
//! Fig. 4 of the paper.

use crate::gpu::GpuModel;
use crate::kernelspec::KernelSpec;
use serde::{Deserialize, Serialize};

/// One memory level of the hierarchical roofline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RooflineLevel {
    /// L1 cache traffic.
    L1,
    /// L2 cache traffic.
    L2,
    /// Device memory (HBM2) traffic.
    Dram,
}

impl RooflineLevel {
    /// All levels, innermost first.
    pub const ALL: [RooflineLevel; 3] = [RooflineLevel::L1, RooflineLevel::L2, RooflineLevel::Dram];

    /// Printable name.
    pub fn name(&self) -> &'static str {
        match self {
            RooflineLevel::L1 => "L1",
            RooflineLevel::L2 => "L2",
            RooflineLevel::Dram => "DRAM",
        }
    }
}

/// One kernel's placement on the roofline at one memory level.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RooflinePoint {
    /// Kernel name.
    pub kernel: &'static str,
    /// Memory level of the traffic measurement.
    pub level: RooflineLevel,
    /// Arithmetic intensity at this level (flop/byte).
    pub ai: f64,
    /// Achieved performance (flop/s).
    pub achieved: f64,
    /// The bandwidth ceiling at this AI (flop/s): `AI × BW(level)`.
    pub bandwidth_ceiling: f64,
    /// The occupancy-derated compute ceiling (flop/s).
    pub compute_ceiling: f64,
    /// `true` if the kernel sits under the sloped (bandwidth) part of the
    /// roofline at this level — i.e. the level's bandwidth ceiling at this AI
    /// lies below the machine's peak flop rate. This is the sense in which
    /// §VI-A declares the kernels "bandwidth-bound for L1, L2, and DRAM".
    pub bandwidth_bound: bool,
}

/// Evaluates the full hierarchical roofline of `spec` on `gpu` at problem
/// size `ncells`: one point per memory level.
pub fn evaluate(gpu: &GpuModel, spec: &KernelSpec, ncells: u64) -> Vec<RooflinePoint> {
    let achieved = gpu.achieved_flops(spec, ncells);
    let compute_ceiling = gpu.flop_ceiling(spec);
    RooflineLevel::ALL
        .iter()
        .map(|&level| {
            let (ai, bw) = match level {
                RooflineLevel::L1 => (spec.ai_l1(), gpu.l1_bw),
                RooflineLevel::L2 => (spec.ai_l2(), gpu.l2_bw),
                RooflineLevel::Dram => (spec.ai_dram(), gpu.dram_bw * gpu.dram_efficiency),
            };
            let bandwidth_ceiling = ai * bw;
            RooflinePoint {
                kernel: spec.name,
                level,
                ai,
                achieved,
                bandwidth_ceiling,
                compute_ceiling,
                bandwidth_bound: bandwidth_ceiling < gpu.peak_flops,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernelspec::{stage_kernels, weno_spec};

    #[test]
    fn weno_is_bandwidth_bound_at_every_level() {
        // §VI-A: "All of our kernels are bandwidth-bound ... for L1 cache, L2
        // cache, and DRAM."
        let gpu = GpuModel::v100();
        for k in stage_kernels() {
            for p in evaluate(&gpu, &k, 20_000_000) {
                assert!(
                    p.bandwidth_bound,
                    "{} at {} should be bandwidth-bound (ai={:.2})",
                    p.kernel,
                    p.level.name(),
                    p.ai
                );
            }
        }
    }

    #[test]
    fn achieved_never_exceeds_ceilings() {
        let gpu = GpuModel::v100();
        let pts = evaluate(&gpu, &weno_spec(0), 20_000_000);
        for p in &pts {
            let ceiling = p.bandwidth_ceiling.min(p.compute_ceiling);
            assert!(
                p.achieved <= ceiling * 1.0 + 1e-6,
                "{:?} achieved above ceiling",
                p
            );
        }
    }

    #[test]
    fn dram_point_matches_paper_numbers() {
        let gpu = GpuModel::v100();
        let p = evaluate(&gpu, &weno_spec(0), 20_000_000)
            .into_iter()
            .find(|p| p.level == RooflineLevel::Dram)
            .unwrap();
        // ≈300 DP Gflop/s, ≈4 % of the 7.8 Tflop/s peak.
        assert!((250e9..350e9).contains(&p.achieved), "{}", p.achieved);
        assert!(p.achieved / gpu.peak_flops > 0.03);
        assert!(p.achieved / gpu.peak_flops < 0.05);
    }
}
