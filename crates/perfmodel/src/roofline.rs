//! Hierarchical roofline evaluation (Yang, Kurth & Williams), as used for
//! Fig. 4 of the paper.

use crate::gpu::GpuModel;
use crate::kernelspec::KernelSpec;
use serde::{Deserialize, Serialize};

/// One memory level of the hierarchical roofline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RooflineLevel {
    /// L1 cache traffic.
    L1,
    /// L2 cache traffic.
    L2,
    /// Device memory (HBM2) traffic.
    Dram,
}

impl RooflineLevel {
    /// All levels, innermost first.
    pub const ALL: [RooflineLevel; 3] = [RooflineLevel::L1, RooflineLevel::L2, RooflineLevel::Dram];

    /// Printable name.
    pub fn name(&self) -> &'static str {
        match self {
            RooflineLevel::L1 => "L1",
            RooflineLevel::L2 => "L2",
            RooflineLevel::Dram => "DRAM",
        }
    }
}

/// One kernel's placement on the roofline at one memory level.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RooflinePoint {
    /// Kernel name.
    pub kernel: &'static str,
    /// Memory level of the traffic measurement.
    pub level: RooflineLevel,
    /// Arithmetic intensity at this level (flop/byte).
    pub ai: f64,
    /// Achieved performance (flop/s).
    pub achieved: f64,
    /// The bandwidth ceiling at this AI (flop/s): `AI × BW(level)`.
    pub bandwidth_ceiling: f64,
    /// The occupancy-derated compute ceiling (flop/s).
    pub compute_ceiling: f64,
    /// `true` if the kernel sits under the sloped (bandwidth) part of the
    /// roofline at this level — i.e. the level's bandwidth ceiling at this AI
    /// lies below the machine's peak flop rate. This is the sense in which
    /// §VI-A declares the kernels "bandwidth-bound for L1, L2, and DRAM".
    pub bandwidth_bound: bool,
}

/// A *measured* kernel throughput scored against the roofline ceiling its
/// spec implies — the falsifiable half of the model: `evaluate` prices a
/// kernel analytically, [`score_measured`] grades what a backend actually
/// achieved.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MeasuredPoint {
    /// Kernel name.
    pub kernel: &'static str,
    /// Measured throughput in cells/s.
    pub cells_per_s: f64,
    /// Achieved flop rate implied by the spec's per-cell count (flop/s).
    pub achieved_flops: f64,
    /// DRAM arithmetic intensity of the spec (flop/byte).
    pub ai_dram: f64,
    /// The roofline ceiling at this AI: `min(peak, AI × DRAM bandwidth)`
    /// (flop/s).
    pub ceiling: f64,
    /// `achieved_flops / ceiling` — the achieved fraction of roofline.
    pub fraction: f64,
}

/// Scores a measured throughput (`cells_per_s`) for `spec` against the
/// machine roofline given by `peak_flops` (flop/s) and `dram_bw` (B/s):
/// the ceiling is the classic `min(peak, AI·BW)` at the spec's DRAM
/// intensity, and the returned fraction is how much of it the measurement
/// realized. Pass host ceilings to grade the CPU backends or
/// [`GpuModel`] numbers to compare against the modeled V100.
pub fn score_measured(
    spec: &KernelSpec,
    cells_per_s: f64,
    peak_flops: f64,
    dram_bw: f64,
) -> MeasuredPoint {
    let achieved_flops = cells_per_s * spec.flops_per_cell;
    let ai = spec.ai_dram();
    let ceiling = (ai * dram_bw).min(peak_flops);
    MeasuredPoint {
        kernel: spec.name,
        cells_per_s,
        achieved_flops,
        ai_dram: ai,
        ceiling,
        fraction: achieved_flops / ceiling,
    }
}

/// Evaluates the full hierarchical roofline of `spec` on `gpu` at problem
/// size `ncells`: one point per memory level.
pub fn evaluate(gpu: &GpuModel, spec: &KernelSpec, ncells: u64) -> Vec<RooflinePoint> {
    let achieved = gpu.achieved_flops(spec, ncells);
    let compute_ceiling = gpu.flop_ceiling(spec);
    RooflineLevel::ALL
        .iter()
        .map(|&level| {
            let (ai, bw) = match level {
                RooflineLevel::L1 => (spec.ai_l1(), gpu.l1_bw),
                RooflineLevel::L2 => (spec.ai_l2(), gpu.l2_bw),
                RooflineLevel::Dram => (spec.ai_dram(), gpu.dram_bw * gpu.dram_efficiency),
            };
            let bandwidth_ceiling = ai * bw;
            RooflinePoint {
                kernel: spec.name,
                level,
                ai,
                achieved,
                bandwidth_ceiling,
                compute_ceiling,
                bandwidth_bound: bandwidth_ceiling < gpu.peak_flops,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernelspec::{stage_kernels, weno_spec};

    #[test]
    fn weno_is_bandwidth_bound_at_every_level() {
        // §VI-A: "All of our kernels are bandwidth-bound ... for L1 cache, L2
        // cache, and DRAM."
        let gpu = GpuModel::v100();
        for k in stage_kernels() {
            for p in evaluate(&gpu, &k, 20_000_000) {
                assert!(
                    p.bandwidth_bound,
                    "{} at {} should be bandwidth-bound (ai={:.2})",
                    p.kernel,
                    p.level.name(),
                    p.ai
                );
            }
        }
    }

    #[test]
    fn achieved_never_exceeds_ceilings() {
        let gpu = GpuModel::v100();
        let pts = evaluate(&gpu, &weno_spec(0), 20_000_000);
        for p in &pts {
            let ceiling = p.bandwidth_ceiling.min(p.compute_ceiling);
            assert!(
                p.achieved <= ceiling * 1.0 + 1e-6,
                "{:?} achieved above ceiling",
                p
            );
        }
    }

    #[test]
    fn measured_score_is_bandwidth_limited_for_weno() {
        // WENO's AI (0.4 flop/B) is far below any machine balance, so the
        // ceiling must be the bandwidth slope, not peak flops.
        let spec = weno_spec(0);
        let (peak, bw) = (100e9, 50e9); // nominal host ceilings
        let p = score_measured(&spec, 10e6, peak, bw);
        assert!((p.ceiling - spec.ai_dram() * bw).abs() < 1.0);
        assert!(p.ceiling < peak);
        assert!((p.achieved_flops - 10e6 * spec.flops_per_cell).abs() < 1.0);
        assert!((p.fraction - p.achieved_flops / p.ceiling).abs() < 1e-12);
    }

    #[test]
    fn measured_score_caps_at_peak_for_high_ai() {
        // A synthetic compute-heavy spec must hit the flat (peak) ceiling.
        let mut spec = weno_spec(0);
        spec.flops_per_cell = 1e6;
        let p = score_measured(&spec, 1e6, 100e9, 50e9);
        assert_eq!(p.ceiling, 100e9);
    }

    #[test]
    fn dram_point_matches_paper_numbers() {
        let gpu = GpuModel::v100();
        let p = evaluate(&gpu, &weno_spec(0), 20_000_000)
            .into_iter()
            .find(|p| p.level == RooflineLevel::Dram)
            .unwrap();
        // ≈300 DP Gflop/s, ≈4 % of the 7.8 Tflop/s peak.
        assert!((250e9..350e9).contains(&p.achieved), "{}", p.achieved);
        assert!(p.achieved / gpu.peak_flops > 0.03);
        assert!(p.achieved / gpu.peak_flops < 0.05);
    }
}
