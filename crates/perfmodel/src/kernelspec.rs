//! Analytic per-cell work characterization of the CRoCCo kernels.
//!
//! Each kernel's arithmetic and memory traffic per grid cell is counted
//! analytically from the numerics it implements. These counts drive both the
//! GPU roofline model (Fig. 4) and the CPU/GPU kernel-time curves (Fig. 3).
//! Unit tests pin the counts to hand-derived values so a kernel change that
//! alters the work per cell breaks loudly.

use serde::{Deserialize, Serialize};

/// Work and traffic of one computational kernel, per grid cell.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct KernelSpec {
    /// Kernel name as it appears in the paper's figures.
    pub name: &'static str,
    /// Double-precision floating-point operations per cell.
    pub flops_per_cell: f64,
    /// Bytes moved to/from DRAM (HBM on the V100) per cell, assuming the
    /// stencil working set is cache-resident so each field value is read
    /// once and each output written once.
    pub dram_bytes_per_cell: f64,
    /// Bytes crossing the L2 cache per cell (stencil re-reads partially hit L2).
    pub l2_bytes_per_cell: f64,
    /// Bytes crossing the L1 cache per cell (every stencil access).
    pub l1_bytes_per_cell: f64,
    /// Registers per GPU thread — the occupancy limiter the paper identifies
    /// (§VI-A: "very high register usage arising from the complexity of the
    /// physics").
    pub registers_per_thread: u32,
    /// Device kernels launched per logical kernel invocation: §IV-B moves
    /// "more complex stencil loops into dedicated GPU kernels using
    /// `amrex::ParallelFor`", so one WENO sweep is several launches.
    pub sub_launches: u32,
}

impl KernelSpec {
    /// Arithmetic intensity (flop/byte) with respect to DRAM traffic.
    pub fn ai_dram(&self) -> f64 {
        self.flops_per_cell / self.dram_bytes_per_cell
    }

    /// Arithmetic intensity with respect to L2 traffic.
    pub fn ai_l2(&self) -> f64 {
        self.flops_per_cell / self.l2_bytes_per_cell
    }

    /// Arithmetic intensity with respect to L1 traffic.
    pub fn ai_l1(&self) -> f64 {
        self.flops_per_cell / self.l1_bytes_per_cell
    }
}

/// Number of conserved variables (ρ, ρu, ρv, ρw, E).
pub const NCONS: f64 = 5.0;

/// WENO reconstruction in one direction.
///
/// Per cell and per conserved component, the bandwidth-optimized symmetric
/// WENO evaluates, at each of the two faces the cell contributes to (one
/// reconstruction per face, amortized to one per cell per direction):
/// 4 candidate stencils × (3-point polynomial: 5 flops) for the split flux,
/// 4 smoothness indicators (~14 flops each), 4 nonlinear weights
/// (divide ≈ 4 flop-equivalents each ⇒ ~8 flops), normalization (~8), and
/// the final weighted sum (~8): ≈ 100 flops — doubled for the ± flux splits,
/// plus ~40 flops of Rusanov splitting and wave-speed estimation shared
/// across components. Total ≈ 5 × 240 = 1200 flops/cell.
///
/// DRAM traffic: §IV-B explains that to avoid data races the port moves the
/// complex stencil loops into dedicated `ParallelFor` kernels communicating
/// through *global-memory scratch arrays* ("we allocated all of these arrays
/// in GPU global memory from the host code"). Each cell therefore round-trips
/// its 4 candidate fluxes, smoothness indicators, split fluxes, and weights
/// through DRAM in addition to the state, metric, and output traffic:
/// ≈ (5 state + 9 metrics + 5 out + 5 comp × (2 splits × 4 candidates +
/// 4 IS + 4 ω + 2 partial sums)) × 8 B × read+write ≈ 3,000 B/cell.
/// L2 absorbs the stencil re-reads (~2× DRAM) and L1 sees every access (~4×).
pub fn weno_spec(dir: usize) -> KernelSpec {
    let name = match dir {
        0 => "WENOx",
        1 => "WENOy",
        _ => "WENOz",
    };
    KernelSpec {
        name,
        flops_per_cell: 1200.0,
        dram_bytes_per_cell: 3000.0,
        l2_bytes_per_cell: 6000.0,
        l1_bytes_per_cell: 12_000.0,
        registers_per_thread: 255,
        sub_launches: 8,
    }
}

/// 4th-order central viscous flux kernel.
///
/// Velocity/temperature gradients in 3 directions (4th-order: 4 points × 3
/// dirs × 4 fields ≈ 100 flops), stress tensor assembly (~60), Sutherland
/// viscosity (~20), heat flux (~20), divergence of the viscous flux (~100),
/// metric transforms (~100): ≈ 400 flops/cell. Gradients are staged through
/// global-memory scratch (9 components, read + write) on top of the
/// (4 + 9 + 5) field traffic: ≈ 1,200 B/cell DRAM.
pub fn viscous_spec() -> KernelSpec {
    KernelSpec {
        name: "Viscous",
        flops_per_cell: 400.0,
        dram_bytes_per_cell: 1200.0,
        l2_bytes_per_cell: 2500.0,
        l1_bytes_per_cell: 5000.0,
        registers_per_thread: 168,
        sub_launches: 6,
    }
}

/// Low-storage RK3 update: `U ← U + b·dU`, `dU ← a·dU + rhs` — a pure
/// streaming kernel: ~3 flops and 3 × 8 B per component per cell.
pub fn update_spec() -> KernelSpec {
    KernelSpec {
        name: "Update",
        flops_per_cell: 3.0 * NCONS,
        dram_bytes_per_cell: 3.0 * NCONS * 8.0,
        l2_bytes_per_cell: 3.0 * NCONS * 8.0,
        l1_bytes_per_cell: 3.0 * NCONS * 8.0,
        registers_per_thread: 32,
        sub_launches: 1,
    }
}

/// CFL time-step estimation (`ComputeDt`): per cell, primitive recovery
/// (~25 flops incl. sqrt for the sound speed), metric-scaled wave speeds
/// (~30), reduction tree amortized (~2). Reads 5 + 9 values.
pub fn compute_dt_spec() -> KernelSpec {
    KernelSpec {
        name: "ComputeDt",
        flops_per_cell: 57.0,
        dram_bytes_per_cell: 14.0 * 8.0,
        l2_bytes_per_cell: 14.0 * 8.0,
        l1_bytes_per_cell: 14.0 * 8.0,
        registers_per_thread: 40,
        sub_launches: 2,
    }
}

/// Trilinear (or curvilinear-weighted) coarse→fine interpolation: 8-point
/// weighted sum per component (~15 flops), per interpolated fine cell.
pub fn interp_spec() -> KernelSpec {
    KernelSpec {
        name: "Interp",
        flops_per_cell: 15.0 * NCONS,
        dram_bytes_per_cell: (8.0 + 1.0) * NCONS, // 8 coarse reads amortized over 8 fine cells + 1 write
        l2_bytes_per_cell: 3.0 * NCONS * 8.0,
        l1_bytes_per_cell: 9.0 * NCONS * 8.0,
        registers_per_thread: 64,
        sub_launches: 1,
    }
}

/// All kernels of one RK stage in execution order.
pub fn stage_kernels() -> Vec<KernelSpec> {
    vec![
        weno_spec(0),
        weno_spec(1),
        weno_spec(2),
        viscous_spec(),
        update_spec(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weno_counts_pin_hand_derivation() {
        let w = weno_spec(0);
        assert_eq!(w.flops_per_cell, 1200.0);
        assert_eq!(w.dram_bytes_per_cell, 3000.0);
        assert_eq!(w.registers_per_thread, 255);
        // AI(DRAM) = 0.4 flop/B: far below the V100's ~8.7 flop/B machine
        // balance, i.e. bandwidth-bound — as §VI-A observes.
        assert!((w.ai_dram() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn all_directions_share_weno_work() {
        assert_eq!(weno_spec(0).flops_per_cell, weno_spec(1).flops_per_cell);
        assert_eq!(weno_spec(1).flops_per_cell, weno_spec(2).flops_per_cell);
        assert_eq!(weno_spec(0).name, "WENOx");
        assert_eq!(weno_spec(1).name, "WENOy");
        assert_eq!(weno_spec(2).name, "WENOz");
    }

    #[test]
    fn intensities_ordered_by_cache_level() {
        // More traffic at inner levels ⇒ lower intensity there.
        for k in stage_kernels() {
            assert!(k.ai_l1() <= k.ai_l2() + 1e-12, "{}", k.name);
            assert!(k.ai_l2() <= k.ai_dram() + 1e-12, "{}", k.name);
        }
    }

    #[test]
    fn update_is_pure_streaming() {
        let u = update_spec();
        // 1 flop per 8 bytes: deep in the bandwidth-bound regime.
        assert!(u.ai_dram() < 0.2);
    }

    #[test]
    fn weno_dominates_stage_flops() {
        let total: f64 = stage_kernels().iter().map(|k| k.flops_per_cell).sum();
        let weno: f64 = 3.0 * weno_spec(0).flops_per_cell;
        assert!(weno / total > 0.85, "WENO must dominate: {}", weno / total);
    }
}
