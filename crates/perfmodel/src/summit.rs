//! The assembled Summit platform model.

use crate::cpu::CpuModel;
use crate::gpu::GpuModel;
use crate::network::NetworkModel;
use serde::{Deserialize, Serialize};

/// One Summit node: "six NVIDIA V100 GPUs and two 22-core IBM POWER9 CPUs"
/// (§V-A), on a fat-tree interconnect.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SummitPlatform {
    /// POWER9 kernel-rate model.
    pub cpu: CpuModel,
    /// V100 roofline model.
    pub gpu: GpuModel,
    /// Fat-tree network model.
    pub network: NetworkModel,
    /// GPUs per node (6).
    pub gpus_per_node: u32,
    /// CPU cores per node usable for MPI ranks (2 × 22 = 44, minus 2
    /// reserved for system services on Summit ⇒ 42).
    pub cpu_cores_per_node: u32,
}

impl Default for SummitPlatform {
    fn default() -> Self {
        SummitPlatform::new()
    }
}

impl SummitPlatform {
    /// The calibrated Summit model.
    pub fn new() -> Self {
        SummitPlatform {
            cpu: CpuModel::power9(),
            gpu: GpuModel::v100(),
            network: NetworkModel::summit(),
            gpus_per_node: 6,
            cpu_cores_per_node: 42,
        }
    }

    /// MPI ranks for a GPU run on `nodes` nodes (1 rank per GPU, the AMReX
    /// convention the paper follows).
    pub fn gpu_ranks(&self, nodes: u32) -> usize {
        (nodes * self.gpus_per_node) as usize
    }

    /// MPI ranks for a CPU run on `nodes` nodes (1 rank per core).
    pub fn cpu_ranks(&self, nodes: u32) -> usize {
        (nodes * self.cpu_cores_per_node) as usize
    }

    /// Device-memory budget check for a GPU run: the paper sizes problems so
    /// each V100 holds ≈1.2e5–7e6 points with the ~3× curvilinear overhead
    /// (§III-C, §V-C). `bytes_per_point` should include state, dU, coords,
    /// metrics and scratch.
    pub fn gpu_points_fit(&self, points_per_gpu: u64, bytes_per_point: u64) -> bool {
        self.gpu.fits_in_memory(points_per_gpu * bytes_per_point)
    }
}

/// Bytes of device memory per grid point for the curvilinear GPU solver:
/// 5-component state (×2 time levels) + 5-component dU + 3 coords +
/// 27 metrics + ~15 components of kernel scratch, all f64 — the "roughly a
/// three-fold increase in memory usage" of §III-C.
pub const CURVILINEAR_BYTES_PER_POINT: u64 = (5 * 2 + 5 + 3 + 27 + 15) * 8;

/// Bytes per point for the Cartesian (non-curvilinear) solver, for contrast.
pub const CARTESIAN_BYTES_PER_POINT: u64 = (5 * 2 + 5 + 5) * 8;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_counts() {
        let s = SummitPlatform::new();
        assert_eq!(s.gpu_ranks(4), 24); // Table I row 1
        assert_eq!(s.gpu_ranks(1024), 6144); // Table I row 8
        assert_eq!(s.cpu_ranks(16), 672);
    }

    #[test]
    fn curvilinear_memory_is_about_3x_cartesian() {
        let ratio = CURVILINEAR_BYTES_PER_POINT as f64 / CARTESIAN_BYTES_PER_POINT as f64;
        assert!((2.5..3.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn table1_points_per_gpu_fit_on_v100() {
        let s = SummitPlatform::new();
        // Largest Table I load: 4.19e10 points on 6144 GPUs ≈ 6.8e6 each.
        let per_gpu = 4.19e10_f64 as u64 / 6144;
        assert!(s.gpu_points_fit(per_gpu, CURVILINEAR_BYTES_PER_POINT));
        // But ~10× that spills out of the 16 GB — the §V-C limit.
        assert!(!s.gpu_points_fit(per_gpu * 10, CURVILINEAR_BYTES_PER_POINT));
    }
}
