//! NVIDIA V100 device model: hierarchical roofline with an occupancy cap.

use crate::kernelspec::KernelSpec;
use serde::{Deserialize, Serialize};

/// Analytic model of one NVIDIA V100 (SXM2, 16 GB), the Summit GPU.
///
/// Kernel time is the max of the compute time under the occupancy-limited
/// flop ceiling and the transfer time at each memory level, plus a fixed
/// launch overhead. This reproduces the two regimes of Fig. 3: overhead-bound
/// at small problem sizes (only 2.5× over CPU) and bandwidth-bound at large
/// sizes (15.8× over CPU), and the Fig. 4 roofline placement (~300 DP
/// Gflop/s ≈ 4 % of peak at 12.5 % occupancy).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct GpuModel {
    /// Peak double-precision throughput (flop/s). V100: 7.8 Tflop/s (§VI-A).
    pub peak_flops: f64,
    /// DRAM (HBM2) bandwidth (B/s). V100: ~900 GB/s.
    pub dram_bw: f64,
    /// L2 bandwidth (B/s). V100: ~2.2 TB/s (Yang et al.).
    pub l2_bw: f64,
    /// L1 aggregate bandwidth (B/s). V100: ~14 TB/s (Yang et al.).
    pub l1_bw: f64,
    /// Register file capacity per SM (32-bit registers). V100: 65,536.
    pub regfile_per_sm: u32,
    /// Maximum resident threads per SM. V100: 2,048.
    pub max_threads_per_sm: u32,
    /// Threads per block used by the `amrex::ParallelFor` launches.
    pub threads_per_block: u32,
    /// Fixed kernel launch + synchronization overhead (s).
    pub launch_overhead: f64,
    /// Device memory capacity in bytes. V100: 16 GB.
    pub memory_bytes: u64,
    /// Fraction of the occupancy-limited flop ceiling a real kernel attains
    /// (issue stalls, divides, non-FMA mix). Calibrated so WENOx lands at
    /// ~300 Gflop/s as reported in §VI-A.
    pub compute_efficiency: f64,
    /// Fraction of peak DRAM bandwidth attainable by stencil kernels.
    pub dram_efficiency: f64,
}

impl Default for GpuModel {
    fn default() -> Self {
        GpuModel::v100()
    }
}

impl GpuModel {
    /// The Summit V100 with constants from §V-A/§VI-A and Yang et al.
    pub fn v100() -> Self {
        GpuModel {
            peak_flops: 7.8e12,
            dram_bw: 900.0e9,
            l2_bw: 2.2e12,
            l1_bw: 14.0e12,
            regfile_per_sm: 65_536,
            max_threads_per_sm: 2_048,
            threads_per_block: 256,
            launch_overhead: 12.0e-6,
            memory_bytes: 16 * (1 << 30),
            // 300 Gflop/s achieved / (7.8 Tflop/s × 12.5 % occupancy) ≈ 0.31.
            compute_efficiency: 0.31,
            dram_efficiency: 0.78,
        }
    }

    /// Theoretical occupancy for a kernel: resident threads limited by
    /// register pressure over maximum resident threads.
    ///
    /// The V100 grants whole blocks, so the resident thread count is rounded
    /// down to a multiple of the block size. For the paper's WENO kernels at
    /// 255 registers/thread this yields 256/2048 = 12.5 %, the number Nsight
    /// reports in §VI-A.
    pub fn occupancy(&self, registers_per_thread: u32) -> f64 {
        let by_regs = self.regfile_per_sm / registers_per_thread.max(1);
        let blocks = (by_regs / self.threads_per_block).max(1);
        let resident = (blocks * self.threads_per_block).min(self.max_threads_per_sm);
        resident as f64 / self.max_threads_per_sm as f64
    }

    /// Sustained flop ceiling for a kernel (flop/s), after occupancy and
    /// issue-efficiency derating.
    pub fn flop_ceiling(&self, spec: &KernelSpec) -> f64 {
        self.peak_flops * self.occupancy(spec.registers_per_thread) * self.compute_efficiency
    }

    /// Time (s) to run `spec` over `ncells` grid cells.
    pub fn kernel_time(&self, spec: &KernelSpec, ncells: u64) -> f64 {
        let n = ncells as f64;
        let t_compute = n * spec.flops_per_cell / self.flop_ceiling(spec);
        let t_dram = n * spec.dram_bytes_per_cell / (self.dram_bw * self.dram_efficiency);
        let t_l2 = n * spec.l2_bytes_per_cell / self.l2_bw;
        let t_l1 = n * spec.l1_bytes_per_cell / self.l1_bw;
        self.launch_overhead * spec.sub_launches as f64
            + t_compute.max(t_dram).max(t_l2).max(t_l1)
    }

    /// Achieved flop rate (flop/s) for `spec` over `ncells` cells.
    pub fn achieved_flops(&self, spec: &KernelSpec, ncells: u64) -> f64 {
        let t = self.kernel_time(spec, ncells);
        ncells as f64 * spec.flops_per_cell / t
    }

    /// `true` if a working set of `bytes` fits in device memory. The paper
    /// hit this limit selecting the strong-scaling size (§V-C).
    pub fn fits_in_memory(&self, bytes: u64) -> bool {
        bytes <= self.memory_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernelspec::{update_spec, weno_spec};

    #[test]
    fn weno_occupancy_is_twelve_and_a_half_percent() {
        let g = GpuModel::v100();
        // 255 registers/thread: the §VI-A register-pressure number.
        assert!((g.occupancy(255) - 0.125).abs() < 1e-12);
        // A light kernel reaches full occupancy.
        assert!((g.occupancy(32) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weno_achieves_about_300_gflops_at_large_size() {
        let g = GpuModel::v100();
        let f = g.achieved_flops(&weno_spec(0), 20_000_000);
        assert!(
            (250.0e9..350.0e9).contains(&f),
            "WENOx achieved {:.1} Gflop/s, expected ≈300",
            f / 1e9
        );
        // ≈4 % of peak, as §VI-A reports.
        let frac = f / g.peak_flops;
        assert!((0.03..0.05).contains(&frac), "fraction {frac}");
    }

    #[test]
    fn small_kernels_are_launch_overhead_bound() {
        let g = GpuModel::v100();
        let tiny = g.kernel_time(&weno_spec(0), 1_000);
        let overhead = g.launch_overhead * weno_spec(0).sub_launches as f64;
        assert!(tiny < 1.5 * overhead);
        // Overhead amortizes at scale: time per cell drops.
        let big = g.kernel_time(&weno_spec(0), 10_000_000);
        assert!(big / 10_000_000.0 < tiny / 1_000.0);
    }

    #[test]
    fn streaming_kernel_is_dram_bound() {
        let g = GpuModel::v100();
        let spec = update_spec();
        let n = 50_000_000u64;
        let t = g.kernel_time(&spec, n) - g.launch_overhead * spec.sub_launches as f64;
        let t_dram = n as f64 * spec.dram_bytes_per_cell / (g.dram_bw * g.dram_efficiency);
        assert!((t - t_dram).abs() / t_dram < 1e-9, "update must be DRAM-bound");
    }

    #[test]
    fn memory_capacity_check() {
        let g = GpuModel::v100();
        assert!(g.fits_in_memory(15 * (1 << 30)));
        assert!(!g.fits_in_memory(17 * (1 << 30)));
    }
}
