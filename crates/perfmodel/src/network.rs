//! Summit fat-tree interconnect model.
//!
//! An α–β (latency–bandwidth) model with two extensions the paper's analysis
//! requires:
//!
//! * a logarithmic collective term for `ReduceRealMin` in `ComputeDt`
//!   (§III-B), and
//! * a metadata/setup term for `ParallelCopy` that grows with the global
//!   number of boxes — the AMReX parallel-copy handshake each rank performs
//!   against the global box list. This is the term that makes the custom
//!   curvilinear interpolator's global communication the scaling bottleneck
//!   of CRoCCo 2.0 (§VI-B, Fig. 7 `ParallelCopy_finish`).

use serde::{Deserialize, Serialize};

/// Interconnect cost model (per-rank critical-path times, in seconds).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Per-message latency (s): MPI + adapter injection overhead.
    pub alpha: f64,
    /// Per-rank sustained point-to-point bandwidth (B/s).
    pub bandwidth: f64,
    /// Per-hop latency of a reduction/broadcast tree stage (s).
    pub coll_alpha: f64,
    /// Metadata/handshake cost per *global* box in a ParallelCopy (s). Each
    /// rank intersects its patches against the remote BoxArray and posts the
    /// matching sends/receives.
    pub meta_per_box: f64,
    /// Per-rank setup cost of a global ParallelCopy (s): the
    /// alltoall-style handshake AMReX performs to agree on the send/receive
    /// schedule grows with the communicator size. This is the term behind
    /// the `ParallelCopy_finish` growth in Fig. 7.
    pub meta_per_rank: f64,
    /// Congestion exponent: effective bandwidth for globally-communicating
    /// operations degrades as `nranks^(-congestion)` on the shared fabric.
    pub congestion: f64,
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel::summit()
    }
}

impl NetworkModel {
    /// Summit EDR InfiniBand fat-tree calibration.
    ///
    /// `alpha` ≈ 2 µs MPI pt2pt latency; `bandwidth` ≈ 12.5 GB/s per-rank
    /// share of the dual-rail NIC when 6 ranks/node communicate at once;
    /// `meta_per_box` and `congestion` are calibrated against the weak-scaling
    /// efficiencies of Fig. 5 (54 % at 400 nodes for 2.0, ~70 % for 2.1).
    pub fn summit() -> Self {
        NetworkModel {
            alpha: 2.0e-6,
            bandwidth: 12.5e9,
            coll_alpha: 1.5e-6,
            meta_per_box: 8.0e-8,
            meta_per_rank: 2.5e-6,
            congestion: 0.12,
        }
    }

    /// Point-to-point phase time: the slowest rank posts `max_msgs` messages
    /// and receives `max_bytes` payload bytes.
    pub fn ptp_time(&self, max_msgs: f64, max_bytes: f64) -> f64 {
        self.alpha * max_msgs + max_bytes / self.bandwidth
    }

    /// All-reduce (e.g. `ReduceRealMin(dt)`) over `nranks` ranks.
    pub fn allreduce_time(&self, nranks: usize) -> f64 {
        if nranks <= 1 {
            return 0.0;
        }
        2.0 * self.coll_alpha * (nranks as f64).log2().ceil()
    }

    /// `ParallelCopy` time: point-to-point payload under congested global
    /// bandwidth, plus the per-rank metadata handshake against the global box
    /// list.
    ///
    /// `total_boxes` is the size of the *source* BoxArray (every rank
    /// intersects against all of it); `max_msgs`/`max_bytes` are the critical
    /// rank's message count and receive volume.
    pub fn parallel_copy_time(
        &self,
        max_msgs: f64,
        max_bytes: f64,
        total_boxes: u64,
        nranks: usize,
    ) -> f64 {
        let eff_bw = self.bandwidth * (nranks.max(1) as f64).powf(-self.congestion);
        self.alpha * max_msgs
            + max_bytes / eff_bw
            + self.meta_per_box * total_boxes as f64
            + self.meta_per_rank * nranks as f64
    }

    /// `FillBoundary` time: neighbor point-to-point exchange. Nearest-neighbor
    /// traffic rides the full fat-tree bandwidth without the global
    /// congestion factor.
    pub fn fill_boundary_time(&self, max_msgs: f64, max_bytes: f64) -> f64 {
        self.ptp_time(max_msgs, max_bytes)
    }

    /// Exposed communication time once `hide` seconds of independent interior
    /// compute overlap the transfer (§VI-C overlap analysis): the network is
    /// driven concurrently with the interior sweeps, so only the portion of
    /// `comm` exceeding the overlappable compute lands on the critical path.
    pub fn exposed_time(&self, comm: f64, hide: f64) -> f64 {
        (comm - hide).max(0.0)
    }

    /// Schedule-construction cost of a *point-to-point* ParallelCopy (the
    /// AMReX `FillPatchTwoLevels` state gather): every rank still builds the
    /// send/receive schedule against the remote BoxArray metadata even though
    /// the payload itself moves point-to-point. Fig. 7 shows this as the
    /// residual `ParallelCopy_finish` growth of CRoCCo **2.1**.
    pub fn parallel_copy_schedule_time(&self, total_boxes: u64, nranks: usize) -> f64 {
        self.meta_per_box * total_boxes as f64 + 0.1 * self.meta_per_rank * nranks as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_and_bandwidth_terms_add() {
        let n = NetworkModel::summit();
        let t = n.ptp_time(10.0, 1.25e9);
        assert!((t - (10.0 * 2.0e-6 + 0.1)).abs() < 1e-12);
    }

    #[test]
    fn allreduce_grows_logarithmically() {
        let n = NetworkModel::summit();
        assert_eq!(n.allreduce_time(1), 0.0);
        let t64 = n.allreduce_time(64);
        let t4096 = n.allreduce_time(4096);
        assert!((t4096 / t64 - 2.0).abs() < 1e-9); // log2: 6 vs 12 stages
    }

    #[test]
    fn parallel_copy_degrades_with_scale() {
        let n = NetworkModel::summit();
        // Same per-rank traffic, more ranks and boxes ⇒ strictly slower:
        // this is the §VI-B ParallelCopy bottleneck in miniature.
        let small = n.parallel_copy_time(50.0, 1e8, 1_000, 24);
        let large = n.parallel_copy_time(50.0, 1e8, 100_000, 6144);
        assert!(large > small);
    }

    #[test]
    fn fill_boundary_is_congestion_free() {
        let n = NetworkModel::summit();
        // FillBoundary cost is independent of rank count for fixed per-rank
        // traffic — the property that keeps CRoCCo 2.1 scaling at 70 %.
        let a = n.fill_boundary_time(26.0, 5e7);
        assert_eq!(a, n.fill_boundary_time(26.0, 5e7));
        assert!(a < n.parallel_copy_time(26.0, 5e7, 10_000, 2400));
    }
}
