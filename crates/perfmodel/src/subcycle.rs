//! Work model for subcycling in time (docs/ARCHITECTURE.md §Subcycling).
//!
//! Lockstep AMR (Algorithm 2) marches every level with the globally minimal
//! dt — set by the finest level, dt₀/2^ℓmax. To advance the solution by one
//! coarse-step-equivalent of simulated time (dt₀), every cell of every level
//! is therefore updated 2^ℓmax times. Per-level dt instead updates level ℓ's
//! cells 2^ℓ times over the same span:
//!
//! ```text
//!   lockstep  = 2^ℓmax · Σ_ℓ N_ℓ          updates per dt₀
//!   subcycled = Σ_ℓ 2^ℓ · N_ℓ             updates per dt₀
//! ```
//!
//! Their ratio is the ideal compute-bound speedup: it approaches 2^ℓmax as
//! the fine levels' coverage shrinks toward zero, and degenerates to exactly
//! 1 when the hierarchy is a single level (or when every level covers the
//! whole domain at ℓmax's cost — refinement without locality buys nothing).
//!
//! The model prices cell updates only. Subcycling's overheads — the
//! old-state save and time-interpolation blend (O(fine ghost cells)), the
//! interface-flux recording and reflux (O(interface faces)), and the extra
//! per-substep-pair AverageDown — are *surface* terms one cell deep, so they
//! vanish relative to the volume term as patches grow. `fig_subcycle`
//! (`docs/results/subcycle.md`) measures how much of the ideal ratio
//! survives them on a real hierarchy.

/// Per-level cell counts of a hierarchy, index = level. Constructed from a
/// live simulation's level sizes and evaluated analytically.
#[derive(Debug, Clone)]
pub struct SubcycleModel {
    cells: Vec<u64>,
}

impl SubcycleModel {
    /// `cells_per_level[ℓ]` = total valid cells on level ℓ.
    pub fn new(cells_per_level: Vec<u64>) -> Self {
        Self {
            cells: cells_per_level,
        }
    }

    /// Finest level index (0 for a single-level or empty hierarchy).
    fn lmax(&self) -> u32 {
        self.cells.len().saturating_sub(1) as u32
    }

    /// Cell updates per dt₀ of simulated time when every level marches with
    /// the finest level's dt.
    pub fn lockstep_updates(&self) -> f64 {
        let scale = (1u64 << self.lmax()) as f64;
        self.cells.iter().map(|&n| n as f64 * scale).sum()
    }

    /// Cell updates per dt₀ of simulated time when level ℓ marches with
    /// dt₀/2^ℓ.
    pub fn subcycled_updates(&self) -> f64 {
        self.cells
            .iter()
            .enumerate()
            .map(|(l, &n)| n as f64 * (1u64 << l) as f64)
            .sum()
    }

    /// Ideal compute-bound speedup of subcycling over lockstep: the ratio of
    /// the two update counts. Always in `[1, 2^ℓmax]`; 1.0 for an empty or
    /// single-level hierarchy.
    pub fn ideal_speedup(&self) -> f64 {
        let sub = self.subcycled_updates();
        if sub == 0.0 {
            return 1.0;
        }
        self.lockstep_updates() / sub
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_level_is_the_identity() {
        let m = SubcycleModel::new(vec![1000]);
        assert_eq!(m.lockstep_updates(), m.subcycled_updates());
        assert_eq!(m.ideal_speedup(), 1.0);
        assert_eq!(SubcycleModel::new(Vec::new()).ideal_speedup(), 1.0);
    }

    #[test]
    fn three_level_counts_match_the_hand_sum() {
        // N = [8192, 2048, 512]: lockstep pays 4·Σ N_ℓ = 43008 updates per
        // dt₀, subcycling 8192 + 2·2048 + 4·512 = 14336.
        let m = SubcycleModel::new(vec![8192, 2048, 512]);
        assert_eq!(m.lockstep_updates(), 43008.0);
        assert_eq!(m.subcycled_updates(), 14336.0);
        assert!((m.ideal_speedup() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_is_bounded_by_the_refinement_depth() {
        // Fine coverage → 0: speedup → 2^ℓmax. Full coverage: the fine
        // level dominates both sums and the advantage collapses toward 1.
        let sparse = SubcycleModel::new(vec![1_000_000, 8, 8]);
        assert!(sparse.ideal_speedup() > 3.99 && sparse.ideal_speedup() <= 4.0);
        let dense = SubcycleModel::new(vec![1_000_000, 4_000_000, 16_000_000]);
        assert!(dense.ideal_speedup() < 1.4);
        for m in [&sparse, &dense] {
            let s = m.ideal_speedup();
            assert!((1.0..=4.0).contains(&s), "speedup {s} out of bounds");
        }
    }
}
