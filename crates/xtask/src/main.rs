//! Workspace dev tasks, invoked as `cargo xtask <task>` (see
//! `.cargo/config.toml` for the alias). Offline and dependency-free.

// Enforced by `cargo xtask lint`: unsafe code is confined to the allowlisted
// fab modules (multifab, view, overlap) — none of it lives here.
#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

mod lint;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => {
            let root = args
                .next()
                .map(PathBuf::from)
                .unwrap_or_else(default_workspace_root);
            let report = lint::lint_root(&root);
            for d in &report.diagnostics {
                eprintln!("{}:{}: {}", d.path.display(), d.line, d.message);
            }
            for d in &report.durability_advisories {
                eprintln!(
                    "xtask lint: advisory — {}:{}: {}",
                    d.path.display(),
                    d.line,
                    d.message
                );
            }
            for (path, n) in &report.unwrap_audit {
                eprintln!(
                    "xtask lint: advisory — {}: {} unwrap()/expect() call(s) in non-test code",
                    path.display(),
                    n
                );
            }
            if report.diagnostics.is_empty() {
                eprintln!(
                    "xtask lint: OK — {} files, {} unsafe sites (all allowlisted and justified)",
                    report.files_scanned, report.unsafe_sites
                );
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "xtask lint: {} error(s) in {} files",
                    report.diagnostics.len(),
                    report.files_scanned
                );
                ExitCode::FAILURE
            }
        }
        _ => {
            eprintln!("usage: cargo xtask lint [workspace-root]");
            eprintln!();
            eprintln!("tasks:");
            eprintln!("  lint    enforce the unsafe-code policy (DESIGN.md §4d):");
            eprintln!("          unsafe only in allowlisted modules, every unsafe");
            eprintln!("          justified by a SAFETY comment, crate roots forbid");
            eprintln!("          unsafe_code, no stray debug/stub macros, raw fab");
            eprintln!("          views only in the fab view layer (DESIGN.md §4i),");
            eprintln!("          every docs/results/*.md cited by the narrative");
            eprintln!("          documents exists, no bare fs::write/File::create on");
            eprintln!("          checkpoint/manifest paths outside the durable writer");
            eprintln!("          (advisory, DESIGN.md §4j), plus an advisory");
            eprintln!("          unwrap()/expect() census of the network-facing");
            eprintln!("          runtime modules");
            ExitCode::FAILURE
        }
    }
}

/// The workspace root relative to this crate (`crates/xtask`), letting the
/// alias work from any subdirectory.
fn default_workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("xtask must live two levels below the workspace root")
        .to_path_buf()
}
