//! Source-level lint rules for the workspace (`cargo xtask lint`).
//!
//! The checks enforce the unsafe-code policy documented in DESIGN.md §4d:
//!
//! 1. the `unsafe` keyword appears only in allowlisted modules (the fab
//!    plan-execution path) — elsewhere the token itself is an error, even in
//!    positions the compiler would accept;
//! 2. every line containing `unsafe` in an allowlisted module is directly
//!    preceded by (or carries) a `SAFETY:` comment justifying it;
//! 3. every workspace crate root outside the allowlist opens with
//!    `#![forbid(unsafe_code)]`, so the policy survives refactors that move
//!    code between crates;
//! 4. `todo!`, `unimplemented!` and `dbg!` never reach the tree;
//! 5. arch-specific intrinsics and nightly SIMD paths (`std::arch`,
//!    `core::arch`, `std::simd`, `core::simd`) never appear — the SIMD-lane
//!    kernel backend (DESIGN.md §4h) is *stable, safe* Rust by design, and
//!    this keeps later "just one intrinsic" optimizations from eroding
//!    that: vectorization must come from lane-array loops the compiler can
//!    autovectorize, not from per-ISA escape hatches;
//! 6. raw fab views (`FabRd`/`FabRw`/`RawFab`) are constructed only inside
//!    the fab view layer itself — everywhere else goes through the safe
//!    `crocco_fab::with_rw` adapter, so the taskcheck access recorder
//!    (DESIGN.md §4i) observes every view that touches fab memory;
//! 7. every `docs/results/*.md` file referenced from the narrative
//!    documents ([`DOC_LINK_SOURCES`]) exists — the design docs cite
//!    results notes as evidence, and a citation to a note nobody wrote
//!    (or that a rename orphaned) silently breaks the audit trail;
//! 8. *(advisory)* checkpoint/manifest files are never written with bare
//!    `fs::write`/`File::create` outside the sanctioned writer modules
//!    ([`DURABLE_WRITER_ALLOWLIST`]) — durability requires the
//!    temp + fsync + atomic-rename sequence in `core::durable`, and a
//!    bare write is exactly the torn-on-crash hazard that subsystem
//!    exists to remove. Advisory because test harnesses legitimately
//!    corrupt checkpoint files on purpose; non-test code flagged here
//!    should be routed through `DiskStore::write_atomic`.
//!
//! The scanner also emits one *advisory* (never-failing) metric: the
//! `unwrap()`/`expect()` count in the non-test code of the network-facing
//! runtime modules and the plan builder, where a panic fail-stops a whole
//! simulated rank. Wire-reachable decode paths must return typed
//! `CommError`/`StageError` values instead; the count keeps the residue
//! (lock-poisoning and local-invariant asserts) visible in CI logs.
//!
//! The scanner is a small hand-rolled Rust lexer (line/nested-block comments,
//! string/raw-string/char literals, char-vs-lifetime disambiguation):
//! grep-level matching would false-positive on the word `unsafe` inside a
//! string or a comment, and the offline container cannot pull a real parser.

use std::fs;
use std::path::{Path, PathBuf};

/// Modules allowed to contain `unsafe` code, as workspace-relative paths.
/// Growing this list is a reviewed decision — see DESIGN.md §4d.
const UNSAFE_ALLOWLIST: &[&str] = &[
    "crates/fab/src/multifab.rs",
    "crates/fab/src/view.rs",
    "crates/fab/src/overlap.rs",
    "crates/fab/src/dist_overlap.rs",
];

/// Crate roots exempt from the `#![forbid(unsafe_code)]` requirement because
/// they host an allowlisted module (the workspace-level `deny` still applies
/// outside the module's own `allow`).
const FORBID_EXEMPT_ROOTS: &[&str] = &["crates/fab/src/lib.rs"];

/// Directory names never descended into. `vendor` holds stand-ins for
/// third-party crates — not workspace code — and `target` is build output.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git"];

/// Macros that must not reach the tree: stubs and debug leftovers.
const BANNED_MACROS: &[&str] = &["todo", "unimplemented", "dbg"];

/// Module paths that must not reach the tree (rule 5): per-ISA intrinsics
/// and nightly SIMD. The kernel backends vectorize through lane-array loops
/// on stable Rust; there is no allowlist for these.
const BANNED_PATHS: &[&str] = &["std::arch", "core::arch", "std::simd", "core::simd"];

/// Modules allowed to construct raw fab views directly (rule 6). The list
/// equals [`UNSAFE_ALLOWLIST`] by design: raw views exist exactly for the
/// plan-execution path, and keeping construction there means the taskcheck
/// access recorder wired into the view layer sees every fab access.
const RAW_VIEW_ALLOWLIST: &[&str] = &[
    "crates/fab/src/multifab.rs",
    "crates/fab/src/view.rs",
    "crates/fab/src/overlap.rs",
    "crates/fab/src/dist_overlap.rs",
];

/// Raw-view constructor tokens banned outside [`RAW_VIEW_ALLOWLIST`].
const RAW_VIEW_TOKENS: &[&str] = &[
    "FabRd::new",
    "FabRd::from_raw",
    "FabRw::from_mut",
    "FabRw::from_raw",
    "RawFab::capture",
    "RawFab::capture_const",
];

/// Files whose non-test `unwrap()`/`expect()` count is reported as an
/// advisory metric: a panic here fail-stops a simulated rank, so
/// wire-reachable decoding must use typed errors and the residue should
/// stay visible. Counting stops at the first `#[cfg(test)]` line.
const UNWRAP_AUDIT: &[&str] = &[
    "crates/runtime/src/cluster.rs",
    "crates/runtime/src/chaos.rs",
    "crates/fab/src/plan.rs",
];

/// Modules sanctioned to open checkpoint/manifest files for writing (rule
/// 8): the checkpoint serializer and the atomic-rename durable writer.
/// Everything else must go through `crocco_solver::durable::DiskStore`.
const DURABLE_WRITER_ALLOWLIST: &[&str] = &[
    "crates/core/src/io.rs",
    "crates/core/src/durable.rs",
];

/// Raw write entry points rule 8 looks for (in the code channel, so string
/// and comment mentions don't count).
const BARE_WRITE_TOKENS: &[&str] = &["fs::write", "File::create"];

/// Checkpoint-ish name fragments that make a bare write suspicious (matched
/// case-insensitively against the *raw* line — the filename usually lives in
/// a string literal, which the code channel blanks).
const CKPT_NAME_HINTS: &[&str] = &["chk", "checkpoint", "manifest", "spill", ".ckpt"];

/// Narrative documents whose `docs/results/*.md` references must resolve
/// (rule 7). References are workspace-root-relative wherever they appear, so
/// one spelling stays greppable across all the documents.
const DOC_LINK_SOURCES: &[&str] = &[
    "DESIGN.md",
    "README.md",
    "docs/ARCHITECTURE.md",
    "docs/DISTRIBUTED.md",
];

/// One `file:line: message` finding.
pub struct Diagnostic {
    pub path: PathBuf,
    pub line: usize,
    pub message: String,
}

/// The outcome of a full workspace scan.
pub struct Report {
    pub diagnostics: Vec<Diagnostic>,
    pub files_scanned: usize,
    pub unsafe_sites: usize,
    /// Advisory `unwrap()`/`expect()` counts for the [`UNWRAP_AUDIT`] files
    /// (non-test code only). Informational — never fails the lint.
    pub unwrap_audit: Vec<(PathBuf, usize)>,
    /// Advisory rule-8 findings: bare `fs::write`/`File::create` on
    /// checkpoint/manifest-looking paths outside the sanctioned writer
    /// modules (non-test code only). Informational — never fails the lint.
    pub durability_advisories: Vec<Diagnostic>,
}

/// Lints every `.rs` file under `root` (minus [`SKIP_DIRS`]) plus the
/// crate-root attribute rule for each workspace crate found.
pub fn lint_root(root: &Path) -> Report {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files);
    files.sort();

    let mut report = Report {
        diagnostics: Vec::new(),
        files_scanned: files.len(),
        unsafe_sites: 0,
        unwrap_audit: Vec::new(),
        durability_advisories: Vec::new(),
    };
    let roots = crate_roots(root);
    for rel in &files {
        let src = match fs::read_to_string(root.join(rel)) {
            Ok(s) => s,
            Err(e) => {
                report.diagnostics.push(Diagnostic {
                    path: rel.clone(),
                    line: 0,
                    message: format!("unreadable: {e}"),
                });
                continue;
            }
        };
        let rel_str = rel_slashes(rel);
        lint_file(rel, &rel_str, &src, roots.contains(rel), &mut report);
    }
    lint_doc_links(root, &mut report);
    report
}

/// Rule 7: every `docs/results/*.md` path mentioned in a
/// [`DOC_LINK_SOURCES`] document names a file that exists. Matching is
/// textual (these are Markdown files, not Rust) and tolerant of sentence
/// punctuation after the path. A source document that is absent is skipped —
/// the rule guards against dangling references, and fixture trees in the
/// tests have no narrative documents at all.
fn lint_doc_links(root: &Path, report: &mut Report) {
    for rel in DOC_LINK_SOURCES {
        let Ok(text) = fs::read_to_string(root.join(rel)) else {
            continue;
        };
        report.files_scanned += 1;
        for (idx, line) in text.lines().enumerate() {
            let mut rest = line;
            while let Some(at) = rest.find("docs/results/") {
                let tail = &rest[at..];
                let end = tail
                    .find(|c: char| {
                        !(c.is_ascii_alphanumeric() || matches!(c, '/' | '_' | '-' | '.'))
                    })
                    .unwrap_or(tail.len());
                let mut target = &tail[..end];
                // Trailing sentence punctuation is prose, not path.
                while !target.ends_with(".md") && target.ends_with(['.', ',']) {
                    target = &target[..target.len() - 1];
                }
                if target.ends_with(".md") && !root.join(target).exists() {
                    report.diagnostics.push(Diagnostic {
                        path: PathBuf::from(rel),
                        line: idx + 1,
                        message: format!(
                            "`{target}` is referenced but does not exist; \
                             write the results note or fix the reference"
                        ),
                    });
                }
                rest = &rest[at + "docs/results/".len()..];
            }
        }
    }
}

/// Applies all per-file rules to one source file.
fn lint_file(rel: &Path, rel_str: &str, src: &str, is_crate_root: bool, report: &mut Report) {
    let stripped = strip(src);
    let allowlisted = UNSAFE_ALLOWLIST.contains(&rel_str);
    let view_allowed = RAW_VIEW_ALLOWLIST.contains(&rel_str);
    let durable_writer = DURABLE_WRITER_ALLOWLIST.contains(&rel_str);
    // Rule 8 scopes to non-test code: the durable-restart suites corrupt
    // checkpoint files *on purpose* (they are the storage adversary).
    let test_start = stripped
        .code
        .iter()
        .position(|l| l.split_whitespace().collect::<String>() == "#[cfg(test)]")
        .unwrap_or(usize::MAX);
    let raw_lines: Vec<&str> = src.lines().collect();

    for (idx, line) in stripped.code.iter().enumerate() {
        let lineno = idx + 1;
        if token_pos(line, "unsafe").is_some() {
            report.unsafe_sites += 1;
            if !allowlisted {
                report.diagnostics.push(Diagnostic {
                    path: rel.to_path_buf(),
                    line: lineno,
                    message: format!(
                        "`unsafe` outside the allowlisted modules ({}); \
                         move the code there or make it safe",
                        UNSAFE_ALLOWLIST.join(", ")
                    ),
                });
            } else if !has_safety_comment(&stripped, idx) {
                report.diagnostics.push(Diagnostic {
                    path: rel.to_path_buf(),
                    line: lineno,
                    message: "`unsafe` without a `// SAFETY:` comment directly above it"
                        .to_string(),
                });
            }
        }
        for mac in BANNED_MACROS {
            if macro_pos(line, mac).is_some() {
                report.diagnostics.push(Diagnostic {
                    path: rel.to_path_buf(),
                    line: lineno,
                    message: format!("`{mac}!` must not reach the tree"),
                });
            }
        }
        for path in BANNED_PATHS {
            if line.contains(path) {
                report.diagnostics.push(Diagnostic {
                    path: rel.to_path_buf(),
                    line: lineno,
                    message: format!(
                        "`{path}` must not reach the tree: kernels vectorize \
                         through stable lane-array loops, not per-ISA \
                         intrinsics or nightly SIMD (DESIGN.md §4h)"
                    ),
                });
            }
        }
        if !durable_writer && idx < test_start && !rel_str.contains("/tests/") {
            let bare_write = BARE_WRITE_TOKENS.iter().any(|t| line.contains(t));
            let raw_lower = raw_lines.get(idx).map(|l| l.to_lowercase()).unwrap_or_default();
            if bare_write && CKPT_NAME_HINTS.iter().any(|h| raw_lower.contains(h)) {
                report.durability_advisories.push(Diagnostic {
                    path: rel.to_path_buf(),
                    line: lineno,
                    message: "bare fs::write/File::create on a checkpoint/manifest \
                              path; durable writes must go through \
                              `crocco_solver::durable::DiskStore::write_atomic` \
                              (temp + fsync + atomic rename)"
                        .to_string(),
                });
            }
        }
        if !view_allowed {
            for tok in RAW_VIEW_TOKENS {
                if token_pos(line, tok).is_some() {
                    report.diagnostics.push(Diagnostic {
                        path: rel.to_path_buf(),
                        line: lineno,
                        message: format!(
                            "`{tok}` outside the fab view layer ({}); go \
                             through `crocco_fab::with_rw` or a plan-level \
                             API so the taskcheck access recorder sees the \
                             view (DESIGN.md §4i)",
                            RAW_VIEW_ALLOWLIST.join(", ")
                        ),
                    });
                }
            }
        }
    }

    if UNWRAP_AUDIT.contains(&rel_str) {
        report
            .unwrap_audit
            .push((rel.to_path_buf(), count_unwraps(&stripped)));
    }

    if is_crate_root && !FORBID_EXEMPT_ROOTS.contains(&rel_str) {
        let has_forbid = stripped
            .code
            .iter()
            .any(|l| l.split_whitespace().collect::<String>() == "#![forbid(unsafe_code)]");
        if !has_forbid {
            report.diagnostics.push(Diagnostic {
                path: rel.to_path_buf(),
                line: 1,
                message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
            });
        }
    }
}

/// True when the comment block directly above line `idx` (or the line's own
/// trailing comment) contains `SAFETY:`.
fn has_safety_comment(stripped: &Stripped, idx: usize) -> bool {
    if stripped.comment[idx].contains("SAFETY:") {
        return true;
    }
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let code_blank = stripped.code[j].trim().is_empty();
        let comment = stripped.comment[j].trim();
        if code_blank && !comment.is_empty() {
            if stripped.comment[j].contains("SAFETY:") {
                return true;
            }
            // keep walking up through the comment block
        } else {
            break;
        }
    }
    false
}

/// Counts `.unwrap(` / `.expect(` occurrences in the non-test code lines of
/// a stripped file (everything before the first `#[cfg(test)]`). String and
/// comment occurrences were already blanked by the lexer.
fn count_unwraps(stripped: &Stripped) -> usize {
    let mut n = 0;
    for line in &stripped.code {
        if line.split_whitespace().collect::<String>() == "#[cfg(test)]" {
            break;
        }
        n += line.matches(".unwrap(").count() + line.matches(".expect(").count();
    }
    n
}

/// Position of `word` in `line` as a standalone token (identifier
/// boundaries on both sides), or `None`.
fn token_pos(line: &str, word: &str) -> Option<usize> {
    let bytes = line.as_bytes();
    let mut start = 0;
    while let Some(off) = line[start..].find(word) {
        let at = start + off;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let end = at + word.len();
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            return Some(at);
        }
        start = at + 1;
    }
    None
}

/// Position of a `name!` macro invocation in `line`, or `None`.
fn macro_pos(line: &str, name: &str) -> Option<usize> {
    let mut start = 0;
    while let Some(at) = token_pos(&line[start..], name).map(|p| p + start) {
        let rest = line[at + name.len()..].trim_start();
        if rest.starts_with('!') {
            return Some(at);
        }
        start = at + name.len();
        if start >= line.len() {
            break;
        }
    }
    None
}

fn is_ident_byte(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

/// Recursively collects workspace-relative `.rs` paths under `dir`.
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out);
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
}

/// The crate-root source files of the workspace: `src/lib.rs` (or
/// `src/main.rs`) of the root package and of every `crates/*` member that has
/// a `Cargo.toml`.
fn crate_roots(root: &Path) -> Vec<PathBuf> {
    let mut dirs = vec![root.to_path_buf()];
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            if entry.path().is_dir() {
                dirs.push(entry.path());
            }
        }
    }
    let mut out = Vec::new();
    for d in dirs {
        if !d.join("Cargo.toml").exists() {
            continue;
        }
        for candidate in ["src/lib.rs", "src/main.rs"] {
            let p = d.join(candidate);
            if p.exists() {
                if let Ok(rel) = p.strip_prefix(root) {
                    out.push(rel.to_path_buf());
                }
                break;
            }
        }
    }
    out
}

/// Normalizes a relative path to forward slashes for allowlist comparison.
fn rel_slashes(rel: &Path) -> String {
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// A source file split per line into code text (string/char literal contents
/// blanked, comments removed) and comment text.
struct Stripped {
    code: Vec<String>,
    comment: Vec<String>,
}

enum State {
    Code,
    LineComment,
    /// Nesting depth (Rust block comments nest).
    BlockComment(u32),
    Str,
    /// Number of `#` marks delimiting the raw string.
    RawStr(u32),
}

/// The hand-rolled lexer: walks `src` once, routing each character to the
/// code or comment channel of the current line.
fn strip(src: &str) -> Stripped {
    let chars: Vec<char> = src.chars().collect();
    let mut code_lines = Vec::new();
    let mut comment_lines = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut state = State::Code;
    let mut i = 0;

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        if c == '\n' {
            code_lines.push(std::mem::take(&mut code));
            comment_lines.push(std::mem::take(&mut comment));
            if matches!(state, State::LineComment) {
                state = State::Code;
            }
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    i += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    i += 2;
                    continue;
                }
                // Raw (byte) string openers: r"…", r#"…"#, br"…", … — only
                // when the `r` starts a token (`for` ends in r but is code).
                let prev_ident = code.chars().last().is_some_and(|p| is_ident_byte(p as u8));
                if !prev_ident && (c == 'r' || (c == 'b' && next == Some('r'))) {
                    let mut j = i + if c == 'b' { 2 } else { 1 };
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        code.push('"');
                        state = State::RawStr(hashes);
                        i = j + 1;
                        continue;
                    }
                }
                if c == '"' {
                    code.push('"');
                    state = State::Str;
                    i += 1;
                    continue;
                }
                if c == '\'' {
                    // Char literal vs lifetime/label: a literal is '\…' or a
                    // single char followed by a closing quote.
                    let is_char_lit = next == Some('\\')
                        || (next.is_some() && chars.get(i + 2) == Some(&'\''));
                    if is_char_lit {
                        code.push_str("' '");
                        i += 1; // consume opening quote
                        if chars.get(i) == Some(&'\\') {
                            i += 2; // escape introducer + escaped char
                            // multi-char escapes (\x41, \u{…}) run to the quote
                            while i < chars.len() && chars[i] != '\'' {
                                i += 1;
                            }
                        } else {
                            i += 1; // the single literal char
                        }
                        i += 1; // closing quote
                        continue;
                    }
                    code.push('\'');
                    i += 1;
                    continue;
                }
                code.push(c);
                i += 1;
            }
            State::LineComment => {
                comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    i += 2; // skip the escaped char (covers \" and \\)
                } else if c == '"' {
                    code.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let closed = (1..=hashes as usize)
                        .all(|k| chars.get(i + k) == Some(&'#'));
                    if closed {
                        code.push('"');
                        state = State::Code;
                        i += 1 + hashes as usize;
                        continue;
                    }
                }
                code.push(' ');
                i += 1;
            }
        }
    }
    code_lines.push(code);
    comment_lines.push(comment);
    Stripped {
        code: code_lines,
        comment: comment_lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn code_of(src: &str) -> Vec<String> {
        strip(src).code
    }

    #[test]
    fn lexer_blanks_strings_and_drops_comments() {
        let s = strip("let x = \"unsafe\"; // unsafe here\n");
        assert!(token_pos(&s.code[0], "unsafe").is_none());
        assert!(s.comment[0].contains("unsafe"));
    }

    #[test]
    fn lexer_handles_raw_strings_and_nested_block_comments() {
        let code = code_of("let r = r#\"unsafe \" quote\"#; /* a /* unsafe */ b */ let y = 1;\n");
        assert!(token_pos(&code[0], "unsafe").is_none());
        assert!(code[0].contains("let y = 1;"));
    }

    #[test]
    fn lexer_distinguishes_lifetimes_from_char_literals() {
        // A lifetime must stay in the code channel; a char literal containing
        // a quote must not desynchronize the string detector.
        let code = code_of("fn f<'a>(x: &'a str) { let q = '\"'; let u = unsafe_name(); }\n");
        assert!(code[0].contains("'a"));
        assert!(token_pos(&code[0], "unsafe").is_none(), "unsafe_name is not the token");
        let code = code_of("let c = '\\''; let d = unsafe_marker;\n");
        assert!(token_pos(&code[0], "unsafe").is_none());
        assert!(code[0].contains("unsafe_marker"));
    }

    #[test]
    fn token_and_macro_matching_respect_boundaries() {
        assert!(token_pos("unsafe {", "unsafe").is_some());
        assert!(token_pos("make_unsafe()", "unsafe").is_none());
        assert!(token_pos("unsafely()", "unsafe").is_none());
        assert!(macro_pos("x(); t o d o", "dbg").is_none());
        assert!(macro_pos("dbg ! (x)", "dbg").is_some());
        assert!(macro_pos("let dbg = 1;", "dbg").is_none());
    }

    #[test]
    fn safety_rule_accepts_block_directly_above() {
        let s = strip("// SAFETY: regions proven disjoint\n// by check_plan.\nunsafe { x() }\n");
        assert!(has_safety_comment(&s, 2));
        let s = strip("let a = 1;\nunsafe { x() }\n");
        assert!(!has_safety_comment(&s, 1));
    }

    // ---- fixture-tree integration tests ----------------------------------

    static FIXTURE_SEQ: AtomicUsize = AtomicUsize::new(0);

    /// A throwaway directory tree; removed on drop.
    struct Fixture {
        root: PathBuf,
    }

    impl Fixture {
        fn new() -> Self {
            let root = std::env::temp_dir().join(format!(
                "xtask_lint_fixture_{}_{}",
                std::process::id(),
                FIXTURE_SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            fs::create_dir_all(&root).unwrap();
            Fixture { root }
        }

        fn write(&self, rel: &str, contents: &str) {
            let p = self.root.join(rel);
            fs::create_dir_all(p.parent().unwrap()).unwrap();
            fs::write(p, contents).unwrap();
        }
    }

    impl Drop for Fixture {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.root);
        }
    }

    fn messages(report: &Report) -> Vec<String> {
        report
            .diagnostics
            .iter()
            .map(|d| format!("{}:{}: {}", d.path.display(), d.line, d.message))
            .collect()
    }

    #[test]
    fn fixture_tree_trips_every_rule() {
        let fx = Fixture::new();
        fx.write("Cargo.toml", "[package]\nname = \"fx\"\n");
        // Crate root without the forbid attribute, with banned macros.
        fx.write(
            "src/lib.rs",
            "pub fn f() { dbg!(1); }\npub fn g() { todo!() }\n",
        );
        // Unsafe outside the allowlist.
        fx.write(
            "crates/evil/Cargo.toml",
            "[package]\nname = \"evil\"\n",
        );
        fx.write(
            "crates/evil/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f(p: *const u8) -> u8 { unsafe { *p } }\n",
        );
        let report = lint_root(&fx.root);
        let msgs = messages(&report);
        let has = |frag: &str| msgs.iter().any(|m| m.contains(frag));
        assert!(has("src/lib.rs:1: crate root is missing"), "{msgs:?}");
        assert!(has("`dbg!` must not reach the tree"), "{msgs:?}");
        assert!(has("`todo!` must not reach the tree"), "{msgs:?}");
        assert!(has("`unsafe` outside the allowlisted modules"), "{msgs:?}");
        assert_eq!(report.diagnostics.len(), 4, "{msgs:?}");
    }

    #[test]
    fn fixture_allowlisted_unsafe_requires_safety_comment() {
        let fx = Fixture::new();
        fx.write("Cargo.toml", "[package]\nname = \"fx\"\n");
        fx.write("src/lib.rs", "#![forbid(unsafe_code)]\n");
        fx.write("crates/fab/Cargo.toml", "[package]\nname = \"fab\"\n");
        fx.write("crates/fab/src/lib.rs", "pub mod multifab;\n");
        fx.write(
            "crates/fab/src/multifab.rs",
            "pub fn ok(p: *const u8) -> u8 {\n    \
             // SAFETY: caller guarantees p is valid.\n    \
             unsafe { *p }\n}\n\
             pub fn bad(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n",
        );
        let report = lint_root(&fx.root);
        let msgs = messages(&report);
        assert_eq!(report.diagnostics.len(), 1, "{msgs:?}");
        assert!(msgs[0].contains("multifab.rs:6"), "{msgs:?}");
        assert!(msgs[0].contains("without a `// SAFETY:`"), "{msgs:?}");
        assert_eq!(report.unsafe_sites, 2);
    }

    #[test]
    fn fixture_intrinsics_and_nightly_simd_are_banned_everywhere() {
        let fx = Fixture::new();
        fx.write("Cargo.toml", "[package]\nname = \"fx\"\n");
        fx.write("src/lib.rs", "#![forbid(unsafe_code)]\n");
        // Even the unsafe-allowlisted fab modules get no intrinsics pass.
        fx.write("crates/fab/Cargo.toml", "[package]\nname = \"fab\"\n");
        fx.write("crates/fab/src/lib.rs", "pub mod multifab;\n");
        fx.write(
            "crates/fab/src/multifab.rs",
            "use core::arch::x86_64::_mm512_add_pd;\n\
             pub fn f(x: std::simd::f64x8) {}\n\
             // a comment naming std::arch is fine\n\
             pub const DOC: &str = \"core::simd in a string is fine\";\n",
        );
        let report = lint_root(&fx.root);
        let msgs = messages(&report);
        assert_eq!(report.diagnostics.len(), 2, "{msgs:?}");
        assert!(msgs[0].contains("`core::arch` must not reach the tree"), "{msgs:?}");
        assert!(msgs[1].contains("`std::simd` must not reach the tree"), "{msgs:?}");
    }

    #[test]
    fn fixture_raw_views_banned_outside_fab_view_layer() {
        let fx = Fixture::new();
        fx.write("Cargo.toml", "[package]\nname = \"fx\"\n");
        fx.write(
            "src/lib.rs",
            "#![forbid(unsafe_code)]\n\
             pub fn f(fab: &mut F) { let mut rw = FabRw::from_mut(fab); rw.set(p, 0, 1.0); }\n\
             // FabRd::new in a comment is fine\n\
             pub const DOC: &str = \"RawFab::capture in a string is fine\";\n",
        );
        // The same constructor inside the allowlisted view module passes.
        fx.write("crates/fab/Cargo.toml", "[package]\nname = \"fab\"\n");
        fx.write("crates/fab/src/lib.rs", "pub mod view;\n");
        fx.write(
            "crates/fab/src/view.rs",
            "pub fn with_rw(fab: &mut F) { let _rw = FabRw::from_mut(fab); }\n",
        );
        let report = lint_root(&fx.root);
        let msgs = messages(&report);
        assert_eq!(report.diagnostics.len(), 1, "{msgs:?}");
        assert!(msgs[0].contains("src/lib.rs:2"), "{msgs:?}");
        assert!(
            msgs[0].contains("`FabRw::from_mut` outside the fab view layer"),
            "{msgs:?}"
        );
    }

    #[test]
    fn fixture_bare_checkpoint_writes_are_advised() {
        let fx = Fixture::new();
        fx.write("Cargo.toml", "[package]\nname = \"fx\"\n");
        fx.write("src/lib.rs", "#![forbid(unsafe_code)]\n");
        fx.write("crates/core/Cargo.toml", "[package]\nname = \"core\"\n");
        fx.write(
            "crates/core/src/lib.rs",
            "#![forbid(unsafe_code)]\npub mod durable;\npub mod rogue;\n",
        );
        // A bare write to a checkpoint-looking path outside the durable
        // writer modules draws an advisory; the same call on an unrelated
        // path, inside #[cfg(test)], or in the allowlisted module does not.
        fx.write(
            "crates/core/src/rogue.rs",
            "pub fn spill(dir: &std::path::Path, b: &[u8]) {\n    \
                 std::fs::write(dir.join(\"chk_A\"), b).unwrap();\n    \
                 std::fs::write(dir.join(\"trace.log\"), b).unwrap();\n}\n\
             #[cfg(test)]\n\
             mod tests {\n    \
                 fn corrupt(d: &std::path::Path) { std::fs::write(d.join(\"MANIFEST\"), b\"x\").unwrap(); }\n\
             }\n",
        );
        fx.write(
            "crates/core/src/durable.rs",
            "pub fn write_atomic(p: &std::path::Path, b: &[u8]) {\n    \
                 std::fs::write(p.join(\"chk_B.tmp\"), b).unwrap();\n}\n",
        );
        let report = lint_root(&fx.root);
        assert!(report.diagnostics.is_empty(), "{:?}", messages(&report));
        assert_eq!(
            report.durability_advisories.len(),
            1,
            "{:?}",
            report
                .durability_advisories
                .iter()
                .map(|d| format!("{}:{}: {}", d.path.display(), d.line, d.message))
                .collect::<Vec<_>>()
        );
        let adv = &report.durability_advisories[0];
        assert!(adv.path.ends_with("rogue.rs"));
        assert_eq!(adv.line, 2);
        assert!(adv.message.contains("write_atomic"));
    }

    #[test]
    fn fixture_unwrap_audit_counts_non_test_code_only() {
        let fx = Fixture::new();
        fx.write("Cargo.toml", "[package]\nname = \"fx\"\n");
        fx.write("src/lib.rs", "#![forbid(unsafe_code)]\n");
        fx.write("crates/runtime/Cargo.toml", "[package]\nname = \"rt\"\n");
        fx.write("crates/runtime/src/lib.rs", "#![forbid(unsafe_code)]\n");
        fx.write(
            "crates/runtime/src/cluster.rs",
            "pub fn f(m: &M) { m.lock().expect(\"poisoned\"); }\n\
             // a comment saying .unwrap() does not count\n\
             pub fn g(v: &[u8]) -> u8 { v.first().copied().unwrap() }\n\
             #[cfg(test)]\n\
             mod tests { fn t() { x().unwrap(); } }\n",
        );
        let report = lint_root(&fx.root);
        assert!(report.diagnostics.is_empty(), "{:?}", messages(&report));
        assert_eq!(report.unwrap_audit.len(), 1);
        let (path, n) = &report.unwrap_audit[0];
        assert!(path.ends_with("cluster.rs"));
        assert_eq!(*n, 2, "test-module and comment occurrences must not count");
    }

    #[test]
    fn fixture_strings_and_comments_do_not_trip_rules() {
        let fx = Fixture::new();
        fx.write("Cargo.toml", "[package]\nname = \"fx\"\n");
        fx.write(
            "src/lib.rs",
            "#![forbid(unsafe_code)]\n\
             // unsafe in a comment, and todo! too\n\
             pub const DOC: &str = \"unsafe { dbg!(x) } todo!()\";\n",
        );
        let report = lint_root(&fx.root);
        assert!(report.diagnostics.is_empty(), "{:?}", messages(&report));
        assert_eq!(report.unsafe_sites, 0);
    }

    #[test]
    fn fixture_dangling_results_references_are_caught() {
        let fx = Fixture::new();
        fx.write("Cargo.toml", "[package]\nname = \"fx\"\n");
        fx.write("src/lib.rs", "#![forbid(unsafe_code)]\n");
        fx.write("docs/results/real.md", "# exists\n");
        fx.write(
            "DESIGN.md",
            "Numbers in docs/results/real.md and docs/results/ghost.md.\n\
             Also [linked](docs/results/gone.md) and the bare docs/results/ dir.\n",
        );
        // docs/ARCHITECTURE.md is a rule-7 source too: its §Subcycling
        // narrative points at docs/results/subcycle.md, which must resolve.
        fx.write(
            "docs/ARCHITECTURE.md",
            "The payoff is measured in docs/results/subcycle.md.\n",
        );
        let report = lint_root(&fx.root);
        let msgs = messages(&report);
        assert_eq!(report.diagnostics.len(), 3, "{msgs:?}");
        assert!(
            msgs.iter().any(|m| m.contains("DESIGN.md:1")
                && m.contains("`docs/results/ghost.md` is referenced but does not exist")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter()
                .any(|m| m.contains("DESIGN.md:2") && m.contains("docs/results/gone.md")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter().any(|m| m.contains("ARCHITECTURE.md:1")
                && m.contains("`docs/results/subcycle.md` is referenced but does not exist")),
            "{msgs:?}"
        );
        // Writing the results file resolves the reference and only the
        // DESIGN.md danglers remain.
        fx.write("docs/results/subcycle.md", "# measured\n");
        let report = lint_root(&fx.root);
        let msgs = messages(&report);
        assert_eq!(report.diagnostics.len(), 2, "{msgs:?}");
        assert!(
            !msgs.iter().any(|m| m.contains("subcycle.md")),
            "{msgs:?}"
        );
    }

    #[test]
    fn the_real_workspace_passes() {
        let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(|p| p.parent())
            .unwrap()
            .to_path_buf();
        let report = lint_root(&root);
        assert!(
            report.diagnostics.is_empty(),
            "workspace must lint clean:\n{}",
            messages(&report).join("\n")
        );
        assert!(report.files_scanned > 50, "walk found too few files");
        assert!(report.unsafe_sites > 0, "fab::multifab unsafe sites expected");
        assert_eq!(
            report.unwrap_audit.len(),
            UNWRAP_AUDIT.len(),
            "every audited file must exist in the workspace"
        );
    }
}
