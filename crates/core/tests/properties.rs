//! Property-based tests of the solver numerics invariants.

use crocco_solver::eos::PerfectGas;
use crocco_solver::riemann::{sample, star_state, Gas1d};
use crocco_solver::state::{Conserved, Primitive};
use crocco_solver::weno::{
    linear_weights, nonlinear_weights, reconstruct_face, WenoVariant,
};
use proptest::prelude::*;

const VARIANTS: [WenoVariant; 3] = [
    WenoVariant::Js5,
    WenoVariant::CentralSym6,
    WenoVariant::Symbo,
];

proptest! {
    #[test]
    fn weno_weights_are_a_partition_of_unity(
        w in prop::array::uniform6(-100.0f64..100.0),
        variant in prop::sample::select(VARIANTS.to_vec()),
    ) {
        let om = nonlinear_weights(&w, variant);
        let sum: f64 = om.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9, "weights sum {}", sum);
        for o in om {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&o));
        }
    }

    #[test]
    fn weno_reconstruction_is_scale_equivariant(
        w in prop::array::uniform6(-10.0f64..10.0),
        variant in prop::sample::select(VARIANTS.to_vec()),
    ) {
        // f(x) → f(x) + c shifts the reconstruction by c (consistency).
        let c = 3.7;
        let shifted: [f64; 6] = std::array::from_fn(|i| w[i] + c);
        let a = reconstruct_face(&w, variant);
        let b = reconstruct_face(&shifted, variant);
        prop_assert!((b - a - c).abs() < 1e-7, "{} vs {}", a, b - c);
    }

    #[test]
    fn weno_respects_monotone_data_bounds(
        start in -5.0f64..5.0,
        steps in prop::array::uniform5(0.0f64..3.0),
        variant in prop::sample::select(VARIANTS.to_vec()),
    ) {
        // On monotone increasing data the reconstruction stays within the
        // global data range (no over/undershoot beyond the stencil bounds).
        let mut w = [start; 6];
        for i in 1..6 {
            w[i] = w[i - 1] + steps[i - 1];
        }
        let f = reconstruct_face(&w, variant);
        prop_assert!(f >= w[0] - 1e-9 && f <= w[5] + 1e-9, "{} outside [{}, {}]", f, w[0], w[5]);
    }

    #[test]
    fn linear_weight_families_sum_to_one(variant in prop::sample::select(VARIANTS.to_vec())) {
        let d = linear_weights(variant);
        prop_assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn primitive_conserved_roundtrip(
        rho in 0.01f64..100.0,
        u in -50.0f64..50.0,
        v in -50.0f64..50.0,
        wv in -50.0f64..50.0,
        p in 0.01f64..1000.0,
    ) {
        let gas = PerfectGas::nondimensional();
        let w = Primitive { rho, vel: [u, v, wv], p, t: 0.0 };
        let c = Conserved::from_primitive(&w, &gas);
        let w2 = c.to_primitive(&gas);
        prop_assert!((w2.rho - rho).abs() / rho < 1e-12);
        prop_assert!((w2.p - p).abs() / p < 1e-9);
        for d in 0..3 {
            prop_assert!((w2.vel[d] - w.vel[d]).abs() < 1e-9);
        }
        prop_assert!(w2.t > 0.0);
    }

    #[test]
    fn riemann_star_state_is_physical_and_bracketed(
        rho_l in 0.1f64..10.0,
        p_l in 0.1f64..100.0,
        rho_r in 0.1f64..10.0,
        p_r in 0.1f64..100.0,
        du in -2.0f64..2.0,
    ) {
        let l = Gas1d { rho: rho_l, u: 0.0, p: p_l };
        let r = Gas1d { rho: rho_r, u: du, p: p_r };
        let (ps, us) = star_state(&l, &r, 1.4);
        prop_assert!(ps > 0.0, "p* = {}", ps);
        prop_assert!(us.is_finite());
        // Sampling at extreme wave speeds recovers the input states.
        let far_left = sample(&l, &r, 1.4, -1e6);
        let far_right = sample(&l, &r, 1.4, 1e6);
        prop_assert!((far_left.rho - l.rho).abs() < 1e-12);
        prop_assert!((far_right.rho - r.rho).abs() < 1e-12);
    }

    #[test]
    fn sound_speed_and_viscosity_are_monotone(
        t1 in 100.0f64..500.0,
        dt in 1.0f64..500.0,
    ) {
        let gas = PerfectGas::air();
        prop_assert!(gas.viscosity(t1 + dt) > gas.viscosity(t1));
        let p = 1e5;
        let rho1 = p / (gas.r_gas * t1);
        let rho2 = p / (gas.r_gas * (t1 + dt));
        // Hotter gas at the same pressure → faster sound.
        prop_assert!(gas.sound_speed(rho2, p) > gas.sound_speed(rho1, p));
    }
}
