//! State-vector layout and conversions.

use crate::eos::PerfectGas;

/// Number of conserved components: ρ, ρu, ρv, ρw, E. (The paper's
/// multi-species extension adds one density per species; the DMR evaluation
/// case is single-species.)
pub const NCONS: usize = 5;

/// Conserved component indices.
pub mod cons {
    /// Density ρ.
    pub const RHO: usize = 0;
    /// x-momentum ρu.
    pub const MX: usize = 1;
    /// y-momentum ρv.
    pub const MY: usize = 2;
    /// z-momentum ρw.
    pub const MZ: usize = 3;
    /// Total energy per unit volume E.
    pub const ENER: usize = 4;
}

/// A conserved state at one point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Conserved(pub [f64; NCONS]);

/// A primitive state at one point: density, velocity, pressure, temperature.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Primitive {
    /// Density ρ.
    pub rho: f64,
    /// Velocity components.
    pub vel: [f64; 3],
    /// Pressure p.
    pub p: f64,
    /// Temperature T.
    pub t: f64,
}

impl Conserved {
    /// Builds a conserved state from primitives under `gas`.
    pub fn from_primitive(w: &Primitive, gas: &PerfectGas) -> Self {
        let ke = 0.5 * w.rho * (w.vel[0] * w.vel[0] + w.vel[1] * w.vel[1] + w.vel[2] * w.vel[2]);
        Conserved([
            w.rho,
            w.rho * w.vel[0],
            w.rho * w.vel[1],
            w.rho * w.vel[2],
            w.p / (gas.gamma - 1.0) + ke,
        ])
    }

    /// Recovers primitives (Eq. 2 of the paper specialized to a single
    /// perfect-gas species).
    pub fn to_primitive(&self, gas: &PerfectGas) -> Primitive {
        let rho = self.0[cons::RHO];
        debug_assert!(rho > 0.0, "non-positive density {rho}");
        let inv = 1.0 / rho;
        let vel = [self.0[cons::MX] * inv, self.0[cons::MY] * inv, self.0[cons::MZ] * inv];
        let ke = 0.5 * rho * (vel[0] * vel[0] + vel[1] * vel[1] + vel[2] * vel[2]);
        let p = (gas.gamma - 1.0) * (self.0[cons::ENER] - ke);
        Primitive {
            rho,
            vel,
            p,
            t: gas.temperature(rho, p),
        }
    }

    /// The inviscid (Euler) flux vector in direction `dir`.
    pub fn euler_flux(&self, dir: usize, gas: &PerfectGas) -> [f64; NCONS] {
        let w = self.to_primitive(gas);
        let un = w.vel[dir];
        let mut f = [
            self.0[cons::RHO] * un,
            self.0[cons::MX] * un,
            self.0[cons::MY] * un,
            self.0[cons::MZ] * un,
            (self.0[cons::ENER] + w.p) * un,
        ];
        f[1 + dir] += w.p;
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gas() -> PerfectGas {
        PerfectGas::air()
    }

    #[test]
    fn primitive_conserved_roundtrip() {
        let w = Primitive {
            rho: 1.3,
            vel: [10.0, -4.0, 2.5],
            p: 2.7e4,
            t: 0.0, // recomputed
        };
        let u = Conserved::from_primitive(&w, &gas());
        let w2 = u.to_primitive(&gas());
        assert!((w2.rho - w.rho).abs() < 1e-13);
        for d in 0..3 {
            assert!((w2.vel[d] - w.vel[d]).abs() < 1e-12);
        }
        assert!((w2.p - w.p).abs() / w.p < 1e-13);
        assert!(w2.t > 0.0);
    }

    #[test]
    fn flux_of_rest_gas_is_pure_pressure() {
        let w = Primitive {
            rho: 1.0,
            vel: [0.0; 3],
            p: 101325.0,
            t: 0.0,
        };
        let u = Conserved::from_primitive(&w, &gas());
        for dir in 0..3 {
            let f = u.euler_flux(dir, &gas());
            assert_eq!(f[cons::RHO], 0.0);
            assert_eq!(f[cons::ENER], 0.0);
            for (c, &fc) in f.iter().enumerate().take(4).skip(1) {
                let expect = if c == 1 + dir { 101325.0 } else { 0.0 };
                assert!((fc - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn mass_flux_is_momentum() {
        let w = Primitive {
            rho: 2.0,
            vel: [3.0, 5.0, -7.0],
            p: 10.0,
            t: 0.0,
        };
        let u = Conserved::from_primitive(&w, &gas());
        for dir in 0..3 {
            let f = u.euler_flux(dir, &gas());
            assert!((f[cons::RHO] - 2.0 * w.vel[dir]).abs() < 1e-12);
        }
    }
}

/// Positivity safeguard: clamps density and pressure floors on a state,
/// returning `true` if anything was repaired. Shock-capturing production
/// codes apply such a floor after each stage to survive transient
/// undershoots near strong interactions (the Mach-10 DMR jet is the classic
/// offender); WENO + Rusanov rarely needs it, but the guard turns a silent
/// NaN into a counted event.
pub fn apply_positivity_floor(
    u: &mut [f64; NCONS],
    gas: &PerfectGas,
    rho_floor: f64,
    p_floor: f64,
) -> bool {
    let mut repaired = false;
    if u[cons::RHO] < rho_floor {
        u[cons::RHO] = rho_floor;
        repaired = true;
    }
    let rho = u[cons::RHO];
    let ke = 0.5 * (u[cons::MX] * u[cons::MX] + u[cons::MY] * u[cons::MY]
        + u[cons::MZ] * u[cons::MZ]) / rho;
    let p = (gas.gamma - 1.0) * (u[cons::ENER] - ke);
    if p < p_floor {
        u[cons::ENER] = ke + p_floor / (gas.gamma - 1.0);
        repaired = true;
    }
    repaired
}

#[cfg(test)]
mod floor_tests {
    use super::*;

    #[test]
    fn healthy_states_pass_untouched() {
        let gas = PerfectGas::nondimensional();
        let w = Primitive {
            rho: 1.0,
            vel: [2.0, 0.0, 0.0],
            p: 0.5,
            t: 0.0,
        };
        let mut u = Conserved::from_primitive(&w, &gas).0;
        let before = u;
        assert!(!apply_positivity_floor(&mut u, &gas, 1e-8, 1e-8));
        assert_eq!(u, before);
    }

    #[test]
    fn negative_pressure_is_repaired_keeping_momentum() {
        let gas = PerfectGas::nondimensional();
        // Energy below kinetic energy => negative pressure.
        let mut u = [1.0, 3.0, 0.0, 0.0, 1.0]; // ke = 4.5 > E
        assert!(apply_positivity_floor(&mut u, &gas, 1e-8, 1e-6));
        let w = Conserved(u).to_primitive(&gas);
        // Recovery subtracts ke = 4.5 from E: cancellation leaves ~eps·ke
        // of absolute noise on the tiny floored pressure.
        assert!((w.p - 1e-6).abs() < 1e-14, "p = {}", w.p);
        assert_eq!(u[cons::MX], 3.0);
        assert!(w.rho == 1.0);
    }

    #[test]
    fn vacuum_density_is_floored() {
        let gas = PerfectGas::nondimensional();
        let mut u = [-1e-3, 0.0, 0.0, 0.0, 1.0];
        assert!(apply_positivity_floor(&mut u, &gas, 1e-8, 1e-8));
        assert_eq!(u[cons::RHO], 1e-8);
        let w = Conserved(u).to_primitive(&gas);
        assert!(w.p > 0.0);
    }
}
