//! Benchmark problem definitions.
//!
//! The paper's evaluation workload is the double Mach reflection (DMR) case
//! of Woodward & Colella (§V-B): an unsteady planar Mach 10 shock incident on
//! a 30° inviscid compression ramp, solved in 3-D with general curvilinear
//! coordinates "although unnecessary for this problem". We implement it in
//! the canonical frame (rectangular domain, 60° incident shock,
//! time-dependent top boundary), extruded along the periodic span with the
//! paper's 2:1 x:z aspect, plus three supporting problems used by the tests,
//! examples, and ablations.

use crate::eos::PerfectGas;
use crate::state::{Conserved, Primitive};
use crocco_geometry::{GridMapping, RampMapping, RealVect, UniformMapping};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Which benchmark problem to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProblemKind {
    /// Sod shock tube along x (exact solution available in
    /// [`crate::riemann`]); outflow in x, periodic in y and z.
    SodX,
    /// Double Mach reflection of a Mach 10 shock (Woodward & Colella),
    /// extruded in z — the paper's evaluation case.
    DoubleMach,
    /// Smooth isentropic vortex advecting through a fully periodic box:
    /// the order-verification workload.
    IsentropicVortex,
    /// Supersonic flow over the 30° compression ramp on a truly curvilinear
    /// (sheared) grid; exercises the curvilinear metrics for real.
    Ramp,
}

/// DMR constants (Woodward & Colella 1984).
pub mod dmr {
    /// x-station where the shock meets the wall at t = 0.
    pub const X0: f64 = 1.0 / 6.0;
    /// Incident shock Mach number.
    pub const MACH: f64 = 10.0;
    /// Pre-shock state: ρ = 1.4, p = 1, at rest.
    pub const RHO_PRE: f64 = 1.4;
    /// Pre-shock pressure.
    pub const P_PRE: f64 = 1.0;
    /// Post-shock density.
    pub const RHO_POST: f64 = 8.0;
    /// Post-shock pressure.
    pub const P_POST: f64 = 116.5;
    /// Post-shock speed (normal to the shock front).
    pub const Q_POST: f64 = 8.25;

    /// Shock-front x-position at height `y`, time `t`: the 60° front moves
    /// at speed 10/sin 60°.
    pub fn shock_x(y: f64, t: f64) -> f64 {
        X0 + (y + 20.0 * t) / 3f64.sqrt()
    }
}

impl ProblemKind {
    /// The gas model for this problem.
    pub fn gas(&self) -> PerfectGas {
        PerfectGas::nondimensional()
    }

    /// The grid mapping (physical geometry).
    pub fn mapping(&self) -> Arc<dyn GridMapping> {
        match self {
            ProblemKind::SodX => Arc::new(UniformMapping::new(
                RealVect::ZERO,
                RealVect::new(1.0, 0.25, 0.25),
            )),
            // Paper: 2:1 aspect in x and z.
            ProblemKind::DoubleMach => Arc::new(UniformMapping::new(
                RealVect::ZERO,
                RealVect::new(4.0, 1.0, 2.0),
            )),
            ProblemKind::IsentropicVortex => Arc::new(UniformMapping::new(
                RealVect::ZERO,
                RealVect::new(10.0, 10.0, 10.0),
            )),
            ProblemKind::Ramp => Arc::new(RampMapping::paper_dmr()),
        }
    }

    /// Periodicity per direction.
    pub fn periodicity(&self) -> [bool; 3] {
        match self {
            ProblemKind::SodX => [false, true, true],
            ProblemKind::DoubleMach => [false, false, true],
            ProblemKind::IsentropicVortex => [true, true, true],
            ProblemKind::Ramp => [false, false, true],
        }
    }

    /// Initial condition at physical position `x` (t = 0).
    pub fn initial_state(&self, x: RealVect, gas: &PerfectGas) -> Conserved {
        match self {
            ProblemKind::SodX => {
                let w = if x[0] < 0.5 {
                    Primitive {
                        rho: 1.0,
                        vel: [0.0; 3],
                        p: 1.0,
                        t: 0.0,
                    }
                } else {
                    Primitive {
                        rho: 0.125,
                        vel: [0.0; 3],
                        p: 0.1,
                        t: 0.0,
                    }
                };
                Conserved::from_primitive(&w, gas)
            }
            ProblemKind::DoubleMach => {
                let w = if x[0] < dmr::shock_x(x[1], 0.0) {
                    dmr_post_shock()
                } else {
                    dmr_pre_shock()
                };
                Conserved::from_primitive(&w, gas)
            }
            ProblemKind::IsentropicVortex => {
                Conserved::from_primitive(&vortex_state(x, 0.0), gas)
            }
            ProblemKind::Ramp => {
                // Impulsive start: uniform Mach 3 flow everywhere.
                Conserved::from_primitive(&ramp_inflow(), gas)
            }
        }
    }

    /// `true` if the problem exercises the viscous terms.
    pub fn is_viscous(&self) -> bool {
        false // All four canonical cases are inviscid; viscous runs swap the gas.
    }

    /// Default |∇ρ| tagging threshold (per level-0 index spacing).
    pub fn tag_threshold(&self) -> f64 {
        match self {
            ProblemKind::SodX => 0.02,
            ProblemKind::DoubleMach => 0.15,
            ProblemKind::IsentropicVortex => 0.005,
            ProblemKind::Ramp => 0.05,
        }
    }
}

/// The DMR post-shock primitive state (flow at 8.25 directed 30° into the
/// wall, i.e. along the shock normal).
pub fn dmr_post_shock() -> Primitive {
    let (s, c) = (30f64.to_radians().sin(), 30f64.to_radians().cos());
    Primitive {
        rho: dmr::RHO_POST,
        vel: [dmr::Q_POST * c, -dmr::Q_POST * s, 0.0],
        p: dmr::P_POST,
        t: 0.0,
    }
}

/// The DMR pre-shock (quiescent) primitive state.
pub fn dmr_pre_shock() -> Primitive {
    Primitive {
        rho: dmr::RHO_PRE,
        vel: [0.0; 3],
        p: dmr::P_PRE,
        t: 0.0,
    }
}

/// The ramp problem's inflow: Mach 3 at unit density/pressure.
pub fn ramp_inflow() -> Primitive {
    let gas = PerfectGas::nondimensional();
    let a = gas.sound_speed(1.0, 1.0);
    Primitive {
        rho: 1.0,
        vel: [3.0 * a, 0.0, 0.0],
        p: 1.0,
        t: 0.0,
    }
}

/// The exact isentropic-vortex state at physical `x`, time `t`: a vortex of
/// strength β = 5 centered at (5, 5) advecting with the (1, 1, 0) mean flow
/// through the 10-periodic box (2-D vortex extruded in z).
pub fn vortex_state(x: RealVect, t: f64) -> Primitive {
    let gamma = 1.4;
    let beta = 5.0;
    let center = 5.0;
    // Periodic image of the advected center.
    let cx = (center + t).rem_euclid(10.0);
    let cy = (center + t).rem_euclid(10.0);
    // Nearest periodic image displacement.
    let wrap = |d: f64| {
        let mut d = d % 10.0;
        if d > 5.0 {
            d -= 10.0;
        }
        if d < -5.0 {
            d += 10.0;
        }
        d
    };
    let dx = wrap(x[0] - cx);
    let dy = wrap(x[1] - cy);
    let r2 = dx * dx + dy * dy;
    let e = ((1.0 - r2) / 2.0).exp();
    let du = -beta / (2.0 * std::f64::consts::PI) * e * dy;
    let dv = beta / (2.0 * std::f64::consts::PI) * e * dx;
    let dt_ = -(gamma - 1.0) * beta * beta / (8.0 * gamma * std::f64::consts::PI.powi(2))
        * (1.0 - r2).exp();
    let temp = 1.0 + dt_;
    let rho = temp.powf(1.0 / (gamma - 1.0));
    let p = rho * temp;
    Primitive {
        rho,
        vel: [1.0 + du, 1.0 + dv, 0.0],
        p,
        t: temp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::cons;

    #[test]
    fn dmr_shock_front_moves_right() {
        assert!((dmr::shock_x(0.0, 0.0) - dmr::X0).abs() < 1e-15);
        assert!(dmr::shock_x(0.0, 0.1) > dmr::X0);
        assert!(dmr::shock_x(1.0, 0.0) > dmr::X0); // 60° slope
    }

    #[test]
    fn dmr_post_shock_satisfies_rankine_hugoniot() {
        // Mach 10 normal shock into ρ=1.4, p=1 (a = 1): density ratio
        // (γ+1)M²/((γ-1)M²+2) = 6·100/(0.4·100+2)·... = 240/42 ≈ 5.714×1.4 = 8.
        let pre = dmr_pre_shock();
        let post = dmr_post_shock();
        let g = 1.4;
        let m2 = dmr::MACH * dmr::MACH;
        let rho_ratio = (g + 1.0) * m2 / ((g - 1.0) * m2 + 2.0);
        assert!((post.rho / pre.rho - rho_ratio).abs() < 1e-12);
        let p_ratio = 1.0 + 2.0 * g / (g + 1.0) * (m2 - 1.0);
        assert!((post.p / pre.p - p_ratio).abs() < 0.1); // 116.5 is the rounded classic value
        // Post-shock speed: classic 8.25 at 30° into the wall.
        let speed = (post.vel[0].powi(2) + post.vel[1].powi(2)).sqrt();
        assert!((speed - 8.25).abs() < 1e-12);
        assert!(post.vel[1] < 0.0, "flow angles into the wall");
    }

    #[test]
    fn initial_states_are_physical() {
        let probs = [
            ProblemKind::SodX,
            ProblemKind::DoubleMach,
            ProblemKind::IsentropicVortex,
            ProblemKind::Ramp,
        ];
        for pk in probs {
            let gas = pk.gas();
            for &(a, b, c) in &[(0.1, 0.1, 0.1), (0.5, 0.5, 0.5), (0.9, 0.2, 0.8)] {
                let x = pk.mapping().coords(RealVect::new(a, b, c));
                let u = pk.initial_state(x, &gas);
                let w = u.to_primitive(&gas);
                assert!(w.rho > 0.0 && w.p > 0.0, "{pk:?} at {x:?}");
                assert!(u.0[cons::ENER].is_finite());
            }
        }
    }

    #[test]
    fn vortex_is_exact_translation() {
        // state(x, t) == state(x - t·(1,1,0), 0) up to periodic wrap.
        let x = RealVect::new(3.3, 7.1, 0.0);
        let t = 1.7;
        let a = vortex_state(x, t);
        let b = vortex_state(RealVect::new(x[0] - t, x[1] - t, 0.0), 0.0);
        assert!((a.rho - b.rho).abs() < 1e-12);
        assert!((a.p - b.p).abs() < 1e-12);
        for d in 0..3 {
            assert!((a.vel[d] - b.vel[d]).abs() < 1e-12);
        }
    }

    #[test]
    fn vortex_far_field_is_uniform() {
        let w = vortex_state(RealVect::new(0.0, 0.0, 0.0), 0.0); // r = 5√2 from center
        assert!((w.rho - 1.0).abs() < 1e-6);
        assert!((w.vel[0] - 1.0).abs() < 1e-6);
        assert!((w.p - 1.0).abs() < 1e-6);
    }

    #[test]
    fn ramp_inflow_is_mach_3() {
        let gas = PerfectGas::nondimensional();
        let w = ramp_inflow();
        let a = gas.sound_speed(w.rho, w.p);
        assert!((w.vel[0] / a - 3.0).abs() < 1e-12);
    }

    #[test]
    fn dmr_aspect_ratio_is_2_to_1_x_to_z() {
        let m = ProblemKind::DoubleMach.mapping();
        let lo = m.coords(RealVect::ZERO);
        let hi = m.coords(RealVect::splat(1.0));
        let lx = hi[0] - lo[0];
        let lz = hi[2] - lo[2];
        assert!((lx / lz - 2.0).abs() < 1e-12);
    }
}
