//! Exact Riemann solver for the 1-D Euler equations (Toro's iterative
//! star-state solver). Used to validate the WENO solver against the Sod
//! shock-tube solution.

use crate::eos::PerfectGas;
use crate::state::Primitive;

/// A 1-D gas state (density, normal velocity, pressure).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Gas1d {
    /// Density.
    pub rho: f64,
    /// Normal velocity.
    pub u: f64,
    /// Pressure.
    pub p: f64,
}

impl Gas1d {
    /// The Sod left state.
    pub fn sod_left() -> Self {
        Gas1d {
            rho: 1.0,
            u: 0.0,
            p: 1.0,
        }
    }

    /// The Sod right state.
    pub fn sod_right() -> Self {
        Gas1d {
            rho: 0.125,
            u: 0.0,
            p: 0.1,
        }
    }
}

/// Pressure function f_K(p) and its derivative for one side of the Riemann
/// problem (Toro §4.3).
fn pressure_fn(p: f64, s: &Gas1d, gamma: f64) -> (f64, f64) {
    let a = (gamma * s.p / s.rho).sqrt();
    if p > s.p {
        // Shock branch.
        let ak = 2.0 / ((gamma + 1.0) * s.rho);
        let bk = (gamma - 1.0) / (gamma + 1.0) * s.p;
        let q = (ak / (p + bk)).sqrt();
        let f = (p - s.p) * q;
        let df = q * (1.0 - (p - s.p) / (2.0 * (bk + p)));
        (f, df)
    } else {
        // Rarefaction branch.
        let pr = p / s.p;
        let f = 2.0 * a / (gamma - 1.0) * (pr.powf((gamma - 1.0) / (2.0 * gamma)) - 1.0);
        let df = 1.0 / (s.rho * a) * pr.powf(-(gamma + 1.0) / (2.0 * gamma));
        (f, df)
    }
}

/// Solves for the star-region pressure and velocity by Newton iteration.
pub fn star_state(l: &Gas1d, r: &Gas1d, gamma: f64) -> (f64, f64) {
    // Initial guess: two-rarefaction approximation.
    let al = (gamma * l.p / l.rho).sqrt();
    let ar = (gamma * r.p / r.rho).sqrt();
    let z = (gamma - 1.0) / (2.0 * gamma);
    let mut p = ((al + ar - 0.5 * (gamma - 1.0) * (r.u - l.u))
        / (al / l.p.powf(z) + ar / r.p.powf(z)))
    .powf(1.0 / z);
    if !p.is_finite() || p <= 0.0 {
        p = 0.5 * (l.p + r.p);
    }
    for _ in 0..60 {
        let (fl, dfl) = pressure_fn(p, l, gamma);
        let (fr, dfr) = pressure_fn(p, r, gamma);
        let f = fl + fr + (r.u - l.u);
        let step = f / (dfl + dfr);
        let pn = (p - step).max(1e-12);
        if (pn - p).abs() / (0.5 * (pn + p)) < 1e-14 {
            p = pn;
            break;
        }
        p = pn;
    }
    let (fl, _) = pressure_fn(p, l, gamma);
    let (fr, _) = pressure_fn(p, r, gamma);
    let u = 0.5 * (l.u + r.u) + 0.5 * (fr - fl);
    (p, u)
}

/// Samples the exact solution at similarity coordinate `xi = x/t`.
pub fn sample(l: &Gas1d, r: &Gas1d, gamma: f64, xi: f64) -> Gas1d {
    let (ps, us) = star_state(l, r, gamma);
    let g1 = (gamma - 1.0) / (gamma + 1.0);
    if xi <= us {
        // Left of the contact.
        let a = (gamma * l.p / l.rho).sqrt();
        if ps > l.p {
            // Left shock.
            let sl = l.u - a * ((gamma + 1.0) / (2.0 * gamma) * ps / l.p
                + (gamma - 1.0) / (2.0 * gamma))
                .sqrt();
            if xi < sl {
                *l
            } else {
                let rho = l.rho * (ps / l.p + g1) / (g1 * ps / l.p + 1.0);
                Gas1d {
                    rho,
                    u: us,
                    p: ps,
                }
            }
        } else {
            // Left rarefaction.
            let a_star = a * (ps / l.p).powf((gamma - 1.0) / (2.0 * gamma));
            let head = l.u - a;
            let tail = us - a_star;
            if xi < head {
                *l
            } else if xi > tail {
                let rho = l.rho * (ps / l.p).powf(1.0 / gamma);
                Gas1d {
                    rho,
                    u: us,
                    p: ps,
                }
            } else {
                // Inside the fan.
                let u = 2.0 / (gamma + 1.0) * (a + (gamma - 1.0) / 2.0 * l.u + xi);
                let af = a - (gamma - 1.0) / 2.0 * (u - l.u);
                let rho = l.rho * (af / a).powf(2.0 / (gamma - 1.0));
                let p = l.p * (af / a).powf(2.0 * gamma / (gamma - 1.0));
                Gas1d { rho, u, p }
            }
        }
    } else {
        // Right of the contact (mirror).
        let a = (gamma * r.p / r.rho).sqrt();
        if ps > r.p {
            let sr = r.u + a * ((gamma + 1.0) / (2.0 * gamma) * ps / r.p
                + (gamma - 1.0) / (2.0 * gamma))
                .sqrt();
            if xi > sr {
                *r
            } else {
                let rho = r.rho * (ps / r.p + g1) / (g1 * ps / r.p + 1.0);
                Gas1d {
                    rho,
                    u: us,
                    p: ps,
                }
            }
        } else {
            let a_star = a * (ps / r.p).powf((gamma - 1.0) / (2.0 * gamma));
            let head = r.u + a;
            let tail = us + a_star;
            if xi > head {
                *r
            } else if xi < tail {
                let rho = r.rho * (ps / r.p).powf(1.0 / gamma);
                Gas1d {
                    rho,
                    u: us,
                    p: ps,
                }
            } else {
                let u = 2.0 / (gamma + 1.0) * (-a + (gamma - 1.0) / 2.0 * r.u + xi);
                let af = a + (gamma - 1.0) / 2.0 * (u - r.u);
                let rho = r.rho * (af / a).powf(2.0 / (gamma - 1.0));
                let p = r.p * (af / a).powf(2.0 * gamma / (gamma - 1.0));
                Gas1d { rho, u, p }
            }
        }
    }
}

/// Exact Sod-tube solution at position `x ∈ [0, 1]` (diaphragm at 0.5) and
/// time `t`, as a full [`Primitive`].
pub fn sod_exact(x: f64, t: f64, gas: &PerfectGas) -> Primitive {
    let s = if t <= 0.0 {
        if x < 0.5 {
            Gas1d::sod_left()
        } else {
            Gas1d::sod_right()
        }
    } else {
        sample(
            &Gas1d::sod_left(),
            &Gas1d::sod_right(),
            gas.gamma,
            (x - 0.5) / t,
        )
    };
    Primitive {
        rho: s.rho,
        vel: [s.u, 0.0, 0.0],
        p: s.p,
        t: gas.temperature(s.rho, s.p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sod_star_state_matches_literature() {
        // Toro Table 4.1, test 1: p* = 0.30313, u* = 0.92745.
        let (p, u) = star_state(&Gas1d::sod_left(), &Gas1d::sod_right(), 1.4);
        assert!((p - 0.30313).abs() < 1e-4, "p* = {p}");
        assert!((u - 0.92745).abs() < 1e-4, "u* = {u}");
    }

    #[test]
    fn sod_wave_structure_at_t02() {
        let gas = PerfectGas::nondimensional();
        let t = 0.2;
        // Undisturbed far field.
        assert_eq!(sod_exact(0.05, t, &gas).rho, 1.0);
        assert_eq!(sod_exact(0.95, t, &gas).rho, 0.125);
        // Contact: density jumps across x ≈ 0.5 + 0.9274·0.2 = 0.685.
        let dl = sod_exact(0.66, t, &gas).rho;
        let dr = sod_exact(0.70, t, &gas).rho;
        assert!((dl - 0.4263).abs() < 1e-3, "ρ*L = {dl}");
        assert!((dr - 0.2656).abs() < 1e-3, "ρ*R = {dr}");
        // Shock ahead of the contact, around x ≈ 0.85.
        assert!(sod_exact(0.84, t, &gas).p > 0.29);
        assert!((sod_exact(0.88, t, &gas).p - 0.1).abs() < 1e-12);
    }

    #[test]
    fn solution_is_self_similar() {
        let gas = PerfectGas::nondimensional();
        let a = sod_exact(0.6, 0.1, &gas);
        let b = sod_exact(0.7, 0.2, &gas); // same xi = 1.0
        assert!((a.rho - b.rho).abs() < 1e-12);
        assert!((a.p - b.p).abs() < 1e-12);
    }

    #[test]
    fn symmetric_problem_has_zero_contact_velocity() {
        let l = Gas1d {
            rho: 1.0,
            u: 0.0,
            p: 1.0,
        };
        let (p, u) = star_state(&l, &l, 1.4);
        assert!((p - 1.0).abs() < 1e-10);
        assert!(u.abs() < 1e-12);
    }

    #[test]
    fn strong_shock_case_converges() {
        // Toro test 3: pL = 1000, pR = 0.01.
        let l = Gas1d {
            rho: 1.0,
            u: 0.0,
            p: 1000.0,
        };
        let r = Gas1d {
            rho: 1.0,
            u: 0.0,
            p: 0.01,
        };
        let (p, u) = star_state(&l, &r, 1.4);
        assert!((p - 460.894).abs() < 0.1, "p* = {p}");
        assert!((u - 19.5975).abs() < 1e-2, "u* = {u}");
    }
}
