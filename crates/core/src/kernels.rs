//! The CRoCCo numerics kernels: `WENOx/y/z`, `Viscous`, `Update`, and
//! `ComputeDt` (Algorithm 2 of the paper).
//!
//! These are the "optimized C++" kernels of CRoCCo ≥ 1.1: pencil-buffered,
//! flat-indexed implementations. The structurally simpler translations they
//! were validated against live in [`crate::reference`], reproducing the
//! paper's Fortran↔C++ L2-norm methodology (§IV-A).
//!
//! All kernels work in generalized curvilinear coordinates: with
//! `m_d = J·∇ξ_d` the stored contravariant metrics and `V = J·U`, the
//! semi-discrete form is `∂V/∂t = −Σ_d ∂F̂_d/∂ξ_d` with
//! `F̂_d = Σ_j m_dj F_j(U)`, solved on the unit-spaced computational grid.

use crate::charproj::{eigen_system, roe_average};
use crate::eos::PerfectGas;
use crate::metrics::comp as mcomp;
use crate::state::{cons, Conserved, NCONS};
use crate::weno::{reconstruct_face, Reconstruction, WenoVariant, STENCIL_RADIUS};
use crocco_fab::{FArrayBox, FabView};
use crocco_geometry::{IndexBox, IntVect};

/// Ghost cells the kernels require on the state MultiFab: WENO faces read 3
/// cells past the valid region and the two-pass viscous operator reads 4.
pub const NGHOST: i64 = 4;

/// One-direction WENO convective flux: accumulates
/// `−(1/J)·∂F̂_dir/∂ξ_dir` into `rhs` over `valid`.
///
/// `u` needs [`NGHOST`] filled ghost cells; `met` needs metrics on
/// `valid.grow(3)`. `u` is any [`FabView`], so the task-graph path can pass
/// a raw read view of a fab whose ghost shell another task owns.
pub fn weno_flux(
    u: &impl FabView,
    met: &FArrayBox,
    rhs: &mut FArrayBox,
    valid: IndexBox,
    dir: usize,
    gas: &PerfectGas,
    variant: WenoVariant,
) {
    weno_flux_recon(u, met, rhs, valid, dir, gas, variant, Reconstruction::ComponentWise)
}

/// Per-cell quantities the WENO face reconstruction consumes: the
/// contravariant flux, the J-scaled state, the raw conserved state, the
/// direction metric, and the contravariant wave speed.
#[derive(Clone, Copy)]
struct CellFluxData {
    fhat: [f64; NCONS],
    v: [f64; NCONS],
    uraw: [f64; NCONS],
    mvec: [f64; 3],
    speed: f64,
}

/// Evaluates [`CellFluxData`] at cell `p` for sweep direction `dir` — the
/// single definition of the per-cell arithmetic, shared by the pencil gather
/// and the interface-flux recomputation so both are bitwise-identical.
fn gather_cell(
    u: &impl FabView,
    met: &FArrayBox,
    p: IntVect,
    dir: usize,
    gas: &PerfectGas,
) -> CellFluxData {
    let cell = Conserved([
        u.get(p, cons::RHO),
        u.get(p, cons::MX),
        u.get(p, cons::MY),
        u.get(p, cons::MZ),
        u.get(p, cons::ENER),
    ]);
    let jac = met.get(p, mcomp::JAC);
    let mvec = [
        met.get(p, mcomp::M + dir * 3),
        met.get(p, mcomp::M + dir * 3 + 1),
        met.get(p, mcomp::M + dir * 3 + 2),
    ];
    let w = cell.to_primitive(gas);
    let a = gas.sound_speed(w.rho, w.p.max(1e-300));
    let mnorm = (mvec[0] * mvec[0] + mvec[1] * mvec[1] + mvec[2] * mvec[2]).sqrt();
    let uc = mvec[0] * w.vel[0] + mvec[1] * w.vel[1] + mvec[2] * w.vel[2];
    // `speed` uses uc/J — the true contravariant velocity — so that λ·V has
    // flux units. F̂ = Σ_j m_j F_j(U); uc = m·u makes it the J-scaled
    // computational-space flux directly.
    let pn = w.p;
    let v = cell.0.map(|q| jac * q);
    CellFluxData {
        fhat: [
            cell.0[cons::RHO] * uc,
            cell.0[cons::MX] * uc + pn * mvec[0],
            cell.0[cons::MY] * uc + pn * mvec[1],
            cell.0[cons::MZ] * uc + pn * mvec[2],
            (cell.0[cons::ENER] + pn) * uc,
        ],
        v,
        uraw: cell.0,
        mvec,
        speed: (uc.abs() + a * mnorm) / jac,
    }
}

/// Reconstructs the interface flux from a 6-cell window (`slices[0..6]` =
/// cells face−3 … face+2 along the sweep direction). The one definition of
/// the per-face arithmetic shared by the pencil sweep and
/// [`interface_face_flux`].
#[allow(clippy::too_many_arguments)]
fn reconstruct_window_flux(
    fhat: &[[f64; NCONS]],
    v: &[[f64; NCONS]],
    uraw: &[[f64; NCONS]],
    mvecs: &[[f64; 3]],
    speed: &[f64],
    gas: &PerfectGas,
    variant: WenoVariant,
    recon: Reconstruction,
) -> [f64; NCONS] {
    let mut lambda: f64 = 0.0;
    for &s in speed.iter().take(6) {
        lambda = lambda.max(s);
    }
    let mut ff = [0.0; NCONS];
    match recon {
        Reconstruction::ComponentWise => {
            for (c, f) in ff.iter_mut().enumerate() {
                let mut wp = [0.0; 6];
                let mut wm = [0.0; 6];
                for k in 0..6 {
                    let q = 0.5 * (fhat[k][c] + lambda * v[k][c]);
                    wp[k] = q;
                    // Minus flux, reversed orientation.
                    let qm = 0.5 * (fhat[5 - k][c] - lambda * v[5 - k][c]);
                    wm[k] = qm;
                }
                *f = reconstruct_face(&wp, variant) + reconstruct_face(&wm, variant);
            }
        }
        Reconstruction::Characteristic => {
            // Roe eigensystem at the face from the two adjacent cells, with
            // the face normal from the averaged metric.
            let (il, ir) = (2, 3);
            let roe = roe_average(&Conserved(uraw[il]), &Conserved(uraw[ir]), gas);
            let mavg = [
                0.5 * (mvecs[il][0] + mvecs[ir][0]),
                0.5 * (mvecs[il][1] + mvecs[ir][1]),
                0.5 * (mvecs[il][2] + mvecs[ir][2]),
            ];
            let mnorm = (mavg[0] * mavg[0] + mavg[1] * mavg[1] + mavg[2] * mavg[2]).sqrt();
            let normal = [mavg[0] / mnorm, mavg[1] / mnorm, mavg[2] / mnorm];
            let es = eigen_system(&roe, normal, gas);
            // Project split fluxes into characteristic space.
            let mut cp = [[0.0; 6]; NCONS]; // [field][window]
            let mut cm = [[0.0; 6]; NCONS];
            for k in 0..6 {
                let mut qp = [0.0; NCONS];
                let mut qm = [0.0; NCONS];
                for c in 0..NCONS {
                    qp[c] = 0.5 * (fhat[k][c] + lambda * v[k][c]);
                    qm[c] = 0.5 * (fhat[5 - k][c] - lambda * v[5 - k][c]);
                }
                let wp = es.to_characteristic(&qp);
                let wm = es.to_characteristic(&qm);
                for field in 0..NCONS {
                    cp[field][k] = wp[field];
                    cm[field][k] = wm[field];
                }
            }
            let mut what = [0.0; NCONS];
            for field in 0..NCONS {
                what[field] =
                    reconstruct_face(&cp[field], variant) + reconstruct_face(&cm[field], variant);
            }
            ff = es.to_conserved(&what);
        }
    }
    ff
}

/// Recomputes the WENO convective interface flux `F̂_dir` at the **low**
/// face of cell `p` — bitwise-identical to the value the pencil sweep used
/// for that face, because both call the same `gather_cell` /
/// `reconstruct_window_flux` arithmetic over the same 6-cell window
/// (`p−3e_dir … p+2e_dir`). The subcycling flux register records these at
/// coarse/fine interfaces (docs/ARCHITECTURE.md §Subcycling). `u` needs
/// [`NGHOST`] filled ghosts around the window, exactly as the sweep does.
/// Convective flux only: the viscous operator is not registered (reflux is
/// exact for inviscid runs; see `amr::flux_register`).
pub fn interface_face_flux(
    u: &impl FabView,
    met: &FArrayBox,
    p: IntVect,
    dir: usize,
    gas: &PerfectGas,
    variant: WenoVariant,
    recon: Reconstruction,
) -> [f64; NCONS] {
    let mut fhat = [[0.0; NCONS]; 6];
    let mut v = [[0.0; NCONS]; 6];
    let mut uraw = [[0.0; NCONS]; 6];
    let mut mvecs = [[0.0; 3]; 6];
    let mut speed = [0.0; 6];
    for k in 0..6 {
        let mut q = p;
        q[dir] = p[dir] - STENCIL_RADIUS as i64 + k as i64;
        let cd = gather_cell(u, met, q, dir, gas);
        fhat[k] = cd.fhat;
        v[k] = cd.v;
        uraw[k] = cd.uraw;
        mvecs[k] = cd.mvec;
        speed[k] = cd.speed;
    }
    reconstruct_window_flux(&fhat, &v, &uraw, &mvecs, &speed, gas, variant, recon)
}

/// [`weno_flux`] with an explicit reconstruction basis (component-wise or
/// Roe characteristic).
#[allow(clippy::too_many_arguments)]
pub fn weno_flux_recon(
    u: &impl FabView,
    met: &FArrayBox,
    rhs: &mut FArrayBox,
    valid: IndexBox,
    dir: usize,
    gas: &PerfectGas,
    variant: WenoVariant,
    recon: Reconstruction,
) {
    let r = STENCIL_RADIUS as i64;
    let n = valid.length(dir) as usize;
    // Pencil buffers over cells [lo-3, hi+3] along `dir`.
    let m = n + 2 * r as usize;
    let mut fhat = vec![[0.0; NCONS]; m]; // contravariant flux per cell
    let mut v = vec![[0.0; NCONS]; m]; // J·U per cell
    let mut uraw = vec![[0.0; NCONS]; m]; // conserved state per cell
    let mut mvecs = vec![[0.0; 3]; m]; // face-direction metric per cell
    let mut speed = vec![0.0; m]; // contravariant wave speed per cell
    let mut face_flux = vec![[0.0; NCONS]; n + 1];

    // Orthogonal plane of the pencil sweep.
    let (d1, d2) = match dir {
        0 => (1, 2),
        1 => (0, 2),
        _ => (0, 1),
    };
    let mut plane_lo = valid.lo();
    let mut plane_hi = valid.hi();
    plane_lo[dir] = 0;
    plane_hi[dir] = 0;
    for plane in IndexBox::new(plane_lo, plane_hi).cells() {
        // Gather the pencil.
        for (idx, off) in (-r..valid.length(dir) + r).enumerate() {
            let mut p = valid.lo();
            p[d1] = plane[d1];
            p[d2] = plane[d2];
            p[dir] = valid.lo()[dir] + off;
            let cd = gather_cell(u, met, p, dir, gas);
            fhat[idx] = cd.fhat;
            v[idx] = cd.v;
            uraw[idx] = cd.uraw;
            mvecs[idx] = cd.mvec;
            speed[idx] = cd.speed;
        }
        // Reconstruct each face lo-½ … hi+½ (n+1 faces): face f sits
        // between valid-offset cells f-1 and f, window = pencil f..f+5.
        for (f, ff) in face_flux.iter_mut().enumerate() {
            let base = f; // window start in pencil indexing
            *ff = reconstruct_window_flux(
                &fhat[base..base + 6],
                &v[base..base + 6],
                &uraw[base..base + 6],
                &mvecs[base..base + 6],
                &speed[base..base + 6],
                gas,
                variant,
                recon,
            );
        }
        // Flux difference into rhs.
        for i in 0..n {
            let mut p = valid.lo();
            p[d1] = plane[d1];
            p[d2] = plane[d2];
            p[dir] = valid.lo()[dir] + i as i64;
            let jac = met.get(p, mcomp::JAC);
            for (c, (&fp, &fm)) in face_flux[i + 1].iter().zip(&face_flux[i]).enumerate() {
                rhs.add(p, c, -(fp - fm) / jac);
            }
        }
    }
}

/// 4th-order central viscous fluxes: accumulates the divergence of the
/// viscous stress and heat flux into `rhs` over `valid` (no-op for inviscid
/// gases without an SGS model). Two passes through a global-memory-style
/// scratch fab, mirroring the GPU port's staging strategy (§IV-B). With
/// `sgs` set, the Smagorinsky eddy viscosity augments the molecular one —
/// the filtered-equation LES mode of §II-A.
pub fn viscous_flux(
    u: &impl FabView,
    met: &FArrayBox,
    rhs: &mut FArrayBox,
    valid: IndexBox,
    gas: &PerfectGas,
) {
    viscous_flux_les(u, met, rhs, valid, gas, None)
}

/// [`viscous_flux`] with an optional Smagorinsky SGS closure.
pub fn viscous_flux_les(
    u: &impl FabView,
    met: &FArrayBox,
    rhs: &mut FArrayBox,
    valid: IndexBox,
    gas: &PerfectGas,
    sgs: Option<&crate::sgs::Smagorinsky>,
) {
    if gas.mu_ref == 0.0 && sgs.is_none() {
        return;
    }
    let work = valid.grow(2);
    // Scratch 1: primitive fields u, v, w, T over the stencil-extended work
    // region (this is one of the §IV-B global-memory staging arrays).
    let prim_region = work.grow(2);
    let mut prims = FArrayBox::new(prim_region, 4);
    for p in prim_region.cells() {
        let w = Conserved([
            u.get(p, cons::RHO),
            u.get(p, cons::MX),
            u.get(p, cons::MY),
            u.get(p, cons::MZ),
            u.get(p, cons::ENER),
        ])
        .to_primitive(gas);
        prims.set(p, 0, w.vel[0]);
        prims.set(p, 1, w.vel[1]);
        prims.set(p, 2, w.vel[2]);
        prims.set(p, 3, w.t);
    }
    // Scratch 2: contravariant viscous flux, 3 dirs × NCONS comps.
    let mut scratch = FArrayBox::new(work, 3 * NCONS);

    // Pass 1: physical velocity/temperature gradients → stress/heat flux →
    // contravariant viscous flux at each cell of the work region.
    for p in work.cells() {
        let jac = met.get(p, mcomp::JAC);
        // Computational gradients of u, v, w, T (4th-order central).
        let mut dcomp = [[0.0; 3]; 4]; // [field][xi-dir]
        for (fi, row) in dcomp.iter_mut().enumerate() {
            for (xi, dc) in row.iter_mut().enumerate() {
                let e = IntVect::unit(xi);
                *dc = (prims.get(p - e * 2, fi) - 8.0 * prims.get(p - e, fi)
                    + 8.0 * prims.get(p + e, fi)
                    - prims.get(p + e * 2, fi))
                    / 12.0;
            }
        }
        // Transform to physical space: ∂φ/∂x_j = Σ_d (m_dj/J) ∂φ/∂ξ_d.
        let mut dphys = [[0.0; 3]; 4];
        for (row, dp_row) in dcomp.iter().zip(dphys.iter_mut()) {
            for (j, dp) in dp_row.iter_mut().enumerate() {
                let mut s = 0.0;
                for (d, &r) in row.iter().enumerate() {
                    s += met.get(p, mcomp::M + d * 3 + j) / jac * r;
                }
                *dp = s;
            }
        }
        let w_vel = [prims.get(p, 0), prims.get(p, 1), prims.get(p, 2)];
        let w_t = prims.get(p, 3);
        let mut mu = gas.viscosity(w_t);
        let mut k = gas.conductivity(w_t);
        if let Some(model) = sgs {
            // Turbulent Prandtl number 0.9 for the SGS heat flux.
            let mu_t = model.eddy_viscosity(u, met, p, gas);
            mu += mu_t;
            k += mu_t * gas.cp() / 0.9;
        }
        let div = dphys[0][0] + dphys[1][1] + dphys[2][2];
        // Stress tensor τ_ij = μ(∂u_i/∂x_j + ∂u_j/∂x_i − ⅔ δ_ij ∇·u).
        let mut tau = [[0.0; 3]; 3];
        for i in 0..3 {
            for j in 0..3 {
                tau[i][j] = mu * (dphys[i][j] + dphys[j][i]);
            }
            tau[i][i] -= 2.0 / 3.0 * mu * div;
        }
        // Cartesian viscous flux vectors Fv_j, then contravariant transform.
        for d in 0..3 {
            let mvec = [
                met.get(p, mcomp::M + d * 3),
                met.get(p, mcomp::M + d * 3 + 1),
                met.get(p, mcomp::M + d * 3 + 2),
            ];
            let mut fv = [0.0; NCONS];
            for j in 0..3 {
                // Momentum: Σ_j m_j τ_{i j}.
                fv[cons::MX] += mvec[j] * tau[0][j];
                fv[cons::MY] += mvec[j] * tau[1][j];
                fv[cons::MZ] += mvec[j] * tau[2][j];
                // Energy: Σ_j m_j (u_i τ_{i j} + k ∂T/∂x_j).
                let work_term =
                    w_vel[0] * tau[0][j] + w_vel[1] * tau[1][j] + w_vel[2] * tau[2][j];
                fv[cons::ENER] += mvec[j] * (work_term + k * dphys[3][j]);
            }
            for (c, &f) in fv.iter().enumerate() {
                scratch.set(p, d * NCONS + c, f);
            }
        }
    }

    // Pass 2: divergence of the contravariant viscous flux.
    for p in valid.cells() {
        let jac = met.get(p, mcomp::JAC);
        for c in 0..NCONS {
            let mut s = 0.0;
            for d in 0..3 {
                let e = IntVect::unit(d);
                s += (scratch.get(p - e * 2, d * NCONS + c)
                    - 8.0 * scratch.get(p - e, d * NCONS + c)
                    + 8.0 * scratch.get(p + e, d * NCONS + c)
                    - scratch.get(p + e * 2, d * NCONS + c))
                    / 12.0;
            }
            rhs.add(p, c, s / jac);
        }
    }
}

/// CFL-constrained time step over one patch: returns
/// `min over cells of CFL / Σ_d (|m_d·u| + a‖m_d‖)/J` — the curvilinear form
/// of Eq. 3.
pub fn compute_dt_patch(
    u: &impl FabView,
    met: &FArrayBox,
    valid: IndexBox,
    gas: &PerfectGas,
    cfl: f64,
) -> f64 {
    let mut dt = f64::INFINITY;
    for p in valid.cells() {
        let w = Conserved([
            u.get(p, cons::RHO),
            u.get(p, cons::MX),
            u.get(p, cons::MY),
            u.get(p, cons::MZ),
            u.get(p, cons::ENER),
        ])
        .to_primitive(gas);
        let a = gas.sound_speed(w.rho, w.p.max(1e-300));
        let jac = met.get(p, mcomp::JAC);
        let mut sum = 0.0;
        for d in 0..3 {
            let mvec = [
                met.get(p, mcomp::M + d * 3),
                met.get(p, mcomp::M + d * 3 + 1),
                met.get(p, mcomp::M + d * 3 + 2),
            ];
            let mnorm = (mvec[0] * mvec[0] + mvec[1] * mvec[1] + mvec[2] * mvec[2]).sqrt();
            let uc = mvec[0] * w.vel[0] + mvec[1] * w.vel[1] + mvec[2] * w.vel[2];
            sum += (uc.abs() + a * mnorm) / jac;
        }
        if sum > 0.0 {
            dt = dt.min(cfl / sum);
        }
    }
    dt
}

/// Magnitude of the computational-space gradient of component `comp` of `u`
/// (2nd-order central), written into component 0 of `out` over `valid` — the
/// |∇ρ| / |∇(ρuᵢ)| regridding criteria of §II-B. Requires 1 ghost on `u`.
pub fn gradient_magnitude(u: &FArrayBox, out: &mut FArrayBox, valid: IndexBox, comp: usize) {
    for p in valid.cells() {
        let mut g2 = 0.0;
        for d in 0..3 {
            let e = IntVect::unit(d);
            let g = 0.5 * (u.get(p + e, comp) - u.get(p - e, comp));
            g2 += g * g;
        }
        out.set(p, 0, g2.sqrt());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{compute_metrics, generate_coords, NCOORDS, NMETRICS};
    use crate::state::Primitive;
    use crocco_fab::{BoxArray, DistributionMapping, MultiFab};
    use crocco_geometry::{GridMapping, IndexBox, RealVect, StretchedMapping, UniformMapping};
    use std::sync::Arc;

    fn single_patch(extents: IntVect, mapping: &dyn GridMapping) -> (MultiFab, MultiFab) {
        let bx = IndexBox::from_extents(extents[0], extents[1], extents[2]);
        let ba = Arc::new(BoxArray::new(vec![bx]));
        let dm = Arc::new(DistributionMapping::all_on_root(&ba));
        let mut coords = MultiFab::new(ba.clone(), dm.clone(), NCOORDS, NGHOST + 2);
        generate_coords(mapping, extents, &mut coords);
        let mut metrics = MultiFab::new(ba.clone(), dm.clone(), NMETRICS, NGHOST);
        compute_metrics(&coords, &mut metrics);
        let state = MultiFab::new(ba, dm, NCONS, NGHOST);
        (state, metrics)
    }

    fn set_uniform(state: &mut MultiFab, w: &Primitive, gas: &PerfectGas) {
        let u = Conserved::from_primitive(w, gas);
        for i in 0..state.nfabs() {
            let bx = state.fab(i).bx();
            for p in bx.cells() {
                for c in 0..NCONS {
                    state.fab_mut(i).set(p, c, u.0[c]);
                }
            }
        }
    }

    #[test]
    fn freestream_preserved_on_uniform_grid() {
        let gas = PerfectGas::nondimensional();
        let map = UniformMapping::new(RealVect::ZERO, RealVect::new(2.0, 1.0, 1.0));
        let (mut state, metrics) = single_patch(IntVect::new(16, 8, 8), &map);
        let w = Primitive {
            rho: 1.0,
            vel: [0.7, -0.3, 0.2],
            p: 1.0,
            t: 0.0,
        };
        set_uniform(&mut state, &w, &gas);
        let valid = state.valid_box(0);
        let mut rhs = FArrayBox::new(valid, NCONS);
        for dir in 0..3 {
            weno_flux(
                state.fab(0),
                metrics.fab(0),
                &mut rhs,
                valid,
                dir,
                &gas,
                WenoVariant::Js5,
            );
        }
        for p in valid.cells() {
            for c in 0..NCONS {
                assert!(
                    rhs.get(p, c).abs() < 1e-10,
                    "freestream violated: rhs[{c}]={} at {p:?}",
                    rhs.get(p, c)
                );
            }
        }
    }

    #[test]
    fn freestream_error_small_on_stretched_grid() {
        let gas = PerfectGas::nondimensional();
        let map = StretchedMapping::new(RealVect::ZERO, RealVect::splat(1.0), 1.2, 1);
        let (mut state, metrics) = single_patch(IntVect::new(8, 32, 8), &map);
        let w = Primitive {
            rho: 1.0,
            vel: [0.5, 0.1, 0.0],
            p: 1.0,
            t: 0.0,
        };
        set_uniform(&mut state, &w, &gas);
        let valid = state.valid_box(0);
        let mut rhs = FArrayBox::new(valid, NCONS);
        for dir in 0..3 {
            weno_flux(
                state.fab(0),
                metrics.fab(0),
                &mut rhs,
                valid,
                dir,
                &gas,
                WenoVariant::CentralSym6,
            );
        }
        // Metric cancellation is only approximate discretely; the residual
        // must be at the truncation level, far below the flux magnitude.
        let interior = valid.grow(-3);
        for p in interior.cells() {
            for c in 0..NCONS {
                assert!(
                    rhs.get(p, c).abs() < 5e-4,
                    "rhs[{c}]={} at {p:?}",
                    rhs.get(p, c)
                );
            }
        }
    }

    #[test]
    fn advection_moves_density_downstream() {
        // A density bump advecting in +x must produce negative d(rho)/dt
        // ahead of... rather: total mass tendency must vanish (periodic-like
        // interior check) and the bump's tendency must be antisymmetric.
        let gas = PerfectGas::nondimensional();
        let map = UniformMapping::unit();
        let (mut state, metrics) = single_patch(IntVect::new(32, 4, 4), &map);
        let w0 = Primitive {
            rho: 1.0,
            vel: [1.0, 0.0, 0.0],
            p: 1.0,
            t: 0.0,
        };
        set_uniform(&mut state, &w0, &gas);
        // Superimpose a smooth density bump (same velocity/pressure).
        let valid = state.valid_box(0);
        let all = state.fab(0).bx();
        for p in all.cells() {
            let x = (p[0] as f64 + 0.5) / 32.0;
            let rho = 1.0 + 0.1 * (-(200.0 * (x - 0.5) * (x - 0.5))).exp();
            let w = Primitive {
                rho,
                vel: [1.0, 0.0, 0.0],
                p: 1.0,
                t: 0.0,
            };
            let u = Conserved::from_primitive(&w, &gas);
            for c in 0..NCONS {
                state.fab_mut(0).set(p, c, u.0[c]);
            }
        }
        let mut rhs = FArrayBox::new(valid, NCONS);
        weno_flux(
            state.fab(0),
            metrics.fab(0),
            &mut rhs,
            valid,
            0,
            &gas,
            WenoVariant::Js5,
        );
        // d(rho)/dt = -d(rho u)/dx: negative upwind of the bump peak's lee
        // side, positive on the windward side... check the sign pattern:
        // ahead of the bump (x>0.5) density must increase, behind decrease.
        let probe_ahead = IntVect::new(19, 2, 2); // x ≈ 0.61
        let probe_behind = IntVect::new(12, 2, 2); // x ≈ 0.39
        assert!(rhs.get(probe_ahead, cons::RHO) > 0.0);
        assert!(rhs.get(probe_behind, cons::RHO) < 0.0);
        // Interior mass tendency sums to ≈ boundary flux difference: with a
        // bump fully interior, the sum telescopes to face fluxes at the
        // domain edge where the state is uniform ⇒ ≈ 0.
        let total: f64 = valid.cells().map(|p| rhs.get(p, cons::RHO)).sum();
        assert!(total.abs() < 1e-8, "mass tendency {total}");
    }

    #[test]
    fn interface_face_flux_reproduces_the_pencil_sweep_bitwise() {
        // Rebuild a patch's rhs from per-face interface_face_flux calls and
        // demand bitwise equality with weno_flux_recon — the property the
        // subcycling flux register depends on.
        let gas = PerfectGas::nondimensional();
        let map = StretchedMapping::new(RealVect::ZERO, RealVect::splat(1.0), 1.15, 0);
        let (mut state, metrics) = single_patch(IntVect::new(12, 8, 8), &map);
        let all = state.fab(0).bx();
        for p in all.cells() {
            let x = (p[0] as f64 + 0.5) / 12.0;
            let y = (p[1] as f64 + 0.5) / 8.0;
            let w = Primitive {
                rho: 1.0 + 0.2 * (3.0 * x).sin() * (2.0 * y).cos(),
                vel: [0.6 + 0.1 * (2.0 * x).cos(), -0.2, 0.1],
                p: 1.0 + 0.1 * (2.0 * y).sin(),
                t: 0.0,
            };
            let u = Conserved::from_primitive(&w, &gas);
            for c in 0..NCONS {
                state.fab_mut(0).set(p, c, u.0[c]);
            }
        }
        let valid = state.valid_box(0);
        for recon in [Reconstruction::ComponentWise, Reconstruction::Characteristic] {
            let mut rhs = FArrayBox::new(valid, NCONS);
            let mut rebuilt = FArrayBox::new(valid, NCONS);
            for dir in 0..3 {
                weno_flux_recon(
                    state.fab(0),
                    metrics.fab(0),
                    &mut rhs,
                    valid,
                    dir,
                    &gas,
                    WenoVariant::Symbo,
                    recon,
                );
                let e = IntVect::unit(dir);
                for p in valid.cells() {
                    let fm = interface_face_flux(
                        state.fab(0),
                        metrics.fab(0),
                        p,
                        dir,
                        &gas,
                        WenoVariant::Symbo,
                        recon,
                    );
                    let fp = interface_face_flux(
                        state.fab(0),
                        metrics.fab(0),
                        p + e,
                        dir,
                        &gas,
                        WenoVariant::Symbo,
                        recon,
                    );
                    let jac = metrics.fab(0).get(p, mcomp::JAC);
                    for c in 0..NCONS {
                        rebuilt.add(p, c, -(fp[c] - fm[c]) / jac);
                    }
                }
            }
            for p in valid.cells() {
                for c in 0..NCONS {
                    assert_eq!(
                        rhs.get(p, c).to_bits(),
                        rebuilt.get(p, c).to_bits(),
                        "{recon:?}: face-rebuilt rhs differs at {p:?} comp {c}"
                    );
                }
            }
        }
    }

    #[test]
    fn compute_dt_matches_closed_form_on_uniform_grid() {
        let gas = PerfectGas::nondimensional();
        let map = UniformMapping::unit();
        let (mut state, metrics) = single_patch(IntVect::new(8, 8, 8), &map);
        let w = Primitive {
            rho: 1.0,
            vel: [0.5, 0.0, 0.0],
            p: 1.0,
            t: 0.0,
        };
        set_uniform(&mut state, &w, &gas);
        let dt = compute_dt_patch(state.fab(0), metrics.fab(0), state.valid_box(0), &gas, 0.8);
        // dx = 1/8 per direction; wave speeds: (|u_d| + a)/dx summed.
        let a = gas.sound_speed(1.0, 1.0);
        let expect = 0.8 / (((0.5 + a) + a + a) * 8.0);
        assert!((dt - expect).abs() / expect < 1e-12, "{dt} vs {expect}");
    }

    #[test]
    fn viscous_diffuses_shear_layer() {
        let gas = PerfectGas::air();
        let map = UniformMapping::new(RealVect::ZERO, RealVect::splat(1e-3));
        let (mut state, metrics) = single_patch(IntVect::new(8, 32, 8), &map);
        // Shear: u(y) = tanh profile, uniform rho/T.
        let all = state.fab(0).bx();
        for p in all.cells() {
            let y = (p[1] as f64 + 0.5) / 32.0;
            let w = Primitive {
                rho: 1.0,
                vel: [100.0 * (10.0 * (y - 0.5)).tanh(), 0.0, 0.0],
                p: 101325.0,
                t: 0.0,
            };
            let u = Conserved::from_primitive(&w, &gas);
            for c in 0..NCONS {
                state.fab_mut(0).set(p, c, u.0[c]);
            }
        }
        let valid = state.valid_box(0);
        let mut rhs = FArrayBox::new(valid, NCONS);
        viscous_flux(state.fab(0), metrics.fab(0), &mut rhs, valid, &gas);
        // Viscosity smooths the profile: x-momentum tendency must be
        // negative above the center (u decreasing toward the mean) and
        // positive below.
        let above = IntVect::new(4, 17, 4);
        let below = IntVect::new(4, 14, 4);
        assert!(rhs.get(above, cons::MX) < 0.0, "{}", rhs.get(above, cons::MX));
        assert!(rhs.get(below, cons::MX) > 0.0);
        // And x-momentum must be conserved in total (flux form telescopes;
        // boundary fluxes vanish since tanh is flat at the edges).
        let total: f64 = valid.cells().map(|p| rhs.get(p, cons::MX)).sum();
        let scale: f64 = valid
            .cells()
            .map(|p| rhs.get(p, cons::MX).abs())
            .sum::<f64>()
            .max(1e-300);
        assert!(total.abs() / scale < 1e-8, "momentum leak {}", total / scale);
    }

    #[test]
    fn inviscid_gas_viscous_kernel_is_noop() {
        let gas = PerfectGas::nondimensional();
        let map = UniformMapping::unit();
        let (mut state, metrics) = single_patch(IntVect::new(8, 8, 8), &map);
        set_uniform(
            &mut state,
            &Primitive {
                rho: 1.0,
                vel: [1.0, 2.0, 3.0],
                p: 1.0,
                t: 0.0,
            },
            &gas,
        );
        let valid = state.valid_box(0);
        let mut rhs = FArrayBox::new(valid, NCONS);
        viscous_flux(state.fab(0), metrics.fab(0), &mut rhs, valid, &gas);
        assert!(rhs.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn gradient_magnitude_flags_interfaces() {
        let gas = PerfectGas::nondimensional();
        let map = UniformMapping::unit();
        let (mut state, _metrics) = single_patch(IntVect::new(16, 4, 4), &map);
        let all = state.fab(0).bx();
        for p in all.cells() {
            let rho = if p[0] < 8 { 1.0 } else { 2.0 };
            let u = Conserved::from_primitive(
                &Primitive {
                    rho,
                    vel: [0.0; 3],
                    p: 1.0,
                    t: 0.0,
                },
                &gas,
            );
            for c in 0..NCONS {
                state.fab_mut(0).set(p, c, u.0[c]);
            }
        }
        let valid = state.valid_box(0);
        let mut g = FArrayBox::new(valid, 1);
        gradient_magnitude(state.fab(0), &mut g, valid, cons::RHO);
        assert!(g.get(IntVect::new(7, 2, 2), 0) > 0.4);
        assert!(g.get(IntVect::new(8, 2, 2), 0) > 0.4);
        assert_eq!(g.get(IntVect::new(2, 2, 2), 0), 0.0);
        assert_eq!(g.get(IntVect::new(13, 2, 2), 0), 0.0);
    }
}

#[cfg(test)]
mod characteristic_tests {
    use super::*;
    use crate::metrics::{compute_metrics, generate_coords, NCOORDS, NMETRICS};
    use crate::state::Primitive;
    use crate::weno::Reconstruction;
    use crocco_fab::{BoxArray, DistributionMapping, MultiFab};
    use crocco_geometry::{IndexBox, StretchedMapping, RealVect};
    use std::sync::Arc;

    fn stretched_patch() -> (MultiFab, MultiFab, PerfectGas) {
        let gas = PerfectGas::nondimensional();
        let extents = IntVect::new(16, 8, 8);
        let bx = IndexBox::from_extents(16, 8, 8);
        let ba = Arc::new(BoxArray::new(vec![bx]));
        let dm = Arc::new(DistributionMapping::all_on_root(&ba));
        let map = StretchedMapping::new(RealVect::ZERO, RealVect::splat(1.0), 1.3, 0);
        let mut coords = MultiFab::new(ba.clone(), dm.clone(), NCOORDS, NGHOST + 2);
        generate_coords(&map, extents, &mut coords);
        let mut metrics = MultiFab::new(ba.clone(), dm.clone(), NMETRICS, NGHOST);
        compute_metrics(&coords, &mut metrics);
        let state = MultiFab::new(ba, dm, NCONS, NGHOST);
        (state, metrics, gas)
    }

    #[test]
    fn characteristic_reconstruction_preserves_freestream() {
        let (mut state, metrics, gas) = stretched_patch();
        let w = Primitive {
            rho: 1.0,
            vel: [0.4, -0.2, 0.1],
            p: 1.0,
            t: 0.0,
        };
        let u = Conserved::from_primitive(&w, &gas);
        let all = state.fab(0).bx();
        for p in all.cells() {
            for c in 0..NCONS {
                state.fab_mut(0).set(p, c, u.0[c]);
            }
        }
        let valid = state.valid_box(0);
        let mut rhs = FArrayBox::new(valid, NCONS);
        for dir in 0..3 {
            weno_flux_recon(
                state.fab(0),
                metrics.fab(0),
                &mut rhs,
                valid,
                dir,
                &gas,
                WenoVariant::Js5,
                Reconstruction::Characteristic,
            );
        }
        for p in valid.grow(-3).cells() {
            for c in 0..NCONS {
                assert!(
                    rhs.get(p, c).abs() < 5e-4,
                    "freestream rhs[{c}] = {} at {p:?}",
                    rhs.get(p, c)
                );
            }
        }
    }

    #[test]
    fn characteristic_and_componentwise_agree_on_smooth_flow() {
        let (mut state, metrics, gas) = stretched_patch();
        let all = state.fab(0).bx();
        for p in all.cells() {
            let x = p[0] as f64 / 16.0;
            let w = Primitive {
                rho: 1.0 + 0.05 * (6.3 * x).sin(),
                vel: [0.5, 0.1, -0.05],
                p: 1.0 + 0.02 * (6.3 * x).cos(),
                t: 0.0,
            };
            let u = Conserved::from_primitive(&w, &gas);
            for c in 0..NCONS {
                state.fab_mut(0).set(p, c, u.0[c]);
            }
        }
        let valid = state.valid_box(0);
        let mut rhs_comp = FArrayBox::new(valid, NCONS);
        let mut rhs_char = FArrayBox::new(valid, NCONS);
        weno_flux_recon(
            state.fab(0), metrics.fab(0), &mut rhs_comp, valid, 0, &gas,
            WenoVariant::Js5, Reconstruction::ComponentWise,
        );
        weno_flux_recon(
            state.fab(0), metrics.fab(0), &mut rhs_char, valid, 0, &gas,
            WenoVariant::Js5, Reconstruction::Characteristic,
        );
        // Smooth data: both bases converge to the same flux divergence; the
        // difference is at the nonlinear-weight noise level, far below the
        // signal.
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for p in valid.cells() {
            for c in 0..NCONS {
                num += (rhs_comp.get(p, c) - rhs_char.get(p, c)).powi(2);
                den += rhs_comp.get(p, c).powi(2);
            }
        }
        let rel = (num / den.max(1e-300)).sqrt();
        assert!(rel < 0.05, "bases diverge on smooth flow: rel {rel}");
        assert!(den > 0.0, "degenerate test: zero RHS");
    }
}
