//! Subcycling support structures: per-level-pair flux registers with
//! deterministic per-patch recording buffers (docs/ARCHITECTURE.md
//! §Subcycling).
//!
//! With `SolverConfig::subcycling` on, level `ℓ` advances with `dt/2^ℓ` and
//! the coarse/fine interface sees *different* time integrals of the flux from
//! the two sides. [`InterfaceReg`] wraps an [`FluxRegister`] with the
//! recording geometry resolved once per regrid generation:
//!
//! - `coarse_faces[p]` — for coarse patch `p`, every register face inside its
//!   valid box, each with the cell whose *low* `dir`-face is the shared face
//!   (the evaluation point for [`interface_face_flux`]).
//! - `fine_faces[j]` — for fine patch `j`, every boundary face of the patch
//!   that lands on the coarse/fine interface (faces against a *neighboring
//!   fine patch* map to covered coarse cells and drop out via
//!   [`FluxRegister::contains`]).
//!
//! Fluxes are accumulated per stage into per-patch `Mutex<Vec<f64>>` buffers
//! weighted by [`TimeScheme::net_flux_weight`], then folded into the register
//! once per (sub)step — coarse side with weight 1, fine side with
//! `dt_fine/dt_coarse`. Keeping the two sides separate per face (and folding
//! in canonical patch order) makes the accumulation order independent of
//! execution mode and rank count, so serial, overlapped, and owned-data
//! subcycling agree bitwise (`tests/subcycle_invariance.rs`).
//!
//! Faces on the physical domain boundary are excluded (`coarse_domain`
//! filter): there is no coarse flux to repair against. This also excludes
//! periodically-wrapped interfaces — a fine level touching a periodic
//! boundary falls back to AverageDown-only conservation there.
//!
//! [`interface_face_flux`]: crate::kernels::interface_face_flux
//! [`TimeScheme::net_flux_weight`]: crate::integrators::TimeScheme::net_flux_weight

use crate::eos::PerfectGas;
use crate::kernels::interface_face_flux;
use crate::state::NCONS;
use crate::weno::{Reconstruction, WenoVariant};
use crocco_amr::flux_register::{FluxRegister, InterfaceFace};
use crocco_fab::{BoxArray, FArrayBox, FabView};
use crocco_geometry::{IndexBox, IntVect};
use std::sync::{Arc, Mutex};

/// Per-substep context threaded through the fill/advance paths when
/// subcycling. `None` everywhere means the lockstep path (bitwise-unchanged).
#[derive(Clone, Copy, Debug)]
pub(crate) struct SubCtx {
    /// The time at the start of this (sub)step — the boundary-condition
    /// evaluation time for fills.
    pub t: f64,
    /// Coarse old/new blend factor for two-level fills: `Some((t_fill −
    /// t_coarse_old)/dt_coarse)` on refined levels, `None` at level 0.
    pub alpha: Option<f64>,
}

/// One register face plus the cell whose **low** `key.dir`-face is the shared
/// coarse/fine face, in the recording level's own index space.
#[derive(Clone, Copy, Debug)]
pub(crate) struct RegFace {
    /// The register key (coarse index space).
    pub key: InterfaceFace,
    /// Flux evaluation cell: [`interface_face_flux`] computes the flux
    /// through the low face of this cell.
    pub eval: IntVect,
}

/// The flux register for one coarse/fine level pair plus the per-patch
/// recording geometry and stage-accumulation buffers.
pub(crate) struct InterfaceReg {
    /// The underlying register (coarse index space of the pair).
    pub register: FluxRegister,
    /// The fine BoxArray this geometry was resolved against (identity-compared
    /// to detect regrids).
    pub fine_ba: Arc<BoxArray>,
    /// The coarse BoxArray this geometry was resolved against.
    pub coarse_ba: Arc<BoxArray>,
    /// Per coarse patch: register faces inside its valid box.
    pub coarse_faces: Vec<Vec<RegFace>>,
    /// Per fine patch: its boundary faces on the coarse/fine interface.
    pub fine_faces: Vec<Vec<RegFace>>,
    /// Per coarse patch: `coarse_faces[p].len() × NCONS` stage accumulator.
    pub coarse_buf: Vec<Mutex<Vec<f64>>>,
    /// Per fine patch: `fine_faces[j].len() × NCONS` stage accumulator.
    pub fine_buf: Vec<Mutex<Vec<f64>>>,
    /// Owned-mode reflux shipping manifest: `(fine patch j, coarse patch p,
    /// unique register faces)` for every pair sharing interface faces, in
    /// deterministic `(j, first-occurrence)` order. Blocked grids put all
    /// `ratio²` fine sub-faces of a coarse face inside **one** fine patch, so
    /// each face appears exactly once and a shipped fine-side sum merges onto
    /// an all-zero accumulator on the coarse owner — bitwise what a single
    /// rank would have folded.
    pub fine_ship: Vec<(usize, usize, Vec<InterfaceFace>)>,
}

impl InterfaceReg {
    /// Resolves the recording geometry for one level pair. `coarse_domain` is
    /// the coarse level's index-space domain box (faces outside it are
    /// dropped).
    pub(crate) fn build(
        coarse_ba: &Arc<BoxArray>,
        fine_ba: &Arc<BoxArray>,
        coarse_domain: IndexBox,
        ratio: IntVect,
    ) -> Self {
        let register = FluxRegister::new(fine_ba, ratio, NCONS);
        let coarse_faces: Vec<Vec<RegFace>> = (0..coarse_ba.len())
            .map(|p| {
                register
                    .faces_in(coarse_ba.get(p))
                    .into_iter()
                    .filter(|f| coarse_domain.contains(f.cell))
                    .map(|f| RegFace {
                        // sign −1 marks the coarse cell's high face: the low
                        // face of the next cell up in `dir`.
                        eval: if f.sign < 0 {
                            f.cell + IntVect::unit(f.dir)
                        } else {
                            f.cell
                        },
                        key: f,
                    })
                    .collect()
            })
            .collect();
        let fine_faces: Vec<Vec<RegFace>> = (0..fine_ba.len())
            .map(|j| {
                let vb = fine_ba.get(j);
                let mut faces = Vec::new();
                for dir in 0..3 {
                    let e = IntVect::unit(dir);
                    for high in [false, true] {
                        let mut lo = vb.lo();
                        let mut hi = vb.hi();
                        if high {
                            lo[dir] = vb.hi()[dir];
                        } else {
                            hi[dir] = vb.lo()[dir];
                        }
                        for q in IndexBox::new(lo, hi).cells() {
                            let f = register.fine_face(q, dir, high);
                            if register.contains(&f) && coarse_domain.contains(f.cell) {
                                // The fine cell's high face is the low face of
                                // its `dir`-neighbor.
                                faces.push(RegFace {
                                    key: f,
                                    eval: if high { q + e } else { q },
                                });
                            }
                        }
                    }
                }
                faces
            })
            .collect();
        let coarse_buf = coarse_faces
            .iter()
            .map(|f| Mutex::new(vec![0.0; f.len() * NCONS]))
            .collect();
        let fine_buf = fine_faces
            .iter()
            .map(|f| Mutex::new(vec![0.0; f.len() * NCONS]))
            .collect();
        // Reflux shipping manifest: each register face lives in exactly one
        // coarse patch (coarse patches are disjoint), so inverting
        // `coarse_faces` gives the destination patch per face.
        let face_patch: std::collections::HashMap<InterfaceFace, usize> = coarse_faces
            .iter()
            .enumerate()
            .flat_map(|(p, faces)| faces.iter().map(move |rf| (rf.key, p)))
            .collect();
        let mut fine_ship: Vec<(usize, usize, Vec<InterfaceFace>)> = Vec::new();
        for (j, faces) in fine_faces.iter().enumerate() {
            let mut seen = std::collections::HashSet::new();
            for rf in faces {
                if !seen.insert(rf.key) {
                    continue;
                }
                let Some(&p) = face_patch.get(&rf.key) else {
                    // No coarse patch holds the cell: reflux cannot reach it
                    // (proper nesting makes this unreachable in practice).
                    continue;
                };
                match fine_ship.last_mut() {
                    Some((lj, lp, list)) if *lj == j && *lp == p => list.push(rf.key),
                    _ => fine_ship.push((j, p, vec![rf.key])),
                }
            }
        }
        InterfaceReg {
            register,
            fine_ba: fine_ba.clone(),
            coarse_ba: coarse_ba.clone(),
            coarse_faces,
            fine_faces,
            coarse_buf,
            fine_buf,
            fine_ship,
        }
    }

    /// Zeroes the coarse-side stage accumulators (start of a coarse step).
    pub(crate) fn zero_coarse_bufs(&self) {
        for b in &self.coarse_buf {
            b.lock().unwrap().fill(0.0);
        }
    }

    /// Zeroes the fine-side stage accumulators (start of a fine substep).
    pub(crate) fn zero_fine_bufs(&self) {
        for b in &self.fine_buf {
            b.lock().unwrap().fill(0.0);
        }
    }

    /// Folds the coarse-side accumulators into the register with weight 1, in
    /// canonical patch order.
    pub(crate) fn fold_coarse(&mut self) {
        let InterfaceReg {
            register,
            coarse_faces,
            coarse_buf,
            ..
        } = self;
        for (faces, buf) in coarse_faces.iter().zip(coarse_buf.iter()) {
            let b = buf.lock().unwrap();
            for (k, rf) in faces.iter().enumerate() {
                register.add_coarse_flux(rf.key, &b[k * NCONS..(k + 1) * NCONS], 1.0);
            }
        }
    }

    /// Folds the fine-side accumulators into the register scaled by
    /// `weight = dt_fine/dt_coarse`, in canonical patch order.
    pub(crate) fn fold_fine(&mut self, weight: f64) {
        let InterfaceReg {
            register,
            fine_faces,
            fine_buf,
            ..
        } = self;
        for (faces, buf) in fine_faces.iter().zip(fine_buf.iter()) {
            let b = buf.lock().unwrap();
            for (k, rf) in faces.iter().enumerate() {
                register.add_fine_flux(rf.key, &b[k * NCONS..(k + 1) * NCONS], weight);
            }
        }
    }
}

/// Recomputes the contravariant interface flux at every face in `faces` from
/// the ghost-filled state `u` and accumulates `w·F̂` into `buf` (layout:
/// `faces.len() × NCONS`). Bitwise-reproduces the pencil sweep's face fluxes
/// (`kernels::interface_face_flux`), so the folded register difference is an
/// exact statement of the coarse/fine flux mismatch.
#[allow(clippy::too_many_arguments)]
pub(crate) fn record_faces<V: FabView>(
    u: &V,
    met: &FArrayBox,
    faces: &[RegFace],
    w: f64,
    buf: &mut [f64],
    gas: &PerfectGas,
    variant: WenoVariant,
    recon: Reconstruction,
) {
    debug_assert_eq!(buf.len(), faces.len() * NCONS);
    for (k, rf) in faces.iter().enumerate() {
        let ff = interface_face_flux(u, met, rf.eval, rf.key.dir, gas, variant, recon);
        for c in 0..NCONS {
            buf[k * NCONS + c] += w * ff[c];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (Arc<BoxArray>, Arc<BoxArray>) {
        // 16³ coarse domain, one coarse patch; fine level covers the centered
        // 8³ coarse region (16³ fine cells) split into two patches.
        let coarse = Arc::new(BoxArray::new(vec![IndexBox::from_extents(
            16, 16, 16,
        )]));
        let f0 = IndexBox::new(IntVect::new(8, 8, 8), IntVect::new(15, 23, 23));
        let f1 = IndexBox::new(IntVect::new(16, 8, 8), IntVect::new(23, 23, 23));
        let fine = Arc::new(BoxArray::new(vec![f0, f1]));
        (coarse, fine)
    }

    #[test]
    fn fine_and_coarse_sides_resolve_the_same_face_set() {
        let (cba, fba) = pair();
        let dm = IndexBox::from_extents(16, 16, 16);
        let reg = InterfaceReg::build(&cba, &fba, dm, IntVect::splat(2));
        // The interface is the surface of an 8³-coarse-cell cube: 6·8·8 faces
        // on the coarse side.
        let ncoarse: usize = reg.coarse_faces.iter().map(|f| f.len()).sum();
        assert_eq!(ncoarse, 6 * 64);
        // Each coarse face has ratio² = 4 fine contributor faces; the seam
        // between the two fine patches must NOT contribute (covered cells).
        let nfine: usize = reg.fine_faces.iter().map(|f| f.len()).sum();
        assert_eq!(nfine, 4 * 6 * 64);
        // Every fine face key is a registered face, and the key sets agree.
        use std::collections::HashSet;
        let ckeys: HashSet<_> = reg
            .coarse_faces
            .iter()
            .flatten()
            .map(|rf| rf.key)
            .collect();
        let fkeys: HashSet<_> = reg.fine_faces.iter().flatten().map(|rf| rf.key).collect();
        assert_eq!(ckeys, fkeys);
        assert_eq!(ckeys.len(), reg.register.nfaces());
    }

    #[test]
    fn every_register_face_has_exactly_one_fine_contributor_patch() {
        // The owned-mode reflux exchange merges shipped fine sums onto zero
        // accumulators; that is only bitwise-exact if no face collects
        // contributions from two fine patches. Blocked grids guarantee it —
        // the manifest must cover every register face exactly once.
        let (cba, fba) = pair();
        let dm = IndexBox::from_extents(16, 16, 16);
        let reg = InterfaceReg::build(&cba, &fba, dm, IntVect::splat(2));
        let mut count = std::collections::HashMap::new();
        for (_, _, faces) in &reg.fine_ship {
            for f in faces {
                *count.entry(*f).or_insert(0usize) += 1;
            }
        }
        assert_eq!(count.len(), reg.register.nfaces());
        assert!(count.values().all(|&n| n == 1));
    }

    #[test]
    fn buffers_fold_into_a_zero_mismatch_for_matching_fluxes() {
        let (cba, fba) = pair();
        let dm = IndexBox::from_extents(16, 16, 16);
        let mut reg = InterfaceReg::build(&cba, &fba, dm, IntVect::splat(2));
        // Coarse side: constant flux 3.0, one "stage" of weight 1.
        for (p, faces) in reg.coarse_faces.iter().enumerate() {
            let mut b = reg.coarse_buf[p].lock().unwrap();
            b.fill(3.0);
            let _ = faces;
        }
        // Fine side: two substeps, each contributing the four sub-faces with
        // flux 3.0, folded with weight dt_f/dt_c = 1/2.
        reg.fold_coarse();
        for _ in 0..2 {
            for (j, faces) in reg.fine_faces.iter().enumerate() {
                let mut b = reg.fine_buf[j].lock().unwrap();
                b.fill(3.0);
                let _ = faces;
            }
            reg.fold_fine(0.5);
            reg.zero_fine_bufs();
        }
        // Σ_fine w·F = 2 substeps · 4 faces · 3.0 · 0.5 — but the register
        // accumulates *per coarse face*: 4 fine sub-faces × 3.0 × 0.5 × 2 =
        // 12.0 vs coarse 3.0... the mismatch is the *area* refinement: the
        // fine contravariant metric is a quarter of the coarse one on real
        // grids, which this synthetic constant ignores. Verify the raw sums.
        let face = reg.coarse_faces[0][0].key;
        let fine_sum = reg.register.fine_part(&face).unwrap()[0];
        assert_eq!(fine_sum, 4.0 * 3.0 * 0.5 * 2.0);
    }
}
