//! Solver configuration and the paper's code-version ladder.

use crate::backend::BackendKind;
use crate::integrators::TimeScheme;
use crate::problems::ProblemKind;
use crate::sgs::Smagorinsky;
use crate::weno::{Reconstruction, WenoVariant};
use crocco_amr::{
    ConservativeLinearInterp, CurvilinearInterp, Interpolator, PiecewiseConstantInterp,
    TrilinearInterp, WenoConservativeInterp,
};
use crocco_geometry::IntVect;
use serde::{Deserialize, Serialize};

/// Where regridding gets coordinates for newly created patches (§III-C,
/// "Regridding"): the paper's first implementation serially read them from a
/// binary file at every regrid (noticeable overhead on CPU, worse on GPU);
/// the current one keeps the grid in memory and calls `getCoords()`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoordSource {
    /// Evaluate/retrieve stored coordinates in memory (`getCoords()`).
    Memory,
    /// Seek-and-read each new patch's coordinates from a per-level binary
    /// file — the measured-slow first implementation.
    BinaryFile,
}

/// Explicit interpolator selection, overriding the version default — the
/// §III-C design axis plus the future-work conservative schemes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum InterpKind {
    /// AMReX's trilinear (CRoCCo 2.1).
    Trilinear,
    /// The custom curvilinear interpolator with its coordinate ParallelCopy
    /// (CRoCCo 1.2/2.0).
    Curvilinear,
    /// Piecewise-constant injection.
    PiecewiseConstant,
    /// Minmod-limited conservative linear.
    ConservativeLinear,
    /// The §III-C future-work WENO conservative interpolation.
    WenoConservative,
}

impl InterpKind {
    /// Instantiates the interpolator.
    pub fn build(&self) -> Box<dyn Interpolator> {
        match self {
            InterpKind::Trilinear => Box::new(TrilinearInterp),
            InterpKind::Curvilinear => Box::new(CurvilinearInterp),
            InterpKind::PiecewiseConstant => Box::new(PiecewiseConstantInterp),
            InterpKind::ConservativeLinear => Box::new(ConservativeLinearInterp),
            InterpKind::WenoConservative => Box::new(WenoConservativeInterp),
        }
    }
}

/// The CRoCCo version ladder of §V-C. Versions differ in which kernel
/// implementation runs, whether AMR is enabled, which coarse→fine
/// interpolator `FillPatchTwoLevels` uses, and (for performance accounting)
/// which execution backend is modeled.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CodeVersion {
    /// C++ AMReX framework + Fortran numerics kernels; AMR disabled, no GPU.
    V1_0,
    /// Fortran kernels swapped for C++ kernels.
    V1_1,
    /// AMR enabled (CPU).
    V1_2,
    /// GPU support added; custom curvilinear interpolator (its coordinate
    /// `ParallelCopy` is the paper's global-communication bottleneck).
    V2_0,
    /// GPU + AMR with AMReX's built-in trilinear interpolator (no global
    /// communication in FillPatch).
    V2_1,
}

impl CodeVersion {
    /// All versions, in the paper's order.
    pub const ALL: [CodeVersion; 5] = [
        CodeVersion::V1_0,
        CodeVersion::V1_1,
        CodeVersion::V1_2,
        CodeVersion::V2_0,
        CodeVersion::V2_1,
    ];

    /// Display label matching the paper.
    pub fn label(&self) -> &'static str {
        match self {
            CodeVersion::V1_0 => "CRoCCo 1.0 (Fortran, no AMR)",
            CodeVersion::V1_1 => "CRoCCo 1.1 (C++, no AMR)",
            CodeVersion::V1_2 => "CRoCCo 1.2 (C++, AMR)",
            CodeVersion::V2_0 => "CRoCCo 2.0 (GPU, AMR, curvilinear interp)",
            CodeVersion::V2_1 => "CRoCCo 2.1 (GPU, AMR, trilinear interp)",
        }
    }

    /// `true` if adaptive mesh refinement is active.
    pub fn amr_enabled(&self) -> bool {
        matches!(self, CodeVersion::V1_2 | CodeVersion::V2_0 | CodeVersion::V2_1)
    }

    /// `true` if kernels run on the (modeled) GPU.
    pub fn gpu(&self) -> bool {
        matches!(self, CodeVersion::V2_0 | CodeVersion::V2_1)
    }

    /// `true` if the reference ("Fortran") kernel implementations run.
    pub fn reference_kernels(&self) -> bool {
        matches!(self, CodeVersion::V1_0)
    }

    /// The coarse→fine interpolator this version uses.
    pub fn interpolator(&self) -> Box<dyn Interpolator> {
        match self {
            CodeVersion::V2_1 => Box::new(TrilinearInterp),
            _ => Box::new(CurvilinearInterp),
        }
    }
}

/// Full solver configuration. Build with [`SolverConfig::builder`].
#[derive(Clone, Debug)]
pub struct SolverConfig {
    /// The problem to run.
    pub problem: ProblemKind,
    /// Coarse-level cells per direction.
    pub extents: IntVect,
    /// Total AMR levels (forced to 1 when the version disables AMR).
    pub max_levels: usize,
    /// Code version under test.
    pub version: CodeVersion,
    /// WENO variant (the paper's production scheme is WENO-SYMBO).
    pub weno: WenoVariant,
    /// Reconstruction basis (component-wise or Roe characteristic).
    pub reconstruction: Reconstruction,
    /// Low-storage time integrator (the paper marches with Williamson RK3).
    pub time_scheme: TimeScheme,
    /// Optional Smagorinsky SGS closure (LES mode, §II-A). `None` = DNS.
    pub les: Option<Smagorinsky>,
    /// Coordinate source for new patches at regrid time.
    pub coord_source: CoordSource,
    /// Interpolator override (None = the version's default).
    pub interpolator: Option<InterpKind>,
    /// CFL number (RK3 requires ≤ 1).
    pub cfl: f64,
    /// AMReX blocking factor.
    pub blocking_factor: i64,
    /// AMReX max grid size.
    pub max_grid_size: i64,
    /// Berger–Rigoutsos efficiency target.
    pub grid_eff: f64,
    /// Tag buffer cells.
    pub n_error_buf: i64,
    /// Steps between regrids.
    pub regrid_freq: u32,
    /// |∇ρ| threshold for refinement tagging.
    pub tag_threshold: f64,
    /// Simulated MPI ranks (ownership only; execution is in-process).
    pub nranks: usize,
    /// Host threads for patch loops.
    pub threads: usize,
    /// Memoize communication plans in the hierarchy's [`PlanCache`]
    /// (rebuilt only at regrid). Disable to rebuild plans every fill, as the
    /// pre-optimization code did — kept as a knob for the ablation study.
    ///
    /// [`PlanCache`]: crocco_fab::plan_cache::PlanCache
    pub plan_cache: bool,
    /// Execute each RK stage as a dependency task graph that overlaps halo
    /// exchange with interior kernel sweeps (DESIGN.md §4e) instead of the
    /// fill → sweep → update barrier phases. Results are bitwise-identical;
    /// only the inter-patch schedule changes. The task-graph path always
    /// resolves its halo plans through the hierarchy's plan cache (the
    /// dependency edges are derived from the cached chunk lists), regardless
    /// of [`plan_cache`](Self::plan_cache). Off by default.
    pub overlap: bool,
    /// In cluster stepping ([`Simulation::step_cluster`]), execute each
    /// distributed RK stage as a rank-crossing task graph — tag-matched
    /// nonblocking receives gate boundary sweeps while interior sweeps and
    /// sends run immediately (DESIGN.md §4f) — instead of the fenced
    /// post/send/wait phases. Results are bitwise-identical; only the
    /// schedule changes. Ignored outside cluster stepping. Off by default.
    ///
    /// [`Simulation::step_cluster`]: crate::driver::Simulation::step_cluster
    pub dist_overlap: bool,
    /// Owned-data distribution (docs/DISTRIBUTED.md): each rank allocates
    /// and advances only the patches its `DistributionMapping` assigns it.
    /// Cross-rank data motion happens exclusively through cached plans —
    /// per-stage halo/gather exchanges, a distributed tag union plus
    /// redistribution at regrid, and a checkpoint gather for chaos recovery.
    /// The step loop never calls `allgather_fabs`. Results are
    /// bitwise-identical to the replicated path
    /// (`tests/owned_dist_invariance.rs`); only memory per rank changes:
    /// O(owned cells) instead of O(global cells). Off by default — the
    /// replicated path survives as the test oracle.
    pub owned_dist: bool,
    /// Run the `fabcheck` dynamic sanitizer on the solver's MultiFabs:
    /// plan-aliasing proofs before every ghost exchange and stale-ghost traps
    /// in the RK loop. Defaults to on when the crate is built with the
    /// `fabcheck` cargo feature (the knob is inert without it).
    pub fabcheck: bool,
    /// Poison freshly allocated state/scratch fabs with signaling NaNs and
    /// sweep valid regions with `check_for_nan` after every RK stage (AMReX's
    /// `fab.initval` + `check_for_nan` discipline). Requires the `fabcheck`
    /// cargo feature to have any effect; off by default — poisoning changes
    /// what a bug *does* (trap vs silent zero), never correct results.
    pub nan_poison: bool,
    /// Kernel backend for the hot loops (DESIGN.md §4h): the scalar
    /// reference, the SIMD lane kernels, or the fused kernel-IR interpreter.
    /// All three are bitwise-identical on the solution
    /// (`tests/backend_invariance.rs`); they differ only in throughput.
    /// Composes with [`overlap`](Self::overlap),
    /// [`dist_overlap`](Self::dist_overlap), and
    /// [`fabcheck`](Self::fabcheck). Defaults to [`BackendKind::Scalar`].
    pub kernel_backend: BackendKind,
    /// Tile shape for kernel dispatch, `(tx, ty, tz)` in cells. `None` (the
    /// default) sweeps each patch as a single region — the pre-backend
    /// behaviour. `Some` partitions every sweep region with
    /// [`crocco_fab::tile_boxes`]; the partition is bitwise-irrelevant
    /// (every valid cell lies in exactly one tile) but sets the cache
    /// working set, and is the unit the fused backend's per-tile programs
    /// execute over.
    pub tile_size: Option<IntVect>,
    /// Chaos-runtime configuration for cluster stepping (DESIGN.md §4g):
    /// seeded fault injection on the transport plus scheduled rank crashes,
    /// and the checkpoint interval the recovery loop
    /// ([`Simulation::advance_steps_chaos`]) uses. `None` (the default)
    /// disables injection entirely; detection framing is governed by the
    /// cluster the endpoints came from, so a fault-free [`ChaosConfig`]
    /// here must be — and is, by test — bitwise-invisible.
    ///
    /// [`Simulation::advance_steps_chaos`]: crate::driver::Simulation::advance_steps_chaos
    /// [`ChaosConfig`]: crocco_runtime::chaos::ChaosConfig
    pub chaos: Option<crocco_runtime::chaos::ChaosConfig>,
    /// Durable-spill directory for the chaos stepping loop (DESIGN.md §4j):
    /// `Some(dir)` makes rank 0 of the chaos group also write each periodic
    /// checkpoint to disk through the double-buffered atomic writer
    /// (`core::durable`), so a *whole-process* death is recoverable by cold
    /// restart ([`Simulation::from_checkpoint_file_owned`]). Spill failures
    /// degrade gracefully: the run continues on in-memory checkpoints with
    /// a warning. `None` (the default) keeps checkpoints in memory only.
    ///
    /// [`Simulation::from_checkpoint_file_owned`]: crate::driver::Simulation::from_checkpoint_file_owned
    pub spill_dir: Option<std::path::PathBuf>,
    /// Statically verify every RK-stage task-graph skeleton before its first
    /// execution (DESIGN.md §4i): prove all conflicting task pairs ordered
    /// by happens-before, and — on the distributed path — every receive
    /// matched by exactly one send with the cross-rank union acyclic. Runs
    /// once per (grids, plan) generation, memoized beside the skeleton in
    /// the plan cache; a violation panics with both task labels and the
    /// offending box. On by default — the cost is microseconds per regrid.
    pub taskcheck: bool,
    /// Per-level time stepping (docs/ARCHITECTURE.md §Subcycling): level ℓ
    /// advances with its own CFL-limited `dt` — `2^ℓ` substeps per coarse
    /// step at refinement ratio 2 — filling fine ghosts by interpolating the
    /// coarse level *in time* between its old and new states, and repairing
    /// conservation at each coarse/fine interface with an
    /// [`crocco_amr::FluxRegister`] reflux after the substeps. Cuts total
    /// cell-updates on deep hierarchies (docs/results/subcycle.md). With a
    /// single level the subcycled step is bitwise-identical to lockstep
    /// (`tests/subcycle_invariance.rs`). Off by default — lockstep (all
    /// levels share the globally minimal `dt`) remains the reference mode.
    /// Incompatible with replicated multi-rank stepping and with chaos
    /// injection; compose with [`owned_dist`](Self::owned_dist) for the
    /// distributed path.
    pub subcycling: bool,
    /// Adversarial-schedule seed for the task-graph paths: `Some(seed)`
    /// replaces the worker pool with a single-threaded executor running a
    /// seeded arbitrary legal topological linearization (seed 0 =
    /// reverse-priority, the worst case for every "it happens to run in
    /// insertion order" assumption). Results must be — and are, by the
    /// invariance suites — bitwise-identical under any legal schedule.
    /// `None` (the default) uses the normal thread pool.
    pub sched_seed: Option<u64>,
}

impl SolverConfig {
    /// Starts a builder with defaults matching the paper's DMR setup at
    /// test scale.
    pub fn builder() -> SolverConfigBuilder {
        SolverConfigBuilder::default()
    }

    /// Effective level count (1 unless the version enables AMR).
    pub fn effective_levels(&self) -> usize {
        if self.version.amr_enabled() {
            self.max_levels
        } else {
            1
        }
    }

    /// The schedule for task-graph stage execution: the configured thread
    /// pool, or a seeded adversarial linearization when
    /// [`sched_seed`](Self::sched_seed) is set.
    pub fn schedule(&self) -> crocco_runtime::Schedule {
        match self.sched_seed {
            Some(seed) => crocco_runtime::Schedule::adversarial(seed),
            None => crocco_runtime::Schedule::pool(self.threads),
        }
    }
}

/// Builder for [`SolverConfig`].
#[derive(Clone, Debug)]
pub struct SolverConfigBuilder {
    cfg: SolverConfig,
}

impl Default for SolverConfigBuilder {
    fn default() -> Self {
        SolverConfigBuilder {
            cfg: SolverConfig {
                problem: ProblemKind::SodX,
                extents: IntVect::new(32, 8, 8),
                max_levels: 1,
                version: CodeVersion::V1_1,
                weno: WenoVariant::Symbo,
                reconstruction: Reconstruction::ComponentWise,
                time_scheme: TimeScheme::Rk3Williamson,
                les: None,
                coord_source: CoordSource::Memory,
                interpolator: None,
                cfl: 0.6,
                blocking_factor: 4,
                max_grid_size: 32,
                grid_eff: 0.7,
                n_error_buf: 2,
                regrid_freq: 5,
                tag_threshold: f64::NAN, // resolved from the problem default
                nranks: 1,
                threads: 1,
                plan_cache: true,
                overlap: false,
                dist_overlap: false,
                owned_dist: false,
                fabcheck: cfg!(feature = "fabcheck"),
                nan_poison: false,
                kernel_backend: BackendKind::Scalar,
                tile_size: None,
                chaos: None,
                spill_dir: None,
                taskcheck: true,
                subcycling: false,
                sched_seed: None,
            },
        }
    }
}

impl SolverConfigBuilder {
    /// Sets the problem.
    pub fn problem(mut self, p: ProblemKind) -> Self {
        self.cfg.problem = p;
        self
    }

    /// Sets the coarse-level extents.
    pub fn extents(mut self, nx: i64, ny: i64, nz: i64) -> Self {
        self.cfg.extents = IntVect::new(nx, ny, nz);
        self
    }

    /// Sets the AMR level count.
    pub fn max_levels(mut self, n: usize) -> Self {
        self.cfg.max_levels = n;
        self
    }

    /// Sets the code version.
    pub fn version(mut self, v: CodeVersion) -> Self {
        self.cfg.version = v;
        self
    }

    /// Sets the WENO variant.
    pub fn weno(mut self, w: WenoVariant) -> Self {
        self.cfg.weno = w;
        self
    }

    /// Sets the reconstruction basis.
    pub fn reconstruction(mut self, r: Reconstruction) -> Self {
        self.cfg.reconstruction = r;
        self
    }

    /// Sets the time integrator.
    pub fn time_scheme(mut self, t: TimeScheme) -> Self {
        self.cfg.time_scheme = t;
        self
    }

    /// Enables LES mode with the given Smagorinsky constant.
    pub fn les(mut self, cs: f64) -> Self {
        self.cfg.les = Some(Smagorinsky { cs });
        self
    }

    /// Sets the regrid-time coordinate source.
    pub fn coord_source(mut self, c: CoordSource) -> Self {
        self.cfg.coord_source = c;
        self
    }

    /// Overrides the interpolator (otherwise the version's default).
    pub fn interpolator(mut self, k: InterpKind) -> Self {
        self.cfg.interpolator = Some(k);
        self
    }

    /// Sets the CFL number.
    pub fn cfl(mut self, c: f64) -> Self {
        self.cfg.cfl = c;
        self
    }

    /// Sets the blocking factor.
    pub fn blocking_factor(mut self, b: i64) -> Self {
        self.cfg.blocking_factor = b;
        self
    }

    /// Sets the maximum grid size.
    pub fn max_grid_size(mut self, m: i64) -> Self {
        self.cfg.max_grid_size = m;
        self
    }

    /// Sets the regrid interval.
    pub fn regrid_freq(mut self, f: u32) -> Self {
        self.cfg.regrid_freq = f;
        self
    }

    /// Sets the tagging threshold (defaults to the problem's).
    pub fn tag_threshold(mut self, t: f64) -> Self {
        self.cfg.tag_threshold = t;
        self
    }

    /// Sets the simulated rank count.
    pub fn nranks(mut self, n: usize) -> Self {
        self.cfg.nranks = n;
        self
    }

    /// Sets the host thread count for patch loops.
    pub fn threads(mut self, n: usize) -> Self {
        self.cfg.threads = n;
        self
    }

    /// Enables/disables communication-plan memoization.
    pub fn plan_cache(mut self, on: bool) -> Self {
        self.cfg.plan_cache = on;
        self
    }

    /// Enables/disables task-graph RK stages (halo/interior overlap).
    pub fn overlap(mut self, on: bool) -> Self {
        self.cfg.overlap = on;
        self
    }

    /// Enables/disables rank-crossing task-graph RK stages in cluster
    /// stepping (distributed halo/interior overlap).
    pub fn dist_overlap(mut self, on: bool) -> Self {
        self.cfg.dist_overlap = on;
        self
    }

    /// Enables/disables owned-data distribution in cluster stepping: each
    /// rank allocates and advances only its own patches, with all cross-rank
    /// motion through cached plans (no `allgather_fabs`).
    pub fn owned_dist(mut self, on: bool) -> Self {
        self.cfg.owned_dist = on;
        self
    }

    /// Enables/disables the `fabcheck` dynamic sanitizer (inert unless the
    /// crate was built with the `fabcheck` cargo feature).
    pub fn fabcheck(mut self, on: bool) -> Self {
        self.cfg.fabcheck = on;
        self
    }

    /// Enables/disables signaling-NaN poisoning of fresh allocations plus
    /// per-stage `check_for_nan` sweeps (inert without the `fabcheck` cargo
    /// feature).
    pub fn nan_poison(mut self, on: bool) -> Self {
        self.cfg.nan_poison = on;
        self
    }

    /// Selects the kernel backend (scalar reference, SIMD lanes, or the
    /// fused kernel-IR interpreter).
    pub fn kernel_backend(mut self, k: BackendKind) -> Self {
        self.cfg.kernel_backend = k;
        self
    }

    /// Sets the kernel dispatch tile shape (cells per tile in x, y, z).
    pub fn tile_size(mut self, tx: i64, ty: i64, tz: i64) -> Self {
        self.cfg.tile_size = Some(IntVect::new(tx, ty, tz));
        self
    }

    /// Sets the chaos-runtime configuration (fault injection, crash
    /// schedule, checkpoint interval) used by cluster stepping. Pass the
    /// same config to [`LocalCluster::run_with_chaos`] so transport and
    /// solver agree on the fault plan.
    ///
    /// [`LocalCluster::run_with_chaos`]: crocco_runtime::LocalCluster::run_with_chaos
    pub fn chaos(mut self, cfg: crocco_runtime::chaos::ChaosConfig) -> Self {
        self.cfg.chaos = Some(cfg);
        self
    }

    /// Sets the durable-spill directory: periodic chaos checkpoints are
    /// also written to disk (double-buffered, atomic, CRC-sealed) so a
    /// whole-process death is recoverable by cold restart.
    pub fn spill_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.cfg.spill_dir = Some(dir.into());
        self
    }

    /// Enables/disables static schedule verification of the RK-stage task
    /// graphs (on by default).
    pub fn taskcheck(mut self, on: bool) -> Self {
        self.cfg.taskcheck = on;
        self
    }

    /// Enables per-level time stepping with time-interpolated coarse/fine
    /// boundaries and refluxing (off by default — lockstep).
    pub fn subcycling(mut self, on: bool) -> Self {
        self.cfg.subcycling = on;
        self
    }

    /// Runs the task-graph paths under a seeded adversarial schedule (an
    /// arbitrary legal topological linearization) instead of the thread
    /// pool. Seed 0 is reverse-priority order.
    pub fn sched_seed(mut self, seed: u64) -> Self {
        self.cfg.sched_seed = Some(seed);
        self
    }

    /// Finalizes, validating invariants.
    pub fn build(mut self) -> SolverConfig {
        if self.cfg.tag_threshold.is_nan() {
            self.cfg.tag_threshold = self.cfg.problem.tag_threshold();
        }
        let c = &self.cfg;
        assert!(c.max_levels >= 1);
        assert!(c.cfl > 0.0 && c.cfl <= 1.0, "RK3 needs CFL in (0, 1]");
        for d in 0..3 {
            assert!(
                c.extents[d] % c.blocking_factor == 0,
                "extent {} not divisible by blocking factor {}",
                c.extents[d],
                c.blocking_factor
            );
        }
        assert!(c.max_grid_size % c.blocking_factor == 0);
        assert!(c.nranks >= 1 && c.threads >= 1);
        if let Some(t) = c.tile_size {
            for d in 0..3 {
                assert!(t[d] >= 1, "tile_size component {d} must be positive, got {}", t[d]);
            }
        }
        if c.subcycling {
            assert!(
                c.nranks == 1 || c.owned_dist,
                "subcycling requires owned_dist for multi-rank stepping \
                 (the replicated path stays lockstep as the oracle)"
            );
            assert!(
                c.chaos.is_none(),
                "subcycling does not compose with chaos injection yet"
            );
        }
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_properties_match_the_paper_table() {
        use CodeVersion::*;
        assert!(!V1_0.amr_enabled() && !V1_0.gpu() && V1_0.reference_kernels());
        assert!(!V1_1.amr_enabled() && !V1_1.gpu() && !V1_1.reference_kernels());
        assert!(V1_2.amr_enabled() && !V1_2.gpu());
        assert!(V2_0.amr_enabled() && V2_0.gpu());
        assert!(V2_1.amr_enabled() && V2_1.gpu());
        assert_eq!(V2_1.interpolator().name(), "trilinear");
        assert_eq!(V2_0.interpolator().name(), "curvilinear");
        assert!(V2_0.interpolator().needs_coords());
        assert!(!V2_1.interpolator().needs_coords());
    }

    #[test]
    fn builder_applies_problem_default_threshold() {
        let cfg = SolverConfig::builder().problem(ProblemKind::DoubleMach).build();
        assert_eq!(cfg.tag_threshold, ProblemKind::DoubleMach.tag_threshold());
        let cfg2 = SolverConfig::builder().tag_threshold(0.5).build();
        assert_eq!(cfg2.tag_threshold, 0.5);
    }

    #[test]
    #[should_panic]
    fn misaligned_extents_rejected() {
        SolverConfig::builder().extents(30, 8, 8).build();
    }

    #[test]
    #[should_panic]
    fn subcycling_requires_owned_dist_for_multirank() {
        SolverConfig::builder().subcycling(true).nranks(2).build();
    }

    #[test]
    fn subcycling_composes_with_owned_dist() {
        let cfg = SolverConfig::builder().subcycling(true).nranks(2).owned_dist(true).build();
        assert!(cfg.subcycling && cfg.owned_dist);
    }

    #[test]
    fn effective_levels_collapse_without_amr() {
        let cfg = SolverConfig::builder()
            .max_levels(3)
            .version(CodeVersion::V1_1)
            .build();
        assert_eq!(cfg.effective_levels(), 1);
        let cfg = SolverConfig::builder()
            .max_levels(3)
            .version(CodeVersion::V2_1)
            .build();
        assert_eq!(cfg.effective_levels(), 3);
    }
}
