//! Characteristic projection for the Euler equations.
//!
//! Production WENO solvers of CRoCCo's class reconstruct in *characteristic*
//! variables: the split fluxes are projected onto the eigenvectors of the
//! directional flux Jacobian at a Roe-averaged face state, reconstructed
//! field-by-field, and projected back. Component-wise reconstruction (the
//! cheaper default) can ring at contacts where waves couple; characteristic
//! reconstruction decouples them.
//!
//! The eigensystem is the standard one for the 3-D Euler equations in
//! conservative variables with an arbitrary unit normal `n` and orthonormal
//! tangents `t1, t2` (λ = u·n − a, u·n ×3, u·n + a). `L·R = I` is pinned by
//! a unit test over random states.

use crate::eos::PerfectGas;
use crate::state::{cons, Conserved, NCONS};

/// Right (columns-as-rows here) and left eigenvector matrices at a face.
#[derive(Clone, Copy, Debug)]
pub struct EigenSystem {
    /// `r[k]` is the k-th *right* eigenvector (a column of R).
    pub r: [[f64; NCONS]; NCONS],
    /// `l[k]` is the k-th *left* eigenvector (a row of L).
    pub l: [[f64; NCONS]; NCONS],
}

/// An orthonormal basis completing the unit normal `n`.
fn tangents(n: [f64; 3]) -> ([f64; 3], [f64; 3]) {
    // Pick the coordinate axis least aligned with n as the seed.
    let seed = if n[0].abs() <= n[1].abs() && n[0].abs() <= n[2].abs() {
        [1.0, 0.0, 0.0]
    } else if n[1].abs() <= n[2].abs() {
        [0.0, 1.0, 0.0]
    } else {
        [0.0, 0.0, 1.0]
    };
    // t1 = normalize(seed − (seed·n) n).
    let dot = seed[0] * n[0] + seed[1] * n[1] + seed[2] * n[2];
    let mut t1 = [
        seed[0] - dot * n[0],
        seed[1] - dot * n[1],
        seed[2] - dot * n[2],
    ];
    let norm = (t1[0] * t1[0] + t1[1] * t1[1] + t1[2] * t1[2]).sqrt();
    for v in &mut t1 {
        *v /= norm;
    }
    // t2 = n × t1.
    let t2 = [
        n[1] * t1[2] - n[2] * t1[1],
        n[2] * t1[0] - n[0] * t1[2],
        n[0] * t1[1] - n[1] * t1[0],
    ];
    (t1, t2)
}

/// Roe-averaged face state between two conserved states.
pub struct RoeState {
    /// Roe velocity.
    pub vel: [f64; 3],
    /// Roe total specific enthalpy.
    pub h: f64,
    /// Roe sound speed.
    pub a: f64,
}

/// Computes the Roe average of `ul`, `ur`.
pub fn roe_average(ul: &Conserved, ur: &Conserved, gas: &PerfectGas) -> RoeState {
    let wl = ul.to_primitive(gas);
    let wr = ur.to_primitive(gas);
    let sl = wl.rho.sqrt();
    let sr = wr.rho.sqrt();
    let inv = 1.0 / (sl + sr);
    let mut vel = [0.0; 3];
    for (v, (&l, &r)) in vel.iter_mut().zip(wl.vel.iter().zip(&wr.vel)) {
        *v = (sl * l + sr * r) * inv;
    }
    let hl = (ul.0[cons::ENER] + wl.p) / wl.rho;
    let hr = (ur.0[cons::ENER] + wr.p) / wr.rho;
    let h = (sl * hl + sr * hr) * inv;
    let q2 = vel[0] * vel[0] + vel[1] * vel[1] + vel[2] * vel[2];
    let a2 = (gas.gamma - 1.0) * (h - 0.5 * q2);
    RoeState {
        vel,
        h,
        a: a2.max(1e-300).sqrt(),
    }
}

/// Builds the eigensystem at a Roe state for unit normal `n`.
pub fn eigen_system(roe: &RoeState, n: [f64; 3], gas: &PerfectGas) -> EigenSystem {
    let (t1, t2) = tangents(n);
    let u = roe.vel;
    let a = roe.a;
    let h = roe.h;
    let q2 = u[0] * u[0] + u[1] * u[1] + u[2] * u[2];
    let un = u[0] * n[0] + u[1] * n[1] + u[2] * n[2];
    let ut1 = u[0] * t1[0] + u[1] * t1[1] + u[2] * t1[2];
    let ut2 = u[0] * t2[0] + u[1] * t2[1] + u[2] * t2[2];
    let b1 = (gas.gamma - 1.0) / (a * a);
    let b2 = 0.5 * b1 * q2;

    let r = [
        // u·n − a
        [
            1.0,
            u[0] - a * n[0],
            u[1] - a * n[1],
            u[2] - a * n[2],
            h - a * un,
        ],
        // entropy wave
        [1.0, u[0], u[1], u[2], 0.5 * q2],
        // shear waves
        [0.0, t1[0], t1[1], t1[2], ut1],
        [0.0, t2[0], t2[1], t2[2], ut2],
        // u·n + a
        [
            1.0,
            u[0] + a * n[0],
            u[1] + a * n[1],
            u[2] + a * n[2],
            h + a * un,
        ],
    ];
    let l = [
        [
            0.5 * (b2 + un / a),
            0.5 * (-b1 * u[0] - n[0] / a),
            0.5 * (-b1 * u[1] - n[1] / a),
            0.5 * (-b1 * u[2] - n[2] / a),
            0.5 * b1,
        ],
        [1.0 - b2, b1 * u[0], b1 * u[1], b1 * u[2], -b1],
        [-ut1, t1[0], t1[1], t1[2], 0.0],
        [-ut2, t2[0], t2[1], t2[2], 0.0],
        [
            0.5 * (b2 - un / a),
            0.5 * (-b1 * u[0] + n[0] / a),
            0.5 * (-b1 * u[1] + n[1] / a),
            0.5 * (-b1 * u[2] + n[2] / a),
            0.5 * b1,
        ],
    ];
    EigenSystem { r, l }
}

impl EigenSystem {
    /// Projects a conserved-space vector onto characteristic space: `w = L·q`.
    #[inline]
    pub fn to_characteristic(&self, q: &[f64; NCONS]) -> [f64; NCONS] {
        let mut w = [0.0; NCONS];
        for (k, row) in self.l.iter().enumerate() {
            let mut s = 0.0;
            for c in 0..NCONS {
                s += row[c] * q[c];
            }
            w[k] = s;
        }
        w
    }

    /// Projects characteristic amplitudes back: `q = R·w` (R's columns are
    /// the right eigenvectors stored in `r` as rows).
    #[inline]
    pub fn to_conserved(&self, w: &[f64; NCONS]) -> [f64; NCONS] {
        let mut q = [0.0; NCONS];
        for (k, col) in self.r.iter().enumerate() {
            for c in 0..NCONS {
                q[c] += w[k] * col[c];
            }
        }
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::Primitive;
    use rand::{Rng, SeedableRng};

    fn random_roe(rng: &mut impl Rng) -> (RoeState, PerfectGas) {
        let gas = PerfectGas::nondimensional();
        let wl = Primitive {
            rho: rng.gen_range(0.2..5.0),
            vel: [
                rng.gen_range(-3.0..3.0),
                rng.gen_range(-3.0..3.0),
                rng.gen_range(-3.0..3.0),
            ],
            p: rng.gen_range(0.2..10.0),
            t: 0.0,
        };
        let wr = Primitive {
            rho: rng.gen_range(0.2..5.0),
            vel: [
                rng.gen_range(-3.0..3.0),
                rng.gen_range(-3.0..3.0),
                rng.gen_range(-3.0..3.0),
            ],
            p: rng.gen_range(0.2..10.0),
            t: 0.0,
        };
        (
            roe_average(
                &Conserved::from_primitive(&wl, &gas),
                &Conserved::from_primitive(&wr, &gas),
                &gas,
            ),
            gas,
        )
    }

    fn random_normal(rng: &mut impl Rng) -> [f64; 3] {
        loop {
            let v: [f64; 3] = [
                rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
            ];
            let n = (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt();
            if n > 0.1 {
                return [v[0] / n, v[1] / n, v[2] / n];
            }
        }
    }

    #[test]
    fn left_times_right_is_identity() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let (roe, gas) = random_roe(&mut rng);
            let n = random_normal(&mut rng);
            let es = eigen_system(&roe, n, &gas);
            for i in 0..NCONS {
                for j in 0..NCONS {
                    let mut s = 0.0;
                    for c in 0..NCONS {
                        s += es.l[i][c] * es.r[j][c];
                    }
                    let expect = if i == j { 1.0 } else { 0.0 };
                    assert!(
                        (s - expect).abs() < 1e-10,
                        "L·R[{i}][{j}] = {s} (n = {n:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn projection_roundtrip_is_identity() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let (roe, gas) = random_roe(&mut rng);
            let n = random_normal(&mut rng);
            let es = eigen_system(&roe, n, &gas);
            let q: [f64; NCONS] = std::array::from_fn(|_| rng.gen_range(-5.0..5.0));
            let back = es.to_conserved(&es.to_characteristic(&q));
            for c in 0..NCONS {
                assert!((back[c] - q[c]).abs() < 1e-9, "comp {c}: {} vs {}", back[c], q[c]);
            }
        }
    }

    #[test]
    fn roe_average_of_identical_states_is_the_state() {
        let gas = PerfectGas::nondimensional();
        let w = Primitive {
            rho: 1.3,
            vel: [0.5, -0.4, 0.2],
            p: 2.0,
            t: 0.0,
        };
        let u = Conserved::from_primitive(&w, &gas);
        let roe = roe_average(&u, &u, &gas);
        for d in 0..3 {
            assert!((roe.vel[d] - w.vel[d]).abs() < 1e-13);
        }
        let a_exact = gas.sound_speed(w.rho, w.p);
        assert!((roe.a - a_exact).abs() < 1e-12, "{} vs {a_exact}", roe.a);
    }

    #[test]
    fn tangent_basis_is_orthonormal() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let n = random_normal(&mut rng);
            let (t1, t2) = tangents(n);
            let dot = |a: [f64; 3], b: [f64; 3]| a[0] * b[0] + a[1] * b[1] + a[2] * b[2];
            assert!(dot(t1, n).abs() < 1e-12);
            assert!(dot(t2, n).abs() < 1e-12);
            assert!(dot(t1, t2).abs() < 1e-12);
            assert!((dot(t1, t1) - 1.0).abs() < 1e-12);
            assert!((dot(t2, t2) - 1.0).abs() < 1e-12);
        }
    }
}
