//! The CRoCCo compressible flow solver.
//!
//! This crate is the paper's primary contribution rebuilt in Rust: a
//! shock-capturing, bandwidth-resolving compressible Navier–Stokes solver on
//! generalized curvilinear grids (§II-A), hosted on the block-structured AMR
//! framework in [`crocco-amr`](crocco_amr), with the code-version ladder the
//! evaluation compares (§V-C):
//!
//! | version | meaning |
//! |---------|---------|
//! | 1.0 | AMReX host + "Fortran" reference kernels, no AMR, no GPU |
//! | 1.1 | "C++" (optimized) kernels, no AMR |
//! | 1.2 | AMR enabled (CPU) |
//! | 2.0 | GPU + AMR + custom curvilinear interpolator (coordinate `ParallelCopy`) |
//! | 2.1 | GPU + AMR + AMReX trilinear interpolator (no global communication) |
//!
//! Numerics: WENO reconstruction of Rusanov-split convective fluxes (WENO5-JS
//! and the symmetric bandwidth-optimized 4-candidate family of Martín et
//! al.), 4th-order central viscous fluxes with Sutherland viscosity,
//! Williamson low-storage RK3 time marching under a CFL constraint, and
//! stored curvilinear coordinates + 27-component grid metrics (§III-C).

// Enforced by `cargo xtask lint`: unsafe code is confined to the allowlisted
// fab modules (multifab, view, overlap) — none of it lives here.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod bc;
pub mod charproj;
pub mod chemistry;
pub mod cluster_step;
pub mod config;
pub mod driver;
pub mod durable;
pub mod eos;
pub mod integrators;
pub mod io;
pub mod kernels;
pub mod metrics;
pub mod multispecies;
pub mod problems;
pub mod reference;
pub mod riemann;
pub mod sgs;
pub mod species;
pub mod state;
pub(crate) mod subcycle;
pub mod validation;
pub mod weno;

pub use backend::BackendKind;
pub use cluster_step::ChaosRunReport;
pub use config::{CodeVersion, SolverConfig};
pub use driver::Simulation;
pub use durable::{
    recover, CheckpointStore, CkptError, DiskStore, DurableCheckpointer, FaultyStore, Manifest,
    RestartInfo,
};
pub use eos::PerfectGas;
pub use problems::ProblemKind;
pub use weno::WenoVariant;
