//! Low-storage (2N) explicit time integrators.
//!
//! CRoCCo marches with the Williamson low-storage RK3 (§II-A); AMReX "allows
//! for the addition of custom ... time integrators" (§III-B), so the driver
//! accepts any member of the 2N family
//!
//! ```text
//! for each stage s:  dU ← A[s]·dU + dt·L(U);   U ← U + B[s]·dU
//! ```
//!
//! which needs only the solution and one accumulator regardless of stage
//! count — the memory property that matters on 16 GB GPUs (§V-C).

use serde::{Deserialize, Serialize};

/// Which 2N scheme to march with.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TimeScheme {
    /// Forward Euler (1 stage, 1st order) — debugging/dissipation baseline.
    Euler,
    /// Williamson (1980) 3-stage, 3rd order — CRoCCo's production scheme.
    Rk3Williamson,
    /// Carpenter–Kennedy (1994) 5-stage, 4th order low-storage RK.
    Rk45CarpenterKennedy,
}

impl TimeScheme {
    /// Number of stages.
    pub fn stages(&self) -> usize {
        match self {
            TimeScheme::Euler => 1,
            TimeScheme::Rk3Williamson => 3,
            TimeScheme::Rk45CarpenterKennedy => 5,
        }
    }

    /// The `A` coefficient of stage `s` (multiplies the accumulator).
    pub fn a(&self, s: usize) -> f64 {
        match self {
            TimeScheme::Euler => 0.0,
            TimeScheme::Rk3Williamson => [0.0, -5.0 / 9.0, -153.0 / 128.0][s],
            TimeScheme::Rk45CarpenterKennedy => [
                0.0,
                -567_301_805_773.0 / 1_357_537_059_087.0,
                -2_404_267_990_393.0 / 2_016_746_695_238.0,
                -3_550_918_686_646.0 / 2_091_501_179_385.0,
                -1_275_806_237_668.0 / 842_570_457_699.0,
            ][s],
        }
    }

    /// The `B` coefficient of stage `s` (multiplies the accumulator into U).
    pub fn b(&self, s: usize) -> f64 {
        match self {
            TimeScheme::Euler => 1.0,
            TimeScheme::Rk3Williamson => [1.0 / 3.0, 15.0 / 16.0, 8.0 / 15.0][s],
            TimeScheme::Rk45CarpenterKennedy => [
                1_432_997_174_477.0 / 9_575_080_441_755.0,
                5_161_836_677_717.0 / 13_612_068_292_357.0,
                1_720_146_321_549.0 / 2_090_206_949_498.0,
                3_134_564_353_537.0 / 4_481_467_310_338.0,
                2_277_821_191_437.0 / 14_882_151_754_819.0,
            ][s],
        }
    }

    /// Formal order of accuracy.
    pub fn order(&self) -> u32 {
        match self {
            TimeScheme::Euler => 1,
            TimeScheme::Rk3Williamson => 3,
            TimeScheme::Rk45CarpenterKennedy => 4,
        }
    }

    /// The stage time fractions `c[s]` implied by the A/B coefficients
    /// (`c[0] = 0`; thereafter `c[s] = Σ` of effective B-weighted steps).
    pub fn stage_time_fraction(&self, s: usize) -> f64 {
        // c coefficients follow from the recurrence on a linear ODE; compute
        // them generically by integrating dy/dt = 1.
        let mut y = 0.0;
        let mut du = 0.0;
        for k in 0..s {
            du = self.a(k) * du + 1.0;
            y += self.b(k) * du;
        }
        y
    }

    /// The *net* flux weight of stage `s`: the coefficient `w[s]` such that
    /// one full 2N step is `U(t+dt) = U(t) + dt · Σ_s w[s]·L(U_s)`. For the
    /// accumulator recurrence this is `w[s] = Σ_{k≥s} b[k]·Π_{j=s+1..k} a[j]`
    /// — the sensitivity of the final state to the stage-`s` RHS. The flux
    /// register accumulates interface fluxes with these weights so the
    /// refluxed correction matches exactly what the RK update applied
    /// (docs/ARCHITECTURE.md §Subcycling). `Σ_s w[s] = 1` for any consistent
    /// scheme.
    pub fn net_flux_weight(&self, s: usize) -> f64 {
        let mut w = 0.0;
        let mut chain = 1.0;
        for k in s..self.stages() {
            if k > s {
                chain *= self.a(k);
            }
            w += self.b(k) * chain;
        }
        w
    }
}

/// Integrates the scalar ODE `y' = f(t, y)` over one step with a 2N scheme —
/// the reference implementation the MultiFab update mirrors, used for order
/// verification.
pub fn step_scalar<F: Fn(f64, f64) -> f64>(
    scheme: TimeScheme,
    f: F,
    t: f64,
    y: f64,
    dt: f64,
) -> f64 {
    let mut y = y;
    let mut du = 0.0;
    for s in 0..scheme.stages() {
        let ts = t + scheme.stage_time_fraction(s) * dt;
        du = scheme.a(s) * du + dt * f(ts, y);
        y += scheme.b(s) * du;
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [TimeScheme; 3] = [
        TimeScheme::Euler,
        TimeScheme::Rk3Williamson,
        TimeScheme::Rk45CarpenterKennedy,
    ];

    /// Integrate y' = y from 1 over [0, 1]; exact answer e.
    fn exp_error(scheme: TimeScheme, n: u32) -> f64 {
        let dt = 1.0 / n as f64;
        let mut y = 1.0;
        let mut t = 0.0;
        for _ in 0..n {
            y = step_scalar(scheme, |_, y| y, t, y, dt);
            t += dt;
        }
        (y - std::f64::consts::E).abs()
    }

    #[test]
    fn consistency_each_scheme_integrates_constants_exactly() {
        for scheme in ALL {
            let y = step_scalar(scheme, |_, _| 2.5, 0.0, 1.0, 0.4);
            assert!(
                (y - 2.0).abs() < 1e-13,
                "{scheme:?}: constant-RHS step gave {y}"
            );
        }
    }

    #[test]
    fn observed_orders_match_formal_orders() {
        for scheme in ALL {
            let e1 = exp_error(scheme, 20);
            let e2 = exp_error(scheme, 40);
            let observed = (e1 / e2).log2();
            assert!(
                (observed - scheme.order() as f64).abs() < 0.25,
                "{scheme:?}: observed order {observed:.2}"
            );
        }
    }

    #[test]
    fn stage_time_fractions_are_canonical() {
        // Williamson RK3: c = (0, 1/3, 3/4).
        let w = TimeScheme::Rk3Williamson;
        assert!((w.stage_time_fraction(0) - 0.0).abs() < 1e-14);
        assert!((w.stage_time_fraction(1) - 1.0 / 3.0).abs() < 1e-14);
        assert!((w.stage_time_fraction(2) - 0.75).abs() < 1e-13);
        // And a full linear step advances exactly dt.
        for scheme in ALL {
            let y = step_scalar(scheme, |_, _| 1.0, 0.0, 0.0, 0.7);
            assert!((y - 0.7).abs() < 1e-13, "{scheme:?}");
        }
    }

    #[test]
    fn net_flux_weights_sum_to_one_and_reproduce_the_step() {
        for scheme in ALL {
            let total: f64 = (0..scheme.stages()).map(|s| scheme.net_flux_weight(s)).sum();
            assert!((total - 1.0).abs() < 1e-14, "{scheme:?}: Σw = {total}");
            // A constant RHS makes every stage RHS equal, so the weighted sum
            // must reproduce step_scalar exactly (up to rounding).
            let dt = 0.37;
            let direct = step_scalar(scheme, |_, _| 2.5, 0.0, 1.0, dt);
            let weighted: f64 =
                1.0 + dt * (0..scheme.stages()).map(|s| scheme.net_flux_weight(s) * 2.5).sum::<f64>();
            assert!((direct - weighted).abs() < 1e-13, "{scheme:?}");
        }
        // Williamson RK3 closed forms: w2 = b2, w1 = b1 + b2·a2, w0 = b0 + w1·a1.
        let w = TimeScheme::Rk3Williamson;
        assert!((w.net_flux_weight(2) - w.b(2)).abs() < 1e-15);
        assert!((w.net_flux_weight(1) - (w.b(1) + w.b(2) * w.a(2))).abs() < 1e-15);
    }

    #[test]
    fn rk3_matches_the_drivers_constants() {
        let w = TimeScheme::Rk3Williamson;
        for s in 0..3 {
            assert_eq!(w.a(s), crate::driver::RK3_A[s]);
            assert_eq!(w.b(s), crate::driver::RK3_B[s]);
        }
    }

    #[test]
    fn rk45_is_more_accurate_than_rk3_at_same_cost() {
        // Cost-normalized: RK45 with 3/5 of the steps (same RHS evaluations).
        let e3 = exp_error(TimeScheme::Rk3Williamson, 50);
        let e45 = exp_error(TimeScheme::Rk45CarpenterKennedy, 30);
        assert!(e45 < e3, "rk45 {e45} should beat rk3 {e3} at equal work");
    }
}
