//! Subgrid-scale (SGS) turbulence model for LES mode.
//!
//! CRoCCo "can resolve hypersonic turbulent flows using large eddy simulation
//! (LES) techniques which filters and does not resolve on the grid the
//! highest frequency energy content ... solving the filtered form of
//! Equation 1, which includes subgrid scale (SGS) models" (§II-A). This
//! module implements the classic Smagorinsky closure on curvilinear grids:
//!
//! ```text
//! ν_t = (C_s Δ)² |S|,    |S| = √(2 S_ij S_ij),    Δ = J^(1/3)
//! ```
//!
//! The eddy viscosity augments the molecular viscosity inside the `Viscous`
//! kernel, so LES runs reuse the entire viscous-flux machinery.

use crate::metrics::comp as mcomp;
use crate::state::{cons, Conserved};
use crocco_fab::{FArrayBox, FabView};
use crocco_geometry::{IndexBox, IntVect};
use serde::{Deserialize, Serialize};

/// Smagorinsky model configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Smagorinsky {
    /// The Smagorinsky constant (0.1–0.2 for shear flows; 0.17 classic).
    pub cs: f64,
}

impl Default for Smagorinsky {
    fn default() -> Self {
        Smagorinsky { cs: 0.17 }
    }
}

impl Smagorinsky {
    /// Eddy viscosity `μ_t = ρ (C_s Δ)² |S|` at cell `p`, from 2nd-order
    /// central velocity gradients transformed to physical space. Requires one
    /// ghost cell on `u`.
    pub fn eddy_viscosity(
        &self,
        u: &impl FabView,
        met: &FArrayBox,
        p: IntVect,
        gas: &crate::eos::PerfectGas,
    ) -> f64 {
        let jac = met.get(p, mcomp::JAC);
        let delta = jac.cbrt();
        // Computational velocity gradients (2nd-order central).
        let prim = |q: IntVect| {
            Conserved([
                u.get(q, cons::RHO),
                u.get(q, cons::MX),
                u.get(q, cons::MY),
                u.get(q, cons::MZ),
                u.get(q, cons::ENER),
            ])
            .to_primitive(gas)
        };
        let mut dcomp = [[0.0; 3]; 3]; // [xi dir][vel comp]
        for (xi, row) in dcomp.iter_mut().enumerate() {
            let e = IntVect::unit(xi);
            let wp = prim(p + e);
            let wm = prim(p - e);
            for ((dc, &vp), &vm) in row.iter_mut().zip(&wp.vel).zip(&wm.vel) {
                *dc = 0.5 * (vp - vm);
            }
        }
        // Transform: ∂u_i/∂x_j = Σ_d (m_dj / J) ∂u_i/∂ξ_d.
        let mut g = [[0.0; 3]; 3];
        for (i, grow) in g.iter_mut().enumerate() {
            for (j, gij) in grow.iter_mut().enumerate() {
                let mut s = 0.0;
                for (d, drow) in dcomp.iter().enumerate() {
                    s += met.get(p, mcomp::M + d * 3 + j) / jac * drow[i];
                }
                *gij = s;
            }
        }
        // |S| = sqrt(2 S_ij S_ij), S_ij = (g_ij + g_ji)/2.
        let mut ss = 0.0;
        for (i, grow) in g.iter().enumerate() {
            for (j, &gij) in grow.iter().enumerate() {
                let sij = 0.5 * (gij + g[j][i]);
                ss += sij * sij;
            }
        }
        let smag = (2.0 * ss).sqrt();
        let rho = u.get(p, cons::RHO);
        rho * (self.cs * delta).powi(2) * smag
    }

    /// Fills component 0 of `out` with `μ_t` over `valid` (diagnostics and
    /// the LES viscous pass).
    pub fn eddy_viscosity_field(
        &self,
        u: &impl FabView,
        met: &FArrayBox,
        out: &mut FArrayBox,
        valid: IndexBox,
        gas: &crate::eos::PerfectGas,
    ) {
        for p in valid.cells() {
            out.set(p, 0, self.eddy_viscosity(u, met, p, gas));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eos::PerfectGas;
    use crate::metrics::{compute_metrics, generate_coords, NCOORDS, NMETRICS};
    use crate::state::{Primitive, NCONS};
    use crocco_fab::{BoxArray, DistributionMapping, MultiFab};
    use crocco_geometry::UniformMapping;
    use std::sync::Arc;

    fn setup(vel_of_y: impl Fn(f64) -> f64) -> (MultiFab, MultiFab, PerfectGas) {
        let gas = PerfectGas::air();
        let extents = IntVect::new(8, 16, 8);
        let bx = IndexBox::from_extents(8, 16, 8);
        let ba = Arc::new(BoxArray::new(vec![bx]));
        let dm = Arc::new(DistributionMapping::all_on_root(&ba));
        let map = UniformMapping::unit();
        let mut coords = MultiFab::new(ba.clone(), dm.clone(), NCOORDS, 6);
        generate_coords(&map, extents, &mut coords);
        let mut metrics = MultiFab::new(ba.clone(), dm.clone(), NMETRICS, 4);
        compute_metrics(&coords, &mut metrics);
        let mut state = MultiFab::new(ba, dm, NCONS, 4);
        let all = state.fab(0).bx();
        for p in all.cells() {
            let y = (p[1] as f64 + 0.5) / 16.0;
            let w = Primitive {
                rho: 1.2,
                vel: [vel_of_y(y), 0.0, 0.0],
                p: 101325.0,
                t: 0.0,
            };
            let u = Conserved::from_primitive(&w, &gas);
            for c in 0..NCONS {
                state.fab_mut(0).set(p, c, u.0[c]);
            }
        }
        (state, metrics, gas)
    }

    #[test]
    fn uniform_flow_has_zero_eddy_viscosity() {
        let (state, metrics, gas) = setup(|_| 100.0);
        let model = Smagorinsky::default();
        let p = IntVect::new(4, 8, 4);
        let nu = model.eddy_viscosity(state.fab(0), metrics.fab(0), p, &gas);
        assert!(nu.abs() < 1e-12, "uniform flow produced mu_t = {nu}");
    }

    #[test]
    fn shear_produces_positive_eddy_viscosity_scaling_with_cs_squared() {
        let (state, metrics, gas) = setup(|y| 200.0 * y);
        let p = IntVect::new(4, 8, 4);
        let m1 = Smagorinsky { cs: 0.1 };
        let m2 = Smagorinsky { cs: 0.2 };
        let nu1 = m1.eddy_viscosity(state.fab(0), metrics.fab(0), p, &gas);
        let nu2 = m2.eddy_viscosity(state.fab(0), metrics.fab(0), p, &gas);
        assert!(nu1 > 0.0);
        assert!((nu2 / nu1 - 4.0).abs() < 1e-9, "mu_t must scale with Cs^2");
    }

    #[test]
    fn eddy_viscosity_matches_closed_form_for_pure_shear() {
        // u = G·y, others 0: |S| = G, Δ = dx (unit cube / extents).
        let g_shear = 320.0; // per unit y
        let (state, metrics, gas) = setup(move |y| g_shear * y);
        let model = Smagorinsky { cs: 0.17 };
        let p = IntVect::new(4, 8, 4);
        let nu = model.eddy_viscosity(state.fab(0), metrics.fab(0), p, &gas);
        let delta = (1.0f64 / 8.0 * 1.0 / 16.0 * 1.0 / 8.0).cbrt();
        let expect = 1.2 * (0.17 * delta) * (0.17 * delta) * g_shear;
        assert!(
            (nu - expect).abs() / expect < 1e-6,
            "mu_t {nu} vs closed form {expect}"
        );
    }

    #[test]
    fn field_fill_covers_valid_region() {
        let (state, metrics, gas) = setup(|y| 50.0 * y * y);
        let valid = state.valid_box(0);
        let mut out = FArrayBox::new(valid, 1);
        Smagorinsky::default().eddy_viscosity_field(
            state.fab(0),
            metrics.fab(0),
            &mut out,
            valid,
            &gas,
        );
        // Quadratic profile: stronger shear at larger y ⇒ larger mu_t.
        let low = out.get(IntVect::new(4, 2, 4), 0);
        let high = out.get(IntVect::new(4, 13, 4), 0);
        assert!(high > low, "{high} !> {low}");
    }
}
