//! Correctness validation utilities (§IV-A / §IV-C of the paper).
//!
//! "Throughout development our team relied on regular validation runs…
//! We thoroughly tested the correctness of these routines by comparing the
//! same L2-norm of the difference in each flow variable." This module
//! provides that machinery: per-variable L2 norms between two simulations on
//! identical grids, and error norms against analytic solutions.

use crate::driver::Simulation;
use crate::eos::PerfectGas;
use crate::riemann::sod_exact;
use crate::state::{cons, Conserved, NCONS};

/// Names of the flow variables compared in the paper's validation
/// (velocity, density, temperature — we report all five conserved ones).
pub const VARIABLE_NAMES: [&str; NCONS] = ["rho", "rho_u", "rho_v", "rho_w", "E"];

/// Per-variable L2 norm of the difference between two simulations' coarsest
/// levels (grids must match). This is the paper's Fortran↔C++ and CPU↔GPU
/// comparison metric; the paper observes a plateau at ~1e-7.
pub fn l2_difference(a: &Simulation, b: &Simulation) -> [f64; NCONS] {
    let sa = &a.level(0).state;
    let sb = &b.level(0).state;
    let mut out = [0.0; NCONS];
    for (c, slot) in out.iter_mut().enumerate() {
        *slot = sa.l2_diff(sb, c);
    }
    out
}

/// Relative (scale-normalized) L2 difference per variable: each component is
/// divided by the RMS of that component in `a`.
pub fn relative_l2_difference(a: &Simulation, b: &Simulation) -> [f64; NCONS] {
    let abs = l2_difference(a, b);
    let sa = &a.level(0).state;
    let n = sa.boxarray().num_points() as f64;
    let mut out = [0.0; NCONS];
    for c in 0..NCONS {
        let rms = sa.norm2(c) / n.sqrt();
        out[c] = if rms > 0.0 { abs[c] / rms } else { abs[c] };
    }
    out
}

/// L2 error of the coarsest-level density against the exact Sod solution at
/// the simulation's current time. The Sod problem must be
/// [`crate::problems::ProblemKind::SodX`] on `[0, 1]` with the diaphragm at
/// `x = 0.5`.
pub fn sod_density_error(sim: &Simulation, gas: &PerfectGas) -> f64 {
    let state = &sim.level(0).state;
    let coords = &sim.level(0).coords;
    let t = sim.time();
    let mut acc = 0.0;
    let mut n = 0u64;
    for i in 0..state.nfabs() {
        let valid = state.valid_box(i);
        for p in valid.cells() {
            let x = coords.fab(i).get(p, 0);
            let exact = sod_exact(x, t, gas);
            let d = state.fab(i).get(p, cons::RHO) - exact.rho;
            acc += d * d;
            n += 1;
        }
    }
    (acc / n as f64).sqrt()
}

/// L2 error of the coarsest-level density against the exact isentropic
/// vortex solution at the current time.
pub fn vortex_density_error(sim: &Simulation, gas: &PerfectGas) -> f64 {
    let state = &sim.level(0).state;
    let coords = &sim.level(0).coords;
    let t = sim.time();
    let mut acc = 0.0;
    let mut n = 0u64;
    for i in 0..state.nfabs() {
        let valid = state.valid_box(i);
        for p in valid.cells() {
            let x = crocco_geometry::RealVect::new(
                coords.fab(i).get(p, 0),
                coords.fab(i).get(p, 1),
                coords.fab(i).get(p, 2),
            );
            let exact = Conserved::from_primitive(&crate::problems::vortex_state(x, t), gas);
            let d = state.fab(i).get(p, cons::RHO) - exact.0[cons::RHO];
            acc += d * d;
            n += 1;
        }
    }
    (acc / n as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CodeVersion, SolverConfig};
    use crate::problems::ProblemKind;

    #[test]
    fn identical_runs_have_zero_l2_difference() {
        let cfg = SolverConfig::builder()
            .problem(ProblemKind::SodX)
            .extents(32, 4, 4)
            .version(CodeVersion::V1_1)
            .build();
        let mut a = Simulation::new(cfg.clone());
        let mut b = Simulation::new(cfg);
        a.advance_steps(3);
        b.advance_steps(3);
        for (c, d) in l2_difference(&a, &b).iter().enumerate() {
            assert_eq!(*d, 0.0, "{}", VARIABLE_NAMES[c]);
        }
    }

    #[test]
    fn reference_vs_optimized_l2_plateaus_at_machine_level() {
        // The paper's §IV-A experiment: run the "Fortran" (reference) and
        // "C++" (optimized) kernels on the same problem and compare L2 norms;
        // the plateau must sit at or below ~1e-7 relative.
        let mk = |v| {
            SolverConfig::builder()
                .problem(ProblemKind::SodX)
                .extents(32, 4, 4)
                .version(v)
                .build()
        };
        let mut fortran = Simulation::new(mk(CodeVersion::V1_0));
        let mut cpp = Simulation::new(mk(CodeVersion::V1_1));
        fortran.advance_steps(10);
        cpp.advance_steps(10);
        let rel = relative_l2_difference(&fortran, &cpp);
        for (c, d) in rel.iter().enumerate() {
            assert!(
                *d < 1e-7,
                "{} relative L2 {} above the 1e-7 plateau",
                VARIABLE_NAMES[c],
                d
            );
        }
    }

    #[test]
    fn sod_error_decreases_with_resolution() {
        let gas = PerfectGas::nondimensional();
        let run = |nx: i64| {
            let cfg = SolverConfig::builder()
                .problem(ProblemKind::SodX)
                .extents(nx, 4, 4)
                .version(CodeVersion::V1_1)
                .cfl(0.5)
                .build();
            let mut sim = Simulation::new(cfg);
            // Advance to a fixed physical time.
            while sim.time() < 0.1 {
                sim.step();
            }
            sod_density_error(&sim, &gas)
        };
        let coarse = run(32);
        let fine = run(64);
        assert!(
            fine < coarse,
            "refinement must reduce Sod error: {coarse} -> {fine}"
        );
        // Shock-limited convergence is ~1st order: expect a clear reduction.
        assert!(fine / coarse < 0.75, "{coarse} -> {fine}");
    }
}
