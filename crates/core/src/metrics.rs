//! Curvilinear coordinates and grid metrics.
//!
//! §III-C ("Data management"): curvilinear grids are generated from complex
//! mappings, so CRoCCo *stores* physical coordinates in a 3-component
//! MultiFab and the grid metrics in a **27-component MultiFab** — "the
//! high-order reconstructions of the first and second derivatives of each
//! i, j, k with respect to x, y, z" — giving the ≈3× memory overhead the
//! paper reports. This module reproduces that layout and computes the
//! metrics with 4th-order central differences of the stored coordinates.

use crocco_fab::MultiFab;
use crocco_geometry::{GridMapping, IntVect, RealVect};

/// Number of metric components (paper: "a 27-component `amrex::MultiFab` to
/// store the metrics").
pub const NMETRICS: usize = 27;

/// Number of coordinate components.
pub const NCOORDS: usize = 3;

/// Metric component layout.
pub mod comp {
    /// `M[d][j] = J·∂ξ_d/∂x_j` (contravariant metrics × Jacobian), component
    /// `M + d*3 + j`. These transform Cartesian fluxes into computational
    /// space.
    pub const M: usize = 0;
    /// Jacobian `J = det(∂x/∂ξ)` (cell volume per unit computational volume).
    pub const JAC: usize = 9;
    /// Forward metrics `F[i][j] = ∂x_i/∂ξ_j`, component `FWD + i*3 + j`.
    pub const FWD: usize = 10;
    /// `∇²ξ_d` (Laplacians of the inverse mapping), components 19–21 — the
    /// second-order metric terms of non-conservative curvilinear operators.
    pub const LAPXI: usize = 19;
    /// Diagonal curvature `∂²x_i/∂ξ_i²`, components 22–24.
    pub const CURV: usize = 22;
    /// Grid skewness monitor (off-diagonality of `F`), component 25.
    pub const SKEW: usize = 25;
    /// Minimum physical spacing across directions (for CFL), component 26.
    pub const MINSP: usize = 26;
}

/// Fills a 3-component coordinates MultiFab (valid + ghost cells) with the
/// physical cell-center positions of `mapping` at a level whose domain has
/// `extents` cells per direction.
///
/// Ghost coordinates are generated through the same mapping (smooth
/// extrapolation outside the unit cube), exactly as the paper's `getCoords()`
/// retrieves stored coordinates for newly created patches (§III-C
/// "Regridding").
pub fn generate_coords(mapping: &dyn GridMapping, extents: IntVect, coords: &mut MultiFab) {
    assert_eq!(coords.ncomp(), NCOORDS);
    let n = [
        extents[0] as f64,
        extents[1] as f64,
        extents[2] as f64,
    ];
    for i in 0..coords.nfabs() {
        // Owned-data distribution: patches owned elsewhere are
        // metadata-only placeholders — nothing to fill.
        if !coords.is_allocated(i) {
            continue;
        }
        let fab = coords.fab_mut(i);
        let bx = fab.bx();
        for p in bx.cells() {
            let xi = RealVect::new(
                (p[0] as f64 + 0.5) / n[0],
                (p[1] as f64 + 0.5) / n[1],
                (p[2] as f64 + 0.5) / n[2],
            );
            let x = mapping.coords(xi);
            for d in 0..3 {
                fab.set(p, d, x[d]);
            }
        }
    }
}

/// 4th-order central first derivative along `dir` of coordinate component
/// `c` at `p` (unit computational spacing).
#[inline]
fn d1(fab: &crocco_fab::FArrayBox, p: IntVect, dir: usize, c: usize) -> f64 {
    let e = IntVect::unit(dir);
    (fab.get(p - e * 2, c) - 8.0 * fab.get(p - e, c) + 8.0 * fab.get(p + e, c)
        - fab.get(p + e * 2, c))
        / 12.0
}

/// 4th-order central second derivative along `dir`.
#[inline]
fn d2(fab: &crocco_fab::FArrayBox, p: IntVect, dir: usize, c: usize) -> f64 {
    let e = IntVect::unit(dir);
    (-fab.get(p - e * 2, c) + 16.0 * fab.get(p - e, c) - 30.0 * fab.get(p, c)
        + 16.0 * fab.get(p + e, c)
        - fab.get(p + e * 2, c))
        / 12.0
}

/// Writes the full coordinate grid of one level to a binary file: the
/// §III-C "first implementation" stored grids on disk and had each newly
/// formed AMR patch "serially read from a binary file using std::iostream".
/// Layout: for each domain cell in Fortran (x-fastest) order, three
/// little-endian f64 coordinates.
pub fn write_coords_file(
    mapping: &dyn GridMapping,
    extents: IntVect,
    path: &std::path::Path,
) -> std::io::Result<()> {
    use std::io::Write;
    let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
    let n = [extents[0] as f64, extents[1] as f64, extents[2] as f64];
    let domain = crocco_geometry::IndexBox::from_extents(extents[0], extents[1], extents[2]);
    for p in domain.cells() {
        let xi = RealVect::new(
            (p[0] as f64 + 0.5) / n[0],
            (p[1] as f64 + 0.5) / n[1],
            (p[2] as f64 + 0.5) / n[2],
        );
        let x = mapping.coords(xi);
        for d in 0..3 {
            w.write_all(&x[d].to_le_bytes())?;
        }
    }
    w.flush()
}

/// Fills a coordinates MultiFab by *seek-and-read* from a coordinates file —
/// the slow path the paper measured before switching to in-memory
/// `getCoords()`. Cells outside the domain (ghost coordinates) fall back to
/// evaluating the mapping, since the file only stores the domain interior.
pub fn read_coords_from_file(
    path: &std::path::Path,
    mapping: &dyn GridMapping,
    extents: IntVect,
    coords: &mut MultiFab,
) -> std::io::Result<()> {
    use std::io::{Read, Seek, SeekFrom};
    assert_eq!(coords.ncomp(), NCOORDS);
    let mut f = std::fs::File::open(path)?;
    let (nx, ny) = (extents[0], extents[1]);
    let n = [extents[0] as f64, extents[1] as f64, extents[2] as f64];
    let domain = crocco_geometry::IndexBox::from_extents(extents[0], extents[1], extents[2]);
    for i in 0..coords.nfabs() {
        if !coords.is_allocated(i) {
            continue;
        }
        let bx = coords.fab(i).bx();
        let mut buf = Vec::new();
        for p in bx.cells() {
            if domain.contains(p) {
                // One seek per cell: deliberately faithful to the paper's
                // serial std::iostream implementation.
                let cell_index = (p[2] * ny + p[1]) * nx + p[0];
                f.seek(SeekFrom::Start(cell_index as u64 * 24))?;
                buf.resize(24, 0);
                f.read_exact(&mut buf)?;
                for d in 0..3 {
                    let v = f64::from_le_bytes(buf[d * 8..d * 8 + 8].try_into().unwrap());
                    coords.fab_mut(i).set(p, d, v);
                }
            } else {
                let xi = RealVect::new(
                    (p[0] as f64 + 0.5) / n[0],
                    (p[1] as f64 + 0.5) / n[1],
                    (p[2] as f64 + 0.5) / n[2],
                );
                let x = mapping.coords(xi);
                for d in 0..3 {
                    coords.fab_mut(i).set(p, d, x[d]);
                }
            }
        }
    }
    Ok(())
}

/// Computes all 27 metric components from stored coordinates.
///
/// `coords` must carry at least `metrics.nghost() + 2` ghost cells so the
/// 4th-order stencils reach. The contravariant metrics are formed from the
/// adjugate of the forward Jacobian (`M = adj(F)`, so `M/J = ∂ξ/∂x`).
pub fn compute_metrics(coords: &MultiFab, metrics: &mut MultiFab) {
    assert_eq!(metrics.ncomp(), NMETRICS);
    assert!(
        coords.nghost() >= metrics.nghost() + 2,
        "coords need 2 more ghosts than metrics for 4th-order stencils"
    );
    for i in 0..metrics.nfabs() {
        // Owned-data distribution: coords and metrics share a distribution
        // mapping, so an unallocated metrics patch has unallocated coords.
        if !metrics.is_allocated(i) {
            continue;
        }
        let cfab = coords.fab(i);
        let mfab = metrics.fab_mut(i);
        let bx = mfab.bx();
        for p in bx.cells() {
            // Forward Jacobian F[i][j] = ∂x_i/∂ξ_j.
            let mut f = [[0.0; 3]; 3];
            for (xc, frow) in f.iter_mut().enumerate() {
                for (xi_dir, fv) in frow.iter_mut().enumerate() {
                    *fv = d1(cfab, p, xi_dir, xc);
                }
            }
            let jac = det3(&f);
            debug_assert!(jac > 0.0, "negative Jacobian {jac} at {p:?}");
            // Adjugate: M[d][j] = J ∂ξ_d/∂x_j = cofactor matrix transpose.
            let adj = adjugate(&f);
            for (d, arow) in adj.iter().enumerate() {
                for (j, &a) in arow.iter().enumerate() {
                    mfab.set(p, comp::M + d * 3 + j, a);
                }
            }
            mfab.set(p, comp::JAC, jac);
            for (xc, frow) in f.iter().enumerate() {
                for (xi_dir, &fv) in frow.iter().enumerate() {
                    mfab.set(p, comp::FWD + xc * 3 + xi_dir, fv);
                }
            }
            // Diagonal curvature and skewness.
            let mut offdiag = 0.0;
            let mut diag = 0.0;
            for (d, frow) in f.iter().enumerate() {
                mfab.set(p, comp::CURV + d, d2(cfab, p, d, d));
                for (j, &fv) in frow.iter().enumerate() {
                    if j == d {
                        diag += fv.abs();
                    } else {
                        offdiag += fv.abs();
                    }
                }
            }
            mfab.set(p, comp::SKEW, offdiag / diag.max(1e-300));
            // Minimum physical spacing: column norms of F.
            let mut minsp = f64::INFINITY;
            for ((&fx, &fy), &fz) in f[0].iter().zip(&f[1]).zip(&f[2]) {
                let len = (fx.powi(2) + fy.powi(2) + fz.powi(2)).sqrt();
                minsp = minsp.min(len);
            }
            mfab.set(p, comp::MINSP, minsp);
        }
        // ∇²ξ_d needs second differences of M/J, i.e. a second pass over the
        // interior of the metric box (stencil radius 1 using already-written
        // M and J). The outermost ring carries zero — written explicitly, so
        // the result does not depend on how the allocation was initialised
        // (it may be NaN-poisoned under the fabcheck feature).
        for p in bx.cells() {
            for d in 0..3 {
                mfab.set(p, comp::LAPXI + d, 0.0);
            }
        }
        let inner = bx.grow(-1);
        let snapshot = mfab.clone();
        for p in inner.cells() {
            for d in 0..3 {
                let mut lap = 0.0;
                for j in 0..3 {
                    let e = IntVect::unit(j);
                    let val = |q: IntVect| {
                        snapshot.get(q, comp::M + d * 3 + j) / snapshot.get(q, comp::JAC)
                    };
                    // Second difference of ∂ξ_d/∂x_j along ξ_j approximates
                    // the physical Laplacian contribution on smooth grids.
                    lap += val(p + e) - 2.0 * val(p) + val(p - e);
                }
                mfab.set(p, comp::LAPXI + d, lap);
            }
        }
    }
}

/// Determinant of a 3×3 matrix.
fn det3(f: &[[f64; 3]; 3]) -> f64 {
    f[0][0] * (f[1][1] * f[2][2] - f[1][2] * f[2][1])
        - f[0][1] * (f[1][0] * f[2][2] - f[1][2] * f[2][0])
        + f[0][2] * (f[1][0] * f[2][1] - f[1][1] * f[2][0])
}

/// Adjugate (transposed cofactor matrix): `adj(F) · F = det(F) · I`.
fn adjugate(f: &[[f64; 3]; 3]) -> [[f64; 3]; 3] {
    let c = |r1: usize, c1: usize, r2: usize, c2: usize| f[r1][c1] * f[r2][c2] - f[r1][c2] * f[r2][c1];
    [
        [c(1, 1, 2, 2), -c(0, 1, 2, 2), c(0, 1, 1, 2)],
        [-c(1, 0, 2, 2), c(0, 0, 2, 2), -c(0, 0, 1, 2)],
        [c(1, 0, 2, 1), -c(0, 0, 2, 1), c(0, 0, 1, 1)],
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crocco_fab::{BoxArray, DistributionMapping};
    use crocco_geometry::{IndexBox, RampMapping, StretchedMapping, UniformMapping};
    use std::sync::Arc;

    fn build(
        mapping: &dyn GridMapping,
        extents: IntVect,
        nghost: i64,
    ) -> (MultiFab, MultiFab) {
        let bx = IndexBox::from_extents(extents[0], extents[1], extents[2]);
        let ba = Arc::new(BoxArray::new(vec![bx]));
        let dm = Arc::new(DistributionMapping::all_on_root(&ba));
        let mut coords = MultiFab::new(ba.clone(), dm.clone(), NCOORDS, nghost + 2);
        generate_coords(mapping, extents, &mut coords);
        let mut metrics = MultiFab::new(ba, dm, NMETRICS, nghost);
        compute_metrics(&coords, &mut metrics);
        (coords, metrics)
    }

    #[test]
    fn uniform_mapping_gives_diagonal_metrics() {
        let m = UniformMapping::new(RealVect::ZERO, RealVect::new(2.0, 1.0, 0.5));
        let n = IntVect::new(8, 8, 8);
        let (_c, metrics) = build(&m, n, 1);
        let fab = metrics.fab(0);
        let p = IntVect::new(4, 4, 4);
        // dx = 2/8, dy = 1/8, dz = 0.5/8 per index.
        let dx = [0.25, 0.125, 0.0625];
        let jac = fab.get(p, comp::JAC);
        assert!((jac - dx[0] * dx[1] * dx[2]).abs() < 1e-12);
        for (d, &dxd) in dx.iter().enumerate() {
            for j in 0..3 {
                let expect = if d == j { jac / dxd } else { 0.0 };
                assert!(
                    (fab.get(p, comp::M + d * 3 + j) - expect).abs() < 1e-12,
                    "M[{d}][{j}]"
                );
                let fexp = if d == j { dxd } else { 0.0 };
                assert!((fab.get(p, comp::FWD + j * 3 + d) - fexp).abs() < 1e-12);
            }
        }
        assert_eq!(fab.get(p, comp::SKEW), 0.0);
        assert!((fab.get(p, comp::MINSP) - 0.0625).abs() < 1e-12);
    }

    #[test]
    fn adjugate_times_forward_is_det_identity() {
        let f = [[1.0, 0.2, 0.0], [-0.1, 0.8, 0.3], [0.05, 0.0, 1.2]];
        let adj = adjugate(&f);
        let det = det3(&f);
        for (i, arow) in adj.iter().enumerate() {
            for j in 0..3 {
                let s: f64 = arow.iter().zip(&f).map(|(&a, frow)| a * frow[j]).sum();
                let expect = if i == j { det } else { 0.0 };
                assert!((s - expect).abs() < 1e-14, "({i},{j})");
            }
        }
    }

    #[test]
    fn stretched_mapping_metrics_match_analytic_jacobian() {
        let m = StretchedMapping::new(RealVect::ZERO, RealVect::splat(1.0), 2.0, 1);
        let n = IntVect::new(8, 32, 8);
        let (_c, metrics) = build(&m, n, 0);
        let fab = metrics.fab(0);
        let p = IntVect::new(4, 16, 4);
        // Analytic: dy/dη at η=(16.5)/32 with y = sinh(βη)/sinh(β).
        let eta = 16.5f64 / 32.0;
        let dyd_eta = 2.0 * (2.0 * eta).cosh() / 2.0f64.sinh();
        let per_index = dyd_eta / 32.0;
        let got = fab.get(p, comp::FWD + 4); // row 1, col 1 of the 3×3 forward metric
        assert!(
            (got - per_index).abs() / per_index < 1e-4,
            "{got} vs {per_index}"
        );
    }

    #[test]
    fn ramp_mapping_has_positive_jacobian_and_skew_past_corner() {
        let m = RampMapping::paper_dmr();
        let n = IntVect::new(32, 16, 4);
        let (_c, metrics) = build(&m, n, 0);
        let fab = metrics.fab(0);
        let mut any_skew = false;
        for p in metrics.valid_box(0).cells() {
            assert!(fab.get(p, comp::JAC) > 0.0, "J<=0 at {p:?}");
            if fab.get(p, comp::SKEW) > 1e-6 {
                any_skew = true;
            }
        }
        assert!(any_skew, "ramp grid must be sheared beyond the corner");
    }

    #[test]
    fn metric_identity_sum_vanishes_on_smooth_grids() {
        // Analytic identity: Σ_d ∂(J ∂ξ_d/∂x_j)/∂ξ_d = 0. Discretely it holds
        // to the truncation order of the difference scheme.
        let m = StretchedMapping::new(RealVect::ZERO, RealVect::splat(1.0), 1.5, 0);
        let n = IntVect::new(32, 8, 8);
        let (_c, metrics) = build(&m, n, 2);
        let fab = metrics.fab(0);
        let inner = metrics.valid_box(0).grow(-2);
        for p in inner.cells() {
            for j in 0..3 {
                let mut s = 0.0;
                for d in 0..3 {
                    let e = IntVect::unit(d);
                    s += (fab.get(p - e * 2, comp::M + d * 3 + j)
                        - 8.0 * fab.get(p - e, comp::M + d * 3 + j)
                        + 8.0 * fab.get(p + e, comp::M + d * 3 + j)
                        - fab.get(p + e * 2, comp::M + d * 3 + j))
                        / 12.0;
                }
                assert!(s.abs() < 1e-6, "identity residual {s} at {p:?} j={j}");
            }
        }
    }

    #[test]
    fn curvature_components_vanish_on_uniform_grids() {
        let m = UniformMapping::unit();
        let (_c, metrics) = build(&m, IntVect::new(8, 8, 8), 0);
        let fab = metrics.fab(0);
        for p in metrics.valid_box(0).cells() {
            for d in 0..3 {
                assert!(fab.get(p, comp::CURV + d).abs() < 1e-13);
                assert!(fab.get(p, comp::LAPXI + d).abs() < 1e-10);
            }
        }
    }
}
