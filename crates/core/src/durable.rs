//! Durable checkpoints: double-buffered atomic disk spill and coordinated
//! cold restart (DESIGN.md §4j).
//!
//! PR 5's chaos recovery survives any fault that leaves one live rank
//! holding the in-memory snapshot — but a *whole-process* death (node loss,
//! preemption, job migration) loses every copy. This module closes that
//! hole, the same way AMReX treats native checkpoint/restart as a
//! first-class subsystem so hierarchies can be rebuilt on a
//! differently-shaped machine:
//!
//! * [`DiskStore`] — the only sanctioned way checkpoint bytes reach disk:
//!   write to a temp file, `fsync`, atomically rename over the final name,
//!   then `fsync` the directory. A crash at any instant leaves either the
//!   old object or the new one, never a mix (enforced repo-wide by `cargo
//!   xtask lint` rule 8: no bare `fs::write`/`File::create` on
//!   checkpoint/manifest paths outside the writer modules).
//! * [`DurableCheckpointer`] — double-buffered spill: successive
//!   checkpoints alternate between the [`SLOT_NAMES`] slots (`chk_A` /
//!   `chk_B`), so the previous sealed checkpoint is *never opened for
//!   write* while the new one lands; a CRC-sealed [`Manifest`] records the
//!   latest valid slot. Transient write errors retry with exponential
//!   backoff; `NoSpace` does not (a full disk does not un-fill itself) and
//!   surfaces to the step loop, which degrades to in-memory-only
//!   checkpoints with a warning instead of aborting.
//! * [`recover`] — cold-restart entry: validate the manifest, check the
//!   referenced slot's length + CRC, fall back to the *other* slot when the
//!   manifest is lost or its slot is torn/corrupt, and return a typed
//!   [`CkptError`] (never a panic) when nothing survives.
//! * [`Simulation::from_checkpoint_file_owned`] — rebuilds an owned-data
//!   rank from the recovered file. Restart `nranks` may differ from write
//!   `nranks`: the checkpoint is whole-domain and the
//!   `DistributionMapping` re-partitions from the restart config (PR 8),
//!   so a 4-rank run restarts fine on 2 ranks, or 1 on 4.
//! * [`FaultyStore`] — the storage-fault chaos layer: wraps any store and
//!   sabotages writes per a seeded [`StorageFaultPlan`] — torn
//!   writes, bit flips, lost objects, slow/failing fsync, disk-full — so
//!   the recovery ladder above is *tested* against the failure model, not
//!   assumed.

use crate::config::SolverConfig;
use crate::driver::Simulation;
use crate::io::{parse_checkpoint, verify_sealed, Checkpoint};
use crocco_runtime::chaos::{crc32, StorageFault, StorageFaultPlan};
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// The two double-buffer slot names, in rotation order.
pub const SLOT_NAMES: [&str; 2] = ["chk_A", "chk_B"];

/// The manifest object name.
pub const MANIFEST_NAME: &str = "MANIFEST";

/// Typed durable-checkpoint failure — every fault the spill and recovery
/// paths can hit surfaces as one of these, never as a panic.
#[derive(Debug)]
pub enum CkptError {
    /// Underlying storage I/O failure. Transient by contract: the spill
    /// loop retries with backoff.
    Io(std::io::Error),
    /// The device is out of space. Not transient and not retried — the
    /// step loop degrades to in-memory-only checkpoints with a warning.
    NoSpace,
    /// An object exists but failed validation (CRC, parse, or manifest
    /// agreement).
    Corrupt {
        /// Which object (slot or manifest name).
        object: String,
        /// What the validation found.
        reason: String,
    },
    /// Cold restart found neither a usable manifest-referenced slot nor a
    /// parseable fallback slot.
    NoValidSlot {
        /// Per-object failure notes accumulated during the recovery scan.
        detail: String,
    },
}

impl CkptError {
    /// `true` for faults a retry can plausibly repair (plain I/O errors
    /// such as an injected fsync failure); `false` for disk-full and for
    /// validation failures, which retrying cannot fix.
    pub fn is_transient(&self) -> bool {
        matches!(self, CkptError::Io(_))
    }
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "checkpoint store I/O error: {e}"),
            CkptError::NoSpace => write!(f, "checkpoint store out of space"),
            CkptError::Corrupt { object, reason } => {
                write!(f, "checkpoint object {object} corrupt: {reason}")
            }
            CkptError::NoValidSlot { detail } => {
                write!(f, "no valid checkpoint slot to restart from ({detail})")
            }
        }
    }
}

impl std::error::Error for CkptError {}

/// Maps a raw I/O error, promoting `ENOSPC` to the typed non-transient
/// [`CkptError::NoSpace`] so the retry loop does not hammer a full disk.
fn map_io(e: std::io::Error) -> CkptError {
    // libc::ENOSPC == 28 on every Unix this builds for; `StorageFull` is
    // the portable kind on recent std.
    if e.raw_os_error() == Some(28) || format!("{:?}", e.kind()).contains("StorageFull") {
        CkptError::NoSpace
    } else {
        CkptError::Io(e)
    }
}

/// Where checkpoint objects live — injectable so the chaos layer
/// ([`FaultyStore`]) can sit between the spiller and the real disk.
///
/// Object names are flat (no path separators): the two slots and the
/// manifest. `write_atomic` is all-or-nothing *per the store's contract*:
/// after it returns `Ok`, a reader sees exactly `bytes`; after `Err`, the
/// previous object (if any) is still intact. Fault-injecting stores
/// deliberately violate the first half — that is what recovery is for.
pub trait CheckpointStore: Send {
    /// Durably replaces object `name` with `bytes`.
    fn write_atomic(&self, name: &str, bytes: &[u8]) -> Result<(), CkptError>;
    /// Reads object `name`; `Ok(None)` if it does not exist.
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, CkptError>;
    /// Best-effort removal of object `name` (absence is success).
    fn remove(&self, name: &str);
}

impl<S: CheckpointStore + Sync> CheckpointStore for std::sync::Arc<S> {
    fn write_atomic(&self, name: &str, bytes: &[u8]) -> Result<(), CkptError> {
        (**self).write_atomic(name, bytes)
    }
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, CkptError> {
        (**self).read(name)
    }
    fn remove(&self, name: &str) {
        (**self).remove(name)
    }
}

/// The production store: a directory on the local filesystem, written via
/// temp file + `fsync` + atomic rename + directory `fsync` — the classic
/// crash-consistent sequence (either the old object or the new one is
/// visible after a crash, never a torn mix).
pub struct DiskStore {
    dir: PathBuf,
}

impl DiskStore {
    /// Opens (creating if needed) the spill directory.
    pub fn new(dir: impl Into<PathBuf>) -> Result<Self, CkptError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(map_io)?;
        Ok(DiskStore { dir })
    }

    /// The directory this store writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

impl CheckpointStore for DiskStore {
    fn write_atomic(&self, name: &str, bytes: &[u8]) -> Result<(), CkptError> {
        assert!(
            !name.contains(['/', '\\']),
            "checkpoint object names are flat"
        );
        let tmp = self.dir.join(format!("{name}.tmp"));
        let fin = self.dir.join(name);
        let mut f = fs::File::create(&tmp).map_err(map_io)?;
        f.write_all(bytes).map_err(map_io)?;
        // Data must be on stable storage *before* the rename publishes it:
        // rename-then-sync can land a zero-length file after a crash.
        f.sync_all().map_err(map_io)?;
        drop(f);
        fs::rename(&tmp, &fin).map_err(map_io)?;
        // Persist the rename itself (the directory entry). Best effort:
        // some filesystems refuse fsync on a directory handle.
        if let Ok(d) = fs::File::open(&self.dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }

    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, CkptError> {
        match fs::read(self.dir.join(name)) {
            Ok(b) => Ok(Some(b)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(map_io(e)),
        }
    }

    fn remove(&self, name: &str) {
        let _ = fs::remove_file(self.dir.join(name));
    }
}

/// Storage-fault chaos layer: wraps a store and sabotages write attempts
/// per the seeded plan. Silent faults (torn write, bit flip, lost object)
/// *claim success* — only the CRC seal catches them at recovery; loud
/// faults (failing fsync, disk-full) surface as typed errors the spill
/// loop must handle. Reads pass through untouched: recovery sees exactly
/// what "landed".
pub struct FaultyStore<S: CheckpointStore> {
    inner: S,
    plan: StorageFaultPlan,
    attempts: AtomicU64,
    /// Count of faults injected so far (asserted on by the chaos tests).
    pub injected: AtomicU64,
}

impl<S: CheckpointStore> FaultyStore<S> {
    /// Wraps `inner` with the fault plan.
    pub fn new(inner: S, plan: StorageFaultPlan) -> Self {
        FaultyStore {
            inner,
            plan,
            attempts: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }
}

impl<S: CheckpointStore> CheckpointStore for FaultyStore<S> {
    fn write_atomic(&self, name: &str, bytes: &[u8]) -> Result<(), CkptError> {
        let attempt = self.attempts.fetch_add(1, Ordering::Relaxed);
        let (fault, aux) = self.plan.decide(attempt);
        if fault.is_some() {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        match fault {
            None => self.inner.write_atomic(name, bytes),
            Some(StorageFault::TornWrite) => {
                // A prefix lands at the *final* name (the crash-mid-write
                // this store's atomic contract normally forbids), and the
                // caller is told everything went fine.
                let keep = (aux as usize) % (bytes.len() + 1);
                self.inner.write_atomic(name, &bytes[..keep])?;
                Ok(())
            }
            Some(StorageFault::BitFlip) => {
                let mut flipped = bytes.to_vec();
                if !flipped.is_empty() {
                    let bit = (aux as usize) % (flipped.len() * 8);
                    flipped[bit / 8] ^= 1 << (bit % 8);
                }
                self.inner.write_atomic(name, &flipped)?;
                Ok(())
            }
            Some(StorageFault::LoseWrite) => {
                // Nothing lands — and the previous object under this name
                // is gone too (lost manifest / dropped journal entry).
                self.inner.remove(name);
                Ok(())
            }
            Some(StorageFault::SlowFsync) => {
                std::thread::sleep(std::time::Duration::from_millis(self.plan.fsync_delay_ms));
                self.inner.write_atomic(name, bytes)
            }
            Some(StorageFault::FsyncFail) => Err(CkptError::Io(std::io::Error::other(
                "injected fsync failure",
            ))),
            Some(StorageFault::NoSpace) => Err(CkptError::NoSpace),
        }
    }

    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, CkptError> {
        self.inner.read(name)
    }

    fn remove(&self, name: &str) {
        self.inner.remove(name)
    }
}

/// The parsed manifest: which slot holds the latest sealed checkpoint, and
/// what that slot's bytes must look like.
///
/// On-disk format — a CRC-sealed text object (same trailer as v2
/// checkpoints):
///
/// ```text
/// CROCCO-MAN 1
/// slot chk_A
/// step 12
/// len 43210
/// crc 89abcdef
/// <CRC trailer over everything above>
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// Slot name holding the checkpoint this manifest vouches for.
    pub slot: String,
    /// Step counter sealed into that checkpoint.
    pub step: u32,
    /// Exact byte length the slot object must have.
    pub len: usize,
    /// CRC-32 the slot object's bytes must hash to.
    pub crc: u32,
}

impl Manifest {
    /// Serializes the manifest, CRC-sealed.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Vec::new();
        // Writing to a Vec cannot fail.
        writeln!(w, "CROCCO-MAN 1").unwrap();
        writeln!(w, "slot {}", self.slot).unwrap();
        writeln!(w, "step {}", self.step).unwrap();
        writeln!(w, "len {}", self.len).unwrap();
        writeln!(w, "crc {:08x}", self.crc).unwrap();
        crate::io::seal_checkpoint(w)
    }

    /// Parses and validates sealed manifest bytes.
    pub fn parse(bytes: &[u8]) -> Result<Manifest, String> {
        let payload = verify_sealed(bytes).map_err(|e| e.to_string())?;
        let text = std::str::from_utf8(payload).map_err(|e| e.to_string())?;
        let mut lines = text.lines();
        if lines.next() != Some("CROCCO-MAN 1") {
            return Err("bad manifest magic".into());
        }
        let mut field = |key: &str| -> Result<String, String> {
            lines
                .next()
                .and_then(|l| l.strip_prefix(key))
                .map(|v| v.trim().to_string())
                .ok_or_else(|| format!("manifest missing field {key}"))
        };
        let slot = field("slot")?;
        if !SLOT_NAMES.contains(&slot.as_str()) {
            return Err(format!("manifest references unknown slot {slot:?}"));
        }
        let step = field("step")?.parse().map_err(|e| format!("bad step: {e}"))?;
        let len = field("len")?.parse().map_err(|e| format!("bad len: {e}"))?;
        let crc =
            u32::from_str_radix(&field("crc")?, 16).map_err(|e| format!("bad crc: {e}"))?;
        Ok(Manifest {
            slot,
            step,
            len,
            crc,
        })
    }
}

/// Double-buffered durable spiller: alternates checkpoint writes between
/// the two slots, publishes each with a sealed manifest, and retries
/// transient store errors with exponential backoff. One instance per
/// spilling rank (rank 0 of the chaos group — every rank seals identical
/// bytes, so one durable copy suffices).
pub struct DurableCheckpointer {
    store: Box<dyn CheckpointStore>,
    next_slot: usize,
    /// Retries per object write on transient errors (beyond the first
    /// attempt).
    pub max_retries: u32,
    /// Initial retry backoff in milliseconds; doubles per retry.
    pub backoff_ms: u64,
    /// Successful spills (slot + manifest both landed).
    pub spills: u64,
    /// Transient-error retries consumed across all spills.
    pub retries_used: u64,
}

impl DurableCheckpointer {
    /// Builds a spiller over `store`. Resume-aware: if a valid manifest is
    /// already present (this process restarted into an existing spill
    /// directory), rotation continues on the *other* slot, so the first
    /// new spill never overwrites the only good checkpoint.
    pub fn new(store: Box<dyn CheckpointStore>) -> Self {
        let next_slot = match store
            .read(MANIFEST_NAME)
            .ok()
            .flatten()
            .and_then(|b| Manifest::parse(&b).ok())
        {
            Some(m) => {
                let cur = SLOT_NAMES.iter().position(|&s| s == m.slot).unwrap_or(1);
                1 - cur
            }
            None => 0,
        };
        DurableCheckpointer {
            store,
            next_slot,
            max_retries: 4,
            backoff_ms: 1,
            spills: 0,
            retries_used: 0,
        }
    }

    /// Opens the production spiller on `dir`, wrapping the disk store in
    /// the chaos layer when a storage-fault plan is given.
    pub fn open(dir: impl Into<PathBuf>, plan: Option<StorageFaultPlan>) -> Result<Self, CkptError> {
        let disk = DiskStore::new(dir)?;
        Ok(match plan {
            Some(p) => DurableCheckpointer::new(Box::new(FaultyStore::new(disk, p))),
            None => DurableCheckpointer::new(Box::new(disk)),
        })
    }

    /// Spills one sealed checkpoint (`bytes`, taken at `step`) to the next
    /// slot and publishes it in the manifest. Returns the slot written.
    ///
    /// Ordering is the durability argument: the slot is written (and
    /// retried) first, the manifest only after the slot write reported
    /// success — so the manifest never vouches for bytes that were not
    /// claimed durable, and a crash between the two writes leaves the old
    /// manifest pointing at the old, still-intact slot.
    pub fn spill(&mut self, step: u32, bytes: &[u8]) -> Result<&'static str, CkptError> {
        let slot = SLOT_NAMES[self.next_slot];
        self.write_with_retry(slot, bytes)?;
        let manifest = Manifest {
            slot: slot.to_string(),
            step,
            len: bytes.len(),
            crc: crc32(bytes),
        };
        self.write_with_retry(MANIFEST_NAME, &manifest.to_bytes())?;
        self.next_slot = 1 - self.next_slot;
        self.spills += 1;
        Ok(slot)
    }

    fn write_with_retry(&mut self, name: &str, bytes: &[u8]) -> Result<(), CkptError> {
        let mut backoff = self.backoff_ms;
        let mut last: Option<CkptError> = None;
        for attempt in 0..=self.max_retries {
            match self.store.write_atomic(name, bytes) {
                Ok(()) => return Ok(()),
                Err(e) if e.is_transient() && attempt < self.max_retries => {
                    self.retries_used += 1;
                    last = Some(e);
                    std::thread::sleep(std::time::Duration::from_millis(backoff));
                    backoff = backoff.saturating_mul(2);
                }
                Err(e) => return Err(e),
            }
        }
        // Unreachable: the loop always returns. Kept for the type checker.
        Err(last.expect("retry loop exits via return"))
    }
}

/// What [`recover`] found: the parsed checkpoint, which slot supplied it,
/// and — when the manifest path failed — why recovery fell back.
pub struct Recovery {
    /// The recovered, CRC-verified checkpoint.
    pub checkpoint: Checkpoint,
    /// The slot it came from.
    pub slot: String,
    /// `None` when the manifest-referenced slot validated cleanly;
    /// otherwise the accumulated notes explaining the fallback.
    pub fallback: Option<String>,
}

/// Cold-restart recovery ladder:
///
/// 1. Read and validate the sealed manifest; load its referenced slot and
///    check exact length + CRC agreement. Clean → done.
/// 2. Manifest lost/corrupt, or its slot torn/flipped/missing → scan both
///    slots, keep every one that parses (each checkpoint is independently
///    CRC-sealed), and restart from the highest sealed step.
/// 3. Nothing parses → typed [`CkptError::NoValidSlot`] with the full
///    failure trail — never a panic, never garbage state.
pub fn recover(store: &dyn CheckpointStore) -> Result<Recovery, CkptError> {
    let mut notes: Vec<String> = Vec::new();
    match store.read(MANIFEST_NAME)? {
        None => notes.push("manifest missing".into()),
        Some(mb) => match Manifest::parse(&mb) {
            Err(e) => notes.push(format!("manifest unreadable: {e}")),
            Ok(m) => match load_slot(store, &m.slot) {
                Err(e) => notes.push(format!("manifest slot {}: {e}", m.slot)),
                Ok((bytes, chk)) => {
                    if bytes.len() == m.len && crc32(&bytes) == m.crc {
                        return Ok(Recovery {
                            checkpoint: chk,
                            slot: m.slot,
                            fallback: None,
                        });
                    }
                    // The slot parses on its own but is not the object the
                    // manifest vouches for (e.g. the slot landed and the
                    // manifest write was lost, or vice versa). Let the scan
                    // pick the best self-consistent slot.
                    notes.push(format!(
                        "manifest disagrees with slot {} (expected len {} crc {:08x}, \
                         found len {} crc {:08x})",
                        m.slot,
                        m.len,
                        m.crc,
                        bytes.len(),
                        crc32(&bytes)
                    ));
                }
            },
        },
    }
    // Fallback: both slots are candidates; each v2 checkpoint carries its
    // own whole-file CRC, so a parse success is an integrity proof. Prefer
    // the highest step (the newer of the double buffers).
    let mut best: Option<(String, Checkpoint)> = None;
    for name in SLOT_NAMES {
        match load_slot(store, name) {
            Ok((_, chk)) => {
                let better = best.as_ref().is_none_or(|(_, b)| chk.step > b.step);
                if better {
                    best = Some((name.to_string(), chk));
                }
            }
            Err(e) => notes.push(format!("slot {name}: {e}")),
        }
    }
    match best {
        Some((slot, checkpoint)) => Ok(Recovery {
            checkpoint,
            slot,
            fallback: Some(notes.join("; ")),
        }),
        None => Err(CkptError::NoValidSlot {
            detail: notes.join("; "),
        }),
    }
}

/// Reads and CRC-validates one slot, returning its raw bytes and parsed
/// checkpoint.
fn load_slot(store: &dyn CheckpointStore, name: &str) -> Result<(Vec<u8>, Checkpoint), CkptError> {
    let bytes = store.read(name)?.ok_or_else(|| CkptError::Corrupt {
        object: name.to_string(),
        reason: "missing".into(),
    })?;
    let chk = parse_checkpoint(&bytes).map_err(|e| CkptError::Corrupt {
        object: name.to_string(),
        reason: e.to_string(),
    })?;
    Ok((bytes, chk))
}

/// How a cold restart recovered, for logs and tests.
pub struct RestartInfo {
    /// The slot the state came from.
    pub slot: String,
    /// The step the simulation resumed at.
    pub step: u32,
    /// `Some(notes)` when recovery fell back past the manifest.
    pub fallback: Option<String>,
}

impl Simulation {
    /// Coordinated cold restart, owned-data: rebuilds rank `rank` of an
    /// `cfg.nranks`-rank simulation from the durable spill directory
    /// `dir`. Every rank of the fresh cluster calls this independently
    /// with the same directory — recovery is deterministic (same bytes,
    /// same ladder), so no coordination traffic is needed to agree on the
    /// restart point. `cfg.nranks` may differ from the writing run's rank
    /// count: the checkpoint is whole-domain and the distribution mapping
    /// re-partitions from `cfg`.
    pub fn from_checkpoint_file_owned(
        cfg: SolverConfig,
        dir: impl AsRef<Path>,
        rank: usize,
    ) -> Result<(Self, RestartInfo), CkptError> {
        let store = DiskStore::new(dir.as_ref())?;
        Self::from_checkpoint_store_owned(cfg, &store, rank)
    }

    /// [`Simulation::from_checkpoint_file_owned`] against an injectable
    /// store (the chaos tests recover through a [`FaultyStore`]'s debris).
    pub fn from_checkpoint_store_owned(
        mut cfg: SolverConfig,
        store: &dyn CheckpointStore,
        rank: usize,
    ) -> Result<(Self, RestartInfo), CkptError> {
        assert!(rank < cfg.nranks, "restart rank out of range");
        cfg.owned_dist = true;
        let rec = recover(store)?;
        let info = RestartInfo {
            slot: rec.slot,
            step: rec.checkpoint.step,
            fallback: rec.fallback,
        };
        Ok((
            Simulation::from_checkpoint_impl(cfg, &rec.checkpoint, Some(rank)),
            info,
        ))
    }

    /// Replicated-mode cold restart from the spill directory (the serial /
    /// oracle counterpart of [`Simulation::from_checkpoint_file_owned`]).
    pub fn from_checkpoint_file(
        cfg: SolverConfig,
        dir: impl AsRef<Path>,
    ) -> Result<(Self, RestartInfo), CkptError> {
        let store = DiskStore::new(dir.as_ref())?;
        let rec = recover(&store)?;
        let info = RestartInfo {
            slot: rec.slot,
            step: rec.checkpoint.step,
            fallback: rec.fallback,
        };
        Ok((
            Simulation::from_checkpoint_impl(cfg, &rec.checkpoint, None),
            info,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// An in-memory store for unit-testing the spiller and recovery ladder
    /// without touching the filesystem.
    #[derive(Default)]
    struct MemStore {
        objects: Mutex<std::collections::HashMap<String, Vec<u8>>>,
    }

    impl CheckpointStore for MemStore {
        fn write_atomic(&self, name: &str, bytes: &[u8]) -> Result<(), CkptError> {
            self.objects
                .lock()
                .unwrap()
                .insert(name.to_string(), bytes.to_vec());
            Ok(())
        }
        fn read(&self, name: &str) -> Result<Option<Vec<u8>>, CkptError> {
            Ok(self.objects.lock().unwrap().get(name).cloned())
        }
        fn remove(&self, name: &str) {
            self.objects.lock().unwrap().remove(name);
        }
    }

    fn sealed_checkpoint(step: u32) -> Vec<u8> {
        use crate::config::{CodeVersion, SolverConfig};
        use crate::problems::ProblemKind;
        let cfg = SolverConfig::builder()
            .problem(ProblemKind::SodX)
            .extents(32, 4, 4)
            .version(CodeVersion::V1_1)
            .build();
        let mut s = Simulation::new(cfg);
        s.advance_steps(step);
        crate::io::write_checkpoint_bytes(&s)
    }

    #[test]
    fn manifest_roundtrip_and_rejection() {
        let m = Manifest {
            slot: "chk_B".into(),
            step: 17,
            len: 1234,
            crc: 0xDEAD_BEEF,
        };
        let bytes = m.to_bytes();
        assert_eq!(Manifest::parse(&bytes).unwrap(), m);
        // Any bit flip breaks the seal.
        for pos in [0, bytes.len() / 2, bytes.len() - 2] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x10;
            assert!(Manifest::parse(&bad).is_err(), "flip at {pos} must reject");
        }
        // Unknown slot names are rejected even when sealed correctly.
        let evil = Manifest {
            slot: "../../etc/passwd".into(),
            ..m
        };
        assert!(Manifest::parse(&evil.to_bytes()).is_err());
    }

    #[test]
    fn spill_alternates_slots_and_recovery_prefers_manifest() {
        let store = std::sync::Arc::new(MemStore::default());
        let c1 = sealed_checkpoint(1);
        let c2 = sealed_checkpoint(2);
        let c3 = sealed_checkpoint(3);
        let mut sp = DurableCheckpointer::new(Box::new(store.clone()));
        assert_eq!(sp.spill(1, &c1).unwrap(), "chk_A");
        assert_eq!(sp.spill(2, &c2).unwrap(), "chk_B");
        assert_eq!(sp.spill(3, &c3).unwrap(), "chk_A");
        let rec = recover(&*store).unwrap();
        assert_eq!(rec.slot, "chk_A");
        assert_eq!(rec.checkpoint.step, 3);
        assert!(rec.fallback.is_none());
        // The other slot still holds the previous sealed checkpoint.
        assert_eq!(
            parse_checkpoint(&store.read("chk_B").unwrap().unwrap())
                .unwrap()
                .step,
            2
        );
    }

    #[test]
    fn torn_manifest_slot_falls_back_to_survivor() {
        let store = std::sync::Arc::new(MemStore::default());
        let c1 = sealed_checkpoint(1);
        let c2 = sealed_checkpoint(2);
        let mut sp = DurableCheckpointer::new(Box::new(store.clone()));
        sp.spill(1, &c1).unwrap();
        sp.spill(2, &c2).unwrap();
        // Tear the manifest's slot (chk_B) after the fact: recovery must
        // reject it by CRC and fall back to chk_A at step 1.
        let torn = c2[..c2.len() / 2].to_vec();
        store.write_atomic("chk_B", &torn).unwrap();
        let rec = recover(&*store).unwrap();
        assert_eq!(rec.slot, "chk_A");
        assert_eq!(rec.checkpoint.step, 1);
        let notes = rec.fallback.expect("fallback must be reported");
        assert!(notes.contains("chk_B"), "{notes}");
    }

    #[test]
    fn manifest_loss_scans_slots_for_highest_step() {
        let store = std::sync::Arc::new(MemStore::default());
        let mut sp = DurableCheckpointer::new(Box::new(store.clone()));
        sp.spill(4, &sealed_checkpoint(4)).unwrap();
        sp.spill(6, &sealed_checkpoint(6)).unwrap();
        store.remove(MANIFEST_NAME);
        let rec = recover(&*store).unwrap();
        assert_eq!(rec.checkpoint.step, 6, "scan must pick the newer slot");
        assert!(rec.fallback.unwrap().contains("manifest missing"));
    }

    #[test]
    fn empty_store_is_a_typed_error() {
        let store = MemStore::default();
        match recover(&store) {
            Err(CkptError::NoValidSlot { detail }) => {
                assert!(detail.contains("manifest missing"), "{detail}");
            }
            other => panic!("expected NoValidSlot, got {:?}", other.map(|r| r.slot)),
        }
    }

    #[test]
    fn retry_repairs_transient_fsync_failures() {
        // Fail the first two attempts, succeed after.
        let plan = StorageFaultPlan {
            scheduled: vec![
                (0, StorageFault::FsyncFail),
                (1, StorageFault::FsyncFail),
            ],
            ..StorageFaultPlan::default()
        };
        let store = FaultyStore::new(MemStore::default(), plan);
        let mut sp = DurableCheckpointer::new(Box::new(store));
        let c1 = sealed_checkpoint(1);
        sp.spill(1, &c1).expect("retries must repair transient faults");
        assert_eq!(sp.retries_used, 2);
    }

    #[test]
    fn nospace_is_not_retried() {
        let plan = StorageFaultPlan {
            nospace_after: Some(0),
            ..StorageFaultPlan::default()
        };
        let store = FaultyStore::new(MemStore::default(), plan);
        let mut sp = DurableCheckpointer::new(Box::new(store));
        let err = sp.spill(1, &sealed_checkpoint(1)).unwrap_err();
        assert!(matches!(err, CkptError::NoSpace));
        assert_eq!(sp.retries_used, 0, "disk-full must not be retried");
    }

    #[test]
    fn resume_into_existing_directory_rotates_away_from_good_slot() {
        let store = std::sync::Arc::new(MemStore::default());
        let mut sp = DurableCheckpointer::new(Box::new(store.clone()));
        sp.spill(5, &sealed_checkpoint(5)).unwrap(); // lands in chk_A
        // A fresh spiller over the same store must write chk_B next, not
        // clobber the only good checkpoint in chk_A.
        let mut sp2 = DurableCheckpointer::new(Box::new(store.clone()));
        assert_eq!(sp2.spill(6, &sealed_checkpoint(6)).unwrap(), "chk_B");
    }

    #[test]
    fn disk_store_atomic_write_roundtrip() {
        let dir = std::env::temp_dir().join("crocco_durable_unit");
        let _ = fs::remove_dir_all(&dir);
        let store = DiskStore::new(&dir).unwrap();
        store.write_atomic("chk_A", b"hello").unwrap();
        assert_eq!(store.read("chk_A").unwrap().unwrap(), b"hello");
        store.write_atomic("chk_A", b"world").unwrap();
        assert_eq!(store.read("chk_A").unwrap().unwrap(), b"world");
        assert!(store.read("chk_B").unwrap().is_none());
        // No temp-file debris after a successful write.
        assert!(!dir.join("chk_A.tmp").exists());
        store.remove("chk_A");
        assert!(store.read("chk_A").unwrap().is_none());
        let _ = fs::remove_dir_all(&dir);
    }
}
