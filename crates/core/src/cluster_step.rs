//! Distributed time stepping over a [`LocalCluster`] endpoint: the driver
//! loop of `driver.rs`, re-partitioned so each rank advances only the
//! patches its `DistributionMapping` owns and halo data crosses ranks as
//! real tag-matched messages (DESIGN.md §4f, docs/DISTRIBUTED.md).
//!
//! The execution model is *replicated metadata, owned data*: every rank
//! holds identical grid metadata (BoxArrays, DistributionMappings, plans) —
//! the paper's "replicated metadata" AMReX regime, §III-B — while fab
//! *data* lives only on its owner. Production stepping is the owned path
//! ([`Simulation::new_owned`]): each rank allocates O(owned cells), every
//! RK stage moves halo and coarse→fine gather data through cached plans
//! ([`run_dist_rk_stage`], fenced or overlapped per
//! [`SolverConfig::dist_overlap`], plus `exchange_chunks` for the two-level
//! gathers), `AverageDown` restricts across ranks
//! ([`average_down_dist`]), and regrid runs distributed: rank-local tagging
//! on owned patches, a sorted-bytes tag union, the deterministic
//! Berger–Rigoutsos clustering every rank replays identically, then a
//! redistribution of surviving data along the old→new `ParallelCopy` plan.
//! The step loop never re-replicates state.
//!
//! The older *replicated data* mode survives as the test oracle: every rank
//! keeps all `MultiFab`s bitwise-identical at step boundaries by calling
//! [`allgather_fabs`] after each stage, making grid control rank-local.
//! `tests/owned_dist_invariance.rs` asserts the owned path is
//! bitwise-identical to it at 1/2/4 ranks across regrids, sanitizers, and
//! chaos recovery.
//!
//! `ComputeDt` is the one true collective in both modes: each rank reduces
//! its owned patches, then [`RankEndpoint::allreduce_f64`] combines the
//! exact `min` (order-free, so bitwise-reproducible at any rank count).
//!
//! # Tag-epoch partition
//!
//! Every owned-data collective phase derives its message tags from
//! [`tags::owned`] with a 12-bit epoch base all ranks compute identically:
//! RK stages use `step·nstages + stage`; the regrid tag union, regrid
//! remap/redistribution, checkpoint gather, and construction rounds use the
//! reserved bases below. Phases fully drain their traffic (every send is
//! matched by a blocking receive in the same phase), so the occasional
//! wrap-around collision between a large stage epoch and a reserved base is
//! harmless — the namespaces only need to keep *concurrently in-flight*
//! messages apart.
//!
//! [`LocalCluster`]: crocco_runtime::LocalCluster
//! [`SolverConfig::dist_overlap`]: crate::config::SolverConfig::dist_overlap
//! [`average_down_dist`]: crocco_amr::average_down::average_down_dist

use crate::bc::PhysicalBc;
use crate::driver::{
    accumulate_rhs, gather_all_chunks, gather_valid_chunks, LevelData, PlanKind, RunReport,
    Simulation, AUX_DIST_SKELETON, AUX_DIST_VERIFY,
};
use crate::io::{checkpoint_header, patch_body_bytes, seal_checkpoint};
use crate::kernels::NGHOST;
use crate::metrics::NCOORDS;
use crate::state::NCONS;
use bytes::Bytes;
use crocco_amr::average_down::average_down_dist;
use crocco_amr::fillpatch::{
    fill_two_level_patch_with_remote, resolve_two_level_plans, CoarseTimeInterp, TwoLevelPlans,
};
use crocco_amr::tagging::TagSet;
use crocco_amr::BoundaryFiller;
use crocco_fab::owned::{exchange_chunks, redistribute};
use crocco_fab::plan::CopyChunk;
use crocco_fab::plan_cache::{PlanKey, PlanOp};
use crocco_fab::{
    allgather_fabs, band_slabs, fabcheck, run_dist_rk_stage, DistSkeleton, DistStage, FArrayBox,
    FabRd, FabRw, MultiFab, StageFabs, SweepPhase,
};
use crocco_geometry::{IntVect, ProblemDomain};
use crocco_runtime::chaos::CrashPhase;
use crocco_runtime::{tags, CommGroup, GroupEndpoint, RankEndpoint, StageError};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// 12-bit tag-epoch bases reserved for the owned-data collective phases
/// that run *between* RK stages (see the module doc's tag-epoch partition).
/// The low bits carry the step (or construction round) so back-to-back
/// occurrences of the same phase cannot cross-match.
const EPOCH_REGRID_TAGS: u64 = 0xD00;
/// Regrid remap: coarse→fine interpolation gathers plus the old→new
/// surviving-data redistribution.
const EPOCH_REGRID_REMAP: u64 = 0xD80;
/// Checkpoint gather: every rank streams its owned patch bodies to peers so
/// all ranks seal identical replicated snapshots.
const EPOCH_CHECKPOINT: u64 = 0xE00;
/// Initial-regrid construction rounds in [`Simulation::new_owned`].
const EPOCH_CONSTRUCT: u64 = 0xF00;

/// Cross-rank donor payloads for one coarse→fine gather: state chunks, and
/// — for coordinate-aware interpolators — coordinate chunks, each keyed by
/// absolute index into the cached plan's chunk list.
type RemoteGathers = (HashMap<usize, Bytes>, Option<HashMap<usize, Bytes>>);

/// What [`Simulation::advance_steps_chaos`] did to survive the run: how
/// often it checkpointed, whether this rank was the one that crashed, and
/// every rollback it executed (DESIGN.md §4g).
#[derive(Clone, Debug, Default)]
pub struct ChaosRunReport {
    /// `true` if *this* rank fail-stopped (scheduled crash or local kernel
    /// panic) — its `Simulation` is abandoned mid-step and must not be read.
    pub crashed: bool,
    /// Number of fault-triggered rollback + group-shrink recoveries.
    pub recoveries: u32,
    /// Number of in-memory checkpoints taken.
    pub checkpoints: u32,
    /// The step counter each recovery rolled back to (one entry per
    /// recovery; two faults inside one checkpoint interval produce two
    /// identical entries).
    pub rollback_steps: Vec<u32>,
    /// Largest serialized checkpoint, in bytes (the per-rank snapshot cost
    /// `perfmodel::resilience` prices).
    pub checkpoint_bytes: usize,
    /// Durable spills sealed to disk (slot + manifest both landed) — only
    /// counted on the spilling rank (logical rank 0 of the chaos group).
    pub spills: u32,
    /// Spill attempts abandoned (disk-full, or transient errors outlasting
    /// the retry budget). Each one degrades gracefully: the step loop
    /// continues on in-memory checkpoints alone.
    pub spill_failures: u32,
}

impl Simulation {
    /// Constructs an owned-data simulation on one cluster rank: fab data is
    /// allocated only for the patches `gep.rank()` owns, and the initial
    /// regrid loop runs distributed — each round tags owned patches, unions
    /// the tag sets across ranks (sorted-byte exchange, so every rank holds
    /// the identical set), and replays the deterministic Berger–Rigoutsos
    /// clustering in lockstep. Every rank therefore derives the same
    /// hierarchy the serial [`Simulation::new`] would, while touching only
    /// O(owned cells) of data.
    ///
    /// Forces `cfg.owned_dist = true`; `cfg.nranks` must equal
    /// `gep.nranks()`.
    pub fn new_owned(
        mut cfg: crate::config::SolverConfig,
        gep: &GroupEndpoint<'_>,
    ) -> Result<Self, StageError> {
        assert_eq!(cfg.nranks, gep.nranks(), "cfg.nranks must match the group size");
        cfg.owned_dist = true;
        let mut sim = Self::new_impl(cfg, Some(gep.rank()));
        if sim.cfg.version.amr_enabled() {
            for round in 0..sim.cfg.max_levels {
                let mut tag_sets = sim.compute_tags();
                sim.exchange_tag_union(gep, EPOCH_CONSTRUCT | round as u64, &mut tag_sets)?;
                if !sim.hierarchy.regrid(&tag_sets) {
                    break;
                }
                sim.rebuild_all_levels_from_ic();
            }
        }
        Ok(sim)
    }

    /// The owned-data [`Simulation::from_checkpoint`]: restores the
    /// hierarchy from a (replicated) checkpoint but allocates and fills only
    /// the patches `rank` owns. No communication — every rank restores from
    /// the same bytes.
    pub fn from_checkpoint_owned(
        mut cfg: crate::config::SolverConfig,
        chk: &crate::io::Checkpoint,
        rank: usize,
    ) -> Self {
        cfg.owned_dist = true;
        Self::from_checkpoint_impl(cfg, chk, Some(rank))
    }

    /// Unions per-level tag sets across all ranks in place. Each rank sends
    /// its sorted tag bytes for every level to every peer and absorbs
    /// theirs; set-union is order-free, so all ranks end with the identical
    /// `TagSet` and the downstream clustering stays in lockstep.
    fn exchange_tag_union(
        &self,
        gep: &GroupEndpoint<'_>,
        epoch_base: u64,
        tag_sets: &mut [TagSet],
    ) -> Result<(), StageError> {
        if gep.nranks() == 1 {
            return Ok(());
        }
        let me = gep.rank();
        let epoch = tags::epoch_with_generation(gep.generation(), epoch_base);
        for (l, t) in tag_sets.iter().enumerate() {
            let payload = Bytes::from(t.to_sorted_bytes());
            for dst in 0..gep.nranks() {
                if dst != me {
                    gep.send(dst, tags::owned(tags::OWNED_REDIST, epoch, l, me), payload.clone());
                }
            }
        }
        for (l, t) in tag_sets.iter_mut().enumerate() {
            for src in 0..gep.nranks() {
                if src == me {
                    continue;
                }
                let payload = gep.recv_matched(src, tags::owned(tags::OWNED_REDIST, epoch, l, src))?;
                t.absorb_bytes(&payload);
            }
        }
        Ok(())
    }

    /// Distributed regrid (the owned-data counterpart of the rank-local
    /// [`Simulation::regrid`]): tag owned patches, union tags across ranks,
    /// replay the deterministic clustering, then remap — coarse→fine
    /// interpolation reads remote coarse chunks gathered over the wire, and
    /// surviving same-level data moves along the old→new `ParallelCopy`
    /// plan via [`redistribute`] instead of being re-replicated.
    ///
    /// The serial path's post-remap ghost refresh (`fill_level`) is skipped:
    /// it writes only ghost cells, which the next RK stage's FillPatch
    /// rebuilds anyway, so valid-region state stays bitwise-identical to the
    /// replicated oracle.
    fn regrid_owned(&mut self, gep: &GroupEndpoint<'_>) -> Result<(), StageError> {
        let mut tag_sets = self.compute_tags();
        self.exchange_tag_union(
            gep,
            EPOCH_REGRID_TAGS | (u64::from(self.step) & 0x7F),
            &mut tag_sets,
        )?;
        if !self.hierarchy.regrid(&tag_sets) {
            return Ok(());
        }
        let epoch = tags::epoch_with_generation(
            gep.generation(),
            EPOCH_REGRID_REMAP | (u64::from(self.step) & 0x7F),
        );
        let cache = self.hierarchy.plan_cache().clone();
        let old_levels = std::mem::take(&mut self.levels);
        let mut old_iter = old_levels.into_iter();
        // Level 0 grids never change: reuse its data wholesale.
        self.levels.push(old_iter.next().expect("level 0 always exists"));
        let old_fine: Vec<LevelData> = old_iter.collect();
        for l in 1..self.hierarchy.nlevels() {
            let lev = self.hierarchy.level(l);
            let (ba, dm) = (lev.ba.clone(), lev.dm.clone());
            let domain = self.hierarchy.domain(l);
            let coarse_domain = self.hierarchy.domain(l - 1);
            let coarse_bc = PhysicalBc::new(self.cfg.problem, self.gas, self.level_extents(l - 1));
            let (coords, metrics) = self.make_level_grid(l);
            let mut state = self.alloc_mf(ba.clone(), dm.clone(), NCONS, NGHOST);
            let coarse = &self.levels[l - 1];
            let (remote_state, remote_coords) = self.exchange_interp_gathers(
                &coarse.state,
                &coarse.coords,
                &state,
                &coarse_domain,
                gep,
                epoch,
                l,
            )?;
            self.interp_full_level_with_remote(
                &coarse.state,
                &coarse.coords,
                &coords,
                &mut state,
                &coarse_domain,
                &coarse_bc,
                Some(&remote_state),
                remote_coords.as_ref(),
            );
            if let Some(old) = old_fine.get(l - 1) {
                let plan = cache.parallel_copy(
                    old.state.boxarray(),
                    old.state.distribution(),
                    state.boxarray(),
                    state.distribution(),
                    &domain,
                    0,
                    NCONS,
                );
                self.comm.absorb_plan(&plan.stats, PlanKind::ParallelCopy);
                redistribute(&old.state, &mut state, &plan.plan, gep, &|k| {
                    tags::owned(tags::OWNED_REDIST, epoch, l, k)
                })?;
            }
            let du = self.alloc_mf(ba, dm, NCONS, 0);
            self.levels.push(LevelData::new(state, du, coords, metrics));
        }
        Ok(())
    }

    /// Builds and executes the cross-rank exchange feeding
    /// [`Simulation::interp_full_level_with_remote`] for one new fine
    /// level: the coarse state (and, for coordinate-aware interpolators,
    /// coarse coords) chunks that remap gathers, enumerated in exactly the
    /// order the interpolation loop consumes them so remote payloads are
    /// keyed by the same absolute chunk index it looks up.
    #[allow(clippy::too_many_arguments)]
    fn exchange_interp_gathers(
        &self,
        coarse_state: &MultiFab,
        coarse_coords: &MultiFab,
        fine_state: &MultiFab,
        coarse_domain: &ProblemDomain,
        gep: &GroupEndpoint<'_>,
        epoch: u64,
        level: usize,
    ) -> Result<RemoteGathers, StageError> {
        let ratio = IntVect::splat(2);
        let needs_coords = self.interp.needs_coords();
        let cdm = coarse_state.distribution();
        let fdm = fine_state.distribution();
        let mut schunks: Vec<CopyChunk> = Vec::new();
        let mut cchunks: Vec<CopyChunk> = Vec::new();
        for i in 0..fine_state.nfabs() {
            let valid = fine_state.valid_box(i);
            let cbox = valid.coarsen(ratio).grow(self.interp.coarse_ghost() + 1);
            for (src_id, region, shift) in
                gather_valid_chunks(coarse_state.boxarray(), cbox, coarse_domain)
            {
                schunks.push(CopyChunk {
                    src_id,
                    dst_id: i,
                    src_rank: cdm.owner(src_id),
                    dst_rank: fdm.owner(i),
                    region,
                    shift,
                });
            }
            if needs_coords {
                for (src_id, region, shift) in
                    gather_all_chunks(coarse_coords, cbox, coarse_domain)
                {
                    cchunks.push(CopyChunk {
                        src_id,
                        dst_id: i,
                        src_rank: cdm.owner(src_id),
                        dst_rank: fdm.owner(i),
                        region,
                        shift,
                    });
                }
            }
        }
        let remote_state = exchange_chunks(coarse_state, &schunks, NCONS, gep, &|k| {
            tags::owned(tags::OWNED_GATHER, epoch, level, k)
        })?;
        let remote_coords = if needs_coords {
            Some(exchange_chunks(coarse_coords, &cchunks, NCOORDS, gep, &|k| {
                tags::owned(tags::OWNED_COORDS, epoch, level, k)
            })?)
        } else {
            None
        };
        Ok((remote_state, remote_coords))
    }

    /// Serializes the full replicated checkpoint from owned data: every
    /// rank streams its owned patch bodies to all peers and assembles the
    /// patches in hierarchy order, so all ranks seal byte-identical
    /// snapshots (the invariant chaos recovery relies on). Falls back to
    /// the rank-local [`crate::io::write_checkpoint_bytes`] in replicated
    /// mode, where all data is already present.
    fn checkpoint_bytes_cluster(&self, gep: &GroupEndpoint<'_>) -> Result<Vec<u8>, StageError> {
        let Some(rank) = self.owned_rank else {
            return Ok(crate::io::write_checkpoint_bytes(self));
        };
        let epoch = tags::epoch_with_generation(
            gep.generation(),
            EPOCH_CHECKPOINT | (u64::from(self.step) & 0xFF),
        );
        // All sends first: owned bodies broadcast to every peer.
        for (l, lev) in self.levels.iter().enumerate() {
            let owners = lev.state.distribution();
            for i in 0..lev.state.nfabs() {
                if owners.owner(i) != rank {
                    continue;
                }
                let body = Bytes::from(patch_body_bytes(&lev.state, i));
                let tag = tags::owned(tags::OWNED_CKPT, epoch, l, i);
                for dst in 0..gep.nranks() {
                    if dst != rank {
                        gep.send(dst, tag, body.clone());
                    }
                }
            }
        }
        let mut w = checkpoint_header(self);
        for (l, lev) in self.levels.iter().enumerate() {
            let owners = lev.state.distribution();
            for i in 0..lev.state.nfabs() {
                let owner = owners.owner(i);
                if owner == rank {
                    w.extend_from_slice(&patch_body_bytes(&lev.state, i));
                } else {
                    let body =
                        gep.recv_matched(owner, tags::owned(tags::OWNED_CKPT, epoch, l, i))?;
                    w.extend_from_slice(&body);
                }
            }
        }
        Ok(seal_checkpoint(w))
    }

    /// One full time step on a cluster rank (Algorithm 1 loop body,
    /// distributed). Every rank of the cluster must call this in lockstep
    /// with an identically configured, identically advanced `Simulation`.
    /// Faults are unrecoverable here (the endpoint's full-group view);
    /// chaos runs go through [`Simulation::advance_steps_chaos`].
    pub fn step_cluster(&mut self, ep: &RankEndpoint) {
        let gep = GroupEndpoint::full(ep);
        self.try_step_cluster(&gep)
            .expect("communication fault outside the chaos recovery loop");
    }

    /// One full time step over `gep`'s communicator group, surfacing
    /// injected crashes and detected communication faults as typed errors
    /// the chaos recovery loop can act on.
    pub fn try_step_cluster(&mut self, gep: &GroupEndpoint<'_>) -> Result<(), StageError> {
        assert_eq!(
            gep.nranks(),
            self.cfg.nranks,
            "group size must match cfg.nranks (the DistributionMapping rank count)"
        );
        if let Some(r) = self.owned_rank {
            assert_eq!(
                gep.rank(),
                r,
                "endpoint logical rank must match the simulation's owned rank"
            );
        }
        self.crash_check(gep, CrashPhase::StepStart)?;
        if self.cfg.version.amr_enabled()
            && self.step > 0
            && self.step.is_multiple_of(self.cfg.regrid_freq)
        {
            let t0 = std::time::Instant::now();
            if self.owned_rank.is_some() {
                // Owned data: tag locally, union tags, replay the
                // deterministic clustering, redistribute surviving data.
                self.regrid_owned(gep)?;
            } else {
                // Replicated data makes regrid + remap rank-local: every
                // rank tags, grids, and remaps identically (deterministic
                // kernels, no RNG), so the hierarchies stay in lockstep
                // without a metadata exchange.
                self.regrid();
            }
            self.profiler.add("Regrid", t0.elapsed().as_secs_f64());
        }
        self.crash_check(gep, CrashPhase::AfterRegrid)?;
        let t0 = std::time::Instant::now();
        if self.cfg.subcycling {
            self.compute_dt_cluster_subcycled(gep)?;
        } else {
            self.compute_dt_cluster(gep)?;
        }
        self.profiler.add("ComputeDt", t0.elapsed().as_secs_f64());
        self.crash_check(gep, CrashPhase::AfterDt)?;
        if self.cfg.subcycling {
            self.advance_subcycled_cluster(gep)?;
        } else {
            self.rk3_cluster(gep)?;
        }
        self.step += 1;
        self.time += self.dt;
        Ok(())
    }

    /// Test hook for the fabcheck chaos scenario: silently corrupts the
    /// metrics of the first level-0 patch owned by `rank` (the NaN a
    /// flipped bit in device memory would plant). The next RK stage folds
    /// it into the right-hand side, and the `nan_poison` post-stage sweep
    /// traps — exercising the panic-to-fail-stop conversion in
    /// [`Simulation::advance_steps_chaos`].
    #[cfg(feature = "fabcheck")]
    pub fn poison_metrics_for_test(&mut self, rank: usize) {
        let lev = &mut self.levels[0];
        let owners = lev.metrics.distribution().clone();
        for i in 0..lev.metrics.nfabs() {
            if owners.owner(i) == rank {
                let p = lev.metrics.valid_box(i).lo();
                lev.metrics.fab_mut(i).set(p, 0, f64::NAN);
                return;
            }
        }
        panic!("rank {rank} owns no level-0 patch to poison");
    }

    /// Fails this rank with [`StageError::CrashInjected`] if the chaos
    /// config schedules a crash for `(physical rank, step, phase)`.
    fn crash_check(&self, gep: &GroupEndpoint<'_>, phase: CrashPhase) -> Result<(), StageError> {
        if let Some(chaos) = &self.cfg.chaos {
            if chaos.crash_at(gep.physical_rank(), self.step, phase).is_some() {
                return Err(StageError::CrashInjected);
            }
        }
        Ok(())
    }

    /// Advances `n` steps on a cluster rank and reports (the distributed
    /// [`Simulation::advance_steps`]).
    pub fn advance_steps_cluster(&mut self, n: u32, ep: &RankEndpoint) -> RunReport {
        for _ in 0..n {
            self.step_cluster(ep);
        }
        self.report()
    }

    /// Advances to `self.step + n` under the chaos runtime: periodic
    /// in-memory checkpoints, fail-stop on scheduled crashes (and on local
    /// kernel panics, e.g. a `fabcheck` NaN trap), and checkpoint-rollback
    /// recovery on detected peer faults (DESIGN.md §4g).
    ///
    /// Recovery protocol, executed independently but identically by every
    /// survivor (all agreement is derived from shared deterministic state,
    /// never negotiated):
    ///
    /// 1. bump the communicator generation (stamped into halo/gather tag
    ///    epochs, so replayed pre-fault traffic can never match post-fault
    ///    receives),
    /// 2. shrink the group by the chaos runtime's dead ranks and run a
    ///    barrier allreduce over the survivors; if the barrier itself faults
    ///    or another member died meanwhile, re-scan and retry — every
    ///    survivor retries the same number of times, keeping the collective
    ///    sequence counter (which never rolls back) aligned,
    /// 3. purge stale unexpected packets from older generations,
    /// 4. restore the last in-memory checkpoint into a fresh `Simulation`
    ///    whose `nranks` is the shrunken group size (the load balancer
    ///    re-partitions over the survivors), and resume stepping.
    ///
    /// Checkpoints are taken only at step boundaries. Under the replicated
    /// oracle every rank's serialized state is already identical; under
    /// owned data `Simulation::checkpoint_bytes_cluster` first gathers
    /// owned patch bodies across the group so every rank still seals the
    /// same whole-domain snapshot — which is what lets any surviving subset
    /// restore after a crash without the dead rank's memory. The gather
    /// runs inside the fault boundary: a peer death during checkpointing
    /// routes to the same rollback as a death mid-step. (A dying rank
    /// always completes the gather before its crash point — crashes inject
    /// at step phase boundaries and panics happen inside RK stages, both
    /// strictly after the gather — so landed snapshots are never torn.)
    pub fn advance_steps_chaos(&mut self, n: u32, ep: &RankEndpoint) -> ChaosRunReport {
        let target = self.step + n;
        let interval = self
            .cfg
            .chaos
            .as_ref()
            .map_or(u32::MAX, |c| c.checkpoint_interval.max(1));
        let mut report = ChaosRunReport::default();
        let owned = self.owned_rank.is_some();
        // Durable spill (DESIGN.md §4j): every rank opens the spiller —
        // after a group shrink a *different* physical rank may become
        // logical rank 0 and take over spilling (the resume-aware slot
        // rotation reads the manifest, so the takeover never clobbers the
        // only good slot). A directory that cannot be opened degrades to
        // in-memory-only checkpoints with a warning, like any other spill
        // failure.
        let mut spiller = self.cfg.spill_dir.as_ref().and_then(|dir| {
            let plan = self.cfg.chaos.as_ref().and_then(|c| c.storage.clone());
            match crate::durable::DurableCheckpointer::open(dir, plan) {
                Ok(sp) => Some(sp),
                Err(e) => {
                    report.spill_failures += 1;
                    eprintln!(
                        "[crocco] durable spill disabled: cannot open {}: {e}; \
                         continuing on in-memory checkpoints",
                        dir.display()
                    );
                    None
                }
            }
        });
        let mut group = CommGroup::full(self.cfg.nranks);
        let mut generation: u64 = 0;
        let mut snapshot: Vec<u8> = Vec::new();
        let mut snapshot_step: Option<u32> = None;
        while self.step < target {
            let gep = GroupEndpoint::new(ep, group.clone(), generation);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                || -> Result<(), StageError> {
                    if snapshot_step != Some(self.step)
                        && (snapshot_step.is_none() || self.step.is_multiple_of(interval))
                    {
                        snapshot = self.checkpoint_bytes_cluster(&gep)?;
                        snapshot_step = Some(self.step);
                        report.checkpoints += 1;
                        report.checkpoint_bytes = report.checkpoint_bytes.max(snapshot.len());
                        // One durable copy per checkpoint: every rank holds
                        // the identical sealed bytes after the gather, so
                        // the group's logical rank 0 spills for all.
                        if gep.rank() == 0 {
                            if let Some(sp) = spiller.as_mut() {
                                match sp.spill(self.step, &snapshot) {
                                    Ok(_) => report.spills += 1,
                                    Err(e) => {
                                        report.spill_failures += 1;
                                        eprintln!(
                                            "[crocco] durable spill failed at step {}: {e}; \
                                             continuing on in-memory checkpoints",
                                            self.step
                                        );
                                    }
                                }
                            }
                        }
                    }
                    self.try_step_cluster(&gep)
                },
            ));
            drop(gep);
            match outcome {
                Ok(Ok(())) => {}
                Ok(Err(StageError::CrashInjected)) | Err(_) => {
                    // This rank fail-stops: scheduled crash, or a local
                    // kernel panic (poisoned NaN under fabcheck) treated as
                    // one. Mark it dead so blocked peers' waits fault.
                    if let Some(ch) = ep.chaos() {
                        ch.mark_dead(ep.rank());
                    }
                    report.crashed = true;
                    return report;
                }
                Ok(Err(_fault)) => {
                    // A peer died (RankDead, or a timeout caused by its
                    // silence). Re-form the group and roll back.
                    report.recoveries += 1;
                    generation += 1;
                    loop {
                        let chaos = ep.chaos().expect("faults require the chaos runtime");
                        let survivors = group.without(
                            &group
                                .members()
                                .iter()
                                .copied()
                                .filter(|&r| !chaos.is_alive(r))
                                .collect::<Vec<_>>(),
                        );
                        ep.cancel_posted();
                        let barrier = GroupEndpoint::new(ep, survivors.clone(), generation);
                        let ok = barrier.allreduce_f64(1.0, f64::min).is_ok();
                        // A death *during* the barrier can leave some
                        // survivors completed and others faulted; both
                        // re-scan and retry so everyone consumes the same
                        // collective sequence numbers.
                        if ok && chaos.first_dead_in(survivors.members()).is_none() {
                            group = survivors;
                            break;
                        }
                    }
                    ep.purge_stale_unexpected(generation);
                    let chk = crate::io::parse_checkpoint(&snapshot)
                        .expect("in-memory checkpoint cannot be corrupt");
                    let mut cfg = self.cfg.clone();
                    cfg.nranks = group.len();
                    // The shrunken group renumbers logical ranks; under
                    // owned data this rank re-owns the patches its *new*
                    // logical rank maps to in the re-partitioned
                    // DistributionMapping.
                    let new_rank = owned.then(|| {
                        group
                            .members()
                            .iter()
                            .position(|&r| r == ep.rank())
                            .expect("a survivor is always in its own group")
                    });
                    *self = Simulation::from_checkpoint_impl(cfg, &chk, new_rank);
                    report.rollback_steps.push(self.step);
                    snapshot_step = Some(self.step);
                }
            }
        }
        report
    }

    /// `ComputeDt`, distributed: the CFL minimum over *owned* patches,
    /// combined across ranks with an exact `min` reduction. Bitwise equal
    /// to the serial global minimum at any rank count.
    fn compute_dt_cluster(&mut self, ep: &GroupEndpoint<'_>) -> Result<(), StageError> {
        let rank = ep.rank();
        let mut dt = f64::INFINITY;
        let backend = self.cfg.kernel_backend;
        for lev in &self.levels {
            let owners = lev.state.distribution().clone();
            for i in 0..lev.state.nfabs() {
                if owners.owner(i) != rank {
                    continue;
                }
                let d = backend.compute_dt_patch(
                    lev.state.fab(i),
                    lev.metrics.fab(i),
                    lev.state.valid_box(i),
                    &self.gas,
                    self.cfg.cfl,
                );
                dt = dt.min(d);
            }
        }
        let dt = ep.allreduce_f64(dt, f64::min)?;
        self.comm.reductions += 1;
        assert!(dt.is_finite() && dt > 0.0, "ComputeDt produced dt={dt}");
        self.dt = dt;
        Ok(())
    }

    /// The subcycled analog of
    /// [`compute_dt_cluster`](Self::compute_dt_cluster): each rank folds its
    /// owned patches per level, scales the level minimum by `2^ℓ` (exact — a
    /// power of two), and a single `allreduce` combines the coarse-step bound
    /// `dt₀ = min_ℓ (2^ℓ · min dt)`. Bitwise the serial
    /// [`compute_dt_subcycled`](Simulation::compute_dt_subcycled) at any rank
    /// count: `min` is order-free and the exact scaling commutes with it.
    fn compute_dt_cluster_subcycled(&mut self, ep: &GroupEndpoint<'_>) -> Result<(), StageError> {
        let rank = ep.rank();
        let backend = self.cfg.kernel_backend;
        let mut dt = f64::INFINITY;
        for (l, lev) in self.levels.iter().enumerate() {
            let owners = lev.state.distribution().clone();
            let mut m = f64::INFINITY;
            for i in 0..lev.state.nfabs() {
                if owners.owner(i) != rank {
                    continue;
                }
                let d = backend.compute_dt_patch(
                    lev.state.fab(i),
                    lev.metrics.fab(i),
                    lev.state.valid_box(i),
                    &self.gas,
                    self.cfg.cfl,
                );
                m = m.min(d);
            }
            dt = dt.min(m * (1u64 << l) as f64);
        }
        let dt = ep.allreduce_f64(dt, f64::min)?;
        self.comm.reductions += 1;
        assert!(dt.is_finite() && dt > 0.0, "ComputeDt produced dt={dt}");
        self.dt = dt;
        Ok(())
    }

    /// Draws the next subcycled-phase tag epoch. The recursion visits its
    /// fill/exchange phases in the same order on every rank, so the monotone
    /// `sub_slot` counter is rank-identical; the 12-bit base wraps below the
    /// reserved regrid/checkpoint bases (`% EPOCH_REGRID_TAGS`) so no live
    /// phase ever aliases them.
    fn next_sub_epoch(&mut self, gep: &GroupEndpoint<'_>) -> u64 {
        let base = self.sub_slot % EPOCH_REGRID_TAGS;
        self.sub_slot += 1;
        tags::epoch_with_generation(gep.generation(), base)
    }

    /// One subcycled coarse step over the cluster: the distributed analog of
    /// the serial recursive `timeStep` (`advance_level_recursive`; worked
    /// timeline in docs/DISTRIBUTED.md §Subcycled steps), sharing the serial
    /// path's save-old / record / fold / reflux / average-down structure
    /// while every fill, fine-part shipment, and restriction crosses ranks
    /// through tag-epoch-partitioned messages.
    fn advance_subcycled_cluster(&mut self, gep: &GroupEndpoint<'_>) -> Result<(), StageError> {
        self.ensure_subcycle();
        let (t, dt) = (self.time, self.dt);
        self.advance_level_recursive_cluster(0, t, dt, None, gep)
    }

    /// Advances level `l` from `t` by `dt` on this rank's owned patches, then
    /// recursively takes the two half-`dt` substeps of the next finer level,
    /// ships fine register parts to coarse owners, refluxes, and averages
    /// down across ranks. `parent` carries the coarser level's `(t_old, dt)`
    /// for ghost time interpolation — exactly the serial recursion, so the
    /// phase order (and hence `sub_slot`) is identical on every rank.
    fn advance_level_recursive_cluster(
        &mut self,
        l: usize,
        t: f64,
        dt: f64,
        parent: Option<(f64, f64)>,
        gep: &GroupEndpoint<'_>,
    ) -> Result<(), StageError> {
        let nstages = self.cfg.time_scheme.stages();
        let has_finer = l + 1 < self.hierarchy.nlevels();
        let owned = self.owned_rank.is_some();
        let rank = gep.rank();
        if has_finer {
            self.save_old(l);
            self.subcycle[l].register.reset();
            self.subcycle[l].zero_coarse_bufs();
        }
        if l > 0 {
            self.subcycle[l - 1].zero_fine_bufs();
        }
        for stage in 0..nstages {
            let t_fill = t + self.cfg.time_scheme.stage_time_fraction(stage) * dt;
            let alpha = parent.map(|(pt, pdt)| (t_fill - pt) / pdt);
            let sub = crate::subcycle::SubCtx { t, alpha };
            let epoch = self.next_sub_epoch(gep);
            self.fill_and_advance_cluster(l, stage, dt, gep, epoch, Some(&sub))?;
            if !owned {
                // Replicated oracle (single-rank only under subcycling —
                // config validation): restore replication before anything
                // reads non-owned patches.
                let t0 = std::time::Instant::now();
                allgather_fabs(&mut self.levels[l].state, gep, l, epoch)?;
                self.profiler.add("Allgather", t0.elapsed().as_secs_f64());
            }
            if self.cfg.nan_poison {
                let lev = &self.levels[l];
                for i in 0..lev.state.nfabs() {
                    if lev.state.is_allocated(i) {
                        assert!(
                            !lev.state.fab(i).has_nonfinite(lev.state.valid_box(i)),
                            "fabcheck: non-finite in sub RK stage {stage} state L{l} patch {i}"
                        );
                    }
                }
                for i in 0..lev.du.nfabs() {
                    if lev.du.distribution().owner(i) == rank {
                        assert!(
                            !lev.du.fab(i).has_nonfinite(lev.du.valid_box(i)),
                            "fabcheck: non-finite in sub RK stage {stage} dU L{l} patch {i}"
                        );
                    }
                }
            }
        }
        let mut n = 0u64;
        for i in 0..self.levels[l].state.nfabs() {
            n += self.levels[l].state.valid_box(i).num_points();
        }
        self.cell_updates += n;
        if has_finer {
            self.subcycle[l].fold_coarse();
        }
        if l > 0 {
            let (_, pdt) = parent.unwrap();
            self.subcycle[l - 1].fold_fine(dt / pdt);
        }
        if has_finer {
            let fdt = 0.5 * dt;
            for i in 0..2 {
                self.advance_level_recursive_cluster(
                    l + 1,
                    t + i as f64 * fdt,
                    fdt,
                    Some((t, dt)),
                    gep,
                )?;
            }
            let t0 = std::time::Instant::now();
            if owned {
                let epoch = self.next_sub_epoch(gep);
                self.ship_fine_parts(l, gep, epoch)?;
            }
            {
                let reg = &self.subcycle[l].register;
                let LevelData { state, metrics, .. } = &mut self.levels[l];
                reg.reflux(state, metrics, crate::metrics::comp::JAC, dt);
            }
            self.profiler.add("Reflux", t0.elapsed().as_secs_f64());
            let t0 = std::time::Instant::now();
            let epoch = self.next_sub_epoch(gep);
            {
                let (lo, hi) = self.levels.split_at_mut(l + 1);
                if owned {
                    average_down_dist(
                        &hi[0].state,
                        &mut lo[l].state,
                        IntVect::splat(2),
                        gep,
                        &|k| tags::owned(tags::OWNED_REDIST, epoch, l + 1, k),
                    )?;
                } else {
                    crocco_amr::average_down::average_down(
                        &hi[0].state,
                        &mut lo[l].state,
                        IntVect::splat(2),
                    );
                }
            }
            self.profiler
                .add("AverageDown", t0.elapsed().as_secs_f64());
        }
        Ok(())
    }

    /// Ships the fine-side register sums of level pair `l` from fine-patch
    /// owners to coarse-patch owners (`tags::OWNED_REFLUX`), merging each
    /// landed part onto the receiver's all-zero fine accumulators — bitwise
    /// the single-rank fold, since every register face has exactly one fine
    /// contributor patch (asserted in `subcycle::tests`). Pairs owned by one
    /// rank are already folded locally and move nothing.
    fn ship_fine_parts(
        &mut self,
        l: usize,
        gep: &GroupEndpoint<'_>,
        epoch: u64,
    ) -> Result<(), StageError> {
        let fine_dm = self.levels[l + 1].state.distribution().clone();
        let coarse_dm = self.levels[l].state.distribution().clone();
        let rank = gep.rank();
        let mktag = |k: usize| tags::owned(tags::OWNED_REFLUX, epoch, l, k);
        let landed: Vec<(usize, Bytes)> = {
            let reg = &self.subcycle[l];
            // All sends first (buffered transport), then blocking receives —
            // the fenced discipline of `exchange_chunks`.
            for (k, (j, p, faces)) in reg.fine_ship.iter().enumerate() {
                if fine_dm.owner(*j) != rank || coarse_dm.owner(*p) == rank {
                    continue;
                }
                let mut out = Vec::with_capacity(faces.len() * NCONS * 8);
                for f in faces {
                    let part = reg
                        .register
                        .fine_part(f)
                        .expect("manifest face is registered");
                    for x in part.iter().take(NCONS) {
                        out.extend_from_slice(&x.to_le_bytes());
                    }
                }
                gep.send(coarse_dm.owner(*p), mktag(k), Bytes::from(out));
            }
            let handles: Vec<(usize, crocco_runtime::RecvHandle)> = reg
                .fine_ship
                .iter()
                .enumerate()
                .filter(|(_, (j, p, _))| {
                    coarse_dm.owner(*p) == rank && fine_dm.owner(*j) != rank
                })
                .map(|(k, (j, _, _))| (k, gep.irecv(fine_dm.owner(*j), mktag(k))))
                .collect();
            let mut landed = Vec::with_capacity(handles.len());
            for (k, h) in &handles {
                landed.push((*k, gep.wait(h)?));
            }
            landed
        };
        let reg = &mut self.subcycle[l];
        for (k, payload) in landed {
            let (_, _, faces) = &reg.fine_ship[k];
            assert_eq!(
                payload.len(),
                faces.len() * NCONS * 8,
                "reflux part payload size mismatch"
            );
            let mut words = payload.chunks_exact(8);
            for f in faces {
                let mut part = [0.0; NCONS];
                for x in &mut part {
                    let w = words.next().expect("sized above");
                    *x = f64::from_le_bytes(w.try_into().expect("8-byte word"));
                }
                reg.register.add_fine_part(*f, &part);
            }
        }
        Ok(())
    }

    /// Algorithm 2, distributed: per stage, per level, one rank-crossing RK
    /// stage. Under owned data the state stays distributed throughout —
    /// halos and coarse→fine gathers cross ranks through plans, and
    /// `AverageDown` restricts owned fine patches into owned coarse patches
    /// over the wire ([`average_down_dist`]). Under the replicated oracle
    /// each stage instead ends with a state [`allgather_fabs`], after which
    /// grid control is rank-local.
    fn rk3_cluster(&mut self, ep: &GroupEndpoint<'_>) -> Result<(), StageError> {
        let dt = self.dt;
        let nstages = self.cfg.time_scheme.stages();
        let rank = ep.rank();
        let owned = self.owned_rank.is_some();
        for stage in 0..nstages {
            // The per-stage tag epoch every rank derives identically; halo
            // and gather tags of different stages can never cross-match,
            // and the communicator generation in the top bits keeps
            // replayed pre-recovery traffic from matching post-rollback
            // re-executions of the same step.
            let base = u64::from(self.step) * nstages as u64 + stage as u64;
            let epoch = tags::epoch_with_generation(ep.generation(), base);
            for l in 0..self.hierarchy.nlevels() {
                self.fill_and_advance_cluster(l, stage, dt, ep, epoch, None)?;
                if !owned {
                    // Replicated oracle: restore replication of this level
                    // before anything reads non-owned patches (the finer
                    // level's coarse gather, the next stage's halo sources,
                    // AverageDown, regrid).
                    let t0 = std::time::Instant::now();
                    allgather_fabs(&mut self.levels[l].state, ep, l, epoch)?;
                    self.profiler.add("Allgather", t0.elapsed().as_secs_f64());
                }
            }
            if stage == nstages - 1 {
                let t0 = std::time::Instant::now();
                for l in (1..self.hierarchy.nlevels()).rev() {
                    let (lo, hi) = self.levels.split_at_mut(l);
                    if owned {
                        average_down_dist(
                            &hi[0].state,
                            &mut lo[l - 1].state,
                            IntVect::splat(2),
                            ep,
                            &|k| tags::owned(tags::OWNED_REDIST, epoch, l, k),
                        )?;
                    } else {
                        crocco_amr::average_down::average_down(
                            &hi[0].state,
                            &mut lo[l - 1].state,
                            IntVect::splat(2),
                        );
                    }
                }
                self.profiler
                    .add("AverageDown", t0.elapsed().as_secs_f64());
            }
            if self.cfg.nan_poison {
                for (l, lev) in self.levels.iter().enumerate() {
                    // Replicated state (post-allgather): check all patches.
                    // Owned state: only the allocated patches hold data.
                    // dU is owner-local in both modes: a non-owned dU fab is
                    // legitimately still poisoned, so check owned only.
                    if owned {
                        for i in 0..lev.state.nfabs() {
                            if lev.state.is_allocated(i) {
                                assert!(
                                    !lev.state.fab(i).has_nonfinite(lev.state.valid_box(i)),
                                    "fabcheck: non-finite in RK stage {stage} state L{l} patch {i}"
                                );
                            }
                        }
                    } else {
                        fabcheck::check_for_nan(
                            &lev.state,
                            &format!("RK stage {stage} state L{l}"),
                        );
                    }
                    for i in 0..lev.du.nfabs() {
                        if lev.du.distribution().owner(i) == rank {
                            assert!(
                                !lev.du.fab(i).has_nonfinite(lev.du.valid_box(i)),
                                "fabcheck: non-finite in RK stage {stage} dU L{l} patch {i}"
                            );
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// One level's distributed RK stage: the rank-crossing counterpart of
    /// the on-node `fill_and_advance_overlap`, sharing its plan resolution,
    /// physics closures, and communication accounting. The rank's
    /// [`DistSkeleton`] is memoized in the plan cache (`Aux` namespace,
    /// rank in the key's `aux` bits) and survives until regrid invalidates
    /// it, so steady-state stages skip the topology derivation entirely.
    fn fill_and_advance_cluster(
        &mut self,
        l: usize,
        stage: usize,
        dt: f64,
        ep: &GroupEndpoint<'_>,
        epoch: u64,
        sub: Option<&crate::subcycle::SubCtx>,
    ) -> Result<(), StageError> {
        let t0 = std::time::Instant::now();
        let gas = self.gas;
        let weno = self.cfg.weno;
        let recon = self.cfg.reconstruction;
        let les = self.cfg.les;
        let reference = self.cfg.version.reference_kernels();
        let backend = self.cfg.kernel_backend;
        let tile = self.cfg.tile_size;
        let a = self.cfg.time_scheme.a(stage);
        let b = self.cfg.time_scheme.b(stage);
        let w = self.cfg.time_scheme.net_flux_weight(stage);
        let poison = self.cfg.nan_poison;
        let time = sub.map_or(self.time, |s| s.t);
        let ratio = IntVect::splat(2);
        // Interface-flux recording (subcycling): immutable field borrows of
        // the registers, disjoint from the `levels` split below. One sweep
        // task per patch per stage keeps the buffer mutexes uncontended.
        let rec_coarse = (sub.is_some() && l < self.subcycle.len()).then(|| &self.subcycle[l]);
        let rec_fine =
            (sub.is_some() && l > 0 && !self.subcycle.is_empty()).then(|| &self.subcycle[l - 1]);
        let domain = self.hierarchy.domain(l);
        let bc = PhysicalBc::new(self.cfg.problem, self.gas, self.level_extents(l));
        let coarse_ctx = (l > 0).then(|| {
            (
                self.hierarchy.domain(l - 1),
                PhysicalBc::new(self.cfg.problem, self.gas, self.level_extents(l - 1)),
            )
        });
        let cache = self.hierarchy.plan_cache().clone();
        let interp = &*self.interp;

        let (lo_levels, hi_levels) = self.levels.split_at_mut(l);
        let fine = &mut hi_levels[0];
        let fb = cache.fill_boundary(
            fine.state.boxarray(),
            fine.state.distribution(),
            &domain,
            fine.state.nghost(),
            fine.state.ncomp(),
        );
        let two: Option<(TwoLevelPlans, &LevelData, ProblemDomain, PhysicalBc)> =
            coarse_ctx.map(|(coarse_domain, coarse_bc)| {
                let coarse = &lo_levels[l - 1];
                let plans = resolve_two_level_plans(
                    &fine.state,
                    &coarse.state,
                    &domain,
                    &coarse_domain,
                    ratio,
                    interp,
                    Some(&coarse.coords),
                    Some(&fine.coords),
                    Some(cache.as_ref()),
                );
                (plans, coarse, coarse_domain, coarse_bc)
            });
        self.comm.absorb_plan(&fb.stats, PlanKind::FillBoundary);
        if let Some((plans, ..)) = &two {
            self.comm
                .absorb_plan(&plans.state.state_plan().stats, PlanKind::ParallelCopy);
            if let Some(cg) = &plans.coords {
                self.comm
                    .absorb_plan(&cg.coord_plan().stats, PlanKind::CoordCopy);
            }
        }
        // Owned data: the coarse→fine gather sources live on their owners,
        // so execute the plan's cross-rank chunks up front — the payloads
        // feed `fill_two_level_patch_with_remote` inside the stage tasks,
        // keyed by absolute chunk index within the cached plan.
        let remote_two: Option<RemoteGathers> =
            if self.owned_rank.is_some() {
                match &two {
                    Some((plans, coarse, ..)) => {
                        let rs = exchange_chunks(
                            &coarse.state,
                            &plans.state.state_plan().plan.chunks,
                            NCONS,
                            ep,
                            &|k| tags::owned(tags::OWNED_GATHER, epoch, l, k),
                        )?;
                        let rc = match &plans.coords {
                            Some(cg) => Some(exchange_chunks(
                                &coarse.coords,
                                &cg.coord_plan().plan.chunks,
                                NCOORDS,
                                ep,
                                &|k| tags::owned(tags::OWNED_COORDS, epoch, l, k),
                            )?),
                            None => None,
                        };
                        Some((rs, rc))
                    }
                    None => None,
                }
            } else {
                None
            };
        // Subcycled two-level fills also read the coarse *old* state: its
        // cross-rank chunks travel over the same cached plan in the
        // `OWNED_GATHER_OLD` tag space so the time blend sees remote donors.
        // `alpha == 1` skips the blend entirely, so nothing moves.
        let remote_old: Option<HashMap<usize, Bytes>> =
            match (&two, sub.and_then(|s| s.alpha)) {
                (Some((plans, coarse, ..)), Some(alpha))
                    if self.owned_rank.is_some() && alpha != 1.0 =>
                {
                    let old = coarse
                        .state_old
                        .as_ref()
                        .expect("subcycling saved the coarse old state before its substeps");
                    Some(exchange_chunks(
                        old,
                        &plans.state.state_plan().plan.chunks,
                        NCONS,
                        ep,
                        &|k| tags::owned(tags::OWNED_GATHER_OLD, epoch, l, k),
                    )?)
                }
                _ => None,
            };
        let ti: Option<CoarseTimeInterp<'_>> = match (&two, sub.and_then(|s| s.alpha)) {
            (Some((_, coarse, ..)), Some(alpha)) => Some(CoarseTimeInterp {
                old: coarse
                    .state_old
                    .as_ref()
                    .expect("subcycling saved the coarse old state before its substeps"),
                alpha,
                remote_old: remote_old.as_ref(),
            }),
            _ => None,
        };
        // Declare the time-interpolated fill's coarse old-state reads on the
        // halo-task footprints, as on the on-node path — but only chunks this
        // rank reads *locally* (`src_rank == rank`): remote chunks arrive as
        // the pre-exchanged payloads gathered above and touch no fab. The
        // old fab of a local source is always allocated here, since this
        // rank owns the source patch.
        let extra_halo: Vec<Vec<(u64, crocco_geometry::IndexBox)>> = match (&two, &ti) {
            (Some((plans, ..)), Some(t)) if t.alpha != 1.0 => {
                let rank = ep.rank();
                let mut per_patch = vec![Vec::new(); fine.state.nfabs()];
                for c in &plans.state.state_plan().plan.chunks {
                    if c.src_rank == rank {
                        let id = t.old.fab(c.src_id).data().as_ptr() as usize as u64;
                        per_patch[c.dst_id].push((id, c.region.shift(-c.shift)));
                    }
                }
                per_patch
            }
            _ => Vec::new(),
        };
        // The rank-crossing graph skeleton, memoized beside the plan it was
        // derived from; regrid invalidates both together.
        let skel = cache.get_or_build_aux(
            PlanKey {
                op: PlanOp::Aux(AUX_DIST_SKELETON),
                aux: ep.rank() as u64,
                ..PlanKey::fill_boundary(
                    fine.state.boxarray(),
                    fine.state.distribution(),
                    &domain,
                    fine.state.nghost(),
                    fine.state.ncomp(),
                )
            },
            || DistSkeleton::build(&fb, fine.state.distribution().owners(), ep.rank()),
        );
        // Static verification of the *whole* distributed stage (every
        // rank's graph rebuilt from the replicated owner map, plus
        // tag-completeness and cross-rank acyclicity, DESIGN.md §4i). Every
        // rank runs the identical deterministic check once per (grids,
        // plan, nranks) generation — memoized, regrid-invalidated.
        if self.cfg.taskcheck {
            let report = cache.get_or_build_aux(
                PlanKey {
                    op: PlanOp::Aux(AUX_DIST_VERIFY),
                    aux: ep.nranks() as u64,
                    ..PlanKey::fill_boundary(
                        fine.state.boxarray(),
                        fine.state.distribution(),
                        &domain,
                        fine.state.nghost(),
                        fine.state.ncomp(),
                    )
                },
                || {
                    let ba = fine.state.boxarray();
                    let valid: Vec<crocco_geometry::IndexBox> =
                        (0..ba.len()).map(|i| ba.get(i)).collect();
                    crocco_fab::verify_dist(
                        &fb,
                        fine.state.distribution().owners(),
                        ep.nranks(),
                        &valid,
                        fine.state.nghost(),
                    )
                },
            );
            report.assert_clean("distributed RK stage skeletons");
        }
        self.profiler.add("FillPatch", t0.elapsed().as_secs_f64());

        let t1 = std::time::Instant::now();
        let LevelData {
            state,
            du,
            coords,
            metrics,
            rhs,
            ..
        } = fine;
        let ba = state.boxarray().clone();
        let coords = &*coords;
        let metrics = &*metrics;
        let interpolated = AtomicU64::new(0);

        let pre_halo = |i: usize, rw: &mut FabRw<'_>| {
            if let Some((plans, coarse, coarse_domain, coarse_bc)) = &two {
                let cells = fill_two_level_patch_with_remote(
                    i,
                    rw,
                    plans,
                    &coarse.state,
                    Some(&coarse.coords),
                    Some(coords.fab(i)),
                    coarse_domain,
                    ratio,
                    interp,
                    coarse_bc,
                    time,
                    ti,
                    remote_two.as_ref().map(|(rs, _)| rs),
                    remote_two.as_ref().and_then(|(_, rc)| rc.as_ref()),
                );
                interpolated.fetch_add(cells, Ordering::Relaxed);
            }
        };
        let bc_fill = |i: usize, rw: &mut FabRw<'_>| {
            bc.fill_view(rw, ba.get(i), &domain, time);
        };
        let sweep = |i: usize, u: FabRd<'_>, phase: SweepPhase, rhs: &mut FArrayBox| {
            let valid = ba.get(i);
            let met = metrics.fab(i);
            let interior = valid.grow(-NGHOST);
            match phase {
                SweepPhase::Interior => {
                    rhs.fill(0.0);
                    if !interior.is_empty() {
                        accumulate_rhs(
                            &u, met, rhs, interior, &gas, weno, recon, les.as_ref(), reference,
                            backend, tile,
                        );
                    }
                }
                SweepPhase::BoundaryBand => {
                    for slab in band_slabs(valid, interior) {
                        accumulate_rhs(
                            &u, met, rhs, slab, &gas, weno, recon, les.as_ref(), reference,
                            backend, tile,
                        );
                    }
                    // Subcycling: the boundary-band task is the one point
                    // where this patch's ghosts are filled and the state is
                    // still at the stage's input time — record the interface
                    // fluxes here, exactly as the on-node overlapped path
                    // does.
                    if let Some(reg) = rec_coarse {
                        if !reg.coarse_faces[i].is_empty() {
                            let mut buf = reg.coarse_buf[i].lock().unwrap();
                            crate::subcycle::record_faces(
                                &u,
                                met,
                                &reg.coarse_faces[i],
                                w,
                                &mut buf,
                                &gas,
                                weno,
                                recon,
                            );
                        }
                    }
                    if let Some(reg) = rec_fine {
                        if !reg.fine_faces[i].is_empty() {
                            let mut buf = reg.fine_buf[i].lock().unwrap();
                            crate::subcycle::record_faces(
                                &u,
                                met,
                                &reg.fine_faces[i],
                                w,
                                &mut buf,
                                &gas,
                                weno,
                                recon,
                            );
                        }
                    }
                }
            }
        };
        let update = |_i: usize, dufab: &mut FArrayBox, stfab: &mut FArrayBox, rhs: &FArrayBox| {
            if poison && a == 0.0 {
                // 0·SNAN is still NaN: a poisoned dU must be dropped
                // explicitly at the first stage, not multiplied away.
                dufab.fill(0.0);
            }
            dufab.lincomb(a, dt, rhs);
            stfab.lincomb(1.0, b, dufab);
        };
        let st = DistStage {
            ep,
            level: l,
            epoch,
            overlap: self.cfg.dist_overlap,
            sched: self.cfg.schedule(),
        };
        run_dist_rk_stage(
            StageFabs { state, du, rhs },
            &fb,
            &skel,
            &st,
            &extra_halo,
            &pre_halo,
            &bc_fill,
            &sweep,
            &update,
        )?;
        self.comm.interpolated_cells += interpolated.load(Ordering::Relaxed);
        self.profiler.add("Advance", t1.elapsed().as_secs_f64());
        Ok(())
    }
}
