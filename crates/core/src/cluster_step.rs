//! Distributed time stepping over a [`LocalCluster`] endpoint: the driver
//! loop of `driver.rs`, re-partitioned so each rank advances only the
//! patches its `DistributionMapping` owns and halo data crosses ranks as
//! real tag-matched messages (DESIGN.md §4f).
//!
//! The execution model is *replicated metadata, replicated data*: every rank
//! constructs an identical [`Simulation`] and keeps all `MultiFab`s
//! bitwise-identical at step boundaries. Within an RK stage, each rank
//! computes only its owned patches ([`run_dist_rk_stage`], fenced or
//! overlapped per [`SolverConfig::dist_overlap`]); afterwards
//! [`allgather_fabs`] restores full replication of the level's state. Grid
//! control — regrid, remap, `AverageDown` — then runs rank-locally on the
//! replicated data and stays deterministic, so every rank derives the same
//! new hierarchy without any metadata exchange (the paper's "replicated
//! metadata" AMReX regime, §III-B).
//!
//! `ComputeDt` is the one true collective: each rank reduces its owned
//! patches, then [`RankEndpoint::allreduce_f64`] combines the exact `min`
//! (order-free, so bitwise-reproducible at any rank count).
//!
//! `tests/dist_overlap_invariance.rs` drives this module at 1/2/4 ranks
//! across a regrid and asserts bitwise equality against single-rank
//! stepping.
//!
//! [`LocalCluster`]: crocco_runtime::LocalCluster
//! [`SolverConfig::dist_overlap`]: crate::config::SolverConfig::dist_overlap

use crate::bc::PhysicalBc;
use crate::driver::{
    accumulate_rhs, LevelData, PlanKind, RunReport, Simulation, AUX_DIST_SKELETON,
    AUX_DIST_VERIFY,
};
use crate::kernels::NGHOST;
use crocco_amr::fillpatch::{fill_two_level_patch, resolve_two_level_plans, TwoLevelPlans};
use crocco_amr::BoundaryFiller;
use crocco_fab::plan_cache::{PlanKey, PlanOp};
use crocco_fab::{
    allgather_fabs, band_slabs, fabcheck, run_dist_rk_stage, DistSkeleton, DistStage, FArrayBox,
    FabRd, FabRw, StageFabs, SweepPhase,
};
use crocco_geometry::{IntVect, ProblemDomain};
use crocco_runtime::chaos::CrashPhase;
use crocco_runtime::{tags, CommGroup, GroupEndpoint, RankEndpoint, StageError};
use std::sync::atomic::{AtomicU64, Ordering};

/// What [`Simulation::advance_steps_chaos`] did to survive the run: how
/// often it checkpointed, whether this rank was the one that crashed, and
/// every rollback it executed (DESIGN.md §4g).
#[derive(Clone, Debug, Default)]
pub struct ChaosRunReport {
    /// `true` if *this* rank fail-stopped (scheduled crash or local kernel
    /// panic) — its `Simulation` is abandoned mid-step and must not be read.
    pub crashed: bool,
    /// Number of fault-triggered rollback + group-shrink recoveries.
    pub recoveries: u32,
    /// Number of in-memory checkpoints taken.
    pub checkpoints: u32,
    /// The step counter each recovery rolled back to (one entry per
    /// recovery; two faults inside one checkpoint interval produce two
    /// identical entries).
    pub rollback_steps: Vec<u32>,
    /// Largest serialized checkpoint, in bytes (the per-rank snapshot cost
    /// `perfmodel::resilience` prices).
    pub checkpoint_bytes: usize,
}

impl Simulation {
    /// One full time step on a cluster rank (Algorithm 1 loop body,
    /// distributed). Every rank of the cluster must call this in lockstep
    /// with an identically configured, identically advanced `Simulation`.
    /// Faults are unrecoverable here (the endpoint's full-group view);
    /// chaos runs go through [`Simulation::advance_steps_chaos`].
    pub fn step_cluster(&mut self, ep: &RankEndpoint) {
        let gep = GroupEndpoint::full(ep);
        self.try_step_cluster(&gep)
            .expect("communication fault outside the chaos recovery loop");
    }

    /// One full time step over `gep`'s communicator group, surfacing
    /// injected crashes and detected communication faults as typed errors
    /// the chaos recovery loop can act on.
    pub fn try_step_cluster(&mut self, gep: &GroupEndpoint<'_>) -> Result<(), StageError> {
        assert_eq!(
            gep.nranks(),
            self.cfg.nranks,
            "group size must match cfg.nranks (the DistributionMapping rank count)"
        );
        self.crash_check(gep, CrashPhase::StepStart)?;
        if self.cfg.version.amr_enabled()
            && self.step > 0
            && self.step.is_multiple_of(self.cfg.regrid_freq)
        {
            // Replicated data makes regrid + remap rank-local: every rank
            // tags, grids, and remaps identically (deterministic kernels,
            // no RNG), so the hierarchies stay in lockstep without a
            // metadata exchange.
            let t0 = std::time::Instant::now();
            self.regrid();
            self.profiler.add("Regrid", t0.elapsed().as_secs_f64());
        }
        self.crash_check(gep, CrashPhase::AfterRegrid)?;
        let t0 = std::time::Instant::now();
        self.compute_dt_cluster(gep)?;
        self.profiler.add("ComputeDt", t0.elapsed().as_secs_f64());
        self.crash_check(gep, CrashPhase::AfterDt)?;
        self.rk3_cluster(gep)?;
        self.step += 1;
        self.time += self.dt;
        Ok(())
    }

    /// Test hook for the fabcheck chaos scenario: silently corrupts the
    /// metrics of the first level-0 patch owned by `rank` (the NaN a
    /// flipped bit in device memory would plant). The next RK stage folds
    /// it into the right-hand side, and the `nan_poison` post-stage sweep
    /// traps — exercising the panic-to-fail-stop conversion in
    /// [`Simulation::advance_steps_chaos`].
    #[cfg(feature = "fabcheck")]
    pub fn poison_metrics_for_test(&mut self, rank: usize) {
        let lev = &mut self.levels[0];
        let owners = lev.metrics.distribution().clone();
        for i in 0..lev.metrics.nfabs() {
            if owners.owner(i) == rank {
                let p = lev.metrics.valid_box(i).lo();
                lev.metrics.fab_mut(i).set(p, 0, f64::NAN);
                return;
            }
        }
        panic!("rank {rank} owns no level-0 patch to poison");
    }

    /// Fails this rank with [`StageError::CrashInjected`] if the chaos
    /// config schedules a crash for `(physical rank, step, phase)`.
    fn crash_check(&self, gep: &GroupEndpoint<'_>, phase: CrashPhase) -> Result<(), StageError> {
        if let Some(chaos) = &self.cfg.chaos {
            if chaos.crash_at(gep.physical_rank(), self.step, phase).is_some() {
                return Err(StageError::CrashInjected);
            }
        }
        Ok(())
    }

    /// Advances `n` steps on a cluster rank and reports (the distributed
    /// [`Simulation::advance_steps`]).
    pub fn advance_steps_cluster(&mut self, n: u32, ep: &RankEndpoint) -> RunReport {
        for _ in 0..n {
            self.step_cluster(ep);
        }
        self.report()
    }

    /// Advances to `self.step + n` under the chaos runtime: periodic
    /// in-memory checkpoints, fail-stop on scheduled crashes (and on local
    /// kernel panics, e.g. a `fabcheck` NaN trap), and checkpoint-rollback
    /// recovery on detected peer faults (DESIGN.md §4g).
    ///
    /// Recovery protocol, executed independently but identically by every
    /// survivor (all agreement is derived from shared deterministic state,
    /// never negotiated):
    ///
    /// 1. bump the communicator generation (stamped into halo/gather tag
    ///    epochs, so replayed pre-fault traffic can never match post-fault
    ///    receives),
    /// 2. shrink the group by the chaos runtime's dead ranks and run a
    ///    barrier allreduce over the survivors; if the barrier itself faults
    ///    or another member died meanwhile, re-scan and retry — every
    ///    survivor retries the same number of times, keeping the collective
    ///    sequence counter (which never rolls back) aligned,
    /// 3. purge stale unexpected packets from older generations,
    /// 4. restore the last in-memory checkpoint into a fresh `Simulation`
    ///    whose `nranks` is the shrunken group size (the load balancer
    ///    re-partitions over the survivors), and resume stepping.
    ///
    /// Checkpoints are taken only at step boundaries, where replication
    /// makes every rank's serialized state identical — so survivors restore
    /// bitwise-identical states without exchanging a byte.
    pub fn advance_steps_chaos(&mut self, n: u32, ep: &RankEndpoint) -> ChaosRunReport {
        let target = self.step + n;
        let interval = self
            .cfg
            .chaos
            .as_ref()
            .map_or(u32::MAX, |c| c.checkpoint_interval.max(1));
        let mut report = ChaosRunReport::default();
        let mut group = CommGroup::full(self.cfg.nranks);
        let mut generation: u64 = 0;
        let mut snapshot: Vec<u8> = Vec::new();
        let mut snapshot_step: Option<u32> = None;
        while self.step < target {
            if snapshot_step != Some(self.step)
                && (snapshot_step.is_none() || self.step.is_multiple_of(interval))
            {
                snapshot = crate::io::write_checkpoint_bytes(self);
                snapshot_step = Some(self.step);
                report.checkpoints += 1;
                report.checkpoint_bytes = report.checkpoint_bytes.max(snapshot.len());
            }
            let gep = GroupEndpoint::new(ep, group.clone(), generation);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.try_step_cluster(&gep)
            }));
            drop(gep);
            match outcome {
                Ok(Ok(())) => {}
                Ok(Err(StageError::CrashInjected)) | Err(_) => {
                    // This rank fail-stops: scheduled crash, or a local
                    // kernel panic (poisoned NaN under fabcheck) treated as
                    // one. Mark it dead so blocked peers' waits fault.
                    if let Some(ch) = ep.chaos() {
                        ch.mark_dead(ep.rank());
                    }
                    report.crashed = true;
                    return report;
                }
                Ok(Err(_fault)) => {
                    // A peer died (RankDead, or a timeout caused by its
                    // silence). Re-form the group and roll back.
                    report.recoveries += 1;
                    generation += 1;
                    loop {
                        let chaos = ep.chaos().expect("faults require the chaos runtime");
                        let survivors = group.without(
                            &group
                                .members()
                                .iter()
                                .copied()
                                .filter(|&r| !chaos.is_alive(r))
                                .collect::<Vec<_>>(),
                        );
                        ep.cancel_posted();
                        let barrier = GroupEndpoint::new(ep, survivors.clone(), generation);
                        let ok = barrier.allreduce_f64(1.0, f64::min).is_ok();
                        // A death *during* the barrier can leave some
                        // survivors completed and others faulted; both
                        // re-scan and retry so everyone consumes the same
                        // collective sequence numbers.
                        if ok && chaos.first_dead_in(survivors.members()).is_none() {
                            group = survivors;
                            break;
                        }
                    }
                    ep.purge_stale_unexpected(generation);
                    let chk = crate::io::parse_checkpoint(&snapshot)
                        .expect("in-memory checkpoint cannot be corrupt");
                    let mut cfg = self.cfg.clone();
                    cfg.nranks = group.len();
                    *self = Simulation::from_checkpoint(cfg, &chk);
                    report.rollback_steps.push(self.step);
                    snapshot_step = Some(self.step);
                }
            }
        }
        report
    }

    /// `ComputeDt`, distributed: the CFL minimum over *owned* patches,
    /// combined across ranks with an exact `min` reduction. Bitwise equal
    /// to the serial global minimum at any rank count.
    fn compute_dt_cluster(&mut self, ep: &GroupEndpoint<'_>) -> Result<(), StageError> {
        let rank = ep.rank();
        let mut dt = f64::INFINITY;
        let backend = self.cfg.kernel_backend;
        for lev in &self.levels {
            let owners = lev.state.distribution().clone();
            for i in 0..lev.state.nfabs() {
                if owners.owner(i) != rank {
                    continue;
                }
                let d = backend.compute_dt_patch(
                    lev.state.fab(i),
                    lev.metrics.fab(i),
                    lev.state.valid_box(i),
                    &self.gas,
                    self.cfg.cfl,
                );
                dt = dt.min(d);
            }
        }
        let dt = ep.allreduce_f64(dt, f64::min)?;
        self.comm.reductions += 1;
        assert!(dt.is_finite() && dt > 0.0, "ComputeDt produced dt={dt}");
        self.dt = dt;
        Ok(())
    }

    /// Algorithm 2, distributed: per stage, per level, one rank-crossing RK
    /// stage followed by a state allgather; `AverageDown` (rank-local on the
    /// re-replicated data) at the end of the final stage.
    fn rk3_cluster(&mut self, ep: &GroupEndpoint<'_>) -> Result<(), StageError> {
        let dt = self.dt;
        let nstages = self.cfg.time_scheme.stages();
        let rank = ep.rank();
        for stage in 0..nstages {
            // The per-stage tag epoch every rank derives identically; halo
            // and gather tags of different stages can never cross-match,
            // and the communicator generation in the top bits keeps
            // replayed pre-recovery traffic from matching post-rollback
            // re-executions of the same step.
            let base = u64::from(self.step) * nstages as u64 + stage as u64;
            let epoch = tags::epoch_with_generation(ep.generation(), base);
            for l in 0..self.hierarchy.nlevels() {
                self.fill_and_advance_cluster(l, stage, dt, ep, epoch)?;
                // Restore replication of this level before anything reads
                // non-owned patches (the finer level's coarse gather, the
                // next stage's halo sources, AverageDown, regrid).
                let t0 = std::time::Instant::now();
                allgather_fabs(&mut self.levels[l].state, ep, l, epoch)?;
                self.profiler.add("Allgather", t0.elapsed().as_secs_f64());
            }
            if stage == nstages - 1 {
                let t0 = std::time::Instant::now();
                for l in (1..self.hierarchy.nlevels()).rev() {
                    let (lo, hi) = self.levels.split_at_mut(l);
                    crocco_amr::average_down::average_down(
                        &hi[0].state,
                        &mut lo[l - 1].state,
                        IntVect::splat(2),
                    );
                }
                self.profiler
                    .add("AverageDown", t0.elapsed().as_secs_f64());
            }
            if self.cfg.nan_poison {
                for (l, lev) in self.levels.iter().enumerate() {
                    // State is replicated (post-allgather): check all
                    // patches. dU is owner-local: a non-owned dU fab is
                    // legitimately still poisoned, so check owned only.
                    fabcheck::check_for_nan(&lev.state, &format!("RK stage {stage} state L{l}"));
                    for i in 0..lev.du.nfabs() {
                        if lev.du.distribution().owner(i) == rank {
                            assert!(
                                !lev.du.fab(i).has_nonfinite(lev.du.valid_box(i)),
                                "fabcheck: non-finite in RK stage {stage} dU L{l} patch {i}"
                            );
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// One level's distributed RK stage: the rank-crossing counterpart of
    /// the on-node `fill_and_advance_overlap`, sharing its plan resolution,
    /// physics closures, and communication accounting. The rank's
    /// [`DistSkeleton`] is memoized in the plan cache (`Aux` namespace,
    /// rank in the key's `aux` bits) and survives until regrid invalidates
    /// it, so steady-state stages skip the topology derivation entirely.
    fn fill_and_advance_cluster(
        &mut self,
        l: usize,
        stage: usize,
        dt: f64,
        ep: &GroupEndpoint<'_>,
        epoch: u64,
    ) -> Result<(), StageError> {
        let t0 = std::time::Instant::now();
        let gas = self.gas;
        let weno = self.cfg.weno;
        let recon = self.cfg.reconstruction;
        let les = self.cfg.les;
        let reference = self.cfg.version.reference_kernels();
        let backend = self.cfg.kernel_backend;
        let tile = self.cfg.tile_size;
        let a = self.cfg.time_scheme.a(stage);
        let b = self.cfg.time_scheme.b(stage);
        let poison = self.cfg.nan_poison;
        let time = self.time;
        let ratio = IntVect::splat(2);
        let domain = self.hierarchy.domain(l);
        let bc = PhysicalBc::new(self.cfg.problem, self.gas, self.level_extents(l));
        let coarse_ctx = (l > 0).then(|| {
            (
                self.hierarchy.domain(l - 1),
                PhysicalBc::new(self.cfg.problem, self.gas, self.level_extents(l - 1)),
            )
        });
        let cache = self.hierarchy.plan_cache().clone();
        let interp = &*self.interp;

        let (lo_levels, hi_levels) = self.levels.split_at_mut(l);
        let fine = &mut hi_levels[0];
        let fb = cache.fill_boundary(
            fine.state.boxarray(),
            fine.state.distribution(),
            &domain,
            fine.state.nghost(),
            fine.state.ncomp(),
        );
        let two: Option<(TwoLevelPlans, &LevelData, ProblemDomain, PhysicalBc)> =
            coarse_ctx.map(|(coarse_domain, coarse_bc)| {
                let coarse = &lo_levels[l - 1];
                let plans = resolve_two_level_plans(
                    &fine.state,
                    &coarse.state,
                    &domain,
                    &coarse_domain,
                    ratio,
                    interp,
                    Some(&coarse.coords),
                    Some(&fine.coords),
                    Some(cache.as_ref()),
                );
                (plans, coarse, coarse_domain, coarse_bc)
            });
        self.comm.absorb_plan(&fb.stats, PlanKind::FillBoundary);
        if let Some((plans, ..)) = &two {
            self.comm
                .absorb_plan(&plans.state.state_plan().stats, PlanKind::ParallelCopy);
            if let Some(cg) = &plans.coords {
                self.comm
                    .absorb_plan(&cg.coord_plan().stats, PlanKind::CoordCopy);
            }
        }
        // The rank-crossing graph skeleton, memoized beside the plan it was
        // derived from; regrid invalidates both together.
        let skel = cache.get_or_build_aux(
            PlanKey {
                op: PlanOp::Aux(AUX_DIST_SKELETON),
                aux: ep.rank() as u64,
                ..PlanKey::fill_boundary(
                    fine.state.boxarray(),
                    fine.state.distribution(),
                    &domain,
                    fine.state.nghost(),
                    fine.state.ncomp(),
                )
            },
            || DistSkeleton::build(&fb, fine.state.distribution().owners(), ep.rank()),
        );
        // Static verification of the *whole* distributed stage (every
        // rank's graph rebuilt from the replicated owner map, plus
        // tag-completeness and cross-rank acyclicity, DESIGN.md §4i). Every
        // rank runs the identical deterministic check once per (grids,
        // plan, nranks) generation — memoized, regrid-invalidated.
        if self.cfg.taskcheck {
            let report = cache.get_or_build_aux(
                PlanKey {
                    op: PlanOp::Aux(AUX_DIST_VERIFY),
                    aux: ep.nranks() as u64,
                    ..PlanKey::fill_boundary(
                        fine.state.boxarray(),
                        fine.state.distribution(),
                        &domain,
                        fine.state.nghost(),
                        fine.state.ncomp(),
                    )
                },
                || {
                    let ba = fine.state.boxarray();
                    let valid: Vec<crocco_geometry::IndexBox> =
                        (0..ba.len()).map(|i| ba.get(i)).collect();
                    crocco_fab::verify_dist(
                        &fb,
                        fine.state.distribution().owners(),
                        ep.nranks(),
                        &valid,
                        fine.state.nghost(),
                    )
                },
            );
            report.assert_clean("distributed RK stage skeletons");
        }
        self.profiler.add("FillPatch", t0.elapsed().as_secs_f64());

        let t1 = std::time::Instant::now();
        let LevelData {
            state,
            du,
            coords,
            metrics,
            rhs,
        } = fine;
        let ba = state.boxarray().clone();
        let coords = &*coords;
        let metrics = &*metrics;
        let interpolated = AtomicU64::new(0);

        let pre_halo = |i: usize, rw: &mut FabRw<'_>| {
            if let Some((plans, coarse, coarse_domain, coarse_bc)) = &two {
                let cells = fill_two_level_patch(
                    i,
                    rw,
                    plans,
                    &coarse.state,
                    Some(&coarse.coords),
                    Some(coords.fab(i)),
                    coarse_domain,
                    ratio,
                    interp,
                    coarse_bc,
                    time,
                );
                interpolated.fetch_add(cells, Ordering::Relaxed);
            }
        };
        let bc_fill = |i: usize, rw: &mut FabRw<'_>| {
            bc.fill_view(rw, ba.get(i), &domain, time);
        };
        let sweep = |i: usize, u: FabRd<'_>, phase: SweepPhase, rhs: &mut FArrayBox| {
            let valid = ba.get(i);
            let met = metrics.fab(i);
            let interior = valid.grow(-NGHOST);
            match phase {
                SweepPhase::Interior => {
                    rhs.fill(0.0);
                    if !interior.is_empty() {
                        accumulate_rhs(
                            &u, met, rhs, interior, &gas, weno, recon, les.as_ref(), reference,
                            backend, tile,
                        );
                    }
                }
                SweepPhase::BoundaryBand => {
                    for slab in band_slabs(valid, interior) {
                        accumulate_rhs(
                            &u, met, rhs, slab, &gas, weno, recon, les.as_ref(), reference,
                            backend, tile,
                        );
                    }
                }
            }
        };
        let update = |_i: usize, dufab: &mut FArrayBox, stfab: &mut FArrayBox, rhs: &FArrayBox| {
            if poison && a == 0.0 {
                // 0·SNAN is still NaN: a poisoned dU must be dropped
                // explicitly at the first stage, not multiplied away.
                dufab.fill(0.0);
            }
            dufab.lincomb(a, dt, rhs);
            stfab.lincomb(1.0, b, dufab);
        };
        let st = DistStage {
            ep,
            level: l,
            epoch,
            overlap: self.cfg.dist_overlap,
            sched: self.cfg.schedule(),
        };
        run_dist_rk_stage(
            StageFabs { state, du, rhs },
            &fb,
            &skel,
            &st,
            &pre_halo,
            &bc_fill,
            &sweep,
            &update,
        )?;
        self.comm.interpolated_cells += interpolated.load(Ordering::Relaxed);
        self.profiler.add("Advance", t1.elapsed().as_secs_f64());
        Ok(())
    }
}
