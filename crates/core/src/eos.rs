//! Equation of state and transport properties.

use serde::{Deserialize, Serialize};

/// A calorically perfect gas.
///
/// CRoCCo's full chemistry tracks per-species heats (Eq. 2); the DMR
/// evaluation case is a single perfect-gas species, which is what we model.
/// All benchmark problems use nondimensional units where `r_gas = 1/γ` gives
/// a unit sound speed at ρ = p = 1 unless stated otherwise.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PerfectGas {
    /// Ratio of specific heats γ.
    pub gamma: f64,
    /// Specific gas constant R.
    pub r_gas: f64,
    /// Reference dynamic viscosity μ₀ at `t_ref` (Sutherland).
    pub mu_ref: f64,
    /// Sutherland reference temperature.
    pub t_ref: f64,
    /// Sutherland constant S.
    pub t_s: f64,
    /// Prandtl number (for the heat flux).
    pub prandtl: f64,
}

impl PerfectGas {
    /// Air: γ = 1.4, SI units.
    pub fn air() -> Self {
        PerfectGas {
            gamma: 1.4,
            r_gas: 287.05,
            mu_ref: 1.716e-5,
            t_ref: 273.15,
            t_s: 110.4,
            prandtl: 0.72,
        }
    }

    /// The nondimensional gas used by the canonical test problems (Sod, DMR,
    /// isentropic vortex): γ = 1.4, R = 1.
    pub fn nondimensional() -> Self {
        PerfectGas {
            gamma: 1.4,
            r_gas: 1.0,
            mu_ref: 0.0,
            t_ref: 1.0,
            t_s: 0.0,
            prandtl: 0.72,
        }
    }

    /// Specific heat at constant volume.
    pub fn cv(&self) -> f64 {
        self.r_gas / (self.gamma - 1.0)
    }

    /// Specific heat at constant pressure.
    pub fn cp(&self) -> f64 {
        self.gamma * self.r_gas / (self.gamma - 1.0)
    }

    /// Temperature from density and pressure: `T = p / (ρ R)`.
    pub fn temperature(&self, rho: f64, p: f64) -> f64 {
        p / (rho * self.r_gas)
    }

    /// Pressure from density and temperature.
    pub fn pressure(&self, rho: f64, t: f64) -> f64 {
        rho * self.r_gas * t
    }

    /// Speed of sound `a = √(γ p / ρ)`.
    pub fn sound_speed(&self, rho: f64, p: f64) -> f64 {
        debug_assert!(p > 0.0 && rho > 0.0, "unphysical state p={p} rho={rho}");
        (self.gamma * p / rho).sqrt()
    }

    /// Sutherland dynamic viscosity μ(T).
    pub fn viscosity(&self, t: f64) -> f64 {
        if self.mu_ref == 0.0 {
            return 0.0; // inviscid nondimensional runs
        }
        self.mu_ref * (t / self.t_ref).powf(1.5) * (self.t_ref + self.t_s) / (t + self.t_s)
    }

    /// Thermal conductivity from μ and the Prandtl number.
    pub fn conductivity(&self, t: f64) -> f64 {
        self.viscosity(t) * self.cp() / self.prandtl
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn air_sound_speed_at_stp() {
        let g = PerfectGas::air();
        let rho = 1.225;
        let p = 101_325.0;
        let a = g.sound_speed(rho, p);
        assert!((a - 340.3).abs() < 1.0, "a = {a}");
        let t = g.temperature(rho, p);
        assert!((t - 288.1).abs() < 0.5, "T = {t}");
    }

    #[test]
    fn sutherland_matches_reference_point() {
        let g = PerfectGas::air();
        assert!((g.viscosity(g.t_ref) - g.mu_ref).abs() < 1e-20);
        // μ grows with T.
        assert!(g.viscosity(600.0) > g.viscosity(300.0));
    }

    #[test]
    fn specific_heats_consistent() {
        let g = PerfectGas::air();
        assert!((g.cp() - g.cv() - g.r_gas).abs() < 1e-9);
        assert!((g.cp() / g.cv() - g.gamma).abs() < 1e-12);
    }

    #[test]
    fn nondimensional_gas_is_inviscid() {
        let g = PerfectGas::nondimensional();
        assert_eq!(g.viscosity(1.0), 0.0);
        assert_eq!(g.conductivity(1.0), 0.0);
        // Unit state has sound speed sqrt(gamma).
        assert!((g.sound_speed(1.0, 1.0) - 1.4f64.sqrt()).abs() < 1e-14);
    }

    #[test]
    fn pressure_temperature_roundtrip() {
        let g = PerfectGas::air();
        let p = g.pressure(0.5, 400.0);
        assert!((g.temperature(0.5, p) - 400.0).abs() < 1e-10);
    }
}
