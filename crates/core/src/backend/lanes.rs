//! The SIMD-lane backend: stable-Rust vectorization via `[f64; LANES]`
//! lane arrays.
//!
//! The paper's GPU port got its kernel throughput from mapping the
//! branch-free WENO algebra onto wide data-parallel hardware (§IV-B). On the
//! host we reach the same structure with *lane arrays*: every scalar local
//! of the hot loops becomes a fixed-width `[f64; LANES]`, every operation a
//! hand-unrolled loop over the lanes — a shape LLVM reliably autovectorizes
//! on stable Rust, with no `std::simd` nightly dependency and no `unsafe`
//! (this crate is `#![forbid(unsafe_code)]`).
//!
//! # Lane layout
//!
//! The WENO face loop lanes across [`LANES`] **contiguous faces** of one
//! pencil: the six-point stencil windows are gathered into lane-transposed
//! scratch `w[k][lane]` (window position outer, lane inner) so each algebra
//! step — candidates, smoothness, α-weights, normalization — is a dense
//! elementwise op over the lane dimension. The viscous, `ComputeDt`, and
//! SGS loops lane across contiguous x-cells of one row the same way.
//!
//! # Bitwise identity with Scalar
//!
//! Lanes never fuses, reassociates, or reorders the operations *within* one
//! cell or face — it only evaluates independent cells/faces side by side.
//! Three details make this exact, not approximate:
//!
//! * The α-weight guard `if d[r] == 0.0` and the downwind cap
//!   `if d[3] > 0.0` branch on the *variant's linear weights*, which are
//!   lane-uniform — the branches hoist out of the lane loop unchanged.
//! * Accumulations (`sum`, `out`, the wave-speed sum) start from `0.0` and
//!   add terms in the same order as the scalar code, so every intermediate
//!   rounding matches.
//! * `f64::min`/`max` and the remaining per-lane calls into shared scalar
//!   helpers (`to_primitive`, `sound_speed`, `viscosity`) are the very same
//!   functions the scalar backend runs.
//!
//! Rust does not contract `a*b + c` into FMA, so lane loops and scalar code
//! round identically. The invariance suite asserts equality with `to_bits`.
//!
//! # Scalar fallbacks (documented limitation)
//!
//! [`Reconstruction::Characteristic`] builds a Roe eigensystem *per face*
//! and projects through dense 5×5 maps — per-face data-dependent work with
//! no contiguous lane structure — so this backend delegates characteristic
//! sweeps to the scalar kernel wholesale. Pencil remainders (the last
//! `nfaces mod LANES` faces) and row remainders also run the scalar body.

// `for l in 0..LANES`-style index loops over several lane arrays at once
// are the whole point of this module: they are what LLVM autovectorizes,
// and the iterator/zip rewrites clippy suggests obscure the lane index
// without changing the generated code.
#![allow(clippy::needless_range_loop)]

use super::KernelBackend;
use crate::eos::PerfectGas;
use crate::kernels;
use crate::metrics::comp as mcomp;
use crate::sgs::Smagorinsky;
use crate::state::{cons, Conserved, NCONS};
use crate::weno::{linear_weights, reconstruct_face, Reconstruction, WenoVariant, EPS,
    STENCIL_RADIUS};
use crocco_fab::{FArrayBox, FabView};
use crocco_geometry::{IndexBox, IntVect};

/// Lane width: 8 × f64 = one ZMM register, two YMM ops, or four NEON ops —
/// wide enough to amortize loop overhead on any of them.
pub const LANES: usize = 8;

/// Fixed-width SIMD lane kernels (see module docs).
#[derive(Clone, Copy, Debug, Default)]
pub struct LanesBackend;

impl KernelBackend for LanesBackend {
    const NAME: &'static str = "lanes";

    fn weno_flux_recon(
        u: &impl FabView,
        met: &FArrayBox,
        rhs: &mut FArrayBox,
        region: IndexBox,
        dir: usize,
        gas: &PerfectGas,
        variant: WenoVariant,
        recon: Reconstruction,
    ) {
        if recon == Reconstruction::Characteristic {
            // Per-face Roe eigensystems have no lane structure: scalar path.
            kernels::weno_flux_recon(u, met, rhs, region, dir, gas, variant, recon);
            return;
        }
        weno_flux_lanes(u, met, rhs, region, dir, gas, variant);
    }

    fn viscous_flux_les(
        u: &impl FabView,
        met: &FArrayBox,
        rhs: &mut FArrayBox,
        region: IndexBox,
        gas: &PerfectGas,
        sgs: Option<&Smagorinsky>,
    ) {
        viscous_flux_lanes(u, met, rhs, region, gas, sgs);
    }

    fn compute_dt_patch(
        u: &impl FabView,
        met: &FArrayBox,
        valid: IndexBox,
        gas: &PerfectGas,
        cfl: f64,
    ) -> f64 {
        compute_dt_lanes(u, met, valid, gas, cfl)
    }

    fn eddy_viscosity_field(
        model: &Smagorinsky,
        u: &impl FabView,
        met: &FArrayBox,
        out: &mut FArrayBox,
        valid: IndexBox,
        gas: &PerfectGas,
    ) {
        eddy_viscosity_field_lanes(model, u, met, out, valid, gas);
    }
}

/// WENO candidate reconstructions for [`LANES`] faces at once:
/// `w[k][lane]` is window position `k` of face `lane`. Per-lane operation
/// order matches [`crate::weno`]'s `candidates` exactly.
#[inline(always)]
fn candidates_lanes(w: &[[f64; LANES]; 6]) -> [[f64; LANES]; 4] {
    let mut q = [[0.0; LANES]; 4];
    for l in 0..LANES {
        q[0][l] = (2.0 * w[0][l] - 7.0 * w[1][l] + 11.0 * w[2][l]) / 6.0;
        q[1][l] = (-w[1][l] + 5.0 * w[2][l] + 2.0 * w[3][l]) / 6.0;
        q[2][l] = (2.0 * w[2][l] + 5.0 * w[3][l] - w[4][l]) / 6.0;
        q[3][l] = (11.0 * w[3][l] - 7.0 * w[4][l] + 2.0 * w[5][l]) / 6.0;
    }
    q
}

/// Jiang–Shu smoothness indicators for [`LANES`] faces at once.
#[inline(always)]
fn smoothness_lanes(w: &[[f64; LANES]; 6]) -> [[f64; LANES]; 4] {
    #[inline(always)]
    fn b(a: f64, b_: f64, c: f64, lin: f64) -> f64 {
        13.0 / 12.0 * (a - 2.0 * b_ + c).powi(2) + 0.25 * lin * lin
    }
    let mut is = [[0.0; LANES]; 4];
    for l in 0..LANES {
        is[0][l] = b(w[0][l], w[1][l], w[2][l], w[0][l] - 4.0 * w[1][l] + 3.0 * w[2][l]);
        is[1][l] = b(w[1][l], w[2][l], w[3][l], w[1][l] - w[3][l]);
        is[2][l] = b(w[2][l], w[3][l], w[4][l], 3.0 * w[2][l] - 4.0 * w[3][l] + w[4][l]);
        is[3][l] = b(w[3][l], w[4][l], w[5][l], 3.0 * w[3][l] - 4.0 * w[4][l] + w[5][l]);
    }
    is
}

/// Face reconstruction for [`LANES`] faces at once, from lane-transposed
/// windows. Bitwise-equal per lane to [`crate::weno::reconstruct_face`]:
/// the `d[r]` branches are lane-uniform, and `sum`/`out` accumulate in the
/// scalar order starting from `0.0` (the α's are never `-0.0`, so skipping
/// the scalar code's leading `0.0 +` term is exact).
///
/// Deliberately `inline(never)`: inlining two of these into the face loop
/// puts ~24 live 6×LANES arrays in one region and the register allocator
/// answers with per-lane stack spills that cost far more than a call.
#[inline(never)]
fn reconstruct_face_lanes(w: &[[f64; LANES]; 6], variant: WenoVariant) -> [f64; LANES] {
    let q = candidates_lanes(w);
    let is = smoothness_lanes(w);
    let d = linear_weights(variant);
    let mut alpha = [[0.0; LANES]; 4];
    for r in 0..4 {
        if d[r] == 0.0 {
            continue;
        }
        for l in 0..LANES {
            let denom = EPS + is[r][l];
            alpha[r][l] = d[r] / (denom * denom);
        }
    }
    if d[3] > 0.0 {
        for l in 0..LANES {
            alpha[3][l] = alpha[3][l].min(alpha[0][l]).min(alpha[1][l]).min(alpha[2][l]);
        }
    }
    let mut sum = [0.0; LANES];
    for row in &alpha {
        for l in 0..LANES {
            sum[l] += row[l];
        }
    }
    let mut out = [0.0; LANES];
    for r in 0..4 {
        for l in 0..LANES {
            out[l] += alpha[r][l] / sum[l] * q[r][l];
        }
    }
    out
}

/// Lane-structured component-wise WENO sweep: row-copy pencil loads (one
/// slice copy per field on x-pencils), a branch-free vectorized split-flux
/// pass over the whole pencil, the laned face loop, and a row-streamed flux
/// difference.
fn weno_flux_lanes(
    u: &impl FabView,
    met: &FArrayBox,
    rhs: &mut FArrayBox,
    valid: IndexBox,
    dir: usize,
    gas: &PerfectGas,
    variant: WenoVariant,
) {
    let r = STENCIL_RADIUS as i64;
    let n = valid.length(dir) as usize;
    let m = n + 2 * r as usize;
    // Component-major (SoA) pencil scratch: `fhat[c * m + i]`. The laned
    // face loop reads windows `i = f0 + l + k` — unit stride in the lane
    // index `l` — so SoA turns the window gather into plain vector loads
    // where the scalar kernel's array-of-struct layout would force a
    // stride-NCONS transpose. Pure storage; per-element arithmetic and its
    // order are untouched.
    let nf = n + 1;
    let mut fhat = vec![0.0f64; NCONS * m];
    let mut v = vec![0.0f64; NCONS * m];
    let mut speed = vec![0.0; m];
    let mut jacs = vec![0.0; m];
    let mut craw = vec![0.0f64; NCONS * m];
    let mut mrow = vec![0.0f64; 3 * m];
    let mut face_flux = vec![0.0f64; NCONS * nf];

    let (d1, d2) = match dir {
        0 => (1, 2),
        1 => (0, 2),
        _ => (0, 1),
    };
    let mut plane_lo = valid.lo();
    let mut plane_hi = valid.hi();
    plane_lo[dir] = 0;
    plane_hi[dir] = 0;
    for plane in IndexBox::new(plane_lo, plane_hi).cells() {
        // Pencil load, arithmetic-free. x-pencils are contiguous in fab
        // storage, so each of the nine fields (five state components, the
        // Jacobian, one metric row) arrives as one `read_row`/`row` slice
        // copy — no per-cell index arithmetic at all. y/z pencils gather
        // per cell, component-major, as before.
        let mut pbase = valid.lo();
        pbase[d1] = plane[d1];
        pbase[d2] = plane[d2];
        pbase[dir] -= r;
        if dir == 0 {
            for c in 0..NCONS {
                u.read_row(pbase, c, &mut craw[c * m..(c + 1) * m]);
            }
            jacs.copy_from_slice(met.row(pbase, mcomp::JAC, m));
            for d in 0..3 {
                mrow[d * m..(d + 1) * m].copy_from_slice(met.row(pbase, mcomp::M + d, m));
            }
        } else {
            for idx in 0..m {
                let mut p = pbase;
                p[dir] += idx as i64;
                for c in 0..NCONS {
                    craw[c * m + idx] = u.get(p, c);
                }
                jacs[idx] = met.get(p, mcomp::JAC);
                for d in 0..3 {
                    mrow[d * m + idx] = met.get(p, mcomp::M + dir * 3 + d);
                }
            }
        }
        // Split-flux algebra over the whole pencil: one branch-free loop on
        // contiguous equal-length slices, which LLVM vectorizes end to end
        // (`max`, `abs`, `sqrt`, and division all have packed forms). The
        // per-cell expressions replicate `Conserved::to_primitive` and
        // `PerfectGas::sound_speed` exactly (the unused temperature is dead
        // code the scalar path also drops).
        let g1 = gas.gamma - 1.0;
        {
            // Every operand below is a slice of provable length `m`, so the
            // `for i in 0..m` loop is bounds-check-free — one panic branch
            // inside would stop LLVM from vectorizing it.
            let speed = &mut speed[..m];
            let jacs = &jacs[..m];
            let (c_rho, c_rest) = craw.split_at(m);
            let (c_mx, c_rest) = c_rest.split_at(m);
            let (c_my, c_rest) = c_rest.split_at(m);
            let (c_mz, c_e) = c_rest.split_at(m);
            let (m0, m_rest) = mrow.split_at(m);
            let (m1, m2) = m_rest.split_at(m);
            let (f_rho, f_rest) = fhat.split_at_mut(m);
            let (f_mx, f_rest) = f_rest.split_at_mut(m);
            let (f_my, f_rest) = f_rest.split_at_mut(m);
            let (f_mz, f_e) = f_rest.split_at_mut(m);
            let (v_rho, v_rest) = v.split_at_mut(m);
            let (v_mx, v_rest) = v_rest.split_at_mut(m);
            let (v_my, v_rest) = v_rest.split_at_mut(m);
            let (v_mz, v_e) = v_rest.split_at_mut(m);
            for i in 0..m {
                let rho = c_rho[i];
                let inv = 1.0 / rho;
                let v0 = c_mx[i] * inv;
                let v1 = c_my[i] * inv;
                let v2 = c_mz[i] * inv;
                let ke = 0.5 * rho * (v0 * v0 + v1 * v1 + v2 * v2);
                let pn = g1 * (c_e[i] - ke);
                let a = (gas.gamma * pn.max(1e-300) / rho).sqrt();
                let mnorm = (m0[i] * m0[i] + m1[i] * m1[i] + m2[i] * m2[i]).sqrt();
                let uc = m0[i] * v0 + m1[i] * v1 + m2[i] * v2;
                speed[i] = (uc.abs() + a * mnorm) / jacs[i];
                f_rho[i] = rho * uc;
                f_mx[i] = c_mx[i] * uc + pn * m0[i];
                f_my[i] = c_my[i] * uc + pn * m1[i];
                f_mz[i] = c_mz[i] * uc + pn * m2[i];
                f_e[i] = (c_e[i] + pn) * uc;
                v_rho[i] = jacs[i] * rho;
                v_mx[i] = jacs[i] * c_mx[i];
                v_my[i] = jacs[i] * c_my[i];
                v_mz[i] = jacs[i] * c_mz[i];
                v_e[i] = jacs[i] * c_e[i];
            }
        }
        // Laned face loop: LANES contiguous faces per iteration, windows
        // gathered into lane-transposed scratch.
        let mut f0 = 0;
        while f0 + LANES <= nf {
            // λ per face: max over the six window speeds. k-outer keeps each
            // lane's max chain in the scalar order (k = 0..5) while the lane
            // loop vectorizes over unit-stride speed loads.
            let sw = &speed[f0..f0 + LANES + 5];
            let mut lambda = [0.0f64; LANES];
            for k in 0..6 {
                for l in 0..LANES {
                    lambda[l] = lambda[l].max(sw[l + k]);
                }
            }
            for c in 0..NCONS {
                // Window slices: `fw[l + k]` with `l + k ≤ LANES + 4`, so
                // one bounds check per slice and unit-stride lane loads.
                let fw = &fhat[c * m + f0..c * m + f0 + LANES + 5];
                let vw = &v[c * m + f0..c * m + f0 + LANES + 5];
                let mut wp = [[0.0; LANES]; 6];
                let mut wm = [[0.0; LANES]; 6];
                for k in 0..6 {
                    for l in 0..LANES {
                        wp[k][l] = 0.5 * (fw[l + k] + lambda[l] * vw[l + k]);
                        wm[k][l] = 0.5 * (fw[l + 5 - k] - lambda[l] * vw[l + 5 - k]);
                    }
                }
                let rp = reconstruct_face_lanes(&wp, variant);
                let rm = reconstruct_face_lanes(&wm, variant);
                for l in 0..LANES {
                    face_flux[c * nf + f0 + l] = rp[l] + rm[l];
                }
            }
            f0 += LANES;
        }
        // Scalar tail: the scalar kernel's face body verbatim.
        for f in f0..nf {
            let base = f;
            let mut lambda: f64 = 0.0;
            for k in 0..6 {
                lambda = lambda.max(speed[base + k]);
            }
            for c in 0..NCONS {
                let mut wp = [0.0; 6];
                let mut wm = [0.0; 6];
                for k in 0..6 {
                    let q = 0.5 * (fhat[c * m + base + k] + lambda * v[c * m + base + k]);
                    wp[k] = q;
                    let qm = 0.5 * (fhat[c * m + base + 5 - k] - lambda * v[c * m + base + 5 - k]);
                    wm[k] = qm;
                }
                face_flux[c * nf + f] =
                    reconstruct_face(&wp, variant) + reconstruct_face(&wm, variant);
            }
        }
        // Flux difference into rhs — per-cell op identical to the scalar
        // kernel (`rhs += -(f_{i+1} - f_i)/J`, same Jacobian values, cached
        // from the gather). x-pencils stream straight into the rhs row;
        // other directions keep the per-cell adds.
        if dir == 0 {
            let mut p = valid.lo();
            p[d1] = plane[d1];
            p[d2] = plane[d2];
            for c in 0..NCONS {
                let fr = &face_flux[c * nf..(c + 1) * nf];
                let row = rhs.row_mut(p, c, n);
                for i in 0..n {
                    row[i] += -(fr[i + 1] - fr[i]) / jacs[r as usize + i];
                }
            }
        } else {
            for i in 0..n {
                let mut p = valid.lo();
                p[d1] = plane[d1];
                p[d2] = plane[d2];
                p[dir] = valid.lo()[dir] + i as i64;
                let jac = jacs[r as usize + i];
                for c in 0..NCONS {
                    let fp = face_flux[c * nf + i + 1];
                    let fm = face_flux[c * nf + i];
                    rhs.add(p, c, -(fp - fm) / jac);
                }
            }
        }
    }
}

/// Iterates the rows (fixed `j`, `k`) of `bx` as `(row base point, length)`.
/// Shared with the fused backend's axpy interpreter, which must walk cells
/// in the same x-fastest order.
pub(crate) fn rows(bx: IndexBox) -> impl Iterator<Item = (IntVect, usize)> {
    let (lo, hi) = (bx.lo(), bx.hi());
    let len = (hi[0] - lo[0] + 1) as usize;
    (lo[2]..=hi[2]).flat_map(move |k| {
        (lo[1]..=hi[1]).map(move |j| (IntVect::new(lo[0], j, k), len))
    })
}

/// Lane-structured viscous/LES fluxes: same two global-memory-style scratch
/// passes as the scalar kernel, with pass 1's gradient/stress/flux algebra
/// and pass 2's divergence laned across contiguous x-cells of each row. The
/// per-cell primitive fill (pass 0) and the per-point SGS closure call are
/// shared with the scalar kernel verbatim.
fn viscous_flux_lanes(
    u: &impl FabView,
    met: &FArrayBox,
    rhs: &mut FArrayBox,
    valid: IndexBox,
    gas: &PerfectGas,
    sgs: Option<&Smagorinsky>,
) {
    if gas.mu_ref == 0.0 && sgs.is_none() {
        return;
    }
    let work = valid.grow(2);
    let prim_region = work.grow(2);
    let mut prims = FArrayBox::new(prim_region, 4);
    for p in prim_region.cells() {
        let w = Conserved([
            u.get(p, cons::RHO),
            u.get(p, cons::MX),
            u.get(p, cons::MY),
            u.get(p, cons::MZ),
            u.get(p, cons::ENER),
        ])
        .to_primitive(gas);
        prims.set(p, 0, w.vel[0]);
        prims.set(p, 1, w.vel[1]);
        prims.set(p, 2, w.vel[2]);
        prims.set(p, 3, w.t);
    }
    let mut scratch = FArrayBox::new(work, 3 * NCONS);

    // Pass 1, laned: gradients → stress/heat flux → contravariant flux.
    for (row0, len) in rows(work) {
        let mut x0 = 0usize;
        while x0 < len {
            let w_ = LANES.min(len - x0);
            let at = |l: usize| IntVect::new(row0[0] + (x0 + l) as i64, row0[1], row0[2]);
            let mut jac = [0.0; LANES];
            for l in 0..w_ {
                jac[l] = met.get(at(l), mcomp::JAC);
            }
            // Computational gradients of u, v, w, T (4th-order central).
            let mut dcomp = [[[0.0; LANES]; 3]; 4]; // [field][xi][lane]
            for (fi, rowf) in dcomp.iter_mut().enumerate() {
                for (xi, dc) in rowf.iter_mut().enumerate() {
                    let e = IntVect::unit(xi);
                    for l in 0..w_ {
                        let p = at(l);
                        dc[l] = (prims.get(p - e * 2, fi) - 8.0 * prims.get(p - e, fi)
                            + 8.0 * prims.get(p + e, fi)
                            - prims.get(p + e * 2, fi))
                            / 12.0;
                    }
                }
            }
            // Metric rows, loaded once per chunk.
            let mut mm = [[[0.0; LANES]; 3]; 3]; // [d][j][lane]
            for (d, md) in mm.iter_mut().enumerate() {
                for (j, mdj) in md.iter_mut().enumerate() {
                    for l in 0..w_ {
                        mdj[l] = met.get(at(l), mcomp::M + d * 3 + j);
                    }
                }
            }
            // Transform to physical space, same d-accumulation order.
            let mut dphys = [[[0.0; LANES]; 3]; 4];
            for (rowc, dp_row) in dcomp.iter().zip(dphys.iter_mut()) {
                for (j, dp) in dp_row.iter_mut().enumerate() {
                    for l in 0..w_ {
                        let mut s = 0.0;
                        for (d, rc) in rowc.iter().enumerate() {
                            s += mm[d][j][l] / jac[l] * rc[l];
                        }
                        dp[l] = s;
                    }
                }
            }
            let mut w_vel = [[0.0; LANES]; 3];
            let mut w_t = [0.0; LANES];
            for l in 0..w_ {
                let p = at(l);
                w_vel[0][l] = prims.get(p, 0);
                w_vel[1][l] = prims.get(p, 1);
                w_vel[2][l] = prims.get(p, 2);
                w_t[l] = prims.get(p, 3);
            }
            let mut mu = [0.0; LANES];
            let mut kk = [0.0; LANES];
            for l in 0..w_ {
                mu[l] = gas.viscosity(w_t[l]);
                kk[l] = gas.conductivity(w_t[l]);
            }
            if let Some(model) = sgs {
                for l in 0..w_ {
                    // Per-point closure shared with the scalar kernel.
                    let mu_t = model.eddy_viscosity(u, met, at(l), gas);
                    mu[l] += mu_t;
                    kk[l] += mu_t * gas.cp() / 0.9;
                }
            }
            let mut div = [0.0; LANES];
            for l in 0..w_ {
                div[l] = dphys[0][0][l] + dphys[1][1][l] + dphys[2][2][l];
            }
            let mut tau = [[[0.0; LANES]; 3]; 3];
            for i in 0..3 {
                for j in 0..3 {
                    for l in 0..w_ {
                        tau[i][j][l] = mu[l] * (dphys[i][j][l] + dphys[j][i][l]);
                    }
                }
                for l in 0..w_ {
                    tau[i][i][l] -= 2.0 / 3.0 * mu[l] * div[l];
                }
            }
            for d in 0..3 {
                let mut fv = [[0.0; LANES]; NCONS];
                for j in 0..3 {
                    for l in 0..w_ {
                        fv[cons::MX][l] += mm[d][j][l] * tau[0][j][l];
                        fv[cons::MY][l] += mm[d][j][l] * tau[1][j][l];
                        fv[cons::MZ][l] += mm[d][j][l] * tau[2][j][l];
                        let work_term = w_vel[0][l] * tau[0][j][l]
                            + w_vel[1][l] * tau[1][j][l]
                            + w_vel[2][l] * tau[2][j][l];
                        fv[cons::ENER][l] += mm[d][j][l] * (work_term + kk[l] * dphys[3][j][l]);
                    }
                }
                for (c, fvc) in fv.iter().enumerate() {
                    for l in 0..w_ {
                        scratch.set(at(l), d * NCONS + c, fvc[l]);
                    }
                }
            }
            x0 += w_;
        }
    }

    // Pass 2, laned: divergence of the contravariant viscous flux.
    for (row0, len) in rows(valid) {
        let mut x0 = 0usize;
        while x0 < len {
            let w_ = LANES.min(len - x0);
            let at = |l: usize| IntVect::new(row0[0] + (x0 + l) as i64, row0[1], row0[2]);
            let mut jac = [0.0; LANES];
            for l in 0..w_ {
                jac[l] = met.get(at(l), mcomp::JAC);
            }
            for c in 0..NCONS {
                let mut s = [0.0; LANES];
                for d in 0..3 {
                    let e = IntVect::unit(d);
                    for l in 0..w_ {
                        let p = at(l);
                        s[l] += (scratch.get(p - e * 2, d * NCONS + c)
                            - 8.0 * scratch.get(p - e, d * NCONS + c)
                            + 8.0 * scratch.get(p + e, d * NCONS + c)
                            - scratch.get(p + e * 2, d * NCONS + c))
                            / 12.0;
                    }
                }
                for l in 0..w_ {
                    rhs.add(at(l), c, s[l] / jac[l]);
                }
            }
            x0 += w_;
        }
    }
}

/// Lane-structured `ComputeDt`: the wave-speed sum is laned across
/// contiguous x-cells; the running `min` reduction visits cells in the
/// scalar order (x fastest), so the result is bitwise-identical (`min` is
/// exact regardless of association).
fn compute_dt_lanes(
    u: &impl FabView,
    met: &FArrayBox,
    valid: IndexBox,
    gas: &PerfectGas,
    cfl: f64,
) -> f64 {
    let mut dt = f64::INFINITY;
    for (row0, len) in rows(valid) {
        let mut x0 = 0usize;
        while x0 < len {
            let w_ = LANES.min(len - x0);
            let at = |l: usize| IntVect::new(row0[0] + (x0 + l) as i64, row0[1], row0[2]);
            let mut a = [0.0; LANES];
            let mut vel = [[0.0; LANES]; 3];
            let mut jac = [0.0; LANES];
            for l in 0..w_ {
                let p = at(l);
                let w = Conserved([
                    u.get(p, cons::RHO),
                    u.get(p, cons::MX),
                    u.get(p, cons::MY),
                    u.get(p, cons::MZ),
                    u.get(p, cons::ENER),
                ])
                .to_primitive(gas);
                a[l] = gas.sound_speed(w.rho, w.p.max(1e-300));
                vel[0][l] = w.vel[0];
                vel[1][l] = w.vel[1];
                vel[2][l] = w.vel[2];
                jac[l] = met.get(p, mcomp::JAC);
            }
            let mut sum = [0.0; LANES];
            for d in 0..3 {
                for l in 0..w_ {
                    let p = at(l);
                    let mvec = [
                        met.get(p, mcomp::M + d * 3),
                        met.get(p, mcomp::M + d * 3 + 1),
                        met.get(p, mcomp::M + d * 3 + 2),
                    ];
                    let mnorm =
                        (mvec[0] * mvec[0] + mvec[1] * mvec[1] + mvec[2] * mvec[2]).sqrt();
                    let uc = mvec[0] * vel[0][l] + mvec[1] * vel[1][l] + mvec[2] * vel[2][l];
                    sum[l] += (uc.abs() + a[l] * mnorm) / jac[l];
                }
            }
            for &s in sum.iter().take(w_) {
                if s > 0.0 {
                    dt = dt.min(cfl / s);
                }
            }
            x0 += w_;
        }
    }
    dt
}

/// Lane-structured Smagorinsky eddy-viscosity field: the gradient transform
/// and |S| contraction are laned across contiguous x-cells; per-cell
/// operation order matches [`Smagorinsky::eddy_viscosity`] exactly.
fn eddy_viscosity_field_lanes(
    model: &Smagorinsky,
    u: &impl FabView,
    met: &FArrayBox,
    out: &mut FArrayBox,
    valid: IndexBox,
    gas: &PerfectGas,
) {
    let prim = |q: IntVect| {
        Conserved([
            u.get(q, cons::RHO),
            u.get(q, cons::MX),
            u.get(q, cons::MY),
            u.get(q, cons::MZ),
            u.get(q, cons::ENER),
        ])
        .to_primitive(gas)
    };
    for (row0, len) in rows(valid) {
        let mut x0 = 0usize;
        while x0 < len {
            let w_ = LANES.min(len - x0);
            let at = |l: usize| IntVect::new(row0[0] + (x0 + l) as i64, row0[1], row0[2]);
            let mut jac = [0.0; LANES];
            let mut delta = [0.0; LANES];
            for l in 0..w_ {
                jac[l] = met.get(at(l), mcomp::JAC);
                delta[l] = jac[l].cbrt();
            }
            // Computational velocity gradients (2nd-order central).
            let mut dcomp = [[[0.0; LANES]; 3]; 3]; // [xi][vel comp][lane]
            for (xi, rowx) in dcomp.iter_mut().enumerate() {
                let e = IntVect::unit(xi);
                for l in 0..w_ {
                    let wp = prim(at(l) + e);
                    let wm = prim(at(l) - e);
                    for (i, dc) in rowx.iter_mut().enumerate() {
                        dc[l] = 0.5 * (wp.vel[i] - wm.vel[i]);
                    }
                }
            }
            // Transform: ∂u_i/∂x_j = Σ_d (m_dj / J) ∂u_i/∂ξ_d.
            let mut g = [[[0.0; LANES]; 3]; 3];
            for (i, grow) in g.iter_mut().enumerate() {
                for (j, gij) in grow.iter_mut().enumerate() {
                    for l in 0..w_ {
                        let mut s = 0.0;
                        for (d, drow) in dcomp.iter().enumerate() {
                            s += met.get(at(l), mcomp::M + d * 3 + j) / jac[l] * drow[i][l];
                        }
                        gij[l] = s;
                    }
                }
            }
            let mut ss = [0.0; LANES];
            for (i, grow) in g.iter().enumerate() {
                for (j, gij) in grow.iter().enumerate() {
                    for l in 0..w_ {
                        let sij = 0.5 * (gij[l] + g[j][i][l]);
                        ss[l] += sij * sij;
                    }
                }
            }
            for l in 0..w_ {
                let smag = (2.0 * ss[l]).sqrt();
                let rho = u.get(at(l), cons::RHO);
                out.set(at(l), 0, rho * (model.cs * delta[l]).powi(2) * smag);
            }
            x0 += w_;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{compute_metrics, generate_coords, NCOORDS, NMETRICS};
    use crate::state::Primitive;
    use crocco_fab::{BoxArray, DistributionMapping, MultiFab};
    use crocco_geometry::{IndexBox, RealVect, StretchedMapping};
    use std::sync::Arc;

    /// Sheared, stretched single-patch fixture with a nonlinear flow field:
    /// exercises every metric term and both flux-split signs.
    fn patch(extents: IntVect, gas: &PerfectGas) -> (MultiFab, MultiFab) {
        let bx = IndexBox::from_extents(extents[0], extents[1], extents[2]);
        let ba = Arc::new(BoxArray::new(vec![bx]));
        let dm = Arc::new(DistributionMapping::all_on_root(&ba));
        let map = StretchedMapping::new(RealVect::ZERO, RealVect::splat(1.0), 1.25, 1);
        let mut coords = MultiFab::new(ba.clone(), dm.clone(), NCOORDS, kernels::NGHOST + 2);
        generate_coords(&map, extents, &mut coords);
        let mut metrics = MultiFab::new(ba.clone(), dm.clone(), NMETRICS, kernels::NGHOST);
        compute_metrics(&coords, &mut metrics);
        let mut state = MultiFab::new(ba, dm, NCONS, kernels::NGHOST);
        let all = state.fab(0).bx();
        for p in all.cells() {
            let x = p[0] as f64 / extents[0] as f64;
            let y = p[1] as f64 / extents[1] as f64;
            let w = Primitive {
                rho: 1.0 + 0.25 * (5.0 * x).sin() * (3.0 * y).cos(),
                vel: [0.6 - 0.3 * y, 0.2 * (4.0 * x).cos(), -0.1 + 0.05 * y],
                p: 1.0 + 0.1 * (3.0 * x + 2.0 * y).sin(),
                t: 0.0,
            };
            let u = Conserved::from_primitive(&w, gas);
            for c in 0..NCONS {
                state.fab_mut(0).set(p, c, u.0[c]);
            }
        }
        (state, metrics)
    }

    fn bits(fab: &FArrayBox) -> Vec<u64> {
        fab.data().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn weno_matches_scalar_bitwise_all_variants_and_dirs() {
        let gas = PerfectGas::nondimensional();
        // 11 in x: the 12 x-faces exercise one full lane block + a 4-face
        // scalar tail; y/z faces are all-tail and all-block respectively.
        let (state, metrics) = patch(IntVect::new(11, 6, 8), &gas);
        let valid = state.valid_box(0);
        for variant in [WenoVariant::Js5, WenoVariant::CentralSym6, WenoVariant::Symbo] {
            for dir in 0..3 {
                let mut r_s = FArrayBox::new(valid, NCONS);
                let mut r_l = FArrayBox::new(valid, NCONS);
                kernels::weno_flux_recon(
                    state.fab(0), metrics.fab(0), &mut r_s, valid, dir, &gas, variant,
                    Reconstruction::ComponentWise,
                );
                LanesBackend::weno_flux_recon(
                    state.fab(0), metrics.fab(0), &mut r_l, valid, dir, &gas, variant,
                    Reconstruction::ComponentWise,
                );
                assert_eq!(bits(&r_s), bits(&r_l), "{variant:?} dir {dir} diverged");
            }
        }
    }

    #[test]
    fn characteristic_falls_back_to_scalar_bitwise() {
        let gas = PerfectGas::nondimensional();
        let (state, metrics) = patch(IntVect::new(12, 8, 8), &gas);
        let valid = state.valid_box(0);
        let mut r_s = FArrayBox::new(valid, NCONS);
        let mut r_l = FArrayBox::new(valid, NCONS);
        kernels::weno_flux_recon(
            state.fab(0), metrics.fab(0), &mut r_s, valid, 0, &gas, WenoVariant::Js5,
            Reconstruction::Characteristic,
        );
        LanesBackend::weno_flux_recon(
            state.fab(0), metrics.fab(0), &mut r_l, valid, 0, &gas, WenoVariant::Js5,
            Reconstruction::Characteristic,
        );
        assert_eq!(bits(&r_s), bits(&r_l));
    }

    #[test]
    fn viscous_and_les_match_scalar_bitwise() {
        let gas = PerfectGas::air();
        let (state, metrics) = patch(IntVect::new(10, 6, 8), &gas);
        let valid = state.valid_box(0);
        for sgs in [None, Some(Smagorinsky { cs: 0.17 })] {
            let mut r_s = FArrayBox::new(valid, NCONS);
            let mut r_l = FArrayBox::new(valid, NCONS);
            kernels::viscous_flux_les(
                state.fab(0), metrics.fab(0), &mut r_s, valid, &gas, sgs.as_ref(),
            );
            LanesBackend::viscous_flux_les(
                state.fab(0), metrics.fab(0), &mut r_l, valid, &gas, sgs.as_ref(),
            );
            assert_eq!(bits(&r_s), bits(&r_l), "sgs={}", sgs.is_some());
        }
    }

    #[test]
    fn compute_dt_matches_scalar_bitwise() {
        let gas = PerfectGas::nondimensional();
        let (state, metrics) = patch(IntVect::new(13, 7, 8), &gas);
        let valid = state.valid_box(0);
        let d_s = kernels::compute_dt_patch(state.fab(0), metrics.fab(0), valid, &gas, 0.7);
        let d_l = LanesBackend::compute_dt_patch(state.fab(0), metrics.fab(0), valid, &gas, 0.7);
        assert_eq!(d_s.to_bits(), d_l.to_bits());
    }

    #[test]
    fn eddy_viscosity_field_matches_scalar_bitwise() {
        let gas = PerfectGas::air();
        let (state, metrics) = patch(IntVect::new(9, 6, 8), &gas);
        let valid = state.valid_box(0);
        let model = Smagorinsky { cs: 0.12 };
        let mut o_s = FArrayBox::new(valid, 1);
        let mut o_l = FArrayBox::new(valid, 1);
        model.eddy_viscosity_field(state.fab(0), metrics.fab(0), &mut o_s, valid, &gas);
        LanesBackend::eddy_viscosity_field(
            &model, state.fab(0), metrics.fab(0), &mut o_l, valid, &gas,
        );
        assert_eq!(bits(&o_s), bits(&o_l));
    }

    #[test]
    fn tiled_lanes_accumulation_matches_whole_patch() {
        // Partition invariance must survive the lane restructuring: summing
        // per-tile lane sweeps equals one whole-patch lane sweep bitwise.
        let gas = PerfectGas::nondimensional();
        let (state, metrics) = patch(IntVect::new(16, 8, 8), &gas);
        let valid = state.valid_box(0);
        let mut whole = FArrayBox::new(valid, NCONS);
        let mut tiled = FArrayBox::new(valid, NCONS);
        for dir in 0..3 {
            LanesBackend::weno_flux_recon(
                state.fab(0), metrics.fab(0), &mut whole, valid, dir, &gas,
                WenoVariant::Symbo, Reconstruction::ComponentWise,
            );
        }
        for tile in crocco_fab::tile_boxes(valid, IntVect::new(1_000_000, 4, 4)) {
            for dir in 0..3 {
                LanesBackend::weno_flux_recon(
                    state.fab(0), metrics.fab(0), &mut tiled, tile, dir, &gas,
                    WenoVariant::Symbo, Reconstruction::ComponentWise,
                );
            }
        }
        assert_eq!(bits(&whole), bits(&tiled));
    }
}
