//! The scalar (per-point) backend: the original CRoCCo kernels, unchanged.
//!
//! This backend *is* [`crate::kernels`] and [`crate::sgs`] behind the
//! [`KernelBackend`] trait — no restructuring, no reordering. It defines the
//! bitwise reference every other backend is validated against
//! (`tests/backend_invariance.rs`), exactly as the paper's CPU kernels
//! anchored the L2-norm validation of the GPU port (§IV-A).

use super::KernelBackend;
use crate::eos::PerfectGas;
use crate::kernels;
use crate::sgs::Smagorinsky;
use crate::weno::{Reconstruction, WenoVariant};
use crocco_fab::{FArrayBox, FabView};
use crocco_geometry::IndexBox;

/// Per-point reference kernels (see module docs).
#[derive(Clone, Copy, Debug, Default)]
pub struct ScalarBackend;

impl KernelBackend for ScalarBackend {
    const NAME: &'static str = "scalar";

    fn weno_flux_recon(
        u: &impl FabView,
        met: &FArrayBox,
        rhs: &mut FArrayBox,
        region: IndexBox,
        dir: usize,
        gas: &PerfectGas,
        variant: WenoVariant,
        recon: Reconstruction,
    ) {
        kernels::weno_flux_recon(u, met, rhs, region, dir, gas, variant, recon);
    }

    fn viscous_flux_les(
        u: &impl FabView,
        met: &FArrayBox,
        rhs: &mut FArrayBox,
        region: IndexBox,
        gas: &PerfectGas,
        sgs: Option<&Smagorinsky>,
    ) {
        kernels::viscous_flux_les(u, met, rhs, region, gas, sgs);
    }

    fn compute_dt_patch(
        u: &impl FabView,
        met: &FArrayBox,
        valid: IndexBox,
        gas: &PerfectGas,
        cfl: f64,
    ) -> f64 {
        kernels::compute_dt_patch(u, met, valid, gas, cfl)
    }

    fn eddy_viscosity_field(
        model: &Smagorinsky,
        u: &impl FabView,
        met: &FArrayBox,
        out: &mut FArrayBox,
        valid: IndexBox,
        gas: &PerfectGas,
    ) {
        model.eddy_viscosity_field(u, met, out, valid, gas);
    }
}
