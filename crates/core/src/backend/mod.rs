//! Pluggable tiled kernel backends (DESIGN.md §4h).
//!
//! The paper's GPU port restructured CRoCCo's hot loops — WENO, viscous,
//! `ComputeDt`, update — onto an explicit tile/thread abstraction so the same
//! numerics could run on very different execution substrates (§IV-B). This
//! module is that seam in the reproduction: the [`KernelBackend`] trait
//! names the per-patch kernels the RK driver consumes, and three
//! implementations provide them, all dispatched over
//! [`crocco_fab::tiles::tile_boxes`] tiles through the [`FabView`] raw-view
//! machinery:
//!
//! * [`ScalarBackend`] — the original per-point kernels from
//!   [`crate::kernels`], unchanged. The bitwise reference.
//! * [`LanesBackend`] — stable-Rust SIMD via fixed-width `[f64; LANES]`
//!   lane arrays: the branch-free WENO candidate/smoothness/weight algebra
//!   is evaluated for [`lanes::LANES`] contiguous faces at once from
//!   lane-transposed window scratch, and the viscous, `ComputeDt`, and SGS
//!   loops vectorize across contiguous cells. Bitwise-identical to Scalar
//!   by construction (every per-cell operation sequence is preserved; lanes
//!   only reorder *across* independent cells).
//! * [`FusedBackend`] — a GPU-shaped backend: each RK stage is a small
//!   per-tile op DAG ([`fused::KernelIr`]) whose flux-difference + RK-axpy
//!   chain is fused ([`fused::KernelIr::fuse`]) so the stage RHS never
//!   round-trips a full-patch fab between kernels, executed by an
//!   interpreter over the tile list. Emits per-kernel
//!   [`crocco_perfmodel::KernelSpec`] entries so the roofline model can
//!   score *measured* throughput against its ceiling.
//!
//! Selection goes through [`SolverConfig::kernel_backend`] and composes
//! with `overlap`, `dist_overlap`, and `fabcheck`; the invariance suite
//! (`tests/backend_invariance.rs`) proves Lanes and Fused match Scalar
//! bitwise on the compression ramp across those combinations.
//!
//! [`SolverConfig::kernel_backend`]: crate::config::SolverConfig::kernel_backend

pub mod fused;
pub mod lanes;
pub mod scalar;

use crate::eos::PerfectGas;
use crate::sgs::Smagorinsky;
use crate::weno::{Reconstruction, WenoVariant};
use crocco_fab::{FArrayBox, FabView};
use crocco_geometry::IndexBox;
use serde::{Deserialize, Serialize};

pub use fused::FusedBackend;
pub use lanes::LanesBackend;
pub use scalar::ScalarBackend;

/// The per-patch kernel set a backend must provide.
///
/// Methods are associated functions generic over [`FabView`] (so the
/// task-graph path can pass raw read views), which makes the trait
/// non-object-safe by design: dispatch goes through the [`BackendKind`]
/// enum, never through `dyn` — mirroring how the paper's port selects a
/// compiled kernel flavour, not a virtual call, per platform.
///
/// Every implementation must be bitwise-identical to [`ScalarBackend`]
/// (or ULP-bounded with the tolerance documented on the implementation);
/// the current three are all exactly bitwise.
pub trait KernelBackend {
    /// Short label for reports and benchmark tables.
    const NAME: &'static str;

    /// One-direction WENO convective flux: accumulates
    /// `−(1/J)·∂F̂_dir/∂ξ_dir` into `rhs` over `region`. See
    /// [`crate::kernels::weno_flux_recon`] for the contract.
    #[allow(clippy::too_many_arguments)]
    fn weno_flux_recon(
        u: &impl FabView,
        met: &FArrayBox,
        rhs: &mut FArrayBox,
        region: IndexBox,
        dir: usize,
        gas: &PerfectGas,
        variant: WenoVariant,
        recon: Reconstruction,
    );

    /// 4th-order central viscous/LES fluxes accumulated into `rhs` over
    /// `region`. See [`crate::kernels::viscous_flux_les`].
    fn viscous_flux_les(
        u: &impl FabView,
        met: &FArrayBox,
        rhs: &mut FArrayBox,
        region: IndexBox,
        gas: &PerfectGas,
        sgs: Option<&Smagorinsky>,
    );

    /// CFL-constrained time step over one patch. See
    /// [`crate::kernels::compute_dt_patch`].
    fn compute_dt_patch(
        u: &impl FabView,
        met: &FArrayBox,
        valid: IndexBox,
        gas: &PerfectGas,
        cfl: f64,
    ) -> f64;

    /// Smagorinsky eddy-viscosity field over `valid` into component 0 of
    /// `out`. See [`Smagorinsky::eddy_viscosity_field`].
    fn eddy_viscosity_field(
        model: &Smagorinsky,
        u: &impl FabView,
        met: &FArrayBox,
        out: &mut FArrayBox,
        valid: IndexBox,
        gas: &PerfectGas,
    );
}

/// Value-level backend selection ([`SolverConfig::kernel_backend`]).
///
/// [`SolverConfig::kernel_backend`]: crate::config::SolverConfig::kernel_backend
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackendKind {
    /// Per-point reference kernels (the default; bitwise baseline).
    #[default]
    Scalar,
    /// Fixed-width `[f64; LANES]` SIMD lane kernels.
    Lanes,
    /// Per-tile fused kernel-IR interpreter.
    Fused,
}

impl BackendKind {
    /// All backends, in ablation order.
    pub const ALL: [BackendKind; 3] = [BackendKind::Scalar, BackendKind::Lanes, BackendKind::Fused];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            BackendKind::Scalar => ScalarBackend::NAME,
            BackendKind::Lanes => LanesBackend::NAME,
            BackendKind::Fused => FusedBackend::NAME,
        }
    }

    /// Parses a backend name (`"scalar"`, `"lanes"`, `"fused"`), as used by
    /// the CI matrix' `CROCCO_BACKEND` environment filter and the ablation
    /// binaries. Case-insensitive; `None` for unknown names.
    pub fn parse(s: &str) -> Option<BackendKind> {
        match s.to_ascii_lowercase().as_str() {
            "scalar" => Some(BackendKind::Scalar),
            "lanes" => Some(BackendKind::Lanes),
            "fused" => Some(BackendKind::Fused),
            _ => None,
        }
    }

    /// Dispatches [`KernelBackend::weno_flux_recon`].
    #[allow(clippy::too_many_arguments)]
    pub fn weno_flux_recon(
        self,
        u: &impl FabView,
        met: &FArrayBox,
        rhs: &mut FArrayBox,
        region: IndexBox,
        dir: usize,
        gas: &PerfectGas,
        variant: WenoVariant,
        recon: Reconstruction,
    ) {
        match self {
            BackendKind::Scalar => {
                ScalarBackend::weno_flux_recon(u, met, rhs, region, dir, gas, variant, recon)
            }
            BackendKind::Lanes => {
                LanesBackend::weno_flux_recon(u, met, rhs, region, dir, gas, variant, recon)
            }
            BackendKind::Fused => {
                FusedBackend::weno_flux_recon(u, met, rhs, region, dir, gas, variant, recon)
            }
        }
    }

    /// Dispatches [`KernelBackend::viscous_flux_les`].
    pub fn viscous_flux_les(
        self,
        u: &impl FabView,
        met: &FArrayBox,
        rhs: &mut FArrayBox,
        region: IndexBox,
        gas: &PerfectGas,
        sgs: Option<&Smagorinsky>,
    ) {
        match self {
            BackendKind::Scalar => ScalarBackend::viscous_flux_les(u, met, rhs, region, gas, sgs),
            BackendKind::Lanes => LanesBackend::viscous_flux_les(u, met, rhs, region, gas, sgs),
            BackendKind::Fused => FusedBackend::viscous_flux_les(u, met, rhs, region, gas, sgs),
        }
    }

    /// Dispatches [`KernelBackend::compute_dt_patch`].
    pub fn compute_dt_patch(
        self,
        u: &impl FabView,
        met: &FArrayBox,
        valid: IndexBox,
        gas: &PerfectGas,
        cfl: f64,
    ) -> f64 {
        match self {
            BackendKind::Scalar => ScalarBackend::compute_dt_patch(u, met, valid, gas, cfl),
            BackendKind::Lanes => LanesBackend::compute_dt_patch(u, met, valid, gas, cfl),
            BackendKind::Fused => FusedBackend::compute_dt_patch(u, met, valid, gas, cfl),
        }
    }

    /// Dispatches [`KernelBackend::eddy_viscosity_field`].
    pub fn eddy_viscosity_field(
        self,
        model: &Smagorinsky,
        u: &impl FabView,
        met: &FArrayBox,
        out: &mut FArrayBox,
        valid: IndexBox,
        gas: &PerfectGas,
    ) {
        match self {
            BackendKind::Scalar => {
                ScalarBackend::eddy_viscosity_field(model, u, met, out, valid, gas)
            }
            BackendKind::Lanes => LanesBackend::eddy_viscosity_field(model, u, met, out, valid, gas),
            BackendKind::Fused => FusedBackend::eddy_viscosity_field(model, u, met, out, valid, gas),
        }
    }

    /// Accumulates the full stage RHS `L(U)` over `region`: the three
    /// directional WENO fluxes then the viscous/LES flux, in the fixed
    /// per-cell operation order every execution path shares (see
    /// [`crate::driver`]'s partition-invariance argument). The Fused backend
    /// routes this through its IR interpreter in RHS-materializing mode
    /// ([`fused::accumulate_rhs_ir`]) — the task-graph paths own the update,
    /// so the RK-axpy fusion is inert there and only the flux pipeline of
    /// the program runs.
    #[allow(clippy::too_many_arguments)]
    pub fn accumulate_rhs(
        self,
        u: &impl FabView,
        met: &FArrayBox,
        rhs: &mut FArrayBox,
        region: IndexBox,
        gas: &PerfectGas,
        variant: WenoVariant,
        recon: Reconstruction,
        sgs: Option<&Smagorinsky>,
    ) {
        match self {
            BackendKind::Scalar | BackendKind::Lanes => {
                for dir in 0..3 {
                    self.weno_flux_recon(u, met, rhs, region, dir, gas, variant, recon);
                }
                self.viscous_flux_les(u, met, rhs, region, gas, sgs);
            }
            BackendKind::Fused => {
                fused::accumulate_rhs_ir(u, met, rhs, region, gas, variant, recon, sgs);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_labels() {
        for k in BackendKind::ALL {
            let name = match k {
                BackendKind::Scalar => "scalar",
                BackendKind::Lanes => "lanes",
                BackendKind::Fused => "fused",
            };
            assert_eq!(BackendKind::parse(name), Some(k));
            assert_eq!(BackendKind::parse(&name.to_uppercase()), Some(k));
        }
        assert_eq!(BackendKind::parse("cuda"), None);
    }

    #[test]
    fn default_is_the_bitwise_reference() {
        assert_eq!(BackendKind::default(), BackendKind::Scalar);
    }
}
