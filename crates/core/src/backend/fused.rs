//! The fused kernel-IR backend: a GPU-shaped per-tile op DAG with
//! flux-difference + RK-axpy fusion, executed by an interpreter.
//!
//! The paper's port pays a heavy DRAM tax for kernel modularity: §IV-B moves
//! every stencil loop into a dedicated `ParallelFor` kernel communicating
//! through *global-memory scratch arrays*, so the stage RHS round-trips HBM
//! between the flux kernels and the RK update. Codegen-style CFD frameworks
//! (the FluidLoom vein) recover that traffic by *fusing* the chain: one
//! launched kernel per tile keeps the RHS tile in registers/cache from first
//! flux to final axpy. This module reproduces that transformation as data:
//!
//! * [`TileOp`] — the op vocabulary (zero / stencil flux / axpy), each
//!   reading and writing named buffers ([`BufRef`]).
//! * [`KernelIr::rk_stage`] — the *unfused* stage program, one op per
//!   launched kernel, exactly the sequence the scalar driver runs.
//! * [`KernelIr::fuse`] — the fusion pass. Ops whose writes stay
//!   tile-private (the RHS scratch tile, the `dU` tile) fuse into one
//!   per-tile group; [`TileOp::StateAxpy`] is a *fusion barrier* — the state
//!   it writes is stencil-read by neighbouring tiles' flux windows, so it is
//!   split into a second streaming phase ([`FusedProgram::epilogue`]).
//! * [`execute_tile`] / [`run_epilogue_patch`] — the interpreter. Stencil
//!   ops run the [`LanesBackend`] lane kernels over the tile; the fused
//!   `dU ← a·dU + dt·rhs` consumes the scratch tile while it is still
//!   cache-hot.
//!
//! # Bitwise identity with Scalar
//!
//! Fusion changes *when* and *where* values are computed, never the
//! arithmetic: every valid cell lies in exactly one tile, flux ops per tile
//! are the lane kernels (bitwise-equal to scalar by `backend::lanes`'s
//! argument), and the fused axpy applies the identical per-element
//! `x = a·x + dt·y` that [`FArrayBox::lincomb`] applies — element order
//! within a row is preserved and f64 arithmetic is element-local, so the
//! partition is bitwise-irrelevant. The two-phase split preserves the
//! driver's read/write schedule (all flux reads of `U` complete before any
//! write of `U`).
//!
//! # Kernel specs
//!
//! [`fused_specs`] emits per-kernel [`KernelSpec`] entries for the fused
//! program so `perfmodel::roofline` can score the backend's measured
//! throughput against its own (smaller-traffic) ceiling rather than the
//! unfused one.

use super::lanes::{rows, LanesBackend};
use super::KernelBackend;
use crate::eos::PerfectGas;
use crate::sgs::Smagorinsky;
use crate::state::NCONS;
use crate::weno::{Reconstruction, WenoVariant};
use crocco_fab::{tile_boxes, FArrayBox, FabView};
use crocco_geometry::{IndexBox, IntVect};
use crocco_perfmodel::kernelspec::{update_spec, viscous_spec, weno_spec};
use crocco_perfmodel::KernelSpec;

/// A buffer named by a tile op. The fusion pass classifies ops by whether
/// their writes stay private to the executing tile.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BufRef {
    /// The conserved state `U` (stencil-read by *other* tiles' ghost
    /// windows — writes to it cannot fuse into the tile group).
    State,
    /// The grid-metric fab (read-only).
    Metrics,
    /// The stage-RHS scratch tile (tile-private).
    RhsScratch,
    /// The low-storage RK increment `dU` (tile-private: read and written
    /// only at the owning cell).
    Du,
}

/// One op of the per-tile kernel IR. In the unfused program each op models
/// one device-kernel launch; after [`KernelIr::fuse`] the tile-private ops
/// execute back-to-back on one tile while its scratch is cache-resident.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TileOp {
    /// `rhs[tile] ← 0` (all [`NCONS`] components).
    Zero,
    /// Directional WENO convective flux difference accumulated into the
    /// scratch tile: reads [`BufRef::State`] + [`BufRef::Metrics`], writes
    /// [`BufRef::RhsScratch`].
    WenoFlux {
        /// Sweep direction (0 = x, 1 = y, 2 = z).
        dir: usize,
    },
    /// 4th-order viscous/LES flux divergence accumulated into the scratch
    /// tile (no-op for inviscid gas without an SGS model).
    ViscousFlux,
    /// Low-storage RK increment: `dU[tile] ← a·dU[tile] + dt·rhs[tile]`.
    /// Reads and writes only tile-private buffers — fusable.
    DuAxpy,
    /// `U ← U + b·dU`. Writes [`BufRef::State`], which neighbouring tiles
    /// stencil-read — the fusion barrier.
    StateAxpy,
}

impl TileOp {
    /// The buffer this op writes.
    pub fn writes(&self) -> BufRef {
        match self {
            TileOp::Zero | TileOp::WenoFlux { .. } | TileOp::ViscousFlux => BufRef::RhsScratch,
            TileOp::DuAxpy => BufRef::Du,
            TileOp::StateAxpy => BufRef::State,
        }
    }

    /// Whether the written buffer is private to the executing tile, i.e.
    /// whether the op may join a fused per-tile group.
    pub fn fusable(&self) -> bool {
        self.writes() != BufRef::State
    }

    /// Whether this is a flux-accumulation op (the subset that runs in
    /// RHS-materializing mode under the task-graph paths).
    pub fn is_flux(&self) -> bool {
        matches!(self, TileOp::WenoFlux { .. } | TileOp::ViscousFlux)
    }
}

/// The unfused per-stage op list — the IR the fusion pass consumes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KernelIr {
    /// Ops in launch order.
    pub ops: Vec<TileOp>,
}

impl KernelIr {
    /// The op sequence of one Williamson RK3 stage, exactly as the scalar
    /// driver launches it: zero the RHS, three WENO sweeps, the viscous
    /// flux (when `viscous`), the `dU` axpy, the state axpy.
    pub fn rk_stage(viscous: bool) -> KernelIr {
        let mut ops = vec![
            TileOp::Zero,
            TileOp::WenoFlux { dir: 0 },
            TileOp::WenoFlux { dir: 1 },
            TileOp::WenoFlux { dir: 2 },
        ];
        if viscous {
            ops.push(TileOp::ViscousFlux);
        }
        ops.push(TileOp::DuAxpy);
        ops.push(TileOp::StateAxpy);
        KernelIr { ops }
    }

    /// The fusion pass: greedily groups consecutive [`fusable`] ops into the
    /// per-tile program and splits everything from the first non-fusable op
    /// (in practice [`TileOp::StateAxpy`]) into the streaming epilogue that
    /// runs after *all* tiles of *all* patches finished phase one.
    ///
    /// [`fusable`]: TileOp::fusable
    pub fn fuse(&self) -> FusedProgram {
        let split = self
            .ops
            .iter()
            .position(|op| !op.fusable())
            .unwrap_or(self.ops.len());
        FusedProgram {
            tile_ops: self.ops[..split].to_vec(),
            epilogue: self.ops[split..].to_vec(),
        }
    }
}

/// Output of [`KernelIr::fuse`]: the per-tile fused group plus the
/// whole-patch epilogue.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FusedProgram {
    /// Ops executed back-to-back per tile (phase one; tile-private writes).
    pub tile_ops: Vec<TileOp>,
    /// Ops executed per patch after every tile completed (phase two).
    pub epilogue: Vec<TileOp>,
}

/// Interprets the fused per-tile group on one tile. `scratch` is the
/// persistent stage-RHS fab (valid-box sized; only the `tile` region is
/// touched), `du` the RK increment fab.
///
/// # Panics
///
/// If `ops` contains [`TileOp::StateAxpy`] — a correctly fused program
/// carries it in the epilogue only.
#[allow(clippy::too_many_arguments)]
pub fn execute_tile(
    ops: &[TileOp],
    u: &impl FabView,
    met: &FArrayBox,
    scratch: &mut FArrayBox,
    du: &mut FArrayBox,
    tile: IndexBox,
    gas: &PerfectGas,
    variant: WenoVariant,
    recon: Reconstruction,
    sgs: Option<&Smagorinsky>,
    a: f64,
    dt: f64,
) {
    for op in ops {
        match op {
            TileOp::Zero => {
                for c in 0..NCONS {
                    scratch.fill_region(tile, c, 0.0);
                }
            }
            TileOp::WenoFlux { dir } => {
                LanesBackend::weno_flux_recon(u, met, scratch, tile, *dir, gas, variant, recon);
            }
            TileOp::ViscousFlux => {
                LanesBackend::viscous_flux_les(u, met, scratch, tile, gas, sgs);
            }
            TileOp::DuAxpy => du_axpy_tile(du, scratch, tile, a, dt),
            TileOp::StateAxpy => {
                panic!("StateAxpy is a fusion barrier: it belongs to the epilogue")
            }
        }
    }
}

/// The fused `dU[tile] ← a·dU[tile] + dt·rhs[tile]`: row-wise application
/// of the identical per-element op [`FArrayBox::lincomb`] performs, so the
/// tiled result is bitwise-equal to the whole-fab axpy.
fn du_axpy_tile(du: &mut FArrayBox, scratch: &FArrayBox, tile: IndexBox, a: f64, dt: f64) {
    for c in 0..NCONS {
        for (row0, len) in rows(tile) {
            let src = scratch.row(row0, c, len);
            let dst = du.row_mut(row0, c, len);
            for (x, &y) in dst.iter_mut().zip(src) {
                *x = a * *x + dt * y;
            }
        }
    }
}

/// Runs the fused per-tile group over every tile of `valid` (phase one for
/// one patch).
#[allow(clippy::too_many_arguments)]
pub fn run_stage_patch(
    prog: &FusedProgram,
    u: &impl FabView,
    met: &FArrayBox,
    scratch: &mut FArrayBox,
    du: &mut FArrayBox,
    valid: IndexBox,
    tile: IntVect,
    gas: &PerfectGas,
    variant: WenoVariant,
    recon: Reconstruction,
    sgs: Option<&Smagorinsky>,
    a: f64,
    dt: f64,
) {
    for t in tile_boxes(valid, tile) {
        execute_tile(
            &prog.tile_ops, u, met, scratch, du, t, gas, variant, recon, sgs, a, dt,
        );
    }
}

/// Interprets the epilogue on one patch: the streaming `U ← U + b·dU`.
pub fn run_epilogue_patch(ops: &[TileOp], state: &mut FArrayBox, du: &FArrayBox, b: f64) {
    for op in ops {
        match op {
            TileOp::StateAxpy => state.lincomb(1.0, b, du),
            other => panic!("epilogue carries only StateAxpy, found {other:?}"),
        }
    }
}

/// RHS-materializing mode for the task-graph execution paths (`overlap`,
/// `dist_overlap`): those paths own zeroing, sweep scheduling, and the RK
/// update, so only the flux subset of the fused program runs, accumulating
/// into the caller's `rhs` over `region`. Bitwise-equal to the scalar
/// `accumulate_rhs` by the lane kernels' identity.
#[allow(clippy::too_many_arguments)]
pub fn accumulate_rhs_ir(
    u: &impl FabView,
    met: &FArrayBox,
    rhs: &mut FArrayBox,
    region: IndexBox,
    gas: &PerfectGas,
    variant: WenoVariant,
    recon: Reconstruction,
    sgs: Option<&Smagorinsky>,
) {
    let viscous = !(gas.mu_ref == 0.0 && sgs.is_none());
    let prog = KernelIr::rk_stage(viscous).fuse();
    for op in prog.tile_ops.iter().filter(|op| op.is_flux()) {
        match op {
            TileOp::WenoFlux { dir } => {
                LanesBackend::weno_flux_recon(u, met, rhs, region, *dir, gas, variant, recon);
            }
            TileOp::ViscousFlux => {
                LanesBackend::viscous_flux_les(u, met, rhs, region, gas, sgs);
            }
            _ => unreachable!(),
        }
    }
}

/// Bytes per cell of one full read+write round-trip of the stage RHS
/// through DRAM — the traffic fusion keeps tile-resident.
const RHS_ROUNDTRIP_BYTES: f64 = 2.0 * NCONS as f64 * 8.0;

/// Per-kernel specs of the fused program, for roofline scoring.
///
/// Arithmetic is unchanged by fusion; what changes is DRAM traffic. In the
/// unfused accounting each flux kernel accumulates into the global RHS fab
/// (read + write = `RHS_ROUNDTRIP_BYTES`) and the update kernel reads the
/// RHS back from DRAM. Fused, the scratch tile stays cache-resident across
/// the group, so each flux kernel and the axpy drop that round-trip (the
/// saved traffic reappears as L2 traffic, so L2/L1 bytes are unchanged).
pub fn fused_specs(viscous: bool) -> Vec<KernelSpec> {
    let fuse_name = |dir: usize| -> &'static str {
        match dir {
            0 => "WENOx(fused)",
            1 => "WENOy(fused)",
            _ => "WENOz(fused)",
        }
    };
    let mut specs = Vec::new();
    for dir in 0..3 {
        let mut s = weno_spec(dir);
        s.name = fuse_name(dir);
        s.dram_bytes_per_cell -= RHS_ROUNDTRIP_BYTES;
        s.sub_launches = 1;
        specs.push(s);
    }
    if viscous {
        let mut s = viscous_spec();
        s.name = "Viscous(fused)";
        s.dram_bytes_per_cell -= RHS_ROUNDTRIP_BYTES;
        s.sub_launches = 1;
        specs.push(s);
    }
    let mut upd = update_spec();
    upd.name = "Update(fused)";
    // The dU axpy reads the RHS from cache, not DRAM: one read (state or dU)
    // fewer per component.
    upd.dram_bytes_per_cell -= NCONS as f64 * 8.0;
    upd.sub_launches = 1;
    specs.push(upd);
    specs
}

/// The fused kernel-IR backend (see module docs).
///
/// The per-kernel trait methods have no fusion opportunity (each names a
/// single kernel), so they delegate to the bitwise-identical
/// [`LanesBackend`]; the fused program itself enters through
/// [`run_stage_patch`] (barrier driver) and [`accumulate_rhs_ir`]
/// (task-graph paths).
#[derive(Clone, Copy, Debug, Default)]
pub struct FusedBackend;

impl KernelBackend for FusedBackend {
    const NAME: &'static str = "fused";

    fn weno_flux_recon(
        u: &impl FabView,
        met: &FArrayBox,
        rhs: &mut FArrayBox,
        region: IndexBox,
        dir: usize,
        gas: &PerfectGas,
        variant: WenoVariant,
        recon: Reconstruction,
    ) {
        LanesBackend::weno_flux_recon(u, met, rhs, region, dir, gas, variant, recon);
    }

    fn viscous_flux_les(
        u: &impl FabView,
        met: &FArrayBox,
        rhs: &mut FArrayBox,
        region: IndexBox,
        gas: &PerfectGas,
        sgs: Option<&Smagorinsky>,
    ) {
        LanesBackend::viscous_flux_les(u, met, rhs, region, gas, sgs);
    }

    fn compute_dt_patch(
        u: &impl FabView,
        met: &FArrayBox,
        valid: IndexBox,
        gas: &PerfectGas,
        cfl: f64,
    ) -> f64 {
        LanesBackend::compute_dt_patch(u, met, valid, gas, cfl)
    }

    fn eddy_viscosity_field(
        model: &Smagorinsky,
        u: &impl FabView,
        met: &FArrayBox,
        out: &mut FArrayBox,
        valid: IndexBox,
        gas: &PerfectGas,
    ) {
        LanesBackend::eddy_viscosity_field(model, u, met, out, valid, gas);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels;
    use crate::metrics::{compute_metrics, generate_coords, NCOORDS, NMETRICS};
    use crate::state::{Conserved, Primitive};
    use crocco_fab::{BoxArray, DistributionMapping, MultiFab};
    use crocco_geometry::{RealVect, StretchedMapping};
    use std::sync::Arc;

    fn patch(extents: IntVect, gas: &PerfectGas) -> (MultiFab, MultiFab) {
        let bx = IndexBox::from_extents(extents[0], extents[1], extents[2]);
        let ba = Arc::new(BoxArray::new(vec![bx]));
        let dm = Arc::new(DistributionMapping::all_on_root(&ba));
        let map = StretchedMapping::new(RealVect::ZERO, RealVect::splat(1.0), 1.25, 1);
        let mut coords = MultiFab::new(ba.clone(), dm.clone(), NCOORDS, kernels::NGHOST + 2);
        generate_coords(&map, extents, &mut coords);
        let mut metrics = MultiFab::new(ba.clone(), dm.clone(), NMETRICS, kernels::NGHOST);
        compute_metrics(&coords, &mut metrics);
        let mut state = MultiFab::new(ba, dm, NCONS, kernels::NGHOST);
        let all = state.fab(0).bx();
        for p in all.cells() {
            let x = p[0] as f64 / extents[0] as f64;
            let y = p[1] as f64 / extents[1] as f64;
            let w = Primitive {
                rho: 1.0 + 0.2 * (4.0 * x).sin() * (2.0 * y).cos(),
                vel: [0.5 - 0.2 * y, 0.15 * (3.0 * x).cos(), 0.05 * y],
                p: 1.0 + 0.08 * (2.0 * x + 3.0 * y).sin(),
                t: 0.0,
            };
            let u = Conserved::from_primitive(&w, gas);
            for c in 0..NCONS {
                state.fab_mut(0).set(p, c, u.0[c]);
            }
        }
        (state, metrics)
    }

    fn bits(fab: &FArrayBox) -> Vec<u64> {
        fab.data().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn fuse_splits_at_the_state_axpy_barrier() {
        let prog = KernelIr::rk_stage(true).fuse();
        assert_eq!(
            prog.tile_ops,
            vec![
                TileOp::Zero,
                TileOp::WenoFlux { dir: 0 },
                TileOp::WenoFlux { dir: 1 },
                TileOp::WenoFlux { dir: 2 },
                TileOp::ViscousFlux,
                TileOp::DuAxpy,
            ]
        );
        assert_eq!(prog.epilogue, vec![TileOp::StateAxpy]);
        assert!(prog.tile_ops.iter().all(TileOp::fusable));
        // Inviscid stage drops exactly the viscous op.
        let inviscid = KernelIr::rk_stage(false).fuse();
        assert_eq!(inviscid.tile_ops.len(), prog.tile_ops.len() - 1);
    }

    #[test]
    fn fused_stage_matches_unfused_bitwise() {
        let gas = PerfectGas::air();
        let sgs = Smagorinsky { cs: 0.16 };
        let (state, metrics) = patch(IntVect::new(16, 8, 8), &gas);
        let valid = state.valid_box(0);
        let (a, dt, b) = (0.5, 0.013, 0.91);
        let (variant, recon) = (WenoVariant::Symbo, Reconstruction::ComponentWise);

        // A nonzero dU pattern so the a·dU term is exercised.
        let mut du_ref = FArrayBox::new(valid, NCONS);
        for p in valid.cells() {
            for c in 0..NCONS {
                du_ref.set(p, c, 0.01 * ((p[0] + 2 * p[1] - p[2]) as f64 + c as f64));
            }
        }
        let mut du_fused = FArrayBox::new(valid, NCONS);
        du_fused.copy_from(&du_ref, valid, 0, 0, NCONS);
        let all = state.fab(0).bx();
        let mut st_ref = FArrayBox::new(all, NCONS);
        st_ref.copy_from(state.fab(0), all, 0, 0, NCONS);
        let mut st_fused = FArrayBox::new(all, NCONS);
        st_fused.copy_from(state.fab(0), all, 0, 0, NCONS);

        // Unfused reference: whole-patch scalar kernels + whole-fab axpys.
        let mut rhs = FArrayBox::new(valid, NCONS);
        for dir in 0..3 {
            kernels::weno_flux_recon(
                state.fab(0), metrics.fab(0), &mut rhs, valid, dir, &gas, variant, recon,
            );
        }
        kernels::viscous_flux_les(state.fab(0), metrics.fab(0), &mut rhs, valid, &gas, Some(&sgs));
        du_ref.lincomb(a, dt, &rhs);
        st_ref.lincomb(1.0, b, &du_ref);

        // Fused: NaN-poisoned scratch proves Zero covers every tile.
        let mut scratch = FArrayBox::new(valid, NCONS);
        scratch.fill(f64::NAN);
        let prog = KernelIr::rk_stage(true).fuse();
        run_stage_patch(
            &prog, state.fab(0), metrics.fab(0), &mut scratch, &mut du_fused, valid,
            IntVect::new(1_000_000, 4, 4), &gas, variant, recon, Some(&sgs), a, dt,
        );
        run_epilogue_patch(&prog.epilogue, &mut st_fused, &du_fused, b);

        assert_eq!(bits(&du_ref), bits(&du_fused), "dU diverged");
        assert_eq!(bits(&st_ref), bits(&st_fused), "state diverged");
    }

    #[test]
    fn materializing_mode_matches_scalar_accumulation() {
        let gas = PerfectGas::nondimensional();
        let (state, metrics) = patch(IntVect::new(12, 8, 8), &gas);
        let valid = state.valid_box(0);
        let mut r_s = FArrayBox::new(valid, NCONS);
        let mut r_f = FArrayBox::new(valid, NCONS);
        for dir in 0..3 {
            kernels::weno_flux_recon(
                state.fab(0), metrics.fab(0), &mut r_s, valid, dir, &gas,
                WenoVariant::Js5, Reconstruction::ComponentWise,
            );
        }
        kernels::viscous_flux_les(state.fab(0), metrics.fab(0), &mut r_s, valid, &gas, None);
        accumulate_rhs_ir(
            state.fab(0), metrics.fab(0), &mut r_f, valid, &gas,
            WenoVariant::Js5, Reconstruction::ComponentWise, None,
        );
        assert_eq!(bits(&r_s), bits(&r_f));
    }

    #[test]
    fn fused_specs_preserve_flops_and_cut_dram() {
        let fused = fused_specs(true);
        let unfused = crocco_perfmodel::kernelspec::stage_kernels();
        assert_eq!(fused.len(), unfused.len());
        let flops = |v: &[KernelSpec]| -> f64 { v.iter().map(|k| k.flops_per_cell).sum() };
        let dram = |v: &[KernelSpec]| -> f64 { v.iter().map(|k| k.dram_bytes_per_cell).sum() };
        assert_eq!(flops(&fused), flops(&unfused), "fusion must not change arithmetic");
        assert!(dram(&fused) < dram(&unfused), "fusion must cut DRAM traffic");
        for k in &fused {
            assert!(k.name.ends_with("(fused)"), "{}", k.name);
            assert!(k.ai_dram() > 0.0);
        }
    }
}
