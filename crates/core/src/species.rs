//! Multi-species gas mixtures (the full Eq. 1/Eq. 2 thermodynamics).
//!
//! The paper's governing equations carry one continuity equation per species
//! `s` with production rate `w_s`, and a total energy
//!
//! ```text
//! E = Σ_s ρ_s c_vs T + ½ ρ uᵢuᵢ + Σ_s ρ_s h°_s        (Eq. 2)
//! ```
//!
//! with per-species specific heats `c_vs` and formation heats `h°_s` — the
//! thermodynamics CRoCCo needs for chemically-reacting hypersonic flow. The
//! DMR evaluation case is single-species, so the production solver in
//! `driver` stays on the 5-component state; this module supplies the mixture
//! layer (state layout, conversions, mixture properties) plus the reacting
//! source terms in [`crate::chemistry`], exercised by the reactor tests and
//! ready for a multi-species driver.

use serde::{Deserialize, Serialize};

/// Universal gas constant (J / mol / K).
pub const R_UNIVERSAL: f64 = 8.314_462_618;

/// One chemical species.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Species {
    /// Display name.
    pub name: String,
    /// Molar mass (kg/mol).
    pub molar_mass: f64,
    /// Specific heat at constant volume `c_vs` (J / kg / K), assumed
    /// calorically perfect per species as in Eq. 2.
    pub cv: f64,
    /// Heat of formation `h°_s` (J / kg).
    pub h_formation: f64,
}

impl Species {
    /// Specific gas constant `R_s = R_u / M_s`.
    pub fn r_gas(&self) -> f64 {
        R_UNIVERSAL / self.molar_mass
    }

    /// Specific heat at constant pressure.
    pub fn cp(&self) -> f64 {
        self.cv + self.r_gas()
    }
}

/// A mixture of calorically perfect species.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GasMixture {
    /// The species, in state-vector order.
    pub species: Vec<Species>,
}

/// The conserved state of an `ns`-species mixture:
/// `[ρ_1 … ρ_ns, ρu, ρv, ρw, E]`.
#[derive(Clone, Debug, PartialEq)]
pub struct MixtureState {
    /// Partial densities ρ_s.
    pub rho_s: Vec<f64>,
    /// Momentum ρ·u.
    pub mom: [f64; 3],
    /// Total energy per unit volume, per Eq. 2.
    pub energy: f64,
}

/// Primitive mixture quantities.
#[derive(Clone, Debug, PartialEq)]
pub struct MixturePrimitive {
    /// Partial densities.
    pub rho_s: Vec<f64>,
    /// Velocity.
    pub vel: [f64; 3],
    /// Pressure.
    pub p: f64,
    /// Temperature.
    pub t: f64,
}

impl GasMixture {
    /// A two-species dissociating toy mixture A₂ ⇌ 2A with air-like numbers:
    /// the canonical testbed for hypersonic chemistry coupling.
    pub fn dissociating_pair() -> Self {
        GasMixture {
            species: vec![
                Species {
                    name: "A2".to_string(),
                    molar_mass: 0.028,
                    cv: 743.0,
                    h_formation: 0.0,
                },
                Species {
                    name: "A".to_string(),
                    molar_mass: 0.014,
                    cv: 890.0,
                    // Dissociation energy stored as formation heat of the atom.
                    h_formation: 3.36e7,
                },
            ],
        }
    }

    /// Number of species.
    pub fn ns(&self) -> usize {
        self.species.len()
    }

    /// Number of conserved components (`ns + 4`).
    pub fn ncomp(&self) -> usize {
        self.ns() + 4
    }

    /// Total density of a state.
    pub fn density(&self, rho_s: &[f64]) -> f64 {
        rho_s.iter().sum()
    }

    /// Mixture gas constant `R = Σ Y_s R_s`.
    pub fn r_mix(&self, rho_s: &[f64]) -> f64 {
        let rho = self.density(rho_s);
        rho_s
            .iter()
            .zip(&self.species)
            .map(|(r, s)| r / rho * s.r_gas())
            .sum()
    }

    /// Mixture `c_v = Σ Y_s c_vs`.
    pub fn cv_mix(&self, rho_s: &[f64]) -> f64 {
        let rho = self.density(rho_s);
        rho_s
            .iter()
            .zip(&self.species)
            .map(|(r, s)| r / rho * s.cv)
            .sum()
    }

    /// Mixture ratio of specific heats `γ = (c_v + R)/c_v`.
    pub fn gamma_mix(&self, rho_s: &[f64]) -> f64 {
        let cv = self.cv_mix(rho_s);
        (cv + self.r_mix(rho_s)) / cv
    }

    /// Frozen speed of sound `a = √(γ R T)`.
    pub fn sound_speed(&self, rho_s: &[f64], t: f64) -> f64 {
        (self.gamma_mix(rho_s) * self.r_mix(rho_s) * t).sqrt()
    }

    /// Total energy per Eq. 2 from primitives.
    pub fn energy(&self, rho_s: &[f64], vel: [f64; 3], t: f64) -> f64 {
        let rho = self.density(rho_s);
        let thermal: f64 = rho_s
            .iter()
            .zip(&self.species)
            .map(|(r, s)| r * (s.cv * t + s.h_formation))
            .sum();
        thermal + 0.5 * rho * (vel[0] * vel[0] + vel[1] * vel[1] + vel[2] * vel[2])
    }

    /// Recovers the temperature from a conserved state by inverting Eq. 2
    /// (linear in `T` for calorically perfect species).
    pub fn temperature(&self, state: &MixtureState) -> f64 {
        let rho = self.density(&state.rho_s);
        let ke = 0.5
            * (state.mom[0] * state.mom[0]
                + state.mom[1] * state.mom[1]
                + state.mom[2] * state.mom[2])
            / rho;
        let formation: f64 = state
            .rho_s
            .iter()
            .zip(&self.species)
            .map(|(r, s)| r * s.h_formation)
            .sum();
        let rho_cv: f64 = state
            .rho_s
            .iter()
            .zip(&self.species)
            .map(|(r, s)| r * s.cv)
            .sum();
        (state.energy - ke - formation) / rho_cv
    }

    /// Full primitive recovery.
    pub fn to_primitive(&self, state: &MixtureState) -> MixturePrimitive {
        let rho = self.density(&state.rho_s);
        let vel = [
            state.mom[0] / rho,
            state.mom[1] / rho,
            state.mom[2] / rho,
        ];
        let t = self.temperature(state);
        let p = rho * self.r_mix(&state.rho_s) * t;
        MixturePrimitive {
            rho_s: state.rho_s.clone(),
            vel,
            p,
            t,
        }
    }

    /// Conserved state from primitives.
    pub fn from_primitive(&self, w: &MixturePrimitive) -> MixtureState {
        let rho = self.density(&w.rho_s);
        MixtureState {
            rho_s: w.rho_s.clone(),
            mom: [rho * w.vel[0], rho * w.vel[1], rho * w.vel[2]],
            energy: self.energy(&w.rho_s, w.vel, w.t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix() -> GasMixture {
        GasMixture::dissociating_pair()
    }

    #[test]
    fn primitive_conserved_roundtrip() {
        let m = mix();
        let w = MixturePrimitive {
            rho_s: vec![0.8, 0.2],
            vel: [500.0, -100.0, 25.0],
            p: 0.0, // recomputed
            t: 2500.0,
        };
        let u = m.from_primitive(&w);
        let w2 = m.to_primitive(&u);
        assert!((w2.t - 2500.0).abs() < 1e-8, "T = {}", w2.t);
        for d in 0..3 {
            assert!((w2.vel[d] - w.vel[d]).abs() < 1e-9);
        }
        assert!(w2.p > 0.0);
    }

    #[test]
    fn mixture_properties_interpolate_between_pure_species() {
        let m = mix();
        let pure0 = m.r_mix(&[1.0, 0.0]);
        let pure1 = m.r_mix(&[0.0, 1.0]);
        let half = m.r_mix(&[0.5, 0.5]);
        assert!((pure0 - m.species[0].r_gas()).abs() < 1e-12);
        assert!((pure1 - m.species[1].r_gas()).abs() < 1e-12);
        assert!(pure0 < half && half < pure1);
    }

    #[test]
    fn formation_heat_is_invisible_to_temperature_roundtrip() {
        // Converting A2 into A at fixed T raises E by the formation heat;
        // temperature recovery must still return the same T.
        let m = mix();
        let t = 3000.0;
        let a = m.from_primitive(&MixturePrimitive {
            rho_s: vec![1.0, 0.0],
            vel: [0.0; 3],
            p: 0.0,
            t,
        });
        let b = m.from_primitive(&MixturePrimitive {
            rho_s: vec![0.0, 1.0],
            vel: [0.0; 3],
            p: 0.0,
            t,
        });
        assert!(b.energy > a.energy, "dissociation stores energy");
        assert!((m.temperature(&a) - t).abs() < 1e-9);
        assert!((m.temperature(&b) - t).abs() < 1e-9);
    }

    #[test]
    fn sound_speed_uses_mixture_gamma() {
        let m = mix();
        let a = m.sound_speed(&[1.0, 0.0], 300.0);
        // Diatomic-like: gamma ≈ (743+297)/743 ≈ 1.4.
        let g = m.gamma_mix(&[1.0, 0.0]);
        assert!((g - 1.4).abs() < 0.01, "gamma {g}");
        assert!((a - (g * m.species[0].r_gas() * 300.0).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn dissociation_at_constant_energy_cools_the_gas() {
        // Moving mass from A2 to A at fixed total energy consumes the
        // formation heat ⇒ lower temperature (endothermic).
        let m = mix();
        let base = m.from_primitive(&MixturePrimitive {
            rho_s: vec![1.0, 0.0],
            vel: [0.0; 3],
            p: 0.0,
            t: 5000.0,
        });
        let reacted = MixtureState {
            rho_s: vec![0.9, 0.1],
            mom: base.mom,
            energy: base.energy,
        };
        assert!(m.temperature(&reacted) < 5000.0);
    }
}
