//! Plotfile and checkpoint I/O.
//!
//! AMReX supplies CRoCCo's "grid I/O" (§VII-B); this module provides the
//! equivalents the examples and long runs need:
//!
//! * [`write_plotfile`] — a self-describing dump of every level's conserved
//!   state (text header + little-endian f64 body), easy to parse from any
//!   plotting script,
//! * [`write_checkpoint`] / [`read_checkpoint`] — full simulation state
//!   (step, time, per-level grids + valid data) sufficient to restart a run
//!   bit-for-bit (verified by an integration test).
//!
//! Formats are deliberately simple and dependency-free: a `CROCCO-CHK 1`
//! text header terminated by a blank line, then raw f64 data in box order.

use crate::driver::Simulation;
use crate::state::NCONS;
use crocco_geometry::{IndexBox, IntVect};
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// A parsed checkpoint, ready to be restored into a `Simulation` (see
/// [`Simulation::from_checkpoint`]).
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// Step counter at save time.
    pub step: u32,
    /// Simulation time at save time.
    pub time: f64,
    /// Per-level box lists (coarsest first).
    pub levels: Vec<Vec<IndexBox>>,
    /// Per-level, per-box valid-region data, `NCONS` components each, in
    /// fab layout order.
    pub data: Vec<Vec<Vec<f64>>>,
}

fn write_box(w: &mut impl Write, b: IndexBox) -> io::Result<()> {
    let (lo, hi) = (b.lo(), b.hi());
    writeln!(
        w,
        "box {} {} {} {} {} {}",
        lo[0], lo[1], lo[2], hi[0], hi[1], hi[2]
    )
}

fn parse_box(line: &str) -> io::Result<IndexBox> {
    let nums: Vec<i64> = line
        .split_whitespace()
        .skip(1)
        .map(|t| t.parse().map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e)))
        .collect::<Result<_, _>>()?;
    if nums.len() != 6 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad box line"));
    }
    Ok(IndexBox::new(
        IntVect::new(nums[0], nums[1], nums[2]),
        IntVect::new(nums[3], nums[4], nums[5]),
    ))
}

/// Writes every level's conserved state (valid regions) to `path`.
pub fn write_plotfile(sim: &Simulation, path: impl AsRef<Path>) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "CROCCO-PLT 1")?;
    writeln!(w, "time {}", sim.time())?;
    writeln!(w, "step {}", sim.step_count())?;
    writeln!(w, "ncomp {NCONS}")?;
    writeln!(w, "nlevels {}", sim.nlevels())?;
    for l in 0..sim.nlevels() {
        let state = &sim.level(l).state;
        writeln!(w, "level {l} nboxes {}", state.nfabs())?;
        for i in 0..state.nfabs() {
            write_box(&mut w, state.valid_box(i))?;
        }
    }
    writeln!(w)?;
    for l in 0..sim.nlevels() {
        let state = &sim.level(l).state;
        for i in 0..state.nfabs() {
            let valid = state.valid_box(i);
            for c in 0..NCONS {
                for p in valid.cells() {
                    w.write_all(&state.fab(i).get(p, c).to_le_bytes())?;
                }
            }
        }
    }
    w.flush()
}

/// Writes a restartable checkpoint.
pub fn write_checkpoint(sim: &Simulation, path: impl AsRef<Path>) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "CROCCO-CHK 1")?;
    writeln!(w, "step {}", sim.step_count())?;
    writeln!(w, "time {}", sim.time())?;
    writeln!(w, "nlevels {}", sim.nlevels())?;
    for l in 0..sim.nlevels() {
        let state = &sim.level(l).state;
        writeln!(w, "level {l} nboxes {}", state.nfabs())?;
        for i in 0..state.nfabs() {
            write_box(&mut w, state.valid_box(i))?;
        }
    }
    writeln!(w)?;
    for l in 0..sim.nlevels() {
        let state = &sim.level(l).state;
        for i in 0..state.nfabs() {
            let valid = state.valid_box(i);
            for c in 0..NCONS {
                for p in valid.cells() {
                    w.write_all(&state.fab(i).get(p, c).to_le_bytes())?;
                }
            }
        }
    }
    w.flush()
}

/// Reads a checkpoint written by [`write_checkpoint`].
pub fn read_checkpoint(path: impl AsRef<Path>) -> io::Result<Checkpoint> {
    let mut r = BufReader::new(File::open(path)?);
    let mut line = String::new();
    let mut read_line = |r: &mut BufReader<File>| -> io::Result<String> {
        line.clear();
        r.read_line(&mut line)?;
        Ok(line.trim_end().to_string())
    };
    let magic = read_line(&mut r)?;
    if magic != "CROCCO-CHK 1" {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad checkpoint magic {magic:?}"),
        ));
    }
    let field = |s: &str, key: &str| -> io::Result<String> {
        s.strip_prefix(key)
            .map(|v| v.trim().to_string())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, format!("expected {key}")))
    };
    let step: u32 = field(&read_line(&mut r)?, "step")?
        .parse()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    let time: f64 = field(&read_line(&mut r)?, "time")?
        .parse()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    let nlevels: usize = field(&read_line(&mut r)?, "nlevels")?
        .parse()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    let mut levels = Vec::with_capacity(nlevels);
    for _ in 0..nlevels {
        let header = read_line(&mut r)?;
        let nboxes: usize = header
            .split_whitespace()
            .last()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad level header"))?;
        let mut boxes = Vec::with_capacity(nboxes);
        for _ in 0..nboxes {
            boxes.push(parse_box(&read_line(&mut r)?)?);
        }
        levels.push(boxes);
    }
    // Blank separator.
    let _ = read_line(&mut r)?;
    // Body.
    let mut data = Vec::with_capacity(nlevels);
    for boxes in &levels {
        let mut level_data = Vec::with_capacity(boxes.len());
        for b in boxes {
            let n = b.num_points() as usize * NCONS;
            let mut buf = vec![0u8; n * 8];
            r.read_exact(&mut buf)?;
            let vals: Vec<f64> = buf
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                .collect();
            level_data.push(vals);
        }
        data.push(level_data);
    }
    Ok(Checkpoint {
        step,
        time,
        levels,
        data,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CodeVersion, SolverConfig};
    use crate::problems::ProblemKind;

    fn sim() -> Simulation {
        let cfg = SolverConfig::builder()
            .problem(ProblemKind::SodX)
            .extents(32, 4, 4)
            .version(CodeVersion::V1_1)
            .build();
        let mut s = Simulation::new(cfg);
        s.advance_steps(2);
        s
    }

    #[test]
    fn checkpoint_roundtrip_preserves_everything() {
        let s = sim();
        let path = std::env::temp_dir().join("crocco_chk_roundtrip.chk");
        write_checkpoint(&s, &path).unwrap();
        let chk = read_checkpoint(&path).unwrap();
        assert_eq!(chk.step, 2);
        assert_eq!(chk.time, s.time());
        assert_eq!(chk.levels.len(), 1);
        let state = &s.level(0).state;
        assert_eq!(chk.levels[0].len(), state.nfabs());
        // Spot-check data values against the live state.
        for (i, vals) in chk.data[0].iter().enumerate() {
            let valid = state.valid_box(i);
            let mut it = vals.iter();
            for c in 0..NCONS {
                for p in valid.cells() {
                    assert_eq!(*it.next().unwrap(), state.fab(i).get(p, c));
                }
            }
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn plotfile_writes_parseable_header() {
        let s = sim();
        let path = std::env::temp_dir().join("crocco_plt_header.plt");
        write_plotfile(&s, &path).unwrap();
        let content = std::fs::read(&path).unwrap();
        let text = String::from_utf8_lossy(&content[..200]);
        assert!(text.starts_with("CROCCO-PLT 1"));
        assert!(text.contains("ncomp 5"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn corrupt_magic_is_rejected() {
        let path = std::env::temp_dir().join("crocco_chk_bad.chk");
        std::fs::write(&path, b"NOT-A-CHECKPOINT\n").unwrap();
        assert!(read_checkpoint(&path).is_err());
        std::fs::remove_file(path).ok();
    }
}
