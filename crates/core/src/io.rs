//! Plotfile and checkpoint I/O.
//!
//! AMReX supplies CRoCCo's "grid I/O" (§VII-B); this module provides the
//! equivalents the examples and long runs need:
//!
//! * [`write_plotfile`] — a self-describing dump of every level's conserved
//!   state (text header + little-endian f64 body), easy to parse from any
//!   plotting script,
//! * [`write_checkpoint`] / [`read_checkpoint`] — full simulation state
//!   (step, time, per-level grids + valid data) sufficient to restart a run
//!   bit-for-bit (verified by an integration test).
//!
//! Formats are deliberately simple and dependency-free: a `CROCCO-CHK 2`
//! text header terminated by a blank line, then raw f64 data in box order,
//! sealed by a whole-file CRC-32 trailer (`\ncrc xxxxxxxx\n`) so truncated
//! or bit-flipped checkpoints are rejected with a descriptive error instead
//! of restoring garbage (the chaos runtime's recovery path rolls back to
//! these snapshots, so their integrity is part of the failure model —
//! DESIGN.md §4g). Legacy `CROCCO-CHK 1` files (no trailer) still parse.
//!
//! The serialization also has a byte-level entry point
//! ([`write_checkpoint_bytes`] / [`parse_checkpoint`]): the chaos stepping
//! loop keeps its periodic recovery checkpoints in memory, rank-local,
//! without touching the filesystem.

use crate::driver::Simulation;
use crate::state::NCONS;
use crocco_geometry::{IndexBox, IntVect};
use crocco_runtime::chaos::crc32;
use std::fs::File;
use std::io::{self, BufRead, BufWriter, Cursor, Read, Write};
use std::path::Path;

/// Byte length of the v2 CRC trailer: `"\ncrc "` + 8 hex digits + `"\n"`.
pub(crate) const CRC_TRAILER_LEN: usize = 14;

/// Validates a CRC-sealed byte stream (see [`seal_checkpoint`]) and returns
/// the payload in front of the trailer. Shared by the v2 checkpoint parser
/// and the durable-spill manifest (`core::durable`).
pub(crate) fn verify_sealed(bytes: &[u8]) -> io::Result<&[u8]> {
    if bytes.len() < CRC_TRAILER_LEN {
        return Err(bad_data("sealed object truncated: missing CRC trailer"));
    }
    let (prefix, trailer) = bytes.split_at(bytes.len() - CRC_TRAILER_LEN);
    let stored = trailer
        .strip_prefix(b"\ncrc ")
        .and_then(|t| t.strip_suffix(b"\n"))
        .and_then(|hex| std::str::from_utf8(hex).ok())
        .and_then(|hex| u32::from_str_radix(hex, 16).ok())
        .ok_or_else(|| bad_data("sealed object truncated or malformed: bad CRC trailer"))?;
    let actual = crc32(prefix);
    if actual != stored {
        return Err(bad_data(format!(
            "sealed object corrupt: CRC mismatch (stored {stored:08x}, computed {actual:08x})"
        )));
    }
    Ok(prefix)
}

/// A parsed checkpoint, ready to be restored into a `Simulation` (see
/// [`Simulation::from_checkpoint`]).
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// Step counter at save time.
    pub step: u32,
    /// Simulation time at save time.
    pub time: f64,
    /// Per-level box lists (coarsest first).
    pub levels: Vec<Vec<IndexBox>>,
    /// Per-level, per-box valid-region data, `NCONS` components each, in
    /// fab layout order.
    pub data: Vec<Vec<Vec<f64>>>,
}

fn write_box(w: &mut impl Write, b: IndexBox) -> io::Result<()> {
    let (lo, hi) = (b.lo(), b.hi());
    writeln!(
        w,
        "box {} {} {} {} {} {}",
        lo[0], lo[1], lo[2], hi[0], hi[1], hi[2]
    )
}

fn parse_box(line: &str) -> io::Result<IndexBox> {
    let nums: Vec<i64> = line
        .split_whitespace()
        .skip(1)
        .map(|t| t.parse().map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e)))
        .collect::<Result<_, _>>()?;
    if nums.len() != 6 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad box line"));
    }
    // Bound coordinates so box arithmetic downstream (`hi - lo + 1`, point
    // counts) cannot overflow on adversarial input. Real grids are many
    // orders of magnitude below this.
    const COORD_BOUND: i64 = 1 << 40;
    if nums.iter().any(|&c| c.abs() > COORD_BOUND) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("box coordinate out of range (|c| > 2^40): {line:?}"),
        ));
    }
    Ok(IndexBox::new(
        IntVect::new(nums[0], nums[1], nums[2]),
        IntVect::new(nums[3], nums[4], nums[5]),
    ))
}

/// Writes every level's conserved state (valid regions) to `path`.
pub fn write_plotfile(sim: &Simulation, path: impl AsRef<Path>) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "CROCCO-PLT 1")?;
    writeln!(w, "time {}", sim.time())?;
    writeln!(w, "step {}", sim.step_count())?;
    writeln!(w, "ncomp {NCONS}")?;
    writeln!(w, "nlevels {}", sim.nlevels())?;
    for l in 0..sim.nlevels() {
        let state = &sim.level(l).state;
        writeln!(w, "level {l} nboxes {}", state.nfabs())?;
        for i in 0..state.nfabs() {
            write_box(&mut w, state.valid_box(i))?;
        }
    }
    writeln!(w)?;
    for l in 0..sim.nlevels() {
        let state = &sim.level(l).state;
        for i in 0..state.nfabs() {
            let valid = state.valid_box(i);
            for c in 0..NCONS {
                for p in valid.cells() {
                    w.write_all(&state.fab(i).get(p, c).to_le_bytes())?;
                }
            }
        }
    }
    w.flush()
}

/// Serializes the checkpoint *header* — magic line, step/time counters, and
/// per-level grid metadata through the blank separator line. The header is a
/// pure function of replicated metadata, so under owned-data distribution
/// every rank produces identical header bytes locally.
pub(crate) fn checkpoint_header(sim: &Simulation) -> Vec<u8> {
    let mut w: Vec<u8> = Vec::new();
    // Writing to a Vec cannot fail.
    writeln!(w, "CROCCO-CHK 2").unwrap();
    writeln!(w, "step {}", sim.step_count()).unwrap();
    writeln!(w, "time {}", sim.time()).unwrap();
    writeln!(w, "nlevels {}", sim.nlevels()).unwrap();
    for l in 0..sim.nlevels() {
        let state = &sim.level(l).state;
        writeln!(w, "level {l} nboxes {}", state.nfabs()).unwrap();
        for i in 0..state.nfabs() {
            write_box(&mut w, state.valid_box(i)).unwrap();
        }
    }
    writeln!(w).unwrap();
    w
}

/// Serializes one patch's checkpoint body: component-major little-endian f64
/// over the valid cells of fab `i` — the unit the distributed checkpoint
/// gather ships from each patch's owner. Panics if the patch has no storage
/// (an unowned placeholder).
pub(crate) fn patch_body_bytes(state: &crocco_fab::MultiFab, i: usize) -> Vec<u8> {
    let valid = state.valid_box(i);
    let mut w = Vec::with_capacity(valid.num_points() as usize * NCONS * 8);
    for c in 0..NCONS {
        for p in valid.cells() {
            w.extend_from_slice(&state.fab(i).get(p, c).to_le_bytes());
        }
    }
    w
}

/// Seals assembled checkpoint bytes (header + bodies) with the whole-file
/// CRC-32 trailer, completing the v2 format.
pub(crate) fn seal_checkpoint(mut w: Vec<u8>) -> Vec<u8> {
    let crc = crc32(&w);
    write!(w, "\ncrc {crc:08x}\n").unwrap();
    debug_assert!(w.ends_with(b"\n") && w.len() > CRC_TRAILER_LEN);
    w
}

/// Serializes a restartable checkpoint to bytes: `CROCCO-CHK 2` header,
/// little-endian f64 body, and a whole-file CRC-32 trailer.
///
/// The chaos recovery loop calls this directly to keep its periodic
/// snapshots in memory; [`write_checkpoint`] is the file-backed wrapper.
/// Requires every patch allocated (replicated data); the owned-data path
/// assembles the identical bytes from `checkpoint_header` plus gathered
/// `patch_body_bytes` instead.
pub fn write_checkpoint_bytes(sim: &Simulation) -> Vec<u8> {
    let mut w = checkpoint_header(sim);
    for l in 0..sim.nlevels() {
        let state = &sim.level(l).state;
        for i in 0..state.nfabs() {
            w.extend_from_slice(&patch_body_bytes(state, i));
        }
    }
    seal_checkpoint(w)
}

/// Writes a restartable checkpoint.
pub fn write_checkpoint(sim: &Simulation, path: impl AsRef<Path>) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(&write_checkpoint_bytes(sim))?;
    w.flush()
}

fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Parses checkpoint bytes produced by [`write_checkpoint_bytes`].
///
/// Version 2 files are verified against their CRC-32 trailer first, so any
/// truncation or bit flip anywhere in the file is rejected with a
/// descriptive [`io::ErrorKind::InvalidData`] error. Legacy `CROCCO-CHK 1`
/// files (no trailer) are still accepted; unknown versions are rejected.
pub fn parse_checkpoint(bytes: &[u8]) -> io::Result<Checkpoint> {
    const MAGIC_V1: &[u8] = b"CROCCO-CHK 1\n";
    const MAGIC_V2: &[u8] = b"CROCCO-CHK 2\n";
    let payload = if bytes.starts_with(MAGIC_V2) {
        verify_sealed(bytes).map_err(|e| bad_data(format!("checkpoint {e}")))?
    } else if bytes.starts_with(MAGIC_V1) {
        // Legacy format: no integrity trailer, parse as-is.
        bytes
    } else {
        let first = bytes.split(|&b| b == b'\n').next().unwrap_or(&[]);
        return Err(bad_data(format!(
            "bad checkpoint magic {:?} (expected CROCCO-CHK 1 or 2)",
            String::from_utf8_lossy(first)
        )));
    };

    let mut r = Cursor::new(payload);
    let mut line = String::new();
    let mut read_line = |r: &mut Cursor<&[u8]>| -> io::Result<String> {
        line.clear();
        r.read_line(&mut line)?;
        Ok(line.trim_end().to_string())
    };
    let _magic = read_line(&mut r)?;
    let field = |s: &str, key: &str| -> io::Result<String> {
        s.strip_prefix(key)
            .map(|v| v.trim().to_string())
            .ok_or_else(|| bad_data(format!("expected {key}")))
    };
    let step: u32 = field(&read_line(&mut r)?, "step")?
        .parse()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    let time: f64 = field(&read_line(&mut r)?, "time")?
        .parse()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    let nlevels: usize = field(&read_line(&mut r)?, "nlevels")?
        .parse()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    // Adversarial-input guards (the v1 path has no CRC, so every declared
    // count must be bounded by the bytes actually present *before* any
    // allocation sized from it): a level or box header needs at least one
    // line (≥ 2 bytes) of payload each, and a box body needs 8 bytes per
    // value — huge declared counts on a short file are rejected up front
    // instead of attempting a giant allocation or panicking on a slice.
    let remaining = |r: &Cursor<&[u8]>| payload.len().saturating_sub(r.position() as usize);
    if nlevels > remaining(&r) / 2 {
        return Err(bad_data(format!(
            "checkpoint declares {nlevels} levels but only {} bytes remain",
            remaining(&r)
        )));
    }
    let mut levels = Vec::with_capacity(nlevels);
    for _ in 0..nlevels {
        let header = read_line(&mut r)?;
        let nboxes: usize = header
            .split_whitespace()
            .last()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| bad_data("bad level header"))?;
        if nboxes > remaining(&r) / 2 {
            return Err(bad_data(format!(
                "checkpoint declares {nboxes} boxes but only {} bytes remain",
                remaining(&r)
            )));
        }
        let mut boxes = Vec::with_capacity(nboxes);
        for _ in 0..nboxes {
            boxes.push(parse_box(&read_line(&mut r)?)?);
        }
        levels.push(boxes);
    }
    // Blank separator.
    let _ = read_line(&mut r)?;
    // Body.
    let mut data = Vec::with_capacity(nlevels);
    for boxes in &levels {
        let mut level_data = Vec::with_capacity(boxes.len());
        for b in boxes {
            let n = (b.num_points() as usize)
                .checked_mul(NCONS)
                .and_then(|n| n.checked_mul(8))
                .filter(|&need| need <= remaining(&r))
                .ok_or_else(|| {
                    bad_data(format!(
                        "checkpoint truncated: box {b:?} declares {} values but only {} body \
                         bytes remain",
                        (b.num_points() as usize).saturating_mul(NCONS),
                        remaining(&r)
                    ))
                })?;
            let mut buf = vec![0u8; n];
            r.read_exact(&mut buf)
                .map_err(|_| bad_data("checkpoint truncated: body shorter than grid metadata"))?;
            let vals: Vec<f64> = buf
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                .collect();
            level_data.push(vals);
        }
        data.push(level_data);
    }
    Ok(Checkpoint {
        step,
        time,
        levels,
        data,
    })
}

/// Reads a checkpoint written by [`write_checkpoint`].
pub fn read_checkpoint(path: impl AsRef<Path>) -> io::Result<Checkpoint> {
    parse_checkpoint(&std::fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CodeVersion, SolverConfig};
    use crate::problems::ProblemKind;

    fn sim() -> Simulation {
        let cfg = SolverConfig::builder()
            .problem(ProblemKind::SodX)
            .extents(32, 4, 4)
            .version(CodeVersion::V1_1)
            .build();
        let mut s = Simulation::new(cfg);
        s.advance_steps(2);
        s
    }

    #[test]
    fn checkpoint_roundtrip_preserves_everything() {
        let s = sim();
        let path = std::env::temp_dir().join("crocco_chk_roundtrip.chk");
        write_checkpoint(&s, &path).unwrap();
        let chk = read_checkpoint(&path).unwrap();
        assert_eq!(chk.step, 2);
        assert_eq!(chk.time, s.time());
        assert_eq!(chk.levels.len(), 1);
        let state = &s.level(0).state;
        assert_eq!(chk.levels[0].len(), state.nfabs());
        // Spot-check data values against the live state.
        for (i, vals) in chk.data[0].iter().enumerate() {
            let valid = state.valid_box(i);
            let mut it = vals.iter();
            for c in 0..NCONS {
                for p in valid.cells() {
                    assert_eq!(*it.next().unwrap(), state.fab(i).get(p, c));
                }
            }
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn plotfile_writes_parseable_header() {
        let s = sim();
        let path = std::env::temp_dir().join("crocco_plt_header.plt");
        write_plotfile(&s, &path).unwrap();
        let content = std::fs::read(&path).unwrap();
        let text = String::from_utf8_lossy(&content[..200]);
        assert!(text.starts_with("CROCCO-PLT 1"));
        assert!(text.contains("ncomp 5"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn corrupt_magic_is_rejected() {
        let path = std::env::temp_dir().join("crocco_chk_bad.chk");
        std::fs::write(&path, b"NOT-A-CHECKPOINT\n").unwrap();
        let err = read_checkpoint(&path).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
        std::fs::remove_file(path).ok();
    }

    /// The corruption matrix the chaos issue asks for: every class of damage
    /// (truncation anywhere, single bit flips in header / body / trailer,
    /// unknown version) must be rejected with a descriptive error, never
    /// parsed into garbage state.
    #[test]
    fn corruption_matrix_is_rejected_with_descriptive_errors() {
        let bytes = write_checkpoint_bytes(&sim());
        assert!(parse_checkpoint(&bytes).is_ok(), "pristine bytes must parse");

        let header_end = bytes
            .windows(2)
            .position(|w| w == b"\n\n")
            .expect("header/body separator")
            + 2;
        let body_len = bytes.len() - header_end - CRC_TRAILER_LEN;
        assert!(body_len > 0);

        // Truncations: mid-header, mid-body, partial trailer, empty file.
        for cut in [
            5,
            header_end - 1,
            header_end + body_len / 2,
            bytes.len() - 3,
            0,
        ] {
            assert!(
                parse_checkpoint(&bytes[..cut]).is_err(),
                "truncation at {cut} must be rejected"
            );
        }

        // Single bit flips: header text, first/middle/last body byte, CRC
        // trailer digits. Every one changes the whole-file CRC.
        for pos in [
            2,                            // magic line
            header_end / 2,               // grid metadata
            header_end,                   // first body byte
            header_end + body_len / 2,    // mid body
            header_end + body_len - 1,    // last body byte
            bytes.len() - 4,              // crc hex digit
        ] {
            for bit in [0, 3, 7] {
                let mut bad = bytes.clone();
                bad[pos] ^= 1 << bit;
                let err = parse_checkpoint(&bad).expect_err("bit flip must be rejected");
                assert_eq!(err.kind(), io::ErrorKind::InvalidData);
            }
        }

        // Unknown future version.
        let mut v9 = bytes.clone();
        v9[11] = b'9'; // "CROCCO-CHK 2" -> "CROCCO-CHK 9"
        let err = parse_checkpoint(&v9).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
    }

    #[test]
    fn legacy_v1_checkpoints_without_trailer_still_parse() {
        let s = sim();
        let v2 = write_checkpoint_bytes(&s);
        // A v1 file is the same layout minus the CRC trailer, with the old
        // version number in the magic line.
        let mut v1 = v2[..v2.len() - CRC_TRAILER_LEN].to_vec();
        v1[11] = b'1';
        let chk = parse_checkpoint(&v1).expect("legacy format must parse");
        assert_eq!(chk.step, 2);
        assert_eq!(chk.time, s.time());
    }

    fn pristine_bytes() -> &'static [u8] {
        use std::sync::OnceLock;
        static PRISTINE: OnceLock<Vec<u8>> = OnceLock::new();
        PRISTINE.get_or_init(|| write_checkpoint_bytes(&sim()))
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(512))]

        /// Fuzz-style robustness proof for the parser (ISSUE 10 satellite):
        /// arbitrary byte mutations of a valid checkpoint — including
        /// version downgrades to the CRC-less v1 path, stomps over the
        /// declared counts, and truncations — must either parse or return a
        /// typed error, never panic or abort on a bad slice/allocation.
        #[test]
        fn parser_survives_random_mutations(
            edits in proptest::prelude::prop::collection::vec(
                (proptest::prelude::any::<u64>(), proptest::prelude::any::<u8>()),
                1..8usize,
            ),
            downgrade in proptest::prelude::any::<bool>(),
            do_truncate in proptest::prelude::any::<bool>(),
            cut in proptest::prelude::any::<u64>(),
        ) {
            let mut bytes = pristine_bytes().to_vec();
            if downgrade {
                // "CROCCO-CHK 2" -> "CROCCO-CHK 1": drop the trailer so the
                // mutations land on the unguarded legacy path.
                bytes[11] = b'1';
                let keep = bytes.len() - CRC_TRAILER_LEN;
                bytes.truncate(keep);
            }
            for &(pos, val) in &edits {
                let pos = (pos % bytes.len() as u64) as usize;
                bytes[pos] = val;
            }
            if do_truncate {
                let keep = (cut % (bytes.len() as u64 + 1)) as usize;
                bytes.truncate(keep);
            }
            // Must not panic; the Result itself is unconstrained.
            let _ = parse_checkpoint(&bytes);
        }
    }

    #[test]
    fn declared_counts_beyond_buffer_are_rejected_descriptively() {
        // A v1 header (no CRC to save it) claiming a huge box on a tiny
        // body: the parser must refuse before sizing any allocation from
        // the declared count.
        let adversarial = b"CROCCO-CHK 1\nstep 0\ntime 0\nnlevels 1\nlevel 0 nboxes 1\nbox 0 0 0 9999999 9999999 9999999\n\nshort".to_vec();
        let err = parse_checkpoint(&adversarial).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("remain"), "{err}");

        // Huge declared level/box *counts* with no matching metadata.
        let many_levels = b"CROCCO-CHK 1\nstep 0\ntime 0\nnlevels 99999999\n".to_vec();
        let err = parse_checkpoint(&many_levels).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // Coordinates outside the arithmetic-safe range.
        let huge_coords =
            b"CROCCO-CHK 1\nstep 0\ntime 0\nnlevels 1\nlevel 0 nboxes 1\nbox -9223372036854775807 0 0 9223372036854775807 0 0\n\n".to_vec();
        let err = parse_checkpoint(&huge_coords).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn byte_and_file_roundtrips_agree() {
        let s = sim();
        let from_bytes = parse_checkpoint(&write_checkpoint_bytes(&s)).unwrap();
        let path = std::env::temp_dir().join("crocco_chk_agree.chk");
        write_checkpoint(&s, &path).unwrap();
        let from_file = read_checkpoint(&path).unwrap();
        std::fs::remove_file(path).ok();
        assert_eq!(from_bytes.step, from_file.step);
        assert_eq!(from_bytes.time, from_file.time);
        assert_eq!(from_bytes.levels.len(), from_file.levels.len());
        assert_eq!(from_bytes.data, from_file.data);
    }
}
