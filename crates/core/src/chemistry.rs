//! Finite-rate chemistry: the production terms `w_s` of Eq. 1.
//!
//! Law-of-mass-action kinetics with Arrhenius rate coefficients, plus a
//! constant-volume reactor integrator (built on the solver's own low-storage
//! schemes) that demonstrates the coupling CRoCCo uses for
//! "chemically-reacting hypersonic flows". Total mass and total energy are
//! conserved identically by construction — the formation enthalpies in Eq. 2
//! turn reaction progress into temperature change without an explicit energy
//! source term.

use crate::integrators::TimeScheme;
use crate::species::{GasMixture, MixtureState};
use serde::{Deserialize, Serialize};

/// Arrhenius rate coefficient `k(T) = A · T^β · exp(−T_a / T)`.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Arrhenius {
    /// Pre-exponential factor (mol, m³, s units as implied by the order).
    pub a: f64,
    /// Temperature exponent β.
    pub beta: f64,
    /// Activation temperature `T_a = E_a / R_u` (K).
    pub t_activation: f64,
}

impl Arrhenius {
    /// Evaluates `k(T)`.
    pub fn rate(&self, t: f64) -> f64 {
        self.a * t.powf(self.beta) * (-self.t_activation / t).exp()
    }
}

/// One elementary reaction with integer stoichiometry.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Reaction {
    /// Reactant stoichiometric coefficients ν′ per species.
    pub nu_reactants: Vec<u32>,
    /// Product stoichiometric coefficients ν″ per species.
    pub nu_products: Vec<u32>,
    /// Forward rate.
    pub forward: Arrhenius,
    /// Optional reverse rate (None = irreversible).
    pub reverse: Option<Arrhenius>,
}

/// A reaction mechanism over a mixture.
#[derive(Clone, Debug)]
pub struct Mechanism {
    /// The mixture the mechanism acts on.
    pub mixture: GasMixture,
    /// Elementary reactions.
    pub reactions: Vec<Reaction>,
}

impl Mechanism {
    /// The toy dissociation mechanism `A₂ ⇌ 2A` on
    /// [`GasMixture::dissociating_pair`], with rates scaled so interesting
    /// progress happens in microseconds at ~5000 K.
    pub fn dissociation() -> Self {
        Mechanism {
            mixture: GasMixture::dissociating_pair(),
            reactions: vec![Reaction {
                nu_reactants: vec![1, 0],
                nu_products: vec![0, 2],
                forward: Arrhenius {
                    a: 5.0e9,
                    beta: 0.0,
                    t_activation: 5.0e4,
                },
                reverse: Some(Arrhenius {
                    a: 5.0e2,
                    beta: 0.0,
                    t_activation: 0.0,
                }),
            }],
        }
    }

    /// Mass production rates `w_s` (kg/m³/s) from partial densities and
    /// temperature: law of mass action on molar concentrations
    /// `[X_s] = ρ_s / M_s`.
    pub fn production_rates(&self, rho_s: &[f64], t: f64) -> Vec<f64> {
        let ns = self.mixture.ns();
        let conc: Vec<f64> = rho_s
            .iter()
            .zip(&self.mixture.species)
            .map(|(r, s)| (r / s.molar_mass).max(0.0))
            .collect();
        let mut wdot_molar = vec![0.0; ns]; // mol/m³/s
        for rx in &self.reactions {
            let mut qf = rx.forward.rate(t);
            for (s, &nu) in rx.nu_reactants.iter().enumerate() {
                qf *= conc[s].powi(nu as i32);
            }
            let mut qr = 0.0;
            if let Some(rev) = &rx.reverse {
                qr = rev.rate(t);
                for (s, &nu) in rx.nu_products.iter().enumerate() {
                    qr *= conc[s].powi(nu as i32);
                }
            }
            let q = qf - qr;
            for ((w, &np), &nr) in wdot_molar
                .iter_mut()
                .zip(&rx.nu_products)
                .zip(&rx.nu_reactants)
            {
                *w += (np as f64 - nr as f64) * q;
            }
        }
        wdot_molar
            .iter()
            .zip(&self.mixture.species)
            .map(|(w, s)| w * s.molar_mass)
            .collect()
    }

    /// `true` if every reaction conserves mass (`Σ ν′ M = Σ ν″ M`).
    pub fn conserves_mass(&self) -> bool {
        self.reactions.iter().all(|rx| {
            let lhs: f64 = rx
                .nu_reactants
                .iter()
                .zip(&self.mixture.species)
                .map(|(&n, s)| n as f64 * s.molar_mass)
                .sum();
            let rhs: f64 = rx
                .nu_products
                .iter()
                .zip(&self.mixture.species)
                .map(|(&n, s)| n as f64 * s.molar_mass)
                .sum();
            (lhs - rhs).abs() < 1e-12
        })
    }

    /// Advances a constant-volume adiabatic reactor by `dt` using a 2N
    /// scheme: only the partial densities change; momentum and total energy
    /// are invariant (Eq. 2 absorbs the heat release), so temperature is
    /// re-derived from the state each stage.
    pub fn reactor_step(&self, state: &mut MixtureState, dt: f64, scheme: TimeScheme) {
        let ns = self.mixture.ns();
        let mut du = vec![0.0; ns];
        for s in 0..scheme.stages() {
            let t = self.mixture.temperature(state);
            let w = self.production_rates(&state.rho_s, t);
            for i in 0..ns {
                du[i] = scheme.a(s) * du[i] + dt * w[i];
                state.rho_s[i] += scheme.b(s) * du[i];
            }
        }
    }
}

/// Equilibrium constant direction helper: the net molar rate of reaction 0
/// at the given state (diagnostics for tests).
pub fn net_rate(mech: &Mechanism, rho_s: &[f64], t: f64) -> f64 {
    let w = mech.production_rates(rho_s, t);
    // Species 1 (product) production in molar units.
    w[1] / mech.mixture.species[1].molar_mass
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::species::MixturePrimitive;

    #[test]
    fn mechanism_conserves_mass_by_construction() {
        let m = Mechanism::dissociation();
        assert!(m.conserves_mass());
        // Pointwise: Σ w_s = 0 for any state.
        let w = m.production_rates(&[0.7, 0.3], 4000.0);
        assert!((w[0] + w[1]).abs() < 1e-10 * w[1].abs().max(1e-30));
    }

    #[test]
    fn hot_gas_dissociates_cold_gas_recombines() {
        let m = Mechanism::dissociation();
        // Hot, mostly molecular: net dissociation (w_A > 0).
        let w_hot = m.production_rates(&[1.0, 0.01], 6000.0);
        assert!(w_hot[1] > 0.0, "hot gas must dissociate: {w_hot:?}");
        // Cold, mostly atomic: net recombination (w_A < 0).
        let w_cold = m.production_rates(&[0.01, 1.0], 300.0);
        assert!(w_cold[1] < 0.0, "cold gas must recombine: {w_cold:?}");
    }

    #[test]
    fn reactor_conserves_mass_and_energy_and_cools() {
        let m = Mechanism::dissociation();
        let mut state = m.mixture.from_primitive(&MixturePrimitive {
            rho_s: vec![1.0, 1e-6],
            vel: [0.0; 3],
            p: 0.0,
            t: 6000.0,
        });
        let mass0 = m.mixture.density(&state.rho_s);
        let e0 = state.energy;
        let t0 = m.mixture.temperature(&state);
        for _ in 0..2000 {
            m.reactor_step(&mut state, 1e-9, TimeScheme::Rk3Williamson);
        }
        let mass1 = m.mixture.density(&state.rho_s);
        let t1 = m.mixture.temperature(&state);
        assert!(((mass1 - mass0) / mass0).abs() < 1e-12, "mass drift");
        assert_eq!(state.energy, e0, "reactor is adiabatic by construction");
        assert!(state.rho_s[1] > 1e-4, "dissociation must progress");
        assert!(t1 < t0, "endothermic dissociation must cool: {t0} -> {t1}");
        assert!(state.rho_s.iter().all(|&r| r >= 0.0));
    }

    #[test]
    fn reactor_approaches_a_steady_composition() {
        let m = Mechanism::dissociation();
        let mut state = m.mixture.from_primitive(&MixturePrimitive {
            rho_s: vec![0.5, 0.5],
            vel: [0.0; 3],
            p: 0.0,
            t: 5000.0,
        });
        let mut last_change = f64::INFINITY;
        let mut prev = state.rho_s[1];
        for _ in 0..50 {
            for _ in 0..400 {
                m.reactor_step(&mut state, 1e-9, TimeScheme::Rk3Williamson);
            }
            last_change = (state.rho_s[1] - prev).abs();
            prev = state.rho_s[1];
        }
        assert!(
            last_change < 1e-5,
            "composition still moving by {last_change}"
        );
        // At the steady state the net rate is ~zero.
        let t = m.mixture.temperature(&state);
        let q = net_rate(&m, &state.rho_s, t);
        let q0 = net_rate(&m, &[1.0, 1e-6], 6000.0);
        assert!(q.abs() < 1e-3 * q0.abs(), "net rate {q} vs initial {q0}");
    }

    #[test]
    fn arrhenius_rate_grows_with_temperature() {
        let k = Arrhenius {
            a: 1.0,
            beta: 0.0,
            t_activation: 1e4,
        };
        assert!(k.rate(2000.0) > k.rate(1000.0));
        assert!(k.rate(300.0) > 0.0);
    }
}
