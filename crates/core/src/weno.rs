//! One-dimensional WENO reconstruction machinery.
//!
//! CRoCCo reconstructs convective fluxes with a finite-difference, weighted
//! essentially non-oscillatory method; the production scheme is
//! bandwidth-optimized ("WENO-SYMBO", Martín et al. 2006), which considers a
//! symmetric set of candidate stencils around the interface and weighs them
//! by local smoothness to resolve the smallest turbulent scales on fewer
//! grid points (§II-A).
//!
//! We implement the family on the 6-point symmetric stencil
//! `f[i-2] .. f[i+3]` around the `i+½` face:
//!
//! * [`WenoVariant::Js5`] — classic upwind WENO5-JS (3 candidates, optimal
//!   weights 1/10, 6/10, 3/10); the robust shock-capturing baseline,
//! * [`WenoVariant::CentralSym6`] — 4 candidates with the max-order weights
//!   1/20, 9/20, 9/20, 1/20 that recover the 6th-order central scheme on
//!   smooth data,
//! * [`WenoVariant::Symbo`] — 4 candidates with bandwidth-optimized weights.
//!   The published Martín et al. constants are unavailable offline; we use
//!   the symmetric redistribution (0.0944, 0.4056, 0.4056, 0.0944), which
//!   preserves the defining properties (symmetry, Σ=1, reduced dissipation
//!   relative to upwind WENO). See DESIGN.md §2.

use serde::{Deserialize, Serialize};

/// How the split fluxes are reconstructed at faces.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Reconstruction {
    /// Reconstruct each conserved component independently (cheap; the
    /// default).
    ComponentWise,
    /// Project onto the Roe-averaged characteristic fields first (decouples
    /// waves; less ringing at contacts, ~2× the reconstruction cost).
    Characteristic,
}

/// WENO scheme selection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum WenoVariant {
    /// Classic 5th-order upwind WENO of Jiang & Shu.
    Js5,
    /// Symmetric 4-candidate scheme with max-order (central 6th) weights.
    CentralSym6,
    /// Symmetric 4-candidate scheme with bandwidth-optimized weights.
    Symbo,
}

/// Stencil width on each side of the face: reconstruction of face `i+½`
/// reads `f[i-2] ..= f[i+3]`, so kernels need 3 ghost cells.
pub const STENCIL_RADIUS: usize = 3;

/// Regularization constant in the nonlinear weights. Shared with the lane
/// backend (`backend::lanes`), whose weight algebra must match bitwise.
pub(crate) const EPS: f64 = 1e-6;

/// Candidate reconstructions at the `i+½` face from the window
/// `w = [f[i-2], f[i-1], f[i], f[i+1], f[i+2], f[i+3]]`.
#[inline]
fn candidates(w: &[f64; 6]) -> [f64; 4] {
    [
        (2.0 * w[0] - 7.0 * w[1] + 11.0 * w[2]) / 6.0,
        (-w[1] + 5.0 * w[2] + 2.0 * w[3]) / 6.0,
        (2.0 * w[2] + 5.0 * w[3] - w[4]) / 6.0,
        (11.0 * w[3] - 7.0 * w[4] + 2.0 * w[5]) / 6.0,
    ]
}

/// Jiang–Shu smoothness indicators for the four candidates.
#[inline]
fn smoothness(w: &[f64; 6]) -> [f64; 4] {
    let b = |a: f64, b_: f64, c: f64, lin: f64| {
        13.0 / 12.0 * (a - 2.0 * b_ + c).powi(2) + 0.25 * lin * lin
    };
    [
        b(w[0], w[1], w[2], w[0] - 4.0 * w[1] + 3.0 * w[2]),
        b(w[1], w[2], w[3], w[1] - w[3]),
        b(w[2], w[3], w[4], 3.0 * w[2] - 4.0 * w[3] + w[4]),
        b(w[3], w[4], w[5], 3.0 * w[3] - 4.0 * w[4] + w[5]),
    ]
}

/// Optimal (linear) weights of a variant. The downwind candidate weight is
/// zero for the upwind JS5 scheme.
#[inline]
pub fn linear_weights(variant: WenoVariant) -> [f64; 4] {
    match variant {
        WenoVariant::Js5 => [0.1, 0.6, 0.3, 0.0],
        WenoVariant::CentralSym6 => [0.05, 0.45, 0.45, 0.05],
        WenoVariant::Symbo => [0.0944, 0.4056, 0.4056, 0.0944],
    }
}

/// Raw α weights with the downwind limiter applied.
///
/// The symmetric schemes include a *downwind* candidate (r = 3). Martín et
/// al. limit its weight so it never dominates across a discontinuity (the
/// upwind side could otherwise look equally smooth and re-introduce
/// oscillations). We cap `α₃` by the smallest upwind α — inactive on smooth
/// data (where all α are comparable), decisive at shocks.
#[inline]
fn alphas(w: &[f64; 6], variant: WenoVariant) -> [f64; 4] {
    let is = smoothness(w);
    let d = linear_weights(variant);
    let mut alpha = [0.0; 4];
    for r in 0..4 {
        if d[r] == 0.0 {
            continue;
        }
        let denom = EPS + is[r];
        alpha[r] = d[r] / (denom * denom);
    }
    if d[3] > 0.0 {
        alpha[3] = alpha[3].min(alpha[0]).min(alpha[1]).min(alpha[2]);
    }
    alpha
}

/// Reconstructs the value at the `i+½` face from the 6-point window
/// (left-biased orientation: for the `f⁻` split flux pass the window
/// reversed).
#[inline]
pub fn reconstruct_face(w: &[f64; 6], variant: WenoVariant) -> f64 {
    let q = candidates(w);
    let alpha = alphas(w, variant);
    let sum: f64 = alpha.iter().sum();
    let mut out = 0.0;
    for r in 0..4 {
        out += alpha[r] / sum * q[r];
    }
    out
}

/// Computes the nonlinear weights (for diagnostics and property tests).
#[inline]
pub fn nonlinear_weights(w: &[f64; 6], variant: WenoVariant) -> [f64; 4] {
    let alpha = alphas(w, variant);
    let sum: f64 = alpha.iter().sum();
    let mut out = [0.0; 4];
    for r in 0..4 {
        out[r] = alpha[r] / sum;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [WenoVariant; 3] = [
        WenoVariant::Js5,
        WenoVariant::CentralSym6,
        WenoVariant::Symbo,
    ];

    /// Window sampling f at cell centers i-2..i+3 for face at x = 0.5 (i=0,
    /// unit spacing; cell k has center x = k).
    fn window(f: impl Fn(f64) -> f64) -> [f64; 6] {
        [f(-2.0), f(-1.0), f(0.0), f(1.0), f(2.0), f(3.0)]
    }

    #[test]
    fn linear_weights_sum_to_one() {
        for v in ALL {
            let d = linear_weights(v);
            assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12, "{v:?}");
        }
    }

    #[test]
    fn symmetric_variants_have_symmetric_weights() {
        for v in [WenoVariant::CentralSym6, WenoVariant::Symbo] {
            let d = linear_weights(v);
            assert_eq!(d[0], d[3], "{v:?}");
            assert_eq!(d[1], d[2], "{v:?}");
        }
    }

    #[test]
    fn constant_fields_reconstruct_exactly() {
        let w = [4.2; 6];
        for v in ALL {
            assert!((reconstruct_face(&w, v) - 4.2).abs() < 1e-13);
        }
    }

    #[test]
    fn linear_fields_reconstruct_exactly() {
        // Face value of a linear function at x=0.5.
        let w = window(|x| 3.0 * x - 1.0);
        for v in ALL {
            let got = reconstruct_face(&w, v);
            assert!((got - 0.5).abs() < 1e-11, "{v:?}: {got}");
        }
    }

    #[test]
    fn quadratics_reconstruct_cell_average_consistent_value() {
        // Each 3-point candidate is the exact 3rd-order *point value*
        // reconstruction from cell averages. Feeding point samples of a
        // quadratic, all candidates agree with the quintic finite-difference
        // flux value, and smoothness indicators are equal, so any convex
        // combination gives the same answer.
        let w = window(|x| x * x);
        let q = candidates(&w);
        for r in 1..4 {
            assert!((q[r] - q[0]).abs() < 1e-12, "candidate {r} differs");
        }
    }

    #[test]
    fn weights_are_a_partition_of_unity() {
        let w = window(|x| (x * 1.3).sin() + 0.2 * x);
        for v in ALL {
            let om = nonlinear_weights(&w, v);
            assert!((om.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            assert!(om.iter().all(|&o| (0.0..=1.0).contains(&o)));
        }
    }

    #[test]
    fn smooth_weights_approach_linear_weights() {
        // On very smooth, slowly varying data, ω_r → d_r.
        let w = window(|x| 1.0 + 1e-4 * x);
        for v in ALL {
            let om = nonlinear_weights(&w, v);
            let d = linear_weights(v);
            for r in 0..4 {
                assert!((om[r] - d[r]).abs() < 1e-3, "{v:?} r={r}: {} vs {}", om[r], d[r]);
            }
        }
    }

    #[test]
    fn eno_property_discontinuous_stencils_are_suppressed() {
        // Jump between cells i and i+1: candidates 2 and 3 straddle it; their
        // weights must collapse toward zero so no oscillation forms.
        let w = [1.0, 1.0, 1.0, 10.0, 10.0, 10.0];
        for v in ALL {
            let om = nonlinear_weights(&w, v);
            // Candidates 1 and 2 straddle the jump; candidate 3 is entirely
            // downwind. The downwind limiter must leave candidate 0 — the
            // smooth upwind stencil — in control.
            assert!(
                om[0] > 0.95,
                "{v:?}: upwind-smooth candidate must dominate, got {om:?}"
            );
            let f = reconstruct_face(&w, v);
            assert!(
                (0.9..=1.1).contains(&f),
                "{v:?} reconstruction {f} oscillates"
            );
        }
    }

    #[test]
    fn downwind_limiter_inactive_on_smooth_data() {
        let w = window(|x| 2.0 + 0.3 * x + 0.01 * x * x);
        for v in [WenoVariant::CentralSym6, WenoVariant::Symbo] {
            let om = nonlinear_weights(&w, v);
            let d = linear_weights(v);
            assert!(
                (om[3] - d[3]).abs() < 0.05,
                "{v:?}: limiter should not bite on smooth data, ω₃ = {}",
                om[3]
            );
        }
    }

    #[test]
    fn central_weights_reproduce_sixth_order_flux_on_smooth_data() {
        // With the max-order linear weights the blended candidates equal the
        // 6th-order central interpolant (w[0]-8w[1]+37w[2]+37w[3]-8w[4]+w[5])/60.
        let w = window(|x| (0.3 * x).cos());
        let q = candidates(&w);
        let d = linear_weights(WenoVariant::CentralSym6);
        let blended: f64 = (0..4).map(|r| d[r] * q[r]).sum();
        let central =
            (w[0] - 8.0 * w[1] + 37.0 * w[2] + 37.0 * w[3] - 8.0 * w[4] + w[5]) / 60.0;
        assert!((blended - central).abs() < 1e-13);
    }

    #[test]
    fn symbo_is_less_dissipative_than_js5_on_smooth_waves() {
        // One reconstruction step of a sine: compare the face value against
        // the exact point value. The symmetric schemes' error must be
        // smaller than upwind JS5's.
        let f = |x: f64| (1.1 * x).sin();
        let exact = f(0.5);
        let w = window(f);
        let e_js = (reconstruct_face(&w, WenoVariant::Js5) - exact).abs();
        let e_sy = (reconstruct_face(&w, WenoVariant::Symbo) - exact).abs();
        assert!(e_sy < e_js, "symbo {e_sy} vs js {e_js}");
    }
}
