//! Physical boundary conditions (the paper's custom `BC_Fill` kernel,
//! Algorithm 2 line 4).

use crate::eos::PerfectGas;
use crate::problems::{dmr, dmr_post_shock, dmr_pre_shock, ramp_inflow, ProblemKind};
use crate::state::{cons, Conserved, NCONS};
use crocco_amr::BoundaryFiller;
use crocco_fab::FabRw;
use crocco_geometry::{GridMapping, IndexBox, IntVect, ProblemDomain, RealVect};
use std::sync::Arc;

/// Per-problem physical boundary filler for one AMR level.
///
/// Holds the level's extents and mapping so ghost-cell physical positions can
/// be reconstructed for position-dependent conditions (the DMR's mixed
/// wall/post-shock bottom boundary and time-dependent top boundary).
pub struct PhysicalBc {
    problem: ProblemKind,
    gas: PerfectGas,
    /// Cells per direction at this level.
    extents: IntVect,
    mapping: Arc<dyn GridMapping>,
}

impl PhysicalBc {
    /// Creates the filler for one level.
    pub fn new(problem: ProblemKind, gas: PerfectGas, extents: IntVect) -> Self {
        PhysicalBc {
            problem,
            gas,
            extents,
            mapping: problem.mapping(),
        }
    }

    /// Physical position of cell center `p` at this level.
    fn xphys(&self, p: IntVect) -> RealVect {
        self.mapping.coords(RealVect::new(
            (p[0] as f64 + 0.5) / self.extents[0] as f64,
            (p[1] as f64 + 0.5) / self.extents[1] as f64,
            (p[2] as f64 + 0.5) / self.extents[2] as f64,
        ))
    }
}

/// Copies the conserved state from `src` into `dst` at `p`.
fn set_state(fab: &mut FabRw<'_>, p: IntVect, u: &Conserved) {
    for c in 0..NCONS {
        fab.set(p, c, u.0[c]);
    }
}

/// Zeroth-order extrapolation: ghost takes the nearest interior cell's state.
fn outflow(fab: &mut FabRw<'_>, p: IntVect, interior: IntVect) {
    for c in 0..NCONS {
        let v = fab.get(interior, c);
        fab.set(p, c, v);
    }
}

/// Reflecting slip wall across direction `dir`: mirror the interior cell and
/// negate the normal momentum.
fn slip_wall(fab: &mut FabRw<'_>, p: IntVect, mirror: IntVect, dir: usize) {
    for c in 0..NCONS {
        let mut v = fab.get(mirror, c);
        if c == cons::MX + dir {
            v = -v;
        }
        fab.set(p, c, v);
    }
}

/// Slip wall on an *inclined* surface: mirror the interior cell in
/// computational space (the grid is wall-fitted) and reflect the momentum
/// vector about the physical wall plane with unit normal `n`:
/// `m' = m − 2(m·n)n`. This is what makes a uniform stream feel the ramp.
fn slip_wall_inclined(fab: &mut FabRw<'_>, p: IntVect, mirror: IntVect, n: [f64; 3]) {
    let m = [
        fab.get(mirror, cons::MX),
        fab.get(mirror, cons::MY),
        fab.get(mirror, cons::MZ),
    ];
    let mn = m[0] * n[0] + m[1] * n[1] + m[2] * n[2];
    fab.set(p, cons::RHO, fab.get(mirror, cons::RHO));
    fab.set(p, cons::MX, m[0] - 2.0 * mn * n[0]);
    fab.set(p, cons::MY, m[1] - 2.0 * mn * n[1]);
    fab.set(p, cons::MZ, m[2] - 2.0 * mn * n[2]);
    fab.set(p, cons::ENER, fab.get(mirror, cons::ENER));
}

/// Clamps `p` to the nearest cell inside `bx` (used to find the interior
/// neighbor of a ghost cell).
fn clamp_into(p: IntVect, bx: IndexBox) -> IntVect {
    let mut q = p;
    for d in 0..3 {
        q[d] = q[d].clamp(bx.lo()[d], bx.hi()[d]);
    }
    q
}

/// Mirror image of ghost `p` across the face of `domain` it sits beyond in
/// direction `dir`.
fn mirror_across(p: IntVect, domain: IndexBox, dir: usize) -> IntVect {
    let mut q = p;
    if p[dir] < domain.lo()[dir] {
        q[dir] = 2 * domain.lo()[dir] - 1 - p[dir];
    } else {
        q[dir] = 2 * domain.hi()[dir] + 1 - p[dir];
    }
    q
}

impl BoundaryFiller for PhysicalBc {
    fn fill_view(&self, fab: &mut FabRw<'_>, _valid: IndexBox, domain: &ProblemDomain, time: f64) {
        let gbox = fab.bx();
        let dbx = domain.bx;
        for p in gbox.cells() {
            // Skip anything inside the domain (or wrapped into it) — those
            // cells belong to FillBoundary / interpolation.
            let mut outside_dirs = [false; 3];
            let mut is_outside = false;
            for d in 0..3 {
                if domain.periodic[d] {
                    continue;
                }
                if p[d] < dbx.lo()[d] || p[d] > dbx.hi()[d] {
                    outside_dirs[d] = true;
                    is_outside = true;
                }
            }
            if !is_outside {
                continue;
            }
            match self.problem {
                ProblemKind::SodX => {
                    // Outflow on both x faces.
                    outflow(fab, p, clamp_into(p, dbx));
                }
                ProblemKind::IsentropicVortex => {
                    // Fully periodic: nothing to do (defensive outflow).
                    outflow(fab, p, clamp_into(p, dbx));
                }
                ProblemKind::DoubleMach => {
                    let x = self.xphys(p);
                    if outside_dirs[0] {
                        if p[0] < dbx.lo()[0] {
                            // Left: post-shock inflow.
                            set_state(
                                fab,
                                p,
                                &Conserved::from_primitive(&dmr_post_shock(), &self.gas),
                            );
                        } else {
                            // Right: outflow.
                            outflow(fab, p, clamp_into(p, dbx));
                        }
                    } else if outside_dirs[1] {
                        if p[1] < dbx.lo()[1] {
                            // Bottom: post-shock upstream of x₀, reflecting
                            // wall downstream (the ramp surface).
                            if x[0] < dmr::X0 {
                                set_state(
                                    fab,
                                    p,
                                    &Conserved::from_primitive(&dmr_post_shock(), &self.gas),
                                );
                            } else {
                                let m = mirror_across(p, dbx, 1);
                                slip_wall(fab, p, clamp_into(m, gbox), 1);
                            }
                        } else {
                            // Top: exact shock position at this time.
                            let w = if x[0] < dmr::shock_x(x[1].min(1.0), time) {
                                dmr_post_shock()
                            } else {
                                dmr_pre_shock()
                            };
                            set_state(fab, p, &Conserved::from_primitive(&w, &self.gas));
                        }
                    }
                }
                ProblemKind::Ramp => {
                    if outside_dirs[0] && p[0] < dbx.lo()[0] {
                        set_state(
                            fab,
                            p,
                            &Conserved::from_primitive(&ramp_inflow(), &self.gas),
                        );
                    } else if outside_dirs[1] && p[1] < dbx.lo()[1] {
                        // Ramp surface: slip wall with the *local* physical
                        // wall normal — flat upstream of the corner, tilted
                        // by the ramp angle beyond it.
                        let x = self.xphys(p);
                        let ramp = crocco_geometry::RampMapping::paper_dmr();
                        let n = if x[0] <= ramp.corner_x {
                            [0.0, 1.0, 0.0]
                        } else {
                            let th = ramp.ramp_angle;
                            [-th.sin(), th.cos(), 0.0]
                        };
                        let m = mirror_across(p, dbx, 1);
                        slip_wall_inclined(fab, p, clamp_into(m, gbox), n);
                    } else {
                        outflow(fab, p, clamp_into(p, dbx));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::Primitive;
    use crocco_fab::FArrayBox;

    fn fill_interior(fab: &mut FArrayBox, valid: IndexBox, gas: &PerfectGas) {
        let w = Primitive {
            rho: 2.0,
            vel: [1.0, -0.5, 0.25],
            p: 3.0,
            t: 0.0,
        };
        let u = Conserved::from_primitive(&w, gas);
        crocco_fab::with_rw(fab, |rw| {
            for p in valid.cells() {
                set_state(rw, p, &u);
            }
        });
    }

    #[test]
    fn sod_outflow_extrapolates() {
        let gas = PerfectGas::nondimensional();
        let extents = IntVect::new(8, 4, 4);
        let domain = ProblemDomain::new(IndexBox::from_extents(8, 4, 4), [false, true, true]);
        let valid = domain.bx;
        let mut fab = FArrayBox::new(valid.grow(2), NCONS);
        fill_interior(&mut fab, valid, &gas);
        let bc = PhysicalBc::new(ProblemKind::SodX, gas, extents);
        bc.fill(&mut fab, valid, &domain, 0.0);
        // Left ghosts copy the first interior cell.
        let g = IntVect::new(-1, 2, 2);
        let i = IntVect::new(0, 2, 2);
        for c in 0..NCONS {
            assert_eq!(fab.get(g, c), fab.get(i, c), "comp {c}");
        }
        // Periodic y ghosts untouched (still zero).
        assert_eq!(fab.get(IntVect::new(2, -1, 2), cons::RHO), 0.0);
    }

    #[test]
    fn dmr_left_inflow_is_post_shock() {
        let gas = PerfectGas::nondimensional();
        let extents = IntVect::new(32, 8, 4);
        let domain = ProblemDomain::new(IndexBox::from_extents(32, 8, 4), [false, false, true]);
        let valid = domain.bx;
        let mut fab = FArrayBox::new(valid.grow(2), NCONS);
        fill_interior(&mut fab, valid, &gas);
        let bc = PhysicalBc::new(ProblemKind::DoubleMach, gas, extents);
        bc.fill(&mut fab, valid, &domain, 0.0);
        let g = IntVect::new(-1, 4, 2);
        let expect = Conserved::from_primitive(&dmr_post_shock(), &gas);
        for c in 0..NCONS {
            assert!((fab.get(g, c) - expect.0[c]).abs() < 1e-12);
        }
    }

    #[test]
    fn dmr_bottom_wall_reflects_normal_momentum() {
        let gas = PerfectGas::nondimensional();
        let extents = IntVect::new(32, 8, 4);
        let domain = ProblemDomain::new(IndexBox::from_extents(32, 8, 4), [false, false, true]);
        let valid = domain.bx;
        let mut fab = FArrayBox::new(valid.grow(2), NCONS);
        fill_interior(&mut fab, valid, &gas);
        let bc = PhysicalBc::new(ProblemKind::DoubleMach, gas, extents);
        bc.fill(&mut fab, valid, &domain, 0.0);
        // Bottom ghost beyond x0 (x = 4·(20.5/32) ≈ 2.56 > 1/6): wall.
        let g = IntVect::new(20, -1, 2);
        let m = IntVect::new(20, 0, 2);
        assert_eq!(fab.get(g, cons::RHO), fab.get(m, cons::RHO));
        assert_eq!(fab.get(g, cons::MY), -fab.get(m, cons::MY));
        assert_eq!(fab.get(g, cons::MX), fab.get(m, cons::MX));
        // Bottom ghost before x0 (x = 4·(0.5/32) = 0.0625 < 1/6): post-shock.
        let g2 = IntVect::new(0, -1, 2);
        let expect = Conserved::from_primitive(&dmr_post_shock(), &gas);
        assert!((fab.get(g2, cons::RHO) - expect.0[cons::RHO]).abs() < 1e-12);
    }

    #[test]
    fn dmr_top_boundary_tracks_the_shock_in_time() {
        let gas = PerfectGas::nondimensional();
        let extents = IntVect::new(32, 8, 4);
        let domain = ProblemDomain::new(IndexBox::from_extents(32, 8, 4), [false, false, true]);
        let valid = domain.bx;
        let bc = PhysicalBc::new(ProblemKind::DoubleMach, gas, extents);

        let probe = |t: f64| {
            let mut fab = FArrayBox::new(valid.grow(2), NCONS);
            fill_interior(&mut fab, valid, &gas);
            bc.fill(&mut fab, valid, &domain, t);
            // Count post-shock ghost cells along the top row (z = 2).
            let mut count = 0;
            for i in 0..32 {
                let g = IntVect::new(i, 8, 2);
                if (fab.get(g, cons::RHO) - 8.0).abs() < 1e-9 {
                    count += 1;
                }
            }
            count
        };
        let c0 = probe(0.0);
        let c1 = probe(0.05);
        assert!(c1 > c0, "shock must sweep right along the top: {c0} -> {c1}");
        assert!(c0 > 0, "part of the top starts post-shock");
    }

    #[test]
    fn ramp_wall_and_inflow() {
        let gas = PerfectGas::nondimensional();
        let extents = IntVect::new(32, 16, 4);
        let domain = ProblemDomain::new(IndexBox::from_extents(32, 16, 4), [false, false, true]);
        let valid = domain.bx;
        let mut fab = FArrayBox::new(valid.grow(2), NCONS);
        fill_interior(&mut fab, valid, &gas);
        let bc = PhysicalBc::new(ProblemKind::Ramp, gas, extents);
        bc.fill(&mut fab, valid, &domain, 0.0);
        // Inflow.
        let g = IntVect::new(-1, 8, 2);
        let expect = Conserved::from_primitive(&ramp_inflow(), &gas);
        assert!((fab.get(g, cons::MX) - expect.0[cons::MX]).abs() < 1e-12);
        // Flat wall upstream of the corner (x = 4*(4.5/32) = 0.56 < 1).
        let gw = IntVect::new(4, -1, 2);
        let mw = IntVect::new(4, 0, 2);
        assert_eq!(fab.get(gw, cons::MY), -fab.get(mw, cons::MY));
        assert_eq!(fab.get(gw, cons::MX), fab.get(mw, cons::MX));
        // Inclined wall beyond the corner: the wall-normal momentum flips
        // while the tangential momentum is preserved.
        let gi = IntVect::new(24, -1, 2);
        let mi = IntVect::new(24, 0, 2);
        let th = 30f64.to_radians();
        let n = [-th.sin(), th.cos(), 0.0];
        let mg = [fab.get(gi, cons::MX), fab.get(gi, cons::MY), 0.0];
        let mm = [fab.get(mi, cons::MX), fab.get(mi, cons::MY), 0.0];
        let dot = |a: [f64; 3], b: [f64; 3]| a[0] * b[0] + a[1] * b[1] + a[2] * b[2];
        assert!((dot(mg, n) + dot(mm, n)).abs() < 1e-12, "normal momentum must flip");
        let t = [th.cos(), th.sin(), 0.0];
        assert!((dot(mg, t) - dot(mm, t)).abs() < 1e-12, "tangential momentum preserved");
        // Top outflow.
        let gt = IntVect::new(16, 16, 2);
        let it = IntVect::new(16, 15, 2);
        assert_eq!(fab.get(gt, cons::RHO), fab.get(it, cons::RHO));
    }
}
