//! One-dimensional multi-species reacting flow: the species slice of Eq. 1.
//!
//! The paper's governing equations (§II-A) carry, beyond the single-gas
//! terms, exactly three species-specific pieces:
//!
//! * per-species continuity `∂ρ_s/∂t + ∂(ρ_s u_j + ρ_s v_sj)/∂x_j = w_s`,
//! * the diffusion velocities `v_sj` (Fickian closure here:
//!   `ρ_s v_sj = −ρ D ∂Y_s/∂x_j`, which sums to zero over species since
//!   `Σ Y_s = 1`),
//! * the diffusive enthalpy transport `Σ_s ρ_s v_sj h_s` in the energy
//!   equation.
//!
//! This module implements all three in a finite-volume x-pencil solver over
//! the [`GasMixture`](crate::species::GasMixture)/[`Mechanism`]
//! thermodynamics, marching with the same
//! low-storage schemes as the main code. It is the reference implementation
//! of the multi-species extension (the 3-D production driver stays
//! single-species, like the paper's DMR evaluation).

use crate::chemistry::Mechanism;
use crate::integrators::TimeScheme;
use crate::species::{MixturePrimitive, MixtureState};

/// A 1-D multi-species reacting solver on a uniform grid with reflective
/// (closed-box) walls.
pub struct Species1d {
    /// The reaction mechanism (owns the mixture).
    pub mech: Mechanism,
    /// Cells.
    pub nx: usize,
    /// Cell width.
    pub dx: f64,
    /// Fickian mass diffusivity `D` (m²/s).
    pub diffusivity: f64,
    /// Conserved state per cell: `[ρ_1 … ρ_ns, ρu, E]`.
    pub state: Vec<Vec<f64>>,
    time: f64,
}

impl Species1d {
    /// Number of conserved components (`ns + 2` in 1-D).
    pub fn ncomp(&self) -> usize {
        self.mech.mixture.ns() + 2
    }

    /// Builds the solver with an initial condition given as primitives per
    /// cell center position.
    pub fn new(
        mech: Mechanism,
        nx: usize,
        length: f64,
        diffusivity: f64,
        ic: impl Fn(f64) -> MixturePrimitive,
    ) -> Self {
        let dx = length / nx as f64;
        let mut state = Vec::with_capacity(nx);
        for i in 0..nx {
            let x = (i as f64 + 0.5) * dx;
            let w = ic(x);
            let u = mech.mixture.from_primitive(&w);
            let mut cell = u.rho_s.clone();
            cell.push(u.mom[0]);
            cell.push(u.energy);
            state.push(cell);
        }
        Species1d {
            mech,
            nx,
            dx,
            diffusivity,
            state,
            time: 0.0,
        }
    }

    /// Current simulation time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// The full [`MixtureState`] of cell `i` (1-D: v = w = 0).
    pub fn cell_state(&self, i: usize) -> MixtureState {
        let ns = self.mech.mixture.ns();
        MixtureState {
            rho_s: self.state[i][..ns].to_vec(),
            mom: [self.state[i][ns], 0.0, 0.0],
            energy: self.state[i][ns + 1],
        }
    }

    /// Primitive state of cell `i`.
    pub fn cell_primitive(&self, i: usize) -> MixturePrimitive {
        self.mech.mixture.to_primitive(&self.cell_state(i))
    }

    /// Total mass of species `s` in the box.
    pub fn species_mass(&self, s: usize) -> f64 {
        self.state.iter().map(|c| c[s]).sum::<f64>() * self.dx
    }

    /// Total energy in the box.
    pub fn total_energy(&self) -> f64 {
        let ns = self.mech.mixture.ns();
        self.state.iter().map(|c| c[ns + 1]).sum::<f64>() * self.dx
    }

    /// Stable time step under CFL + diffusion constraints.
    pub fn stable_dt(&self, cfl: f64) -> f64 {
        let mut dt = f64::INFINITY;
        for i in 0..self.nx {
            let w = self.cell_primitive(i);
            let a = self.mech.mixture.sound_speed(&w.rho_s, w.t);
            let conv = cfl * self.dx / (w.vel[0].abs() + a);
            dt = dt.min(conv);
        }
        if self.diffusivity > 0.0 {
            dt = dt.min(0.4 * self.dx * self.dx / self.diffusivity);
        }
        dt
    }

    /// Mirror-state of cell `idx` for the reflective walls.
    fn ghost(&self, idx: isize) -> Vec<f64> {
        let ns = self.mech.mixture.ns();
        let j = if idx < 0 {
            (-idx - 1) as usize
        } else if idx as usize >= self.nx {
            2 * self.nx - 1 - idx as usize
        } else {
            return self.state[idx as usize].clone();
        };
        let mut g = self.state[j].clone();
        g[ns] = -g[ns]; // reflect momentum
        g
    }

    /// Physical flux of a cell state: `[ρ_s u, ρu² + p, (E + p)u]`.
    fn flux(&self, cell: &[f64]) -> (Vec<f64>, f64) {
        let ns = self.mech.mixture.ns();
        let st = MixtureState {
            rho_s: cell[..ns].to_vec(),
            mom: [cell[ns], 0.0, 0.0],
            energy: cell[ns + 1],
        };
        let w = self.mech.mixture.to_primitive(&st);
        let rho = self.mech.mixture.density(&w.rho_s);
        let u = w.vel[0];
        let mut f = Vec::with_capacity(ns + 2);
        for &rho_s in &cell[..ns] {
            f.push(rho_s * u);
        }
        f.push(rho * u * u + w.p);
        f.push((cell[ns + 1] + w.p) * u);
        let a = self.mech.mixture.sound_speed(&w.rho_s, w.t);
        (f, u.abs() + a)
    }

    /// Right-hand side: convective (Rusanov) + species diffusion (with the
    /// Eq. 1 enthalpy transport) + chemistry source.
    fn rhs(&self) -> Vec<Vec<f64>> {
        let ns = self.mech.mixture.ns();
        let ncomp = self.ncomp();
        let mut out = vec![vec![0.0; ncomp]; self.nx];

        // Convective face fluxes (Rusanov).
        let mut face = vec![vec![0.0; ncomp]; self.nx + 1];
        for (f, face_f) in face.iter_mut().enumerate() {
            let l = self.ghost(f as isize - 1);
            let r = self.ghost(f as isize);
            let (fl, sl) = self.flux(&l);
            let (fr, sr) = self.flux(&r);
            let lam = sl.max(sr);
            for c in 0..ncomp {
                face_f[c] = 0.5 * (fl[c] + fr[c]) - 0.5 * lam * (r[c] - l[c]);
            }
        }
        for i in 0..self.nx {
            for c in 0..ncomp {
                out[i][c] -= (face[i + 1][c] - face[i][c]) / self.dx;
            }
        }

        // Species diffusion: face flux ρ_s v_s = −ρ D ∂Y_s/∂x, plus the
        // Σ ρ_s v_s h_s energy transport (h_s = c_ps T + h°_s).
        if self.diffusivity > 0.0 {
            for f in 0..=self.nx {
                let l = self.ghost(f as isize - 1);
                let r = self.ghost(f as isize);
                let rho_l: f64 = l[..ns].iter().sum();
                let rho_r: f64 = r[..ns].iter().sum();
                let rho_face = 0.5 * (rho_l + rho_r);
                // Face temperature for the enthalpy carried by diffusion.
                let t_face = 0.5
                    * (self.mech.mixture.temperature(&MixtureState {
                        rho_s: l[..ns].to_vec(),
                        mom: [l[ns], 0.0, 0.0],
                        energy: l[ns + 1],
                    }) + self.mech.mixture.temperature(&MixtureState {
                        rho_s: r[..ns].to_vec(),
                        mom: [r[ns], 0.0, 0.0],
                        energy: r[ns + 1],
                    }));
                for s in 0..ns {
                    let y_l = l[s] / rho_l;
                    let y_r = r[s] / rho_r;
                    let jflux = -rho_face * self.diffusivity * (y_r - y_l) / self.dx;
                    let sp = &self.mech.mixture.species[s];
                    let h_s = sp.cp() * t_face + sp.h_formation;
                    // Apply to the two adjacent cells (interior only).
                    if f > 0 {
                        out[f - 1][s] -= jflux / self.dx;
                        out[f - 1][ns + 1] -= jflux * h_s / self.dx;
                    }
                    if f < self.nx {
                        out[f][s] += jflux / self.dx;
                        out[f][ns + 1] += jflux * h_s / self.dx;
                    }
                }
            }
        }

        // Chemistry source w_s (momentum and energy untouched: Eq. 2 absorbs
        // the heat release through the formation enthalpies).
        for (i, out_i) in out.iter_mut().enumerate() {
            let st = self.cell_state(i);
            let t = self.mech.mixture.temperature(&st);
            let w = self.mech.production_rates(&st.rho_s, t);
            for (o, &ws) in out_i.iter_mut().zip(&w) {
                *o += ws;
            }
        }
        out
    }

    /// One low-storage step.
    pub fn step(&mut self, dt: f64, scheme: TimeScheme) {
        let ncomp = self.ncomp();
        let mut du = vec![vec![0.0; ncomp]; self.nx];
        for s in 0..scheme.stages() {
            let rhs = self.rhs();
            for i in 0..self.nx {
                for c in 0..ncomp {
                    du[i][c] = scheme.a(s) * du[i][c] + dt * rhs[i][c];
                    self.state[i][c] += scheme.b(s) * du[i][c];
                }
            }
        }
        self.time += dt;
    }

    /// `true` if any cell is unphysical (negative partial density beyond
    /// round-off, non-finite values).
    pub fn is_physical(&self) -> bool {
        let ns = self.mech.mixture.ns();
        self.state.iter().all(|c| {
            c.iter().all(|v| v.is_finite()) && c[..ns].iter().all(|&r| r > -1e-10)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chemistry::Mechanism;

    /// Mechanism with chemistry switched off (zero rate).
    fn inert() -> Mechanism {
        let mut m = Mechanism::dissociation();
        for rx in &mut m.reactions {
            rx.forward.a = 0.0;
            rx.reverse = None;
        }
        m
    }

    fn uniform_ic(t: f64) -> impl Fn(f64) -> MixturePrimitive {
        move |_x| MixturePrimitive {
            rho_s: vec![0.7, 0.3],
            vel: [0.0; 3],
            p: 0.0,
            t,
        }
    }

    #[test]
    fn uniform_state_is_steady() {
        let mut s = Species1d::new(inert(), 32, 1.0, 0.0, uniform_ic(1500.0));
        let before = s.state.clone();
        for _ in 0..20 {
            let dt = s.stable_dt(0.5);
            s.step(dt, TimeScheme::Rk3Williamson);
        }
        for (a, b) in s.state.iter().zip(&before) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-8 * y.abs().max(1.0), "{x} vs {y}");
            }
        }
    }

    #[test]
    fn diffusion_mixes_composition_and_conserves_each_species() {
        // Composition step at constant p, T: diffusion must flatten Y while
        // conserving every species' total mass.
        let mech = inert();
        let mut s = Species1d::new(mech, 64, 1e-3, 5e-4, |x| {
            let y0 = if x < 5e-4 { 0.9 } else { 0.1 };
            MixturePrimitive {
                rho_s: vec![y0, 1.0 - y0],
                vel: [0.0; 3],
                p: 0.0,
                t: 1000.0,
            }
        });
        let m0 = s.species_mass(0);
        let m1 = s.species_mass(1);
        // Initial composition contrast at the two ends.
        let y_left0 = s.cell_primitive(2).rho_s[0]
            / (s.cell_primitive(2).rho_s[0] + s.cell_primitive(2).rho_s[1]);
        for _ in 0..400 {
            let dt = s.stable_dt(0.4);
            s.step(dt, TimeScheme::Rk3Williamson);
        }
        assert!(s.is_physical());
        assert!(((s.species_mass(0) - m0) / m0).abs() < 1e-8, "species-0 mass drift");
        assert!(((s.species_mass(1) - m1) / m1).abs() < 1e-8, "species-1 mass drift");
        let w = s.cell_primitive(2);
        let y_left1 = w.rho_s[0] / (w.rho_s[0] + w.rho_s[1]);
        assert!(
            y_left1 < y_left0 - 1e-3,
            "diffusion must erode the step: {y_left0} -> {y_left1}"
        );
    }

    #[test]
    fn closed_box_conserves_mass_and_energy_with_chemistry() {
        // Hot closed box with live chemistry: species convert, but the box's
        // total mass and total energy are invariants of Eq. 1 with walls.
        let mech = Mechanism::dissociation();
        let mut s = Species1d::new(mech, 32, 0.1, 1e-4, |x| MixturePrimitive {
            rho_s: vec![1.0, 1e-4],
            vel: [0.0; 3],
            p: 0.0,
            t: 4500.0 + 1500.0 * (-((x - 0.05) / 0.01).powi(2)).exp(),
        });
        let mass0: f64 = s.species_mass(0) + s.species_mass(1);
        let e0 = s.total_energy();
        let atoms0 = s.species_mass(1);
        for _ in 0..300 {
            let dt = s.stable_dt(0.4).min(2e-9);
            s.step(dt, TimeScheme::Rk3Williamson);
        }
        assert!(s.is_physical());
        let mass1: f64 = s.species_mass(0) + s.species_mass(1);
        let e1 = s.total_energy();
        assert!(((mass1 - mass0) / mass0).abs() < 1e-10, "total mass drift");
        assert!(((e1 - e0) / e0).abs() < 1e-9, "total energy drift");
        assert!(s.species_mass(1) > atoms0, "hot spot must dissociate");
    }

    #[test]
    fn acoustic_pulse_moves_at_mixture_sound_speed() {
        // A small pressure pulse in a uniform mixture propagates at the
        // frozen sound speed: check arrival at a probe.
        let mech = inert();
        let t_gas = 1200.0;
        let mut s = Species1d::new(mech, 256, 1.0, 0.0, move |x| MixturePrimitive {
            rho_s: vec![0.7, 0.3],
            vel: [0.0; 3],
            p: 0.0,
            t: t_gas * (1.0 + 0.01 * (-((x - 0.2) / 0.02).powi(2)).exp()),
        });
        let a = s.mech.mixture.sound_speed(&[0.7, 0.3], t_gas);
        let probe = 200; // x = 0.783
        let travel = (0.783 - 0.2) / a;
        let p0 = s.cell_primitive(probe).p;
        while s.time() < travel * 1.05 {
            let dt = s.stable_dt(0.5);
            s.step(dt, TimeScheme::Rk3Williamson);
        }
        let p1 = s.cell_primitive(probe).p;
        assert!(
            (p1 - p0) / p0 > 1e-4,
            "pulse should have arrived: dp/p = {}",
            (p1 - p0) / p0
        );
    }
}
