//! Reference ("Fortran") kernel implementations.
//!
//! §IV-A of the paper translates the original Fortran numerics to C++ and
//! validates the translation by comparing L2 norms of each flow variable
//! between the two implementations, observing a plateau at ~1e-7 — "within
//! machine precision differences given the quantity of operations".
//!
//! We reproduce that methodology with a second, independently structured
//! implementation of the convective kernel: no pencil buffers, per-face
//! recomputation, a different (but algebraically equivalent) association
//! order for the flux assembly. CRoCCo 1.0 runs these kernels; the
//! cross-implementation L2 comparison lives in `validation` and the
//! `l2_validation` experiment.

use crate::eos::PerfectGas;
use crate::metrics::comp as mcomp;
use crate::state::{cons, Conserved, NCONS};
use crate::weno::{reconstruct_face, WenoVariant};
use crocco_fab::{FArrayBox, FabView};
use crocco_geometry::{IndexBox, IntVect};

/// Reference one-direction WENO convective flux: algebraically the same
/// scheme as [`crate::kernels::weno_flux`], written in the
/// loop-over-faces-recompute-everything style of the original Fortran.
pub fn weno_flux_reference(
    u: &impl FabView,
    met: &FArrayBox,
    rhs: &mut FArrayBox,
    valid: IndexBox,
    dir: usize,
    gas: &PerfectGas,
    variant: WenoVariant,
) {
    let e = IntVect::unit(dir);

    // Per-cell contravariant flux, J·U, and wave speed — recomputed at every
    // use, exactly as a straightforward translation would.
    let cell_quantities = |p: IntVect| -> ([f64; NCONS], [f64; NCONS], f64) {
        let cellu = Conserved([
            u.get(p, cons::RHO),
            u.get(p, cons::MX),
            u.get(p, cons::MY),
            u.get(p, cons::MZ),
            u.get(p, cons::ENER),
        ]);
        let w = cellu.to_primitive(gas);
        let jac = met.get(p, mcomp::JAC);
        let m0 = met.get(p, mcomp::M + dir * 3);
        let m1 = met.get(p, mcomp::M + dir * 3 + 1);
        let m2 = met.get(p, mcomp::M + dir * 3 + 2);
        // Different association order from the optimized kernel — the same
        // algebra the way a Fortran compiler would have scheduled it, so
        // results differ at the last-ulp level exactly as §IV-A describes
        // for the Fortran/C++ pair.
        let uc = m2 * w.vel[2] + (m1 * w.vel[1] + m0 * w.vel[0]);
        let mnorm = (m2 * m2 + m1 * m1 + m0 * m0).sqrt();
        let a = gas.sound_speed(w.rho, w.p.max(1e-300));
        // Distributed division (vs the optimized kernel's single divide).
        let speed = uc.abs() / jac + a * mnorm / jac;
        let fhat = [
            cellu.0[cons::RHO] * uc,
            w.p * m0 + cellu.0[cons::MX] * uc,
            w.p * m1 + cellu.0[cons::MY] * uc,
            w.p * m2 + cellu.0[cons::MZ] * uc,
            // Distributed product (vs the optimized kernel's (E + p)·uc).
            uc * cellu.0[cons::ENER] + uc * w.p,
        ];
        let mut v = [0.0; NCONS];
        for (vc, &cu) in v.iter_mut().zip(&cellu.0) {
            *vc = cu * jac;
        }
        (fhat, v, speed)
    };

    let face_flux = |cell_right_of_face: IntVect| -> [f64; NCONS] {
        // Window cells i-3 .. i+2 relative to the cell right of the face.
        let mut fh = [[0.0; NCONS]; 6];
        let mut vv = [[0.0; NCONS]; 6];
        let mut lambda: f64 = 0.0;
        for (k, off) in (-3i64..3).enumerate() {
            let q = cell_right_of_face + e * off;
            let (f, v, s) = cell_quantities(q);
            fh[k] = f;
            vv[k] = v;
            lambda = lambda.max(s);
        }
        let mut out = [0.0; NCONS];
        for c in 0..NCONS {
            let mut wp = [0.0; 6];
            let mut wm = [0.0; 6];
            for k in 0..6 {
                wp[k] = 0.5 * (fh[k][c] + lambda * vv[k][c]);
                wm[k] = 0.5 * (fh[5 - k][c] - lambda * vv[5 - k][c]);
            }
            out[c] = reconstruct_face(&wp, variant) + reconstruct_face(&wm, variant);
        }
        out
    };

    for p in valid.cells() {
        let lo_face = face_flux(p);
        let hi_face = face_flux(p + e);
        let jac = met.get(p, mcomp::JAC);
        for c in 0..NCONS {
            rhs.add(p, c, -(hi_face[c] - lo_face[c]) / jac);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{weno_flux, NGHOST};
    use crate::metrics::{compute_metrics, generate_coords, NCOORDS, NMETRICS};
    use crate::state::Primitive;
    use crocco_fab::{BoxArray, DistributionMapping, MultiFab};
    use crocco_geometry::{RealVect, StretchedMapping};
    use std::sync::Arc;

    #[test]
    fn reference_and_optimized_agree_to_machine_precision() {
        // The two implementations differ in loop structure and association
        // order; on identical inputs their outputs must agree to the paper's
        // "machine precision given the quantity of operations" level.
        let gas = PerfectGas::nondimensional();
        let extents = IntVect::new(16, 12, 8);
        let bx = IndexBox::from_extents(16, 12, 8);
        let ba = Arc::new(BoxArray::new(vec![bx]));
        let dm = Arc::new(DistributionMapping::all_on_root(&ba));
        let map = StretchedMapping::new(RealVect::ZERO, RealVect::splat(1.0), 1.1, 1);
        let mut coords = MultiFab::new(ba.clone(), dm.clone(), NCOORDS, NGHOST + 2);
        generate_coords(&map, extents, &mut coords);
        let mut metrics = MultiFab::new(ba.clone(), dm.clone(), NMETRICS, NGHOST);
        compute_metrics(&coords, &mut metrics);
        let mut state = MultiFab::new(ba, dm, NCONS, NGHOST);
        // Smooth nontrivial field.
        let all = state.fab(0).bx();
        for p in all.cells() {
            let x = p[0] as f64 / 16.0;
            let y = p[1] as f64 / 12.0;
            let w = Primitive {
                rho: 1.0 + 0.2 * (6.3 * x).sin(),
                vel: [0.5 + 0.1 * (6.3 * y).cos(), -0.2, 0.05],
                p: 1.0 + 0.1 * (6.3 * (x + y)).sin(),
                t: 0.0,
            };
            let u = Conserved::from_primitive(&w, &gas);
            for c in 0..NCONS {
                state.fab_mut(0).set(p, c, u.0[c]);
            }
        }
        let valid = state.valid_box(0);
        for dir in 0..3 {
            let mut rhs_opt = FArrayBox::new(valid, NCONS);
            let mut rhs_ref = FArrayBox::new(valid, NCONS);
            weno_flux(
                state.fab(0),
                metrics.fab(0),
                &mut rhs_opt,
                valid,
                dir,
                &gas,
                WenoVariant::Js5,
            );
            weno_flux_reference(
                state.fab(0),
                metrics.fab(0),
                &mut rhs_ref,
                valid,
                dir,
                &gas,
                WenoVariant::Js5,
            );
            for c in 0..NCONS {
                let mut num = 0.0;
                let mut den = 0.0f64;
                for p in valid.cells() {
                    num += (rhs_opt.get(p, c) - rhs_ref.get(p, c)).powi(2);
                    den += rhs_ref.get(p, c).powi(2);
                }
                let l2 = (num / valid.num_points() as f64).sqrt();
                let scale = (den / valid.num_points() as f64).sqrt().max(1e-300);
                assert!(
                    l2 / scale < 1e-7,
                    "dir {dir} comp {c}: relative L2 {}",
                    l2 / scale
                );
            }
        }
    }
}
