//! The CRoCCo time-marching driver (Algorithms 1 and 2 of the paper).
//!
//! ```text
//! InitGrid(); InitGridMetrics(); InitFlow();
//! for n = nstart..nend:
//!     if mod(step, regridFreq) == 0: Regrid()
//!     ComputeDt()
//!     RK3()           // per stage, per level: FillPatch, BC_Fill,
//!                     // WENOx/y/z, Viscous, Update; AverageDown at stage 3
//! ```

use crate::backend::{fused, BackendKind};
use crate::bc::PhysicalBc;
use crate::config::SolverConfig;
use crate::kernels::{gradient_magnitude, NGHOST};
use crate::config::CoordSource;
use crate::metrics::{
    compute_metrics, generate_coords, read_coords_from_file, write_coords_file, NCOORDS,
    NMETRICS,
};
use crate::reference::weno_flux_reference;
use crate::state::NCONS;
use crocco_amr::fillpatch::{
    fill_patch_single_level_with, fill_patch_two_levels_with, fill_two_level_patch,
    resolve_two_level_plans, CoarseTimeInterp, FillOpts, FillPatchReport, TwoLevelPlans,
};
use crocco_amr::hierarchy::{AmrHierarchy, AmrParams};
use crocco_amr::interp::Interpolator;
use crocco_amr::BoundaryFiller;
use crocco_amr::tagging::TagSet;
use crocco_fab::plan::PlanStats;
use crocco_fab::plan_cache::{PlanKey, PlanOp};
use crocco_fab::{
    band_slabs, fabcheck, run_rk_stage_with_skeleton, tile_boxes, BoxArray, DistributionMapping,
    FArrayBox, FabRd, FabRw, FabView, MultiFab, StageFabs, StageSkeleton, SweepPhase,
    DEFAULT_TILE,
};
use crocco_geometry::{GridMapping, IndexBox, IntVect, ProblemDomain, RealVect};
use crocco_perfmodel::Profiler;
use crocco_runtime::{parallel_for_each_mut, parallel_zip_mut};
use crocco_fab::DistributionStrategy;
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// `PlanOp::Aux` namespace tag for memoized on-node stage skeletons
/// ([`StageSkeleton`]); the AMR two-level plans use tags 1–2.
pub(crate) const AUX_STAGE_SKELETON: u32 = 3;
/// `PlanOp::Aux` namespace tag for memoized distributed stage skeletons
/// (`DistSkeleton`, keyed per rank through the key's `aux` bits).
pub(crate) const AUX_DIST_SKELETON: u32 = 4;
/// `PlanOp::Aux` namespace tag for memoized static schedule verifications of
/// on-node stage skeletons (`VerifyReport`, DESIGN.md §4i).
pub(crate) const AUX_STAGE_VERIFY: u32 = 5;
/// `PlanOp::Aux` namespace tag for memoized static schedule verifications of
/// distributed stages (all ranks + cross-rank checks; keyed by rank count
/// through the key's `aux` bits).
pub(crate) const AUX_DIST_VERIFY: u32 = 6;

/// Williamson low-storage RK3 coefficients.
pub const RK3_A: [f64; 3] = [0.0, -5.0 / 9.0, -153.0 / 128.0];
/// Williamson low-storage RK3 coefficients.
pub const RK3_B: [f64; 3] = [1.0 / 3.0, 15.0 / 16.0, 8.0 / 15.0];

/// Per-level field data: the four MultiFabs §III-C enumerates (state, dU,
/// coordinates, 27-component metrics).
pub struct LevelData {
    /// Conserved state (with [`NGHOST`] ghosts).
    pub state: MultiFab,
    /// Low-storage RK accumulator dU.
    pub du: MultiFab,
    /// Physical coordinates (3 components).
    pub coords: MultiFab,
    /// Grid metrics (27 components).
    pub metrics: MultiFab,
    /// Per-patch RHS scratch `L(U)` for the RK stages: allocated once per
    /// regrid and zeroed in place each stage, so the hot loop never touches
    /// the allocator.
    pub(crate) rhs: Vec<FArrayBox>,
    /// The state at the start of the current coarse step, kept while
    /// subcycling so finer levels can time-interpolate their coarse/fine
    /// ghosts between this and `state` (docs/ARCHITECTURE.md §Subcycling).
    /// Swapped (not copied) with `state` at each save; `None` until the
    /// first subcycled step and on levels with nothing finer.
    pub(crate) state_old: Option<MultiFab>,
}

impl LevelData {
    /// Assembles one level's data, sizing the RHS scratch to the state's
    /// valid boxes.
    pub(crate) fn new(state: MultiFab, du: MultiFab, coords: MultiFab, metrics: MultiFab) -> Self {
        let ba = state.boxarray();
        // Under owned-data distribution the RHS scratch follows the state's
        // allocation: unallocated placeholders keep the vector index-aligned
        // with the (replicated) BoxArray while storing nothing for patches
        // other ranks own.
        let rhs = (0..ba.len())
            .map(|i| {
                if state.is_allocated(i) {
                    FArrayBox::new(ba.get(i), NCONS)
                } else {
                    FArrayBox::unallocated(ba.get(i), NCONS)
                }
            })
            .collect();
        LevelData {
            state,
            du,
            coords,
            metrics,
            rhs,
            state_old: None,
        }
    }
}

/// Aggregated communication accounting for one run — the inputs to the
/// Summit network model in the scaling studies.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct CommTotals {
    /// FillBoundary message-pair count (off-rank).
    pub fb_messages: u64,
    /// FillBoundary off-rank bytes.
    pub fb_bytes: u64,
    /// State ParallelCopy message pairs.
    pub pc_messages: u64,
    /// State ParallelCopy off-rank bytes.
    pub pc_bytes: u64,
    /// Coordinate ParallelCopy message pairs (curvilinear interpolator only).
    pub coord_pc_messages: u64,
    /// Coordinate ParallelCopy off-rank bytes.
    pub coord_pc_bytes: u64,
    /// Global reductions issued (`ReduceRealMin` in ComputeDt).
    pub reductions: u64,
    /// Fine ghost cells produced by interpolation.
    pub interpolated_cells: u64,
}

impl CommTotals {
    pub(crate) fn absorb_plan(&mut self, stats: &PlanStats, kind: PlanKind) {
        match kind {
            PlanKind::FillBoundary => {
                self.fb_messages += stats.num_messages;
                self.fb_bytes += stats.remote_bytes;
            }
            PlanKind::ParallelCopy => {
                self.pc_messages += stats.num_messages;
                self.pc_bytes += stats.remote_bytes;
            }
            PlanKind::CoordCopy => {
                self.coord_pc_messages += stats.num_messages;
                self.coord_pc_bytes += stats.remote_bytes;
            }
        }
    }
}

pub(crate) enum PlanKind {
    FillBoundary,
    ParallelCopy,
    CoordCopy,
}

/// Summary of an [`Simulation::advance_steps`] run.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RunReport {
    /// Steps taken.
    pub steps: u32,
    /// Simulation time reached.
    pub final_time: f64,
    /// Last stable time step.
    pub dt: f64,
    /// Active grid points across all levels after the run.
    pub active_points: u64,
    /// Equivalent uniformly-fine grid points.
    pub equivalent_points: u64,
    /// AMR grid-point reduction (§V-C reports 89–94 % for DMR).
    pub reduction_fraction: f64,
    /// Communication accounting.
    pub comm: CommTotals,
    /// Total cell updates (one full RK step of one cell) across the run.
    /// Lockstep advances every level each step; subcycling advances level
    /// `ℓ` `2^ℓ` times per coarse step — this counter is what the
    /// `fig_subcycle` ablation compares (docs/results/subcycle.md).
    #[serde(default)]
    pub cell_updates: u64,
}

/// A full CRoCCo simulation instance.
pub struct Simulation {
    /// The configuration this run was built from.
    pub cfg: SolverConfig,
    pub(crate) gas: crate::eos::PerfectGas,
    pub(crate) mapping: Arc<dyn GridMapping>,
    pub(crate) hierarchy: AmrHierarchy,
    pub(crate) levels: Vec<LevelData>,
    pub(crate) interp: Box<dyn Interpolator>,
    /// Region profiler (TinyProfiler analog); real wall-clock seconds.
    pub profiler: Profiler,
    /// Communication accounting.
    pub comm: CommTotals,
    /// Per-level coordinate files (populated for `CoordSource::BinaryFile`).
    coord_files: Vec<std::path::PathBuf>,
    /// `Some(rank)` when this instance participates in owned-data
    /// distribution (docs/DISTRIBUTED.md): every `MultiFab` allocates data
    /// only for the patches the `DistributionMapping` assigns to `rank`;
    /// the rest are metadata-only placeholders. `None` (the default, and
    /// always the case outside cluster stepping) replicates every patch.
    pub(crate) owned_rank: Option<usize>,
    pub(crate) time: f64,
    pub(crate) dt: f64,
    pub(crate) step: u32,
    /// Flux registers + recording geometry per coarse/fine level pair
    /// (`subcycle[l]` couples levels `l` and `l+1`). Rebuilt lazily whenever
    /// the grids change; empty unless `cfg.subcycling`.
    pub(crate) subcycle: Vec<crate::subcycle::InterfaceReg>,
    /// Running cell-update total (see [`RunReport::cell_updates`]).
    pub(crate) cell_updates: u64,
    /// Monotone subcycled-exchange slot counter for the owned-data path:
    /// every fill/exchange round inside a subcycled step draws a fresh tag
    /// epoch from this counter so substeps never alias each other's
    /// messages. Identical across ranks by construction.
    pub(crate) sub_slot: u64,
}

impl Simulation {
    /// Builds the simulation: grid, metrics, initial flow, and (for AMR
    /// versions) the initial refined levels.
    pub fn new(cfg: SolverConfig) -> Self {
        let mut sim = Simulation::new_impl(cfg, None);
        // Iteratively grow the initial hierarchy: tag on the initial flow,
        // regrid, re-initialize — until the ladder stops changing.
        if sim.cfg.version.amr_enabled() {
            for _ in 0..sim.cfg.max_levels {
                let tags = sim.compute_tags();
                if !sim.hierarchy.regrid(&tags) {
                    break;
                }
                sim.rebuild_all_levels_from_ic();
            }
        }
        sim
    }

    /// Shared construction body: everything except the initial-regrid loop,
    /// which differs between the serial path (local tags suffice) and
    /// owned-data cluster construction (each rank tags only owned patches,
    /// so the per-round tag sets must be unioned across ranks first —
    /// `Simulation::new_owned` in `cluster_step`).
    pub(crate) fn new_impl(cfg: SolverConfig, owned_rank: Option<usize>) -> Self {
        let gas = cfg.problem.gas();
        let mapping = cfg.problem.mapping();
        let domain0 = ProblemDomain::new(
            IndexBox::from_extents(cfg.extents[0], cfg.extents[1], cfg.extents[2]),
            cfg.problem.periodicity(),
        );
        let params = AmrParams {
            max_levels: cfg.effective_levels(),
            ref_ratio: IntVect::splat(2),
            blocking_factor: cfg.blocking_factor,
            max_grid_size: cfg.max_grid_size,
            grid_eff: cfg.grid_eff,
            n_error_buf: cfg.n_error_buf,
            regrid_freq: cfg.regrid_freq,
            nesting_buffer: cfg.blocking_factor,
        };
        let hierarchy = AmrHierarchy::new(
            domain0,
            params,
            cfg.nranks,
            DistributionStrategy::MortonSfc,
        );
        let interp = cfg
            .interpolator
            .map(|k| k.build())
            .unwrap_or_else(|| cfg.version.interpolator());
        let mut sim = Simulation {
            gas,
            mapping,
            hierarchy,
            levels: Vec::new(),
            interp,
            profiler: Profiler::new(),
            comm: CommTotals::default(),
            coord_files: Vec::new(),
            owned_rank,
            time: 0.0,
            dt: 0.0,
            step: 0,
            subcycle: Vec::new(),
            cell_updates: 0,
            sub_slot: 0,
            cfg,
        };
        sim.prepare_coord_files();
        sim.rebuild_all_levels_from_ic();
        sim
    }

    /// Rebuilds a simulation from a checkpoint: grids come from the saved
    /// box lists, valid data from the saved body, grid metrics are
    /// regenerated from the mapping (coordinates are a pure function of the
    /// grids, per §III-C), and the step/time counters resume.
    pub fn from_checkpoint(cfg: SolverConfig, chk: &crate::io::Checkpoint) -> Self {
        Simulation::from_checkpoint_impl(cfg, chk, None)
    }

    /// Checkpoint restore body, parameterized on the ownership mode. With
    /// `owned_rank = Some(r)` only owned patches allocate and only their
    /// valid data is overwritten from the (globally identical) checkpoint
    /// body — checkpoints stay whole-domain so any surviving rank subset can
    /// restore from them after a crash.
    pub(crate) fn from_checkpoint_impl(
        cfg: SolverConfig,
        chk: &crate::io::Checkpoint,
        owned_rank: Option<usize>,
    ) -> Self {
        let gas = cfg.problem.gas();
        let mapping = cfg.problem.mapping();
        let domain0 = ProblemDomain::new(
            IndexBox::from_extents(cfg.extents[0], cfg.extents[1], cfg.extents[2]),
            cfg.problem.periodicity(),
        );
        let params = AmrParams {
            max_levels: cfg.effective_levels(),
            ref_ratio: IntVect::splat(2),
            blocking_factor: cfg.blocking_factor,
            max_grid_size: cfg.max_grid_size,
            grid_eff: cfg.grid_eff,
            n_error_buf: cfg.n_error_buf,
            regrid_freq: cfg.regrid_freq,
            nesting_buffer: cfg.blocking_factor,
        };
        let hierarchy = AmrHierarchy::from_boxes(
            domain0,
            params,
            cfg.nranks,
            DistributionStrategy::MortonSfc,
            &chk.levels[1..],
        );
        assert_eq!(
            hierarchy.level(0).ba.boxes(),
            &chk.levels[0][..],
            "checkpoint level-0 grids must match the configured decomposition"
        );
        let mut sim = Simulation {
            gas,
            mapping,
            hierarchy,
            levels: Vec::new(),
            interp: cfg
                .interpolator
                .map(|k| k.build())
                .unwrap_or_else(|| cfg.version.interpolator()),
            profiler: Profiler::new(),
            comm: CommTotals::default(),
            coord_files: Vec::new(),
            owned_rank,
            time: chk.time,
            dt: 0.0,
            step: chk.step,
            subcycle: Vec::new(),
            cell_updates: 0,
            sub_slot: 0,
            cfg,
        };
        sim.prepare_coord_files();
        sim.rebuild_all_levels_from_ic();
        // Overwrite valid data with the checkpoint body (owned patches only
        // under owned-data distribution — the rest have no storage).
        for (l, level_data) in chk.data.iter().enumerate() {
            let state = &mut sim.levels[l].state;
            for (i, vals) in level_data.iter().enumerate() {
                if !state.is_allocated(i) {
                    continue;
                }
                let valid = state.valid_box(i);
                let mut it = vals.iter();
                for c in 0..NCONS {
                    for p in valid.cells() {
                        state.fab_mut(i).set(p, c, *it.next().expect("short checkpoint"));
                    }
                }
            }
        }
        sim
    }

    /// Allocates a solver `MultiFab` honouring the sanitizer knobs: signaling
    /// NaNs in every cell when `nan_poison` is on (so an unwritten cell traps
    /// in the next `check_for_nan` sweep instead of smuggling a zero), and the
    /// per-fab `fabcheck` toggle mirroring the config. Under owned-data
    /// distribution only the patches [`owned_rank`](Self::owned_rank) owns
    /// get storage.
    pub(crate) fn alloc_mf(
        &self,
        ba: Arc<BoxArray>,
        dm: Arc<DistributionMapping>,
        ncomp: usize,
        nghost: i64,
    ) -> MultiFab {
        let mut mf = match (self.owned_rank, self.cfg.nan_poison) {
            (Some(r), true) => MultiFab::new_owned_poisoned(ba, dm, ncomp, nghost, r),
            (Some(r), false) => MultiFab::new_owned(ba, dm, ncomp, nghost, r),
            (None, true) => MultiFab::new_poisoned(ba, dm, ncomp, nghost),
            (None, false) => MultiFab::new(ba, dm, ncomp, nghost),
        };
        mf.set_fabcheck(self.cfg.fabcheck);
        mf
    }

    /// Level extents at level `l`.
    pub(crate) fn level_extents(&self, l: usize) -> IntVect {
        let s = self.hierarchy.domain(l).bx.size();
        IntVect::new(s[0], s[1], s[2])
    }

    /// Writes the per-level coordinate files when the configuration asks for
    /// the §III-C binary-file regrid path.
    fn prepare_coord_files(&mut self) {
        if self.cfg.coord_source != CoordSource::BinaryFile {
            return;
        }
        let dir = std::env::temp_dir().join(format!(
            "crocco_coords_{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).expect("cannot create coord file dir");
        for l in 0..self.cfg.effective_levels() {
            let path = dir.join(format!("level_{l}.coords"));
            write_coords_file(self.mapping.as_ref(), self.level_extents_static(l), &path)
                .expect("cannot write coordinate file");
            self.coord_files.push(path);
        }
    }

    /// Level extents derived purely from the config (valid before the
    /// hierarchy holds that many levels).
    fn level_extents_static(&self, l: usize) -> IntVect {
        let mut e = self.cfg.extents;
        for _ in 0..l {
            e = e.refine(IntVect::splat(2));
        }
        e
    }

    /// Allocates and initializes one level's grid data (coords + metrics),
    /// honouring the configured coordinate source.
    pub(crate) fn make_level_grid(&self, l: usize) -> (MultiFab, MultiFab) {
        let lev = self.hierarchy.level(l);
        let mut coords = match self.owned_rank {
            Some(r) => {
                MultiFab::new_owned(lev.ba.clone(), lev.dm.clone(), NCOORDS, NGHOST + 2, r)
            }
            None => MultiFab::new(lev.ba.clone(), lev.dm.clone(), NCOORDS, NGHOST + 2),
        };
        match self.cfg.coord_source {
            CoordSource::Memory => {
                generate_coords(self.mapping.as_ref(), self.level_extents(l), &mut coords);
            }
            CoordSource::BinaryFile => {
                read_coords_from_file(
                    &self.coord_files[l],
                    self.mapping.as_ref(),
                    self.level_extents(l),
                    &mut coords,
                )
                .expect("coordinate file read failed");
            }
        }
        let mut metrics = self.alloc_mf(lev.ba.clone(), lev.dm.clone(), NMETRICS, NGHOST);
        compute_metrics(&coords, &mut metrics);
        (coords, metrics)
    }

    /// Initializes one level's state (all cells, ghosts included) from the
    /// problem's initial condition at the stored coordinates.
    fn init_state_from_ic(&self, coords: &MultiFab, state: &mut MultiFab) {
        for i in 0..state.nfabs() {
            if !state.is_allocated(i) {
                continue;
            }
            let bx = state.fab(i).bx();
            for p in bx.cells() {
                let x = RealVect::new(
                    coords.fab(i).get(p, 0),
                    coords.fab(i).get(p, 1),
                    coords.fab(i).get(p, 2),
                );
                let u = self.cfg.problem.initial_state(x, &self.gas);
                for c in 0..NCONS {
                    state.fab_mut(i).set(p, c, u.0[c]);
                }
            }
        }
    }

    /// Rebuilds every level's data directly from the initial condition
    /// (used during hierarchy construction at t = 0).
    pub(crate) fn rebuild_all_levels_from_ic(&mut self) {
        self.levels.clear();
        for l in 0..self.hierarchy.nlevels() {
            let lev = self.hierarchy.level(l);
            let (coords, metrics) = self.make_level_grid(l);
            let mut state = self.alloc_mf(lev.ba.clone(), lev.dm.clone(), NCONS, NGHOST);
            self.init_state_from_ic(&coords, &mut state);
            state.mark_ghosts_filled(); // the IC writes every cell, ghosts included
            let du = self.alloc_mf(lev.ba.clone(), lev.dm.clone(), NCONS, 0);
            self.levels.push(LevelData::new(state, du, coords, metrics));
        }
    }

    /// Current simulation time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Last stable dt.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Steps taken.
    pub fn step_count(&self) -> u32 {
        self.step
    }

    /// Number of active levels.
    pub fn nlevels(&self) -> usize {
        self.hierarchy.nlevels()
    }

    /// The AMR hierarchy (grids and domains).
    pub fn hierarchy(&self) -> &AmrHierarchy {
        &self.hierarchy
    }

    /// Level `l`'s field data.
    pub fn level(&self, l: usize) -> &LevelData {
        &self.levels[l]
    }

    /// Refinement tags per level from the |∇ρ| criterion (§II-B): the scratch
    /// gradient field is thresholded against the configured value. Only
    /// levels that may host a finer one are tagged. Under owned-data
    /// distribution this tags *owned* patches only — the distributed regrid
    /// unions the per-rank sets before clustering.
    pub fn compute_tags(&self) -> Vec<TagSet> {
        let mut out = Vec::new();
        for l in 0..self.hierarchy.nlevels().min(self.cfg.effective_levels() - 1) {
            let state = &self.levels[l].state;
            let mut tags = TagSet::new();
            for i in 0..state.nfabs() {
                if !state.is_allocated(i) {
                    continue;
                }
                let valid = state.valid_box(i);
                let mut g = FArrayBox::new(valid, 1);
                gradient_magnitude(state.fab(i), &mut g, valid, crate::state::cons::RHO);
                for p in valid.cells() {
                    if g.get(p, 0) > self.cfg.tag_threshold {
                        tags.tag(p);
                    }
                }
            }
            out.push(tags);
        }
        out
    }

    /// One full time step (Algorithm 1 loop body).
    pub fn step(&mut self) {
        if self.cfg.version.amr_enabled()
            && self.step > 0
            && self.step.is_multiple_of(self.cfg.regrid_freq)
        {
            let t0 = std::time::Instant::now();
            self.regrid();
            self.profiler.add("Regrid", t0.elapsed().as_secs_f64());
        }
        let t0 = std::time::Instant::now();
        if self.cfg.subcycling {
            self.compute_dt_subcycled();
        } else {
            self.compute_dt();
        }
        self.profiler.add("ComputeDt", t0.elapsed().as_secs_f64());
        if self.cfg.subcycling {
            self.advance_subcycled();
        } else {
            self.rk3();
            let mut n = 0u64;
            for lev in &self.levels {
                for i in 0..lev.state.nfabs() {
                    n += lev.state.valid_box(i).num_points();
                }
            }
            self.cell_updates += n;
        }
        self.step += 1;
        self.time += self.dt;
    }

    /// Advances `n` steps and reports.
    pub fn advance_steps(&mut self, n: u32) -> RunReport {
        for _ in 0..n {
            self.step();
        }
        self.report()
    }

    /// Builds a report of the current run state.
    pub fn report(&self) -> RunReport {
        RunReport {
            steps: self.step,
            final_time: self.time,
            dt: self.dt,
            active_points: self.hierarchy.active_points(),
            equivalent_points: self.hierarchy.equivalent_fine_points(),
            reduction_fraction: self.hierarchy.reduction_fraction(),
            comm: self.comm,
            cell_updates: self.cell_updates,
        }
    }

    /// Regrids and remaps field data onto the new grids (Algorithm 1 line 7).
    pub(crate) fn regrid(&mut self) {
        let tags = self.compute_tags();
        // Refresh coarse ghosts so remap interpolation has sound sources.
        for l in 0..self.hierarchy.nlevels() {
            self.fill_level(l);
        }
        let changed = self.hierarchy.regrid(&tags);
        if !changed {
            return;
        }
        // Remap levels 1.. onto the new grids: interpolate everything from
        // the (already remapped) coarser level, then overwrite with any
        // surviving same-level data.
        let nlev = self.hierarchy.nlevels();
        let mut new_levels: Vec<LevelData> = Vec::with_capacity(nlev);
        // Level 0 grids never change.
        let old0 = std::mem::take(&mut self.levels);
        let mut old_iter: Vec<Option<LevelData>> = old0.into_iter().map(Some).collect();
        new_levels.push(old_iter[0].take().unwrap());
        for l in 1..nlev {
            let lev = self.hierarchy.level(l);
            let (coords, metrics) = self.make_level_grid(l);
            let mut state = self.alloc_mf(lev.ba.clone(), lev.dm.clone(), NCONS, NGHOST);
            // Interpolate the whole valid region from the coarser new level.
            let coarse = &new_levels[l - 1];
            let coarse_domain = self.hierarchy.domain(l - 1);
            let coarse_bc = PhysicalBc::new(
                self.cfg.problem,
                self.gas,
                self.level_extents(l - 1),
            );
            self.interp_full_level(
                &coarse.state,
                &coarse.coords,
                &coords,
                &mut state,
                &coarse_domain,
                &coarse_bc,
            );
            // Overwrite with surviving same-level data.
            if let Some(old) = old_iter.get_mut(l).and_then(|o| o.take()) {
                let domain = self.hierarchy.domain(l);
                let plan = state.parallel_copy_from(&old.state, &domain);
                self.comm.absorb_plan(&plan.stats(), PlanKind::ParallelCopy);
            }
            let du = self.alloc_mf(lev.ba.clone(), lev.dm.clone(), NCONS, 0);
            new_levels.push(LevelData::new(state, du, coords, metrics));
        }
        self.levels = new_levels;
    }

    /// Fills every valid cell of `state` by interpolating `coarse_state`
    /// (used when a brand-new patch appears during regridding).
    fn interp_full_level(
        &self,
        coarse_state: &MultiFab,
        coarse_coords: &MultiFab,
        fine_coords: &MultiFab,
        state: &mut MultiFab,
        coarse_domain: &ProblemDomain,
        coarse_bc: &PhysicalBc,
    ) {
        self.interp_full_level_with_remote(
            coarse_state,
            coarse_coords,
            fine_coords,
            state,
            coarse_domain,
            coarse_bc,
            None,
            None,
        );
    }

    /// The remap-interpolation body, parameterized on remote gather payloads
    /// for owned-data regridding. Chunk indices are global over the
    /// deterministic `(fab, chunk)` enumeration of [`interp_gather_chunks`]
    /// — the same enumeration the distributed regrid uses to decide which
    /// chunks to send — so `remote_state`/`remote_coords` maps (keyed by that
    /// index, produced by `crocco_fab::owned::exchange_chunks`) substitute
    /// bitwise-exactly for the local copies. With `None` maps every chunk
    /// copies locally: the replicated path.
    ///
    /// Under owned-data distribution, fine patches this rank does not own
    /// are skipped (their chunk indices still advance, keeping the global
    /// numbering rank-independent).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn interp_full_level_with_remote(
        &self,
        coarse_state: &MultiFab,
        coarse_coords: &MultiFab,
        fine_coords: &MultiFab,
        state: &mut MultiFab,
        coarse_domain: &ProblemDomain,
        coarse_bc: &PhysicalBc,
        remote_state: Option<&HashMap<usize, Bytes>>,
        remote_coords: Option<&HashMap<usize, Bytes>>,
    ) {
        let ratio = IntVect::splat(2);
        let owned = self.owned_rank.is_some();
        let needs_coords = self.interp.needs_coords();
        let mut state_base = 0usize;
        let mut coord_base = 0usize;
        for i in 0..state.nfabs() {
            let valid = state.valid_box(i);
            let cbox = valid.coarsen(ratio).grow(self.interp.coarse_ghost() + 1);
            let schunks = gather_valid_chunks(coarse_state.boxarray(), cbox, coarse_domain);
            let cchunks = if needs_coords {
                gather_all_chunks(coarse_coords, cbox, coarse_domain)
            } else {
                Vec::new()
            };
            if owned && !state.is_allocated(i) {
                state_base += schunks.len();
                coord_base += cchunks.len();
                continue;
            }
            let mut ctmp = FArrayBox::new(cbox, NCONS);
            for (k, (src_id, region, shift)) in schunks.iter().enumerate() {
                if let Some(payload) = remote_state.and_then(|m| m.get(&(state_base + k))) {
                    crocco_fab::owned::unpack_chunk_into(&mut ctmp, *region, NCONS, payload);
                } else {
                    ctmp.copy_shifted_from(coarse_state.fab(*src_id), *region, *shift, NCONS);
                }
            }
            coarse_bc.fill(
                &mut ctmp,
                cbox.intersection(&coarse_domain.bx),
                coarse_domain,
                self.time,
            );
            let (cc, fc);
            if needs_coords {
                let mut c = FArrayBox::new(cbox, NCOORDS);
                for (k, (src_id, region, shift)) in cchunks.iter().enumerate() {
                    if let Some(payload) = remote_coords.and_then(|m| m.get(&(coord_base + k))) {
                        crocco_fab::owned::unpack_chunk_into(&mut c, *region, NCOORDS, payload);
                    } else {
                        c.copy_shifted_from(coarse_coords.fab(*src_id), *region, *shift, NCOORDS);
                    }
                }
                cc = Some(c);
                fc = Some(fine_coords.fab(i).clone());
            } else {
                cc = None;
                fc = None;
            }
            self.interp.interp(
                &ctmp,
                state.fab_mut(i),
                valid,
                ratio,
                cc.as_ref(),
                fc.as_ref(),
            );
            state_base += schunks.len();
            coord_base += cchunks.len();
        }
    }

    /// `ComputeDt`: the CFL-constrained global minimum time step across all
    /// levels and patches, with the `ReduceRealMin` collective recorded.
    pub(crate) fn compute_dt(&mut self) {
        let mut dt = f64::INFINITY;
        let backend = self.cfg.kernel_backend;
        for lev in &self.levels {
            for i in 0..lev.state.nfabs() {
                let d = backend.compute_dt_patch(
                    lev.state.fab(i),
                    lev.metrics.fab(i),
                    lev.state.valid_box(i),
                    &self.gas,
                    self.cfg.cfl,
                );
                dt = dt.min(d);
            }
        }
        self.comm.reductions += 1;
        assert!(dt.is_finite() && dt > 0.0, "ComputeDt produced dt={dt}");
        self.dt = dt;
    }

    /// FillPatch for one level (single-level at 0, two-level above).
    pub(crate) fn fill_level(&mut self, l: usize) {
        self.fill_level_sub(l, None);
    }

    /// The FillPatch body, parameterized on the subcycling context: `sub`
    /// overrides the boundary-condition time with the substep's start time
    /// and (on refined levels) blends the coarse parent's old/new states for
    /// the ghost interpolation. `None` is the lockstep path, bitwise
    /// unchanged.
    pub(crate) fn fill_level_sub(&mut self, l: usize, sub: Option<&crate::subcycle::SubCtx>) {
        let t0 = std::time::Instant::now();
        let domain = self.hierarchy.domain(l);
        let bc = PhysicalBc::new(self.cfg.problem, self.gas, self.level_extents(l));
        let bc_time = sub.map_or(self.time, |s| s.t);
        let opts = FillOpts {
            cache: if self.cfg.plan_cache {
                Some(self.hierarchy.plan_cache().as_ref())
            } else {
                None
            },
            threads: self.cfg.threads,
        };
        let report: FillPatchReport = if l == 0 {
            fill_patch_single_level_with(&mut self.levels[0].state, &domain, &bc, bc_time, opts)
        } else {
            let coarse_domain = self.hierarchy.domain(l - 1);
            let coarse_bc =
                PhysicalBc::new(self.cfg.problem, self.gas, self.level_extents(l - 1));
            let (lo, hi) = self.levels.split_at_mut(l);
            let coarse = &lo[l - 1];
            let fine = &mut hi[0];
            let time_interp = sub.and_then(|s| s.alpha).map(|alpha| CoarseTimeInterp {
                old: coarse
                    .state_old
                    .as_ref()
                    .expect("subcycling saved the coarse old state before its substeps"),
                alpha,
                remote_old: None,
            });
            fill_patch_two_levels_with(
                &mut fine.state,
                &coarse.state,
                &domain,
                &coarse_domain,
                IntVect::splat(2),
                self.interp.as_ref(),
                &bc,
                &coarse_bc,
                Some(&coarse.coords),
                Some(&fine.coords),
                bc_time,
                time_interp,
                opts,
            )
        };
        self.comm
            .absorb_plan(&report.fb_plan.stats, PlanKind::FillBoundary);
        if let Some(p) = &report.pc_plan {
            self.comm.absorb_plan(&p.stats, PlanKind::ParallelCopy);
        }
        if let Some(p) = &report.coord_pc_plan {
            self.comm.absorb_plan(&p.stats, PlanKind::CoordCopy);
        }
        self.comm.interpolated_cells += report.interpolated_cells;
        self.profiler
            .add("FillPatch", t0.elapsed().as_secs_f64());
    }

    /// Algorithm 2: the configured low-storage stages over all levels,
    /// AverageDown at the end of the final stage.
    fn rk3(&mut self) {
        let dt = self.dt;
        let nstages = self.cfg.time_scheme.stages();
        for stage in 0..nstages {
            for l in 0..self.hierarchy.nlevels() {
                if self.cfg.overlap {
                    self.fill_and_advance_overlap(l, stage, dt, None);
                } else {
                    self.fill_level(l);
                    self.advance_level(l, stage, dt);
                }
            }
            if stage == nstages - 1 {
                let t0 = std::time::Instant::now();
                for l in (1..self.hierarchy.nlevels()).rev() {
                    let (lo, hi) = self.levels.split_at_mut(l);
                    crocco_amr::average_down::average_down(
                        &hi[0].state,
                        &mut lo[l - 1].state,
                        IntVect::splat(2),
                    );
                }
                self.profiler
                    .add("AverageDown", t0.elapsed().as_secs_f64());
            }
            if self.cfg.nan_poison {
                for (l, lev) in self.levels.iter().enumerate() {
                    fabcheck::check_for_nan(&lev.state, &format!("RK stage {stage} state L{l}"));
                    fabcheck::check_for_nan(&lev.du, &format!("RK stage {stage} dU L{l}"));
                }
            }
        }
    }

    /// The subcycled analog of [`compute_dt`](Self::compute_dt): level `ℓ`
    /// advances with `dt₀/2^ℓ`, so the coarse step is bounded by the
    /// *scaled* per-level CFL minima, `dt₀ = min_ℓ (2^ℓ · min_patches dt)`.
    /// On a single level this reduces bitwise to the lockstep fold
    /// (`min · 2⁰ = min`).
    pub(crate) fn compute_dt_subcycled(&mut self) {
        let backend = self.cfg.kernel_backend;
        let mut dt = f64::INFINITY;
        for (l, lev) in self.levels.iter().enumerate() {
            let mut m = f64::INFINITY;
            for i in 0..lev.state.nfabs() {
                let d = backend.compute_dt_patch(
                    lev.state.fab(i),
                    lev.metrics.fab(i),
                    lev.state.valid_box(i),
                    &self.gas,
                    self.cfg.cfl,
                );
                m = m.min(d);
            }
            dt = dt.min(m * (1u64 << l) as f64);
        }
        self.comm.reductions += 1;
        assert!(dt.is_finite() && dt > 0.0, "ComputeDt produced dt={dt}");
        self.dt = dt;
    }

    /// Rebuilds the per-pair flux registers and recording geometry iff the
    /// grids changed since the last build (identity-compared through the
    /// BoxArray `Arc`s, the same invalidation token the plan cache keys on).
    pub(crate) fn ensure_subcycle(&mut self) {
        let npairs = self.hierarchy.nlevels() - 1;
        let stale = self.subcycle.len() != npairs
            || (0..npairs).any(|l| {
                !Arc::ptr_eq(&self.subcycle[l].coarse_ba, self.levels[l].state.boxarray())
                    || !Arc::ptr_eq(&self.subcycle[l].fine_ba, self.levels[l + 1].state.boxarray())
            });
        if stale {
            self.subcycle = (0..npairs)
                .map(|l| {
                    crate::subcycle::InterfaceReg::build(
                        self.levels[l].state.boxarray(),
                        self.levels[l + 1].state.boxarray(),
                        self.hierarchy.domain(l).bx,
                        IntVect::splat(2),
                    )
                })
                .collect();
        }
    }

    /// Swap-saves level `ℓ`'s state into its old-time slot before the level
    /// advances, (re)allocating the slot only when the grids changed. After
    /// the swap the fresh `state` buffer is seeded from the old data, so the
    /// in-place RK update continues from the current solution while
    /// `state_old` keeps an untouched copy for time interpolation.
    pub(crate) fn save_old(&mut self, l: usize) {
        let stale = match &self.levels[l].state_old {
            Some(o) => !Arc::ptr_eq(o.boxarray(), self.levels[l].state.boxarray()),
            None => true,
        };
        if stale {
            let ba = self.levels[l].state.boxarray().clone();
            let dm = self.levels[l].state.distribution().clone();
            let mf = self.alloc_mf(ba, dm, NCONS, NGHOST);
            self.levels[l].state_old = Some(mf);
        }
        let LevelData {
            state, state_old, ..
        } = &mut self.levels[l];
        let old = state_old.as_mut().unwrap();
        std::mem::swap(old, state);
        for i in 0..state.nfabs() {
            if !state.is_allocated(i) {
                continue;
            }
            state
                .fab_mut(i)
                .data_mut()
                .copy_from_slice(old.fab(i).data());
        }
    }

    /// Records this level's interface fluxes into the stage accumulation
    /// buffers (barrier path: a dedicated pass between FillPatch and the
    /// stage kernels, when ghosts are fresh and the state is still at the
    /// stage's input time — the overlap path records the same values inside
    /// the per-patch boundary-band sweep tasks).
    fn record_level_fluxes(&self, l: usize, w: f64) {
        if self.subcycle.is_empty() {
            return;
        }
        let gas = self.gas;
        let weno = self.cfg.weno;
        let recon = self.cfg.reconstruction;
        let lev = &self.levels[l];
        if l < self.subcycle.len() {
            let reg = &self.subcycle[l];
            for p in 0..lev.state.nfabs() {
                if !lev.state.is_allocated(p) || reg.coarse_faces[p].is_empty() {
                    continue;
                }
                let mut buf = reg.coarse_buf[p].lock().unwrap();
                crate::subcycle::record_faces(
                    lev.state.fab(p),
                    lev.metrics.fab(p),
                    &reg.coarse_faces[p],
                    w,
                    &mut buf,
                    &gas,
                    weno,
                    recon,
                );
            }
        }
        if l > 0 {
            let reg = &self.subcycle[l - 1];
            for j in 0..lev.state.nfabs() {
                if !lev.state.is_allocated(j) || reg.fine_faces[j].is_empty() {
                    continue;
                }
                let mut buf = reg.fine_buf[j].lock().unwrap();
                crate::subcycle::record_faces(
                    lev.state.fab(j),
                    lev.metrics.fab(j),
                    &reg.fine_faces[j],
                    w,
                    &mut buf,
                    &gas,
                    weno,
                    recon,
                );
            }
        }
    }

    /// One subcycled coarse step: the AMReX-style recursive `timeStep`
    /// (docs/ARCHITECTURE.md §Subcycling). Level 0 takes one step of
    /// `self.dt`; each refined level takes `ref_ratio` substeps of its
    /// parent's `dt/2`, time-interpolating coarse/fine ghosts between the
    /// parent's old and new states, and the accumulated coarse/fine flux
    /// mismatch is refluxed into the parent before AverageDown.
    fn advance_subcycled(&mut self) {
        self.ensure_subcycle();
        let (t, dt) = (self.time, self.dt);
        self.advance_level_recursive(0, t, dt, None);
    }

    /// Advances level `l` from `t` by `dt` (one step of this level), then
    /// recursively takes the two half-`dt` substeps of the next finer level,
    /// refluxes, and averages down. `parent` carries the coarser level's
    /// `(t_old, dt)` for ghost time interpolation.
    fn advance_level_recursive(&mut self, l: usize, t: f64, dt: f64, parent: Option<(f64, f64)>) {
        let nstages = self.cfg.time_scheme.stages();
        let has_finer = l + 1 < self.hierarchy.nlevels();
        if has_finer {
            self.save_old(l);
            self.subcycle[l].register.reset();
            self.subcycle[l].zero_coarse_bufs();
        }
        if l > 0 {
            self.subcycle[l - 1].zero_fine_bufs();
        }
        for stage in 0..nstages {
            let w = self.cfg.time_scheme.net_flux_weight(stage);
            let t_fill = t + self.cfg.time_scheme.stage_time_fraction(stage) * dt;
            let alpha = parent.map(|(pt, pdt)| (t_fill - pt) / pdt);
            let sub = crate::subcycle::SubCtx { t, alpha };
            if self.cfg.overlap {
                self.fill_and_advance_overlap(l, stage, dt, Some(&sub));
            } else {
                self.fill_level_sub(l, Some(&sub));
                self.record_level_fluxes(l, w);
                self.advance_level(l, stage, dt);
            }
            if self.cfg.nan_poison {
                let lev = &self.levels[l];
                fabcheck::check_for_nan(&lev.state, &format!("sub RK stage {stage} state L{l}"));
                fabcheck::check_for_nan(&lev.du, &format!("sub RK stage {stage} dU L{l}"));
            }
        }
        let mut n = 0u64;
        for i in 0..self.levels[l].state.nfabs() {
            n += self.levels[l].state.valid_box(i).num_points();
        }
        self.cell_updates += n;
        if has_finer {
            self.subcycle[l].fold_coarse();
        }
        if l > 0 {
            let (_, pdt) = parent.unwrap();
            self.subcycle[l - 1].fold_fine(dt / pdt);
        }
        if has_finer {
            let fdt = 0.5 * dt;
            for i in 0..2 {
                self.advance_level_recursive(l + 1, t + i as f64 * fdt, fdt, Some((t, dt)));
            }
            let t0 = std::time::Instant::now();
            {
                let reg = &self.subcycle[l].register;
                let LevelData { state, metrics, .. } = &mut self.levels[l];
                reg.reflux(state, metrics, crate::metrics::comp::JAC, dt);
            }
            self.profiler.add("Reflux", t0.elapsed().as_secs_f64());
            let t0 = std::time::Instant::now();
            {
                let (lo, hi) = self.levels.split_at_mut(l + 1);
                crocco_amr::average_down::average_down(
                    &hi[0].state,
                    &mut lo[l].state,
                    IntVect::splat(2),
                );
            }
            self.profiler
                .add("AverageDown", t0.elapsed().as_secs_f64());
        }
    }

    /// Runs the numerics kernels for one level and applies the low-storage
    /// update: `dU ← A·dU + dt·L(U)`, `U ← U + B·dU`.
    fn advance_level(&mut self, l: usize, stage: usize, dt: f64) {
        let t0 = std::time::Instant::now();
        let gas = self.gas;
        let weno = self.cfg.weno;
        let recon = self.cfg.reconstruction;
        let les = self.cfg.les;
        let reference = self.cfg.version.reference_kernels();
        let backend = self.cfg.kernel_backend;
        let tile = self.cfg.tile_size;
        let threads = self.cfg.threads;
        let a = self.cfg.time_scheme.a(stage);
        let b = self.cfg.time_scheme.b(stage);
        let poison = self.cfg.nan_poison;
        let LevelData {
            state,
            du,
            metrics,
            rhs,
            ..
        } = &mut self.levels[l];
        let ba = state.boxarray().clone();
        state.assert_ghosts_fresh("advance_level RK stage kernels");
        if backend == BackendKind::Fused && !reference {
            // Fused kernel-IR path (DESIGN.md §4h): phase one runs the fused
            // per-tile program (zero → fluxes → dU axpy, the stage RHS tile
            // staying cache-resident) over every tile of every patch with the
            // state read-only; phase two streams the state axpy. The split
            // preserves the barrier schedule — all stencil reads of U
            // complete before any write of U — so the result is
            // bitwise-identical (`tests/backend_invariance.rs`).
            let viscous = gas.mu_ref != 0.0 || les.is_some();
            let prog = fused::KernelIr::rk_stage(viscous).fuse();
            let t = tile.unwrap_or(DEFAULT_TILE);
            {
                let state = &*state;
                parallel_zip_mut(du.fabs_mut(), rhs, threads, |i, dufab, rhsfab| {
                    if poison && a == 0.0 {
                        // 0·SNAN is still NaN: a poisoned dU must be dropped
                        // explicitly at the first stage, not multiplied away.
                        dufab.fill(0.0);
                    }
                    fused::run_stage_patch(
                        &prog,
                        state.fab(i),
                        metrics.fab(i),
                        rhsfab,
                        dufab,
                        ba.get(i),
                        t,
                        &gas,
                        weno,
                        recon,
                        les.as_ref(),
                        a,
                        dt,
                    );
                });
            }
            let du = &*du;
            parallel_for_each_mut(state.fabs_mut(), threads, |i, stfab| {
                fused::run_epilogue_patch(&prog.epilogue, stfab, du.fab(i), b);
            });
            self.profiler.add("Advance", t0.elapsed().as_secs_f64());
            return;
        }
        // RHS per patch, in parallel, into the level's persistent scratch:
        // each worker owns one rhs fab (zeroed in place, never reallocated).
        {
            let state = &*state;
            parallel_for_each_mut(rhs, threads, |i, rhs| {
                rhs.fill(0.0);
                accumulate_rhs(
                    state.fab(i),
                    metrics.fab(i),
                    rhs,
                    ba.get(i),
                    &gas,
                    weno,
                    recon,
                    les.as_ref(),
                    reference,
                    backend,
                    tile,
                );
            });
        }
        // Low-storage update, walking dU and U in lockstep per patch.
        let rhs = &*rhs;
        parallel_zip_mut(du.fabs_mut(), state.fabs_mut(), threads, |i, dufab, stfab| {
            if poison && a == 0.0 {
                // 0·SNAN is still NaN: a poisoned dU must be dropped
                // explicitly at the first stage, not multiplied away.
                dufab.fill(0.0);
            }
            dufab.lincomb(a, dt, &rhs[i]);
            stfab.lincomb(1.0, b, dufab);
        });
        self.profiler.add("Advance", t0.elapsed().as_secs_f64());
    }

    /// The task-graph execution of one level's RK stage (DESIGN.md §4e):
    /// halo plans are *resolved* (through the shared plan cache) instead of
    /// executed, and [`run_rk_stage`] schedules the per-patch halo copies,
    /// interior sweeps, boundary-band sweeps, and low-storage updates as a
    /// dependency DAG — interior work overlaps with ghost exchange, and only
    /// patch-boundary tasks fence on their neighbours.
    ///
    /// Results are bitwise-identical to `fill_level` + `advance_level`
    /// (`tests/overlap_invariance.rs`); only the inter-patch schedule
    /// changes. Plan resolution and communication accounting stay in the
    /// "FillPatch" profiler region; on cache hits that region is nearly
    /// empty because the halo data motion itself now runs inside "Advance",
    /// hidden behind the interior sweeps.
    fn fill_and_advance_overlap(
        &mut self,
        l: usize,
        stage: usize,
        dt: f64,
        sub: Option<&crate::subcycle::SubCtx>,
    ) {
        let t0 = std::time::Instant::now();
        let gas = self.gas;
        let weno = self.cfg.weno;
        let recon = self.cfg.reconstruction;
        let les = self.cfg.les;
        let reference = self.cfg.version.reference_kernels();
        let backend = self.cfg.kernel_backend;
        let tile = self.cfg.tile_size;
        let a = self.cfg.time_scheme.a(stage);
        let b = self.cfg.time_scheme.b(stage);
        let poison = self.cfg.nan_poison;
        let time = sub.map_or(self.time, |s| s.t);
        let w = self.cfg.time_scheme.net_flux_weight(stage);
        // Interface-flux recording (subcycled steps only): `rec_coarse` is
        // this level's role as the coarse side of the pair above it,
        // `rec_fine` its role as the fine side of the pair below.
        let rec_coarse = (sub.is_some() && l < self.subcycle.len()).then(|| &self.subcycle[l]);
        let rec_fine = (sub.is_some() && l > 0 && !self.subcycle.is_empty())
            .then(|| &self.subcycle[l - 1]);
        let ratio = IntVect::splat(2);
        let domain = self.hierarchy.domain(l);
        let bc = PhysicalBc::new(self.cfg.problem, self.gas, self.level_extents(l));
        let coarse_ctx = (l > 0).then(|| {
            (
                self.hierarchy.domain(l - 1),
                PhysicalBc::new(self.cfg.problem, self.gas, self.level_extents(l - 1)),
            )
        });
        // The overlap path always resolves through the hierarchy cache: the
        // graph needs the plan as a *data structure* (its chunks become halo
        // tasks), and the keys match the barrier path's, so both share
        // entries.
        let cache = self.hierarchy.plan_cache().clone();
        let interp = &*self.interp;

        let (lo_levels, hi_levels) = self.levels.split_at_mut(l);
        let fine = &mut hi_levels[0];
        let fb = cache.fill_boundary(
            fine.state.boxarray(),
            fine.state.distribution(),
            &domain,
            fine.state.nghost(),
            fine.state.ncomp(),
        );
        let two: Option<(TwoLevelPlans, &LevelData, ProblemDomain, PhysicalBc)> =
            coarse_ctx.map(|(coarse_domain, coarse_bc)| {
                let coarse = &lo_levels[l - 1];
                let plans = resolve_two_level_plans(
                    &fine.state,
                    &coarse.state,
                    &domain,
                    &coarse_domain,
                    ratio,
                    interp,
                    Some(&coarse.coords),
                    Some(&fine.coords),
                    Some(cache.as_ref()),
                );
                (plans, coarse, coarse_domain, coarse_bc)
            });
        self.comm.absorb_plan(&fb.stats, PlanKind::FillBoundary);
        if let Some((plans, ..)) = &two {
            self.comm
                .absorb_plan(&plans.state.state_plan().stats, PlanKind::ParallelCopy);
            if let Some(cg) = &plans.coords {
                self.comm
                    .absorb_plan(&cg.coord_plan().stats, PlanKind::CoordCopy);
            }
        }
        self.profiler.add("FillPatch", t0.elapsed().as_secs_f64());

        let t1 = std::time::Instant::now();
        let LevelData {
            state,
            du,
            coords,
            metrics,
            rhs,
            ..
        } = fine;
        let ba = state.boxarray().clone();
        let coords = &*coords;
        let metrics = &*metrics;
        let interpolated = AtomicU64::new(0);

        // Coarse-fine ghosts for patch `i` (no-op on the base level). Same
        // gather + coarse-BC + interpolate sequence as the barrier path,
        // through the same resolved plans. Subcycled substeps blend the
        // coarse parent's old/new states at the substep's fill time.
        let ti: Option<CoarseTimeInterp<'_>> = match (&two, sub.and_then(|s| s.alpha)) {
            (Some((_, coarse, _, _)), Some(alpha)) => Some(CoarseTimeInterp {
                old: coarse
                    .state_old
                    .as_ref()
                    .expect("subcycling saved the coarse old state before its substeps"),
                alpha,
                remote_old: None,
            }),
            _ => None,
        };
        // The blend above reads the coarse *old* state below the instrumented
        // views, so declare those reads on each halo task's footprint (and
        // record them for the dynamic detector): per fine patch, the gather
        // chunks it consumes, at their source regions in the old fab (fab id
        // = data base pointer, the executor's id convention). `alpha == 1.0`
        // skips the old-state gather entirely, so there is nothing to
        // declare.
        let extra_halo: Vec<Vec<(u64, IndexBox)>> = match (&two, &ti) {
            (Some((plans, ..)), Some(t)) if t.alpha != 1.0 => {
                let mut per_patch = vec![Vec::new(); state.nfabs()];
                for c in &plans.state.state_plan().plan.chunks {
                    let id = t.old.fab(c.src_id).data().as_ptr() as usize as u64;
                    per_patch[c.dst_id].push((id, c.region.shift(-c.shift)));
                }
                per_patch
            }
            _ => Vec::new(),
        };
        let pre_halo = |i: usize, rw: &mut FabRw<'_>| {
            if let Some((plans, coarse, coarse_domain, coarse_bc)) = &two {
                let cells = fill_two_level_patch(
                    i,
                    rw,
                    plans,
                    &coarse.state,
                    Some(&coarse.coords),
                    Some(coords.fab(i)),
                    coarse_domain,
                    ratio,
                    interp,
                    coarse_bc,
                    time,
                    ti,
                );
                interpolated.fetch_add(cells, Ordering::Relaxed);
            }
        };
        let bc_fill = |i: usize, rw: &mut FabRw<'_>| {
            bc.fill_view(rw, ba.get(i), &domain, time);
        };
        let sweep = |i: usize, u: FabRd<'_>, phase: SweepPhase, rhs: &mut FArrayBox| {
            let valid = ba.get(i);
            let met = metrics.fab(i);
            let interior = valid.grow(-NGHOST);
            match phase {
                SweepPhase::Interior => {
                    rhs.fill(0.0);
                    if !interior.is_empty() {
                        accumulate_rhs(
                            &u, met, rhs, interior, &gas, weno, recon, les.as_ref(), reference,
                            backend, tile,
                        );
                    }
                }
                SweepPhase::BoundaryBand => {
                    for slab in band_slabs(valid, interior) {
                        accumulate_rhs(
                            &u, met, rhs, slab, &gas, weno, recon, les.as_ref(), reference,
                            backend, tile,
                        );
                    }
                    // Subcycled interface-flux recording: the boundary-band
                    // task is the one point in the graph where this patch's
                    // ghosts are filled and its state is still at the stage's
                    // input time. One task per patch per stage, so the lock
                    // is uncontended and the per-face accumulation order is
                    // the same as the barrier path's.
                    if let Some(reg) = rec_coarse {
                        if !reg.coarse_faces[i].is_empty() {
                            let mut buf = reg.coarse_buf[i].lock().unwrap();
                            crate::subcycle::record_faces(
                                &u,
                                met,
                                &reg.coarse_faces[i],
                                w,
                                &mut buf,
                                &gas,
                                weno,
                                recon,
                            );
                        }
                    }
                    if let Some(reg) = rec_fine {
                        if !reg.fine_faces[i].is_empty() {
                            let mut buf = reg.fine_buf[i].lock().unwrap();
                            crate::subcycle::record_faces(
                                &u,
                                met,
                                &reg.fine_faces[i],
                                w,
                                &mut buf,
                                &gas,
                                weno,
                                recon,
                            );
                        }
                    }
                }
            }
        };
        let update = |_i: usize, dufab: &mut FArrayBox, stfab: &mut FArrayBox, rhs: &FArrayBox| {
            if poison && a == 0.0 {
                // 0·SNAN is still NaN: a poisoned dU must be dropped
                // explicitly at the first stage, not multiplied away.
                dufab.fill(0.0);
            }
            dufab.lincomb(a, dt, rhs);
            stfab.lincomb(1.0, b, dufab);
        };
        // The stage graph's *skeleton* (chunk ranges + reader edges) is a
        // pure function of the cached plan, so memoize it next to the plan
        // (same identity-token key, `Aux` namespace) and re-bind only the RK
        // coefficients per stage. Invalidated with the rest of the cache at
        // regrid (DESIGN.md §4f).
        let skel = cache.get_or_build_aux(
            PlanKey {
                op: PlanOp::Aux(AUX_STAGE_SKELETON),
                ..PlanKey::fill_boundary(
                    state.boxarray(),
                    state.distribution(),
                    &domain,
                    state.nghost(),
                    state.ncomp(),
                )
            },
            || StageSkeleton::build(&fb, state.nfabs()),
        );
        // Static schedule verification (DESIGN.md §4i): prove every
        // conflicting task pair of the skeleton ordered, once per (grids,
        // plan) generation — memoized beside the skeleton, so steady-state
        // stages pay one cache hit.
        if self.cfg.taskcheck {
            let report = cache.get_or_build_aux(
                PlanKey {
                    op: PlanOp::Aux(AUX_STAGE_VERIFY),
                    ..PlanKey::fill_boundary(
                        state.boxarray(),
                        state.distribution(),
                        &domain,
                        state.nghost(),
                        state.ncomp(),
                    )
                },
                || {
                    let valid: Vec<IndexBox> =
                        (0..state.nfabs()).map(|i| ba.get(i)).collect();
                    crocco_fab::verify_stage(&fb, &skel, &valid, state.nghost())
                },
            );
            report.assert_clean("on-node RK stage skeleton");
        }
        let sched = self.cfg.schedule();
        run_rk_stage_with_skeleton(
            StageFabs { state, du, rhs },
            &fb,
            &skel,
            sched,
            &extra_halo,
            &pre_halo,
            &bc_fill,
            &sweep,
            &update,
        );
        self.comm.interpolated_cells += interpolated.load(Ordering::Relaxed);
        self.profiler.add("Advance", t1.elapsed().as_secs_f64());
    }

    /// Total integral of conserved component `comp` over the physical domain
    /// at the coarsest level (∫ U dV = Σ U·J): the conservation monitor.
    /// Accumulates flat rows per patch (not per-point `get`), patches in
    /// parallel; the per-patch partials are reduced serially so the result
    /// does not depend on thread count.
    pub fn conserved_integral(&self, comp: usize) -> f64 {
        let lev = &self.levels[0];
        let jac = crate::metrics::comp::JAC;
        let mut partials = vec![0.0f64; lev.state.nfabs()];
        parallel_for_each_mut(&mut partials, self.cfg.threads, |i, acc| {
            let valid = lev.state.valid_box(i);
            let (lo, hi) = (valid.lo(), valid.hi());
            let len = (hi[0] - lo[0] + 1) as usize;
            let fab = lev.state.fab(i);
            let met = lev.metrics.fab(i);
            let mut sum = 0.0;
            for k in lo[2]..=hi[2] {
                for j in lo[1]..=hi[1] {
                    let p0 = IntVect::new(lo[0], j, k);
                    let u = fab.row(p0, comp, len);
                    let w = met.row(p0, jac, len);
                    sum += u.iter().zip(w).map(|(x, y)| x * y).sum::<f64>();
                }
            }
            *acc = sum;
        });
        partials.iter().sum()
    }

    /// `true` if any level contains NaN/∞ in its valid region.
    pub fn has_nonfinite(&self) -> bool {
        self.levels.iter().any(|l| l.state.has_nonfinite())
    }
}

/// Accumulates the stage RHS `L(U)` over `region` of one patch: the three
/// directional WENO fluxes (optimized or reference kernels per the code
/// version) then the viscous/LES flux, in the fixed per-cell operation order
/// every execution path shares — the barrier path passes the whole valid box,
/// the task-graph path the interior box and the boundary-band slabs, and a
/// configured `tile` shape further partitions whichever region arrives.
/// Because every valid cell lies in exactly one such (sub)region the
/// partition is bitwise-irrelevant.
///
/// `backend` selects the kernel implementation (all bitwise-identical);
/// `reference` (the V1.0 "Fortran" kernels) overrides it, since the
/// reference kernels exist precisely to be the unrestructured baseline.
#[allow(clippy::too_many_arguments)]
pub(crate) fn accumulate_rhs(
    u: &impl FabView,
    met: &FArrayBox,
    rhs: &mut FArrayBox,
    region: IndexBox,
    gas: &crate::eos::PerfectGas,
    weno: crate::weno::WenoVariant,
    recon: crate::weno::Reconstruction,
    les: Option<&crate::sgs::Smagorinsky>,
    reference: bool,
    backend: BackendKind,
    tile: Option<IntVect>,
) {
    let tiles = match tile {
        Some(t) => tile_boxes(region, t),
        None => vec![region],
    };
    for reg in tiles {
        if reference {
            for dir in 0..3 {
                weno_flux_reference(u, met, rhs, reg, dir, gas, weno);
            }
            crate::kernels::viscous_flux_les(u, met, rhs, reg, gas, les);
        } else {
            backend.accumulate_rhs(u, met, rhs, reg, gas, weno, recon, les);
        }
    }
}

/// Enumerates the valid-region gather chunks filling `dst_bx` from `src_ba`
/// (periodic-aware): `(src_id, region-in-dst-space, shift)` triples in a
/// deterministic order — a pure function of replicated metadata, so every
/// rank enumerates the identical list. The remap path executes these as
/// local copies; the distributed regrid turns the rank-crossing ones into
/// `CopyChunk` sends keyed by position in this list.
pub(crate) fn gather_valid_chunks(
    src_ba: &BoxArray,
    dst_bx: IndexBox,
    domain: &ProblemDomain,
) -> Vec<(usize, IndexBox, IntVect)> {
    let mut out = Vec::new();
    for shift in domain.periodic_shifts() {
        let probe = dst_bx.shift(-shift);
        for (src_id, overlap) in src_ba.intersections(probe) {
            out.push((src_id, overlap.shift(shift), shift));
        }
    }
    out
}

/// Enumerates valid+ghost gather chunks (for analytic coordinates), in the
/// same deterministic metadata-only order as [`gather_valid_chunks`].
pub(crate) fn gather_all_chunks(
    src: &MultiFab,
    dst_bx: IndexBox,
    domain: &ProblemDomain,
) -> Vec<(usize, IndexBox, IntVect)> {
    let g = src.nghost();
    let mut out = Vec::new();
    for shift in domain.periodic_shifts() {
        let probe = dst_bx.shift(-shift);
        for (src_id, _) in src.boxarray().intersections(probe.grow(g)) {
            let overlap = src.boxarray().get(src_id).grow(g).intersection(&probe);
            if overlap.is_empty() {
                continue;
            }
            out.push((src_id, overlap.shift(shift), shift));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CodeVersion, SolverConfig};
    use crate::problems::ProblemKind;
    use crate::state::cons;

    fn sod_cfg() -> SolverConfig {
        SolverConfig::builder()
            .problem(ProblemKind::SodX)
            .extents(64, 4, 4)
            .version(CodeVersion::V1_1)
            .build()
    }

    #[test]
    fn sod_runs_and_stays_finite() {
        let mut sim = Simulation::new(sod_cfg());
        let report = sim.advance_steps(10);
        assert_eq!(report.steps, 10);
        assert!(report.final_time > 0.0);
        assert!(!sim.has_nonfinite());
    }

    #[test]
    fn periodic_directions_conserve_mass_exactly() {
        // Sod is periodic in y/z and outflow in x; before the waves reach
        // the x boundaries, total mass must be conserved to round-off.
        let mut sim = Simulation::new(sod_cfg());
        let m0 = sim.conserved_integral(cons::RHO);
        sim.advance_steps(10);
        let m1 = sim.conserved_integral(cons::RHO);
        assert!(
            ((m1 - m0) / m0).abs() < 1e-12,
            "mass drift {}",
            (m1 - m0) / m0
        );
    }

    #[test]
    fn dt_respects_cfl_scaling() {
        // Halving the grid spacing must roughly halve dt.
        let mut a = Simulation::new(sod_cfg());
        a.step();
        let cfg2 = SolverConfig::builder()
            .problem(ProblemKind::SodX)
            .extents(128, 4, 4)
            .version(CodeVersion::V1_1)
            .build();
        let mut b = Simulation::new(cfg2);
        b.step();
        // Only x refines (y and z keep 4 cells): the wave-speed sum goes
        // from (64 + 16 + 16)·a to (128 + 16 + 16)·a, so dt shrinks by 5/3.
        let ratio = a.dt() / b.dt();
        assert!(
            (ratio - 5.0 / 3.0).abs() < 0.05,
            "dt ratio {ratio}, expected 5/3"
        );
    }

    #[test]
    fn amr_version_creates_fine_levels_on_the_shock() {
        let cfg = SolverConfig::builder()
            .problem(ProblemKind::SodX)
            .extents(64, 4, 4)
            .version(CodeVersion::V1_2)
            .max_levels(2)
            .build();
        let sim = Simulation::new(cfg);
        assert_eq!(sim.nlevels(), 2, "discontinuity must trigger refinement");
        // The fine level sits around the diaphragm at x = 0.5 (cells ~32·2).
        let fine_hull = sim.hierarchy().level(1).ba.hull();
        assert!(fine_hull.lo()[0] < 64 && fine_hull.hi()[0] > 60,
            "fine level {fine_hull:?} should straddle the diaphragm");
    }

    #[test]
    fn amr_and_single_level_agree_before_waves_reach_interfaces() {
        // With the fine level covering the only active region, the coarse
        // solution under it is the averaged fine solution; the global mass
        // must match the non-AMR run to high accuracy.
        let mut plain = Simulation::new(sod_cfg());
        let cfg_amr = SolverConfig::builder()
            .problem(ProblemKind::SodX)
            .extents(64, 4, 4)
            .version(CodeVersion::V1_2)
            .max_levels(2)
            .build();
        let mut amr = Simulation::new(cfg_amr);
        plain.advance_steps(5);
        amr.advance_steps(5);
        let mp = plain.conserved_integral(cons::RHO);
        let ma = amr.conserved_integral(cons::RHO);
        assert!(((mp - ma) / mp).abs() < 1e-6, "mass {mp} vs {ma}");
    }

    #[test]
    fn comm_totals_accumulate() {
        let cfg = SolverConfig::builder()
            .problem(ProblemKind::SodX)
            .extents(64, 4, 4)
            .version(CodeVersion::V2_0)
            .max_levels(2)
            .nranks(4)
            .build();
        let mut sim = Simulation::new(cfg);
        sim.advance_steps(2);
        let c = sim.comm;
        assert!(c.reductions >= 2);
        assert!(c.interpolated_cells > 0, "two-level fills must interpolate");
        // The curvilinear interpolator must move coordinates.
        assert!(c.coord_pc_messages + c.coord_pc_bytes > 0);
    }

    #[test]
    fn trilinear_version_skips_coordinate_copy() {
        let cfg = SolverConfig::builder()
            .problem(ProblemKind::SodX)
            .extents(64, 4, 4)
            .version(CodeVersion::V2_1)
            .max_levels(2)
            .nranks(4)
            .build();
        let mut sim = Simulation::new(cfg);
        sim.advance_steps(2);
        assert_eq!(sim.comm.coord_pc_bytes, 0);
        assert_eq!(sim.comm.coord_pc_messages, 0);
    }

    #[test]
    fn profiler_collects_the_paper_regions() {
        let mut sim = Simulation::new(sod_cfg());
        sim.advance_steps(3);
        for region in ["ComputeDt", "FillPatch", "Advance"] {
            assert!(
                sim.profiler.total(region) > 0.0,
                "region {region} missing from profile"
            );
        }
    }
}
