//! The problem domain: coarse-level index box plus periodicity.

use crate::ibox::IndexBox;
use crate::intvect::IntVect;
use serde::{Deserialize, Serialize};

/// The computational domain at one AMR level: the covering index box and the
/// periodicity of each direction.
///
/// The DMR problem of the paper is periodic along the span (z) and
/// non-periodic in x and y, where physical boundary conditions are applied by
/// `BC_Fill`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProblemDomain {
    /// Index box covering the whole domain at this level.
    pub bx: IndexBox,
    /// Per-direction periodicity flags.
    pub periodic: [bool; 3],
}

impl ProblemDomain {
    /// Creates a domain from its box and periodicity flags.
    pub fn new(bx: IndexBox, periodic: [bool; 3]) -> Self {
        ProblemDomain { bx, periodic }
    }

    /// A fully non-periodic domain.
    pub fn non_periodic(bx: IndexBox) -> Self {
        ProblemDomain::new(bx, [false; 3])
    }

    /// A fully periodic domain.
    pub fn fully_periodic(bx: IndexBox) -> Self {
        ProblemDomain::new(bx, [true; 3])
    }

    /// The domain refined by `ratio` (periodicity is inherited).
    pub fn refine(&self, ratio: IntVect) -> Self {
        ProblemDomain::new(self.bx.refine(ratio), self.periodic)
    }

    /// The domain coarsened by `ratio` (periodicity is inherited).
    pub fn coarsen(&self, ratio: IntVect) -> Self {
        ProblemDomain::new(self.bx.coarsen(ratio), self.periodic)
    }

    /// All periodic images of `bx` (including the identity shift) that might
    /// intersect the domain's ghost-extended neighborhood. For each periodic
    /// direction the shift takes values in {-L, 0, +L}.
    pub fn periodic_shifts(&self) -> Vec<IntVect> {
        let ext = self.bx.size();
        let mut shifts = vec![IntVect::ZERO];
        for dir in 0..3 {
            if !self.periodic[dir] {
                continue;
            }
            let l = ext[dir];
            let mut next = Vec::with_capacity(shifts.len() * 3);
            for &s in &shifts {
                next.push(s);
                next.push(s + IntVect::unit(dir) * l);
                next.push(s - IntVect::unit(dir) * l);
            }
            shifts = next;
        }
        shifts
    }

    /// `true` if `p`, possibly after periodic wrapping, lies inside the domain.
    pub fn contains_wrapped(&self, p: IntVect) -> bool {
        let mut q = p;
        for dir in 0..3 {
            if self.periodic[dir] {
                let l = self.bx.size()[dir];
                let lo = self.bx.lo()[dir];
                q[dir] = (q[dir] - lo).rem_euclid(l) + lo;
            }
        }
        self.bx.contains(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dom() -> ProblemDomain {
        ProblemDomain::new(IndexBox::from_extents(8, 8, 4), [false, false, true])
    }

    #[test]
    fn periodic_shift_enumeration() {
        let d = dom();
        let shifts = d.periodic_shifts();
        assert_eq!(shifts.len(), 3); // identity, +z, -z
        assert!(shifts.contains(&IntVect::ZERO));
        assert!(shifts.contains(&IntVect::new(0, 0, 4)));
        assert!(shifts.contains(&IntVect::new(0, 0, -4)));

        let full = ProblemDomain::fully_periodic(IndexBox::from_extents(4, 4, 4));
        assert_eq!(full.periodic_shifts().len(), 27);
    }

    #[test]
    fn wrapped_containment() {
        let d = dom();
        assert!(d.contains_wrapped(IntVect::new(0, 0, 5))); // wraps to z=1
        assert!(d.contains_wrapped(IntVect::new(0, 0, -1))); // wraps to z=3
        assert!(!d.contains_wrapped(IntVect::new(-1, 0, 0))); // x not periodic
        assert!(!d.contains_wrapped(IntVect::new(0, 8, 0))); // y not periodic
    }

    #[test]
    fn refine_coarsen_inherit_periodicity() {
        let d = dom();
        let r = d.refine(IntVect::splat(2));
        assert_eq!(r.periodic, d.periodic);
        assert_eq!(r.bx.num_points(), d.bx.num_points() * 8);
        assert_eq!(r.coarsen(IntVect::splat(2)).bx, d.bx);
    }
}
