//! Physical-space vectors.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Div, Index, IndexMut, Mul, Neg, Sub};

/// A point (or displacement) in physical `(x, y, z)` space.
#[derive(Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RealVect(pub [f64; 3]);

impl RealVect {
    /// The origin.
    pub const ZERO: RealVect = RealVect([0.0, 0.0, 0.0]);

    /// Creates a vector from its three components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        RealVect([x, y, z])
    }

    /// Creates a vector with all components equal to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        RealVect([v, v, v])
    }

    /// Euclidean dot product.
    #[inline]
    pub fn dot(self, o: Self) -> f64 {
        self.0[0] * o.0[0] + self.0[1] * o.0[1] + self.0[2] * o.0[2]
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, o: Self) -> Self {
        RealVect([
            self.0[1] * o.0[2] - self.0[2] * o.0[1],
            self.0[2] * o.0[0] - self.0[0] * o.0[2],
            self.0[0] * o.0[1] - self.0[1] * o.0[0],
        ])
    }

    /// Component-wise product.
    #[inline]
    pub fn hadamard(self, o: Self) -> Self {
        RealVect([self.0[0] * o.0[0], self.0[1] * o.0[1], self.0[2] * o.0[2]])
    }

    /// Largest absolute component.
    #[inline]
    pub fn linf(self) -> f64 {
        self.0[0].abs().max(self.0[1].abs()).max(self.0[2].abs())
    }
}

impl fmt::Debug for RealVect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6e},{:.6e},{:.6e})", self.0[0], self.0[1], self.0[2])
    }
}

impl Index<usize> for RealVect {
    type Output = f64;
    #[inline]
    fn index(&self, d: usize) -> &f64 {
        &self.0[d]
    }
}

impl IndexMut<usize> for RealVect {
    #[inline]
    fn index_mut(&mut self, d: usize) -> &mut f64 {
        &mut self.0[d]
    }
}

impl Add for RealVect {
    type Output = RealVect;
    #[inline]
    fn add(self, o: RealVect) -> RealVect {
        RealVect([self.0[0] + o.0[0], self.0[1] + o.0[1], self.0[2] + o.0[2]])
    }
}

impl Sub for RealVect {
    type Output = RealVect;
    #[inline]
    fn sub(self, o: RealVect) -> RealVect {
        RealVect([self.0[0] - o.0[0], self.0[1] - o.0[1], self.0[2] - o.0[2]])
    }
}

impl Neg for RealVect {
    type Output = RealVect;
    #[inline]
    fn neg(self) -> RealVect {
        RealVect([-self.0[0], -self.0[1], -self.0[2]])
    }
}

impl Mul<f64> for RealVect {
    type Output = RealVect;
    #[inline]
    fn mul(self, s: f64) -> RealVect {
        RealVect([self.0[0] * s, self.0[1] * s, self.0[2] * s])
    }
}

impl Div<f64> for RealVect {
    type Output = RealVect;
    #[inline]
    fn div(self, s: f64) -> RealVect {
        RealVect([self.0[0] / s, self.0[1] / s, self.0[2] / s])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        let v = RealVect::new(3.0, 4.0, 0.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.dot(RealVect::new(1.0, 1.0, 1.0)), 7.0);
    }

    #[test]
    fn cross_is_orthogonal() {
        let a = RealVect::new(1.0, 2.0, 3.0);
        let b = RealVect::new(-4.0, 0.5, 2.0);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-14);
        assert!(c.dot(b).abs() < 1e-14);
    }

    #[test]
    fn arithmetic() {
        let a = RealVect::new(1.0, 2.0, 3.0);
        assert_eq!((a + a) / 2.0, a);
        assert_eq!(a - a, RealVect::ZERO);
        assert_eq!(a * 0.0, RealVect::ZERO);
        assert_eq!((-a).linf(), 3.0);
        assert_eq!(a.hadamard(a), RealVect::new(1.0, 4.0, 9.0));
    }
}
