//! Index-space geometry for block-structured adaptive mesh refinement.
//!
//! This crate is the lowest layer of the CRoCCo-rs stack. It provides the
//! integer index-space vocabulary that the AMReX library supplies to CRoCCo in
//! the paper this repository reproduces:
//!
//! * [`IntVect`] — a point in the 3-D integer index space,
//! * [`RealVect`] — a point in physical space,
//! * [`IndexBox`] — a logically rectangular region of cells (AMReX `Box`),
//! * [`ProblemDomain`] — the coarse-level index box plus periodicity,
//! * [`morton`] — Z-order (Morton) space-filling-curve codes used by the
//!   default AMReX load balancer,
//! * [`mapping`] — curvilinear grid mappings from computational `(i, j, k)`
//!   space to physical `(x, y, z)` space (uniform, stretched, compression
//!   ramp), which back the curvilinear solver capability that is the paper's
//!   headline extension of AMReX,
//! * [`decompose`] — chopping of large boxes into patches that honour the
//!   blocking factor and maximum grid size input-deck parameters.
//!
//! Everything here is pure index arithmetic: no field data, no parallelism.

// Enforced by `cargo xtask lint`: unsafe code is confined to the allowlisted
// fab modules (multifab, view, overlap) — none of it lives here.
#![forbid(unsafe_code)]

pub mod decompose;
pub mod domain;
pub mod ibox;
pub mod intvect;
pub mod mapping;
pub mod morton;
pub mod realvect;

pub use domain::ProblemDomain;
pub use ibox::IndexBox;
pub use intvect::IntVect;
pub use mapping::{
    CylinderShellMapping, GridMapping, RampMapping, StretchedMapping, UniformMapping,
};
pub use realvect::RealVect;

/// Number of spatial dimensions. CRoCCo solves the flow in 3-D (the DMR case
/// is extruded along the span), so this is fixed at 3.
pub const SPACEDIM: usize = 3;
