//! Z-order (Morton) space-filling-curve codes.
//!
//! AMReX's default load balancer orders patches along a Z-Morton space-filling
//! curve before slicing the curve into per-rank segments (§III-B of the
//! paper). This module provides the 3-D Morton encoding used for that
//! ordering.

use crate::intvect::IntVect;

/// Number of bits encoded per direction. 21 bits × 3 directions = 63 bits,
/// which comfortably covers the largest Summit weak-scaling domain
/// (≈ 41,000 cells per direction needs only 16 bits).
pub const BITS_PER_DIM: u32 = 21;

/// Spreads the low 21 bits of `v` so that there are two zero bits between
/// consecutive payload bits (the classic "part-1-by-2" bit trick).
#[inline]
fn part1by2(v: u64) -> u64 {
    let mut x = v & 0x1f_ffff; // keep 21 bits
    x = (x | (x << 32)) & 0x1f00000000ffff;
    x = (x | (x << 16)) & 0x1f0000ff0000ff;
    x = (x | (x << 8)) & 0x100f00f00f00f00f;
    x = (x | (x << 4)) & 0x10c30c30c30c30c3;
    x = (x | (x << 2)) & 0x1249249249249249;
    x
}

/// Inverse of [`part1by2`]: compacts every third bit into the low 21 bits.
#[inline]
fn compact1by2(v: u64) -> u64 {
    let mut x = v & 0x1249249249249249;
    x = (x | (x >> 2)) & 0x10c30c30c30c30c3;
    x = (x | (x >> 4)) & 0x100f00f00f00f00f;
    x = (x | (x >> 8)) & 0x1f0000ff0000ff;
    x = (x | (x >> 16)) & 0x1f00000000ffff;
    x = (x | (x >> 32)) & 0x1f_ffff;
    x
}

/// Encodes non-negative coordinates into a 63-bit Morton code.
///
/// # Panics
/// Panics (in debug builds) if any coordinate is negative or needs more than
/// [`BITS_PER_DIM`] bits.
#[inline]
pub fn encode(p: IntVect) -> u64 {
    debug_assert!(
        (0..3).all(|d| p[d] >= 0 && (p[d] as u64) < (1 << BITS_PER_DIM)),
        "Morton encode out of range: {p:?}"
    );
    part1by2(p[0] as u64) | (part1by2(p[1] as u64) << 1) | (part1by2(p[2] as u64) << 2)
}

/// Decodes a Morton code back into coordinates.
#[inline]
pub fn decode(code: u64) -> IntVect {
    IntVect::new(
        compact1by2(code) as i64,
        compact1by2(code >> 1) as i64,
        compact1by2(code >> 2) as i64,
    )
}

/// Morton key of a box, computed from its low corner. Boxes produced by the
/// regridder are blocking-factor aligned, so the low corner is a faithful
/// curve position. Negative corners (possible for ghost-extended metadata)
/// are clamped to zero, preserving a total order good enough for balancing.
pub fn box_key(lo: IntVect) -> u64 {
    encode(lo.max(IntVect::ZERO))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_small() {
        for i in 0..8 {
            for j in 0..8 {
                for k in 0..8 {
                    let p = IntVect::new(i, j, k);
                    assert_eq!(decode(encode(p)), p);
                }
            }
        }
    }

    #[test]
    fn roundtrip_large() {
        let p = IntVect::new((1 << 21) - 1, 123_456, 1_048_575);
        assert_eq!(decode(encode(p)), p);
    }

    #[test]
    fn encode_is_monotone_along_axes() {
        // Along each axis the Morton code must strictly increase.
        for d in 0..3 {
            let mut prev = encode(IntVect::ZERO);
            for v in 1..100 {
                let code = encode(IntVect::unit(d) * v);
                assert!(code > prev);
                prev = code;
            }
        }
    }

    #[test]
    fn z_order_first_octant_cells() {
        // The canonical Z traversal of the 2x2x2 cube.
        let order: Vec<_> = (0..8).map(decode).collect();
        assert_eq!(order[0], IntVect::new(0, 0, 0));
        assert_eq!(order[1], IntVect::new(1, 0, 0));
        assert_eq!(order[2], IntVect::new(0, 1, 0));
        assert_eq!(order[3], IntVect::new(1, 1, 0));
        assert_eq!(order[4], IntVect::new(0, 0, 1));
        assert_eq!(order[7], IntVect::new(1, 1, 1));
    }

    #[test]
    fn locality_beats_lexicographic_on_average() {
        // Consecutive Morton codes should be spatially close: the mean L1
        // distance between consecutive decoded points over a dyadic cube is
        // far below the cube edge length.
        let n = 4096; // 16^3
        let mut total = 0;
        for c in 1..n {
            let a = decode(c - 1);
            let b = decode(c);
            total += (a[0] - b[0]).abs() + (a[1] - b[1]).abs() + (a[2] - b[2]).abs();
        }
        let mean = total as f64 / (n - 1) as f64;
        assert!(mean < 3.0, "mean step {mean} too large for a Z curve");
    }
}
