//! Logically rectangular index-space regions (AMReX `Box`).

use crate::intvect::IntVect;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A cell-centered, logically rectangular region of index space, described by
/// inclusive lower and upper corners.
///
/// This is the AMReX `Box` concept the paper builds on: every AMR patch, every
/// ghost region, and every communication intersection in CRoCCo is an
/// `IndexBox`. An `IndexBox` with any `hi` component strictly below the
/// matching `lo` component is *empty*.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IndexBox {
    lo: IntVect,
    hi: IntVect,
}

impl IndexBox {
    /// Creates a box from inclusive corners. Empty boxes are permitted.
    #[inline]
    pub const fn new(lo: IntVect, hi: IntVect) -> Self {
        IndexBox { lo, hi }
    }

    /// Creates the box `[0, n) × [0, m) × [0, p)` from per-direction extents.
    ///
    /// # Panics
    /// Panics if any extent is zero or negative.
    pub fn from_extents(n: i64, m: i64, p: i64) -> Self {
        assert!(n > 0 && m > 0 && p > 0, "extents must be positive");
        IndexBox::new(IntVect::ZERO, IntVect::new(n - 1, m - 1, p - 1))
    }

    /// A canonical empty box.
    pub const EMPTY: IndexBox = IndexBox {
        lo: IntVect([0, 0, 0]),
        hi: IntVect([-1, -1, -1]),
    };

    /// Inclusive lower corner.
    #[inline]
    pub fn lo(&self) -> IntVect {
        self.lo
    }

    /// Inclusive upper corner.
    #[inline]
    pub fn hi(&self) -> IntVect {
        self.hi
    }

    /// `true` if the box contains no cells.
    #[inline]
    pub fn is_empty(&self) -> bool {
        !(self.lo.all_le(self.hi))
    }

    /// Number of cells along each direction (zero if empty in that direction).
    #[inline]
    pub fn size(&self) -> IntVect {
        IntVect([
            (self.hi[0] - self.lo[0] + 1).max(0),
            (self.hi[1] - self.lo[1] + 1).max(0),
            (self.hi[2] - self.lo[2] + 1).max(0),
        ])
    }

    /// Extent along one direction.
    #[inline]
    pub fn length(&self, dir: usize) -> i64 {
        (self.hi[dir] - self.lo[dir] + 1).max(0)
    }

    /// Total number of cells. Uses 128-bit arithmetic internally so the
    /// 4.19e10-point Summit configurations are exactly representable.
    #[inline]
    pub fn num_points(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            let s = self.size();
            (s.prod()) as u64
        }
    }

    /// `true` if `p` lies inside the box.
    #[inline]
    pub fn contains(&self, p: IntVect) -> bool {
        self.lo.all_le(p) && p.all_le(self.hi)
    }

    /// `true` if `other` lies entirely inside `self` (empty boxes are
    /// contained in everything).
    #[inline]
    pub fn contains_box(&self, other: &IndexBox) -> bool {
        other.is_empty() || (self.lo.all_le(other.lo) && other.hi.all_le(self.hi))
    }

    /// `true` if the two boxes share at least one cell.
    #[inline]
    pub fn intersects(&self, other: &IndexBox) -> bool {
        !self.intersection(other).is_empty()
    }

    /// The (possibly empty) intersection of two boxes.
    #[inline]
    pub fn intersection(&self, other: &IndexBox) -> IndexBox {
        IndexBox::new(self.lo.max(other.lo), self.hi.min(other.hi))
    }

    /// The smallest box containing both operands (the "bounding hull").
    #[inline]
    pub fn hull(&self, other: &IndexBox) -> IndexBox {
        if self.is_empty() {
            *other
        } else if other.is_empty() {
            *self
        } else {
            IndexBox::new(self.lo.min(other.lo), self.hi.max(other.hi))
        }
    }

    /// Grows the box by `n` cells on every face (negative `n` shrinks).
    #[inline]
    pub fn grow(&self, n: i64) -> IndexBox {
        self.grow_vect(IntVect::splat(n))
    }

    /// Grows by a per-direction number of cells on both faces of each direction.
    #[inline]
    pub fn grow_vect(&self, n: IntVect) -> IndexBox {
        IndexBox::new(self.lo - n, self.hi + n)
    }

    /// Grows only the low face of direction `dir` by `n` cells.
    #[inline]
    pub fn grow_lo(&self, dir: usize, n: i64) -> IndexBox {
        let mut lo = self.lo;
        lo[dir] -= n;
        IndexBox::new(lo, self.hi)
    }

    /// Grows only the high face of direction `dir` by `n` cells.
    #[inline]
    pub fn grow_hi(&self, dir: usize, n: i64) -> IndexBox {
        let mut hi = self.hi;
        hi[dir] += n;
        IndexBox::new(self.lo, hi)
    }

    /// Translates the box by `shift`.
    #[inline]
    pub fn shift(&self, shift: IntVect) -> IndexBox {
        IndexBox::new(self.lo + shift, self.hi + shift)
    }

    /// Refines the box by `ratio`: each cell becomes a `ratio`-sized block of
    /// fine cells, exactly as AMReX `Box::refine`.
    #[inline]
    pub fn refine(&self, ratio: IntVect) -> IndexBox {
        if self.is_empty() {
            return *self;
        }
        IndexBox::new(
            self.lo.refine(ratio),
            (self.hi + IntVect::ONE).refine(ratio) - IntVect::ONE,
        )
    }

    /// Coarsens the box by `ratio` (covering coarsen: the result contains
    /// every coarse cell touched by any fine cell of `self`).
    #[inline]
    pub fn coarsen(&self, ratio: IntVect) -> IndexBox {
        if self.is_empty() {
            return *self;
        }
        IndexBox::new(self.lo.coarsen(ratio), self.hi.coarsen(ratio))
    }

    /// `true` if the box can be coarsened by `ratio` and refined back to give
    /// exactly itself (i.e. it is aligned to `ratio`-sized tiles).
    pub fn is_coarsenable(&self, ratio: IntVect) -> bool {
        !self.is_empty() && self.coarsen(ratio).refine(ratio) == *self
    }

    /// `true` if the box's corners and extents are multiples of
    /// `blocking_factor` in every direction — the AMReX blocking-factor
    /// constraint discussed in §III-B of the paper.
    pub fn is_blocked(&self, blocking_factor: i64) -> bool {
        self.is_coarsenable(IntVect::splat(blocking_factor))
    }

    /// Splits the box into two at index `pos` along direction `dir`. The
    /// first part keeps cells `< pos`, the second keeps cells `>= pos`.
    ///
    /// # Panics
    /// Panics if `pos` is not strictly inside the box along `dir`.
    pub fn chop(&self, dir: usize, pos: i64) -> (IndexBox, IndexBox) {
        assert!(
            self.lo[dir] < pos && pos <= self.hi[dir],
            "chop position {pos} outside box interior along dir {dir}"
        );
        let mut left_hi = self.hi;
        left_hi[dir] = pos - 1;
        let mut right_lo = self.lo;
        right_lo[dir] = pos;
        (
            IndexBox::new(self.lo, left_hi),
            IndexBox::new(right_lo, self.hi),
        )
    }

    /// Iterates over every cell of the box in Fortran order (x fastest), which
    /// matches the memory layout of the field containers in `crocco-fab`.
    pub fn cells(&self) -> CellIter {
        CellIter {
            b: *self,
            cur: self.lo,
            done: self.is_empty(),
        }
    }

    /// The faces of this box as boxes of thickness `width` just *outside* the
    /// box, one per (direction, side) pair. Used to build ghost regions.
    pub fn boundary_shells(&self, width: i64) -> Vec<(usize, Side, IndexBox)> {
        let mut out = Vec::with_capacity(6);
        for dir in 0..3 {
            let mut lo = self.lo;
            let mut hi = self.hi;
            hi[dir] = self.lo[dir] - 1;
            lo[dir] = self.lo[dir] - width;
            out.push((dir, Side::Lo, IndexBox::new(lo, hi)));

            let mut lo = self.lo;
            let mut hi = self.hi;
            lo[dir] = self.hi[dir] + 1;
            hi[dir] = self.hi[dir] + width;
            out.push((dir, Side::Hi, IndexBox::new(lo, hi)));
        }
        out
    }
}

/// Which side of a box face.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, Serialize, Deserialize)]
pub enum Side {
    /// The low-index side.
    Lo,
    /// The high-index side.
    Hi,
}

impl fmt::Debug for IndexBox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:?}..{:?}]", self.lo, self.hi)
    }
}

impl fmt::Display for IndexBox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Iterator over the cells of an [`IndexBox`] in Fortran (x-fastest) order.
pub struct CellIter {
    b: IndexBox,
    cur: IntVect,
    done: bool,
}

impl Iterator for CellIter {
    type Item = IntVect;

    fn next(&mut self) -> Option<IntVect> {
        if self.done {
            return None;
        }
        let out = self.cur;
        self.cur[0] += 1;
        if self.cur[0] > self.b.hi[0] {
            self.cur[0] = self.b.lo[0];
            self.cur[1] += 1;
            if self.cur[1] > self.b.hi[1] {
                self.cur[1] = self.b.lo[1];
                self.cur[2] += 1;
                if self.cur[2] > self.b.hi[2] {
                    self.done = true;
                }
            }
        }
        Some(out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // Cheap overestimate: full box size (exact at start of iteration).
        let n = self.b.num_points() as usize;
        (0, Some(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(lo: [i64; 3], hi: [i64; 3]) -> IndexBox {
        IndexBox::new(IntVect(lo), IntVect(hi))
    }

    #[test]
    fn sizes_and_emptiness() {
        let x = b([0, 0, 0], [3, 1, 0]);
        assert_eq!(x.num_points(), 8);
        assert_eq!(x.size(), IntVect::new(4, 2, 1));
        assert!(!x.is_empty());
        assert!(IndexBox::EMPTY.is_empty());
        assert_eq!(IndexBox::EMPTY.num_points(), 0);
    }

    #[test]
    fn intersection_basic() {
        let a = b([0, 0, 0], [7, 7, 7]);
        let c = b([4, 4, 4], [12, 12, 12]);
        let i = a.intersection(&c);
        assert_eq!(i, b([4, 4, 4], [7, 7, 7]));
        assert!(a.intersects(&c));
        let d = b([8, 0, 0], [9, 7, 7]);
        assert!(!a.intersects(&d));
        assert!(a.intersection(&d).is_empty());
    }

    #[test]
    fn hull_contains_both() {
        let a = b([0, 0, 0], [1, 1, 1]);
        let c = b([5, -3, 2], [6, -2, 3]);
        let h = a.hull(&c);
        assert!(h.contains_box(&a));
        assert!(h.contains_box(&c));
        assert_eq!(h, b([0, -3, 0], [6, 1, 3]));
    }

    #[test]
    fn grow_and_shrink() {
        let a = b([0, 0, 0], [3, 3, 3]);
        assert_eq!(a.grow(2), b([-2, -2, -2], [5, 5, 5]));
        assert_eq!(a.grow(2).grow(-2), a);
        assert_eq!(a.grow_lo(1, 3), b([0, -3, 0], [3, 3, 3]));
        assert_eq!(a.grow_hi(2, 1), b([0, 0, 0], [3, 3, 4]));
    }

    #[test]
    fn refine_coarsen_roundtrip() {
        let a = b([1, 2, 3], [4, 5, 6]);
        let r = IntVect::splat(2);
        let fine = a.refine(r);
        assert_eq!(fine, b([2, 4, 6], [9, 11, 13]));
        assert_eq!(fine.coarsen(r), a);
        assert!(fine.is_coarsenable(r));
        // A box not aligned to the ratio is not coarsenable.
        assert!(!b([1, 0, 0], [4, 1, 1]).is_coarsenable(r));
    }

    #[test]
    fn coarsen_covers_fine_cells_with_negative_indices() {
        let a = b([-3, -3, -3], [-1, -1, -1]);
        let c = a.coarsen(IntVect::splat(2));
        assert_eq!(c, b([-2, -2, -2], [-1, -1, -1]));
        // Every fine cell must map into the coarse box.
        for cell in a.cells() {
            assert!(c.contains(cell.coarsen(IntVect::splat(2))));
        }
    }

    #[test]
    fn chop_partitions_cells() {
        let a = b([0, 0, 0], [7, 3, 3]);
        let (l, r) = a.chop(0, 3);
        assert_eq!(l.num_points() + r.num_points(), a.num_points());
        assert_eq!(l, b([0, 0, 0], [2, 3, 3]));
        assert_eq!(r, b([3, 0, 0], [7, 3, 3]));
        assert!(!l.intersects(&r));
    }

    #[test]
    #[should_panic]
    fn chop_outside_interior_panics() {
        b([0, 0, 0], [7, 3, 3]).chop(0, 0);
    }

    #[test]
    fn cell_iteration_order_and_count() {
        let a = b([0, 0, 0], [1, 1, 1]);
        let cells: Vec<_> = a.cells().collect();
        assert_eq!(cells.len(), 8);
        assert_eq!(cells[0], IntVect::new(0, 0, 0));
        assert_eq!(cells[1], IntVect::new(1, 0, 0)); // x fastest
        assert_eq!(cells[2], IntVect::new(0, 1, 0));
        assert_eq!(cells[7], IntVect::new(1, 1, 1));
    }

    #[test]
    fn blocking_factor_check() {
        assert!(b([0, 0, 0], [7, 7, 7]).is_blocked(8));
        assert!(b([8, 16, 24], [15, 23, 31]).is_blocked(8));
        assert!(!b([0, 0, 0], [6, 7, 7]).is_blocked(8));
        assert!(!b([1, 0, 0], [8, 7, 7]).is_blocked(8));
    }

    #[test]
    fn boundary_shells_surround_box() {
        let a = b([0, 0, 0], [3, 3, 3]);
        let shells = a.boundary_shells(2);
        assert_eq!(shells.len(), 6);
        let total: u64 = shells.iter().map(|(_, _, s)| s.num_points()).sum();
        // 2-wide slabs on each face, 6 faces, no corners: 6 * (2*16) = 192.
        assert_eq!(total, 192);
        for (_, _, s) in &shells {
            assert!(!s.intersects(&a));
            assert!(a.grow(2).contains_box(s));
        }
    }
}
