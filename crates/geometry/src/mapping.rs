//! Curvilinear grid mappings.
//!
//! CRoCCo solves on generalized curvilinear grids: the physical domain
//! `(x, y, z)` is a smooth image of a rectangular computational domain
//! `(ξ, η, ζ)` (§II-A of the paper). Grids are *generated* from a mapping and
//! then stored in coordinate MultiFabs, exactly as the paper stores (rather
//! than recomputes) curvilinear coordinates.
//!
//! A [`GridMapping`] maps normalized computational coordinates in `[0, 1]³`
//! to physical space. Cell centers at index `(i, j, k)` on a level with
//! extents `(nx, ny, nz)` sit at `ξ = (i + ½)/nx`, etc.

use crate::realvect::RealVect;

/// A smooth mapping from the unit computational cube to physical space.
pub trait GridMapping: Send + Sync {
    /// Physical position of normalized computational coordinates
    /// `xi ∈ [0, 1]³` (evaluation outside the cube must extrapolate smoothly,
    /// since ghost-cell coordinates are generated through the same mapping).
    fn coords(&self, xi: RealVect) -> RealVect;

    /// A short human-readable name for reports.
    fn name(&self) -> &'static str;

    /// The Jacobian matrix `∂x_i/∂ξ_j` by central finite differences. Concrete
    /// mappings with closed forms may override this with the exact value.
    fn jacobian(&self, xi: RealVect) -> [[f64; 3]; 3] {
        let h = 1e-6;
        let mut j = [[0.0; 3]; 3];
        for dir in 0..3 {
            let mut p = xi;
            let mut m = xi;
            p[dir] += h;
            m[dir] -= h;
            let xp = self.coords(p);
            let xm = self.coords(m);
            for row in 0..3 {
                j[row][dir] = (xp[row] - xm[row]) / (2.0 * h);
            }
        }
        j
    }
}

/// Uniform Cartesian mapping onto a physical box — the degenerate case where
/// an analytical `x(i) = lo + i·dx` pull would suffice (§III-C).
#[derive(Clone, Copy, Debug)]
pub struct UniformMapping {
    /// Low physical corner.
    pub lo: RealVect,
    /// High physical corner.
    pub hi: RealVect,
}

impl UniformMapping {
    /// Creates a mapping onto `[lo, hi]`.
    pub fn new(lo: RealVect, hi: RealVect) -> Self {
        UniformMapping { lo, hi }
    }

    /// The unit cube.
    pub fn unit() -> Self {
        UniformMapping::new(RealVect::ZERO, RealVect::splat(1.0))
    }
}

impl GridMapping for UniformMapping {
    fn coords(&self, xi: RealVect) -> RealVect {
        self.lo + (self.hi - self.lo).hadamard(xi)
    }

    fn name(&self) -> &'static str {
        "uniform"
    }

    fn jacobian(&self, _xi: RealVect) -> [[f64; 3]; 3] {
        let d = self.hi - self.lo;
        [
            [d[0], 0.0, 0.0],
            [0.0, d[1], 0.0],
            [0.0, 0.0, d[2]],
        ]
    }
}

/// Wall-normal tanh stretching: clusters points near the `η = 0` wall, the
/// standard boundary-layer grid used in hypersonic DNS/LES.
///
/// `y(η) = H · tanh(β·η) / tanh(β)` is inverted here — we cluster near the
/// wall with `y(η) = H · sinh(β·η) / sinh(β)` so spacing grows away from it.
#[derive(Clone, Copy, Debug)]
pub struct StretchedMapping {
    /// Low physical corner.
    pub lo: RealVect,
    /// High physical corner.
    pub hi: RealVect,
    /// Stretching strength (`β → 0` recovers uniform spacing).
    pub beta: f64,
    /// Direction in which to stretch (usually 1 = wall-normal).
    pub dir: usize,
}

impl StretchedMapping {
    /// Creates a stretched mapping; `beta` must be positive.
    pub fn new(lo: RealVect, hi: RealVect, beta: f64, dir: usize) -> Self {
        assert!(beta > 0.0, "stretching beta must be positive");
        assert!(dir < 3);
        StretchedMapping { lo, hi, beta, dir }
    }
}

impl GridMapping for StretchedMapping {
    fn coords(&self, xi: RealVect) -> RealVect {
        let mut s = xi;
        s[self.dir] = (self.beta * xi[self.dir]).sinh() / self.beta.sinh();
        self.lo + (self.hi - self.lo).hadamard(s)
    }

    fn name(&self) -> &'static str {
        "tanh-stretched"
    }
}

/// Compression-corner (ramp) mapping: below a corner station the lower wall is
/// flat; beyond it the wall rises at `ramp_angle`. The interior grid is
/// sheared smoothly between the wall and the flat top boundary. This is the
/// geometry class (compression corners, re-entry vehicles) that motivates
/// curvilinear AMR in §III-C, and the 30° ramp of the DMR test case.
#[derive(Clone, Copy, Debug)]
pub struct RampMapping {
    /// Physical length of the domain in x.
    pub length: f64,
    /// Physical height of the domain at the inflow.
    pub height: f64,
    /// Physical width (span, z).
    pub width: f64,
    /// x-station of the corner.
    pub corner_x: f64,
    /// Ramp angle in radians.
    pub ramp_angle: f64,
}

impl RampMapping {
    /// The paper's 30° inviscid compression ramp, 2:1 x:z aspect
    /// (§V-B/§V-C: "a physical grid aspect ratio of 2:1 in x and z"). The
    /// channel is tall enough that the ramp never pinches the grid shut.
    pub fn paper_dmr() -> Self {
        RampMapping {
            length: 4.0,
            height: 2.0,
            width: 2.0,
            corner_x: 1.0,
            ramp_angle: 30f64.to_radians(),
        }
    }

    /// Wall height at physical station `x`.
    pub fn wall_y(&self, x: f64) -> f64 {
        if x <= self.corner_x {
            0.0
        } else {
            (x - self.corner_x) * self.ramp_angle.tan()
        }
    }
}

impl GridMapping for RampMapping {
    fn coords(&self, xi: RealVect) -> RealVect {
        let x = xi[0] * self.length;
        let yw = self.wall_y(x);
        // Shear the column between the wall and the fixed top boundary.
        let y = yw + xi[1] * (self.height - yw);
        let z = xi[2] * self.width;
        RealVect::new(x, y, z)
    }

    fn name(&self) -> &'static str {
        "compression-ramp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_maps_corners() {
        let m = UniformMapping::new(RealVect::new(-1.0, 0.0, 2.0), RealVect::new(1.0, 3.0, 4.0));
        assert_eq!(m.coords(RealVect::ZERO), RealVect::new(-1.0, 0.0, 2.0));
        assert_eq!(m.coords(RealVect::splat(1.0)), RealVect::new(1.0, 3.0, 4.0));
        let mid = m.coords(RealVect::splat(0.5));
        assert_eq!(mid, RealVect::new(0.0, 1.5, 3.0));
    }

    #[test]
    fn uniform_jacobian_matches_fd() {
        let m = UniformMapping::new(RealVect::new(-1.0, 0.0, 2.0), RealVect::new(1.0, 3.0, 4.0));
        let exact = m.jacobian(RealVect::splat(0.3));
        // Compare against the default FD implementation via a trait object
        // that cannot see the override.
        struct Fd<'a>(&'a UniformMapping);
        impl GridMapping for Fd<'_> {
            fn coords(&self, xi: RealVect) -> RealVect {
                self.0.coords(xi)
            }
            fn name(&self) -> &'static str {
                "fd"
            }
        }
        let fd = Fd(&m).jacobian(RealVect::splat(0.3));
        for r in 0..3 {
            for c in 0..3 {
                assert!((exact[r][c] - fd[r][c]).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn stretching_clusters_near_wall() {
        let m = StretchedMapping::new(RealVect::ZERO, RealVect::splat(1.0), 3.0, 1);
        let y0 = m.coords(RealVect::new(0.0, 0.1, 0.0))[1];
        let y9 = m.coords(RealVect::new(0.0, 1.0, 0.0))[1]
            - m.coords(RealVect::new(0.0, 0.9, 0.0))[1];
        assert!(y0 < 0.1, "first spacing should shrink near the wall");
        assert!(y9 > 0.1, "last spacing should grow away from the wall");
        // Endpoints preserved.
        assert!((m.coords(RealVect::new(0.0, 1.0, 0.0))[1] - 1.0).abs() < 1e-14);
    }

    #[test]
    fn ramp_wall_rises_beyond_corner() {
        let m = RampMapping::paper_dmr();
        assert_eq!(m.wall_y(0.0), 0.0);
        assert_eq!(m.wall_y(m.corner_x), 0.0);
        let dy = m.wall_y(m.corner_x + 1.0);
        assert!((dy - 30f64.to_radians().tan()).abs() < 1e-14);
        // Grid stays inside the channel: wall <= y <= height.
        for &eta in &[0.0, 0.25, 0.5, 1.0] {
            for &xi in &[0.0, 0.3, 0.7, 1.0] {
                let p = m.coords(RealVect::new(xi, eta, 0.0));
                assert!(p[1] >= m.wall_y(p[0]) - 1e-12);
                assert!(p[1] <= m.height + 1e-12);
            }
        }
    }

    #[test]
    fn ramp_jacobian_is_nondegenerate() {
        let m = RampMapping::paper_dmr();
        for &xi in &[0.1, 0.5, 0.9] {
            let j = m.jacobian(RealVect::new(xi, 0.5, 0.5));
            let det = j[0][0] * (j[1][1] * j[2][2] - j[1][2] * j[2][1])
                - j[0][1] * (j[1][0] * j[2][2] - j[1][2] * j[2][0])
                + j[0][2] * (j[1][0] * j[2][1] - j[1][1] * j[2][0]);
            assert!(det > 0.0, "mapping must preserve orientation, det={det}");
        }
    }
}

/// Cylindrical-shell ("blunt body") mapping: `ξ` wraps an arc around a
/// cylinder of radius `r_inner`, `η` is wall-normal out to `r_outer`, `ζ` is
/// the axis. This is the re-entry-vehicle grid class §III-C lists among the
/// motivations for curvilinear AMR ("compression corners, re-entry vehicles,
/// and other complex geometries").
#[derive(Clone, Copy, Debug)]
pub struct CylinderShellMapping {
    /// Inner (body) radius.
    pub r_inner: f64,
    /// Outer (far-field) radius.
    pub r_outer: f64,
    /// Arc start angle (radians).
    pub theta0: f64,
    /// Arc end angle (radians).
    pub theta1: f64,
    /// Axial length.
    pub length: f64,
}

impl CylinderShellMapping {
    /// A forward-facing half-shell: 180° arc from −90° to +90°.
    pub fn half_shell(r_inner: f64, r_outer: f64, length: f64) -> Self {
        assert!(r_outer > r_inner && r_inner > 0.0);
        CylinderShellMapping {
            r_inner,
            r_outer,
            theta0: -std::f64::consts::FRAC_PI_2,
            theta1: std::f64::consts::FRAC_PI_2,
            length,
        }
    }
}

impl GridMapping for CylinderShellMapping {
    fn coords(&self, xi: RealVect) -> RealVect {
        // θ decreases with ξ so the (ξ, η, ζ) frame stays right-handed
        // (positive Jacobian), as the metric computation requires.
        let theta = self.theta1 - (self.theta1 - self.theta0) * xi[0];
        let r = self.r_inner + (self.r_outer - self.r_inner) * xi[1];
        RealVect::new(r * theta.cos(), r * theta.sin(), self.length * xi[2])
    }

    fn name(&self) -> &'static str {
        "cylinder-shell"
    }
}

#[cfg(test)]
mod cylinder_tests {
    use super::*;

    #[test]
    fn shell_respects_radii_and_arc() {
        let m = CylinderShellMapping::half_shell(1.0, 3.0, 2.0);
        // Wall at eta=0 sits on the inner radius for any arc position.
        for &s in &[0.0, 0.25, 0.5, 1.0] {
            let p = m.coords(RealVect::new(s, 0.0, 0.0));
            let r = (p[0] * p[0] + p[1] * p[1]).sqrt();
            assert!((r - 1.0).abs() < 1e-13, "wall radius {r}");
        }
        // Far field at eta=1 sits on the outer radius.
        let p = m.coords(RealVect::new(0.5, 1.0, 0.5));
        let r = (p[0] * p[0] + p[1] * p[1]).sqrt();
        assert!((r - 3.0).abs() < 1e-13);
        assert!((p[2] - 1.0).abs() < 1e-13);
    }

    #[test]
    fn shell_jacobian_is_positive_and_r_scaled() {
        // det(∂x/∂ξ) = (Δθ)·(Δr)·L·r: grows linearly with radius.
        let m = CylinderShellMapping::half_shell(1.0, 3.0, 2.0);
        let j_in = m.jacobian(RealVect::new(0.5, 0.05, 0.5));
        let j_out = m.jacobian(RealVect::new(0.5, 0.95, 0.5));
        let det = |j: [[f64; 3]; 3]| {
            j[0][0] * (j[1][1] * j[2][2] - j[1][2] * j[2][1])
                - j[0][1] * (j[1][0] * j[2][2] - j[1][2] * j[2][0])
                + j[0][2] * (j[1][0] * j[2][1] - j[1][1] * j[2][0])
        };
        let d_in = det(j_in);
        let d_out = det(j_out);
        assert!(d_in > 0.0 && d_out > 0.0);
        // r at eta=0.05 is 1.1, at 0.95 is 2.9: ratio ≈ 2.64.
        let ratio = d_out / d_in;
        assert!((ratio - 2.9 / 1.1).abs() < 0.05, "det ratio {ratio}");
    }

    #[test]
    fn orthogonal_grid_has_zero_skew_in_polar_frame() {
        // The mapping is orthogonal (polar): tangent vectors along xi and
        // eta are perpendicular everywhere.
        let m = CylinderShellMapping::half_shell(0.5, 2.0, 1.0);
        for &(s, e) in &[(0.2, 0.3), (0.7, 0.8), (0.5, 0.5)] {
            let j = m.jacobian(RealVect::new(s, e, 0.5));
            let dot = j[0][0] * j[0][1] + j[1][0] * j[1][1] + j[2][0] * j[2][1];
            assert!(dot.abs() < 1e-6, "non-orthogonal: {dot}");
        }
    }
}
