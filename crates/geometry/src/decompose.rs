//! Decomposition of boxes into AMR patches.
//!
//! AMReX controls how the domain is divided with two input-deck parameters
//! (§III-B of the paper): the *blocking factor* — every patch corner and
//! extent must be a multiple of it — and the *maximum grid size* — no patch
//! may be longer than it in any direction. The paper sets the blocking factor
//! to 8 (the WENO ghost requirement) and max grid size to 128.

use crate::ibox::IndexBox;
use crate::intvect::IntVect;

/// Patch-generation constraints (the AMReX input-deck knobs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChopParams {
    /// Every box corner/extent must be a multiple of this (per direction).
    pub blocking_factor: i64,
    /// No box may exceed this extent in any direction.
    pub max_grid_size: i64,
}

impl ChopParams {
    /// The paper's hand-tuned values: blocking factor 8, max grid size 128.
    pub const PAPER: ChopParams = ChopParams {
        blocking_factor: 8,
        max_grid_size: 128,
    };

    /// Creates parameters, validating that `max_grid_size` is a positive
    /// multiple of `blocking_factor`.
    pub fn new(blocking_factor: i64, max_grid_size: i64) -> Self {
        assert!(blocking_factor > 0, "blocking factor must be positive");
        assert!(
            max_grid_size > 0 && max_grid_size % blocking_factor == 0,
            "max grid size must be a positive multiple of the blocking factor"
        );
        ChopParams {
            blocking_factor,
            max_grid_size,
        }
    }
}

/// Recursively chops `bx` into boxes no longer than `max_grid_size` in any
/// direction, cutting at blocking-factor-aligned positions.
///
/// The input box must itself be blocking-factor aligned (which regridded
/// boxes always are); this is asserted.
pub fn chop_to_max_size(bx: IndexBox, params: ChopParams) -> Vec<IndexBox> {
    assert!(
        bx.is_blocked(params.blocking_factor),
        "box {bx:?} is not aligned to blocking factor {}",
        params.blocking_factor
    );
    let mut out = Vec::new();
    let mut stack = vec![bx];
    while let Some(b) = stack.pop() {
        let size = b.size();
        let dir = size.argmax();
        if size[dir] <= params.max_grid_size {
            out.push(b);
            continue;
        }
        // Cut as close to the midpoint as blocking allows.
        let half_tiles = (size[dir] / params.blocking_factor) / 2;
        let pos = b.lo()[dir] + half_tiles.max(1) * params.blocking_factor;
        let (l, r) = b.chop(dir, pos);
        stack.push(l);
        stack.push(r);
    }
    out
}

/// Decomposes a whole level domain into a patch list, as AMReX does when a
/// level is created without tagging (the coarsest level, or an AMR-disabled
/// run).
pub fn decompose_domain(domain: IndexBox, params: ChopParams) -> Vec<IndexBox> {
    let mut boxes = chop_to_max_size(domain, params);
    // Deterministic order: sort by low corner for reproducible distribution.
    boxes.sort_by_key(|b| (b.lo()[2], b.lo()[1], b.lo()[0]));
    boxes
}

/// Grows a box outward until it is aligned to the blocking factor (used when
/// converting tagged regions into patch candidates).
pub fn align_to_blocking(bx: IndexBox, blocking_factor: i64) -> IndexBox {
    if bx.is_empty() {
        return bx;
    }
    let bf = IntVect::splat(blocking_factor);
    bx.coarsen(bf).refine(bf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_params_are_consistent() {
        let p = ChopParams::PAPER;
        assert_eq!(p.blocking_factor, 8);
        assert_eq!(p.max_grid_size, 128);
        // Constructor accepts them.
        let q = ChopParams::new(8, 128);
        assert_eq!(p, q);
    }

    #[test]
    #[should_panic]
    fn max_size_must_be_multiple_of_blocking() {
        ChopParams::new(8, 100);
    }

    #[test]
    fn chop_covers_domain_exactly() {
        let params = ChopParams::new(8, 32);
        let domain = IndexBox::from_extents(128, 64, 32);
        let boxes = decompose_domain(domain, params);
        let total: u64 = boxes.iter().map(|b| b.num_points()).sum();
        assert_eq!(total, domain.num_points());
        for b in &boxes {
            assert!(domain.contains_box(b));
            assert!(b.is_blocked(params.blocking_factor));
            assert!(b.size().max_component() <= params.max_grid_size);
        }
        // No overlaps.
        for (i, a) in boxes.iter().enumerate() {
            for b in &boxes[i + 1..] {
                assert!(!a.intersects(b), "{a:?} overlaps {b:?}");
            }
        }
        assert_eq!(boxes.len(), 8); // 4 × 2 × 1 chunks
    }

    #[test]
    fn chop_handles_non_power_of_two_extents() {
        let params = ChopParams::new(4, 16);
        let domain = IndexBox::from_extents(40, 24, 12);
        let boxes = decompose_domain(domain, params);
        let total: u64 = boxes.iter().map(|b| b.num_points()).sum();
        assert_eq!(total, domain.num_points());
        for b in &boxes {
            assert!(b.size().max_component() <= 16);
            assert!(b.is_blocked(4));
        }
    }

    #[test]
    fn small_domain_is_a_single_box() {
        let params = ChopParams::new(8, 128);
        let domain = IndexBox::from_extents(64, 64, 64);
        assert_eq!(decompose_domain(domain, params), vec![domain]);
    }

    #[test]
    fn align_to_blocking_grows_outward() {
        let bx = IndexBox::new(IntVect::new(3, 9, -1), IntVect::new(10, 14, 5));
        let a = align_to_blocking(bx, 8);
        assert!(a.contains_box(&bx));
        assert!(a.is_blocked(8));
        assert_eq!(a.lo(), IntVect::new(0, 8, -8));
        assert_eq!(a.hi(), IntVect::new(15, 15, 7));
    }
}
