//! Integer index-space vectors.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A point in the 3-D integer index space (AMReX `IntVect`).
///
/// Components are `i64` so that coarse-domain extents for the largest Summit
/// weak-scaling case (4.19e10 equivalent grid points) and any shifted ghost
/// indices are representable without overflow anywhere in box arithmetic.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct IntVect(pub [i64; 3]);

impl IntVect {
    /// The zero vector.
    pub const ZERO: IntVect = IntVect([0, 0, 0]);
    /// The all-ones vector.
    pub const ONE: IntVect = IntVect([1, 1, 1]);

    /// Creates a vector from its three components.
    #[inline]
    pub const fn new(i: i64, j: i64, k: i64) -> Self {
        IntVect([i, j, k])
    }

    /// Creates a vector with all components equal to `v`.
    #[inline]
    pub const fn splat(v: i64) -> Self {
        IntVect([v, v, v])
    }

    /// Creates a unit vector along direction `dir` (0 = x, 1 = y, 2 = z).
    #[inline]
    pub fn unit(dir: usize) -> Self {
        let mut v = [0; 3];
        v[dir] = 1;
        IntVect(v)
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Self) -> Self {
        IntVect([
            self.0[0].min(other.0[0]),
            self.0[1].min(other.0[1]),
            self.0[2].min(other.0[2]),
        ])
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Self) -> Self {
        IntVect([
            self.0[0].max(other.0[0]),
            self.0[1].max(other.0[1]),
            self.0[2].max(other.0[2]),
        ])
    }

    /// `true` if every component of `self` is `<=` the matching component of `other`.
    #[inline]
    pub fn all_le(self, other: Self) -> bool {
        (0..3).all(|d| self.0[d] <= other.0[d])
    }

    /// `true` if every component of `self` is `<` the matching component of `other`.
    #[inline]
    pub fn all_lt(self, other: Self) -> bool {
        (0..3).all(|d| self.0[d] < other.0[d])
    }

    /// Floor division by a (positive) refinement ratio, component-wise.
    ///
    /// This is the coarsening map of AMReX: it rounds *toward negative
    /// infinity* so that cells with negative indices coarsen consistently.
    #[inline]
    pub fn coarsen(self, ratio: IntVect) -> Self {
        let cf = |x: i64, r: i64| {
            debug_assert!(r > 0);
            x.div_euclid(r)
        };
        IntVect([
            cf(self.0[0], ratio.0[0]),
            cf(self.0[1], ratio.0[1]),
            cf(self.0[2], ratio.0[2]),
        ])
    }

    /// Component-wise multiplication by a refinement ratio.
    #[inline]
    pub fn refine(self, ratio: IntVect) -> Self {
        IntVect([
            self.0[0] * ratio.0[0],
            self.0[1] * ratio.0[1],
            self.0[2] * ratio.0[2],
        ])
    }

    /// Sum of components.
    #[inline]
    pub fn sum(self) -> i64 {
        self.0[0] + self.0[1] + self.0[2]
    }

    /// Product of components (as i128 to avoid overflow on huge domains).
    #[inline]
    pub fn prod(self) -> i128 {
        self.0[0] as i128 * self.0[1] as i128 * self.0[2] as i128
    }

    /// Largest component value.
    #[inline]
    pub fn max_component(self) -> i64 {
        self.0[0].max(self.0[1]).max(self.0[2])
    }

    /// Smallest component value.
    #[inline]
    pub fn min_component(self) -> i64 {
        self.0[0].min(self.0[1]).min(self.0[2])
    }

    /// The direction (0, 1, or 2) holding the largest component; ties resolve
    /// to the lowest direction index.
    #[inline]
    pub fn argmax(self) -> usize {
        let mut best = 0;
        for d in 1..3 {
            if self.0[d] > self.0[best] {
                best = d;
            }
        }
        best
    }
}

impl fmt::Debug for IntVect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{},{})", self.0[0], self.0[1], self.0[2])
    }
}

impl fmt::Display for IntVect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl Index<usize> for IntVect {
    type Output = i64;
    #[inline]
    fn index(&self, d: usize) -> &i64 {
        &self.0[d]
    }
}

impl IndexMut<usize> for IntVect {
    #[inline]
    fn index_mut(&mut self, d: usize) -> &mut i64 {
        &mut self.0[d]
    }
}

impl Add for IntVect {
    type Output = IntVect;
    #[inline]
    fn add(self, rhs: IntVect) -> IntVect {
        IntVect([
            self.0[0] + rhs.0[0],
            self.0[1] + rhs.0[1],
            self.0[2] + rhs.0[2],
        ])
    }
}

impl AddAssign for IntVect {
    #[inline]
    fn add_assign(&mut self, rhs: IntVect) {
        *self = *self + rhs;
    }
}

impl Sub for IntVect {
    type Output = IntVect;
    #[inline]
    fn sub(self, rhs: IntVect) -> IntVect {
        IntVect([
            self.0[0] - rhs.0[0],
            self.0[1] - rhs.0[1],
            self.0[2] - rhs.0[2],
        ])
    }
}

impl SubAssign for IntVect {
    #[inline]
    fn sub_assign(&mut self, rhs: IntVect) {
        *self = *self - rhs;
    }
}

impl Neg for IntVect {
    type Output = IntVect;
    #[inline]
    fn neg(self) -> IntVect {
        IntVect([-self.0[0], -self.0[1], -self.0[2]])
    }
}

impl Mul<i64> for IntVect {
    type Output = IntVect;
    #[inline]
    fn mul(self, s: i64) -> IntVect {
        IntVect([self.0[0] * s, self.0[1] * s, self.0[2] * s])
    }
}

impl Div<i64> for IntVect {
    type Output = IntVect;
    /// Floor division by a positive scalar (consistent with [`IntVect::coarsen`]).
    #[inline]
    fn div(self, s: i64) -> IntVect {
        self.coarsen(IntVect::splat(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let a = IntVect::new(1, -2, 3);
        let b = IntVect::new(4, 5, -6);
        assert_eq!(a + b - b, a);
        assert_eq!(-(-a), a);
        assert_eq!(a * 2, IntVect::new(2, -4, 6));
    }

    #[test]
    fn coarsen_rounds_toward_negative_infinity() {
        let r = IntVect::splat(2);
        assert_eq!(IntVect::new(-1, 0, 1).coarsen(r), IntVect::new(-1, 0, 0));
        assert_eq!(IntVect::new(-2, 2, 3).coarsen(r), IntVect::new(-1, 1, 1));
        assert_eq!(IntVect::new(-3, -4, 5).coarsen(r), IntVect::new(-2, -2, 2));
    }

    #[test]
    fn refine_then_coarsen_is_identity() {
        let r = IntVect::new(2, 4, 2);
        for i in -5..5 {
            let v = IntVect::new(i, i + 1, i - 1);
            assert_eq!(v.refine(r).coarsen(r), v);
        }
    }

    #[test]
    fn min_max_component_queries() {
        let v = IntVect::new(3, 9, -1);
        assert_eq!(v.max_component(), 9);
        assert_eq!(v.min_component(), -1);
        assert_eq!(v.argmax(), 1);
        assert_eq!(v.sum(), 11);
        assert_eq!(v.prod(), -27);
    }

    #[test]
    fn unit_vectors() {
        assert_eq!(IntVect::unit(0), IntVect::new(1, 0, 0));
        assert_eq!(IntVect::unit(1), IntVect::new(0, 1, 0));
        assert_eq!(IntVect::unit(2), IntVect::new(0, 0, 1));
    }

    #[test]
    fn ordering_comparisons() {
        let a = IntVect::new(0, 5, 0);
        let b = IntVect::new(1, 5, 2);
        assert!(a.all_le(b));
        assert!(!a.all_lt(b)); // y components are equal
        assert!(IntVect::ZERO.all_lt(IntVect::ONE));
    }
}
