//! Property-based tests of the index-space algebra.

use crocco_geometry::decompose::{align_to_blocking, chop_to_max_size, ChopParams};
use crocco_geometry::{morton, IndexBox, IntVect};
use proptest::prelude::*;

fn arb_ivec(lo: i64, hi: i64) -> impl Strategy<Value = IntVect> {
    (lo..hi, lo..hi, lo..hi).prop_map(|(a, b, c)| IntVect::new(a, b, c))
}

fn arb_box() -> impl Strategy<Value = IndexBox> {
    (arb_ivec(-32, 32), arb_ivec(1, 24))
        .prop_map(|(lo, size)| IndexBox::new(lo, lo + size - IntVect::ONE))
}

proptest! {
    #[test]
    fn intersection_is_commutative_and_contained(a in arb_box(), b in arb_box()) {
        let ab = a.intersection(&b);
        let ba = b.intersection(&a);
        prop_assert_eq!(ab, ba);
        if !ab.is_empty() {
            prop_assert!(a.contains_box(&ab));
            prop_assert!(b.contains_box(&ab));
        }
    }

    #[test]
    fn hull_contains_both_operands(a in arb_box(), b in arb_box()) {
        let h = a.hull(&b);
        prop_assert!(h.contains_box(&a));
        prop_assert!(h.contains_box(&b));
        // Minimality along each axis: the hull's bounds coincide with one
        // of the operands' bounds.
        for d in 0..3 {
            prop_assert!(h.lo()[d] == a.lo()[d] || h.lo()[d] == b.lo()[d]);
            prop_assert!(h.hi()[d] == a.hi()[d] || h.hi()[d] == b.hi()[d]);
        }
    }

    #[test]
    fn refine_coarsen_roundtrip(b in arb_box(), r in 1i64..4) {
        let ratio = IntVect::splat(r);
        prop_assert_eq!(b.refine(ratio).coarsen(ratio), b);
        prop_assert_eq!(b.refine(ratio).num_points(), b.num_points() * (r * r * r) as u64);
    }

    #[test]
    fn coarsen_covers_every_fine_cell(b in arb_box(), r in 2i64..4) {
        let ratio = IntVect::splat(r);
        let c = b.coarsen(ratio);
        for p in b.cells().take(200) {
            prop_assert!(c.contains(p.coarsen(ratio)));
        }
    }

    #[test]
    fn grow_shrink_roundtrip(b in arb_box(), g in 0i64..5) {
        prop_assert_eq!(b.grow(g).grow(-g), b);
        prop_assert!(b.grow(g).contains_box(&b));
    }

    #[test]
    fn chop_partitions(b in arb_box()) {
        for dir in 0..3 {
            if b.length(dir) >= 2 {
                let pos = b.lo()[dir] + b.length(dir) / 2;
                let (l, r) = b.chop(dir, pos.max(b.lo()[dir] + 1));
                prop_assert_eq!(l.num_points() + r.num_points(), b.num_points());
                prop_assert!(!l.intersects(&r));
                prop_assert_eq!(l.hull(&r), b);
            }
        }
    }

    #[test]
    fn morton_roundtrip_and_axis_monotonicity(p in arb_ivec(0, 1 << 15)) {
        let code = morton::encode(p);
        prop_assert_eq!(morton::decode(code), p);
        for d in 0..3 {
            let q = p + IntVect::unit(d);
            prop_assert!(morton::encode(q) > code);
        }
    }

    #[test]
    fn alignment_grows_outward_and_is_blocked(b in arb_box(), bf in prop::sample::select(vec![2i64, 4, 8])) {
        let a = align_to_blocking(b, bf);
        prop_assert!(a.contains_box(&b));
        prop_assert!(a.is_blocked(bf));
    }

    #[test]
    fn chopping_preserves_cells_and_constraints(
        n in 1i64..6,
        m in 1i64..6,
        p in 1i64..6,
    ) {
        let bf = 4;
        let mg = 8;
        let domain = IndexBox::from_extents(n * bf, m * bf, p * bf);
        let boxes = chop_to_max_size(domain, ChopParams::new(bf, mg));
        let total: u64 = boxes.iter().map(|b| b.num_points()).sum();
        prop_assert_eq!(total, domain.num_points());
        for (i, a) in boxes.iter().enumerate() {
            prop_assert!(a.is_blocked(bf));
            prop_assert!(a.size().max_component() <= mg);
            for b in &boxes[i + 1..] {
                prop_assert!(!a.intersects(b));
            }
        }
    }
}
