//! On-node parallel patch loops.
//!
//! CRoCCo's intra-node parallelism sits below MPI (§IV-B). On the host we
//! provide it with a scoped fork-join over patch indices, implemented on
//! crossbeam scoped threads. The work unit is one patch (one MFIter
//! iteration), matching how AMReX launches one kernel per patch.

/// Runs `f(i)` for every `i in 0..n`, splitting the index range across up to
/// `threads` worker threads. `f` must be safe to call concurrently for
/// distinct indices (each patch touches disjoint data).
///
/// With `threads <= 1` or `n <= 1` the loop runs inline, which keeps small
/// test problems deterministic in profilers.
pub fn parallel_for<F>(n: usize, threads: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    if threads <= 1 || n <= 1 {
        for i in 0..n {
            f(i);
        }
        return;
    }
    let nworkers = threads.min(n);
    let next = std::sync::atomic::AtomicUsize::new(0);
    crossbeam::thread::scope(|s| {
        for _ in 0..nworkers {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                f(i);
            });
        }
    })
    .expect("parallel_for scope failed");
}

/// Runs `f(i, &mut items[i])` for every element, splitting the slice into
/// contiguous per-worker chunks. Used for patch loops that mutate one fab
/// per index (e.g. accumulating each patch's RHS).
pub fn parallel_for_each_mut<T, F>(items: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let nworkers = threads.min(n);
    let chunk = n.div_ceil(nworkers);
    crossbeam::thread::scope(|s| {
        for (w, slice) in items.chunks_mut(chunk).enumerate() {
            let f = &f;
            s.spawn(move |_| {
                for (j, item) in slice.iter_mut().enumerate() {
                    f(w * chunk + j, item);
                }
            });
        }
    })
    .expect("parallel_for_each_mut scope failed");
}

/// Runs `f(i, &mut a[i], &mut b[i])` over two equal-length slices, split into
/// matching contiguous per-worker chunks. Used for loops that walk two fab
/// lists in lockstep (the low-storage RK update reads/writes `dU[i]` and
/// `U[i]` together).
pub fn parallel_zip_mut<A, B, F>(a: &mut [A], b: &mut [B], threads: usize, f: F)
where
    A: Send,
    B: Send,
    F: Fn(usize, &mut A, &mut B) + Sync,
{
    assert_eq!(a.len(), b.len(), "parallel_zip_mut length mismatch");
    let n = a.len();
    if threads <= 1 || n <= 1 {
        for (i, (x, y)) in a.iter_mut().zip(b.iter_mut()).enumerate() {
            f(i, x, y);
        }
        return;
    }
    let nworkers = threads.min(n);
    let chunk = n.div_ceil(nworkers);
    crossbeam::thread::scope(|s| {
        for (w, (ca, cb)) in a.chunks_mut(chunk).zip(b.chunks_mut(chunk)).enumerate() {
            let f = &f;
            s.spawn(move |_| {
                for (j, (x, y)) in ca.iter_mut().zip(cb.iter_mut()).enumerate() {
                    f(w * chunk + j, x, y);
                }
            });
        }
    })
    .expect("parallel_zip_mut scope failed");
}

/// The default worker count: physical parallelism available to this process.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn covers_every_index_exactly_once() {
        let n = 1000;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        parallel_for(n, 8, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn serial_fallback_matches() {
        let sum = AtomicU64::new(0);
        parallel_for(100, 1, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn more_threads_than_work_is_fine() {
        let sum = AtomicU64::new(0);
        parallel_for(3, 64, |i| {
            sum.fetch_add(i as u64 + 1, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn zero_work_is_a_noop() {
        parallel_for(0, 4, |_| panic!("must not run"));
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn zip_mut_pairs_matching_indices() {
        for threads in [1, 3, 8] {
            let mut a: Vec<u64> = (0..100).collect();
            let mut b: Vec<u64> = (0..100).map(|i| 2 * i).collect();
            parallel_zip_mut(&mut a, &mut b, threads, |i, x, y| {
                *x += *y;
                *y = i as u64;
            });
            assert!(a.iter().enumerate().all(|(i, &x)| x == 3 * i as u64));
            assert!(b.iter().enumerate().all(|(i, &y)| y == i as u64));
        }
    }
}
