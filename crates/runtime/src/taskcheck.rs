//! Static schedule verification and dynamic race detection for the
//! task-graph runtime (DESIGN.md §4i).
//!
//! The RK-stage graphs built by the fab layer ([`crate::taskgraph`]) are
//! hand-wired: every happens-before edge exists because the author reasoned
//! about which task touches which cells. A single missing edge is a silent
//! data race that `fabcheck` (which guards *data*, not *schedules*) cannot
//! see. This module makes the reasoning checkable:
//!
//! * **Footprints** — each task may declare the `(fab id, component range,
//!   box)` regions it reads and writes ([`Footprint`]). The fab executors
//!   derive them from the same plan regions they already copy.
//! * **Static verifier** — [`ScheduleSpec::verify`] computes graph
//!   reachability (bitset transitive closure) and proves every conflicting
//!   task pair (W∩W or R∩W on geometrically overlapping regions) is ordered
//!   by a happens-before path. [`verify_cross_rank`] extends the proof to
//!   distributed skeletons: every receive event has exactly one matching
//!   send across ranks (tag-completeness — a lost wakeup is a hang), and the
//!   cross-rank union of the per-rank DAGs plus send→recv edges is acyclic.
//! * **Dynamic backstop** — behind the `taskcheck` cargo feature, the
//!   executor timestamps every task with its reachability set (a vector
//!   clock over the graph) and the fab views record the regions they
//!   *actually* touch; at graph completion, unordered overlapping accesses
//!   and under-declared footprints panic with both task labels and the
//!   offending box. This catches what the static pass must trust: that
//!   declared footprints are honest.
//!
//! Violations are typed ([`Violation`]) and name both tasks and the box, so
//! a broken skeleton fails loudly at first verification, not as a flaky
//! bitwise divergence three PRs later.

use crocco_geometry::IndexBox;
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// How a task touches a declared region.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Access {
    /// The task only reads the region.
    Read,
    /// The task writes (or reads and writes) the region.
    Write,
}

/// One declared region of a task's footprint: a fab identity, a component
/// range `[comp.0, comp.1)`, and a cell box.
///
/// Fab ids are opaque `u64`s — the static spec builders use symbolic ids
/// (space tag + patch index) while the dynamic detector keys on allocation
/// base pointers; the verifier only ever compares ids for equality.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Region {
    /// Opaque fab identity.
    pub fab: u64,
    /// Half-open component range.
    pub comp: (usize, usize),
    /// The cells touched.
    pub bx: IndexBox,
}

impl Region {
    /// `true` when the two regions touch a common (fab, component, cell).
    pub fn overlaps(&self, other: &Region) -> bool {
        self.fab == other.fab
            && self.comp.0 < other.comp.1
            && other.comp.0 < self.comp.1
            && self.bx.intersects(&other.bx)
    }
}

/// The declared data footprint of one task: a label for diagnostics plus
/// the regions it reads and writes.
#[derive(Clone, Debug, Default)]
pub struct Footprint {
    /// Human-readable task name (e.g. `halo[3]`), used in diagnostics.
    pub label: String,
    accesses: Vec<(Access, Region)>,
}

impl Footprint {
    /// An empty footprint carrying only a diagnostic label.
    pub fn new(label: impl Into<String>) -> Self {
        Footprint {
            label: label.into(),
            accesses: Vec::new(),
        }
    }

    /// Adds a read region (builder style). Empty boxes are dropped.
    pub fn reads(mut self, fab: u64, comp: (usize, usize), bx: IndexBox) -> Self {
        if !bx.is_empty() {
            self.accesses.push((Access::Read, Region { fab, comp, bx }));
        }
        self
    }

    /// Adds a written region (builder style). Empty boxes are dropped.
    pub fn writes(mut self, fab: u64, comp: (usize, usize), bx: IndexBox) -> Self {
        if !bx.is_empty() {
            self.accesses.push((Access::Write, Region { fab, comp, bx }));
        }
        self
    }

    /// The declared accesses.
    pub fn accesses(&self) -> &[(Access, Region)] {
        &self.accesses
    }

    /// `true` when no region is declared.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }
}

/// A typed schedule-soundness violation, naming the tasks and the offending
/// box — what [`ScheduleSpec::verify`] and [`verify_cross_rank`] report.
#[derive(Clone, Debug, PartialEq)]
pub enum Violation {
    /// Two tasks with conflicting declared regions (at least one write, on
    /// a geometric overlap) have no happens-before path between them.
    UnorderedConflict {
        /// Index of the earlier-inserted task.
        first: usize,
        /// Its diagnostic label.
        first_label: String,
        /// Index of the later-inserted task.
        second: usize,
        /// Its diagnostic label.
        second_label: String,
        /// The fab both regions belong to.
        fab: u64,
        /// The overlapping cells.
        bx: IndexBox,
    },
    /// A communication channel (tag) is not matched one-to-one across the
    /// ranks: a receive with no (or several) sends is a lost wakeup — the
    /// receiving rank hangs; a send with no receive is silent data loss.
    ChannelMismatch {
        /// The channel key (plan chunk index on the halo path).
        chan: u64,
        /// How many tasks send on this channel, across all ranks.
        sends: usize,
        /// How many events receive on this channel, across all ranks.
        recvs: usize,
    },
    /// The union of the per-rank DAGs and the matched send→recv edges
    /// contains a cycle: every listed task waits (transitively) on itself.
    CrossRankCycle {
        /// `(rank, task label)` of tasks on the cycle (capped for brevity).
        tasks: Vec<(usize, String)>,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::UnorderedConflict {
                first,
                first_label,
                second,
                second_label,
                fab,
                bx,
            } => write!(
                f,
                "unordered conflicting accesses: task {first} ('{first_label}') and task \
                 {second} ('{second_label}') both touch fab {fab:#x} over {bx:?} with no \
                 happens-before path"
            ),
            Violation::ChannelMismatch { chan, sends, recvs } => write!(
                f,
                "channel {chan} is not matched one-to-one: {sends} send(s), {recvs} \
                 receive(s) across the ranks"
            ),
            Violation::CrossRankCycle { tasks } => {
                write!(f, "cross-rank wait cycle through:")?;
                for (r, l) in tasks {
                    write!(f, " rank{r}:'{l}'")?;
                }
                Ok(())
            }
        }
    }
}

/// The outcome of one static verification pass.
#[derive(Clone, Debug, Default)]
pub struct Verification {
    /// Every violation found (empty ⇔ the schedule is proven race-free with
    /// respect to its declared footprints).
    pub violations: Vec<Violation>,
    /// Number of potentially-conflicting region pairs that were checked
    /// against the happens-before relation.
    pub pairs_checked: u64,
}

/// A pure description of a task graph — per-task dependency lists and
/// declared footprints — decoupled from the closures that execute it, so it
/// can be derived from a skeleton once, verified, and memoized.
///
/// Dependencies must point backwards (`dep < task index`), mirroring the
/// acyclic-by-construction invariant of [`crate::taskgraph::TaskGraph`].
#[derive(Clone, Debug, Default)]
pub struct ScheduleSpec {
    tasks: Vec<SpecTask>,
}

#[derive(Clone, Debug)]
struct SpecTask {
    deps: Vec<usize>,
    fp: Footprint,
}

impl ScheduleSpec {
    /// An empty spec.
    pub fn new() -> Self {
        ScheduleSpec::default()
    }

    /// Appends a task with the given dependencies and footprint; returns its
    /// index. Dependencies are sorted and deduplicated.
    ///
    /// # Panics
    /// Panics if any dependency does not reference an earlier task.
    pub fn add(&mut self, deps: &[usize], fp: Footprint) -> usize {
        let idx = self.tasks.len();
        let mut deps = deps.to_vec();
        deps.sort_unstable();
        deps.dedup();
        assert!(
            deps.last().is_none_or(|&d| d < idx),
            "spec dependencies must point backwards"
        );
        self.tasks.push(SpecTask { deps, fp });
        idx
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` when no task has been added.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The (sorted, deduplicated) dependency list of task `i`.
    pub fn deps(&self, i: usize) -> &[usize] {
        &self.tasks[i].deps
    }

    /// The diagnostic label of task `i`.
    pub fn label(&self, i: usize) -> &str {
        &self.tasks[i].fp.label
    }

    /// The declared footprint of task `i`.
    pub fn footprint(&self, i: usize) -> &Footprint {
        &self.tasks[i].fp
    }

    /// Proves (or refutes) that every pair of conflicting declared accesses
    /// is ordered by a happens-before path: the static core of taskcheck.
    ///
    /// Reachability is a bitset transitive closure (one pass, since deps
    /// point backwards); conflicts are enumerated per fab id so unrelated
    /// fabs never meet. Soundness and completeness against a brute-force
    /// oracle are property-tested below.
    pub fn verify(&self) -> Verification {
        let anc = ancestor_closure(&self.dep_lists());
        // Bucket every declared access by fab id.
        let mut by_fab: HashMap<u64, Vec<(usize, Access, Region)>> = HashMap::new();
        for (t, task) in self.tasks.iter().enumerate() {
            for &(a, r) in &task.fp.accesses {
                by_fab.entry(r.fab).or_default().push((t, a, r));
            }
        }
        let mut violations = Vec::new();
        let mut pairs_checked = 0u64;
        let mut seen_pairs: std::collections::HashSet<(usize, usize)> =
            std::collections::HashSet::new();
        let mut fabs: Vec<&u64> = by_fab.keys().collect();
        fabs.sort_unstable();
        for fab in fabs {
            let accs = &by_fab[fab];
            for (i, &(ta, aa, ra)) in accs.iter().enumerate() {
                for &(tb, ab, rb) in &accs[i + 1..] {
                    if ta == tb || (aa == Access::Read && ab == Access::Read) {
                        continue;
                    }
                    if !ra.overlaps(&rb) {
                        continue;
                    }
                    pairs_checked += 1;
                    if ordered(&anc, ta, tb) {
                        continue;
                    }
                    let (first, second) = if ta < tb { (ta, tb) } else { (tb, ta) };
                    if seen_pairs.insert((first, second)) {
                        violations.push(Violation::UnorderedConflict {
                            first,
                            first_label: self.label(first).to_string(),
                            second,
                            second_label: self.label(second).to_string(),
                            fab: *fab,
                            bx: ra.bx.intersection(&rb.bx),
                        });
                    }
                }
            }
        }
        violations.sort_by_key(|v| match v {
            Violation::UnorderedConflict { first, second, .. } => (*first, *second),
            _ => (usize::MAX, usize::MAX),
        });
        Verification {
            violations,
            pairs_checked,
        }
    }

    fn dep_lists(&self) -> Vec<&[usize]> {
        self.tasks.iter().map(|t| t.deps.as_slice()).collect()
    }
}

/// One rank's slice of a distributed schedule: its task spec plus which of
/// its tasks send and which of its event tasks receive on each channel key
/// (the plan chunk index on the halo path).
#[derive(Clone, Debug, Default)]
pub struct RankSchedule {
    /// The rank-local task DAG with footprints.
    pub spec: ScheduleSpec,
    /// `(task index, channel)` for every sending task.
    pub sends: Vec<(usize, u64)>,
    /// `(task index, channel)` for every receiving event task.
    pub recvs: Vec<(usize, u64)>,
}

/// Proves the cross-rank soundness of a distributed schedule: every channel
/// is matched one-to-one (tag-completeness — a receive with no send is a
/// lost-wakeup hang, caught *before* execution), and the union of per-rank
/// DAGs plus matched send→recv edges is acyclic (Kahn's algorithm).
pub fn verify_cross_rank(ranks: &[RankSchedule]) -> Vec<Violation> {
    let mut violations = Vec::new();
    // Channel tally across all ranks: `(rank, task)` senders and receivers.
    type ChannelTally = (Vec<(usize, usize)>, Vec<(usize, usize)>);
    let mut chans: BTreeMap<u64, ChannelTally> = BTreeMap::new();
    for (r, rs) in ranks.iter().enumerate() {
        for &(t, c) in &rs.sends {
            chans.entry(c).or_default().0.push((r, t));
        }
        for &(t, c) in &rs.recvs {
            chans.entry(c).or_default().1.push((r, t));
        }
    }
    for (&chan, (sends, recvs)) in &chans {
        if sends.len() != 1 || recvs.len() != 1 {
            violations.push(Violation::ChannelMismatch {
                chan,
                sends: sends.len(),
                recvs: recvs.len(),
            });
        }
    }
    // Kahn over the union graph: per-rank dependency edges plus one
    // send→recv edge per exactly-matched channel.
    let offsets: Vec<usize> = ranks
        .iter()
        .scan(0usize, |acc, rs| {
            let o = *acc;
            *acc += rs.spec.len();
            Some(o)
        })
        .collect();
    let total: usize = ranks.iter().map(|rs| rs.spec.len()).sum();
    let mut indeg = vec![0usize; total];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); total];
    for (r, rs) in ranks.iter().enumerate() {
        for t in 0..rs.spec.len() {
            let node = offsets[r] + t;
            for &d in rs.spec.deps(t) {
                succs[offsets[r] + d].push(node);
                indeg[node] += 1;
            }
        }
    }
    for (sends, recvs) in chans.values() {
        if let (&[(sr, st)], &[(rr, rt)]) = (sends.as_slice(), recvs.as_slice()) {
            succs[offsets[sr] + st].push(offsets[rr] + rt);
            indeg[offsets[rr] + rt] += 1;
        }
    }
    let mut queue: Vec<usize> = (0..total).filter(|&i| indeg[i] == 0).collect();
    let mut done = 0usize;
    while let Some(i) = queue.pop() {
        done += 1;
        for &s in &succs[i] {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                queue.push(s);
            }
        }
    }
    if done < total {
        let mut tasks = Vec::new();
        for (r, rs) in ranks.iter().enumerate() {
            for t in 0..rs.spec.len() {
                if indeg[offsets[r] + t] > 0 && tasks.len() < 8 {
                    tasks.push((r, rs.spec.label(t).to_string()));
                }
            }
        }
        violations.push(Violation::CrossRankCycle { tasks });
    }
    violations
}

/// Ancestor bitsets: `anc[i]` has bit `j` set iff task `j` happens-before
/// task `i`. One pass suffices because dependencies point backwards.
fn ancestor_closure(deps: &[&[usize]]) -> Vec<Vec<u64>> {
    let n = deps.len();
    let words = n.div_ceil(64);
    let mut anc = vec![vec![0u64; words]; n];
    for (i, deps_i) in deps.iter().enumerate() {
        for &d in *deps_i {
            // anc[i] |= anc[d]; anc[i] |= {d}
            let (head, tail) = anc.split_at_mut(i);
            for (w, &a) in tail[0].iter_mut().zip(&head[d]) {
                *w |= a;
            }
            tail[0][d / 64] |= 1u64 << (d % 64);
        }
    }
    anc
}

/// `true` when a happens-before path orders `a` and `b` (either direction).
fn ordered(anc: &[Vec<u64>], a: usize, b: usize) -> bool {
    anc[a][b / 64] & (1u64 << (b % 64)) != 0 || anc[b][a / 64] & (1u64 << (a % 64)) != 0
}

/// `from` minus `cut` as up to six disjoint axis-aligned boxes (empty when
/// `cut` covers `from`). The taskcheck analog of the plan builder's ghost
/// decomposition: the fab layer uses it to declare a patch's ghost shell
/// (full box minus valid box) as a halo task's write set.
pub fn subtract(from: IndexBox, cut: IndexBox) -> Vec<IndexBox> {
    if from.is_empty() {
        return Vec::new();
    }
    if !from.intersects(&cut) {
        return vec![from];
    }
    let mut out = Vec::new();
    let mut rest = from;
    for dir in 0..3 {
        let lo_gap = cut.lo()[dir] - rest.lo()[dir];
        if lo_gap > 0 {
            out.push(rest.grow_hi(dir, lo_gap - rest.size()[dir]));
        }
        let hi_gap = rest.hi()[dir] - cut.hi()[dir];
        if hi_gap > 0 {
            out.push(rest.grow_lo(dir, hi_gap - rest.size()[dir]));
        }
        rest = rest.grow_lo(dir, -lo_gap.max(0)).grow_hi(dir, -hi_gap.max(0));
    }
    out
}

/// Records that the currently-executing graph task touched `bx` of the fab
/// identified by `fab` (the fab layer passes the allocation base pointer).
///
/// With the `taskcheck` feature off this is a no-op that the compiler
/// removes entirely; with it on, the access lands in the running graph's
/// race tracker (no-op outside a graph task, e.g. on the barrier path).
/// Only fabs declared by at least one of the graph's footprints are kept:
/// accesses to anything else — task-local temporaries, another AMR level's
/// fabs quiescent for the whole stage — are out of the schedule's scope and
/// are discarded rather than reported as under-declarations.
#[cfg(not(feature = "taskcheck"))]
#[inline(always)]
pub fn record_access(_fab: u64, _write: bool, _bx: IndexBox) {}

#[cfg(feature = "taskcheck")]
pub use dynamic::record_access;

#[cfg(feature = "taskcheck")]
pub(crate) use dynamic::{RunTracker, TaskScope};

/// The dynamic backstop: reachability "vector clocks" per task plus a
/// thread-local recorder the fab views feed. Compiled only with the
/// `taskcheck` feature.
#[cfg(feature = "taskcheck")]
mod dynamic {
    use super::{ancestor_closure, ordered, subtract, Access, Footprint};
    use crocco_geometry::IndexBox;
    use std::cell::RefCell;
    use std::sync::{Arc, Mutex};

    /// Per-run race tracker: the graph's happens-before closure, declared
    /// footprints, and every region the tasks actually touched.
    pub(crate) struct RunTracker {
        anc: Vec<Vec<u64>>,
        footprints: Vec<Footprint>,
        /// Every fab id some footprint declares, sorted. The detector checks
        /// only these: an access to a fab *no* task declares is out-of-graph
        /// data the schedule does not arbitrate — task-local temporaries
        /// (whose heap addresses can be reused across unordered tasks,
        /// which would read as a race) or another level's fabs, quiescent
        /// for this graph's whole run by the driver's level-advance
        /// structure rather than by edges of this graph.
        known: Vec<u64>,
        recs: Mutex<Vec<Rec>>,
    }

    /// One task's coalesced touches of one fab.
    struct Rec {
        task: usize,
        fab: u64,
        write: bool,
        boxes: Vec<IndexBox>,
    }

    struct Recorder {
        tracker: Arc<RunTracker>,
        task: usize,
        entries: Vec<(u64, bool, Vec<IndexBox>)>,
    }

    thread_local! {
        static CURRENT: RefCell<Option<Recorder>> = const { RefCell::new(None) };
    }

    /// RAII guard marking the current thread as executing graph task
    /// `task`; dropping it (including during unwind) flushes the recorded
    /// accesses into the tracker.
    pub(crate) struct TaskScope;

    impl TaskScope {
        pub(crate) fn enter(tracker: &Arc<RunTracker>, task: usize) -> TaskScope {
            CURRENT.with(|c| {
                let mut c = c.borrow_mut();
                debug_assert!(c.is_none(), "nested graph task scopes");
                *c = Some(Recorder {
                    tracker: Arc::clone(tracker),
                    task,
                    entries: Vec::new(),
                });
            });
            TaskScope
        }
    }

    impl Drop for TaskScope {
        fn drop(&mut self) {
            let rec = CURRENT.with(|c| c.borrow_mut().take());
            if let Some(rec) = rec {
                let mut recs = rec.tracker.recs.lock().expect("taskcheck recs poisoned");
                for (fab, write, boxes) in rec.entries {
                    // Accesses to fabs no footprint declares are out of this
                    // graph's scope (see `RunTracker::known`).
                    if rec.tracker.known.binary_search(&fab).is_err() {
                        continue;
                    }
                    recs.push(Rec {
                        task: rec.task,
                        fab,
                        write,
                        boxes,
                    });
                }
            }
        }
    }

    /// See the feature-off stub for the contract.
    #[inline]
    pub fn record_access(fab: u64, write: bool, bx: IndexBox) {
        if bx.is_empty() {
            return;
        }
        CURRENT.with(|c| {
            let mut c = c.borrow_mut();
            let Some(rec) = c.as_mut() else { return };
            if let Some((_, _, boxes)) = rec
                .entries
                .iter_mut()
                .find(|(f, w, _)| *f == fab && *w == write)
            {
                push_coalesced(boxes, bx);
            } else {
                rec.entries.push((fab, write, vec![bx]));
            }
        });
    }

    /// Appends `b`, merging with recent boxes where the union stays a box —
    /// per-cell `get`/`set` streams collapse into rows and rows into slabs,
    /// keeping the record compact *and exact* (a bounding box would
    /// over-approximate a ghost shell into the valid region and report
    /// false races).
    fn push_coalesced(boxes: &mut Vec<IndexBox>, b: IndexBox) {
        for prev in boxes.iter().rev().take(8) {
            if prev.contains_box(&b) {
                return;
            }
        }
        if let Some(last) = boxes.last_mut() {
            if let Some(m) = box_union(*last, b) {
                *last = m;
                // A row completing a slab may now merge with its predecessor.
                if boxes.len() >= 2 {
                    let m = boxes[boxes.len() - 1];
                    let p = boxes[boxes.len() - 2];
                    if let Some(m2) = box_union(p, m) {
                        boxes.pop();
                        *boxes.last_mut().expect("nonempty") = m2;
                    }
                }
                return;
            }
        }
        boxes.push(b);
    }

    /// The union of two boxes when it is itself a box (equal extents on all
    /// axes but one, overlapping or adjacent on that one).
    fn box_union(a: IndexBox, b: IndexBox) -> Option<IndexBox> {
        let mut diff = None;
        for dir in 0..3 {
            if a.lo()[dir] != b.lo()[dir] || a.hi()[dir] != b.hi()[dir] {
                if diff.is_some() {
                    return None;
                }
                diff = Some(dir);
            }
        }
        let Some(dir) = diff else { return Some(a) };
        if a.lo()[dir] > b.hi()[dir] + 1 || b.lo()[dir] > a.hi()[dir] + 1 {
            return None;
        }
        let mut lo = a.lo();
        let mut hi = a.hi();
        lo[dir] = lo[dir].min(b.lo()[dir]);
        hi[dir] = hi[dir].max(b.hi()[dir]);
        Some(IndexBox::new(lo, hi))
    }

    impl RunTracker {
        pub(crate) fn new(deps: Vec<Vec<usize>>, footprints: Vec<Footprint>) -> Arc<RunTracker> {
            let dep_refs: Vec<&[usize]> = deps.iter().map(|d| d.as_slice()).collect();
            let mut known: Vec<u64> = footprints
                .iter()
                .flat_map(|fp| fp.accesses().iter().map(|&(_, reg)| reg.fab))
                .collect();
            known.sort_unstable();
            known.dedup();
            Arc::new(RunTracker {
                anc: ancestor_closure(&dep_refs),
                footprints,
                known,
                recs: Mutex::new(Vec::new()),
            })
        }

        fn label(&self, t: usize) -> String {
            let l = &self.footprints[t].label;
            if l.is_empty() {
                format!("task {t}")
            } else {
                format!("'{l}'")
            }
        }

        /// Post-run audit: panics on any unordered pair of overlapping
        /// recorded accesses with at least one write (a race that *actually
        /// executed*), and on any recorded access escaping its task's
        /// declared footprint (an under-declaration the static pass would
        /// have trusted).
        pub(crate) fn check(&self) {
            let recs = self.recs.lock().expect("taskcheck recs poisoned");
            for (i, a) in recs.iter().enumerate() {
                for b in &recs[i + 1..] {
                    if a.task == b.task || a.fab != b.fab || !(a.write || b.write) {
                        continue;
                    }
                    if ordered(&self.anc, a.task, b.task) {
                        continue;
                    }
                    for ba in &a.boxes {
                        for bb in &b.boxes {
                            assert!(
                                !ba.intersects(bb),
                                "taskcheck: dynamic race: {} and {} both touched {:?} of fab \
                                 {:#x} with no happens-before path",
                                self.label(a.task),
                                self.label(b.task),
                                ba.intersection(bb),
                                a.fab,
                            );
                        }
                    }
                }
            }
            for r in recs.iter() {
                let fp = &self.footprints[r.task];
                if fp.is_empty() {
                    continue;
                }
                for bx in &r.boxes {
                    let mut rest = vec![*bx];
                    for &(acc, reg) in fp.accesses() {
                        if reg.fab != r.fab || (r.write && acc == Access::Read) {
                            continue;
                        }
                        rest = rest
                            .into_iter()
                            .flat_map(|b| subtract(b, reg.bx))
                            .collect();
                        if rest.is_empty() {
                            break;
                        }
                    }
                    assert!(
                        rest.is_empty(),
                        "taskcheck: under-declared footprint: {} {} {:?} of fab {:#x} outside \
                         its declared regions",
                        self.label(r.task),
                        if r.write { "wrote" } else { "read" },
                        rest.first(),
                        r.fab,
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crocco_geometry::IntVect;
    use proptest::prelude::*;

    fn bx(lo: [i64; 3], hi: [i64; 3]) -> IndexBox {
        IndexBox::new(
            IntVect::new(lo[0], lo[1], lo[2]),
            IntVect::new(hi[0], hi[1], hi[2]),
        )
    }

    #[test]
    fn ordered_conflicts_verify_clean() {
        let mut s = ScheduleSpec::new();
        let w = s.add(
            &[],
            Footprint::new("writer").writes(0, (0, 2), bx([0, 0, 0], [3, 3, 3])),
        );
        s.add(
            &[w],
            Footprint::new("reader").reads(0, (0, 2), bx([1, 1, 1], [2, 2, 2])),
        );
        let v = s.verify();
        assert!(v.violations.is_empty(), "{:?}", v.violations);
        assert_eq!(v.pairs_checked, 1);
    }

    #[test]
    fn unordered_write_read_is_flagged_with_the_box() {
        let mut s = ScheduleSpec::new();
        s.add(
            &[],
            Footprint::new("writer").writes(7, (0, 1), bx([0, 0, 0], [3, 3, 3])),
        );
        s.add(
            &[],
            Footprint::new("reader").reads(7, (0, 1), bx([2, 0, 0], [5, 3, 3])),
        );
        let v = s.verify();
        assert_eq!(v.violations.len(), 1);
        assert_eq!(
            v.violations[0],
            Violation::UnorderedConflict {
                first: 0,
                first_label: "writer".into(),
                second: 1,
                second_label: "reader".into(),
                fab: 7,
                bx: bx([2, 0, 0], [3, 3, 3]),
            }
        );
    }

    #[test]
    fn disjoint_and_read_read_pairs_are_not_conflicts() {
        let mut s = ScheduleSpec::new();
        s.add(
            &[],
            Footprint::new("a")
                .writes(0, (0, 1), bx([0, 0, 0], [1, 1, 1]))
                .reads(1, (0, 1), bx([0, 0, 0], [9, 9, 9])),
        );
        s.add(
            &[],
            Footprint::new("b")
                .writes(0, (0, 1), bx([2, 0, 0], [3, 1, 1]))
                .reads(1, (0, 1), bx([0, 0, 0], [9, 9, 9])),
        );
        // Different components never conflict either.
        s.add(
            &[],
            Footprint::new("c").writes(0, (1, 2), bx([0, 0, 0], [1, 1, 1])),
        );
        assert!(s.verify().violations.is_empty());
    }

    #[test]
    fn transitive_ordering_counts() {
        // 0 -> 1 -> 2; 0 and 2 conflict but are ordered through 1.
        let mut s = ScheduleSpec::new();
        let a = s.add(
            &[],
            Footprint::new("a").writes(0, (0, 1), bx([0, 0, 0], [3, 3, 3])),
        );
        let b = s.add(&[a], Footprint::new("b"));
        s.add(
            &[b],
            Footprint::new("c").writes(0, (0, 1), bx([0, 0, 0], [3, 3, 3])),
        );
        assert!(s.verify().violations.is_empty());
    }

    #[test]
    fn subtract_partitions_the_ghost_shell() {
        let outer = bx([-2, -2, -2], [9, 9, 9]);
        let inner = bx([0, 0, 0], [7, 7, 7]);
        let shell = subtract(outer, inner);
        let total: u64 = shell.iter().map(|b| b.num_points()).sum();
        assert_eq!(total, outer.num_points() - inner.num_points());
        for (i, a) in shell.iter().enumerate() {
            assert!(!a.intersects(&inner));
            for b in &shell[i + 1..] {
                assert!(!a.intersects(b), "{a:?} overlaps {b:?}");
            }
        }
        // Disjoint cut returns the original box; covering cut returns none.
        assert_eq!(subtract(inner, bx([20, 0, 0], [21, 1, 1])), vec![inner]);
        assert!(subtract(inner, outer).is_empty());
    }

    #[test]
    fn channel_mismatches_are_flagged() {
        let mut a = RankSchedule::default();
        let s0 = a.spec.add(&[], Footprint::new("send[0]"));
        a.sends.push((s0, 0));
        let mut b = RankSchedule::default();
        let r0 = b.spec.add(&[], Footprint::new("recv[0]"));
        let r1 = b.spec.add(&[], Footprint::new("recv[1]"));
        b.recvs.push((r0, 0));
        b.recvs.push((r1, 1)); // no matching send: a lost wakeup
        let v = verify_cross_rank(&[a, b]);
        assert_eq!(
            v,
            vec![Violation::ChannelMismatch {
                chan: 1,
                sends: 0,
                recvs: 1
            }]
        );
    }

    #[test]
    fn cross_rank_cycles_are_detected() {
        // rank0: recv(1) -> send(0); rank1: recv(0) -> send(1) — a classic
        // cross-rank deadlock that each rank's DAG alone cannot see.
        let mut a = RankSchedule::default();
        let ar = a.spec.add(&[], Footprint::new("recv[1]"));
        let as_ = a.spec.add(&[ar], Footprint::new("send[0]"));
        a.recvs.push((ar, 1));
        a.sends.push((as_, 0));
        let mut b = RankSchedule::default();
        let br = b.spec.add(&[], Footprint::new("recv[0]"));
        let bs = b.spec.add(&[br], Footprint::new("send[1]"));
        b.recvs.push((br, 0));
        b.sends.push((bs, 1));
        let v = verify_cross_rank(&[a, b]);
        assert_eq!(v.len(), 1);
        assert!(matches!(&v[0], Violation::CrossRankCycle { tasks } if tasks.len() == 4));
    }

    #[test]
    fn matched_channels_and_dag_verify_clean() {
        let mut a = RankSchedule::default();
        let s0 = a.spec.add(&[], Footprint::new("send[0]"));
        a.sends.push((s0, 0));
        let mut b = RankSchedule::default();
        let r0 = b.spec.add(&[], Footprint::new("recv[0]"));
        b.spec.add(&[r0], Footprint::new("halo"));
        b.recvs.push((r0, 0));
        assert!(verify_cross_rank(&[a, b]).is_empty());
    }

    /// Brute-force oracle: all conflicting pairs by direct region scan, all
    /// ordered pairs by DFS. Deliberately index-style — it should read as
    /// the definition, not as an optimized implementation.
    #[allow(clippy::needless_range_loop)]
    fn oracle_unordered_conflicts(s: &ScheduleSpec) -> Vec<(usize, usize)> {
        let n = s.len();
        let mut reach = vec![vec![false; n]; n];
        for i in 0..n {
            // DFS ancestors of i.
            let mut stack: Vec<usize> = s.deps(i).to_vec();
            while let Some(d) = stack.pop() {
                if !reach[i][d] {
                    reach[i][d] = true;
                    stack.extend_from_slice(s.deps(d));
                }
            }
        }
        let mut out = Vec::new();
        for a in 0..n {
            for b in a + 1..n {
                let conflict = s.footprint(a).accesses().iter().any(|&(aa, ra)| {
                    s.footprint(b).accesses().iter().any(|&(ab, rb)| {
                        (aa == Access::Write || ab == Access::Write) && ra.overlaps(&rb)
                    })
                });
                if conflict && !reach[a][b] && !reach[b][a] {
                    out.push((a, b));
                }
            }
        }
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// The bitset verifier flags exactly the pairs a brute-force
        /// pairwise oracle flags: sound (no false negatives) and complete
        /// (no false positives).
        #[test]
        fn verifier_matches_brute_force_oracle(
            raw_deps in prop::collection::vec(prop::collection::vec(any::<usize>(), 0..3), 1..24),
            raw_accs in prop::collection::vec(
                prop::collection::vec(
                    (0u64..3, any::<bool>(), 0i64..6, 1i64..4, 0usize..2),
                    0..3,
                ),
                1..24,
            ),
        ) {
            let mut s = ScheduleSpec::new();
            for (i, d) in raw_deps.iter().enumerate() {
                let deps: Vec<usize> = if i == 0 {
                    Vec::new()
                } else {
                    d.iter().map(|&r| r % i).collect()
                };
                let mut fp = Footprint::new(format!("t{i}"));
                for &(fab, write, lo, len, comp) in
                    raw_accs.get(i).map(Vec::as_slice).unwrap_or(&[])
                {
                    let b = bx([lo, 0, 0], [lo + len - 1, 1, 1]);
                    fp = if write {
                        fp.writes(fab, (comp, comp + 1), b)
                    } else {
                        fp.reads(fab, (comp, comp + 1), b)
                    };
                }
                s.add(&deps, fp);
            }
            let got: Vec<(usize, usize)> = s
                .verify()
                .violations
                .iter()
                .filter_map(|v| match v {
                    Violation::UnorderedConflict { first, second, .. } => Some((*first, *second)),
                    _ => None,
                })
                .collect();
            let want = oracle_unordered_conflicts(&s);
            prop_assert_eq!(got, want);
        }

        /// `subtract` always yields disjoint boxes covering exactly
        /// `from \ cut`.
        #[test]
        fn subtract_is_exact(
            flo in prop::collection::vec(-3i64..3, 3),
            fsz in prop::collection::vec(1i64..5, 3),
            clo in prop::collection::vec(-4i64..4, 3),
            csz in prop::collection::vec(1i64..6, 3),
        ) {
            let from = bx(
                [flo[0], flo[1], flo[2]],
                [flo[0] + fsz[0] - 1, flo[1] + fsz[1] - 1, flo[2] + fsz[2] - 1],
            );
            let cut = bx(
                [clo[0], clo[1], clo[2]],
                [clo[0] + csz[0] - 1, clo[1] + csz[1] - 1, clo[2] + csz[2] - 1],
            );
            let parts = subtract(from, cut);
            let total: u64 = parts.iter().map(|b| b.num_points()).sum();
            prop_assert_eq!(total, from.num_points() - from.intersection(&cut).num_points());
            for (i, a) in parts.iter().enumerate() {
                prop_assert!(from.contains_box(a));
                prop_assert!(!a.intersects(&cut));
                for b in &parts[i + 1..] {
                    prop_assert!(!a.intersects(b));
                }
            }
        }
    }
}
