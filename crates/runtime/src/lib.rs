//! Parallel runtime substrate for the CRoCCo reproduction.
//!
//! The paper runs MPI across up to 1,024 Summit nodes. This crate substitutes
//! two runtimes (see `DESIGN.md` §3):
//!
//! * [`sim`] — a *simulated* communicator: per-rank virtual clocks advanced
//!   by compute and communication costs from the
//!   [`crocco-perfmodel`](crocco_perfmodel) Summit models. The scaling
//!   studies (Figs. 5–7) replay the exact communication plans of the real
//!   AMR metadata path through this simulator.
//! * [`cluster`] — a *real* threaded message-passing cluster: N rank threads
//!   connected by crossbeam channels moving [`bytes::Bytes`] payloads. Used
//!   by tests and examples to demonstrate that the distributed code path
//!   (pack → send → receive → unpack) actually executes, at laptop scale.
//! * [`pool`] — a scoped thread pool for on-node parallel patch loops (the
//!   OpenMP/GPU-thread analog below MPI, §IV-B).
//! * [`taskgraph`] — a dependency-tracking task executor built on the same
//!   scoped threads; the fab layer uses it to overlap halo exchange with
//!   interior kernel sweeps (DESIGN.md §4e).
//! * [`topology`] — rank ↔ node placement for Summit-like machines.
//!
//! Where this crate sits in the paper-subsystem map (the S1–S5 table; the
//! same table appears in the `fab` and `amr` roots):
//!
//! | # | paper subsystem | crate counterpart |
//! |---|---|---|
//! | S1 | MPI job across Summit nodes (§IV-B) | `runtime::sim`, `runtime::cluster`, `runtime::topology` |
//! | S2 | on-node OpenMP / GPU streams (§IV-B) | **`runtime::pool`, `runtime::taskgraph`** |
//! | S3 | AMReX `FabArray` data + comm metadata (§III-A) | `fab` (`MultiFab`, plans, plan cache) |
//! | S4 | AMR hierarchy, regrid, FillPatch (§III-B/C) | `amr` |
//! | S5 | CRoCCo solver kernels + RK3 driver (§II, §III) | `core` (`crocco-solver`) |

// Enforced by `cargo xtask lint`: unsafe code is confined to the allowlisted
// fab modules (multifab, view, overlap) — none of it lives here.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod cluster;
pub mod pool;
pub mod sim;
pub mod taskcheck;
pub mod taskgraph;
pub mod topology;

pub use chaos::{
    ChaosConfig, ChaosRuntime, CrashPhase, CrashSpec, FaultPlan, StorageFault, StorageFaultPlan,
};
pub use cluster::{
    tags, CommError, CommGroup, GroupEndpoint, LocalCluster, Packet, RankEndpoint, RecvHandle,
};
pub use pool::{default_threads, parallel_for, parallel_for_each_mut, parallel_zip_mut};
pub use sim::{CommOp, SimComm};
pub use taskcheck::{
    verify_cross_rank, Access, Footprint, RankSchedule, Region, ScheduleSpec, Verification,
    Violation,
};
pub use taskgraph::{Schedule, StageError, TaskGraph, TaskHandle};
pub use topology::Topology;
