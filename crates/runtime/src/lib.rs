//! Parallel runtime substrate for the CRoCCo reproduction.
//!
//! The paper runs MPI across up to 1,024 Summit nodes. This crate substitutes
//! two runtimes (see `DESIGN.md` §3):
//!
//! * [`sim`] — a *simulated* communicator: per-rank virtual clocks advanced
//!   by compute and communication costs from the
//!   [`crocco-perfmodel`](crocco_perfmodel) Summit models. The scaling
//!   studies (Figs. 5–7) replay the exact communication plans of the real
//!   AMR metadata path through this simulator.
//! * [`cluster`] — a *real* threaded message-passing cluster: N rank threads
//!   connected by crossbeam channels moving [`bytes::Bytes`] payloads. Used
//!   by tests and examples to demonstrate that the distributed code path
//!   (pack → send → receive → unpack) actually executes, at laptop scale.
//! * [`pool`] — a scoped thread pool for on-node parallel patch loops (the
//!   OpenMP/GPU-thread analog below MPI, §IV-B).
//! * [`topology`] — rank ↔ node placement for Summit-like machines.

// Enforced by `cargo xtask lint`: only fab::multifab may contain unsafe code.
#![forbid(unsafe_code)]

pub mod cluster;
pub mod pool;
pub mod sim;
pub mod topology;

pub use cluster::{LocalCluster, Packet, RankEndpoint};
pub use pool::{default_threads, parallel_for, parallel_for_each_mut, parallel_zip_mut};
pub use sim::{CommOp, SimComm};
pub use topology::Topology;
