//! Deterministic fault injection, payload framing, and the shared chaos
//! runtime behind the resilient cluster transport (DESIGN.md §4g).
//!
//! Production AMR codes at Summit scale treat message corruption, stragglers,
//! and node failures as operational facts; this module gives the simulated
//! runtime the same adversary. Three pieces:
//!
//! * [`ChaosConfig`] / [`FaultPlan`] — a *seeded, timing-independent* fault
//!   schedule: every transmission's fate (deliver / drop / duplicate /
//!   bit-flip / bounded delay) is a pure hash of
//!   `(seed, src, dst, tag, seq)`, so a chaos run is exactly reproducible
//!   regardless of thread interleaving, and whole-rank crashes fire at a
//!   chosen `(rank, step, phase)` in the stepping loop.
//! * [`encode_frame`] / [`decode_frame`] — the detection layer's wire
//!   format: a `magic | length | sequence | CRC32` header in front of every
//!   payload, so truncation, bit flips, and replays are *detected* at the
//!   receiver instead of silently corrupting ghost cells.
//! * [`ChaosRuntime`] — the cluster-wide shared state: per-rank alive flags
//!   (fail-stop crash detection), the pristine-frame retransmit store that
//!   receiver-driven retries pull from, the delayed-frame queue, and fault
//!   counters for the ablation study.
//!
//! The injection/repair contract: drop, duplication, corruption, and delay
//! are repaired entirely inside the transport (retransmit + CRC +
//! per-(src,dst) sequence numbers), so solver results are bitwise-identical
//! to a fault-free run. Only a rank crash escapes the transport, surfacing
//! as a typed [`CommError`](crate::cluster::CommError) that the stepping
//! loop answers with checkpoint rollback.

use bytes::Bytes;
use crossbeam::channel::Sender;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::cluster::Packet;

/// Where in a time step an injected whole-rank crash fires (the recovery
/// edge cases each need a distinct phase: before any collective, after the
/// rank-local regrid, and mid-RK after the dt collective).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrashPhase {
    /// At step entry, before regrid and before the dt collective.
    StepStart,
    /// After the rank-local regrid (peers block in the dt allreduce).
    AfterRegrid,
    /// After the dt allreduce (peers block in stage halo/gather traffic).
    AfterDt,
}

/// One scheduled whole-rank crash: `rank` fail-stops when its stepping loop
/// reaches `step` at `phase`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashSpec {
    /// The physical (endpoint) rank that dies.
    pub rank: usize,
    /// The step counter value at which it dies.
    pub step: u32,
    /// Where inside that step it dies.
    pub phase: CrashPhase,
}

/// Chaos-layer configuration, carried by `SolverConfig::chaos` and by
/// [`LocalCluster::run_with_chaos`](crate::cluster::LocalCluster::run_with_chaos).
/// When present, every cluster payload is framed (length + CRC32 + sequence
/// number) and receives grow deadlines with retransmit + exponential
/// backoff; the probabilities select which transmissions the fault plan
/// sabotages.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ChaosConfig {
    /// Seed of the deterministic fault plan.
    pub seed: u64,
    /// Probability a transmission is dropped (repaired by retransmit).
    pub drop_p: f64,
    /// Probability a transmission is duplicated (repaired by sequence
    /// numbers).
    pub duplicate_p: f64,
    /// Probability a transmission has one bit flipped (repaired by CRC +
    /// retransmit).
    pub corrupt_p: f64,
    /// Probability a transmission is held back for [`Self::delay_ms`].
    pub delay_p: f64,
    /// Bounded delay applied to delayed transmissions, in milliseconds.
    pub delay_ms: u64,
    /// Scheduled whole-rank crashes (recovered by checkpoint rollback).
    pub crashes: Vec<CrashSpec>,
    /// Steps between in-memory recovery checkpoints in the chaos stepping
    /// loop (`advance_steps_chaos`).
    pub checkpoint_interval: u32,
    /// Deadline for one matched receive before it fails with
    /// `CommError::Timeout`.
    pub wait_timeout_ms: u64,
    /// Initial receiver-driven retransmit backoff; doubles per retry.
    pub retry_backoff_ms: u64,
    /// Storage-fault plan applied to the durable checkpoint store, when the
    /// solver is configured to spill checkpoints to disk (`None` = the
    /// store is faithful).
    pub storage: Option<StorageFaultPlan>,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0x5EED_CAFE,
            drop_p: 0.0,
            duplicate_p: 0.0,
            corrupt_p: 0.0,
            delay_p: 0.0,
            delay_ms: 2,
            crashes: Vec::new(),
            checkpoint_interval: 4,
            wait_timeout_ms: 10_000,
            retry_backoff_ms: 1,
            storage: None,
        }
    }
}

impl ChaosConfig {
    /// The crash scheduled for `(rank, step, phase)`, if any.
    pub fn crash_at(&self, rank: usize, step: u32, phase: CrashPhase) -> Option<&CrashSpec> {
        self.crashes
            .iter()
            .find(|c| c.rank == rank && c.step == step && c.phase == phase)
    }
}

/// The fate the fault plan assigns one transmission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Delivered untouched.
    Deliver,
    /// Silently discarded (receiver retransmit repairs it).
    Drop,
    /// Delivered twice (sequence numbers suppress the replay).
    Duplicate,
    /// Delivered with one bit flipped (CRC rejects it; retransmit repairs).
    Corrupt,
    /// Held back for the configured bounded delay, then delivered.
    Delay,
}

/// `splitmix64` — the standard 64-bit finalizer/mixer; a pure function, so
/// fault decisions depend only on the transmission's identity, never on
/// timing.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Seeded, deterministic per-transmission fault decisions. Every decision is
/// a hash of `(seed, src, dst, tag, seq)`: two runs with the same seed and
/// the same traffic make identical decisions in any thread interleaving.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    seed: u64,
    drop_p: f64,
    duplicate_p: f64,
    corrupt_p: f64,
    delay_p: f64,
}

impl FaultPlan {
    /// Builds the plan from a chaos configuration.
    pub fn new(cfg: &ChaosConfig) -> Self {
        let total = cfg.drop_p + cfg.duplicate_p + cfg.corrupt_p + cfg.delay_p;
        assert!(
            (0.0..=1.0).contains(&total),
            "fault probabilities must sum into [0, 1], got {total}"
        );
        FaultPlan {
            seed: cfg.seed,
            drop_p: cfg.drop_p,
            duplicate_p: cfg.duplicate_p,
            corrupt_p: cfg.corrupt_p,
            delay_p: cfg.delay_p,
        }
    }

    /// Hashes one transmission's identity into a uniform `[0, 1)` draw.
    fn draw(&self, src: usize, dst: usize, tag: u64, seq: u64) -> (f64, u64) {
        let mut h = splitmix64(self.seed ^ (src as u64).wrapping_mul(0x9E3779B97F4A7C15));
        h = splitmix64(h ^ (dst as u64));
        h = splitmix64(h ^ tag);
        h = splitmix64(h ^ seq);
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        (u, splitmix64(h))
    }

    /// Decides the fate of one transmission. The second return value is an
    /// auxiliary hash (e.g. the bit position a corruption flips).
    pub fn decide(&self, src: usize, dst: usize, tag: u64, seq: u64) -> (FaultAction, u64) {
        let (u, aux) = self.draw(src, dst, tag, seq);
        let mut edge = self.drop_p;
        if u < edge {
            return (FaultAction::Drop, aux);
        }
        edge += self.duplicate_p;
        if u < edge {
            return (FaultAction::Duplicate, aux);
        }
        edge += self.corrupt_p;
        if u < edge {
            return (FaultAction::Corrupt, aux);
        }
        edge += self.delay_p;
        if u < edge {
            return (FaultAction::Delay, aux);
        }
        (FaultAction::Deliver, aux)
    }
}

// --- Storage faults ---------------------------------------------------------

/// The damage the storage-fault plan inflicts on one checkpoint-store write
/// (the durable-spill analogue of [`FaultAction`]). Silent faults corrupt
/// what lands and *claim success* — only the CRC seal catches them at
/// recovery time; loud faults surface as errors the spill loop must handle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum StorageFault {
    /// Only a prefix of the bytes lands at the destination (crash mid-write
    /// on a stack without atomic rename, or a rename against an unsynced
    /// temp file). Silent: detected by the CRC seal at recovery.
    TornWrite,
    /// One bit of the landed object flips (media decay / firmware bug).
    /// Silent: detected by the CRC seal at recovery.
    BitFlip,
    /// The write claims success but nothing lands — and any previous object
    /// under the same name is gone (lost manifest, dropped journal entry).
    LoseWrite,
    /// fsync blocks for the configured delay, then the write succeeds.
    SlowFsync,
    /// fsync fails transiently with an I/O error. Loud: the writer sees the
    /// error; a retry draws a fresh decision, so backoff repairs it.
    FsyncFail,
    /// The device is out of space. Loud and *not* transient: the spill loop
    /// must degrade gracefully (warn + continue on in-memory checkpoints)
    /// rather than retry or abort.
    NoSpace,
}

/// Seeded, deterministic per-write storage-fault decisions for the durable
/// checkpoint store — the disk-side counterpart of [`FaultPlan`]. Each
/// write attempt is numbered by the store; the fault drawn for attempt `k`
/// is a pure hash of `(seed, k)`, so a chaos run replays identically.
///
/// Two deterministic overrides sit in front of the probabilistic draw:
/// [`Self::scheduled`] pins an exact fault to an exact attempt (the recovery
/// tests use this to tear precisely the write they mean to), and
/// [`Self::nospace_after`] makes every attempt from an index onward fail
/// with [`StorageFault::NoSpace`] (a full disk does not un-fill itself).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct StorageFaultPlan {
    /// Seed of the per-attempt draws.
    pub seed: u64,
    /// Probability a write lands torn (prefix only, silent success).
    pub torn_p: f64,
    /// Probability a landed write has one bit flipped (silent success).
    pub flip_p: f64,
    /// Probability a write vanishes entirely (silent success).
    pub lose_p: f64,
    /// Probability fsync stalls for [`Self::fsync_delay_ms`] then succeeds.
    pub slow_fsync_p: f64,
    /// Probability fsync fails transiently (loud error, retryable).
    pub fsync_fail_p: f64,
    /// Stall applied by a slow fsync, in milliseconds.
    pub fsync_delay_ms: u64,
    /// Every write attempt `>= n` fails with `NoSpace` (persistent
    /// disk-full).
    pub nospace_after: Option<u64>,
    /// Exact-attempt faults: `(attempt index, fault)`. Checked before the
    /// probabilistic draw, so tests can place a torn write surgically.
    pub scheduled: Vec<(u64, StorageFault)>,
}

impl StorageFaultPlan {
    /// A plan that injects nothing (useful as a base for struct update).
    pub fn quiet(seed: u64) -> Self {
        StorageFaultPlan {
            seed,
            ..StorageFaultPlan::default()
        }
    }

    /// Decides the fate of write attempt `attempt` (a store-scoped counter).
    /// Returns the fault, if any, plus an auxiliary hash (torn-write keep
    /// length, bit-flip position). Pure function: replays are identical.
    pub fn decide(&self, attempt: u64) -> (Option<StorageFault>, u64) {
        let h = splitmix64(self.seed ^ splitmix64(attempt));
        let aux = splitmix64(h);
        if let Some(&(_, fault)) = self.scheduled.iter().find(|&&(a, _)| a == attempt) {
            return (Some(fault), aux);
        }
        if let Some(n) = self.nospace_after {
            if attempt >= n {
                return (Some(StorageFault::NoSpace), aux);
            }
        }
        let total =
            self.torn_p + self.flip_p + self.lose_p + self.slow_fsync_p + self.fsync_fail_p;
        assert!(
            (0.0..=1.0).contains(&total),
            "storage fault probabilities must sum into [0, 1], got {total}"
        );
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        let mut edge = self.torn_p;
        if u < edge {
            return (Some(StorageFault::TornWrite), aux);
        }
        edge += self.flip_p;
        if u < edge {
            return (Some(StorageFault::BitFlip), aux);
        }
        edge += self.lose_p;
        if u < edge {
            return (Some(StorageFault::LoseWrite), aux);
        }
        edge += self.slow_fsync_p;
        if u < edge {
            return (Some(StorageFault::SlowFsync), aux);
        }
        edge += self.fsync_fail_p;
        if u < edge {
            return (Some(StorageFault::FsyncFail), aux);
        }
        (None, aux)
    }
}

// --- CRC32 (IEEE 802.3, polynomial 0xEDB88320) ------------------------------

/// The reflected-polynomial lookup table, built at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// Raw (pre-inversion) CRC-32 state update, for checksumming
/// non-contiguous regions without concatenating them.
fn crc32_update(mut c: u32, data: &[u8]) -> u32 {
    for &b in data {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c
}

/// CRC-32 (IEEE) of `data` — the checksum framing every chaos-mode cluster
/// payload and sealing checkpoint files (`core::io`).
pub fn crc32(data: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// The frame checksum: CRC-32 over the sequence number then the payload.
/// Covering `seq` matters — a bit flip there would otherwise decode
/// cleanly, ack the wrong pristine frame, and let the retransmit of the
/// real one slip past duplicate suppression as a double delivery. (Magic
/// and length flips are caught structurally by the decode checks.)
fn frame_crc(seq: u64, payload: &[u8]) -> u32 {
    crc32_update(crc32_update(0xFFFF_FFFF, &seq.to_le_bytes()), payload) ^ 0xFFFF_FFFF
}

// --- Payload framing --------------------------------------------------------

/// Frame magic: the first four bytes of every framed payload.
pub const FRAME_MAGIC: u32 = 0xC50C_C0DE;
/// Framed-payload header length: magic + length + sequence + CRC32.
pub const FRAME_HEADER: usize = 4 + 4 + 8 + 4;

/// Why a received frame was rejected (all repairable by retransmit).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Shorter than the fixed header.
    Truncated,
    /// Magic bytes damaged.
    BadMagic,
    /// Header length disagrees with the byte count on the wire.
    LengthMismatch,
    /// Payload checksum mismatch (bit flip in flight).
    CrcMismatch,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame shorter than its header"),
            FrameError::BadMagic => write!(f, "frame magic damaged"),
            FrameError::LengthMismatch => write!(f, "frame length mismatch"),
            FrameError::CrcMismatch => write!(f, "frame CRC32 mismatch"),
        }
    }
}

/// Wraps `payload` in the detection header: `magic | len | seq | crc32`.
/// Inverse of [`decode_frame`].
pub fn encode_frame(seq: u64, payload: &[u8]) -> Bytes {
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&frame_crc(seq, payload).to_le_bytes());
    out.extend_from_slice(payload);
    Bytes::from(out)
}

/// Validates and strips a frame header, returning `(seq, payload)`. Any
/// damage — truncation, magic/length corruption, payload bit flips — is
/// reported as a typed [`FrameError`] for the retransmit path.
pub fn decode_frame(frame: &[u8]) -> Result<(u64, Bytes), FrameError> {
    if frame.len() < FRAME_HEADER {
        return Err(FrameError::Truncated);
    }
    let magic = u32::from_le_bytes(frame[0..4].try_into().unwrap());
    if magic != FRAME_MAGIC {
        return Err(FrameError::BadMagic);
    }
    let len = u32::from_le_bytes(frame[4..8].try_into().unwrap()) as usize;
    if frame.len() - FRAME_HEADER != len {
        return Err(FrameError::LengthMismatch);
    }
    let seq = u64::from_le_bytes(frame[8..16].try_into().unwrap());
    let crc = u32::from_le_bytes(frame[16..20].try_into().unwrap());
    let payload = &frame[FRAME_HEADER..];
    if frame_crc(seq, payload) != crc {
        return Err(FrameError::CrcMismatch);
    }
    Ok((seq, Bytes::copy_from_slice(payload)))
}

// --- Shared runtime ---------------------------------------------------------

/// Fault and repair counters, exposed for the ablation study and asserted on
/// by the chaos tests (e.g. "the plan injected at least one drop and the
/// transport repaired it").
#[derive(Debug, Default)]
pub struct ChaosStats {
    /// Transmissions dropped by the plan.
    pub drops: AtomicU64,
    /// Transmissions duplicated by the plan.
    pub duplicates: AtomicU64,
    /// Transmissions bit-flipped by the plan.
    pub corruptions: AtomicU64,
    /// Transmissions delayed by the plan.
    pub delays: AtomicU64,
    /// Frames re-sent from the pristine store by receiver-driven retries.
    pub retransmits: AtomicU64,
    /// Received frames rejected by header/CRC validation.
    pub frame_rejects: AtomicU64,
    /// Received frames suppressed as duplicates by sequence tracking.
    pub dup_suppressed: AtomicU64,
    /// Stale-generation packets discarded after a rollback.
    pub stale_discards: AtomicU64,
}

impl ChaosStats {
    /// Plain-number snapshot `(drops, duplicates, corruptions, delays,
    /// retransmits, frame_rejects, dup_suppressed, stale_discards)`.
    pub fn snapshot(&self) -> [u64; 8] {
        [
            self.drops.load(Ordering::Relaxed),
            self.duplicates.load(Ordering::Relaxed),
            self.corruptions.load(Ordering::Relaxed),
            self.delays.load(Ordering::Relaxed),
            self.retransmits.load(Ordering::Relaxed),
            self.frame_rejects.load(Ordering::Relaxed),
            self.dup_suppressed.load(Ordering::Relaxed),
            self.stale_discards.load(Ordering::Relaxed),
        ]
    }

    /// Total faults the plan injected.
    pub fn injected(&self) -> u64 {
        self.drops.load(Ordering::Relaxed)
            + self.duplicates.load(Ordering::Relaxed)
            + self.corruptions.load(Ordering::Relaxed)
            + self.delays.load(Ordering::Relaxed)
    }
}

/// A frame held back by a `Delay` fault, with its release deadline.
struct DelayedFrame {
    due: Instant,
    dst: usize,
    pkt: Packet,
}

/// One retained pristine frame: `(seq, tag, framed payload)`.
type InflightFrame = (u64, u64, Bytes);

/// Pristine in-flight frames per `(src, dst)` link — the sender-side
/// retransmit buffer. Entries are removed when the receiver acknowledges
/// transport delivery of their sequence number.
#[derive(Default)]
struct ChaosState {
    inflight: HashMap<(usize, usize), VecDeque<InflightFrame>>,
    delayed: Vec<DelayedFrame>,
}

/// Per-link cap on retained pristine frames: a runaway sender cannot grow
/// the store without bound (oldest frames are evicted; an evicted frame that
/// is later needed surfaces as a receive timeout, i.e. an unrecoverable
/// transport fault — the same contract as a real NIC's retransmit window).
const INFLIGHT_CAP: usize = 4096;

/// The cluster-wide chaos runtime: one instance shared by every rank thread
/// of a [`LocalCluster`](crate::cluster::LocalCluster) run in chaos mode.
/// Holds the fault plan, fail-stop alive flags, the retransmit store, the
/// delayed-frame queue, and the fault counters.
pub struct ChaosRuntime {
    cfg: ChaosConfig,
    plan: FaultPlan,
    alive: Vec<AtomicBool>,
    senders: Vec<Sender<Packet>>,
    state: Mutex<ChaosState>,
    /// Fault/repair counters (see [`ChaosStats`]).
    pub stats: ChaosStats,
}

impl ChaosRuntime {
    /// Builds the runtime for an `nranks` cluster whose per-rank channel
    /// senders are `senders` (clones of the cluster's transmit endpoints, so
    /// retransmits and delayed releases can inject packets directly).
    pub fn new(nranks: usize, cfg: ChaosConfig, senders: Vec<Sender<Packet>>) -> Self {
        assert_eq!(senders.len(), nranks);
        let plan = FaultPlan::new(&cfg);
        ChaosRuntime {
            cfg,
            plan,
            alive: (0..nranks).map(|_| AtomicBool::new(true)).collect(),
            senders,
            state: Mutex::new(ChaosState::default()),
            stats: ChaosStats::default(),
        }
    }

    /// The configuration this runtime was built with.
    pub fn config(&self) -> &ChaosConfig {
        &self.cfg
    }

    /// `true` while `rank` has not fail-stopped.
    pub fn is_alive(&self, rank: usize) -> bool {
        self.alive[rank].load(Ordering::Acquire)
    }

    /// The first dead rank among `members`, if any (the fail-stop detector
    /// every chaos-mode wait loop polls).
    pub fn first_dead_in(&self, members: &[usize]) -> Option<usize> {
        members.iter().copied().find(|&r| !self.is_alive(r))
    }

    /// Fail-stops `rank`: flips its alive flag (perfect failure detection —
    /// every survivor's next wait-loop poll observes it) and clears the
    /// retransmit store of links touching it.
    pub fn mark_dead(&self, rank: usize) {
        self.alive[rank].store(false, Ordering::Release);
        let mut st = self.state.lock().expect("chaos state poisoned");
        st.inflight.retain(|&(s, d), _| s != rank && d != rank);
        st.delayed.retain(|f| f.dst != rank && f.pkt.src != rank);
    }

    /// Best-effort channel injection (a dead rank's closed channel is not an
    /// error — fail-stop sends simply vanish, as on a real fabric).
    fn inject(&self, dst: usize, pkt: Packet) {
        let _ = self.senders[dst].send(pkt);
    }

    /// Registers one framed transmission in the pristine store and routes it
    /// per the fault plan: the single entry point for every chaos-mode send.
    pub fn route(&self, src: usize, dst: usize, tag: u64, seq: u64, frame: Bytes) {
        {
            let mut st = self.state.lock().expect("chaos state poisoned");
            let link = st.inflight.entry((src, dst)).or_default();
            if link.len() >= INFLIGHT_CAP {
                link.pop_front();
            }
            link.push_back((seq, tag, frame.clone()));
        }
        let pkt = Packet {
            src,
            tag,
            payload: frame,
        };
        let (action, aux) = self.plan.decide(src, dst, tag, seq);
        match action {
            FaultAction::Deliver => self.inject(dst, pkt),
            FaultAction::Drop => {
                self.stats.drops.fetch_add(1, Ordering::Relaxed);
            }
            FaultAction::Duplicate => {
                self.stats.duplicates.fetch_add(1, Ordering::Relaxed);
                self.inject(dst, pkt.clone());
                self.inject(dst, pkt);
            }
            FaultAction::Corrupt => {
                self.stats.corruptions.fetch_add(1, Ordering::Relaxed);
                let mut bytes = pkt.payload.as_ref().to_vec();
                let bit = (aux as usize) % (bytes.len() * 8);
                bytes[bit / 8] ^= 1 << (bit % 8);
                self.inject(
                    dst,
                    Packet {
                        payload: Bytes::from(bytes),
                        ..pkt
                    },
                );
            }
            FaultAction::Delay => {
                self.stats.delays.fetch_add(1, Ordering::Relaxed);
                let due = Instant::now() + Duration::from_millis(self.cfg.delay_ms);
                self.state
                    .lock()
                    .expect("chaos state poisoned")
                    .delayed
                    .push(DelayedFrame { due, dst, pkt });
            }
        }
    }

    /// Acknowledges transport delivery of `(src → dst, seq)`: the pristine
    /// copy is dropped from the retransmit store.
    pub fn ack(&self, src: usize, dst: usize, seq: u64) {
        let mut st = self.state.lock().expect("chaos state poisoned");
        if let Some(link) = st.inflight.get_mut(&(src, dst)) {
            if let Some(pos) = link.iter().position(|&(s, _, _)| s == seq) {
                link.remove(pos);
            }
        }
    }

    /// Receiver-driven retry: re-sends every pristine frame still unacked on
    /// the `src → dst` link. Retransmissions bypass fault injection (the
    /// plan draws once per original transmission), so retries always make
    /// progress and chaos runs terminate.
    pub fn retransmit_link(&self, src: usize, dst: usize) {
        let frames: Vec<(u64, Bytes)> = {
            let st = self.state.lock().expect("chaos state poisoned");
            st.inflight
                .get(&(src, dst))
                .map(|link| link.iter().map(|(_, t, f)| (*t, f.clone())).collect())
                .unwrap_or_default()
        };
        for (tag, frame) in frames {
            self.stats.retransmits.fetch_add(1, Ordering::Relaxed);
            self.inject(
                dst,
                Packet {
                    src,
                    tag,
                    payload: frame,
                },
            );
        }
    }

    /// Re-sends every unacked frame destined to `dst` from any source — the
    /// broad retry a stalled progress pump uses when it cannot attribute the
    /// stall to one link.
    pub fn retransmit_into(&self, dst: usize) {
        let frames: Vec<(usize, u64, Bytes)> = {
            let st = self.state.lock().expect("chaos state poisoned");
            st.inflight
                .iter()
                .filter(|(&(_, d), _)| d == dst)
                .flat_map(|(&(s, _), link)| {
                    link.iter().map(move |(_, t, f)| (s, *t, f.clone()))
                })
                .collect()
        };
        for (src, tag, frame) in frames {
            self.stats.retransmits.fetch_add(1, Ordering::Relaxed);
            self.inject(
                dst,
                Packet {
                    src,
                    tag,
                    payload: frame,
                },
            );
        }
    }

    /// Releases every delayed frame whose deadline has passed. Called from
    /// the receive drains, so delays resolve without a dedicated timer
    /// thread.
    pub fn pump_delayed(&self) {
        let now = Instant::now();
        let due: Vec<(usize, Packet)> = {
            let mut st = self.state.lock().expect("chaos state poisoned");
            let mut out = Vec::new();
            let mut i = 0;
            while i < st.delayed.len() {
                if st.delayed[i].due <= now {
                    let f = st.delayed.swap_remove(i);
                    out.push((f.dst, f.pkt));
                } else {
                    i += 1;
                }
            }
            out
        };
        for (dst, pkt) in due {
            self.inject(dst, pkt);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn frame_roundtrip_and_rejection_matrix() {
        let payload = b"ghost cells".as_slice();
        let frame = encode_frame(42, payload);
        let (seq, body) = decode_frame(&frame).unwrap();
        assert_eq!(seq, 42);
        assert_eq!(body.as_ref(), payload);

        // Truncated below the header.
        assert_eq!(decode_frame(&frame[..10]), Err(FrameError::Truncated));
        // Truncated payload.
        assert_eq!(
            decode_frame(&frame[..frame.len() - 1]),
            Err(FrameError::LengthMismatch)
        );
        // Magic damage.
        let mut bad = frame.as_ref().to_vec();
        bad[0] ^= 0xFF;
        assert_eq!(decode_frame(&bad), Err(FrameError::BadMagic));
        // Payload bit flip.
        let mut bad = frame.as_ref().to_vec();
        *bad.last_mut().unwrap() ^= 0x01;
        assert_eq!(decode_frame(&bad), Err(FrameError::CrcMismatch));
        // Sequence-field bit flip: covered by the frame CRC.
        let mut bad = frame.as_ref().to_vec();
        bad[9] ^= 0x01;
        assert_eq!(decode_frame(&bad), Err(FrameError::CrcMismatch));
        // Length-field bit flip: caught structurally.
        let mut bad = frame.as_ref().to_vec();
        bad[4] ^= 0x01;
        assert_eq!(decode_frame(&bad), Err(FrameError::LengthMismatch));
    }

    #[test]
    fn fault_plan_is_deterministic_and_respects_rates() {
        let cfg = ChaosConfig {
            drop_p: 0.1,
            duplicate_p: 0.1,
            corrupt_p: 0.1,
            delay_p: 0.1,
            ..ChaosConfig::default()
        };
        let plan = FaultPlan::new(&cfg);
        let plan2 = FaultPlan::new(&cfg);
        let mut counts = [0usize; 5];
        let n = 20_000u64;
        for seq in 0..n {
            let (a, _) = plan.decide(0, 1, 7, seq);
            assert_eq!(a, plan2.decide(0, 1, 7, seq).0, "plan must be a pure function");
            counts[match a {
                FaultAction::Deliver => 0,
                FaultAction::Drop => 1,
                FaultAction::Duplicate => 2,
                FaultAction::Corrupt => 3,
                FaultAction::Delay => 4,
            }] += 1;
        }
        for (i, &c) in counts.iter().enumerate().skip(1) {
            let rate = c as f64 / n as f64;
            assert!(
                (rate - 0.1).abs() < 0.02,
                "fault class {i} rate {rate} far from configured 0.1"
            );
        }
        // Different seeds decide differently somewhere.
        let other = FaultPlan::new(&ChaosConfig {
            seed: 999,
            ..cfg.clone()
        });
        assert!(
            (0..1000).any(|s| plan.decide(0, 1, 7, s).0 != other.decide(0, 1, 7, s).0),
            "seed must matter"
        );
    }

    #[test]
    #[should_panic(expected = "sum into")]
    fn overfull_probabilities_are_rejected() {
        FaultPlan::new(&ChaosConfig {
            drop_p: 0.9,
            corrupt_p: 0.5,
            ..ChaosConfig::default()
        });
    }

    #[test]
    fn storage_plan_is_deterministic_and_respects_rates() {
        let plan = StorageFaultPlan {
            seed: 7,
            torn_p: 0.1,
            flip_p: 0.1,
            lose_p: 0.1,
            slow_fsync_p: 0.1,
            fsync_fail_p: 0.1,
            ..StorageFaultPlan::default()
        };
        let plan2 = plan.clone();
        let mut counts = [0usize; 6];
        let n = 20_000u64;
        for attempt in 0..n {
            let (f, _) = plan.decide(attempt);
            assert_eq!(f, plan2.decide(attempt).0, "plan must be a pure function");
            counts[match f {
                None => 0,
                Some(StorageFault::TornWrite) => 1,
                Some(StorageFault::BitFlip) => 2,
                Some(StorageFault::LoseWrite) => 3,
                Some(StorageFault::SlowFsync) => 4,
                Some(StorageFault::FsyncFail) => 5,
                Some(StorageFault::NoSpace) => unreachable!("not configured"),
            }] += 1;
        }
        for (i, &c) in counts.iter().enumerate().skip(1) {
            let rate = c as f64 / n as f64;
            assert!(
                (rate - 0.1).abs() < 0.02,
                "storage fault class {i} rate {rate} far from configured 0.1"
            );
        }
    }

    #[test]
    fn storage_plan_overrides_take_precedence() {
        let plan = StorageFaultPlan {
            seed: 1,
            scheduled: vec![(3, StorageFault::TornWrite)],
            nospace_after: Some(10),
            ..StorageFaultPlan::default()
        };
        // Quiet except the overrides.
        assert_eq!(plan.decide(0).0, None);
        assert_eq!(plan.decide(3).0, Some(StorageFault::TornWrite));
        assert_eq!(plan.decide(9).0, None);
        assert_eq!(plan.decide(10).0, Some(StorageFault::NoSpace));
        assert_eq!(plan.decide(11_000).0, Some(StorageFault::NoSpace));
        // A scheduled fault wins even past the disk-full horizon.
        let plan = StorageFaultPlan {
            scheduled: vec![(12, StorageFault::BitFlip)],
            ..plan
        };
        assert_eq!(plan.decide(12).0, Some(StorageFault::BitFlip));
    }

    #[test]
    #[should_panic(expected = "sum into")]
    fn overfull_storage_probabilities_are_rejected() {
        StorageFaultPlan {
            torn_p: 0.9,
            flip_p: 0.5,
            ..StorageFaultPlan::default()
        }
        .decide(0);
    }
}
